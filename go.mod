module gnf

go 1.24
