// Command gnf-bench regenerates the paper's evaluation as human-readable
// tables, one per experiment (see EXPERIMENTS.md for the experiment index
// and DESIGN.md §3 for the mapping to modules). It is the standalone
// counterpart of the testing.B benchmarks in bench_test.go: same
// scenarios, same internal APIs, but it prints the rows/series the paper
// reports instead of ns/op.
//
// Usage:
//
//	gnf-bench            # run every experiment
//	gnf-bench -run E2,E6 # run a subset
//	gnf-bench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gnf/internal/agent"
	"gnf/internal/baseline"
	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/netem"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/traffic"

	_ "gnf/internal/nf/builtin"
)

var (
	phoneMAC  = packet.MAC{2, 0, 0, 0, 0, 0x10}
	phoneIP   = packet.IP{10, 0, 0, 10}
	serverMAC = packet.MAC{2, 0, 0, 0, 0, 0x99}
	serverIP  = packet.IP{10, 99, 0, 1}
)

type experiment struct {
	id, title string
	run       func() error
}

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	experiments := []experiment{
		{"E1", "Fig. 2 roaming demo: migration with live traffic", runE1},
		{"E2", "NF instantiation latency: container vs VM", runE2},
		{"E3", "NF density on a 1 GiB edge box: container vs VM", runE3},
		{"E4", "dataplane throughput vs chain length and per NF type", runE4},
		{"E5", "control-plane RPC latency vs number of agents", runE5},
		{"E6", "migration strategy ablation: cold vs stateful vs live pre-copy", runE6},
		{"E7", "NF notification pipeline throughput", runE7},
		{"E8", "GNFC offload ablation: edge vs cloud hosting", runE8},
		{"E9", "station failover recovery time", runE9},
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-3s %s\n", e.id, e.title)
		}
		return
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*runFlag, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s — %s\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// newEdgeSystem builds the canonical two-station deployment with a phone
// and a traffic sink, optionally with a cloud site.
func newEdgeSystem(strategy manager.Strategy, clk clock.Clock, cloud bool) (*core.System, *traffic.Sink, error) {
	cfg := core.Config{
		Clock:          clk,
		Strategy:       strategy,
		ReportInterval: 200 * time.Millisecond,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
	}
	if cloud {
		cfg.Clouds = []core.CloudConfig{{ID: "nimbus", WAN: netem.LinkParams{Delay: 5 * time.Millisecond}}}
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := sys.AddClient("phone", phoneMAC, phoneIP); err != nil {
		sys.Close()
		return nil, nil, err
	}
	server := sys.AddServer("web", serverMAC, serverIP)
	server.Learn(phoneIP, phoneMAC)
	sink := traffic.NewSink(server, 7000, sys.Clock)
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		sys.Close()
		return nil, nil, err
	}
	if err := sys.WaitClientAt("phone", "st-a", 10*time.Second); err != nil {
		sys.Close()
		return nil, nil, err
	}
	sys.ClientHost("phone").Learn(serverIP, serverMAC)
	return sys, sink, nil
}

func fwChain(name string) manager.ChainSpec {
	return manager.ChainSpec{
		Name: name,
		Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
			{Kind: "counter", Name: "acct"},
		},
	}
}

// --- E1 ---------------------------------------------------------------------

func runE1() error {
	sys, sink, err := newEdgeSystem(manager.StrategyStateful, clock.System(), false)
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.AttachChain("phone", fwChain("chain")); err != nil {
		return err
	}
	if err := sys.WaitChainOn("st-a", "chain", 10*time.Second); err != nil {
		return err
	}

	const count, pps = 300, 200
	done := make(chan int)
	go func() {
		done <- traffic.CBR(sys.ClientHost("phone"),
			packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, count, 128, pps)
	}()
	time.Sleep(300 * time.Millisecond) // roam mid-stream
	if err := sys.Topo.Attach("phone", "cell-b"); err != nil {
		return err
	}
	if err := sys.WaitClientAt("phone", "st-b", 10*time.Second); err != nil {
		return err
	}
	if err := sys.WaitChainOn("st-b", "chain", 10*time.Second); err != nil {
		return err
	}
	sys.ClientHost("phone").Learn(serverIP, serverMAC)
	sent := <-done
	time.Sleep(200 * time.Millisecond)

	rep := sink.Analyze(sent)
	migs := sys.Manager.Migrations()
	fmt.Printf("  client roamed cell-a -> cell-b mid-stream (%d pkts at %d pps)\n", sent, pps)
	for _, m := range migs {
		fmt.Printf("  migration %s: %s -> %s  strategy=%s  downtime=%v  total=%v  state=%dB\n",
			m.Chain, m.From, m.To, m.Strategy, m.Downtime.Round(time.Microsecond), m.Total.Round(time.Microsecond), m.StateBytes)
	}
	fmt.Printf("  traffic: received=%d/%d lost=%d longest-gap=%d gap-span=%v\n",
		rep.Received, rep.Sent, rep.Lost, rep.LongestGap, rep.GapDuration.Round(time.Microsecond))
	return nil
}

// --- E2 ---------------------------------------------------------------------

func runE2() error {
	img := container.Image{Name: "gnf/firewall:1.0", SizeBytes: 4 << 20, MemoryBytes: 6 << 20}
	fmt.Printf("  %-10s %12s %12s\n", "runtime", "cold-pull", "warm-cache")
	for _, vm := range []bool{false, true} {
		row := make([]time.Duration, 0, 2)
		for _, warm := range []bool{false, true} {
			clk := clock.NewAutoVirtual()
			repo := container.NewRepository(clk, 100_000_000, 5*time.Millisecond)
			repo.Push(img)
			var rt *container.Runtime
			name := img.Name
			if vm {
				rt = baseline.NewVMRuntime("edge", clk, baseline.NewVMRepository(clk, repo, 100_000_000, 0))
				name = "vm/" + img.Name
			} else {
				rt = container.NewRuntime("edge", clk, repo)
			}
			if warm {
				if err := rt.PrefetchImage(name); err != nil {
					return err
				}
			}
			start := clk.Now()
			ctr, err := rt.Create(container.Config{Name: "nf", Image: name})
			if err != nil {
				return err
			}
			if err := ctr.Start(); err != nil {
				return err
			}
			row = append(row, clk.Since(start))
		}
		kind := "container"
		if vm {
			kind = "vm"
		}
		fmt.Printf("  %-10s %12v %12v\n", kind, row[0].Round(time.Millisecond), row[1].Round(time.Millisecond))
	}
	return nil
}

// --- E3 ---------------------------------------------------------------------

func runE3() error {
	img := container.Image{Name: "gnf/firewall:1.0", SizeBytes: 4 << 20, MemoryBytes: 6 << 20}
	const hostMem = 1 << 30
	fmt.Printf("  %-10s %10s %10s\n", "runtime", "NFs packed", "MiB/NF")
	for _, vm := range []bool{false, true} {
		clk := clock.NewAutoVirtual()
		repo := container.NewRepository(clk, 0, 0)
		repo.Push(img)
		var rt *container.Runtime
		image := img.Name
		kind := "container"
		if vm {
			rt = baseline.NewVMRuntime("edge", clk, baseline.NewVMRepository(clk, repo, 0, 0),
				container.WithCapacity(hostMem))
			image, kind = "vm/"+img.Name, "vm"
		} else {
			rt = container.NewRuntime("edge", clk, repo, container.WithCapacity(hostMem))
		}
		packed := 0
		for {
			if _, err := rt.Create(container.Config{Image: image}); err != nil {
				break
			}
			packed++
		}
		fmt.Printf("  %-10s %10d %10.1f\n", kind, packed, float64(hostMem)/float64(packed)/(1<<20))
	}
	return nil
}

// --- E4 ---------------------------------------------------------------------

func runE4() error {
	const frames = 200_000
	fmt.Printf("  chain-length sweep (512B frames):\n")
	fmt.Printf("  %-8s %12s %12s\n", "length", "Mfps", "Gbit/s")
	for _, chainLen := range []int{0, 1, 2, 3, 5} {
		fns := make([]nf.Function, 0, chainLen)
		for i := 0; i < chainLen; i++ {
			fn, err := nf.Default.New("firewall", fmt.Sprintf("fw%d", i),
				nf.Params{"policy": "accept", "rules": "drop out tcp any any any 23"})
			if err != nil {
				return err
			}
			fns = append(fns, fn)
		}
		chain := nf.NewChain("bench", fns...)
		frame := packet.BuildUDP(phoneMAC, serverMAC, phoneIP, serverIP, 6000, 7000, make([]byte, 470))
		start := time.Now()
		for i := 0; i < frames; i++ {
			if out := chain.Process(nf.Outbound, frame); len(out.Forward) != 1 {
				return fmt.Errorf("frame lost in chain")
			}
		}
		el := time.Since(start)
		fps := frames / el.Seconds()
		fmt.Printf("  %-8d %12.2f %12.2f\n", chainLen, fps/1e6, fps*float64(len(frame))*8/1e9)
	}

	fmt.Printf("  per-NF forwarding (one NF, workload-matched frames):\n")
	fmt.Printf("  %-10s %12s\n", "kind", "kfps")
	dnsWire, _ := packet.NewDNSQuery(1, "svc.gnf").Append(nil)
	httpFrame := traffic.HTTPRequestFrame(phoneMAC, serverMAC, phoneIP, serverIP, 41000, "ok.example", "/")
	udpFrame := packet.BuildUDP(phoneMAC, serverMAC, phoneIP, serverIP, 6000, 7000, make([]byte, 470))
	dnsFrame := packet.BuildUDP(phoneMAC, serverMAC, phoneIP, serverIP, 6000, 53, dnsWire)
	cases := []struct {
		kind   string
		params nf.Params
		frame  []byte
	}{
		{"firewall", nf.Params{"policy": "accept", "rules": "drop out tcp any any any 23"}, udpFrame},
		{"httpfilter", nf.Params{"block_hosts": "ads.example"}, httpFrame},
		{"httpcache", nf.Params{}, httpFrame},
		{"dnslb", nf.Params{"service": "svc.gnf", "backends": "10.1.0.1,10.1.0.2"}, dnsFrame},
		{"ratelimit", nf.Params{"rate_bps": "10000000000", "burst_bytes": "1000000000"}, udpFrame},
		{"nat", nf.Params{"nat_ip": "192.168.100.1"}, udpFrame},
		{"dnscache", nf.Params{}, dnsFrame},
		{"counter", nf.Params{}, udpFrame},
	}
	for _, c := range cases {
		fn, err := nf.Default.New(c.kind, "bench", c.params)
		if err != nil {
			return err
		}
		// Refresh the frame from the master each iteration: rewriting
		// NFs (NAT) mutate it in place, and re-processing the rewritten
		// frame would mint a new flow mapping per iteration.
		const n = 100_000
		frame := packet.Clone(c.frame)
		start := time.Now()
		for i := 0; i < n; i++ {
			copy(frame, c.frame)
			fn.Process(nf.Outbound, frame)
		}
		fmt.Printf("  %-10s %12.0f\n", c.kind, n/time.Since(start).Seconds()/1e3)
	}
	return nil
}

// --- E5 ---------------------------------------------------------------------

func runE5() error {
	fmt.Printf("  %-8s %14s\n", "agents", "ping RTT")
	for _, n := range []int{1, 4, 16, 64} {
		mgr, err := manager.New(clock.System(), "127.0.0.1:0")
		if err != nil {
			return err
		}
		clk := clock.NewAutoVirtual()
		repo := container.NewRepository(clk, 0, 0)
		repo.Push(container.Image{Name: agent.ImageForKind("firewall"), SizeBytes: 1 << 20, MemoryBytes: 1 << 20})
		links := make([]*agent.Link, 0, n)
		for i := 0; i < n; i++ {
			st := fmt.Sprintf("st-%03d", i)
			sw := netem.NewSwitch(st)
			up, _ := netem.NewVethPair(st+"-up", st+"-core")
			sw.Attach(0, up)
			ag := agent.New(topology.StationID(st), clk, container.NewRuntime(st, clk, repo), sw, 0)
			link, err := agent.Connect(ag, mgr.Addr(), 50*time.Millisecond)
			if err != nil {
				return err
			}
			links = append(links, link)
		}
		for len(mgr.Agents()) != n {
			time.Sleep(time.Millisecond)
		}
		const pings = 200
		start := time.Now()
		for i := 0; i < pings; i++ {
			st := mgr.Agents()[i%n]
			h, _ := mgr.AgentHandleFor(st)
			if err := h.Ping(); err != nil {
				return err
			}
		}
		rtt := time.Since(start) / pings
		fmt.Printf("  %-8d %14v\n", n, rtt.Round(time.Microsecond))
		for _, l := range links {
			l.Close()
		}
		mgr.Close()
	}
	return nil
}

// --- E6 ---------------------------------------------------------------------

func runE6() error {
	fmt.Printf("  %-10s %10s %14s %12s %12s %7s\n", "strategy", "flows", "downtime", "total", "state", "rounds")
	for _, strat := range []manager.Strategy{manager.StrategyCold, manager.StrategyStateful, manager.StrategyLive} {
		for _, flows := range []int{0, 1000, 16000} {
			clk := clock.NewAutoVirtual()
			sys, _, err := newEdgeSystem(strat, clk, false)
			if err != nil {
				return err
			}
			spec := manager.ChainSpec{
				Name: "nat-chain",
				Functions: []agent.NFSpec{{
					Kind: "nat", Name: "nat0",
					Params: nf.Params{"nat_ip": "192.168.100.1", "ports": "30000-62000"},
				}},
			}
			if err := sys.AttachChain("phone", spec); err != nil {
				sys.Close()
				return err
			}
			if err := sys.WaitChainOn("st-a", "nat-chain", 10*time.Second); err != nil {
				sys.Close()
				return err
			}
			chainFn, err := sys.Agent("st-a").ChainFunction("nat-chain")
			if err != nil {
				sys.Close()
				return err
			}
			for i := 0; i < flows; i++ {
				frame := packet.BuildUDP(phoneMAC, serverMAC, phoneIP, serverIP, uint16(i%60000+1), 53, nil)
				chainFn.Process(nf.Outbound, frame)
			}
			rep, err := sys.Manager.MigrateChain("phone", "nat-chain", "st-b")
			if err != nil {
				sys.Close()
				return err
			}
			fmt.Printf("  %-10s %10d %14v %12v %9.1f KiB %7d\n", strat, flows,
				rep.Downtime.Round(time.Microsecond), rep.Total.Round(time.Microsecond),
				float64(rep.StateBytes)/1024, rep.Rounds)
			sys.Close()
		}
	}
	return nil
}

// --- E7 ---------------------------------------------------------------------

func runE7() error {
	sys, _, err := newEdgeSystem(manager.StrategyStateful, clock.System(), false)
	if err != nil {
		return err
	}
	defer sys.Close()
	spec := manager.ChainSpec{
		Name: "ids",
		Functions: []agent.NFSpec{{
			Kind: "counter", Name: "ids0",
			Params: nf.Params{"signatures": "sig-marker"},
		}},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		return err
	}
	if err := sys.WaitChainOn("st-a", "ids", 10*time.Second); err != nil {
		return err
	}
	// Paced bursts: an unpaced multi-thousand-packet burst just overflows
	// the emulated access-link queue (drops, as on real links).
	const alerts = 2000
	phone := sys.ClientHost("phone")
	payload := []byte("sig-marker event payload")
	start := time.Now()
	for i := 0; i < alerts; i++ {
		phone.SendUDP(packet.Endpoint{Addr: serverIP, Port: 7100}, 6002, payload)
		if i%50 == 49 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(sys.Manager.Notifications()) < alerts {
		if time.Now().After(deadline) {
			return fmt.Errorf("notifications stalled at %d of %d", len(sys.Manager.Notifications()), alerts)
		}
		time.Sleep(time.Millisecond)
	}
	el := time.Since(start)
	fmt.Printf("  %d alerts NF->Agent->Manager in %v  (%.0f alerts/s sustained, zero loss)\n",
		alerts, el.Round(time.Millisecond), alerts/el.Seconds())
	return nil
}

// --- E8 ---------------------------------------------------------------------

func runE8() error {
	measure := func(offload bool) (roamDowntime time.Duration, rtt time.Duration, err error) {
		sys, _, err := newEdgeSystem(manager.StrategyStateful, clock.System(), true)
		if err != nil {
			return 0, 0, err
		}
		defer sys.Close()
		if err := sys.AttachChain("phone", fwChain("chain")); err != nil {
			return 0, 0, err
		}
		if err := sys.WaitChainOn("st-a", "chain", 10*time.Second); err != nil {
			return 0, 0, err
		}
		if offload {
			if err := sys.OffloadClient("phone", "nimbus"); err != nil {
				return 0, 0, err
			}
		}
		// RTT through the deployed path.
		phone := sys.ClientHost("phone")
		phone.Learn(serverIP, serverMAC)
		const pings = 20
		start := time.Now()
		for i := 0; i < pings; i++ {
			ch, err := phone.Ping(serverIP, 7, uint16(i))
			if err != nil {
				return 0, 0, err
			}
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				return 0, 0, fmt.Errorf("ping lost")
			}
		}
		rtt = time.Since(start) / pings

		// One roam; read its report.
		if err := sys.Topo.Attach("phone", "cell-b"); err != nil {
			return 0, 0, err
		}
		if err := sys.WaitClientAt("phone", "st-b", 10*time.Second); err != nil {
			return 0, 0, err
		}
		sys.Manager.WaitIdle()
		if !offload {
			if err := sys.WaitChainOn("st-b", "chain", 10*time.Second); err != nil {
				return 0, 0, err
			}
		}
		for _, m := range sys.Manager.Migrations() {
			if m.Err == "" && (m.Strategy == manager.StrategySteer) == offload {
				roamDowntime = m.Downtime
			}
		}
		return roamDowntime, rtt, nil
	}

	fmt.Printf("  %-12s %18s %14s\n", "hosting", "roam downtime", "RTT")
	for _, offload := range []bool{false, true} {
		down, rtt, err := measure(offload)
		if err != nil {
			return err
		}
		kind := "edge"
		if offload {
			kind = "cloud (GNFC)"
		}
		fmt.Printf("  %-12s %18v %14v\n", kind,
			down.Round(10*time.Microsecond), rtt.Round(10*time.Microsecond))
	}
	fmt.Println("  (cloud WAN emulated at 5 ms one-way; chains never move once offloaded)")
	return nil
}

// --- E9 ---------------------------------------------------------------------

func runE9() error {
	fmt.Printf("  %-8s %14s\n", "chains", "recovery")
	for _, chains := range []int{1, 4, 16} {
		sys, _, err := newEdgeSystem(manager.StrategyStateful, clock.System(), false)
		if err != nil {
			return err
		}
		sys.Manager.EnableFailover(0)
		for c := 0; c < chains; c++ {
			spec := manager.ChainSpec{
				Name:      fmt.Sprintf("chain-%d", c),
				Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}}},
			}
			if err := sys.AttachChain("phone", spec); err != nil {
				sys.Close()
				return err
			}
		}
		start := time.Now()
		if err := sys.KillStation("st-a"); err != nil {
			sys.Close()
			return err
		}
		deadline := time.Now().Add(30 * time.Second)
		for len(sys.Manager.Failovers()) < chains {
			if time.Now().After(deadline) {
				sys.Close()
				return fmt.Errorf("failover stalled at %d of %d", len(sys.Manager.Failovers()), chains)
			}
			time.Sleep(200 * time.Microsecond)
		}
		fmt.Printf("  %-8d %14v\n", chains, time.Since(start).Round(time.Millisecond))
		sys.Close()
	}
	return nil
}
