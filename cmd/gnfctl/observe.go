// Observability subcommands: span-tree rendering (trace), journal
// tailing (events) and a per-station resource table (top). All speak the
// UI's REST API like the rest of gnfctl.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"gnf/internal/trace"
	"gnf/internal/ui"
)

// getInto fetches url and decodes the 200 JSON response into out.
func getInto(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return json.Unmarshal(raw, out)
}

// cmdTrace lists stored traces (no argument) or renders one trace's span
// tree, indented by parent/child relation with per-span durations.
func cmdTrace(api string, args []string) error {
	if len(args) == 0 {
		return getAndPrint(api + "/api/traces")
	}
	var spans []trace.SpanRecord
	if err := getInto(api+"/api/trace/"+args[0], &spans); err != nil {
		return err
	}
	printSpanTree(os.Stdout, spans)
	return nil
}

// printSpanTree renders spans as an indented tree. Spans arrive sorted by
// start time (the server guarantees it), so sibling order is causal; a
// span whose parent is missing from the set renders as a root.
func printSpanTree(w io.Writer, spans []trace.SpanRecord) {
	present := make(map[string]bool, len(spans))
	for _, s := range spans {
		present[s.SpanID] = true
	}
	children := make(map[string][]trace.SpanRecord)
	var roots []trace.SpanRecord
	for _, s := range spans {
		if s.Parent != "" && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var walk func(s trace.SpanRecord, depth int)
	walk = func(s trace.SpanRecord, depth int) {
		var extra strings.Builder
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&extra, " %s=%s", k, s.Attrs[k])
			}
		}
		if s.Err != "" {
			fmt.Fprintf(&extra, "  ERROR: %s", s.Err)
		}
		fmt.Fprintf(w, "%s%s  [%s]  %.3fms%s\n",
			strings.Repeat("  ", depth), s.Name, s.Origin, s.DurationMs, extra.String())
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// cmdEvents prints the journal, optionally filtered by -type and followed
// live: -follow polls with ?after=<last_seq> so each event prints once.
func cmdEvents(api string, args []string) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	follow := fs.Bool("follow", false, "keep polling for new events")
	etype := fs.String("type", "", "comma-separated event types (attach,migrate,scale,...)")
	interval := fs.Duration("interval", time.Second, "poll interval with -follow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	filter := ""
	if *etype != "" {
		for _, t := range strings.Split(*etype, ",") {
			filter += "&type=" + strings.TrimSpace(t)
		}
	}
	var after uint64
	for {
		var view ui.EventsView
		if err := getInto(fmt.Sprintf("%s/api/events?after=%d%s", api, after, filter), &view); err != nil {
			return err
		}
		for _, ev := range view.Events {
			printEvent(os.Stdout, ev)
		}
		after = view.LastSeq
		if !*follow {
			return nil
		}
		time.Sleep(*interval)
	}
}

func printEvent(w io.Writer, ev trace.Event) {
	var extra strings.Builder
	if ev.TraceID != "" {
		fmt.Fprintf(&extra, " trace=%s", ev.TraceID)
	}
	if ev.Err != "" {
		fmt.Fprintf(&extra, "  ERROR: %s", ev.Err)
	}
	fmt.Fprintf(w, "%6d  %s  %-10s %-16s %-10s %s%s\n",
		ev.Seq, ev.At.Format(time.RFC3339), ev.Type, ev.Subject, ev.Station, ev.Detail, extra.String())
}

// scrapeMetrics fetches the manager's Prometheus exposition and returns a
// flat name -> value map (labels folded into the name, histogram bucket
// lines skipped). gnfctl only needs point lookups, not a full parser.
func scrapeMetrics(api string) (map[string]float64, error) {
	resp, err := http.Get(api + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	vals := make(map[string]float64)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, num, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			continue
		}
		vals[name] = v
	}
	return vals, nil
}

// promSeg sanitises one registry-name segment the way the /metrics
// exporter does (non-alphanumerics become underscores).
func promSeg(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// cmdTop prints a per-station resource table plus the handoff-pipeline
// gauges (queue depth, in-flight migrations, coalesced storms, per-station
// admission saturation); -follow redraws it every interval like top(1).
func cmdTop(api string, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	follow := fs.Bool("follow", false, "redraw every interval until interrupted")
	interval := fs.Duration("interval", 2*time.Second, "redraw interval with -follow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for {
		var stations []ui.StationView
		if err := getInto(api+"/api/stations", &stations); err != nil {
			return err
		}
		vals, err := scrapeMetrics(api)
		if err != nil {
			return err
		}
		if *follow {
			fmt.Print("\033[H\033[2J") // cursor home + clear, like top(1)
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "STATION\tCPU%\tMEM_MB\tNFS\tRX_FRAMES\tREDIRECTS\tCHAINS\tSATURATED")
		for _, st := range stations {
			sat := vals["gnf_handoff_station_saturated_"+promSeg(st.Station)+"_total"]
			fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%d\t%d\t%d\t%d\t%.0f\n",
				st.Station, st.CPU, st.MemoryMB, st.NFs, st.RxFrames, st.Redirects, len(st.Chains), sat)
		}
		tw.Flush()
		fmt.Printf("\nhandoff pipeline: queue=%.0f inflight=%.0f coalesced=%.0f p99=%.1fms\n",
			vals["gnf_handoff_queue_depth"], vals["gnf_handoff_inflight"],
			vals["gnf_handoff_coalesced_total"], vals["gnf_handoff_latency_ms_p99"])
		if !*follow {
			return nil
		}
		time.Sleep(*interval)
	}
}
