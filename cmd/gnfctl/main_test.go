package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFn(t *testing.T) {
	cases := []struct {
		in       string
		kind     string
		params   map[string]string
		wantErr  bool
		errMatch string
	}{
		{in: "counter", kind: "counter"},
		{
			in:     "firewall:policy=drop,rules=accept any udp",
			kind:   "firewall",
			params: map[string]string{"policy": "drop", "rules": "accept any udp"},
		},
		{in: "ratelimit:rate_bps=1000000", kind: "ratelimit", params: map[string]string{"rate_bps": "1000000"}},
		{in: "", wantErr: true, errMatch: "empty NF kind"},
		{in: ":policy=drop", wantErr: true, errMatch: "empty NF kind"},
		{in: "firewall:policy", wantErr: true, errMatch: "want k=v"},
	}
	for _, tc := range cases {
		spec, err := parseFn(0, tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseFn(%q): expected error", tc.in)
			} else if !strings.Contains(err.Error(), tc.errMatch) {
				t.Errorf("parseFn(%q): error %q does not contain %q", tc.in, err, tc.errMatch)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFn(%q): %v", tc.in, err)
			continue
		}
		if spec.Kind != tc.kind {
			t.Errorf("parseFn(%q): kind %q, want %q", tc.in, spec.Kind, tc.kind)
		}
		for k, v := range tc.params {
			if got := spec.Params[k]; got != v {
				t.Errorf("parseFn(%q): param %s=%q, want %q", tc.in, k, got, v)
			}
		}
	}
}

func TestParseFnNamesAreIndexed(t *testing.T) {
	a, err := parseFn(0, "counter")
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseFn(1, "counter")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name == b.Name {
		t.Fatalf("names must be unique within a chain: %q vs %q", a.Name, b.Name)
	}
}

// TestRunScenarioSmoke drives the run-scenario code path end to end on a
// minimal inline scenario.
func TestRunScenarioSmoke(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "smoke.json")
	spec := `{
	  "name": "smoke",
	  "seed": 1,
	  "stations": [{"id": "st-a", "cells": [{"id": "cell-a", "center": {"x": 0}, "radius": 50}]}],
	  "clients": [{"id": "c0", "at": {"x": 0},
	    "chains": [{"name": "ch", "functions": [{"kind": "counter", "name": "acct"}]}]}],
	  "expect": {"final_stations": {"c0": "st-a"}}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScenario(path); err != nil {
		t.Fatalf("runScenario: %v", err)
	}
	if err := runScenario(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
