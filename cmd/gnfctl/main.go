// Command gnfctl is the operator CLI for a running gnf-manager, speaking
// the UI's REST API — plus a self-contained scenario runner.
//
//	gnfctl -api http://127.0.0.1:8080 overview
//	gnfctl -api ... stations | notifications | migrations | hotspots
//	gnfctl -api ... attach  <client> <chain> <kind[:k=v,k=v]> [more fns...]
//	gnfctl -api ... detach  <client> <chain>
//	gnfctl -api ... migrate <client> <chain> <station>
//	gnfctl run-scenario <file.json>    # no manager needed: runs in-process
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/scenario"
	"gnf/internal/ui"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: gnfctl [-api URL] <command> [args]

commands:
  overview                         cluster summary
  stations                         per-station health
  notifications                    NF alerts collected by the manager
  migrations                       completed chain migrations
  attach <client> <chain> <fn>...  attach an NF chain; fn = kind[@affinity][:k=v,k=v]
                                   (affinity near-client|aggregate|cloud-ok
                                   splits the chain into per-station segments)
  detach <client> <chain>          remove a chain
  migrate <client> <chain> <to>    move a chain to another station
  offload <client> <site>          move all of a client's chains to a cloud site
  recall <client>                  return an offloaded client's chains to the edge
  failovers                        failed stations and recovery reports
  placement                        active policy + per-station capacity view
  pools                            per-station shared NF instance tables
                                   (kind, config hash, refcount, replicas,
                                   load) and autoscaler decisions
  segments                         per-segment chain placement: affinity,
                                   NFs, current station, planned station
  apply -f <spec.json>             install a desired-state spec and
                                   reconcile until the fleet converges
  diff                             pending actions between desired and
                                   actual state (empty when converged)
  get spec                         installed desired-state spec + status
  trace [id]                       list stored traces, or render one trace's
                                   span tree with per-span durations
  events [-follow] [-type t,...]   print the manager's event journal; -follow
                                   tails it live
  top [-follow]                    per-station resource table (CPU, memory,
                                   NFs, frames); -follow redraws like top(1)
  run-scenario <file.json>         execute a declarative scenario in-process
                                   (virtual time; prints the result, exits
                                   non-zero when expectations fail)
`)
	os.Exit(2)
}

func main() {
	api := flag.String("api", "http://127.0.0.1:8080", "manager UI base URL")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var err error
	switch args[0] {
	case "overview":
		err = getAndPrint(*api + "/api/overview")
	case "stations":
		err = getAndPrint(*api + "/api/stations")
	case "notifications":
		err = getAndPrint(*api + "/api/notifications")
	case "migrations":
		err = getAndPrint(*api + "/api/migrations")
	case "attach":
		if len(args) < 4 {
			usage()
		}
		err = attach(*api, args[1], args[2], args[3:])
	case "detach":
		if len(args) != 3 {
			usage()
		}
		err = post(*api+"/api/chains/detach", ui.DetachRequest{Client: args[1], Chain: args[2]})
	case "migrate":
		if len(args) != 4 {
			usage()
		}
		err = post(*api+"/api/chains/migrate", ui.MigrateRequest{Client: args[1], Chain: args[2], To: args[3]})
	case "offload":
		if len(args) != 3 {
			usage()
		}
		err = post(*api+"/api/clients/offload", ui.OffloadRequest{Client: args[1], Site: args[2]})
	case "recall":
		if len(args) != 2 {
			usage()
		}
		err = post(*api+"/api/clients/recall", ui.RecallRequest{Client: args[1]})
	case "failovers":
		err = getAndPrint(*api + "/api/failovers")
	case "placement":
		err = getAndPrint(*api + "/api/placement")
	case "pools":
		err = getAndPrint(*api + "/api/pools")
	case "segments":
		err = getAndPrint(*api + "/api/segments")
	case "apply":
		if len(args) != 3 || args[1] != "-f" {
			usage()
		}
		err = apply(*api, args[2])
	case "diff":
		err = getAndPrint(*api + "/api/diff")
	case "get":
		if len(args) != 2 || args[1] != "spec" {
			usage()
		}
		err = getAndPrint(*api + "/api/spec")
	case "trace":
		err = cmdTrace(*api, args[1:])
	case "events":
		err = cmdEvents(*api, args[1:])
	case "top":
		err = cmdTop(*api, args[1:])
	case "run-scenario":
		if len(args) != 2 {
			usage()
		}
		err = runScenario(args[1])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnfctl:", err)
		os.Exit(1)
	}
}

// runScenario executes one scenario file against a fresh in-process
// deployment on the virtual clock and prints the result.
func runScenario(path string) error {
	return scenario.Execute(path, os.Stdout)
}

// parseFn turns "firewall:policy=drop,rules=accept any udp" into an
// NFSpec. An optional "@affinity" suffix on the kind ("nat@aggregate")
// pins the function's segment placement class.
func parseFn(idx int, s string) (agent.NFSpec, error) {
	kind, rest, hasParams := strings.Cut(s, ":")
	kind, affinity, _ := strings.Cut(kind, "@")
	if kind == "" {
		return agent.NFSpec{}, fmt.Errorf("empty NF kind in %q", s)
	}
	spec := agent.NFSpec{Kind: kind, Name: fmt.Sprintf("%s-%d", kind, idx), Params: nf.Params{}, Affinity: affinity}
	if hasParams {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return agent.NFSpec{}, fmt.Errorf("bad parameter %q (want k=v)", kv)
			}
			spec.Params[k] = v
		}
	}
	return spec, nil
}

func attach(api, client, chain string, fnArgs []string) error {
	var fns []agent.NFSpec
	for i, s := range fnArgs {
		fn, err := parseFn(i, s)
		if err != nil {
			return err
		}
		fns = append(fns, fn)
	}
	return post(api+"/api/chains/attach", ui.AttachRequest{
		Client: client,
		Chain:  manager.ChainSpec{Name: chain, Functions: fns},
	})
}

// applyPasses bounds the reconcile passes one apply will drive; backoff
// on a persistently failing action keeps later passes cheap, but we still
// surface non-convergence to the operator instead of spinning forever.
const applyPasses = 20

// apply installs the spec file as desired state and drives reconcile
// passes until the reconciler reports convergence.
func apply(api, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := put(api+"/api/spec", raw); err != nil {
		return err
	}
	for i := 0; i < applyPasses; i++ {
		var res struct {
			Converged bool `json:"converged"`
			Failed    int  `json:"failed"`
			Deferred  int  `json:"deferred"`
		}
		if err := postInto(api+"/api/reconcile", map[string]any{}, &res); err != nil {
			return err
		}
		if res.Converged {
			fmt.Printf("converged after %d reconcile pass(es)\n", i+1)
			return nil
		}
	}
	return fmt.Errorf("not converged after %d reconcile passes; run `gnfctl diff` to inspect the gap", applyPasses)
}

func getAndPrint(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printBody(resp)
}

func post(url string, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printBody(resp)
}

// put issues a PUT with a raw JSON body and prints the response.
func put(url string, body []byte) error {
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return printBody(resp)
}

// postInto posts a JSON body and decodes the 200 response into out.
func postInto(url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return json.Unmarshal(raw, out)
}

func printBody(resp *http.Response) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		fmt.Println(pretty.String())
	} else {
		fmt.Println(strings.TrimSpace(string(raw)))
	}
	return nil
}
