// Command gnf-manager runs the GNF Manager: it listens for Agent
// connections on -listen and serves the UI/REST dashboard on -ui.
//
//	gnf-manager -listen 127.0.0.1:7701 -ui 127.0.0.1:8080 -strategy stateful
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"gnf/internal/clock"
	"gnf/internal/manager"
	"gnf/internal/ui"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7701", "address for agent connections")
	uiAddr := flag.String("ui", "127.0.0.1:8080", "address for the UI/REST dashboard")
	strategy := flag.String("strategy", "stateful", "roaming migration strategy: cold|stateful")
	placement := flag.String("placement", "client-local",
		"placement policy: "+strings.Join(manager.PlacementNames(), "|"))
	hotspot := flag.Float64("hotspot-cpu", 80, "CPU%% threshold for hotspot detection")
	autoscale := flag.Duration("autoscale", 0,
		"shared-instance autoscaler evaluation interval (0 disables; e.g. 2s)")
	reconcileInterval := flag.Duration("reconcile-interval", 0,
		"desired-state reconcile interval (0 disables; e.g. 5s)")
	traceSample := flag.Float64("trace-sample", 1,
		"fraction of control-plane operations to trace (0..1)")
	pprofOn := flag.Bool("pprof", false,
		"expose net/http/pprof under /debug/pprof/ on the UI address")
	flag.Parse()

	var strat manager.Strategy
	switch *strategy {
	case "cold":
		strat = manager.StrategyCold
	case "stateful":
		strat = manager.StrategyStateful
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	policy, ok := manager.PlacementFor(*placement)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown placement %q (want one of %s)\n",
			*placement, strings.Join(manager.PlacementNames(), ", "))
		os.Exit(2)
	}

	mgr, err := manager.New(clock.System(), *listen,
		manager.WithStrategy(strat), manager.WithHotspotCPU(*hotspot),
		manager.WithTraceSampleRatio(*traceSample))
	if err != nil {
		log.Fatalf("manager: %v", err)
	}
	defer mgr.Close()
	mgr.SetPlacement(policy)

	if *autoscale > 0 {
		mgr.StartAutoscaler(*autoscale)
	}

	dash := ui.New(mgr)
	if *pprofOn {
		dash.EnablePprof()
	}
	if err := dash.Start(*uiAddr); err != nil {
		log.Fatalf("ui: %v", err)
	}
	defer dash.Close()

	// The loop idles (ErrNoSpec) until an operator PUTs a spec or runs
	// `gnfctl apply`; from then on it repairs drift every interval.
	if *reconcileInterval > 0 {
		dash.Reconciler().Start(*reconcileInterval)
	}

	log.Printf("gnf-manager: agents on %s, dashboard on http://%s/", mgr.Addr(), dash.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("gnf-manager: shutting down")
}
