// Command gnf-agent runs one GNF station daemon and registers it with a
// manager. The station's dataplane (software switch, container runtime,
// image cache) is node-local: deploys arriving from the manager instantiate
// NF chains against this process's emulated switch, and health reports flow
// back every -report interval.
//
//	gnf-agent -manager 127.0.0.1:7701 -station st-kelvin -memory 1024
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/core"
	"gnf/internal/netem"
	"gnf/internal/topology"

	_ "gnf/internal/nf/builtin"
)

func main() {
	managerAddr := flag.String("manager", "127.0.0.1:7701", "manager address")
	station := flag.String("station", "st-1", "station name")
	memoryMB := flag.Uint64("memory", 0, "container memory capacity in MiB (0 = unlimited)")
	report := flag.Duration("report", time.Second, "health report interval")
	repoRate := flag.Int64("repo-rate", 100_000_000, "modeled image pull rate (bits/s)")
	flag.Parse()

	clk := clock.System()
	repo := container.NewRepository(clk, *repoRate, 5*time.Millisecond)
	for _, img := range core.DefaultImages() {
		repo.Push(img)
	}
	var opts []container.RuntimeOption
	if *memoryMB > 0 {
		opts = append(opts, container.WithCapacity(*memoryMB<<20))
	}
	rt := container.NewRuntime(*station, clk, repo, opts...)

	sw := netem.NewSwitch(*station)
	up, _ := netem.NewVethPair(*station+"-up", *station+"-core", netem.WithClock(clk))
	sw.Attach(0, up)

	ag := agent.New(topology.StationID(*station), clk, rt, sw, 0)
	link, err := agent.Connect(ag, *managerAddr, *report)
	if err != nil {
		log.Fatalf("connect to manager: %v", err)
	}
	defer link.Close()

	log.Printf("gnf-agent: station %s registered with %s", *station, *managerAddr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("gnf-agent: shutting down")
}
