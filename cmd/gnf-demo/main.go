// Command gnf-demo stages the paper's §4 mobility use-case end to end: a
// two-station edge, a smartphone client with a firewall+counter chain
// attached, CBR traffic flowing to a server, and scripted roaming between
// cells — while the UI dashboard shows stations, chains, and migrations as
// they happen.
//
//	gnf-demo -ui 127.0.0.1:8080 -roams 3 -dwell 3s
//
// With -scenario, the staged demo is replaced by a declarative scenario
// file executed on the virtual clock (see scenarios/ for the corpus):
//
//	gnf-demo -scenario scenarios/roaming.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/scenario"
	"gnf/internal/topology"
	"gnf/internal/traffic"
	"gnf/internal/ui"
)

func main() {
	uiAddr := flag.String("ui", "127.0.0.1:8080", "dashboard address")
	roams := flag.Int("roams", 3, "number of handoffs to perform")
	dwell := flag.Duration("dwell", 3*time.Second, "time spent in each cell")
	pps := flag.Int("pps", 100, "client traffic rate (packets/s)")
	strategy := flag.String("strategy", "stateful", "migration strategy: cold|stateful|live")
	placement := flag.String("placement", "client-local",
		"placement policy: "+strings.Join(manager.PlacementNames(), "|"))
	scenarioFile := flag.String("scenario", "", "run this scenario file instead of the staged demo")
	flag.Parse()

	if *scenarioFile != "" {
		if err := scenario.Execute(*scenarioFile, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	strat := manager.StrategyStateful
	switch *strategy {
	case "cold":
		strat = manager.StrategyCold
	case "live":
		strat = manager.StrategyLive
	case "stateful":
	default:
		log.Fatalf("unknown -strategy %q (want cold, stateful or live)", *strategy)
	}
	policy, ok := manager.PlacementFor(*placement)
	if !ok {
		log.Fatalf("unknown -placement %q (want one of %s)",
			*placement, strings.Join(manager.PlacementNames(), ", "))
	}
	sys, err := core.NewSystem(core.Config{
		Strategy:       strat,
		ReportInterval: 500 * time.Millisecond,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	sys.Manager.SetPlacement(policy)

	dash := ui.New(sys.Manager)
	if err := dash.Start(*uiAddr); err != nil {
		log.Fatal(err)
	}
	defer dash.Close()
	log.Printf("dashboard: http://%s/", dash.Addr())

	phoneMAC := packet.MAC{2, 0, 0, 0, 0, 0x10}
	phoneIP := packet.IP{10, 0, 0, 10}
	serverMAC := packet.MAC{2, 0, 0, 0, 0, 0x99}
	serverIP := packet.IP{10, 99, 0, 1}

	if err := sys.AddClient("phone", phoneMAC, phoneIP); err != nil {
		log.Fatal(err)
	}
	server := sys.AddServer("web", serverMAC, serverIP)
	server.Learn(phoneIP, phoneMAC)
	sink := traffic.NewSink(server, 7000, sys.Clock)

	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	sys.ClientHost("phone").Learn(serverIP, serverMAC)

	spec := manager.ChainSpec{
		Name: "edge-chain",
		Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept", "rules": "drop out tcp any any any 23"}},
			{Kind: "counter", Name: "acct", Params: nf.Params{}},
		},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "edge-chain", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	log.Printf("chain %q attached on st-a (firewall + counter)", spec.Name)

	// Background CBR traffic for the whole demo.
	total := (*roams + 1) * int(dwell.Seconds()) * *pps
	go traffic.CBR(sys.ClientHost("phone"), packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, total, 128, *pps)

	cells := []topology.CellID{"cell-b", "cell-a"}
	stations := []topology.StationID{"st-b", "st-a"}
	for i := 0; i < *roams; i++ {
		time.Sleep(*dwell)
		target := cells[i%2]
		log.Printf("roaming phone -> %s", target)
		if err := sys.Topo.Attach("phone", target); err != nil {
			log.Fatal(err)
		}
		if err := sys.WaitClientAt("phone", stations[i%2], 5*time.Second); err != nil {
			log.Fatal(err)
		}
		if err := sys.WaitChainOn(stations[i%2], "edge-chain", 5*time.Second); err != nil {
			log.Fatal(err)
		}
		migs := sys.Manager.Migrations()
		m := migs[len(migs)-1]
		log.Printf("  migrated %s -> %s (%s): downtime=%v state=%dB",
			m.From, m.To, m.Strategy, m.Downtime, m.StateBytes)
	}
	time.Sleep(*dwell)

	rep := sink.Analyze(total)
	fmt.Printf("\n=== demo summary ===\n")
	fmt.Printf("traffic: sent=%d received=%d lost=%d longest-gap=%d pkts (%v)\n",
		rep.Sent, rep.Received, rep.Lost, rep.LongestGap, rep.GapDuration)
	for _, m := range sys.Manager.Migrations() {
		fmt.Printf("migration: %s->%s strategy=%s downtime=%v total=%v state=%dB\n",
			m.From, m.To, m.Strategy, m.Downtime, m.Total, m.StateBytes)
	}
}
