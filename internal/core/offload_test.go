package core

import (
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/netem"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/traffic"
)

// cloudSystem is demoSystem plus one GNFC cloud site ("nimbus") behind a
// 5 ms WAN link.
func cloudSystem(t *testing.T, strategy manager.Strategy) (*System, *traffic.Sink) {
	t.Helper()
	cfg := twoStationConfig(strategy)
	cfg.Clouds = []CloudConfig{{
		ID:  "nimbus",
		WAN: netem.LinkParams{Delay: 5 * time.Millisecond},
	}}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.AddClient("phone", phoneMAC, phoneIP); err != nil {
		t.Fatal(err)
	}
	server := sys.AddServer("web", serverMAC, serverIP)
	sink := traffic.NewSink(server, 7000, sys.Clock)
	server.Learn(phoneIP, phoneMAC)
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sys.ClientHost("phone").Learn(serverIP, serverMAC)
	return sys, sink
}

// waitDelivered polls the sink until it holds want packets.
func waitDelivered(t *testing.T, sink *traffic.Sink, want int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for sink.Count() < want {
		select {
		case <-deadline:
			t.Fatalf("delivered %d of %d", sink.Count(), want)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestOffloadMovesChainsToCloud(t *testing.T) {
	sys, sink := cloudSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw-chain")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "fw-chain", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	phone := sys.ClientHost("phone")
	sent := traffic.CBR(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 10, 64, 1000)
	waitDelivered(t, sink, sent)

	if err := sys.OffloadClient("phone", "nimbus"); err != nil {
		t.Fatalf("OffloadClient: %v", err)
	}
	if got := sys.Manager.Offloaded("phone"); got != "nimbus" {
		t.Fatalf("Offloaded = %q", got)
	}
	// The chain left the edge and runs on the cloud site.
	if got := sys.Agent("st-a").Chains(); len(got) != 0 {
		t.Fatalf("st-a still hosts %v", got)
	}
	if got := sys.Agent("nimbus").Chains(); len(got) != 1 || got[0] != "fw-chain" {
		t.Fatalf("nimbus chains = %v", got)
	}
	if !sys.Agent("st-a").Steered("phone") {
		t.Fatal("detour not installed on st-a")
	}

	// Traffic still reaches the server — now via the cloud detour.
	sent2 := traffic.CBRFrom(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 1000, 10, 64, 1000)
	waitDelivered(t, sink, sent+sent2)

	// The offloaded firewall still filters: the blocked port dies at the
	// cloud, not at the edge.
	phone.SendUDP(packet.Endpoint{Addr: serverIP, Port: 9999}, 6001, []byte{0, 0, 0, 0, 0, 0, 0, 9})
	deadline := time.After(5 * time.Second)
	for {
		fn, err := sys.Agent("nimbus").ChainFunction("fw-chain")
		if err != nil {
			t.Fatal(err)
		}
		if fn.NFStats()["fw0.dropped"] == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("blocked packet never dropped at cloud: %v", fn.NFStats())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestOffloadedClientRoamsBySteeringOnly(t *testing.T) {
	sys, sink := cloudSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw-chain")); err != nil {
		t.Fatal(err)
	}
	if err := sys.OffloadClient("phone", "nimbus"); err != nil {
		t.Fatal(err)
	}
	migsBefore := len(sys.Manager.Migrations())

	// Roam: the chain must stay on the cloud; only steering moves.
	if err := sys.Topo.Attach("phone", "cell-b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-b", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()

	if got := sys.Agent("nimbus").Chains(); len(got) != 1 {
		t.Fatalf("nimbus chains = %v", got)
	}
	if got := sys.Agent("st-b").Chains(); len(got) != 0 {
		t.Fatalf("st-b hosts %v, wanted steering only", got)
	}
	if !sys.Agent("st-b").Steered("phone") {
		t.Fatal("detour not moved to st-b")
	}
	if sys.Agent("st-a").Steered("phone") {
		t.Fatal("stale detour on st-a")
	}

	migs := sys.Manager.Migrations()
	if len(migs) != migsBefore+1 {
		t.Fatalf("migrations = %+v", migs[migsBefore:])
	}
	last := migs[len(migs)-1]
	if last.Strategy != manager.StrategySteer || last.To != "st-b" {
		t.Fatalf("roam report = %+v", last)
	}

	// Traffic keeps flowing from the new station through the cloud.
	phone := sys.ClientHost("phone")
	phone.Learn(serverIP, serverMAC)
	sent := traffic.CBRFrom(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 5000, 10, 64, 1000)
	waitDelivered(t, sink, sent)
}

func TestRecallClientReturnsChainsToEdge(t *testing.T) {
	sys, sink := cloudSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw-chain")); err != nil {
		t.Fatal(err)
	}
	if err := sys.OffloadClient("phone", "nimbus"); err != nil {
		t.Fatal(err)
	}
	if err := sys.RecallClient("phone"); err != nil {
		t.Fatalf("RecallClient: %v", err)
	}
	if got := sys.Manager.Offloaded("phone"); got != "" {
		t.Fatalf("still offloaded to %q", got)
	}
	if got := sys.Agent("nimbus").Chains(); len(got) != 0 {
		t.Fatalf("nimbus still hosts %v", got)
	}
	if got := sys.Agent("st-a").Chains(); len(got) != 1 || got[0] != "fw-chain" {
		t.Fatalf("st-a chains = %v", got)
	}
	if sys.Agent("st-a").Steered("phone") {
		t.Fatal("detour survived recall")
	}
	phone := sys.ClientHost("phone")
	sent := traffic.CBRFrom(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 9000, 10, 64, 1000)
	waitDelivered(t, sink, sent)

	// And the recalled client roams normally again: chains migrate.
	if err := sys.Topo.Attach("phone", "cell-b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-b", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()
	if err := sys.WaitChainOn("st-b", "fw-chain", 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadRequiresCloudSite(t *testing.T) {
	sys, _ := cloudSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw-chain")); err != nil {
		t.Fatal(err)
	}
	// st-b is an edge station, not a cloud site.
	if err := sys.OffloadClient("phone", "st-b"); err == nil {
		t.Fatal("offload to an edge station must fail")
	}
	// Double offload is rejected.
	if err := sys.OffloadClient("phone", "nimbus"); err != nil {
		t.Fatal(err)
	}
	if err := sys.OffloadClient("phone", "nimbus"); err == nil {
		t.Fatal("double offload must fail")
	}
}

func TestAutoOffloadBurstsHotspotToCloud(t *testing.T) {
	sys, _ := cloudSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw-chain")); err != nil {
		t.Fatal(err)
	}
	sys.Manager.SetPlacement(manager.CloudFirstPlacement{})
	// Threshold zero: any station that has reported counts as hot.
	sys.Manager.SetHotspotCPU(0)
	deadline := time.After(5 * time.Second)
	for len(sys.Manager.Hotspots()) == 0 {
		select {
		case <-deadline:
			t.Fatal("no hotspot detected")
		case <-time.After(10 * time.Millisecond):
		}
	}
	reports, err := sys.Manager.AutoOffload()
	if err != nil {
		t.Fatalf("AutoOffload: %v", err)
	}
	if len(reports) != 1 || reports[0].Client != "phone" || reports[0].Site != "nimbus" {
		t.Fatalf("reports = %+v", reports)
	}
	if got := sys.Manager.Offloaded("phone"); got != "nimbus" {
		t.Fatalf("Offloaded = %q", got)
	}
}

func TestCloudSitesListed(t *testing.T) {
	sys, _ := cloudSystem(t, manager.StrategyStateful)
	sites := sys.CloudSites()
	if len(sites) != 1 || sites[0] != topology.StationID("nimbus") {
		t.Fatalf("CloudSites = %v", sites)
	}
}

func TestOffloadMultipleChains(t *testing.T) {
	sys, sink := cloudSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw-chain")); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachChain("phone", manager.ChainSpec{
		Name:      "acct-chain",
		Functions: []agent.NFSpec{{Kind: "counter", Name: "acct"}},
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Manager.OffloadClient("phone", "nimbus")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Chains) != 2 {
		t.Fatalf("offload report = %+v", rep)
	}
	if got := sys.Agent("nimbus").Chains(); len(got) != 2 {
		t.Fatalf("nimbus chains = %v", got)
	}
	if got := sys.Agent("st-a").Chains(); len(got) != 0 {
		t.Fatalf("st-a chains = %v", got)
	}

	// Roam with both chains offloaded: still a pure steering update.
	if err := sys.Topo.Attach("phone", "cell-b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-b", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()
	if got := sys.Agent("nimbus").Chains(); len(got) != 2 {
		t.Fatalf("nimbus chains after roam = %v", got)
	}
	phone := sys.ClientHost("phone")
	phone.Learn(serverIP, serverMAC)
	sent := traffic.CBRFrom(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 20000, 10, 64, 1000)
	waitDelivered(t, sink, sent)

	// Detaching one chain leaves the detour up for the other; detaching
	// the last clears it.
	if err := sys.Manager.DetachChain("phone", "fw-chain"); err != nil {
		t.Fatal(err)
	}
	if !sys.Agent("st-b").Steered("phone") {
		t.Fatal("detour dropped while a chain is still offloaded")
	}
	if err := sys.Manager.DetachChain("phone", "acct-chain"); err != nil {
		t.Fatal(err)
	}
	if sys.Agent("st-b").Steered("phone") {
		t.Fatal("detour survived the last chain")
	}
	if got := sys.Agent("nimbus").Chains(); len(got) != 0 {
		t.Fatalf("nimbus chains after detach = %v", got)
	}
}
