// Invariant auditing: a running System can cross-check the Manager's
// placement records against what every Agent actually hosts. The paper's
// roaming story rests on three properties — a client's chains follow it
// (convergence), a chain never runs twice (no duplicates), and nothing is
// left behind (no leaks) — and the scenario conformance suite asserts them
// after every run.
package core

import (
	"fmt"
	"sort"

	"gnf/internal/topology"
)

// Violation kinds reported by Audit.
const (
	// ViolationDuplicate: one chain deployed on more than one station.
	ViolationDuplicate = "duplicate-deployment"
	// ViolationLeak: an agent hosts a chain the manager does not place
	// there (orphaned by a failed migration or missed removal).
	ViolationLeak = "chain-leak"
	// ViolationMissing: the manager believes a chain is deployed on a
	// station whose agent does not host it.
	ViolationMissing = "missing-deployment"
	// ViolationConvergence: an attached client's chain is deployed away
	// from the station serving the client (and the client is not
	// offloaded to a cloud site).
	ViolationConvergence = "convergence"
	// ViolationDisabled: a chain that should be forwarding is disabled.
	// Scenarios exercising activation schedules expect this one.
	ViolationDisabled = "disabled-chain"
)

// Violation is one invariant breach found by Audit.
type Violation struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// Audit cross-checks manager placement state against the agents' actual
// deployments and returns every invariant violation found, sorted for
// stable output. An empty result means the deployment is consistent:
// every chain runs exactly once, exactly where the manager placed it, and
// every attached client is served at its current station (or its cloud
// site when offloaded).
func (s *System) Audit() []Violation {
	var out []Violation

	// What each agent actually hosts, keyed by (client, chain): chain
	// names are only unique per client, and the agents' chain status
	// carries the owning client, so same-named chains of different
	// clients never alias each other here.
	type hosting struct {
		station string
		enabled bool
	}
	s.mu.Lock()
	nodes := make(map[topology.StationID]*stationNode, len(s.stations))
	for id, sn := range s.stations {
		nodes[id] = sn
	}
	s.mu.Unlock()
	hostedOn := make(map[[2]string][]hosting) // {client, chain} -> hostings
	for id, sn := range nodes {
		for _, cs := range sn.ag.Report().Chains {
			if cs.Standby {
				// Prewarmed standbys are placement *intents* — disabled,
				// deliberately duplicating the active copy at the predicted
				// next station — so they are exempt from the duplicate/leak/
				// convergence invariants. A standby that somehow forwards is
				// a real violation, though: two live copies of one chain.
				if cs.Enabled {
					out = append(out, Violation{ViolationDuplicate,
						fmt.Sprintf("standby chain %s/%s on %s is forwarding", cs.Client, cs.Chain, id)})
				}
				continue
			}
			key := [2]string{cs.Client, cs.Chain}
			hostedOn[key] = append(hostedOn[key], hosting{station: string(id), enabled: cs.Enabled})
		}
	}
	for _, hs := range hostedOn {
		sort.Slice(hs, func(i, j int) bool { return hs[i].station < hs[j].station })
	}

	// The manager's view.
	placements := s.Manager.Placements()
	placedAt := make(map[[2]string]string, len(placements))
	for _, pl := range placements {
		placedAt[[2]string{pl.Client, pl.Chain}] = pl.Station
	}

	for key, hs := range hostedOn {
		client, chain := key[0], key[1]
		if len(hs) > 1 {
			sts := make([]string, 0, len(hs))
			for _, h := range hs {
				sts = append(sts, h.station)
			}
			out = append(out, Violation{ViolationDuplicate,
				fmt.Sprintf("chain %s/%s deployed on %v", client, chain, sts)})
		}
		want, known := placedAt[key]
		for _, h := range hs {
			if !known || want != h.station {
				out = append(out, Violation{ViolationLeak,
					fmt.Sprintf("chain %s/%s hosted on %s but placed on %q", client, chain, h.station, want)})
			}
		}
	}

	for _, pl := range placements {
		if pl.Station == "" {
			continue // never deployed (client attached nowhere yet)
		}
		if _, ok := nodes[topology.StationID(pl.Station)]; !ok {
			out = append(out, Violation{ViolationMissing,
				fmt.Sprintf("chain %s/%s placed on unknown station %s", pl.Client, pl.Chain, pl.Station)})
			continue
		}
		var here *hosting
		for i, h := range hostedOn[[2]string{pl.Client, pl.Chain}] {
			if h.station == pl.Station {
				here = &hostedOn[[2]string{pl.Client, pl.Chain}][i]
				break
			}
		}
		if here == nil {
			out = append(out, Violation{ViolationMissing,
				fmt.Sprintf("chain %s/%s placed on %s but not hosted there", pl.Client, pl.Chain, pl.Station)})
			continue
		}
		if !here.enabled {
			out = append(out, Violation{ViolationDisabled,
				fmt.Sprintf("chain %s/%s on %s is not forwarding", pl.Client, pl.Chain, pl.Station)})
		}
		// Convergence: an attached client is served where it is attached —
		// at its station, or at its cloud site with the traffic detour
		// installed at the station (offload). Anchored segments of split
		// chains (Segment > 0) are *meant* to sit away from the client;
		// only the head segment must converge.
		if pl.Segment != 0 {
			continue
		}
		st, attached := s.Manager.ClientStation(pl.Client)
		if !attached {
			continue // chains may wait at the last station while out of coverage
		}
		want := st
		if pl.Offload != "" {
			want = pl.Offload
		}
		if pl.Station != want {
			out = append(out, Violation{ViolationConvergence,
				fmt.Sprintf("client %s at %s but chain %s deployed on %s", pl.Client, st, pl.Chain, pl.Station)})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}
