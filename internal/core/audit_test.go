package core

import (
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

// auditFixture brings up two stations with one attached client + chain.
func auditFixture(t *testing.T) *System {
	t.Helper()
	sys, _, err := NewVirtualSystem(Config{
		Stations: []StationConfig{
			{ID: "st-a", Cells: []CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.AddClient("c0", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("c0", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachChain("c0", manager.ChainSpec{
		Name:      "ch",
		Functions: []agent.NFSpec{{Kind: "counter", Name: "acct"}},
	}); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()
	return sys
}

func kinds(vs []Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Kind]++
	}
	return out
}

func TestAuditCleanDeployment(t *testing.T) {
	sys := auditFixture(t)
	if vs := sys.Audit(); len(vs) != 0 {
		t.Fatalf("clean deployment reported violations: %v", vs)
	}
}

func TestAuditDetectsLeakAndDuplicate(t *testing.T) {
	sys := auditFixture(t)
	// Deploy a second copy behind the manager's back: both a duplicate
	// (two stations host "ch") and a leak (st-b isn't its placement).
	if _, err := sys.Agent("st-b").Deploy(agent.DeploySpec{
		Chain: "ch", Client: "c0",
		Functions: []agent.NFSpec{{Kind: "counter", Name: "acct"}},
		Enabled:   true,
	}); err != nil {
		t.Fatal(err)
	}
	got := kinds(sys.Audit())
	if got[ViolationDuplicate] == 0 || got[ViolationLeak] == 0 {
		t.Fatalf("want duplicate-deployment and chain-leak, got %v", got)
	}
}

func TestAuditDetectsDisabledChain(t *testing.T) {
	sys := auditFixture(t)
	if err := sys.Agent("st-a").Disable("ch"); err != nil {
		t.Fatal(err)
	}
	got := kinds(sys.Audit())
	if got[ViolationDisabled] == 0 {
		t.Fatalf("want disabled-chain, got %v", got)
	}
}

func TestAuditDetectsConvergenceBreach(t *testing.T) {
	sys := auditFixture(t)
	// Move the chain away from the client without telling the topology:
	// the manager now places it on st-b while the client sits on st-a.
	if _, err := sys.Manager.MigrateChain("c0", "ch", "st-b"); err != nil {
		t.Fatal(err)
	}
	got := kinds(sys.Audit())
	if got[ViolationConvergence] == 0 {
		t.Fatalf("want convergence violation, got %v", got)
	}
}

// TestAuditAllowsSameChainNameAcrossClients: chain names are unique per
// client, not globally — two clients holding same-named chains on
// different stations is a legal, convergent deployment.
func TestAuditAllowsSameChainNameAcrossClients(t *testing.T) {
	sys := auditFixture(t) // c0 on st-a with chain "ch"
	if err := sys.AddClient("c1", packet.MAC{2, 0, 0, 0, 0, 2}, packet.IP{10, 0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("c1", "cell-b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachChain("c1", manager.ChainSpec{
		Name:      "ch", // same name as c0's chain, different client
		Functions: []agent.NFSpec{{Kind: "counter", Name: "acct"}},
	}); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()
	if vs := sys.Audit(); len(vs) != 0 {
		t.Fatalf("same-named chains on two clients flagged: %v", vs)
	}
	// A station rejoin must not garbage-collect either copy: the other
	// client's placement elsewhere is not evidence this copy is stale.
	if err := sys.KillStation("st-b"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := sys.Manager.AgentHandleFor("st-b"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("manager never dropped st-b")
		}
		time.Sleep(time.Millisecond)
	}
	if err := sys.RestartStation("st-b"); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()
	if vs := sys.Audit(); len(vs) != 0 {
		t.Fatalf("rejoin GC disturbed a healthy same-named chain: %v", vs)
	}
}

func TestVirtualSystemRunsOnVirtualClock(t *testing.T) {
	sys, clk, err := NewVirtualSystem(Config{
		Stations: []StationConfig{
			{ID: "st-a", Cells: []CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	before := clk.Now()
	clk.Advance(42 * time.Second)
	if got := sys.Clock.Now().Sub(before); got != 42*time.Second {
		t.Fatalf("system clock moved %v, want 42s", got)
	}
}
