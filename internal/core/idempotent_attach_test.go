package core

import (
	"errors"
	"testing"
	"time"

	"gnf/internal/manager"
)

// TestAttachChainIdempotent: re-attaching a byte-identical ChainSpec is a
// no-op (declarative appliers re-submit specs freely), while attaching a
// different spec under the same name still conflicts. Regression test for
// the pre-reconciler behaviour where any duplicate name was an error.
func TestAttachChainIdempotent(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	spec := firewallChain("fw-chain")
	if err := sys.AttachChain("phone", spec); err != nil {
		t.Fatalf("first attach: %v", err)
	}
	if err := sys.WaitChainOn("st-a", "fw-chain", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		t.Fatalf("identical re-attach should be a no-op, got %v", err)
	}
	if chains := sys.Manager.Chains("phone"); len(chains) != 1 {
		t.Fatalf("chains after re-attach = %v", chains)
	}
	conflicting := firewallChain("fw-chain")
	conflicting.Functions[0].Params = map[string]string{"policy": "drop"}
	if err := sys.AttachChain("phone", conflicting); !errors.Is(err, manager.ErrChainExists) {
		t.Fatalf("conflicting attach err = %v, want ErrChainExists", err)
	}
}
