package core

import (
	"fmt"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

// natChain is a stateful chain whose migration must move the translation
// table — the live-migration pipeline's exemplar workload.
func natChain(name string) manager.ChainSpec {
	return manager.ChainSpec{
		Name: name,
		Functions: []agent.NFSpec{
			{Kind: "nat", Name: "nat0", Params: nf.Params{"nat_ip": "192.168.77.1", "ports": "30000-62000"}},
			{Kind: "counter", Name: "acct0"},
		},
	}
}

// liveSystem brings up a virtual-clock deployment with the given station
// count (stations st-0..st-n at x = 0, 100, 200, ... with cells cell-0..)
// and one client attached at cell-0.
func liveSystem(t *testing.T, stations int, strategy manager.Strategy) *System {
	t.Helper()
	cfg := Config{Strategy: strategy}
	for i := 0; i < stations; i++ {
		cfg.Stations = append(cfg.Stations, StationConfig{
			ID:       topology.StationID(fmt.Sprintf("st-%d", i)),
			Position: topology.Point{X: float64(i) * 100},
			Cells: []CellConfig{{
				ID:     topology.CellID(fmt.Sprintf("cell-%d", i)),
				Center: topology.Point{X: float64(i) * 100},
				Radius: 60,
			}},
		})
	}
	sys, _, err := NewVirtualSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.AddClient("phone", phoneMAC, phoneIP); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("phone", "cell-0"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-0", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return sys
}

// seedFlows pushes n distinct UDP flows through the client's chain on the
// station, growing NAT and counter state.
func seedFlows(t *testing.T, sys *System, station topology.StationID, chain string, n int) {
	t.Helper()
	fn, err := sys.Agent(station).ChainFunction(chain)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		frame := packet.BuildUDP(phoneMAC, serverMAC, phoneIP, serverIP,
			uint16(i%28000+2000), 53, nil)
		fn.Process(nf.Outbound, frame)
	}
}

func auditClean(t *testing.T, sys *System) {
	t.Helper()
	if vs := sys.Audit(); len(vs) != 0 {
		t.Fatalf("audit violations: %v", vs)
	}
}

func TestLiveMigrationPreservesStateWithSmallResidual(t *testing.T) {
	sys := liveSystem(t, 2, manager.StrategyLive)
	if err := sys.AttachChain("phone", natChain("edge")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-0", "edge", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	seedFlows(t, sys, "st-0", "edge", 2000)

	if err := sys.Topo.Attach("phone", "cell-1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-1", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()

	migs := sys.Manager.Migrations()
	if len(migs) != 1 {
		t.Fatalf("migrations = %+v", migs)
	}
	rep := migs[0]
	if rep.Err != "" || rep.Strategy != manager.StrategyLive {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Rounds < 1 || rep.PrecopyBytes == 0 {
		t.Fatalf("no pre-copy rounds ran: %+v", rep)
	}
	// The residual (shipped frozen) must be a sliver of the pre-copied
	// bulk — that is what makes downtime independent of state size.
	if rep.ResidualBytes*10 > rep.PrecopyBytes {
		t.Fatalf("residual %dB vs precopy %dB — freeze window not slim", rep.ResidualBytes, rep.PrecopyBytes)
	}

	// State continuity: the target's NAT table holds every seeded flow.
	fn, err := sys.Agent("st-1").ChainFunction("edge")
	if err != nil {
		t.Fatal(err)
	}
	stats := fn.NFStats()
	if got := stats["nat0.mappings"]; got != 2000 {
		t.Fatalf("migrated NAT mappings = %d, want 2000", got)
	}
	if got := stats["acct0.tracked_flows"]; got != 2000 {
		t.Fatalf("migrated counter flows = %d, want 2000", got)
	}
	auditClean(t, sys)
}

func TestLiveDowntimeFlatAcrossStateSizes(t *testing.T) {
	// Stop-and-copy downtime grows with state (checkpoint+restore of the
	// full blob sit inside the freeze); live downtime must not.
	downtime := func(strategy manager.Strategy, flows int) time.Duration {
		sys := liveSystem(t, 2, strategy)
		if err := sys.AttachChain("phone", natChain("edge")); err != nil {
			t.Fatal(err)
		}
		if err := sys.WaitChainOn("st-0", "edge", 5*time.Second); err != nil {
			t.Fatal(err)
		}
		seedFlows(t, sys, "st-0", "edge", flows)
		rep, err := sys.Manager.MigrateChain("phone", "edge", "st-1")
		if err != nil {
			t.Fatal(err)
		}
		return rep.Downtime
	}
	liveSmall := downtime(manager.StrategyLive, 100)
	liveBig := downtime(manager.StrategyLive, 10000)
	stopBig := downtime(manager.StrategyStateful, 10000)
	if liveBig > 4*liveSmall+time.Millisecond {
		t.Fatalf("live downtime scales with state: %v (100 flows) -> %v (10k flows)", liveSmall, liveBig)
	}
	if stopBig < 4*liveBig {
		t.Fatalf("stop-and-copy (%v) not dominated by live (%v) at 10k flows", stopBig, liveBig)
	}
}

func TestRapidDoubleHandoffMidPrecopy(t *testing.T) {
	sys := liveSystem(t, 2, manager.StrategyLive)
	if err := sys.AttachChain("phone", natChain("edge")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-0", "edge", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Enough state that the first pre-copy round is slow relative to the
	// follow-up handoff: the A->B migration is still in flight when the
	// client bounces back to A.
	seedFlows(t, sys, "st-0", "edge", 5000)

	if err := sys.Topo.Attach("phone", "cell-1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("phone", "cell-0"); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()

	if st, _ := sys.Manager.ClientStation("phone"); st != "st-0" {
		t.Fatalf("client at %q, want st-0", st)
	}
	// The chain must converge back to st-0, enabled, with no leaks on
	// st-1 and no invariant violations.
	deadline := time.After(5 * time.Second)
	for {
		if on, err := sys.Agent("st-0").ChainEnabled("edge"); err == nil && on {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("chain never converged to st-0: st-0=%v st-1=%v",
				sys.Agent("st-0").Chains(), sys.Agent("st-1").Chains())
		case <-time.After(2 * time.Millisecond):
		}
	}
	auditClean(t, sys)
	for _, rep := range sys.Manager.Migrations() {
		if rep.Err != "" {
			t.Fatalf("failed migration in double handoff: %+v", rep)
		}
	}
}

func TestPrewarmHitRateOnCommutePattern(t *testing.T) {
	sys := liveSystem(t, 2, manager.StrategyLive)
	sys.Manager.SetPrewarm(true)
	if err := sys.AttachChain("phone", natChain("edge")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-0", "edge", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	seedFlows(t, sys, "st-0", "edge", 500)

	cells := []topology.CellID{"cell-1", "cell-0"}
	stations := []topology.StationID{"st-1", "st-0"}
	for i := 0; i < 6; i++ {
		if err := sys.Topo.Attach("phone", cells[i%2]); err != nil {
			t.Fatal(err)
		}
		if err := sys.WaitClientAt("phone", stations[i%2], 5*time.Second); err != nil {
			t.Fatal(err)
		}
		sys.Manager.WaitIdle()
	}

	migs := sys.Manager.Migrations()
	prewarmed := 0
	for _, rep := range migs {
		if rep.Err != "" {
			t.Fatalf("failed migration: %+v", rep)
		}
		if rep.Prewarmed {
			prewarmed++
		}
	}
	// The Markov model knows both directions after the first round trip;
	// every later handoff must land on a warm standby: >= 4 of 6, and at
	// minimum the >=50% bar the predictor exists to clear.
	if len(migs) != 6 || prewarmed < 4 {
		t.Fatalf("prewarmed %d of %d migrations", prewarmed, len(migs))
	}
	auditClean(t, sys)
}

func TestPrewarmMissCleansStaleStandby(t *testing.T) {
	sys := liveSystem(t, 3, manager.StrategyLive)
	sys.Manager.SetPrewarm(true)
	if err := sys.AttachChain("phone", natChain("edge")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-0", "edge", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	seedFlows(t, sys, "st-0", "edge", 200)

	// Teach the model st-0 -> st-1, then come home: a standby now waits on
	// st-1.
	hop := func(cell topology.CellID, station topology.StationID) {
		t.Helper()
		if err := sys.Topo.Attach("phone", cell); err != nil {
			t.Fatal(err)
		}
		if err := sys.WaitClientAt("phone", station, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		sys.Manager.WaitIdle()
	}
	hop("cell-1", "st-1")
	hop("cell-0", "st-0")
	if chains := sys.Agent("st-1").Chains(); len(chains) != 1 {
		t.Fatalf("expected a standby staged on st-1, got %v", chains)
	}

	// The prediction misses: the client roams to st-2 instead. The stale
	// standby on st-1 must be torn down and the audit stay clean.
	hop("cell-2", "st-2")
	if chains := sys.Agent("st-1").Chains(); len(chains) != 0 {
		t.Fatalf("stale standby survived on st-1: %v", chains)
	}
	last := sys.Manager.Migrations()[len(sys.Manager.Migrations())-1]
	if last.Err != "" || last.Prewarmed {
		t.Fatalf("missed prediction still reported prewarmed: %+v", last)
	}
	auditClean(t, sys)
}

func TestDeadSourceActivatesWarmStandby(t *testing.T) {
	sys := liveSystem(t, 2, manager.StrategyLive)
	sys.Manager.SetPrewarm(true)
	if err := sys.AttachChain("phone", natChain("edge")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-0", "edge", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	seedFlows(t, sys, "st-0", "edge", 500)

	// One round trip teaches the model st-0 -> st-1, so a state-synced
	// standby ends up staged at st-1.
	hop := func(cell topology.CellID, station topology.StationID) {
		t.Helper()
		if err := sys.Topo.Attach("phone", cell); err != nil {
			t.Fatal(err)
		}
		if err := sys.WaitClientAt("phone", station, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		sys.Manager.WaitIdle()
	}
	hop("cell-1", "st-1")
	hop("cell-0", "st-0")
	if chains := sys.Agent("st-1").Chains(); len(chains) != 1 {
		t.Fatalf("expected a standby staged on st-1, got %v", chains)
	}

	// The source station dies (management plane), then the client roams to
	// the predicted station: no source can ship state, but the standby's
	// last synced snapshot must be activated rather than destroyed for a
	// cold restart.
	if err := sys.KillStation("st-0"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		if _, ok := sys.Manager.AgentHandleFor("st-0"); !ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("manager never dropped the killed station")
		case <-time.After(2 * time.Millisecond):
		}
	}
	hop("cell-1", "st-1")

	migs := sys.Manager.Migrations()
	last := migs[len(migs)-1]
	if last.Err != "" || !last.Prewarmed {
		t.Fatalf("dead-source migration = %+v, want prewarmed success", last)
	}
	fn, err := sys.Agent("st-1").ChainFunction("edge")
	if err != nil {
		t.Fatal(err)
	}
	if got := fn.NFStats()["nat0.mappings"]; got != 500 {
		t.Fatalf("NAT mappings after station death = %d, want 500 (standby snapshot lost)", got)
	}
	if on, err := sys.Agent("st-1").ChainEnabled("edge"); err != nil || !on {
		t.Fatalf("standby not activated: %v, %v", on, err)
	}

	// Restart the dead station: its rejoin announces the stale copy, the
	// manager garbage-collects it, and the audit comes back clean.
	if err := sys.RestartStation("st-0"); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()
	deadline = time.After(5 * time.Second)
	for len(sys.Agent("st-0").Chains()) != 0 {
		select {
		case <-deadline:
			t.Fatalf("stale chain survived rejoin GC: %v", sys.Agent("st-0").Chains())
		case <-time.After(2 * time.Millisecond):
		}
	}
	auditClean(t, sys)
}

func TestSharedPoolClientRoamsWhilePrewarmed(t *testing.T) {
	sys := liveSystem(t, 2, manager.StrategyLive)
	sys.Manager.SetPrewarm(true)
	// A second client anchors the shared instance on st-0.
	if err := sys.AddClient("tablet", packet.MAC{2, 0, 0, 0, 0, 0x11}, packet.IP{10, 0, 0, 11}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("tablet", "cell-0"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("tablet", "st-0", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	shareable := func(name string) manager.ChainSpec {
		return manager.ChainSpec{
			Name: name,
			Functions: []agent.NFSpec{
				{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
				{Kind: "counter", Name: "acct"},
			},
		}
	}
	if err := sys.AttachChain("phone", shareable("edge-phone")); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachChain("tablet", shareable("edge-tablet")); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()

	// Ping-pong the phone so standbys (shared attachments) get staged and
	// consumed while the tablet keeps sharing the st-0 instance.
	cells := []topology.CellID{"cell-1", "cell-0"}
	stations := []topology.StationID{"st-1", "st-0"}
	for i := 0; i < 6; i++ {
		if err := sys.Topo.Attach("phone", cells[i%2]); err != nil {
			t.Fatal(err)
		}
		if err := sys.WaitClientAt("phone", stations[i%2], 5*time.Second); err != nil {
			t.Fatal(err)
		}
		sys.Manager.WaitIdle()
	}

	for _, rep := range sys.Manager.Migrations() {
		if rep.Err != "" {
			t.Fatalf("failed migration: %+v", rep)
		}
	}
	// The tablet's attachment must have stayed enabled on st-0 throughout.
	if on, err := sys.Agent("st-0").ChainEnabled("edge-tablet"); err != nil || !on {
		t.Fatalf("tablet chain enabled = %v, %v", on, err)
	}
	if on, err := sys.Agent("st-0").ChainEnabled("edge-phone"); err != nil || !on {
		t.Fatalf("phone chain enabled = %v, %v", on, err)
	}
	auditClean(t, sys)
}
