package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

// TestHandoffStormRace floods the full system with concurrent handoffs
// across the manager's client shards while chains attach and detach and a
// station crashes and rejoins mid-storm — the adversarial schedule the
// sharded control plane must survive. Run under -race in CI. After the
// storm settles on live stations, the invariant audit must come back
// clean: no duplicate deployments, no leaked or disabled chains, every
// chain co-located with its client.
func TestHandoffStormRace(t *testing.T) {
	sys, _, err := NewVirtualSystem(Config{
		Stations: []StationConfig{
			{ID: "st-a", Cells: []CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
			{ID: "st-c", Cells: []CellConfig{{ID: "cell-c", Center: topology.Point{X: 200}, Radius: 60}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const clients = 24
	cells := []topology.CellID{"cell-a", "cell-b", "cell-c"}
	ids := make([]topology.ClientID, clients)
	for i := range ids {
		ids[i] = topology.ClientID(fmt.Sprintf("c%02d", i))
		mac := packet.MAC{2, 0, 0, 0, byte(i >> 8), byte(i)}
		ip := packet.IP{10, 0, byte(i >> 8), byte(i)}
		if err := sys.AddClient(ids[i], mac, ip); err != nil {
			t.Fatal(err)
		}
		if err := sys.Topo.Attach(ids[i], cells[i%len(cells)]); err != nil {
			t.Fatal(err)
		}
	}
	sys.Manager.WaitIdle()
	for i, id := range ids {
		if err := sys.AttachChain(id, manager.ChainSpec{
			Name:      fmt.Sprintf("ch-%02d", i),
			Functions: []agent.NFSpec{{Kind: "counter", Name: "acct"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.Manager.WaitIdle()

	// The storm: every client roams twice, a third of them churn an extra
	// chain through attach/detach, and st-c's agent connection dies and
	// rejoins in the middle of it all.
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id topology.ClientID) {
			defer wg.Done()
			for hop := 1; hop <= 2; hop++ {
				sys.Topo.Attach(id, cells[(i+hop)%len(cells)])
			}
			if i%3 == 0 {
				extra := manager.ChainSpec{
					Name:      fmt.Sprintf("extra-%02d", i),
					Functions: []agent.NFSpec{{Kind: "counter", Name: "x"}},
				}
				if err := sys.AttachChain(id, extra); err == nil {
					sys.Manager.DetachChain(string(id), extra.Name)
				}
			}
		}(i, id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sys.KillStation("st-c")
		time.Sleep(5 * time.Millisecond)
		if err := sys.RestartStation("st-c"); err != nil {
			t.Errorf("restart st-c: %v", err)
		}
	}()
	wg.Wait()

	// Settle on the two stations that stayed alive throughout; the final
	// handoff re-triggers reconciliation for any client whose mid-storm
	// migration failed against the dead station.
	for i, id := range ids {
		final := cells[i%2] // cell-a or cell-b
		if err := sys.Topo.Attach(id, final); err != nil {
			t.Fatal(err)
		}
	}
	sys.Manager.WaitIdle()
	for i, id := range ids {
		st := topology.StationID([]string{"st-a", "st-b"}[i%2])
		if err := sys.WaitClientAt(id, st, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	sys.Manager.WaitIdle()

	if vs := sys.Audit(); len(vs) != 0 {
		t.Fatalf("audit after storm: %v", vs)
	}
	// No duplicate placements in the manager's own view either: one
	// station per (client, chain).
	seen := make(map[string]string)
	for _, pl := range sys.Manager.Placements() {
		key := pl.Client + "/" + pl.Chain
		if prev, dup := seen[key]; dup {
			t.Fatalf("duplicate placement for %s: %s and %s", key, prev, pl.Station)
		}
		seen[key] = pl.Station
	}
}
