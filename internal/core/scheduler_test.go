package core

import (
	"errors"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/packet"
	"gnf/internal/traffic"
)

func TestScheduledEnableDisableWindow(t *testing.T) {
	sys, sink := demoSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "fw", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	now := sys.Clock.Now()
	// Window opens in 100ms of wall time and closes 100ms later.
	win := manager.Window{EnableAt: now.Add(100 * time.Millisecond), DisableAt: now.Add(200 * time.Millisecond)}
	if err := sys.Manager.Schedule("phone", "fw", win); err != nil {
		t.Fatal(err)
	}
	if got := sys.Manager.Schedules(); len(got) != 1 || got[0].Chain != "fw" {
		t.Fatalf("schedules = %+v", got)
	}

	// Before the window: evaluation disables the (attached-enabled) chain.
	if n := sys.Manager.EvaluateSchedules(); n != 1 {
		t.Fatalf("pre-window transitions = %d", n)
	}
	phone := sys.ClientHost("phone")
	phone.SendUDP(packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, []byte{0, 0, 0, 0, 0, 0, 0, 1})
	time.Sleep(50 * time.Millisecond)
	if sink.Count() != 0 {
		t.Fatal("traffic flowed outside the window")
	}

	// Inside the window: chain re-enables.
	time.Sleep(120 * time.Millisecond)
	if n := sys.Manager.EvaluateSchedules(); n != 1 {
		t.Fatalf("in-window transitions = %d", n)
	}
	traffic.CBRFrom(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 100, 5, 64, 0)
	deadline := time.After(2 * time.Second)
	for sink.Count() < 5 {
		select {
		case <-deadline:
			t.Fatalf("in-window traffic blocked: %d", sink.Count())
		case <-time.After(5 * time.Millisecond):
		}
	}

	// After the window: disabled again; repeated evaluation is idempotent.
	time.Sleep(120 * time.Millisecond)
	if n := sys.Manager.EvaluateSchedules(); n != 1 {
		t.Fatalf("post-window transitions = %d", n)
	}
	if n := sys.Manager.EvaluateSchedules(); n != 0 {
		t.Fatalf("idempotent evaluation made %d transitions", n)
	}
	before := sink.Count()
	phone.SendUDP(packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, []byte{0, 0, 0, 0, 0, 0, 1, 0})
	time.Sleep(50 * time.Millisecond)
	if sink.Count() != before {
		t.Fatal("traffic flowed after the window closed")
	}
}

func TestScheduleErrors(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	if err := sys.Manager.Schedule("ghost", "fw", manager.Window{}); !errors.Is(err, manager.ErrUnknownClient) {
		t.Fatalf("unknown client: %v", err)
	}
	if err := sys.Manager.Schedule("phone", "nope", manager.Window{}); !errors.Is(err, manager.ErrUnknownChain) {
		t.Fatalf("unknown chain: %v", err)
	}
}

func TestWindowContains(t *testing.T) {
	base := time.Date(2016, 8, 22, 12, 0, 0, 0, time.UTC)
	w := manager.Window{EnableAt: base, DisableAt: base.Add(time.Hour)}
	if w.Contains(base.Add(-time.Second)) {
		t.Fatal("before window")
	}
	if !w.Contains(base) || !w.Contains(base.Add(59*time.Minute)) {
		t.Fatal("inside window")
	}
	if w.Contains(base.Add(time.Hour)) {
		t.Fatal("at close boundary")
	}
	open := manager.Window{EnableAt: base}
	if !open.Contains(base.Add(1000 * time.Hour)) {
		t.Fatal("open-ended window")
	}
}

func TestEvacuateStationFollowsClient(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", manager.ChainSpec{
		Name:      "acct",
		Functions: []agent.NFSpec{{Kind: "counter", Name: "c0"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "acct", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// The client stays on st-a; evacuation must move the chain to the
	// least-loaded other station (st-b).
	reports, err := sys.Manager.EvacuateStation("st-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].To != "st-b" || reports[0].Err != "" {
		t.Fatalf("reports = %+v", reports)
	}
	if err := sys.WaitChainOn("st-b", "acct", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if chains := sys.Agent("st-a").Chains(); len(chains) != 0 {
		t.Fatalf("chains left on st-a: %v", chains)
	}
	// Evacuating an empty station is a no-op.
	reports, err = sys.Manager.EvacuateStation("st-a")
	if err != nil || len(reports) != 0 {
		t.Fatalf("empty evacuation: %+v, %v", reports, err)
	}
}

func TestLeastLoadedStation(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	st, ok := sys.Manager.LeastLoadedStation("st-a")
	if !ok || st != "st-b" {
		t.Fatalf("least loaded = %q, %v", st, ok)
	}
	if _, ok := sys.Manager.LeastLoadedStation(""); !ok {
		t.Fatal("no station at all")
	}
}
