// GNFC cloud sites (reference [2] of the demo paper): a cloud site is a
// high-capacity station attached to the backhaul over a WAN-emulated link,
// with one tunnel (also WAN-emulated) to every edge station. Chains
// offloaded there keep serving their client through the tunnel detour.
package core

import (
	"fmt"
	"time"

	"gnf/internal/agent"
	"gnf/internal/container"
	"gnf/internal/netem"
	"gnf/internal/topology"
)

// CloudConfig describes one GNFC cloud site.
type CloudConfig struct {
	ID topology.StationID
	// MemoryBytes caps the site's container memory (0 = unlimited; cloud
	// sites usually stay unlimited — capacity is their selling point).
	MemoryBytes uint64
	// WAN shapes the site's backhaul uplink and every edge tunnel.
	// Zero-value WAN defaults to 20 ms delay — an in-region cloud.
	WAN netem.LinkParams
}

// DefaultWAN is the link shape used when CloudConfig.WAN is zero: an
// in-region cloud at 20 ms one-way delay, 1 Gbit/s.
func DefaultWAN() netem.LinkParams {
	return netem.LinkParams{Delay: 20 * time.Millisecond, RateBps: 1_000_000_000}
}

// AddCloudSite attaches a cloud site to the deployment: switch, container
// runtime, agent (registered with the Cloud flag), WAN uplink into the
// backhaul, and tunnels to every existing edge station. Stations added
// later are tunnelled automatically.
func (s *System) AddCloudSite(cc CloudConfig) error {
	wan := cc.WAN
	if wan == (netem.LinkParams{}) {
		wan = DefaultWAN()
	}

	s.mu.Lock()
	if _, dup := s.stations[cc.ID]; dup {
		s.mu.Unlock()
		return fmt.Errorf("core: station %s already exists", cc.ID)
	}
	s.mu.Unlock()

	sw := netem.NewSwitch(string(cc.ID))
	var opts []container.RuntimeOption
	if cc.MemoryBytes > 0 {
		opts = append(opts, container.WithCapacity(cc.MemoryBytes))
	}
	rt := container.NewRuntime(string(cc.ID), s.Clock, s.Repo, opts...)

	// WAN uplink into the backhaul: port 0, as on edge stations.
	siteSide, coreSide := netem.NewVethPair(
		string(cc.ID)+"-up", string(cc.ID)+"-core",
		netem.WithClock(s.Clock), netem.WithLink(wan),
	)
	const uplinkPort = netem.PortID(0)
	sw.Attach(uplinkPort, siteSide)
	s.mu.Lock()
	corePort := s.nextCorePort
	s.nextCorePort++
	s.mu.Unlock()
	s.backbone.Attach(corePort, coreSide)

	ag := agent.New(cc.ID, s.Clock, rt, sw, uplinkPort, agent.WithCloud())
	link, err := agent.Connect(ag, s.Manager.Addr(), s.cfg.ReportInterval)
	if err != nil {
		return err
	}
	node := &stationNode{
		cfg:      StationConfig{ID: cc.ID, MemoryBytes: cc.MemoryBytes},
		sw:       sw,
		rt:       rt,
		ag:       ag,
		link:     link,
		uplink:   siteSide,
		cloud:    true,
		wan:      wan,
		nextPort: 1,
	}
	s.mu.Lock()
	s.stations[cc.ID] = node
	peers := make([]topology.StationID, 0, len(s.stations))
	for id, sn := range s.stations {
		if !sn.cloud && sn != node {
			peers = append(peers, id)
		}
	}
	s.mu.Unlock()

	// The site's cloud flag is set, so the registry shapes every one of
	// these legs with the site's WAN parameters.
	for _, edge := range peers {
		if err := s.EnsureTunnel(edge, cc.ID); err != nil {
			return err
		}
	}
	return nil
}

// CloudSites lists attached cloud site IDs.
func (s *System) CloudSites() []topology.StationID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []topology.StationID
	for id, sn := range s.stations {
		if sn.cloud {
			out = append(out, id)
		}
	}
	return out
}

// OffloadClient moves a client's chains to a cloud site via the Manager.
func (s *System) OffloadClient(client topology.ClientID, site topology.StationID) error {
	_, err := s.Manager.OffloadClient(string(client), string(site))
	return err
}

// RecallClient returns an offloaded client's chains to its edge station.
func (s *System) RecallClient(client topology.ClientID) error {
	_, err := s.Manager.RecallClient(string(client))
	return err
}
