package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/traffic"
)

var (
	phoneMAC  = packet.MAC{2, 0, 0, 0, 0, 0x10}
	phoneIP   = packet.IP{10, 0, 0, 10}
	serverMAC = packet.MAC{2, 0, 0, 0, 0, 0x99}
	serverIP  = packet.IP{10, 99, 0, 1}
)

// twoStationConfig is the Fig. 2 demo layout: two stations, one cell each.
func twoStationConfig(strategy manager.Strategy) Config {
	return Config{
		Strategy:       strategy,
		ReportInterval: 50 * time.Millisecond,
		Stations: []StationConfig{
			{ID: "st-a", Cells: []CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
	}
}

// demoSystem brings up the two-station system with a phone and a server.
func demoSystem(t *testing.T, strategy manager.Strategy) (*System, *traffic.Sink) {
	t.Helper()
	sys, err := NewSystem(twoStationConfig(strategy))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.AddClient("phone", phoneMAC, phoneIP); err != nil {
		t.Fatal(err)
	}
	server := sys.AddServer("web", serverMAC, serverIP)
	sink := traffic.NewSink(server, 7000, sys.Clock)
	server.Learn(phoneIP, phoneMAC)
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sys.ClientHost("phone").Learn(serverIP, serverMAC)
	return sys, sink
}

func firewallChain(name string) manager.ChainSpec {
	return manager.ChainSpec{
		Name: name,
		Functions: []agent.NFSpec{{
			Kind: "firewall", Name: "fw0",
			Params: nf.Params{"policy": "accept", "rules": "drop out udp any any any 9999"},
		}},
	}
}

func TestSystemBringupAndChainTraffic(t *testing.T) {
	sys, sink := demoSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw-chain")); err != nil {
		t.Fatalf("AttachChain: %v", err)
	}
	if err := sys.WaitChainOn("st-a", "fw-chain", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	phone := sys.ClientHost("phone")
	sent := traffic.CBR(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 20, 64, 500)
	deadline := time.After(5 * time.Second)
	for sink.Count() < sent {
		select {
		case <-deadline:
			t.Fatalf("received %d of %d", sink.Count(), sent)
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Blocked port drops inside the chain.
	phone.SendUDP(packet.Endpoint{Addr: serverIP, Port: 9999}, 6001, []byte{0, 0, 0, 0, 0, 0, 0, 99})
	time.Sleep(50 * time.Millisecond)
	ag := sys.Agent("st-a")
	chainFn, err := ag.ChainFunction("fw-chain")
	if err != nil {
		t.Fatal(err)
	}
	if chainFn.NFStats()["fw0.dropped"] != 1 {
		t.Fatalf("stats = %v", chainFn.NFStats())
	}
}

func TestRoamingMigratesChainStateful(t *testing.T) {
	sys, sink := demoSystem(t, manager.StrategyStateful)
	spec := manager.ChainSpec{
		Name: "acct",
		Functions: []agent.NFSpec{{
			Kind: "counter", Name: "acct0", Params: nf.Params{},
		}},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "acct", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	phone := sys.ClientHost("phone")
	traffic.CBR(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 10, 64, 0)
	deadline := time.After(5 * time.Second)
	for sink.Count() < 10 {
		select {
		case <-deadline:
			t.Fatalf("pre-roam: received %d of 10", sink.Count())
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Roam to cell B: the chain must follow with its counters.
	if err := sys.Topo.Attach("phone", "cell-b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-b", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-b", "acct", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	migs := sys.Manager.Migrations()
	if len(migs) != 1 {
		t.Fatalf("migrations = %+v", migs)
	}
	m := migs[0]
	if m.From != "st-a" || m.To != "st-b" || m.Strategy != manager.StrategyStateful || m.Err != "" {
		t.Fatalf("migration = %+v", m)
	}
	if m.StateBytes == 0 {
		t.Fatal("stateful migration moved zero state")
	}
	if m.Downtime <= 0 || m.Total < m.Downtime {
		t.Fatalf("timing: downtime=%v total=%v", m.Downtime, m.Total)
	}
	// Old station cleaned up.
	if chains := sys.Agent("st-a").Chains(); len(chains) != 0 {
		t.Fatalf("stale chains on st-a: %v", chains)
	}
	// Migrated counters continue from their pre-roam values.
	chainFn, err := sys.Agent("st-b").ChainFunction("acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := chainFn.NFStats()["acct0.total_frames"]; got < 10 {
		t.Fatalf("migrated total_frames = %d, want >= 10", got)
	}

	// Traffic continues at the new station.
	before := sink.Count()
	sys.ClientHost("phone").Learn(serverIP, serverMAC)
	traffic.CBRFrom(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 1000, 10, 64, 0)
	deadline = time.After(5 * time.Second)
	for sink.Count() < before+10 {
		select {
		case <-deadline:
			t.Fatalf("post-roam: received %d, want %d", sink.Count(), before+10)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestRoamingColdLosesState(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyCold)
	spec := manager.ChainSpec{
		Name:      "acct",
		Functions: []agent.NFSpec{{Kind: "counter", Name: "acct0"}},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "acct", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	phone := sys.ClientHost("phone")
	traffic.CBR(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 5, 64, 0)
	time.Sleep(100 * time.Millisecond)

	if err := sys.Topo.Attach("phone", "cell-b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-b", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-b", "acct", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	migs := sys.Manager.Migrations()
	if len(migs) != 1 || migs[0].Strategy != manager.StrategyCold {
		t.Fatalf("migrations = %+v", migs)
	}
	if migs[0].StateBytes != 0 {
		t.Fatal("cold migration carried state")
	}
	chainFn, err := sys.Agent("st-b").ChainFunction("acct")
	if err != nil {
		t.Fatal(err)
	}
	if got := chainFn.NFStats()["acct0.total_frames"]; got != 0 {
		t.Fatalf("cold-migrated chain has %d frames of history", got)
	}
}

func TestNotificationPipelineToManager(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	spec := manager.ChainSpec{
		Name: "ids",
		Functions: []agent.NFSpec{{
			Kind: "counter", Name: "ids0",
			Params: nf.Params{"signatures": "malware-beacon"},
		}},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "ids", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	phone := sys.ClientHost("phone")
	phone.SendUDP(packet.Endpoint{Addr: serverIP, Port: 1}, 2, []byte("malware-beacon ping"))
	deadline := time.After(5 * time.Second)
	for len(sys.Manager.Notifications()) == 0 {
		select {
		case <-deadline:
			t.Fatal("notification never reached the manager")
		case <-time.After(5 * time.Millisecond):
		}
	}
	al := sys.Manager.Notifications()[0]
	if al.Station != "st-a" || al.Notification.Severity != nf.SevWarning {
		t.Fatalf("alert = %+v", al)
	}
	if !strings.Contains(al.Notification.Message, "malware-beacon") {
		t.Fatalf("message = %q", al.Notification.Message)
	}
}

func TestHealthReportsReachManager(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	if got := sys.Manager.Agents(); len(got) != 2 {
		t.Fatalf("agents = %v", got)
	}
	h, ok := sys.Manager.AgentHandleFor("st-a")
	if !ok {
		t.Fatal("no handle for st-a")
	}
	deadline := time.After(5 * time.Second)
	for {
		rep, seen := h.LastReport()
		if !seen.IsZero() && rep.Station == "st-a" {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no report arrived")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestAttachChainErrors(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	if err := sys.Manager.AttachChain("ghost", firewallChain("x")); !errors.Is(err, manager.ErrUnknownClient) {
		t.Fatalf("unknown client: %v", err)
	}
	if err := sys.AttachChain("phone", firewallChain("dup")); err != nil {
		t.Fatal(err)
	}
	// Same name, different spec: still a conflict. (A byte-identical
	// re-attach is a no-op — see TestAttachChainIdempotent.)
	conflicting := firewallChain("dup")
	conflicting.Functions[0].Params = map[string]string{"policy": "drop"}
	if err := sys.AttachChain("phone", conflicting); !errors.Is(err, manager.ErrChainExists) {
		t.Fatalf("dup chain: %v", err)
	}
	// Unattached client.
	if err := sys.AddClient("tablet", packet.MAC{2, 1, 1, 1, 1, 1}, packet.IP{10, 0, 0, 11}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachChain("tablet", firewallChain("t")); !errors.Is(err, manager.ErrNotAttached) {
		t.Fatalf("unattached: %v", err)
	}
	// Unknown NF kind propagates the agent's error over the wire.
	err := sys.AttachChain("phone", manager.ChainSpec{
		Name:      "badkind",
		Functions: []agent.NFSpec{{Kind: "warp", Name: "w"}},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown function kind") {
		t.Fatalf("bad kind: %v", err)
	}
}

func TestDetachChainRemovesDeployment(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "fw", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.Manager.DetachChain("phone", "fw"); err != nil {
		t.Fatal(err)
	}
	if chains := sys.Agent("st-a").Chains(); len(chains) != 0 {
		t.Fatalf("chains = %v", chains)
	}
	if err := sys.Manager.DetachChain("phone", "fw"); !errors.Is(err, manager.ErrUnknownChain) {
		t.Fatalf("double detach: %v", err)
	}
	if got := sys.Manager.Chains("phone"); len(got) != 0 {
		t.Fatalf("manager chains = %v", got)
	}
}

func TestRepoOutageFailsAttach(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	boom := errors.New("repository unreachable")
	sys.Repo.SetFailure(boom)
	err := sys.AttachChain("phone", firewallChain("fw"))
	if err == nil || !strings.Contains(err.Error(), "repository unreachable") {
		t.Fatalf("attach during outage: %v", err)
	}
	sys.Repo.SetFailure(nil)
	if err := sys.AttachChain("phone", firewallChain("fw")); err != nil {
		t.Fatalf("attach after recovery: %v", err)
	}
}

func TestManualMigration(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	if err := sys.AttachChain("phone", firewallChain("fw")); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "fw", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Manager.MigrateChain("phone", "fw", "st-b")
	if err != nil {
		t.Fatalf("MigrateChain: %v", err)
	}
	if rep.To != "st-b" || rep.Err != "" {
		t.Fatalf("report = %+v", rep)
	}
	if err := sys.WaitChainOn("st-b", "fw", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Manager.MigrateChain("phone", "ghost", "st-b"); !errors.Is(err, manager.ErrUnknownChain) {
		t.Fatalf("unknown chain: %v", err)
	}
	if _, err := sys.Manager.MigrateChain("ghost", "fw", "st-b"); !errors.Is(err, manager.ErrUnknownClient) {
		t.Fatalf("unknown client: %v", err)
	}
}

func TestRoamingPreservesDNSCache(t *testing.T) {
	sys, _ := demoSystem(t, manager.StrategyStateful)
	resolver := sys.AddServer("dns", packet.MAC{2, 0, 0, 0, 0, 0x53}, packet.IP{10, 99, 0, 53})
	traffic.DNSServer(resolver, map[string]packet.IP{"cdn.example": {1, 2, 3, 4}})
	resolver.Learn(phoneIP, phoneMAC)

	spec := manager.ChainSpec{
		Name:      "cache",
		Functions: []agent.NFSpec{{Kind: "dnscache", Name: "dc0", Params: nf.Params{"max_ttl": "300"}}},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "cache", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	phone := sys.ClientHost("phone")
	phone.Learn(packet.IP{10, 99, 0, 53}, packet.MAC{2, 0, 0, 0, 0, 0x53})
	res := traffic.DNSQuery(phone, packet.Endpoint{Addr: packet.IP{10, 99, 0, 53}, Port: 53}, 30000, 1, "cdn.example", 2*time.Second)
	if res == nil || len(res.Answers) == 0 {
		t.Fatalf("first query failed: %+v", res)
	}

	// Roam; the cache state must follow.
	if err := sys.Topo.Attach("phone", "cell-b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-b", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-b", "cache", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	chainFn, err := sys.Agent("st-b").ChainFunction("cache")
	if err != nil {
		t.Fatal(err)
	}
	if chainFn.NFStats()["dc0.entries"] != 1 {
		t.Fatalf("cache entries after migration = %v", chainFn.NFStats())
	}
	// Second query is answered at the edge (hit counter increments).
	phone.Learn(packet.IP{10, 99, 0, 53}, packet.MAC{2, 0, 0, 0, 0, 0x53})
	res = traffic.DNSQuery(phone, packet.Endpoint{Addr: packet.IP{10, 99, 0, 53}, Port: 53}, 30001, 2, "cdn.example", 2*time.Second)
	if res == nil || len(res.Answers) == 0 || res.Answers[0].A != (packet.IP{1, 2, 3, 4}) {
		t.Fatalf("cached query failed: %+v", res)
	}
	if chainFn.NFStats()["dc0.hits"] != 1 {
		t.Fatalf("stats = %v", chainFn.NFStats())
	}
}
