// Station-to-station tunnel registry. Three subsystems used to provision
// inter-switch veths independently — cloud WAN tunnels (AddCloudSite and
// late addStation), modeled topology links (wireTopologyLinks), and now
// the manager's on-demand split-chain legs — each with its own bookkeeping
// on stationNode. This file unifies them: every tunnel is created through
// EnsureTunnel, recorded once under an order-independent station-pair key,
// and torn down together in Close.
//
// EnsureTunnel is idempotent per pair, which is what lets the manager call
// it eagerly on every migration and attach without double-wiring: the
// registry lock is held across the lookup *and* the wiring, so two
// concurrent calls for the same pair serialise and the loser sees the
// winner's entry.
//
// Link shaping resolves in priority order:
//
//  1. either endpoint is a cloud site → that site's WAN shape (both
//     directions of an offload detour should cost WAN latency);
//  2. the pair appears in cfg.Topology → the modeled link's delay/rate;
//  3. otherwise → cfg.BackhaulLink (same fabric ordinary traffic rides).
//
// There is no per-pair teardown: agents index tunnels by peer for steering
// rule construction, and a chain segment may re-target onto a tunnel at
// any time, so tunnels live as long as the System. Close closes them all.
package core

import (
	"fmt"
	"sync"

	"gnf/internal/netem"
	"gnf/internal/topology"
)

// tunnelPair keys a tunnel order-independently: EnsureTunnel(a, b) and
// EnsureTunnel(b, a) name the same wire.
type tunnelPair [2]topology.StationID

func pairOf(a, b topology.StationID) tunnelPair {
	if b < a {
		a, b = b, a
	}
	return tunnelPair{a, b}
}

// tunnelEnds holds both endpoints of one provisioned tunnel veth for
// teardown.
type tunnelEnds struct {
	a, b *netem.Endpoint
}

// tunnelRegistry is the System's table of provisioned tunnels.
type tunnelRegistry struct {
	mu    sync.Mutex
	links map[tunnelPair]*tunnelEnds
}

// EnsureTunnel provisions a shaped tunnel veth between the two stations'
// switches unless one already exists. Both ends attach as *service* ports
// (no MAC learning, excluded from flooding — the L2 topology stays
// loop-free) and register with both agents, so steering rules on either
// side can detour traffic across it. Same-station and empty-ID calls are
// no-ops; unknown stations are an error.
func (s *System) EnsureTunnel(aID, bID topology.StationID) error {
	if aID == bID || aID == "" || bID == "" {
		return nil
	}
	s.tun.mu.Lock()
	defer s.tun.mu.Unlock()
	pair := pairOf(aID, bID)
	if _, ok := s.tun.links[pair]; ok {
		return nil
	}

	s.mu.Lock()
	a, b := s.stations[aID], s.stations[bID]
	s.mu.Unlock()
	if a == nil || b == nil {
		return fmt.Errorf("core: cannot tunnel %s<->%s: unknown station", aID, bID)
	}

	aSide, bSide := netem.NewVethPair(
		fmt.Sprintf("%s-tun-%s", a.cfg.ID, b.cfg.ID),
		fmt.Sprintf("%s-tun-%s", b.cfg.ID, a.cfg.ID),
		netem.WithClock(s.Clock), netem.WithLink(s.tunnelShape(a, b)),
	)
	ap, bp := a.allocPort(), b.allocPort()
	a.sw.AttachService(ap, aSide)
	b.sw.AttachService(bp, bSide)
	a.ag.RegisterTunnel(b.cfg.ID, ap)
	b.ag.RegisterTunnel(a.cfg.ID, bp)
	s.tun.links[pair] = &tunnelEnds{a: aSide, b: bSide}
	return nil
}

// tunnelShape resolves the link parameters for a tunnel between two
// stations: cloud WAN beats modeled topology link beats backhaul default.
func (s *System) tunnelShape(a, b *stationNode) netem.LinkParams {
	if a.cloud {
		return a.wan
	}
	if b.cloud {
		return b.wan
	}
	if s.cfg.Topology != nil {
		for _, l := range s.cfg.Topology.Links() {
			if (l.A == a.cfg.ID && l.B == b.cfg.ID) || (l.A == b.cfg.ID && l.B == a.cfg.ID) {
				return netem.LinkParams{Delay: l.Delay, RateBps: l.RateBps}
			}
		}
	}
	return s.cfg.BackhaulLink
}

// HasTunnel reports whether a tunnel between the two stations has been
// provisioned (tests and the audit use it; order-independent).
func (s *System) HasTunnel(aID, bID topology.StationID) bool {
	s.tun.mu.Lock()
	defer s.tun.mu.Unlock()
	_, ok := s.tun.links[pairOf(aID, bID)]
	return ok
}

// closeTunnels tears down every provisioned tunnel. Called from Close.
func (s *System) closeTunnels() {
	s.tun.mu.Lock()
	defer s.tun.mu.Unlock()
	for _, t := range s.tun.links {
		t.a.Close()
		t.b.Close()
	}
	s.tun.links = make(map[tunnelPair]*tunnelEnds)
}
