package core

import (
	"fmt"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

// sharedChain is an identical shareable spec for every client, with the
// per-client chain name the manager requires.
func sharedChain(name string) manager.ChainSpec {
	return manager.ChainSpec{
		Name: name,
		Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
			{Kind: "counter", Name: "acct"},
		},
	}
}

// TestSharedPoolDensityHundredClients is the tentpole acceptance check:
// 100 clients on one station, all deploying the same shareable chain spec
// through the full Manager->Agent path, must share O(replicas) NF
// instances — and the placement invariants must still audit clean.
func TestSharedPoolDensityHundredClients(t *testing.T) {
	sys, _, err := NewVirtualSystem(Config{
		Stations: []StationConfig{
			{ID: "st-a", Cells: []CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 500}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	const clients = 100
	for i := 0; i < clients; i++ {
		id := topology.ClientID(fmt.Sprintf("c%03d", i))
		mac := packet.MAC{2, 0, 0, 7, byte(i >> 8), byte(i)}
		ip := packet.IP{10, 7, byte(i >> 8), byte(i + 1)}
		if err := sys.AddClient(id, mac, ip); err != nil {
			t.Fatal(err)
		}
		if err := sys.Topo.Attach(id, "cell-a"); err != nil {
			t.Fatal(err)
		}
		if err := sys.AttachChain(id, sharedChain(fmt.Sprintf("fw-%s", id))); err != nil {
			t.Fatalf("attach chain %d: %v", i, err)
		}
	}

	ag := sys.Agent("st-a")
	if got := len(ag.Chains()); got != clients {
		t.Fatalf("agent hosts %d chains, want %d", got, clients)
	}
	// One shared instance (2 containers: firewall + counter), not 200.
	if got := len(ag.Runtime().List()); got != 2 {
		t.Fatalf("station runs %d containers for %d clients, want 2", got, clients)
	}
	pools := ag.PoolStats()
	if len(pools) != 1 || pools[0].Refs != clients || pools[0].Replicas != 1 {
		t.Fatalf("pools = %+v", pools)
	}

	if violations := sys.Audit(); len(violations) != 0 {
		t.Fatalf("audit violations with sharing: %v", violations)
	}

	// Scaling the shared instance out keeps the audit clean too.
	if err := ag.ScalePool(pools[0].Kinds, pools[0].ConfigHash, 3); err != nil {
		t.Fatal(err)
	}
	if got := len(ag.Runtime().List()); got != 6 {
		t.Fatalf("containers after scale-out = %d, want 6", got)
	}
	if violations := sys.Audit(); len(violations) != 0 {
		t.Fatalf("audit violations after scale-out: %v", violations)
	}

	// Detaching every client drains the pool; after grace the instance dies.
	for i := 0; i < clients; i++ {
		id := fmt.Sprintf("c%03d", i)
		if err := sys.Manager.DetachChain(id, "fw-c"+id[1:]); err != nil {
			t.Fatalf("detach %s: %v", id, err)
		}
	}
	if pools := ag.PoolStats(); len(pools) != 1 || pools[0].Refs != 0 {
		t.Fatalf("pools after detach = %+v", pools)
	}
}

// TestSharedMigrationOneSharerRoams checks the roaming interaction: two
// clients share an instance on st-a; one roams to st-b. Its chain must
// migrate (fresh instance on st-b), the stayer must keep the st-a
// instance, and the audit must stay clean throughout.
func TestSharedMigrationOneSharerRoams(t *testing.T) {
	sys, _, err := NewVirtualSystem(Config{
		Stations: []StationConfig{
			{ID: "st-a", Cells: []CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	for i, id := range []topology.ClientID{"alice", "bob"} {
		mac := packet.MAC{2, 0, 0, 8, 0, byte(i + 1)}
		ip := packet.IP{10, 8, 0, byte(i + 1)}
		if err := sys.AddClient(id, mac, ip); err != nil {
			t.Fatal(err)
		}
		if err := sys.Topo.Attach(id, "cell-a"); err != nil {
			t.Fatal(err)
		}
		if err := sys.AttachChain(id, sharedChain("fw-"+string(id))); err != nil {
			t.Fatal(err)
		}
	}
	agA, agB := sys.Agent("st-a"), sys.Agent("st-b")
	if pools := agA.PoolStats(); len(pools) != 1 || pools[0].Refs != 2 {
		t.Fatalf("st-a pools = %+v", pools)
	}

	// Alice roams to st-b; her chain migrates, bob's stays shared on st-a.
	if err := sys.Topo.MoveClient("alice", topology.Point{X: 100}, 5); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("alice", "st-b", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()

	if pools := agA.PoolStats(); len(pools) != 1 || pools[0].Refs != 1 {
		t.Fatalf("st-a pools after roam = %+v", pools)
	}
	if pools := agB.PoolStats(); len(pools) != 1 || pools[0].Refs != 1 {
		t.Fatalf("st-b pools after roam = %+v", pools)
	}
	if enabled, err := agB.ChainEnabled("fw-alice"); err != nil || !enabled {
		t.Fatalf("migrated chain enabled = %v, %v", enabled, err)
	}
	if enabled, err := agA.ChainEnabled("fw-bob"); err != nil || !enabled {
		t.Fatalf("stayer chain enabled = %v, %v", enabled, err)
	}
	if violations := sys.Audit(); len(violations) != 0 {
		t.Fatalf("audit violations after sharer migration: %v", violations)
	}
}
