package core

import (
	"fmt"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/mobility"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

// TestMultiClientWaypointRoaming runs the Fig. 1 scenario at small scale:
// three stations in a corridor, four clients walking random waypoints,
// each with an attached chain. Every handoff must end with the client's
// chain deployed (enabled) on its current station and no chain leaked on
// other stations.
func TestMultiClientWaypointRoaming(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-client roaming is slow")
	}
	stations := []StationConfig{
		{ID: "st-0", Cells: []CellConfig{{ID: "cell-0", Center: topology.Point{X: 0}, Radius: 80}}},
		{ID: "st-1", Cells: []CellConfig{{ID: "cell-1", Center: topology.Point{X: 120}, Radius: 80}}},
		{ID: "st-2", Cells: []CellConfig{{ID: "cell-2", Center: topology.Point{X: 240}, Radius: 80}}},
	}
	sys, err := NewSystem(Config{
		Strategy:       manager.StrategyStateful,
		ReportInterval: time.Hour,
		Stations:       stations,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const nClients = 4
	for i := 0; i < nClients; i++ {
		id := topology.ClientID(fmt.Sprintf("c%d", i))
		if err := sys.AddClient(id, packet.MAC{2, 0, 0, 0, 1, byte(i)}, packet.IP{10, 0, 1, byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
		// Start everyone in cell-0's coverage.
		if err := sys.Topo.MoveClient(id, topology.Point{X: float64(i * 10)}, 5); err != nil {
			t.Fatal(err)
		}
		if err := sys.WaitClientAt(id, "st-0", 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := sys.AttachChain(id, manager.ChainSpec{
			Name:      fmt.Sprintf("chain-%d", i),
			Functions: []agent.NFSpec{{Kind: "counter", Name: "acct"}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	wp := mobility.NewWaypoint(sys.Topo, 240, 40, 40 /* m/s */, 99)
	handoffs := 0
	for round := 0; round < 40; round++ {
		handoffs += wp.Step(time.Second)
	}
	if handoffs == 0 {
		t.Fatal("no handoffs over 40 simulated seconds at 40 m/s")
	}

	// Let all in-flight migrations settle, then audit placement.
	deadline := time.Now().Add(20 * time.Second)
	for {
		sys.Manager.WaitIdle()
		ok := true
		for i := 0; i < nClients; i++ {
			id := fmt.Sprintf("c%d", i)
			chain := fmt.Sprintf("chain-%d", i)
			st, attached := sys.Manager.ClientStation(id)
			if !attached {
				continue // client momentarily out of coverage
			}
			found := false
			for _, name := range sys.Agent(topology.StationID(st)).Chains() {
				if name == chain {
					found = true
				}
			}
			if !found {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("chains did not converge to their clients' stations")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// No duplicate deployments anywhere.
	total := 0
	for _, sc := range stations {
		total += len(sys.Agent(sc.ID).Chains())
	}
	attached := 0
	for i := 0; i < nClients; i++ {
		if _, ok := sys.Manager.ClientStation(fmt.Sprintf("c%d", i)); ok {
			attached++
		}
	}
	if total > nClients {
		t.Fatalf("%d chain deployments for %d clients (leak)", total, nClients)
	}
	if total < attached {
		t.Fatalf("%d deployments for %d attached clients", total, attached)
	}
	if len(sys.Manager.Migrations()) == 0 {
		t.Fatal("no migrations recorded despite handoffs")
	}
	for _, m := range sys.Manager.Migrations() {
		if m.Err != "" {
			t.Fatalf("failed migration: %+v", m)
		}
	}
}
