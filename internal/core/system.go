// Package core is GNF's top-level façade: it assembles a complete edge
// deployment — the backhaul network, per-station software switches and
// container runtimes, Agents connected to a Manager over real TCP, the
// central NF image repository, and mobile clients — from one Config. It
// owns the "physical" wiring that the paper's testbed provided (home
// routers, WiFi association, Ethernet backhaul) and turns topology
// association events into the dataplane re-homing plus Agent notifications
// that drive function roaming.
//
// Layout (compare Fig. 2 of the paper):
//
//	client host ── veth ── [station switch] ── veth ── [backhaul switch] ── servers
//	                         │        │
//	                     chain-in  chain-out        (per deployed chain)
//	                         └─[ChainHost: NF chain in containers]┘
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/manager"
	"gnf/internal/netem"
	"gnf/internal/packet"
	"gnf/internal/topology"

	// Every System can instantiate the built-in NF kinds.
	"gnf/internal/nf/builtin"
)

// Errors returned by the system.
var (
	ErrUnknownClient = errors.New("core: unknown client")
	ErrTimeout       = errors.New("core: condition not reached in time")
)

// CellConfig describes one coverage cell of a station.
type CellConfig struct {
	ID     topology.CellID
	Center topology.Point
	Radius float64
}

// StationConfig describes one GNF station.
type StationConfig struct {
	ID topology.StationID
	// MemoryBytes caps the station's container memory (0 = unlimited).
	MemoryBytes uint64
	Position    topology.Point
	Cells       []CellConfig
}

// Config assembles a System.
type Config struct {
	Clock    clock.Clock // default: system clock
	Stations []StationConfig
	// Strategy picks the roaming migration strategy (default stateful).
	Strategy manager.Strategy
	// RepoRateBps is the image repository's download rate (default 100 Mbit/s).
	RepoRateBps int64
	// RepoRTT is the pull setup latency (default 5ms).
	RepoRTT time.Duration
	// ReportInterval is the agent health-report period (default 1s; these
	// ride real TCP so they always use wall time).
	ReportInterval time.Duration
	// AccessLink shapes client<->station links (default ideal).
	AccessLink netem.LinkParams
	// BackhaulLink shapes station<->backhaul links (default ideal).
	BackhaulLink netem.LinkParams
	// Images overrides the default NF image catalogue pushed to the repo.
	Images []container.Image
	// Clouds attaches GNFC cloud sites, provisioned after every station
	// so each site starts fully tunnelled.
	Clouds []CloudConfig
	// Topology is the modeled station graph: link delays and rates between
	// stations. When set, every edge-to-edge link is instantiated as a
	// shaped netem veth between the two station switches and registered as
	// a tunnel (the detour fabric remote deployments ride), and the
	// Manager receives the graph for RTT-aware placement. The backhaul
	// still carries ordinary client->chain->server traffic: the graph is
	// the placement model, not a replacement dataplane. Cloud nodes in the
	// graph are informational — AddCloudSite wires their WAN tunnels
	// itself.
	Topology *topology.Graph
}

// stationNode is one station's physical assets.
type stationNode struct {
	cfg    StationConfig
	sw     *netem.Switch
	rt     *container.Runtime
	ag     *agent.Agent
	link   *agent.Link
	uplink *netem.Endpoint // station side of the backhaul veth
	cloud  bool            // GNFC cloud site
	wan    netem.LinkParams

	mu       sync.Mutex
	nextPort netem.PortID
}

func (sn *stationNode) allocPort() netem.PortID {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	p := sn.nextPort
	sn.nextPort++
	return p
}

// clientNode is one mobile client's dataplane presence.
type clientNode struct {
	id   topology.ClientID
	mac  packet.MAC
	ip   packet.IP
	host *netem.Host

	mu      sync.Mutex
	station topology.StationID
	ep      *netem.Endpoint // client side of the current access veth
	swSide  *netem.Endpoint
	port    netem.PortID
}

// System is a running GNF deployment.
type System struct {
	Clock   clock.Clock
	Topo    *topology.Topology
	Manager *manager.Manager
	Repo    *container.Repository

	cfg      Config
	backbone *netem.Switch
	tun      tunnelRegistry

	mu           sync.Mutex
	stations     map[topology.StationID]*stationNode
	clients      map[topology.ClientID]*clientNode
	nextCorePort netem.PortID
	closed       bool
}

// DefaultImages is the catalogue of NF images the repository serves, one
// per registered NF kind, with container-class sizes.
func DefaultImages() []container.Image {
	kinds := builtin.Kinds()
	imgs := make([]container.Image, 0, len(kinds))
	for _, k := range kinds {
		imgs = append(imgs, container.Image{
			Name:        agent.ImageForKind(k),
			SizeBytes:   4 << 20,
			MemoryBytes: 6 << 20,
			CPUPercent:  2,
		})
	}
	return imgs
}

// NewVirtualSystem brings a deployment up on a fresh auto-advancing
// virtual clock and returns it alongside the System: every modeled cost
// (container boot, image pull, link delay, migration downtime) becomes a
// deterministic jump of simulated time with zero wall delay. Unless the
// config says otherwise, periodic agent health reports are effectively
// disabled — they ride real TCP timers and would inject wall-clock
// nondeterminism into simulations.
func NewVirtualSystem(cfg Config) (*System, *clock.Virtual, error) {
	vc := clock.NewAutoVirtual()
	cfg.Clock = vc
	if cfg.ReportInterval == 0 {
		cfg.ReportInterval = time.Hour
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, nil, err
	}
	return sys, vc, nil
}

// NewSystem brings a deployment up: repository, manager, stations (switch
// + runtime + agent, each connected over TCP), topology and wiring hooks.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	if cfg.RepoRateBps == 0 {
		cfg.RepoRateBps = 100_000_000
	}
	if cfg.RepoRTT == 0 {
		cfg.RepoRTT = 5 * time.Millisecond
	}
	if cfg.Strategy == "" {
		cfg.Strategy = manager.StrategyStateful
	}
	images := cfg.Images
	if images == nil {
		images = DefaultImages()
	}

	repo := container.NewRepository(cfg.Clock, cfg.RepoRateBps, cfg.RepoRTT)
	for _, img := range images {
		repo.Push(img)
	}
	mgr, err := manager.New(cfg.Clock, "127.0.0.1:0", manager.WithStrategy(cfg.Strategy))
	if err != nil {
		return nil, err
	}
	if cfg.Topology != nil {
		mgr.SetTopology(cfg.Topology)
	}
	s := &System{
		Clock:        cfg.Clock,
		Topo:         topology.New(),
		Manager:      mgr,
		Repo:         repo,
		cfg:          cfg,
		backbone:     netem.NewSwitch("backhaul"),
		stations:     make(map[topology.StationID]*stationNode),
		clients:      make(map[topology.ClientID]*clientNode),
		nextCorePort: 1,
	}
	s.tun.links = make(map[tunnelPair]*tunnelEnds)
	// Split chains ask the manager for inter-segment tunnels on demand;
	// the registry makes the request idempotent with the pre-wired fabric.
	mgr.SetTunnelProvisioner(func(a, b string) error {
		return s.EnsureTunnel(topology.StationID(a), topology.StationID(b))
	})

	for _, sc := range cfg.Stations {
		if err := s.addStation(sc); err != nil {
			mgr.Close()
			return nil, err
		}
	}
	for _, cc := range cfg.Clouds {
		if err := s.AddCloudSite(cc); err != nil {
			mgr.Close()
			return nil, err
		}
	}
	if cfg.Topology != nil {
		s.wireTopologyLinks()
	}
	s.Topo.OnAssociation(s.onAssociation)
	return s, nil
}

// wireTopologyLinks instantiates the modeled inter-station links as
// delay/rate-shaped veths between the station switches, attached as
// service ports (no MAC learning, excluded from flooding — the L2
// topology stays loop-free) and registered with both agents as tunnels,
// so remote deployments can detour edge-to-edge with the declared link
// cost. No traffic crosses them until something steers a detour; they do
// not displace the backhaul for ordinary client traffic. Links touching
// cloud nodes are skipped: AddCloudSite already tunnels every edge
// station to each site with the site's WAN shape.
func (s *System) wireTopologyLinks() {
	for _, l := range s.cfg.Topology.Links() {
		s.mu.Lock()
		a, b := s.stations[l.A], s.stations[l.B]
		s.mu.Unlock()
		if a == nil || b == nil || a.cloud || b.cloud {
			continue
		}
		s.EnsureTunnel(l.A, l.B)
	}
}

// addStation builds one station's assets and connects its agent.
func (s *System) addStation(sc StationConfig) error {
	if err := s.Topo.AddStation(topology.Station{
		ID:          sc.ID,
		MemoryBytes: sc.MemoryBytes,
		Position:    sc.Position,
	}); err != nil {
		return err
	}
	for _, cc := range sc.Cells {
		if err := s.Topo.AddCell(topology.Cell{
			ID: cc.ID, Station: sc.ID, Center: cc.Center, Radius: cc.Radius,
		}); err != nil {
			return err
		}
	}
	sw := netem.NewSwitch(string(sc.ID))
	var opts []container.RuntimeOption
	if sc.MemoryBytes > 0 {
		opts = append(opts, container.WithCapacity(sc.MemoryBytes))
	}
	rt := container.NewRuntime(string(sc.ID), s.Clock, s.Repo, opts...)

	// Backhaul wiring: station port 0 is the uplink.
	stSide, coreSide := netem.NewVethPair(
		string(sc.ID)+"-up", string(sc.ID)+"-core",
		netem.WithClock(s.Clock), netem.WithLink(s.cfg.BackhaulLink),
	)
	const uplinkPort = netem.PortID(0)
	sw.Attach(uplinkPort, stSide)
	s.mu.Lock()
	corePort := s.nextCorePort
	s.nextCorePort++
	s.mu.Unlock()
	s.backbone.Attach(corePort, coreSide)

	ag := agent.New(sc.ID, s.Clock, rt, sw, uplinkPort)
	link, err := agent.Connect(ag, s.Manager.Addr(), s.cfg.ReportInterval)
	if err != nil {
		return err
	}
	node := &stationNode{
		cfg: sc, sw: sw, rt: rt, ag: ag, link: link, uplink: stSide, nextPort: 1,
	}
	s.mu.Lock()
	s.stations[sc.ID] = node
	clouds := make([]topology.StationID, 0, len(s.stations))
	for id, sn := range s.stations {
		if sn.cloud {
			clouds = append(clouds, id)
		}
	}
	s.mu.Unlock()
	// Late-added stations tunnel to every existing cloud site.
	for _, cl := range clouds {
		if err := s.EnsureTunnel(sc.ID, cl); err != nil {
			return err
		}
	}
	return nil
}

// AddClient registers a mobile client (unassociated until the first
// Attach/MoveClient).
func (s *System) AddClient(id topology.ClientID, mac packet.MAC, ip packet.IP) error {
	if err := s.Topo.AddClient(topology.Client{ID: id, MAC: mac, IP: ip}); err != nil {
		return err
	}
	s.Manager.RegisterClient(string(id))
	s.mu.Lock()
	s.clients[id] = &clientNode{id: id, mac: mac, ip: ip}
	s.mu.Unlock()
	return nil
}

// AddServer attaches a fixed host (e.g. a DNS resolver or web server) to
// the backhaul network and returns it.
func (s *System) AddServer(name string, mac packet.MAC, ip packet.IP) *netem.Host {
	side, coreSide := netem.NewVethPair(name, name+"-core",
		netem.WithClock(s.Clock), netem.WithLink(s.cfg.BackhaulLink))
	s.mu.Lock()
	port := s.nextCorePort
	s.nextCorePort++
	s.mu.Unlock()
	s.backbone.Attach(port, coreSide)
	return netem.NewHost(mac, ip, side)
}

// ClientHost returns the client's traffic endpoint (nil until the client
// has associated at least once).
func (s *System) ClientHost(id topology.ClientID) *netem.Host {
	s.mu.Lock()
	defer s.mu.Unlock()
	cn, ok := s.clients[id]
	if !ok {
		return nil
	}
	return cn.host
}

// Agent returns a station's agent (local inspection in tests/benches).
func (s *System) Agent(id topology.StationID) *agent.Agent {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn, ok := s.stations[id]
	if !ok {
		return nil
	}
	return sn.ag
}

// Runtime returns a station's container runtime.
func (s *System) Runtime(id topology.StationID) *container.Runtime {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn, ok := s.stations[id]
	if !ok {
		return nil
	}
	return sn.rt
}

// onAssociation performs the physical handoff for an association change:
// tear down the old access link, wire the new one, inform both agents.
func (s *System) onAssociation(ev topology.AssociationEvent) {
	s.mu.Lock()
	cn, ok := s.clients[ev.Client]
	s.mu.Unlock()
	if !ok {
		return
	}
	// Break-before-make, as 802.11 roaming behaves.
	if ev.From != "" {
		if st, err := s.Topo.StationForCell(ev.From); err == nil {
			s.mu.Lock()
			sn := s.stations[st.ID]
			s.mu.Unlock()
			if sn != nil {
				sn.ag.DetachClient(ev.Client)
				cn.mu.Lock()
				if cn.swSide != nil {
					sn.sw.Detach(cn.port)
					cn.swSide.Close()
					cn.swSide, cn.ep = nil, nil
				}
				cn.station = ""
				cn.mu.Unlock()
			}
		}
	}
	if ev.To == "" {
		return
	}
	st, err := s.Topo.StationForCell(ev.To)
	if err != nil {
		return
	}
	s.mu.Lock()
	sn := s.stations[st.ID]
	s.mu.Unlock()
	if sn == nil {
		return
	}
	clSide, swSide := netem.NewVethPair(
		string(ev.Client)+"-wl", string(ev.Client)+"-ap",
		netem.WithClock(s.Clock), netem.WithLink(s.cfg.AccessLink),
	)
	port := sn.allocPort()
	sn.sw.Attach(port, swSide)
	cn.mu.Lock()
	if cn.host == nil {
		cn.host = netem.NewHost(cn.mac, cn.ip, clSide)
	} else {
		cn.host.Rebind(clSide)
	}
	cn.ep, cn.swSide, cn.port, cn.station = clSide, swSide, port, st.ID
	cn.mu.Unlock()
	// The agent learns the client last, so steering rules always point at
	// a live port; this also triggers the manager's roaming handler.
	sn.ag.AttachClient(ev.Client, cn.mac, cn.ip, port)
	// Gratuitous ARP, as 802.11 roaming emits: it floods up the backhaul
	// and re-points every learning switch at the client's new location.
	cn.host.SendARPRequest(cn.ip)
}

// AttachChain associates an NF chain with a client via the Manager API.
func (s *System) AttachChain(client topology.ClientID, spec manager.ChainSpec) error {
	return s.Manager.AttachChain(string(client), spec)
}

// KillStation simulates a station crash: the agent's manager connection
// drops (with failover armed, the Manager re-places its chains). The
// station's dataplane keeps whatever state it had — exactly what a
// management-plane loss looks like from the controller.
func (s *System) KillStation(id topology.StationID) error {
	s.mu.Lock()
	sn, ok := s.stations[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", manager.ErrUnknownStation, id)
	}
	sn.link.Close()
	return nil
}

// RestartStation reconnects a killed station's agent to the manager.
func (s *System) RestartStation(id topology.StationID) error {
	s.mu.Lock()
	sn, ok := s.stations[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", manager.ErrUnknownStation, id)
	}
	link, err := agent.Connect(sn.ag, s.Manager.Addr(), s.cfg.ReportInterval)
	if err != nil {
		return err
	}
	s.mu.Lock()
	sn.link = link
	s.mu.Unlock()
	return nil
}

// WaitClientAt blocks until the manager sees the client on the station and
// all in-flight migrations settle, or the timeout elapses. Tests and
// benches use it to synchronise with the asynchronous roaming pipeline.
func (s *System) WaitClientAt(client topology.ClientID, station topology.StationID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if st, ok := s.Manager.ClientStation(string(client)); ok && st == string(station) {
			s.Manager.WaitIdle()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: client %s at %s", ErrTimeout, client, station)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// WaitChainOn blocks until the named chain is deployed and enabled on the
// station, or the timeout elapses.
func (s *System) WaitChainOn(station topology.StationID, chain string, timeout time.Duration) error {
	ag := s.Agent(station)
	if ag == nil {
		return fmt.Errorf("%w: station %s", manager.ErrUnknownStation, station)
	}
	deadline := time.Now().Add(timeout)
	for {
		for _, name := range ag.Chains() {
			if name == chain {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: chain %s on %s", ErrTimeout, chain, station)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close tears the deployment down: agents disconnect, manager stops.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	stations := make([]*stationNode, 0, len(s.stations))
	for _, sn := range s.stations {
		stations = append(stations, sn)
	}
	clients := make([]*clientNode, 0, len(s.clients))
	for _, cn := range s.clients {
		clients = append(clients, cn)
	}
	s.mu.Unlock()
	for _, cn := range clients {
		cn.mu.Lock()
		if cn.swSide != nil {
			cn.swSide.Close()
		}
		cn.mu.Unlock()
	}
	for _, sn := range stations {
		sn.link.Close()
		sn.uplink.Close()
	}
	s.closeTunnels()
	s.Manager.Close()
}
