package nf

import (
	"errors"
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/netem"
)

// tagger appends its tag to every frame, recording the direction order.
type tagger struct {
	name string
	tag  byte
	seen []Direction
}

func (t *tagger) Name() string { return t.name }
func (t *tagger) Kind() string { return "tagger" }
func (t *tagger) Process(dir Direction, frame []byte) Output {
	t.seen = append(t.seen, dir)
	return Forward(append(frame, t.tag))
}

// dropper drops everything.
type dropper struct{ name string }

func (d *dropper) Name() string                         { return d.name }
func (d *dropper) Kind() string                         { return "dropper" }
func (d *dropper) Process(_ Direction, _ []byte) Output { return Drop() }

// bouncer replies to outbound frames with a reversed copy.
type bouncer struct{ name string }

func (b *bouncer) Name() string { return b.name }
func (b *bouncer) Kind() string { return "bouncer" }
func (b *bouncer) Process(dir Direction, frame []byte) Output {
	if dir == Outbound {
		return Reply(append(frame, 'R'))
	}
	return Forward(frame)
}

// stateful stores a blob.
type statefulFn struct {
	tagger
	blob []byte
}

func (s *statefulFn) ExportState() ([]byte, error) { return s.blob, nil }
func (s *statefulFn) ImportState(b []byte) error   { s.blob = append([]byte(nil), b...); return nil }
func (s *statefulFn) NFStats() map[string]uint64 {
	return map[string]uint64{"seen": uint64(len(s.seen))}
}
func (s *statefulFn) SetClock(clock.Clock)   {}
func (s *statefulFn) SetNotifier(NotifyFunc) {}

func TestChainOutboundOrder(t *testing.T) {
	a := &tagger{name: "a", tag: 'a'}
	b := &tagger{name: "b", tag: 'b'}
	c := NewChain("ch", a, b)
	out := c.Process(Outbound, []byte("x"))
	if len(out.Forward) != 1 || string(out.Forward[0]) != "xab" {
		t.Fatalf("forward = %q", out.Forward)
	}
	if len(out.Reverse) != 0 {
		t.Fatal("unexpected reverse frames")
	}
}

func TestChainInboundReversesOrder(t *testing.T) {
	a := &tagger{name: "a", tag: 'a'}
	b := &tagger{name: "b", tag: 'b'}
	c := NewChain("ch", a, b)
	out := c.Process(Inbound, []byte("x"))
	if len(out.Forward) != 1 || string(out.Forward[0]) != "xba" {
		t.Fatalf("forward = %q", out.Forward)
	}
}

func TestChainDropStopsTraversal(t *testing.T) {
	a := &tagger{name: "a", tag: 'a'}
	c := NewChain("ch", &dropper{name: "d"}, a)
	out := c.Process(Outbound, []byte("x"))
	if len(out.Forward) != 0 || len(out.Reverse) != 0 {
		t.Fatalf("drop leaked: %+v", out)
	}
	if len(a.seen) != 0 {
		t.Fatal("function after dropper still ran")
	}
}

func TestChainReverseTraversesEarlierMembers(t *testing.T) {
	// a -> bouncer: outbound frame bounced by member 1 must re-traverse
	// member 0 inbound and exit the ingress side.
	a := &tagger{name: "a", tag: 'a'}
	c := NewChain("ch", a, &bouncer{name: "b"})
	out := c.Process(Outbound, []byte("x"))
	if len(out.Forward) != 0 {
		t.Fatalf("bounced frame still forwarded: %q", out.Forward)
	}
	if len(out.Reverse) != 1 || string(out.Reverse[0]) != "xaRa" {
		t.Fatalf("reverse = %q", out.Reverse)
	}
	if len(a.seen) != 2 || a.seen[0] != Outbound || a.seen[1] != Inbound {
		t.Fatalf("a saw %v", a.seen)
	}
}

func TestChainReplyFromInboundGoesBackOut(t *testing.T) {
	// Inbound frame hitting a bouncer at position 0... bouncer replies only
	// to Outbound, so craft chain with bouncer last and send Inbound: the
	// frame passes it (Forward), then tagger, exits ingress side.
	a := &tagger{name: "a", tag: 'a'}
	c := NewChain("ch", a, &bouncer{name: "b"})
	out := c.Process(Inbound, []byte("y"))
	if len(out.Forward) != 1 || string(out.Forward[0]) != "ya" {
		t.Fatalf("forward = %q", out.Forward)
	}
}

func TestEmptyChainForwards(t *testing.T) {
	c := NewChain("empty")
	out := c.Process(Outbound, []byte("z"))
	if len(out.Forward) != 1 || string(out.Forward[0]) != "z" {
		t.Fatalf("out = %+v", out)
	}
	if c.Len() != 0 || c.Kind() != "chain" || c.Name() != "empty" {
		t.Fatal("metadata wrong")
	}
}

func TestChainStateRoundTrip(t *testing.T) {
	s1 := &statefulFn{tagger: tagger{name: "s1", tag: '1'}, blob: []byte("alpha")}
	plain := &tagger{name: "p", tag: 'p'}
	s2 := &statefulFn{tagger: tagger{name: "s2", tag: '2'}, blob: []byte("beta")}
	src := NewChain("src", s1, plain, s2)
	data, err := src.ExportState()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	d1 := &statefulFn{tagger: tagger{name: "s1", tag: '1'}}
	d2 := &statefulFn{tagger: tagger{name: "s2", tag: '2'}}
	dst := NewChain("dst", d1, &tagger{name: "p", tag: 'p'}, d2)
	if err := dst.ImportState(data); err != nil {
		t.Fatalf("import: %v", err)
	}
	if string(d1.blob) != "alpha" || string(d2.blob) != "beta" {
		t.Fatalf("blobs = %q %q", d1.blob, d2.blob)
	}
}

func TestChainStateShapeMismatch(t *testing.T) {
	src := NewChain("src", &statefulFn{tagger: tagger{name: "s"}})
	data, _ := src.ExportState()
	dst := NewChain("dst") // zero members
	if err := dst.ImportState(data); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("err = %v", err)
	}
	if err := dst.ImportState([]byte{1}); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("short: %v", err)
	}
	// State for a stateless member must be empty.
	srcStateful := NewChain("s", &statefulFn{tagger: tagger{name: "x"}, blob: []byte("b")})
	data2, _ := srcStateful.ExportState()
	dstStateless := NewChain("d", &tagger{name: "x"})
	if err := dstStateless.ImportState(data2); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("stateless import: %v", err)
	}
}

func TestChainFanout(t *testing.T) {
	s := &statefulFn{tagger: tagger{name: "s", tag: 's'}}
	ch := NewChain("c", s)
	ch.SetClock(clock.NewVirtual())
	ch.SetNotifier(func(Notification) {})
	stats := ch.NFStats()
	if _, ok := stats["s.seen"]; !ok {
		t.Fatalf("stats = %v", stats)
	}
	if got := ch.Functions(); len(got) != 1 || got[0].Name() != "s" {
		t.Fatalf("Functions = %v", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("tagger", func(name string, p Params) (Function, error) {
		return &tagger{name: name, tag: p.Get("tag", "t")[0]}, nil
	})
	if kinds := r.Kinds(); len(kinds) != 1 || kinds[0] != "tagger" {
		t.Fatalf("kinds = %v", kinds)
	}
	fn, err := r.New("tagger", "t1", Params{"tag": "z"})
	if err != nil || fn.Name() != "t1" {
		t.Fatalf("New: %v %v", fn, err)
	}
	if _, err := r.New("nope", "x", nil); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind: %v", err)
	}
	if Params(nil).Get("missing", "def") != "def" {
		t.Fatal("Params.Get default broken")
	}
}

func TestDefaultRegistryHasBuiltins(t *testing.T) {
	// The built-in packages self-register; this package does not import
	// them (no cycle), so only check the registry exists and is usable.
	if Default == nil {
		t.Fatal("Default registry nil")
	}
}

func TestDirectionHelpers(t *testing.T) {
	if Outbound.String() != "out" || Inbound.String() != "in" {
		t.Fatal("direction strings")
	}
	if Outbound.Opposite() != Inbound || Inbound.Opposite() != Outbound {
		t.Fatal("Opposite broken")
	}
}

func TestChainHostForwardsBothDirections(t *testing.T) {
	// client side <-> [host] <-> network side
	inA, inB := netem.NewVethPair("ci", "hi") // inA: switch side, inB: host ingress
	outA, outB := netem.NewVethPair("co", "ho")
	defer inA.Close()
	defer outA.Close()
	tag := &tagger{name: "t", tag: 'T'}
	h := NewChainHost(NewChain("c", tag), inB, outB)

	fromEgress := make(chan []byte, 4)
	fromIngress := make(chan []byte, 4)
	outA.SetReceiver(func(f []byte) { fromEgress <- f })
	inA.SetReceiver(func(f []byte) { fromIngress <- f })

	// Disabled: frames dropped.
	inA.Send([]byte("x"))
	time.Sleep(20 * time.Millisecond)
	if h.Dropped() == 0 {
		t.Fatal("disabled host forwarded")
	}
	h.Enable()
	if !h.Enabled() {
		t.Fatal("Enabled() false")
	}
	inA.Send([]byte("x"))
	select {
	case f := <-fromEgress:
		if string(f) != "xT" {
			t.Fatalf("egress frame = %q", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no egress frame")
	}
	outA.Send([]byte("y"))
	select {
	case f := <-fromIngress:
		if string(f) != "yT" {
			t.Fatalf("ingress frame = %q", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no ingress frame")
	}
	if h.Processed() != 2 {
		t.Fatalf("processed = %d", h.Processed())
	}
	if h.Function().Name() != "c" {
		t.Fatal("Function accessor")
	}
	h.Disable()
	if h.Enabled() {
		t.Fatal("Disable did not stick")
	}
}

func TestChainHostReplyGoesBack(t *testing.T) {
	inA, inB := netem.NewVethPair("ci", "hi")
	outA, outB := netem.NewVethPair("co", "ho")
	defer inA.Close()
	defer outA.Close()
	h := NewChainHost(&bouncer{name: "b"}, inB, outB)
	h.Enable()
	back := make(chan []byte, 1)
	inA.SetReceiver(func(f []byte) { back <- f })
	leaked := make(chan []byte, 1)
	outA.SetReceiver(func(f []byte) { leaked <- f })
	inA.Send([]byte("q"))
	select {
	case f := <-back:
		if string(f) != "qR" {
			t.Fatalf("reply = %q", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply")
	}
	select {
	case f := <-leaked:
		t.Fatalf("reply leaked to egress: %q", f)
	case <-time.After(50 * time.Millisecond):
	}
}
