package nf

import (
	"sync/atomic"

	"gnf/internal/netem"
)

// ChainHost wires a Function (usually a Chain) between the two virtual
// Ethernet interfaces of its container, exactly the §3 layout: "All
// containers are connected to the local software switch by two virtual
// Ethernet pairs (for ingress/egress traffic, respectively)".
//
// Frames arriving on the ingress endpoint are processed Outbound and
// emitted on egress; frames arriving on egress are processed Inbound and
// emitted on ingress. While the host is disabled (container stopped,
// migration in flight) traffic is dropped and counted — that window is the
// measured migration downtime.
type ChainHost struct {
	fn      Function
	ingress *netem.Endpoint
	egress  *netem.Endpoint

	enabled   atomic.Bool
	processed atomic.Uint64
	dropped   atomic.Uint64
}

// NewChainHost binds fn between the container-side endpoints ingress and
// egress. The host starts disabled; call Enable once the container runs.
func NewChainHost(fn Function, ingress, egress *netem.Endpoint) *ChainHost {
	h := &ChainHost{fn: fn, ingress: ingress, egress: egress}
	ingress.SetReceiver(func(frame []byte) { h.handle(Outbound, frame) })
	egress.SetReceiver(func(frame []byte) { h.handle(Inbound, frame) })
	return h
}

// Function returns the hosted function.
func (h *ChainHost) Function() Function { return h.fn }

// Enable starts forwarding.
func (h *ChainHost) Enable() { h.enabled.Store(true) }

// Disable stops forwarding; in-flight frames are dropped.
func (h *ChainHost) Disable() { h.enabled.Store(false) }

// Enabled reports whether the host forwards traffic.
func (h *ChainHost) Enabled() bool { return h.enabled.Load() }

// Processed returns the count of frames handled while enabled.
func (h *ChainHost) Processed() uint64 { return h.processed.Load() }

// Dropped returns the count of frames discarded while disabled.
func (h *ChainHost) Dropped() uint64 { return h.dropped.Load() }

func (h *ChainHost) handle(dir Direction, frame []byte) {
	if !h.enabled.Load() {
		h.dropped.Add(1)
		return
	}
	h.processed.Add(1)
	out := h.fn.Process(dir, frame)
	fwd, rev := h.egress, h.ingress
	if dir == Inbound {
		fwd, rev = h.ingress, h.egress
	}
	for _, f := range out.Forward {
		fwd.Send(f)
	}
	for _, f := range out.Reverse {
		rev.Send(f)
	}
}
