package nf

import (
	"sync"
	"sync/atomic"

	"gnf/internal/netem"
)

// ChainHost wires a Function (usually a Chain) between the two virtual
// Ethernet interfaces of its container, exactly the §3 layout: "All
// containers are connected to the local software switch by two virtual
// Ethernet pairs (for ingress/egress traffic, respectively)".
//
// Frames arriving on the ingress endpoint are processed Outbound and
// emitted on egress; frames arriving on egress are processed Inbound and
// emitted on ingress. While the host is disabled (container stopped,
// migration in flight) traffic is dropped and counted — that window is the
// measured migration downtime. A host deployed for a migration may instead
// arm a brownout buffer (BufferWhileDisabled): frames arriving while
// disabled are then parked and replayed, in order, when Enable activates
// the chain — the zero-loss handoff path.
type ChainHost struct {
	fn      Function
	ingress *netem.Endpoint
	egress  *netem.Endpoint

	enabled   atomic.Bool
	processed atomic.Uint64
	dropped   atomic.Uint64
	replayed  atomic.Uint64

	// bufMu orders brownout buffering against Enable's drain: once Enable
	// has flipped enabled under bufMu, no handler can park another frame.
	bufMu  sync.Mutex
	buffer *netem.FrameBuffer // nil = disarmed (plain drop-while-disabled)
}

// NewChainHost binds fn between the container-side endpoints ingress and
// egress. The host starts disabled; call Enable once the container runs.
func NewChainHost(fn Function, ingress, egress *netem.Endpoint) *ChainHost {
	h := &ChainHost{fn: fn, ingress: ingress, egress: egress}
	ingress.SetReceiver(func(frame []byte) { h.handle(Outbound, frame) })
	egress.SetReceiver(func(frame []byte) { h.handle(Inbound, frame) })
	ingress.SetBatchReceiver(func(frames [][]byte) { h.handleBatch(Outbound, frames) })
	egress.SetBatchReceiver(func(frames [][]byte) { h.handleBatch(Inbound, frames) })
	return h
}

// Function returns the hosted function.
func (h *ChainHost) Function() Function { return h.fn }

// BufferWhileDisabled arms the brownout buffer: up to limit frames arriving
// while the host is disabled are parked instead of dropped and replayed on
// the next Enable. Arm it on migration deploys only — a chain disabled by
// an activation schedule must keep dropping out-of-window traffic.
func (h *ChainHost) BufferWhileDisabled(limit int) {
	h.bufMu.Lock()
	if !h.enabled.Load() && h.buffer == nil {
		h.buffer = netem.NewFrameBuffer(limit)
	}
	h.bufMu.Unlock()
}

// Enable starts forwarding. If a brownout buffer is armed, its parked
// frames are first replayed through the chain in arrival order, then the
// buffer is disarmed — every frame the freeze window parked reaches the
// network before (not interleaved after) newly arriving traffic jumps the
// queue.
func (h *ChainHost) Enable() {
	for {
		h.bufMu.Lock()
		var batch []netem.BufferedFrame
		if h.buffer != nil {
			batch = h.buffer.Drain()
		}
		if len(batch) == 0 {
			// Nothing (left) to replay: activate atomically with the drain
			// check so a concurrent handler cannot park a frame we would
			// never see.
			h.buffer = nil
			h.enabled.Store(true)
			h.bufMu.Unlock()
			return
		}
		h.bufMu.Unlock()
		for _, bf := range batch {
			h.replayed.Add(1)
			h.process(Direction(bf.Tag), bf.Frame)
		}
	}
}

// Disable stops forwarding; in-flight frames are dropped (or parked, when
// a brownout buffer is armed).
func (h *ChainHost) Disable() { h.enabled.Store(false) }

// FreezeBuffered disables forwarding and arms the brownout buffer in one
// step — the migration freeze on a *source* chain: late stragglers park
// instead of dropping mid-freeze. Whatever is still parked at teardown is
// surfaced through Parked() so the owner can account it as loss.
func (h *ChainHost) FreezeBuffered(limit int) {
	h.bufMu.Lock()
	h.enabled.Store(false)
	if h.buffer == nil {
		h.buffer = netem.NewFrameBuffer(limit)
	}
	h.bufMu.Unlock()
}

// Enabled reports whether the host forwards traffic.
func (h *ChainHost) Enabled() bool { return h.enabled.Load() }

// Processed returns the count of frames handled while enabled.
func (h *ChainHost) Processed() uint64 { return h.processed.Load() }

// Dropped returns the count of frames discarded while disabled.
func (h *ChainHost) Dropped() uint64 { return h.dropped.Load() }

// Replayed returns the count of brownout-buffered frames replayed through
// the chain by Enable. Frames refused by a full buffer land in Dropped, so
// Dropped stays the single loss signal whether or not a buffer is armed.
func (h *ChainHost) Replayed() uint64 { return h.replayed.Load() }

// Parked reports frames currently held in the brownout buffer. A host
// torn down with parked frames has lost them — teardown accounting must
// fold this into its drop totals, or a frozen source's buffered frames
// would vanish uncounted.
func (h *ChainHost) Parked() uint64 {
	h.bufMu.Lock()
	defer h.bufMu.Unlock()
	if h.buffer == nil {
		return 0
	}
	return uint64(h.buffer.Len())
}

func (h *ChainHost) handle(dir Direction, frame []byte) {
	if !h.enabled.Load() {
		h.bufMu.Lock()
		if h.enabled.Load() {
			// Enable won the race while we took the lock; fall through to
			// normal processing.
			h.bufMu.Unlock()
		} else if h.buffer != nil && h.buffer.Push(uint8(dir), frame) {
			h.bufMu.Unlock()
			return
		} else {
			h.bufMu.Unlock()
			h.dropped.Add(1)
			return
		}
	}
	h.process(dir, frame)
}

// handleBatch is the batched receive path. While enabled and hosting a
// BatchProcessor, the whole batch takes the function's fast path and the
// outputs leave as batches too; otherwise each frame goes through the
// per-frame gate, so brownout buffering and drop accounting behave
// identically on both paths.
func (h *ChainHost) handleBatch(dir Direction, frames [][]byte) {
	bp, ok := h.fn.(BatchProcessor)
	if !ok || !h.enabled.Load() {
		for _, f := range frames {
			h.handle(dir, f)
		}
		return
	}
	h.processed.Add(uint64(len(frames)))
	out := BorrowBatchOutput()
	bp.ProcessBatch(dir, frames, out)
	fwd, rev := h.egress, h.ingress
	if dir == Inbound {
		fwd, rev = h.ingress, h.egress
	}
	if len(out.Forward) > 0 {
		fwd.SendBatch(out.Forward)
	}
	if len(out.Reverse) > 0 {
		rev.SendBatch(out.Reverse)
	}
	ReturnBatchOutput(out)
}

// process runs one frame through the chain and emits the results; callers
// have already passed the enabled/buffer gate.
func (h *ChainHost) process(dir Direction, frame []byte) {
	h.processed.Add(1)
	out := h.fn.Process(dir, frame)
	fwd, rev := h.egress, h.ingress
	if dir == Inbound {
		fwd, rev = h.ingress, h.egress
	}
	for _, f := range out.Forward {
		fwd.Send(f)
	}
	for _, f := range out.Reverse {
		rev.Send(f)
	}
}
