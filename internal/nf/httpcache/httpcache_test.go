package httpcache_test

import (
	"strings"
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/nf"
	"gnf/internal/nf/httpcache"
	"gnf/internal/packet"
)

var (
	clientMAC = packet.MAC{2, 0, 0, 0, 0, 1}
	serverMAC = packet.MAC{2, 0, 0, 0, 0, 2}
	clientIP  = packet.IP{10, 0, 0, 1}
	serverIP  = packet.IP{10, 99, 0, 1}
)

// request builds a one-segment GET with the given client source port.
func request(srcPort uint16, host, path string, hdr map[string]string) []byte {
	payload := packet.BuildHTTPRequest("GET", host, path, hdr, nil)
	return packet.BuildTCP(clientMAC, serverMAC, clientIP, serverIP, srcPort, 80,
		packet.TCPOptions{Seq: 100, Ack: 7, Flags: packet.TCPAck | packet.TCPPsh}, payload)
}

// response builds the matching one-segment 200 response.
func response(dstPort uint16, body string, hdr map[string]string) []byte {
	payload := packet.BuildHTTPResponse(200, "OK", hdr, []byte(body))
	return packet.BuildTCP(serverMAC, clientMAC, serverIP, clientIP, 80, dstPort,
		packet.TCPOptions{Seq: 7, Ack: 200, Flags: packet.TCPAck | packet.TCPPsh}, payload)
}

// exchange pushes a miss (request out, response in) through the cache.
func exchange(t *testing.T, c *httpcache.Cache, srcPort uint16, host, path, body string) {
	t.Helper()
	out := c.Process(nf.Outbound, request(srcPort, host, path, nil))
	if len(out.Forward) != 1 || len(out.Reverse) != 0 {
		t.Fatalf("miss output = %+v", out)
	}
	in := c.Process(nf.Inbound, response(srcPort, body, nil))
	if len(in.Forward) != 1 {
		t.Fatalf("response output = %+v", in)
	}
}

func TestCacheMissThenHit(t *testing.T) {
	clk := clock.NewVirtual()
	c := httpcache.New("c0")
	c.SetClock(clk)
	exchange(t, c, 40000, "cdn.example", "/logo.png", "PNGDATA")
	if c.Len() != 1 {
		t.Fatalf("entries = %d", c.Len())
	}

	// Second request from another flow hits and is answered at the edge.
	out := c.Process(nf.Outbound, request(40001, "cdn.example", "/logo.png", nil))
	if len(out.Reverse) != 1 || len(out.Forward) != 0 {
		t.Fatalf("hit output = %+v", out)
	}
	var p packet.Parser
	if err := p.Parse(out.Reverse[0]); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Dst != clientMAC || p.IP.Dst != clientIP || p.TCP.DstPort != 40001 {
		t.Fatalf("reply addressing wrong: %+v %+v", p.Eth, p.IP)
	}
	resp, err := packet.ParseHTTPResponse(p.TCP.Payload())
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != "PNGDATA" {
		t.Fatalf("replayed response = %d %q", resp.StatusCode, resp.Body)
	}

	st := c.NFStats()
	if st["hits"] != 1 || st["misses"] != 1 || st["stores"] != 1 {
		t.Fatalf("stats = %v", st)
	}
	if st["bytes_saved"] == 0 {
		t.Fatal("bytes_saved not accounted")
	}
}

func TestCacheEntriesExpire(t *testing.T) {
	clk := clock.NewVirtual()
	c := httpcache.New("c0", httpcache.WithTTL(10*time.Second))
	c.SetClock(clk)
	exchange(t, c, 40000, "cdn.example", "/a", "AAA")

	clk.Advance(11 * time.Second)
	out := c.Process(nf.Outbound, request(40001, "cdn.example", "/a", nil))
	if len(out.Forward) != 1 {
		t.Fatalf("expired entry served: %+v", out)
	}
	if c.NFStats()["misses"] != 2 {
		t.Fatalf("stats = %v", c.NFStats())
	}
}

func TestCacheKeyIncludesHostAndPath(t *testing.T) {
	clk := clock.NewVirtual()
	c := httpcache.New("c0")
	c.SetClock(clk)
	exchange(t, c, 40000, "a.example", "/x", "FROM-A")
	exchange(t, c, 40001, "b.example", "/x", "FROM-B")
	exchange(t, c, 40002, "a.example", "/y", "A-Y")
	if c.Len() != 3 {
		t.Fatalf("entries = %d", c.Len())
	}
	out := c.Process(nf.Outbound, request(40003, "b.example", "/x", nil))
	if len(out.Reverse) != 1 {
		t.Fatalf("expected hit: %+v", out)
	}
	var p packet.Parser
	if err := p.Parse(out.Reverse[0]); err != nil {
		t.Fatal(err)
	}
	resp, _ := packet.ParseHTTPResponse(p.TCP.Payload())
	if string(resp.Body) != "FROM-B" {
		t.Fatalf("wrong entry served: %q", resp.Body)
	}
}

func TestCacheControlNoStoreBypasses(t *testing.T) {
	clk := clock.NewVirtual()
	c := httpcache.New("c0")
	c.SetClock(clk)

	// no-store on the request side.
	out := c.Process(nf.Outbound, request(40000, "x.example", "/", map[string]string{"Cache-Control": "no-store"}))
	if len(out.Forward) != 1 {
		t.Fatalf("bypass should forward: %+v", out)
	}

	// no-store on the response side.
	c.Process(nf.Outbound, request(40001, "y.example", "/", nil))
	c.Process(nf.Inbound, response(40001, "SECRET", map[string]string{"Cache-Control": "no-store"}))
	if c.Len() != 0 {
		t.Fatalf("no-store response cached: %d entries", c.Len())
	}

	// private responses don't cache either.
	c.Process(nf.Outbound, request(40002, "z.example", "/", nil))
	c.Process(nf.Inbound, response(40002, "ME-ONLY", map[string]string{"Cache-Control": "private"}))
	if c.Len() != 0 {
		t.Fatalf("private response cached: %d entries", c.Len())
	}
}

func TestNon200AndNonGETNotCached(t *testing.T) {
	clk := clock.NewVirtual()
	c := httpcache.New("c0")
	c.SetClock(clk)

	// POST passes through untouched.
	payload := packet.BuildHTTPRequest("POST", "x.example", "/submit", nil, []byte("data"))
	post := packet.BuildTCP(clientMAC, serverMAC, clientIP, serverIP, 40000, 80,
		packet.TCPOptions{Flags: packet.TCPAck | packet.TCPPsh}, payload)
	if out := c.Process(nf.Outbound, post); len(out.Forward) != 1 {
		t.Fatalf("POST output = %+v", out)
	}

	// 404 responses are not stored.
	c.Process(nf.Outbound, request(40001, "x.example", "/missing", nil))
	nf404 := packet.BuildTCP(serverMAC, clientMAC, serverIP, clientIP, 80, 40001,
		packet.TCPOptions{Flags: packet.TCPAck | packet.TCPPsh},
		packet.BuildHTTPResponse(404, "Not Found", nil, []byte("nope")))
	c.Process(nf.Inbound, nf404)
	if c.Len() != 0 {
		t.Fatalf("404 cached: %d entries", c.Len())
	}
}

func TestCacheEvictsAtCapacity(t *testing.T) {
	clk := clock.NewVirtual()
	c := httpcache.New("c0", httpcache.WithMaxEntries(2))
	c.SetClock(clk)
	exchange(t, c, 40000, "a.example", "/1", "1")
	clk.Advance(time.Second)
	exchange(t, c, 40001, "a.example", "/2", "2")
	clk.Advance(time.Second)
	exchange(t, c, 40002, "a.example", "/3", "3")
	if c.Len() != 2 {
		t.Fatalf("entries = %d", c.Len())
	}
	if c.NFStats()["evictions"] != 1 {
		t.Fatalf("stats = %v", c.NFStats())
	}
	// The oldest entry (/1) is the victim.
	if out := c.Process(nf.Outbound, request(40003, "a.example", "/1", nil)); len(out.Reverse) != 0 {
		t.Fatal("evicted entry still served")
	}
}

func TestStateExportImportRoundTrip(t *testing.T) {
	clk := clock.NewVirtual()
	c := httpcache.New("c0", httpcache.WithTTL(time.Minute))
	c.SetClock(clk)
	exchange(t, c, 40000, "cdn.example", "/logo", "LOGO")
	exchange(t, c, 40001, "cdn.example", "/app.js", "JS")

	state, err := c.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := httpcache.New("c1", httpcache.WithTTL(time.Minute))
	fresh.SetClock(clk)
	if err := fresh.ImportState(state); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 2 {
		t.Fatalf("imported entries = %d", fresh.Len())
	}
	// The migrated cache serves hits immediately — the paper's roaming
	// user keeps a warm cache.
	if out := fresh.Process(nf.Outbound, request(40002, "cdn.example", "/logo", nil)); len(out.Reverse) != 1 {
		t.Fatalf("warm cache missed: %+v", out)
	}

	// Import drops entries that expired in transit.
	clk.Advance(2 * time.Minute)
	stale := httpcache.New("c2", httpcache.WithTTL(time.Minute))
	stale.SetClock(clk)
	if err := stale.ImportState(state); err != nil {
		t.Fatal(err)
	}
	if stale.Len() != 0 {
		t.Fatalf("stale entries imported: %d", stale.Len())
	}
	// Corrupt state errors.
	if err := stale.ImportState([]byte("{")); err == nil {
		t.Fatal("corrupt state accepted")
	}
}

func TestFactoryParams(t *testing.T) {
	fn, err := nf.Default.New("httpcache", "c0", nf.Params{"ttl": "5s", "port": "8080", "max": "16"})
	if err != nil {
		t.Fatal(err)
	}
	if fn.Kind() != "httpcache" || fn.Name() != "c0" {
		t.Fatalf("fn = %s/%s", fn.Kind(), fn.Name())
	}
	for _, bad := range []nf.Params{
		{"ttl": "xx"}, {"port": "70000"}, {"max": "many"},
	} {
		if _, err := nf.Default.New("httpcache", "c0", bad); err == nil {
			t.Fatalf("params %v accepted", bad)
		}
	}
}

func TestPortRestriction(t *testing.T) {
	clk := clock.NewVirtual()
	c := httpcache.New("c0", httpcache.WithPort(8080))
	c.SetClock(clk)
	// Port 80 traffic is ignored by an 8080-only cache.
	out := c.Process(nf.Outbound, request(40000, "a.example", "/", nil))
	if len(out.Forward) != 1 {
		t.Fatalf("output = %+v", out)
	}
	if st := c.NFStats(); st["misses"] != 0 {
		t.Fatalf("stats = %v", st)
	}
}

func TestNonHTTPTrafficPassesThrough(t *testing.T) {
	c := httpcache.New("c0")
	// UDP frame.
	udp := packet.BuildUDP(clientMAC, serverMAC, clientIP, serverIP, 1000, 2000, []byte("x"))
	if out := c.Process(nf.Outbound, udp); len(out.Forward) != 1 {
		t.Fatalf("udp output = %+v", out)
	}
	// Garbage TCP payload.
	junk := packet.BuildTCP(clientMAC, serverMAC, clientIP, serverIP, 1000, 80,
		packet.TCPOptions{Flags: packet.TCPAck}, []byte(strings.Repeat("z", 32)))
	if out := c.Process(nf.Outbound, junk); len(out.Forward) != 1 {
		t.Fatalf("junk output = %+v", out)
	}
	// Non-parseable frame.
	if out := c.Process(nf.Outbound, []byte{1, 2, 3}); len(out.Forward) != 1 {
		t.Fatalf("short frame output = %+v", out)
	}
}
