package httpcache_test

import (
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/nf"
	"gnf/internal/nf/httpcache"
)

func TestCacheDeltaExportsOnlyFreshEntries(t *testing.T) {
	clk := clock.NewVirtual()
	src := httpcache.New("c0", httpcache.WithTTL(time.Minute))
	src.SetClock(clk)
	exchange(t, src, 40000, "cdn.example", "/logo", "LOGO")
	exchange(t, src, 40001, "cdn.example", "/app.js", "JSJSJSJSJS")

	full, epoch, err := src.ExportDelta(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := httpcache.New("c1", httpcache.WithTTL(time.Minute))
	dst.SetClock(clk)
	if err := dst.ImportDelta(full); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 {
		t.Fatalf("entries after full = %d, want 2", dst.Len())
	}

	// One new store: the delta carries only it.
	exchange(t, src, 40002, "cdn.example", "/style.css", "CSS")
	delta, _, err := src.ExportDelta(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full) {
		t.Fatalf("delta %dB not smaller than full %dB", len(delta), len(full))
	}
	if err := dst.ImportDelta(delta); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 {
		t.Fatalf("entries after delta = %d, want 3", dst.Len())
	}
	// The migrated-in cache serves the fresh entry at the edge.
	if out := dst.Process(nf.Outbound, request(40003, "cdn.example", "/style.css", nil)); len(out.Reverse) != 1 {
		t.Fatalf("warm entry missed: %+v", out)
	}
}
