// Package httpcache implements an edge HTTP cache NF — one of the edge
// services the paper's introduction motivates ("dynamically allocating
// network services such as firewalls, caches, rate limiters"). It is a
// transparent forward cache: outbound GET requests whose response is
// cached and fresh are answered directly at the edge (the reply never
// leaves the station), everything else is forwarded and the returning
// response is stored.
//
// The cache operates on single-segment HTTP exchanges, the granularity
// every middlebox NF in this repository inspects. Entries are keyed by
// host+target and expire after a configurable TTL; "Cache-Control:
// no-store" on either side bypasses the cache. The whole cache is
// exported/imported as chain state, so it migrates with its client and a
// roaming user keeps a warm edge cache.
package httpcache

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"time"

	"gnf/internal/clock"
	"gnf/internal/nf"
	"gnf/internal/packet"
)

// DefaultTTL is the freshness lifetime used when no "ttl" param is given.
const DefaultTTL = 60 * time.Second

// Cache is the NF instance.
type Cache struct {
	name string
	port uint16 // 0 = inspect every TCP port
	ttl  time.Duration
	max  int // entry cap; oldest-expiry entry evicted when full

	mu      sync.Mutex
	clk     clock.Clock
	parser  packet.Parser
	entries map[string]*entry
	pending map[packet.FiveTuple]string // in-flight request key per flow
	seq     uint64                      // dirty epoch, bumped per store

	hits, misses, stores, evictions uint64
	bytesSaved                      uint64
}

// entry is one cached response. Seq stamps the dirty epoch of the store,
// so pre-copy migration rounds export only fresh entries.
type entry struct {
	Response []byte    `json:"response"` // raw response bytes (head+body)
	Expires  time.Time `json:"expires"`
	Seq      uint64    `json:"seq,omitempty"`
}

// Option configures a Cache.
type Option func(*Cache)

// WithTTL sets the freshness lifetime.
func WithTTL(ttl time.Duration) Option { return func(c *Cache) { c.ttl = ttl } }

// WithPort restricts inspection to one TCP destination port (0 = all).
func WithPort(port uint16) Option { return func(c *Cache) { c.port = port } }

// WithMaxEntries caps the cache size (default 1024).
func WithMaxEntries(n int) Option { return func(c *Cache) { c.max = n } }

// New creates a cache NF.
func New(name string, opts ...Option) *Cache {
	c := &Cache{
		name:    name,
		ttl:     DefaultTTL,
		max:     1024,
		clk:     clock.System(),
		entries: make(map[string]*entry),
		pending: make(map[packet.FiveTuple]string),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func init() {
	nf.Default.Register("httpcache", Factory)
}

// Factory builds a cache from params: "ttl" (Go duration), "port", "max".
func Factory(name string, params nf.Params) (nf.Function, error) {
	var opts []Option
	if v := params.Get("ttl", ""); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithTTL(d))
	}
	if v := params.Get("port", ""); v != "" {
		p, err := strconv.ParseUint(v, 10, 16)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithPort(uint16(p)))
	}
	if v := params.Get("max", ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithMaxEntries(n))
	}
	return New(name, opts...), nil
}

// Name implements nf.Function.
func (c *Cache) Name() string { return c.name }

// Kind implements nf.Function.
func (c *Cache) Kind() string { return "httpcache" }

// SetClock implements nf.ClockSetter.
func (c *Cache) SetClock(clk clock.Clock) {
	c.mu.Lock()
	c.clk = clk
	c.mu.Unlock()
}

// Process implements nf.Function.
func (c *Cache) Process(dir nf.Direction, frame []byte) nf.Output {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.parser.Parse(frame); err != nil || !c.parser.Has(packet.LayerTCP) {
		return nf.Forward(frame)
	}
	p := &c.parser
	if c.port != 0 {
		if dir == nf.Outbound && p.TCP.DstPort != c.port {
			return nf.Forward(frame)
		}
		if dir == nf.Inbound && p.TCP.SrcPort != c.port {
			return nf.Forward(frame)
		}
	}
	payload := p.TCP.Payload()
	if len(payload) == 0 {
		return nf.Forward(frame) // bare ACKs, SYNs etc.
	}
	if dir == nf.Outbound {
		return c.processRequest(p, frame, payload)
	}
	return c.processResponse(p, frame, payload)
}

// processRequest serves cache hits and tracks misses.
func (c *Cache) processRequest(p *packet.Parser, frame, payload []byte) nf.Output {
	if !packet.LooksLikeHTTPRequest(payload) {
		return nf.Forward(frame)
	}
	req, err := packet.ParseHTTPRequest(payload)
	if err != nil || req.Method != "GET" {
		return nf.Forward(frame)
	}
	if cc, ok := req.Header("Cache-Control"); ok && strings.Contains(cc, "no-store") {
		return nf.Forward(frame)
	}
	key := req.Host + " " + req.Target
	now := c.clk.Now()
	if e, ok := c.entries[key]; ok && now.Before(e.Expires) {
		c.hits++
		c.bytesSaved += uint64(len(e.Response))
		// Answer at the edge: swap L2/L3/L4 directions, ack the request
		// segment, replay the stored response.
		tcpPayloadLen := uint32(len(payload))
		reply := packet.BuildTCP(
			p.Eth.Dst, p.Eth.Src, p.IP.Dst, p.IP.Src,
			p.TCP.DstPort, p.TCP.SrcPort,
			packet.TCPOptions{
				Seq:   p.TCP.Ack,
				Ack:   p.TCP.Seq + tcpPayloadLen,
				Flags: packet.TCPAck | packet.TCPPsh,
			},
			e.Response,
		)
		return nf.Reply(reply)
	}
	if e, ok := c.entries[key]; ok && !now.Before(e.Expires) {
		delete(c.entries, key) // expired
	}
	c.misses++
	ft, ok := p.FiveTuple()
	if ok {
		c.pending[ft] = key
	}
	return nf.Forward(frame)
}

// processResponse stores responses for pending requests.
func (c *Cache) processResponse(p *packet.Parser, frame, payload []byte) nf.Output {
	ft, ok := p.FiveTuple()
	if !ok {
		return nf.Forward(frame)
	}
	// The response flow is the reverse of the request flow.
	key, ok := c.pending[ft.Reverse()]
	if !ok {
		return nf.Forward(frame)
	}
	if !packet.LooksLikeHTTPResponse(payload) {
		return nf.Forward(frame)
	}
	resp, err := packet.ParseHTTPResponse(payload)
	if err != nil {
		return nf.Forward(frame)
	}
	delete(c.pending, ft.Reverse())
	if resp.StatusCode != 200 {
		return nf.Forward(frame)
	}
	if cc, ok := resp.Header("Cache-Control"); ok &&
		(strings.Contains(cc, "no-store") || strings.Contains(cc, "private")) {
		return nf.Forward(frame)
	}
	c.store(key, payload)
	return nf.Forward(frame)
}

// store inserts an entry, evicting the entry closest to expiry when full.
// Callers hold c.mu.
func (c *Cache) store(key string, response []byte) {
	if len(c.entries) >= c.max {
		victim, oldest := "", time.Time{}
		for k, e := range c.entries {
			if victim == "" || e.Expires.Before(oldest) {
				victim, oldest = k, e.Expires
			}
		}
		if victim != "" {
			delete(c.entries, victim)
			c.evictions++
		}
	}
	c.seq++
	c.entries[key] = &entry{
		Response: append([]byte(nil), response...),
		Expires:  c.clk.Now().Add(c.ttl),
		Seq:      c.seq,
	}
	c.stores++
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// NFStats implements nf.StatsReporter.
func (c *Cache) NFStats() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return map[string]uint64{
		"hits":        c.hits,
		"misses":      c.misses,
		"stores":      c.stores,
		"evictions":   c.evictions,
		"bytes_saved": c.bytesSaved,
		"entries":     uint64(len(c.entries)),
	}
}

// cacheState is the serialized form moved by checkpoint/restore.
type cacheState struct {
	Entries map[string]*entry `json:"entries"`
}

// ExportState implements container.StateHandler: the cache content roams
// with the client, so the new station starts warm.
func (c *Cache) ExportState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(cacheState{Entries: c.entries})
}

// ImportState implements container.StateHandler. Entries already expired
// at import time are dropped.
func (c *Cache) ImportState(data []byte) error {
	var st cacheState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry, len(st.Entries))
	c.mergeLocked(st)
	return nil
}

// ExportDelta implements nf.DeltaStateful: entries stored after epoch
// `since` (everything for since == 0). Evicted or expired entries carry no
// tombstone — a stale copy at the migration target expires by its own
// absolute deadline, so cache correctness is unaffected.
func (c *Cache) ExportDelta(since uint64) ([]byte, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := cacheState{Entries: make(map[string]*entry)}
	for k, e := range c.entries {
		if e.Seq > since {
			st.Entries[k] = e
		}
	}
	data, err := json.Marshal(st)
	return data, c.seq, err
}

// ImportDelta implements nf.DeltaStateful by merging exported entries into
// the live cache (expired ones are skipped).
func (c *Cache) ImportDelta(data []byte) error {
	var st cacheState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mergeLocked(st)
	return nil
}

// mergeLocked upserts st's still-fresh entries, advancing the local dirty
// epoch past every imported stamp. Called with mu held.
func (c *Cache) mergeLocked(st cacheState) {
	now := c.clk.Now()
	for k, e := range st.Entries {
		if e == nil || !now.Before(e.Expires) {
			continue
		}
		if e.Seq > c.seq {
			c.seq = e.Seq
		}
		c.entries[k] = e
	}
}

var (
	_ nf.Function      = (*Cache)(nil)
	_ nf.StatsReporter = (*Cache)(nil)
	_ nf.ClockSetter   = (*Cache)(nil)
	_ nf.DeltaStateful = (*Cache)(nil)
)
