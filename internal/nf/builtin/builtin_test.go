package builtin_test

import (
	"reflect"
	"testing"

	"gnf/internal/nf"
	"gnf/internal/nf/builtin"
)

// TestEveryKindRegisters checks that the blank imports actually populate
// nf.Default with exactly the advertised kinds, and that each kind
// instantiates with empty params.
func TestEveryKindRegisters(t *testing.T) {
	want := builtin.Kinds()
	got := nf.Default.Kinds()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("registry kinds = %v, want %v", got, want)
	}
	// Minimal required configuration for kinds whose factories reject
	// empty params.
	params := map[string]nf.Params{
		"dnslb": {"backends": "10.0.0.1,10.0.0.2"},
		"nat":   {"nat_ip": "192.0.2.1"},
	}
	for _, kind := range want {
		fn, err := nf.Default.New(kind, "t-"+kind, params[kind])
		if err != nil {
			t.Errorf("New(%q): %v", kind, err)
			continue
		}
		if fn == nil {
			t.Errorf("New(%q) returned nil function", kind)
			continue
		}
		if fn.Kind() != kind {
			t.Errorf("New(%q).Kind() = %q", kind, fn.Kind())
		}
		if fn.Name() != "t-"+kind {
			t.Errorf("New(%q).Name() = %q, want %q", kind, fn.Name(), "t-"+kind)
		}
	}
}

func TestUnknownKindRejected(t *testing.T) {
	if _, err := nf.Default.New("teleporter", "x", nil); err == nil {
		t.Fatal("expected error for unregistered kind")
	}
}
