// Package builtin links every built-in NF implementation into the binary,
// populating nf.Default via their init functions. Import it (blank) from
// any main or test that instantiates NFs by kind name.
package builtin

import (
	_ "gnf/internal/nf/counter"
	_ "gnf/internal/nf/dnscache"
	_ "gnf/internal/nf/dnslb"
	_ "gnf/internal/nf/firewall"
	_ "gnf/internal/nf/httpcache"
	_ "gnf/internal/nf/httpfilter"
	_ "gnf/internal/nf/nat"
	_ "gnf/internal/nf/ratelimit"
)

// Kinds lists the NF kinds this package registers.
func Kinds() []string {
	return []string{"counter", "dnscache", "dnslb", "firewall", "httpcache", "httpfilter", "nat", "ratelimit"}
}
