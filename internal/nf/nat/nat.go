// Package nat implements a source-NAT NF. Outbound flows are rewritten to
// a NAT address with a port allocated from a pool; inbound traffic to the
// NAT address is translated back. The NF proxy-ARPs for its NAT address
// with a stable virtual MAC, so return traffic is attracted through the
// container without extra steering rules. The translation table is
// exported as migration state — the paper's function-roaming mechanism must
// move exactly this kind of per-client middlebox state to keep flows alive.
package nat

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

// Errors returned by the translator.
var (
	ErrPortsExhausted = errors.New("nat: port pool exhausted")
)

// mapKey identifies an outbound flow pre-translation.
type mapKey struct {
	Proto   uint8
	SrcIP   packet.IP
	SrcPort uint16
}

// mapping records one translation. Seq stamps the dirty epoch the mapping
// was created at, so pre-copy migration rounds export only fresh flows.
type mapping struct {
	Key     mapKey     `json:"key"`
	NATPort uint16     `json:"nat_port"`
	HostMAC packet.MAC `json:"host_mac"` // client's MAC for de-translation
	Seq     uint64     `json:"seq,omitempty"`
}

// NAT is the NF instance.
type NAT struct {
	name   string
	natIP  packet.IP
	vmac   packet.MAC
	lo, hi uint16

	mu                                   sync.Mutex
	byKey                                map[mapKey]*mapping
	byPort                               map[uint16]*mapping
	nextPort                             uint16
	seq                                  uint64 // dirty epoch, bumped per new mapping
	translated, detranslated, arpReplies uint64
	parser                               packet.Parser
}

// VirtualMAC derives the stable proxy-ARP MAC for a NAT address.
func VirtualMAC(ip packet.IP) packet.MAC {
	return packet.MAC{0x02, 0x4e, 0x41, 0x54, ip[2], ip[3]} // 02:"NAT":x:y
}

// New creates a NAT translating to natIP using ports [lo,hi].
func New(name string, natIP packet.IP, lo, hi uint16) (*NAT, error) {
	if lo == 0 || hi < lo {
		return nil, fmt.Errorf("nat: bad port range %d-%d", lo, hi)
	}
	return &NAT{
		name:     name,
		natIP:    natIP,
		vmac:     VirtualMAC(natIP),
		lo:       lo,
		hi:       hi,
		nextPort: lo,
		byKey:    make(map[mapKey]*mapping),
		byPort:   make(map[uint16]*mapping),
	}, nil
}

// Name implements nf.Function.
func (n *NAT) Name() string { return n.name }

// Kind implements nf.Function.
func (n *NAT) Kind() string { return "nat" }

// NATIP returns the public-side address.
func (n *NAT) NATIP() packet.IP { return n.natIP }

// Mappings returns the number of active translations.
func (n *NAT) Mappings() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.byKey)
}

// allocatePort finds a free NAT port. Called with mu held.
func (n *NAT) allocatePort() (uint16, error) {
	span := int(n.hi-n.lo) + 1
	for i := 0; i < span; i++ {
		p := n.nextPort
		n.nextPort++
		if n.nextPort > n.hi || n.nextPort < n.lo {
			n.nextPort = n.lo
		}
		if _, used := n.byPort[p]; !used {
			return p, nil
		}
	}
	return 0, ErrPortsExhausted
}

// Process implements nf.Function.
func (n *NAT) Process(dir nf.Direction, frame []byte) nf.Output {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.parser.Parse(frame); err != nil {
		return nf.Forward(frame)
	}
	p := &n.parser
	// Proxy-ARP: answer who-has for the NAT address.
	if p.Has(packet.LayerARP) {
		if dir == nf.Inbound && p.ARP.Op == packet.ARPRequest && p.ARP.TargetIP == n.natIP {
			n.arpReplies++
			reply := packet.BuildARP(packet.ARPReply, n.vmac, n.natIP, p.ARP.SenderHW, p.ARP.SenderIP)
			return nf.Reply(reply)
		}
		return nf.Forward(frame)
	}
	if !p.Has(packet.LayerIPv4) {
		return nf.Forward(frame)
	}
	ft, ok := p.FiveTuple()
	if !ok || (p.IP.Proto != packet.ProtoTCP && p.IP.Proto != packet.ProtoUDP) {
		return nf.Forward(frame)
	}

	switch dir {
	case nf.Outbound:
		key := mapKey{Proto: p.IP.Proto, SrcIP: p.IP.Src, SrcPort: ft.Src.Port}
		m, exists := n.byKey[key]
		if !exists {
			port, err := n.allocatePort()
			if err != nil {
				return nf.Drop() // no capacity: policed like a full conntrack table
			}
			n.seq++
			m = &mapping{Key: key, NATPort: port, HostMAC: p.Eth.Src, Seq: n.seq}
			n.byKey[key] = m
			n.byPort[port] = m
		}
		rw := packet.Rewrite{SrcIP: &n.natIP, SrcPort: &m.NATPort, SrcMAC: &n.vmac}
		if err := rw.Apply(frame); err != nil {
			return nf.Drop()
		}
		n.translated++
		return nf.Forward(frame)

	default: // Inbound
		if p.IP.Dst != n.natIP {
			return nf.Forward(frame)
		}
		m, exists := n.byPort[ft.Dst.Port]
		if !exists {
			return nf.Drop() // unsolicited inbound to NAT address
		}
		rw := packet.Rewrite{
			DstIP:   &m.Key.SrcIP,
			DstPort: &m.Key.SrcPort,
			DstMAC:  &m.HostMAC,
			SrcMAC:  &n.vmac,
		}
		if err := rw.Apply(frame); err != nil {
			return nf.Drop()
		}
		n.detranslated++
		return nf.Forward(frame)
	}
}

// NFStats implements nf.StatsReporter.
func (n *NAT) NFStats() map[string]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return map[string]uint64{
		"translated":   n.translated,
		"detranslated": n.detranslated,
		"arp_replies":  n.arpReplies,
		"mappings":     uint64(len(n.byKey)),
	}
}

type natState struct {
	Mappings []mapping `json:"mappings"`
	NextPort uint16    `json:"next_port"`
}

// ExportState implements container.StateHandler.
func (n *NAT) ExportState() ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := natState{NextPort: n.nextPort, Mappings: make([]mapping, 0, len(n.byKey))}
	for _, m := range n.byKey {
		st.Mappings = append(st.Mappings, *m)
	}
	return json.Marshal(st)
}

// ImportState implements container.StateHandler.
func (n *NAT) ImportState(data []byte) error {
	var st natState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.byKey = make(map[mapKey]*mapping, len(st.Mappings))
	n.byPort = make(map[uint16]*mapping, len(st.Mappings))
	n.mergeLocked(st)
	return nil
}

// ExportDelta implements nf.DeltaStateful: mappings created after epoch
// `since` (all of them for since == 0), plus the port cursor. Mappings are
// never deleted, so an upsert-only delta is exact.
func (n *NAT) ExportDelta(since uint64) ([]byte, uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := natState{NextPort: n.nextPort}
	for _, m := range n.byKey {
		if m.Seq > since {
			st.Mappings = append(st.Mappings, *m)
		}
	}
	data, err := json.Marshal(st)
	return data, n.seq, err
}

// ImportDelta implements nf.DeltaStateful by merging exported mappings
// into the live table.
func (n *NAT) ImportDelta(data []byte) error {
	var st natState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mergeLocked(st)
	return nil
}

// mergeLocked upserts st's mappings and adopts its port cursor; the local
// dirty epoch advances past every imported stamp so a migrated-in table
// re-exports correctly on the next pre-copy. Called with mu held.
func (n *NAT) mergeLocked(st natState) {
	for i := range st.Mappings {
		m := st.Mappings[i]
		if m.Seq > n.seq {
			n.seq = m.Seq
		}
		if old, ok := n.byKey[m.Key]; ok {
			delete(n.byPort, old.NATPort)
		}
		n.byKey[m.Key] = &m
		n.byPort[m.NATPort] = &m
	}
	if st.NextPort >= n.lo && st.NextPort <= n.hi {
		n.nextPort = st.NextPort
	}
}

var _ nf.DeltaStateful = (*NAT)(nil)

func init() {
	nf.Default.Register("nat", func(name string, params nf.Params) (nf.Function, error) {
		ip, ok := packet.ParseIP(params.Get("nat_ip", ""))
		if !ok {
			return nil, fmt.Errorf("nat: bad or missing nat_ip %q", params["nat_ip"])
		}
		var lo, hi uint16 = 40000, 50000
		if _, err := fmt.Sscanf(params.Get("ports", "40000-50000"), "%d-%d", &lo, &hi); err != nil {
			return nil, fmt.Errorf("nat: bad ports %q", params["ports"])
		}
		return New(name, ip, lo, hi)
	})
}
