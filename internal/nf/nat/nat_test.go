package nat

import (
	"testing"
	"testing/quick"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

var (
	macC  = packet.MAC{2, 0, 0, 0, 0, 1}
	macS  = packet.MAC{2, 0, 0, 0, 0, 2}
	ipC   = packet.IP{10, 0, 0, 1}
	ipS   = packet.IP{8, 8, 8, 8}
	natIP = packet.IP{192, 168, 100, 1}
)

func outboundUDP(srcPort uint16) []byte {
	return packet.BuildUDP(macC, macS, ipC, ipS, srcPort, 53, []byte("q"))
}

func mustNAT(t *testing.T) *NAT {
	t.Helper()
	n, err := New("nat", natIP, 40000, 40010)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestOutboundTranslation(t *testing.T) {
	n := mustNAT(t)
	out := n.Process(nf.Outbound, outboundUDP(5000))
	if len(out.Forward) != 1 {
		t.Fatalf("out = %+v", out)
	}
	var p packet.Parser
	if err := p.Parse(out.Forward[0]); err != nil {
		t.Fatal(err)
	}
	if p.IP.Src != natIP {
		t.Fatalf("src = %v", p.IP.Src)
	}
	if p.UDP.SrcPort < 40000 || p.UDP.SrcPort > 40010 {
		t.Fatalf("nat port = %d", p.UDP.SrcPort)
	}
	if p.Eth.Src != VirtualMAC(natIP) {
		t.Fatal("src MAC not virtualized")
	}
	if !p.IP.ChecksumOK() {
		t.Fatal("IP checksum broken")
	}
	if n.Mappings() != 1 {
		t.Fatalf("mappings = %d", n.Mappings())
	}
}

func TestRoundTripTranslation(t *testing.T) {
	n := mustNAT(t)
	out := n.Process(nf.Outbound, outboundUDP(5000))
	var p packet.Parser
	p.Parse(out.Forward[0])
	natPort := p.UDP.SrcPort

	// Server replies to the NAT address.
	reply := packet.BuildUDP(macS, VirtualMAC(natIP), ipS, natIP, 53, natPort, []byte("a"))
	back := n.Process(nf.Inbound, reply)
	if len(back.Forward) != 1 {
		t.Fatalf("reply dropped: %+v", back)
	}
	p.Parse(back.Forward[0])
	if p.IP.Dst != ipC || p.UDP.DstPort != 5000 {
		t.Fatalf("de-translation wrong: %v:%d", p.IP.Dst, p.UDP.DstPort)
	}
	if p.Eth.Dst != macC {
		t.Fatal("client MAC not restored")
	}
}

func TestSameFlowReusesMapping(t *testing.T) {
	n := mustNAT(t)
	o1 := n.Process(nf.Outbound, outboundUDP(5000))
	o2 := n.Process(nf.Outbound, outboundUDP(5000))
	var p1, p2 packet.Parser
	p1.Parse(o1.Forward[0])
	p2.Parse(o2.Forward[0])
	if p1.UDP.SrcPort != p2.UDP.SrcPort {
		t.Fatal("same flow mapped to different ports")
	}
	if n.Mappings() != 1 {
		t.Fatalf("mappings = %d", n.Mappings())
	}
}

func TestPortExhaustionDrops(t *testing.T) {
	n, _ := New("nat", natIP, 40000, 40002) // 3 ports
	for i := 0; i < 3; i++ {
		if len(n.Process(nf.Outbound, outboundUDP(uint16(6000+i))).Forward) != 1 {
			t.Fatalf("flow %d rejected early", i)
		}
	}
	if len(n.Process(nf.Outbound, outboundUDP(7000)).Forward) != 0 {
		t.Fatal("4th flow translated with 3-port pool")
	}
}

func TestUnsolicitedInboundDropped(t *testing.T) {
	n := mustNAT(t)
	stray := packet.BuildUDP(macS, VirtualMAC(natIP), ipS, natIP, 53, 40005, []byte("x"))
	if len(n.Process(nf.Inbound, stray).Forward) != 0 {
		t.Fatal("unsolicited inbound forwarded")
	}
}

func TestInboundForOtherIPPasses(t *testing.T) {
	n := mustNAT(t)
	other := packet.BuildUDP(macS, macC, ipS, ipC, 53, 1234, []byte("x"))
	if len(n.Process(nf.Inbound, other).Forward) != 1 {
		t.Fatal("non-NAT inbound dropped")
	}
}

func TestProxyARP(t *testing.T) {
	n := mustNAT(t)
	req := packet.BuildARP(packet.ARPRequest, macS, ipS, packet.MAC{}, natIP)
	out := n.Process(nf.Inbound, req)
	if len(out.Reverse) != 1 || len(out.Forward) != 0 {
		t.Fatalf("arp out = %+v", out)
	}
	var p packet.Parser
	p.Parse(out.Reverse[0])
	if !p.Has(packet.LayerARP) || p.ARP.Op != packet.ARPReply {
		t.Fatal("not an ARP reply")
	}
	if p.ARP.SenderHW != VirtualMAC(natIP) || p.ARP.SenderIP != natIP {
		t.Fatalf("arp reply = %+v", p.ARP)
	}
	// ARP for other addresses passes through.
	req2 := packet.BuildARP(packet.ARPRequest, macS, ipS, packet.MAC{}, ipC)
	if out := n.Process(nf.Inbound, req2); len(out.Forward) != 1 {
		t.Fatal("foreign ARP intercepted")
	}
}

func TestICMPPassesUntranslated(t *testing.T) {
	n := mustNAT(t)
	ping := packet.BuildICMPEcho(macC, macS, ipC, ipS, packet.ICMPEchoRequest, 1, 1, nil)
	if len(n.Process(nf.Outbound, ping).Forward) != 1 {
		t.Fatal("ICMP dropped")
	}
}

func TestStateMigrationKeepsFlows(t *testing.T) {
	n1 := mustNAT(t)
	out := n1.Process(nf.Outbound, outboundUDP(5000))
	var p packet.Parser
	p.Parse(out.Forward[0])
	natPort := p.UDP.SrcPort

	data, err := n1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	n2 := mustNAT(t)
	if err := n2.ImportState(data); err != nil {
		t.Fatal(err)
	}
	// Return traffic hits the migrated instance and still de-translates.
	reply := packet.BuildUDP(macS, VirtualMAC(natIP), ipS, natIP, 53, natPort, []byte("a"))
	back := n2.Process(nf.Inbound, reply)
	if len(back.Forward) != 1 {
		t.Fatal("migrated NAT lost the mapping")
	}
	p.Parse(back.Forward[0])
	if p.IP.Dst != ipC || p.UDP.DstPort != 5000 {
		t.Fatal("migrated de-translation wrong")
	}
	// The same outbound flow keeps its port after migration.
	o2 := n2.Process(nf.Outbound, outboundUDP(5000))
	p.Parse(o2.Forward[0])
	if p.UDP.SrcPort != natPort {
		t.Fatal("migration changed the flow's NAT port")
	}
	if err := n2.ImportState([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestBadConstruction(t *testing.T) {
	if _, err := New("n", natIP, 0, 10); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := New("n", natIP, 100, 50); err == nil {
		t.Fatal("hi<lo accepted")
	}
}

func TestFactory(t *testing.T) {
	fn, err := nf.Default.New("nat", "n0", nf.Params{"nat_ip": "192.168.1.1", "ports": "1000-2000"})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if fn.(*NAT).NATIP() != (packet.IP{192, 168, 1, 1}) {
		t.Fatal("nat ip lost")
	}
	if _, err := nf.Default.New("nat", "x", nf.Params{}); err == nil {
		t.Fatal("missing nat_ip accepted")
	}
	if _, err := nf.Default.New("nat", "x", nf.Params{"nat_ip": "1.2.3.4", "ports": "banana"}); err == nil {
		t.Fatal("bad ports accepted")
	}
}

// Property: forward/reverse translation is a bijection — any set of client
// flows maps to distinct NAT ports, and every reply de-translates to
// exactly its original flow.
func TestMappingBijectionProperty(t *testing.T) {
	f := func(portsRaw []uint16) bool {
		n, _ := New("n", natIP, 40000, 41000)
		seen := make(map[uint16]bool)
		used := make(map[uint16]uint16) // natPort -> srcPort
		for _, pr := range portsRaw {
			src := pr%5000 + 1
			if seen[src] {
				continue
			}
			seen[src] = true
			out := n.Process(nf.Outbound, outboundUDP(src))
			if len(out.Forward) != 1 {
				return false
			}
			var p packet.Parser
			if err := p.Parse(out.Forward[0]); err != nil {
				return false
			}
			np := p.UDP.SrcPort
			if _, dup := used[np]; dup {
				return false // two flows share a NAT port
			}
			used[np] = src
		}
		for np, src := range used {
			reply := packet.BuildUDP(macS, VirtualMAC(natIP), ipS, natIP, 53, np, nil)
			back := n.Process(nf.Inbound, reply)
			if len(back.Forward) != 1 {
				return false
			}
			var p packet.Parser
			if err := p.Parse(back.Forward[0]); err != nil {
				return false
			}
			if p.UDP.DstPort != src {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
