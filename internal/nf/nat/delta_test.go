package nat

import (
	"testing"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

func deltaFrame(srcPort uint16) []byte {
	macC := packet.MAC{2, 0, 0, 0, 0, 1}
	macS := packet.MAC{2, 0, 0, 0, 0, 2}
	ipC := packet.IP{10, 0, 0, 1}
	ipS := packet.IP{10, 9, 9, 9}
	return packet.BuildUDP(macC, macS, ipC, ipS, srcPort, 53, []byte("q"))
}

func TestNATDeltaExportsOnlyNewMappings(t *testing.T) {
	natIP := packet.IP{192, 168, 9, 1}
	src, err := New("nat", natIP, 40000, 41000)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint16(1000); p < 1010; p++ {
		src.Process(nf.Outbound, deltaFrame(p))
	}

	// Full first round lands every mapping on a fresh instance.
	full, epoch, err := src.ExportDelta(0)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := New("nat", natIP, 40000, 41000)
	if err := dst.ImportDelta(full); err != nil {
		t.Fatal(err)
	}
	if dst.Mappings() != 10 {
		t.Fatalf("mappings after full = %d, want 10", dst.Mappings())
	}

	// Two new flows: the next delta carries exactly those.
	src.Process(nf.Outbound, deltaFrame(2000))
	src.Process(nf.Outbound, deltaFrame(2001))
	src.Process(nf.Outbound, deltaFrame(1000)) // existing flow: no new mapping
	delta, epoch2, err := src.ExportDelta(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full) {
		t.Fatalf("delta %dB not smaller than full %dB", len(delta), len(full))
	}
	if err := dst.ImportDelta(delta); err != nil {
		t.Fatal(err)
	}
	if dst.Mappings() != 12 {
		t.Fatalf("mappings after delta = %d, want 12", dst.Mappings())
	}
	if epoch2 <= epoch {
		t.Fatalf("epoch did not advance: %d -> %d", epoch, epoch2)
	}

	// Translation continuity: the target translates an existing flow to
	// the same NAT port the source allocated.
	fSrc, fDst := deltaFrame(1000), deltaFrame(1000)
	src.Process(nf.Outbound, fSrc)
	dst.Process(nf.Outbound, fDst)
	var pSrc, pDst packet.Parser
	if err := pSrc.Parse(fSrc); err != nil {
		t.Fatal(err)
	}
	if err := pDst.Parse(fDst); err != nil {
		t.Fatal(err)
	}
	tSrc, _ := pSrc.FiveTuple()
	tDst, _ := pDst.FiveTuple()
	if tSrc.Src.Port != tDst.Src.Port {
		t.Fatalf("NAT port diverged after delta migration: %d vs %d", tSrc.Src.Port, tDst.Src.Port)
	}
}

func TestNATIdleDeltaIsTiny(t *testing.T) {
	natIP := packet.IP{192, 168, 9, 1}
	src, _ := New("nat", natIP, 40000, 41000)
	for p := uint16(1000); p < 1200; p++ {
		src.Process(nf.Outbound, deltaFrame(p))
	}
	full, epoch, err := src.ExportDelta(0)
	if err != nil {
		t.Fatal(err)
	}
	idle, _, err := src.ExportDelta(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(idle) >= len(full)/10 {
		t.Fatalf("idle delta %dB vs full %dB — dirty tracking not working", len(idle), len(full))
	}
}
