package nf

import (
	"testing"
	"time"

	"gnf/internal/netem"
)

// brownoutHost builds a disabled ChainHost around a tagger with endpoints
// whose far sides collect emitted frames.
func brownoutHost(t *testing.T) (*ChainHost, *netem.Endpoint, chan []byte) {
	t.Helper()
	swIn, chainIn := netem.NewVethPair("b-in0", "b-in1")
	swOut, chainOut := netem.NewVethPair("b-out0", "b-out1")
	t.Cleanup(func() { swIn.Close(); swOut.Close() })
	egress := make(chan []byte, 64)
	swOut.SetReceiver(func(f []byte) { egress <- f })
	h := NewChainHost(&tagger{name: "t", tag: 'x'}, chainIn, chainOut)
	return h, swIn, egress
}

func collect(ch chan []byte, n int, d time.Duration) [][]byte {
	var out [][]byte
	deadline := time.After(d)
	for len(out) < n {
		select {
		case f := <-ch:
			out = append(out, f)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestBrownoutBufferReplaysOnEnable(t *testing.T) {
	h, swIn, egress := brownoutHost(t)
	h.BufferWhileDisabled(16)
	for i := 0; i < 5; i++ {
		swIn.Send([]byte{byte(i)})
	}
	// Frames park; none emerge and none drop.
	if got := collect(egress, 1, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("disabled host emitted %d frames", len(got))
	}
	if h.Dropped() != 0 {
		t.Fatalf("dropped = %d while buffering", h.Dropped())
	}
	h.Enable()
	got := collect(egress, 5, 2*time.Second)
	if len(got) != 5 {
		t.Fatalf("replayed %d frames, want 5", len(got))
	}
	for i, f := range got {
		if f[0] != byte(i) {
			t.Fatalf("frame %d = %v, replay out of order", i, f)
		}
	}
	if h.Replayed() != 5 || h.Processed() != 5 {
		t.Fatalf("replayed=%d processed=%d", h.Replayed(), h.Processed())
	}
}

func TestBrownoutOverflowCountsAsDrops(t *testing.T) {
	h, swIn, _ := brownoutHost(t)
	h.BufferWhileDisabled(2)
	for i := 0; i < 5; i++ {
		swIn.Send([]byte{byte(i)})
	}
	deadline := time.After(2 * time.Second)
	for h.Dropped() != 3 {
		select {
		case <-deadline:
			t.Fatalf("dropped = %d, want 3 (buffer depth 2 of 5 frames)", h.Dropped())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestUnbufferedDisableStillDrops(t *testing.T) {
	h, swIn, _ := brownoutHost(t)
	// No BufferWhileDisabled: schedule-window semantics, frames drop.
	swIn.Send([]byte{1})
	deadline := time.After(2 * time.Second)
	for h.Dropped() != 1 {
		select {
		case <-deadline:
			t.Fatalf("dropped = %d, want 1", h.Dropped())
		case <-time.After(time.Millisecond):
		}
	}
	h.Enable()
	if h.Replayed() != 0 {
		t.Fatalf("replayed = %d on unbuffered host", h.Replayed())
	}
}

func TestFreezeBufferedParksInFlight(t *testing.T) {
	h, swIn, egress := brownoutHost(t)
	h.Enable()
	swIn.Send([]byte{1})
	if got := collect(egress, 1, 2*time.Second); len(got) != 1 {
		t.Fatal("enabled host did not forward")
	}
	h.FreezeBuffered(16)
	swIn.Send([]byte{2})
	swIn.Send([]byte{3})
	// The frozen window parks, never drops.
	if got := collect(egress, 1, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("frozen host emitted %d frames", len(got))
	}
	if h.Dropped() != 0 {
		t.Fatalf("freeze dropped %d frames", h.Dropped())
	}
	h.Enable()
	if got := collect(egress, 2, 2*time.Second); len(got) != 2 {
		t.Fatalf("replayed %d frames after freeze, want 2", len(got))
	}
	if h.Dropped() != 0 || h.Processed() != 3 {
		t.Fatalf("processed=%d dropped=%d", h.Processed(), h.Dropped())
	}
}
