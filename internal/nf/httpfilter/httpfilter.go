// Package httpfilter implements GNF's HTTP filter NF — the second of the
// paper's demo functions. It inspects outbound TCP segments that look like
// HTTP requests and drops (optionally TCP-RSTs) requests whose host, path
// or header block matches the configured blocklist, notifying the Manager
// of each block.
package httpfilter

import (
	"strconv"
	"strings"
	"sync"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

// Filter is the NF instance.
type Filter struct {
	name      string
	port      uint16 // 0 = inspect every TCP port
	hosts     []string
	paths     []string
	keywords  []string
	sendReset bool

	mu                         sync.Mutex
	parser                     packet.Parser
	notify                     nf.NotifyFunc
	inspected, blocked, passed uint64
}

// Option configures a Filter.
type Option func(*Filter)

// WithBlockedHosts blocks requests whose Host equals or is a subdomain of
// any entry.
func WithBlockedHosts(hosts ...string) Option {
	return func(f *Filter) {
		for _, h := range hosts {
			h = strings.ToLower(strings.TrimSpace(h))
			if h != "" {
				f.hosts = append(f.hosts, h)
			}
		}
	}
}

// WithBlockedPaths blocks requests whose target starts with any entry.
func WithBlockedPaths(paths ...string) Option {
	return func(f *Filter) {
		for _, p := range paths {
			if p = strings.TrimSpace(p); p != "" {
				f.paths = append(f.paths, p)
			}
		}
	}
}

// WithBlockedKeywords blocks requests whose head contains any entry.
func WithBlockedKeywords(kws ...string) Option {
	return func(f *Filter) {
		for _, k := range kws {
			if k = strings.TrimSpace(k); k != "" {
				f.keywords = append(f.keywords, strings.ToLower(k))
			}
		}
	}
}

// WithPort restricts inspection to one TCP destination port (default 80;
// 0 inspects all).
func WithPort(port uint16) Option { return func(f *Filter) { f.port = port } }

// WithReset makes the filter answer blocked requests with a TCP RST toward
// the client instead of silently dropping.
func WithReset(on bool) Option { return func(f *Filter) { f.sendReset = on } }

// New creates an HTTP filter.
func New(name string, opts ...Option) *Filter {
	f := &Filter{name: name, port: 80}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Name implements nf.Function.
func (f *Filter) Name() string { return f.name }

// Kind implements nf.Function.
func (f *Filter) Kind() string { return "httpfilter" }

// SetNotifier implements nf.NotifierSetter.
func (f *Filter) SetNotifier(fn nf.NotifyFunc) {
	f.mu.Lock()
	f.notify = fn
	f.mu.Unlock()
}

// Process implements nf.Function.
func (f *Filter) Process(dir nf.Direction, frame []byte) nf.Output {
	f.mu.Lock()
	defer f.mu.Unlock()
	pass, reply := f.verdictLocked(dir, frame)
	switch {
	case pass:
		return nf.Forward(frame)
	case reply != nil:
		return nf.Reply(reply)
	default:
		return nf.Drop()
	}
}

// ProcessBatch implements nf.BatchProcessor: one lock acquisition covers
// the batch; blocked frames are recycled, RSTs join the reverse batch.
func (f *Filter) ProcessBatch(dir nf.Direction, frames [][]byte, out *nf.BatchOutput) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, frame := range frames {
		pass, reply := f.verdictLocked(dir, frame)
		if pass {
			out.Forward = append(out.Forward, frame)
			continue
		}
		if reply != nil {
			out.Reverse = append(out.Reverse, reply)
		}
		packet.ReturnFrame(frame)
	}
}

// verdictLocked inspects one frame with f.mu held: pass reports whether
// the frame continues forward; a non-nil reply is the RST answered toward
// the client for a blocked request.
func (f *Filter) verdictLocked(dir nf.Direction, frame []byte) (pass bool, reply []byte) {
	// Only outbound client->server requests are inspected.
	if dir != nf.Outbound {
		return true, nil
	}
	if err := f.parser.Parse(frame); err != nil || !f.parser.Has(packet.LayerTCP) {
		return true, nil
	}
	if f.port != 0 && f.parser.TCP.DstPort != f.port {
		return true, nil
	}
	payload := f.parser.TCP.Payload()
	if !packet.LooksLikeHTTPRequest(payload) {
		return true, nil
	}
	f.inspected++
	req, err := packet.ParseHTTPRequest(payload)
	if err != nil {
		return true, nil // partial head: let it through
	}
	reason := f.blockReason(req, payload)
	if reason == "" {
		f.passed++
		return true, nil
	}
	f.blocked++
	if f.notify != nil {
		f.notify(nf.Notification{
			Severity: nf.SevWarning,
			NF:       f.name,
			Kind:     "httpfilter",
			Message:  "blocked " + req.Method + " " + req.Host + req.Target + " (" + reason + ")",
		})
	}
	if f.sendReset {
		return false, f.buildRST()
	}
	return false, nil
}

var _ nf.BatchProcessor = (*Filter)(nil)

func (f *Filter) blockReason(req *packet.HTTPRequest, payload []byte) string {
	for _, h := range f.hosts {
		if req.Host == h || strings.HasSuffix(req.Host, "."+h) {
			return "host " + h
		}
	}
	for _, p := range f.paths {
		if strings.HasPrefix(req.Target, p) {
			return "path " + p
		}
	}
	if len(f.keywords) > 0 {
		lower := strings.ToLower(string(payload))
		for _, k := range f.keywords {
			if strings.Contains(lower, k) {
				return "keyword " + k
			}
		}
	}
	return ""
}

// buildRST answers the parsed segment with a reset toward the client.
// Called with f.mu held and f.parser freshly parsed.
func (f *Filter) buildRST() []byte {
	p := &f.parser
	seq := p.TCP.Ack // valid for an established flow; good enough inline
	return packet.BuildTCP(
		p.Eth.Dst, p.Eth.Src,
		p.IP.Dst, p.IP.Src,
		p.TCP.DstPort, p.TCP.SrcPort,
		packet.TCPOptions{Seq: seq, Ack: p.TCP.Seq + uint32(len(p.TCP.Payload())), Flags: packet.TCPRst | packet.TCPAck},
		nil)
}

// NFStats implements nf.StatsReporter.
func (f *Filter) NFStats() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return map[string]uint64{
		"inspected": f.inspected,
		"blocked":   f.blocked,
		"passed":    f.passed,
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func init() {
	nf.Default.RegisterKind("httpfilter", nf.KindInfo{Shareable: true}, func(name string, params nf.Params) (nf.Function, error) {
		opts := []Option{
			WithBlockedHosts(splitList(params.Get("block_hosts", ""))...),
			WithBlockedPaths(splitList(params.Get("block_paths", ""))...),
			WithBlockedKeywords(splitList(params.Get("block_keywords", ""))...),
		}
		if ps := params.Get("port", ""); ps != "" {
			n, err := strconv.ParseUint(ps, 10, 16)
			if err != nil {
				return nil, err
			}
			opts = append(opts, WithPort(uint16(n)))
		}
		if params.Get("rst", "false") == "true" {
			opts = append(opts, WithReset(true))
		}
		return New(name, opts...), nil
	})
}
