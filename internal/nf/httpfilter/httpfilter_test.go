package httpfilter

import (
	"testing"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

var (
	macC = packet.MAC{2, 0, 0, 0, 0, 1}
	macS = packet.MAC{2, 0, 0, 0, 0, 2}
	ipC  = packet.IP{10, 0, 0, 1}
	ipS  = packet.IP{93, 184, 216, 34}
)

func httpFrame(host, path string, dstPort uint16) []byte {
	payload := packet.BuildHTTPRequest("GET", host, path, nil, nil)
	return packet.BuildTCP(macC, macS, ipC, ipS, 40000, dstPort,
		packet.TCPOptions{Seq: 100, Ack: 7, Flags: packet.TCPAck | packet.TCPPsh}, payload)
}

func forwarded(out nf.Output) bool { return len(out.Forward) == 1 && len(out.Reverse) == 0 }

func TestBlockByHost(t *testing.T) {
	f := New("hf", WithBlockedHosts("evil.example"))
	if forwarded(f.Process(nf.Outbound, httpFrame("evil.example", "/", 80))) {
		t.Fatal("blocked host forwarded")
	}
	if forwarded(f.Process(nf.Outbound, httpFrame("sub.evil.example", "/", 80))) {
		t.Fatal("subdomain of blocked host forwarded")
	}
	if !forwarded(f.Process(nf.Outbound, httpFrame("good.example", "/", 80))) {
		t.Fatal("clean host dropped")
	}
	// Exact-suffix check: "notevil.example" must NOT match "evil.example".
	if !forwarded(f.Process(nf.Outbound, httpFrame("notevil.example", "/", 80))) {
		t.Fatal("suffix over-match: notevil.example blocked")
	}
	stats := f.NFStats()
	if stats["blocked"] != 2 || stats["passed"] != 2 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestBlockByPathAndKeyword(t *testing.T) {
	f := New("hf", WithBlockedPaths("/admin"), WithBlockedKeywords("malware-c2"))
	if forwarded(f.Process(nf.Outbound, httpFrame("x.example", "/admin/panel", 80))) {
		t.Fatal("blocked path forwarded")
	}
	payload := packet.BuildHTTPRequest("GET", "x.example", "/ok", map[string]string{"X-Tag": "MALWARE-C2"}, nil)
	frame := packet.BuildTCP(macC, macS, ipC, ipS, 40000, 80, packet.TCPOptions{Flags: packet.TCPAck}, payload)
	if forwarded(f.Process(nf.Outbound, frame)) {
		t.Fatal("keyword (case-insensitive) not blocked")
	}
	if !forwarded(f.Process(nf.Outbound, httpFrame("x.example", "/public", 80))) {
		t.Fatal("clean path dropped")
	}
}

func TestInboundAndNonHTTPPass(t *testing.T) {
	f := New("hf", WithBlockedHosts("evil.example"))
	if !forwarded(f.Process(nf.Inbound, httpFrame("evil.example", "/", 80))) {
		t.Fatal("inbound traffic inspected")
	}
	udp := packet.BuildUDP(macC, macS, ipC, ipS, 1, 80, []byte("GET / HTTP/1.1\r\n\r\n"))
	if !forwarded(f.Process(nf.Outbound, udp)) {
		t.Fatal("UDP dropped by TCP filter")
	}
	tls := packet.BuildTCP(macC, macS, ipC, ipS, 40000, 80, packet.TCPOptions{Flags: packet.TCPAck}, []byte{0x16, 0x03, 0x01})
	if !forwarded(f.Process(nf.Outbound, tls)) {
		t.Fatal("non-HTTP payload dropped")
	}
}

func TestPortScoping(t *testing.T) {
	f := New("hf", WithBlockedHosts("evil.example")) // default port 80
	if !forwarded(f.Process(nf.Outbound, httpFrame("evil.example", "/", 8080))) {
		t.Fatal("non-80 port inspected with default scope")
	}
	all := New("hf", WithBlockedHosts("evil.example"), WithPort(0))
	if forwarded(all.Process(nf.Outbound, httpFrame("evil.example", "/", 8080))) {
		t.Fatal("port 0 scope did not inspect 8080")
	}
}

func TestResetMode(t *testing.T) {
	f := New("hf", WithBlockedHosts("evil.example"), WithReset(true))
	out := f.Process(nf.Outbound, httpFrame("evil.example", "/", 80))
	if len(out.Forward) != 0 || len(out.Reverse) != 1 {
		t.Fatalf("out = %+v", out)
	}
	var p packet.Parser
	if err := p.Parse(out.Reverse[0]); err != nil {
		t.Fatalf("parse RST: %v", err)
	}
	if !p.TCP.HasFlag(packet.TCPRst) {
		t.Fatal("reply is not a RST")
	}
	if p.IP.Dst != ipC || p.TCP.DstPort != 40000 {
		t.Fatal("RST not addressed to client")
	}
}

func TestNotification(t *testing.T) {
	f := New("hf", WithBlockedHosts("evil.example"))
	var got []nf.Notification
	f.SetNotifier(func(n nf.Notification) { got = append(got, n) })
	f.Process(nf.Outbound, httpFrame("evil.example", "/x", 80))
	if len(got) != 1 || got[0].Severity != nf.SevWarning || got[0].NF != "hf" {
		t.Fatalf("notifications = %+v", got)
	}
}

func TestFactory(t *testing.T) {
	fn, err := nf.Default.New("httpfilter", "h", nf.Params{
		"block_hosts": "a.example,b.example",
		"port":        "8080",
		"rst":         "true",
	})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if fn.Kind() != "httpfilter" {
		t.Fatal("wrong kind")
	}
	if _, err := nf.Default.New("httpfilter", "h", nf.Params{"port": "banana"}); err == nil {
		t.Fatal("bad port accepted")
	}
}
