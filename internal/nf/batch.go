package nf

import "sync"

// Batched processing. A BatchProcessor handles a whole batch of frames in
// one call — one mutex acquire and one parser for the batch instead of per
// frame, which is where the per-frame cost of the builtin middleboxes
// lives. Functions without the fast path are driven frame by frame through
// Process; the two paths must be semantically identical.

// BatchOutput collects the result of a ProcessBatch call. The caller owns
// (and typically pools) the struct; implementations append to the slices
// and must not retain them past the call.
type BatchOutput struct {
	// Forward frames continue in the input batch's direction.
	Forward [][]byte
	// Reverse frames are emitted back toward the batch's origin.
	Reverse [][]byte
}

// Reset clears the output for reuse, dropping frame references so buffers
// handed downstream are not pinned.
func (o *BatchOutput) Reset() {
	for i := range o.Forward {
		o.Forward[i] = nil
	}
	for i := range o.Reverse {
		o.Reverse[i] = nil
	}
	o.Forward = o.Forward[:0]
	o.Reverse = o.Reverse[:0]
}

// BatchProcessor is the batched fast path of a Function. ProcessBatch must
// produce exactly the frames that per-frame Process calls would, in order.
// Ownership of every input frame transfers to the implementation: frames
// not appended to out are consumed and should be recycled with
// packet.ReturnFrame. The frames slice itself remains the caller's.
type BatchProcessor interface {
	ProcessBatch(dir Direction, frames [][]byte, out *BatchOutput)
}

// BorrowBatchOutput fetches a pooled, reset BatchOutput; pair it with
// ReturnBatchOutput once its frames have been handed off.
func BorrowBatchOutput() *BatchOutput {
	return batchOutputPool.Get().(*BatchOutput)
}

// ReturnBatchOutput resets and recycles o.
func ReturnBatchOutput(o *BatchOutput) {
	o.Reset()
	batchOutputPool.Put(o)
}

var batchOutputPool = sync.Pool{New: func() any { return new(BatchOutput) }}

// chainScratch is the pooled working set of Chain.ProcessBatch: the two
// ping-pong frame batches threaded member to member, the per-member
// output, and the collectors for frames leaving the chain via the reverse
// walk.
type chainScratch struct {
	a, b    [][]byte
	member  BatchOutput
	egress  [][]byte
	ingress [][]byte
}

var chainScratchPool = sync.Pool{New: func() any { return new(chainScratch) }}

func (sc *chainScratch) release() {
	clearFrames(sc.a)
	clearFrames(sc.b)
	sc.a, sc.b = sc.a[:0], sc.b[:0]
	sc.member.Reset()
	clearFrames(sc.egress)
	clearFrames(sc.ingress)
	sc.egress, sc.ingress = sc.egress[:0], sc.ingress[:0]
	chainScratchPool.Put(sc)
}

func clearFrames(fs [][]byte) {
	for i := range fs {
		fs[i] = nil
	}
}

// ProcessBatch implements BatchProcessor by threading the whole batch
// through the chain member by member: members with a batch fast path get
// the surviving batch in one call, the rest fall back to per-frame
// Process. Reverse frames emitted by a member re-traverse the members the
// batch already passed via the same walk Process uses, preserving full
// middlebox semantics.
func (c *Chain) ProcessBatch(dir Direction, frames [][]byte, out *BatchOutput) {
	sc := chainScratchPool.Get().(*chainScratch)
	cur := append(sc.a[:0], frames...)
	next := sc.b[:0]

	step := 1
	idx := 0
	if dir == Inbound {
		step = -1
		idx = len(c.fns) - 1
	}
	for ; idx >= 0 && idx < len(c.fns); idx += step {
		fn := c.fns[idx]
		back := idx - step
		if bp, ok := fn.(BatchProcessor); ok {
			sc.member.Reset()
			bp.ProcessBatch(dir, cur, &sc.member)
			next = append(next, sc.member.Forward...)
			for _, rf := range sc.member.Reverse {
				c.walk(dir.Opposite(), back, rf, &sc.egress, &sc.ingress)
			}
		} else {
			for _, f := range cur {
				o := fn.Process(dir, f)
				next = append(next, o.Forward...)
				for _, rf := range o.Reverse {
					c.walk(dir.Opposite(), back, rf, &sc.egress, &sc.ingress)
				}
			}
		}
		clearFrames(cur)
		cur, next = next, cur[:0]
	}

	out.Forward = append(out.Forward, cur...)
	if dir == Outbound {
		out.Forward = append(out.Forward, sc.egress...)
		out.Reverse = append(out.Reverse, sc.ingress...)
	} else {
		out.Forward = append(out.Forward, sc.ingress...)
		out.Reverse = append(out.Reverse, sc.egress...)
	}

	sc.a, sc.b = cur, next
	sc.release()
}

var _ BatchProcessor = (*Chain)(nil)
