// Package nf defines the GNF network-function framework: the Function
// interface every vNF implements, service chains, the factory registry the
// Agents instantiate functions from, and the notification types NFs relay
// to the Manager (§3: "individual NFs can relay notifications through their
// local Agent to the Manager").
//
// Functions are inline middleboxes: they receive raw Ethernet frames with a
// direction (outbound = from the client toward the network) and return an
// Output. Output.Forward frames continue in the frame's direction;
// Output.Reverse frames are sent back the way the frame came — that is how
// a DNS load balancer or cache answers a query directly at the edge.
// Returning the zero Output drops the packet. Stateful functions
// additionally implement container.StateHandler (ExportState/ImportState)
// so checkpoint/restore migration can move their state between stations.
package nf

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gnf/internal/clock"
)

// Direction tells a function which side a frame entered from.
type Direction uint8

// Frame directions through a function.
const (
	// Outbound frames travel client -> network (chain ingress -> egress).
	Outbound Direction = iota
	// Inbound frames travel network -> client (chain egress -> ingress).
	Inbound
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Inbound {
		return "in"
	}
	return "out"
}

// Opposite returns the reversed direction.
func (d Direction) Opposite() Direction {
	if d == Inbound {
		return Outbound
	}
	return Inbound
}

// Output is the result of processing one frame.
type Output struct {
	// Forward frames continue in the input frame's direction.
	Forward [][]byte
	// Reverse frames are emitted back toward the input frame's origin.
	Reverse [][]byte
}

// Forward wraps frames continuing in the input direction.
func Forward(frames ...[]byte) Output { return Output{Forward: frames} }

// Reply wraps frames answered back toward the origin.
func Reply(frames ...[]byte) Output { return Output{Reverse: frames} }

// Drop returns the empty Output (packet consumed).
func Drop() Output { return Output{} }

// Function is one virtual network function.
type Function interface {
	// Name returns the instance name (unique within a chain).
	Name() string
	// Kind returns the function type, e.g. "firewall".
	Kind() string
	// Process handles one frame. Implementations may mutate frame in
	// place and return it in the Output.
	Process(dir Direction, frame []byte) Output
}

// StatsReporter is implemented by functions exposing counters to the UI.
type StatsReporter interface {
	NFStats() map[string]uint64
}

// ClockSetter is implemented by functions that model time (rate limiters,
// caches); the hosting agent injects its clock after construction.
type ClockSetter interface {
	SetClock(clock.Clock)
}

// Severity grades a notification.
type Severity string

// Notification severities.
const (
	SevInfo     Severity = "info"
	SevWarning  Severity = "warning"
	SevCritical Severity = "critical"
)

// Notification is an event an NF reports up through Agent and Manager
// (e.g. "an intrusion attempt or detected malware").
type Notification struct {
	Severity Severity  `json:"severity"`
	NF       string    `json:"nf"`
	Kind     string    `json:"kind"`
	Message  string    `json:"message"`
	At       time.Time `json:"at"`
}

// NotifyFunc receives notifications from a function.
type NotifyFunc func(Notification)

// NotifierSetter is implemented by functions that emit notifications.
type NotifierSetter interface {
	SetNotifier(NotifyFunc)
}

// Params carries string configuration from the Manager to a factory.
type Params map[string]string

// Get returns the named parameter or def when absent.
func (p Params) Get(key, def string) string {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Factory builds a function instance from parameters.
type Factory func(name string, params Params) (Function, error)

// ErrUnknownKind is returned when instantiating an unregistered NF type.
var ErrUnknownKind = errors.New("nf: unknown function kind")

// DefaultVersion is the image tag of kinds registered without an explicit
// version.
const DefaultVersion = "1.0"

// KindInfo carries per-kind metadata alongside the factory.
type KindInfo struct {
	// Version is the kind's released image tag; empty means DefaultVersion.
	// Agents resolve container images as "gnf/<kind>:<version>".
	Version string
	// Shareable marks kinds whose instances hold no per-client state, so
	// one instance may serve every client with an identical configuration
	// (firewall, counter, ratelimit). Stateful kinds like nat must keep
	// per-client instances and leave this false.
	Shareable bool
}

// registration is one kind's factory plus metadata.
type registration struct {
	factory Factory
	info    KindInfo
}

// Registry maps function kinds to factories and their metadata. The
// package-level Default registry is populated by the built-in NF packages'
// init functions.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]registration)}
}

// Default is the process-wide registry that built-in NFs register into.
var Default = NewRegistry()

// Register adds a factory for kind with default metadata (version
// DefaultVersion, not shareable), replacing any previous registration.
func (r *Registry) Register(kind string, f Factory) {
	r.RegisterKind(kind, KindInfo{}, f)
}

// RegisterKind adds a factory for kind with explicit metadata, replacing
// any previous registration.
func (r *Registry) RegisterKind(kind string, info KindInfo, f Factory) {
	if info.Version == "" {
		info.Version = DefaultVersion
	}
	r.mu.Lock()
	r.factories[kind] = registration{factory: f, info: info}
	r.mu.Unlock()
}

// Info returns the metadata registered for kind. Unregistered kinds report
// default metadata and ok=false.
func (r *Registry) Info(kind string) (KindInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.factories[kind]
	if !ok {
		return KindInfo{Version: DefaultVersion}, false
	}
	return reg.info, true
}

// Shareable reports whether kind's instances may be shared across clients.
func (r *Registry) Shareable(kind string) bool {
	info, ok := r.Info(kind)
	return ok && info.Shareable
}

// ImageForKind resolves the repository image for kind from its registered
// version ("gnf/<kind>:<version>"); unregistered kinds resolve against
// DefaultVersion so image naming stays total.
func (r *Registry) ImageForKind(kind string) string {
	info, _ := r.Info(kind)
	return "gnf/" + kind + ":" + info.Version
}

// Kinds lists registered function kinds, sorted.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for k := range r.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// New instantiates a function of the given kind.
func (r *Registry) New(kind, name string, params Params) (Function, error) {
	r.mu.RLock()
	reg, ok := r.factories[kind]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
	return reg.factory(name, params)
}

// Chain composes functions into a service chain. Outbound frames traverse
// functions first-to-last; inbound frames last-to-first. Reverse frames
// emitted by a member propagate back through the members the frame already
// passed, in the opposite direction — full middlebox semantics, so an edge
// cache's reply still traverses the firewall in front of it.
type Chain struct {
	name string
	fns  []Function
}

// NewChain builds a chain. An empty chain forwards everything untouched.
func NewChain(name string, fns ...Function) *Chain {
	return &Chain{name: name, fns: fns}
}

// Name returns the chain name.
func (c *Chain) Name() string { return c.name }

// Kind implements Function.
func (c *Chain) Kind() string { return "chain" }

// Functions returns the chain members in outbound order.
func (c *Chain) Functions() []Function { return append([]Function(nil), c.fns...) }

// Len returns the number of functions in the chain.
func (c *Chain) Len() int { return len(c.fns) }

// Process implements Function by threading the frame through the chain.
func (c *Chain) Process(dir Direction, frame []byte) Output {
	var egressOut, ingressOut [][]byte
	start := 0
	if dir == Inbound {
		start = len(c.fns) - 1
	}
	c.walk(dir, start, frame, &egressOut, &ingressOut)
	if dir == Outbound {
		return Output{Forward: egressOut, Reverse: ingressOut}
	}
	return Output{Forward: ingressOut, Reverse: egressOut}
}

// walk advances frame through position i travelling dir; egressOut and
// ingressOut collect frames leaving the chain on the network and client
// side respectively.
func (c *Chain) walk(dir Direction, i int, frame []byte, egressOut, ingressOut *[][]byte) {
	if dir == Outbound && i >= len(c.fns) {
		*egressOut = append(*egressOut, frame)
		return
	}
	if dir == Inbound && i < 0 {
		*ingressOut = append(*ingressOut, frame)
		return
	}
	out := c.fns[i].Process(dir, frame)
	for _, f := range out.Forward {
		if dir == Outbound {
			c.walk(Outbound, i+1, f, egressOut, ingressOut)
		} else {
			c.walk(Inbound, i-1, f, egressOut, ingressOut)
		}
	}
	for _, f := range out.Reverse {
		if dir == Outbound {
			c.walk(Inbound, i-1, f, egressOut, ingressOut)
		} else {
			c.walk(Outbound, i+1, f, egressOut, ingressOut)
		}
	}
}

// ExportState implements container.StateHandler by concatenating the state
// of every stateful member (length-prefixed, positional).
func (c *Chain) ExportState() ([]byte, error) {
	return exportChainState(c.fns)
}

// ImportState implements container.StateHandler.
func (c *Chain) ImportState(data []byte) error {
	return importChainState(c.fns, data)
}

// ExportStateDelta implements container.DeltaStateHandler: it exports only
// the member state dirtied since the epoch vector of a previous export.
// since == nil exports the full state and starts the epoch sequence — the
// first pre-copy round of a live migration. Members without dirty tracking
// contribute a full snapshot every round.
func (c *Chain) ExportStateDelta(since []uint64) ([]byte, []uint64, error) {
	return exportChainDelta(c.fns, since)
}

// ImportStateDelta implements container.DeltaStateHandler by merging a
// delta produced by ExportStateDelta into the members' current state.
func (c *Chain) ImportStateDelta(data []byte) error {
	return importChainDelta(c.fns, data)
}

// SetNotifier fans the notifier out to every member that accepts one.
func (c *Chain) SetNotifier(fn NotifyFunc) {
	for _, f := range c.fns {
		if ns, ok := f.(NotifierSetter); ok {
			ns.SetNotifier(fn)
		}
	}
}

// SetClock fans the clock out to every member that accepts one.
func (c *Chain) SetClock(clk clock.Clock) {
	for _, f := range c.fns {
		if cs, ok := f.(ClockSetter); ok {
			cs.SetClock(clk)
		}
	}
}

// NFStats merges member stats, prefixed by member name.
func (c *Chain) NFStats() map[string]uint64 {
	out := make(map[string]uint64)
	for _, f := range c.fns {
		if sr, ok := f.(StatsReporter); ok {
			for k, v := range sr.NFStats() {
				out[f.Name()+"."+k] = v
			}
		}
	}
	return out
}

var _ Function = (*Chain)(nil)
var _ Stateful = (*Chain)(nil)
