package counter

import (
	"testing"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

func countFrame(srcPort uint16) []byte {
	macC := packet.MAC{2, 0, 0, 0, 0, 1}
	macS := packet.MAC{2, 0, 0, 0, 0, 2}
	ipC := packet.IP{10, 0, 0, 1}
	ipS := packet.IP{10, 9, 9, 9}
	return packet.BuildUDP(macC, macS, ipC, ipS, srcPort, 7, []byte("x"))
}

func TestMonitorDeltaExportsOnlyTouchedFlows(t *testing.T) {
	src := New("acct", 0)
	for p := uint16(1000); p < 1100; p++ {
		src.Process(nf.Outbound, countFrame(p))
	}
	full, epoch, err := src.ExportDelta(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := New("acct", 0)
	if err := dst.ImportDelta(full); err != nil {
		t.Fatal(err)
	}
	if dst.Flows() != 100 {
		t.Fatalf("flows after full = %d, want 100", dst.Flows())
	}

	// Touch one existing flow and add one new one; the delta carries two.
	src.Process(nf.Outbound, countFrame(1000))
	src.Process(nf.Outbound, countFrame(5000))
	delta, _, err := src.ExportDelta(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full)/10 {
		t.Fatalf("delta %dB vs full %dB — dirty tracking not working", len(delta), len(full))
	}
	if err := dst.ImportDelta(delta); err != nil {
		t.Fatal(err)
	}
	if dst.Flows() != 101 {
		t.Fatalf("flows after delta = %d, want 101", dst.Flows())
	}
	// The touched flow's packet count merged as an absolute value.
	var p packet.Parser
	frame := countFrame(1000)
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	ft, _ := p.FiveTuple()
	fs, ok := dst.Flow(ft)
	if !ok || fs.Packets != 2 {
		t.Fatalf("flow 1000 on target = %+v (ok=%v), want 2 packets", fs, ok)
	}
}
