// Package counter implements a per-flow accounting and lightweight
// intrusion-detection NF — the notification source of §3: "expected but
// anomalous events such as an intrusion attempt or detected malware". It
// counts packets and bytes per five-tuple, raises a critical notification
// when a flow exceeds a packets-per-second threshold (DoS heuristic), and
// a warning when a payload matches a configured signature. Flow counters
// are migration state.
package counter

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"time"

	"gnf/internal/clock"
	"gnf/internal/nf"
	"gnf/internal/packet"
)

// FlowStats accumulates per-flow counters. Seq stamps the dirty epoch of
// the flow's last update, so pre-copy migration rounds export only flows
// touched since the previous round.
type FlowStats struct {
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
	// window tracking for the pps heuristic
	WindowStart time.Time `json:"window_start"`
	WindowCount uint64    `json:"window_count"`
	Alerted     bool      `json:"alerted"`
	Seq         uint64    `json:"seq,omitempty"`
}

// Monitor is the NF instance.
type Monitor struct {
	name       string
	ppsAlert   uint64 // 0 disables the heuristic
	signatures [][]byte

	mu      sync.Mutex
	clk     clock.Clock
	flows   map[packet.FiveTuple]*FlowStats
	notify  nf.NotifyFunc
	parser  packet.Parser
	seq     uint64 // dirty epoch, bumped per flow update
	total   uint64
	alerts  uint64
	sigHits uint64
}

// New creates a monitor alerting when any flow exceeds ppsAlert packets in
// a one-second window (0 disables), matching the given payload signatures.
func New(name string, ppsAlert uint64, signatures ...string) *Monitor {
	m := &Monitor{
		name:     name,
		ppsAlert: ppsAlert,
		clk:      clock.System(),
		flows:    make(map[packet.FiveTuple]*FlowStats),
	}
	for _, s := range signatures {
		if s != "" {
			m.signatures = append(m.signatures, []byte(s))
		}
	}
	return m
}

// SetClock implements nf.ClockSetter.
func (m *Monitor) SetClock(c clock.Clock) {
	m.mu.Lock()
	m.clk = c
	m.mu.Unlock()
}

// SetNotifier implements nf.NotifierSetter.
func (m *Monitor) SetNotifier(fn nf.NotifyFunc) {
	m.mu.Lock()
	m.notify = fn
	m.mu.Unlock()
}

// Name implements nf.Function.
func (m *Monitor) Name() string { return m.name }

// Kind implements nf.Function.
func (m *Monitor) Kind() string { return "counter" }

// Flows returns the number of tracked flows.
func (m *Monitor) Flows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.flows)
}

// Flow returns a copy of one flow's counters.
func (m *Monitor) Flow(ft packet.FiveTuple) (FlowStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fs, ok := m.flows[ft.Canonical()]
	if !ok {
		return FlowStats{}, false
	}
	return *fs, true
}

// Process implements nf.Function.
func (m *Monitor) Process(dir nf.Direction, frame []byte) nf.Output {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accountLocked(frame)
	return nf.Forward(frame)
}

// ProcessBatch implements nf.BatchProcessor: the monitor never drops, so
// the batch passes through whole under a single lock acquisition.
func (m *Monitor) ProcessBatch(dir nf.Direction, frames [][]byte, out *nf.BatchOutput) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, frame := range frames {
		m.accountLocked(frame)
	}
	out.Forward = append(out.Forward, frames...)
}

// accountLocked updates flow accounting for one frame with m.mu held
// (emit temporarily releases it around the notifier callback).
func (m *Monitor) accountLocked(frame []byte) {
	m.total++
	if err := m.parser.Parse(frame); err != nil {
		return
	}
	ft, ok := m.parser.FiveTuple()
	if !ok {
		return
	}
	key := ft.Canonical()
	fs := m.flows[key]
	if fs == nil {
		fs = &FlowStats{WindowStart: m.clk.Now()}
		m.flows[key] = fs
	}
	m.seq++
	fs.Seq = m.seq
	fs.Packets++
	fs.Bytes += uint64(len(frame))

	if m.ppsAlert > 0 {
		now := m.clk.Now()
		if now.Sub(fs.WindowStart) >= time.Second {
			fs.WindowStart = now
			fs.WindowCount = 0
			fs.Alerted = false
		}
		fs.WindowCount++
		if fs.WindowCount > m.ppsAlert && !fs.Alerted {
			fs.Alerted = true
			m.alerts++
			m.emit(nf.Notification{
				Severity: nf.SevCritical,
				NF:       m.name,
				Kind:     "counter",
				Message:  "flow " + ft.String() + " exceeded " + strconv.FormatUint(m.ppsAlert, 10) + " pps",
			})
		}
	}
	if len(m.signatures) > 0 {
		if payload := m.parser.TransportPayload(); len(payload) > 0 {
			for _, sig := range m.signatures {
				if bytes.Contains(payload, sig) {
					m.sigHits++
					m.emit(nf.Notification{
						Severity: nf.SevWarning,
						NF:       m.name,
						Kind:     "counter",
						Message:  "signature " + strconv.Quote(string(sig)) + " in flow " + ft.String(),
					})
					break
				}
			}
		}
	}
}

var _ nf.BatchProcessor = (*Monitor)(nil)

// emit delivers a notification. Called with mu held; the notifier runs
// without the lock to avoid deadlocks with agent callbacks.
func (m *Monitor) emit(n nf.Notification) {
	n.At = m.clk.Now()
	fn := m.notify
	if fn == nil {
		return
	}
	m.mu.Unlock()
	fn(n)
	m.mu.Lock()
}

// NFStats implements nf.StatsReporter.
func (m *Monitor) NFStats() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return map[string]uint64{
		"total_frames":   m.total,
		"tracked_flows":  uint64(len(m.flows)),
		"pps_alerts":     m.alerts,
		"signature_hits": m.sigHits,
	}
}

type monState struct {
	Flows   map[string]FlowStats `json:"flows"`
	Total   uint64               `json:"total"`
	Alerts  uint64               `json:"alerts"`
	SigHits uint64               `json:"sig_hits"`
}

func flowKey(ft packet.FiveTuple) string {
	return ft.String()
}

// ExportState implements container.StateHandler. Flow keys serialize via
// their string form; import restores counters keyed by the same strings,
// so accounting continuity survives migration.
func (m *Monitor) ExportState() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := monState{Flows: make(map[string]FlowStats, len(m.flows)), Total: m.total, Alerts: m.alerts, SigHits: m.sigHits}
	for ft, fs := range m.flows {
		st.Flows[flowKey(ft)] = *fs
	}
	return json.Marshal(st)
}

// ImportState implements container.StateHandler. Because map keys round-
// trip through strings, restored flows are tracked under parsed tuples
// reconstructed on the next matching packet; totals restore exactly.
func (m *Monitor) ImportState(data []byte) error {
	var st monState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flows = make(map[packet.FiveTuple]*FlowStats, len(st.Flows))
	m.mergeLocked(st)
	return nil
}

// ExportDelta implements nf.DeltaStateful: flows updated after epoch
// `since` (everything for since == 0) plus the aggregate totals, which are
// tiny and therefore shipped every round. Flows are never evicted, so the
// upsert-only delta is exact.
func (m *Monitor) ExportDelta(since uint64) ([]byte, uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := monState{Flows: make(map[string]FlowStats), Total: m.total, Alerts: m.alerts, SigHits: m.sigHits}
	for ft, fs := range m.flows {
		if fs.Seq > since {
			st.Flows[flowKey(ft)] = *fs
		}
	}
	data, err := json.Marshal(st)
	return data, m.seq, err
}

// ImportDelta implements nf.DeltaStateful by merging exported flows into
// the live table; totals are absolute and replace the local aggregates.
func (m *Monitor) ImportDelta(data []byte) error {
	var st monState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mergeLocked(st)
	return nil
}

// mergeLocked upserts st's flows and adopts its totals, advancing the
// local dirty epoch past every imported stamp. Called with mu held.
func (m *Monitor) mergeLocked(st monState) {
	m.total, m.alerts, m.sigHits = st.Total, st.Alerts, st.SigHits
	for key, fs := range st.Flows {
		if ft, ok := parseFlowKey(key); ok {
			if fs.Seq > m.seq {
				m.seq = fs.Seq
			}
			copyFS := fs
			m.flows[ft] = &copyFS
		}
	}
}

// parseFlowKey reverses FiveTuple.String: "proto a:b->c:d".
func parseFlowKey(s string) (packet.FiveTuple, bool) {
	var ft packet.FiveTuple
	protoStr, rest, ok := strings.Cut(s, " ")
	if !ok {
		return ft, false
	}
	switch protoStr {
	case "tcp":
		ft.Proto = packet.ProtoTCP
	case "udp":
		ft.Proto = packet.ProtoUDP
	case "icmp":
		ft.Proto = packet.ProtoICMP
	default:
		return ft, false
	}
	srcStr, dstStr, ok := strings.Cut(rest, "->")
	if !ok {
		return ft, false
	}
	parse := func(ep string) (packet.Endpoint, bool) {
		ipStr, portStr, ok := strings.Cut(ep, ":")
		if !ok {
			return packet.Endpoint{}, false
		}
		ip, ok := packet.ParseIP(ipStr)
		if !ok {
			return packet.Endpoint{}, false
		}
		port, err := strconv.ParseUint(portStr, 10, 16)
		if err != nil {
			return packet.Endpoint{}, false
		}
		return packet.Endpoint{Addr: ip, Port: uint16(port)}, true
	}
	var okS, okD bool
	ft.Src, okS = parse(srcStr)
	ft.Dst, okD = parse(dstStr)
	return ft, okS && okD
}

var _ nf.DeltaStateful = (*Monitor)(nil)

func init() {
	nf.Default.RegisterKind("counter", nf.KindInfo{Shareable: true}, func(name string, params nf.Params) (nf.Function, error) {
		pps, err := strconv.ParseUint(params.Get("alert_pps", "0"), 10, 64)
		if err != nil {
			return nil, err
		}
		var sigs []string
		if s := params.Get("signatures", ""); s != "" {
			sigs = strings.Split(s, ",")
		}
		return New(name, pps, sigs...), nil
	})
}
