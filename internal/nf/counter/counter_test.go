package counter

import (
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/nf"
	"gnf/internal/packet"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 1}
	macB = packet.MAC{2, 0, 0, 0, 0, 2}
	ipA  = packet.IP{10, 0, 0, 1}
	ipB  = packet.IP{10, 0, 0, 2}
)

func udpFrame(payload string) []byte {
	return packet.BuildUDP(macA, macB, ipA, ipB, 1111, 2222, []byte(payload))
}

func flow() packet.FiveTuple {
	return packet.FiveTuple{
		Proto: packet.ProtoUDP,
		Src:   packet.Endpoint{Addr: ipA, Port: 1111},
		Dst:   packet.Endpoint{Addr: ipB, Port: 2222},
	}
}

func TestPerFlowAccounting(t *testing.T) {
	m := New("mon", 0)
	frame := udpFrame("data")
	for i := 0; i < 5; i++ {
		if len(m.Process(nf.Outbound, frame).Forward) != 1 {
			t.Fatal("monitor dropped traffic")
		}
	}
	// The reverse direction lands on the same canonical flow.
	rev := packet.BuildUDP(macB, macA, ipB, ipA, 2222, 1111, []byte("ack"))
	m.Process(nf.Inbound, rev)
	fs, ok := m.Flow(flow())
	if !ok || fs.Packets != 6 {
		t.Fatalf("flow stats = %+v, %v", fs, ok)
	}
	if m.Flows() != 1 {
		t.Fatalf("flows = %d", m.Flows())
	}
	if fs.Bytes == 0 {
		t.Fatal("bytes not accounted")
	}
}

func TestPPSAlert(t *testing.T) {
	m := New("mon", 10)
	clk := clock.NewVirtual()
	m.SetClock(clk)
	var alerts []nf.Notification
	m.SetNotifier(func(n nf.Notification) { alerts = append(alerts, n) })
	frame := udpFrame("x")
	for i := 0; i < 15; i++ {
		m.Process(nf.Outbound, frame)
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want exactly 1 (deduplicated)", len(alerts))
	}
	if alerts[0].Severity != nf.SevCritical {
		t.Fatalf("severity = %v", alerts[0].Severity)
	}
	// New window: counter resets, another burst re-alerts.
	clk.Advance(2 * time.Second)
	for i := 0; i < 15; i++ {
		m.Process(nf.Outbound, frame)
	}
	if len(alerts) != 2 {
		t.Fatalf("alerts after window reset = %d", len(alerts))
	}
	if m.NFStats()["pps_alerts"] != 2 {
		t.Fatalf("stats = %v", m.NFStats())
	}
}

func TestNoAlertUnderThreshold(t *testing.T) {
	m := New("mon", 100)
	m.SetClock(clock.NewVirtual())
	fired := false
	m.SetNotifier(func(nf.Notification) { fired = true })
	for i := 0; i < 50; i++ {
		m.Process(nf.Outbound, udpFrame("x"))
	}
	if fired {
		t.Fatal("alert under threshold")
	}
}

func TestSignatureDetection(t *testing.T) {
	m := New("mon", 0, "exploit-kit", "beacon")
	var alerts []nf.Notification
	m.SetNotifier(func(n nf.Notification) { alerts = append(alerts, n) })
	m.Process(nf.Outbound, udpFrame("innocuous payload"))
	m.Process(nf.Outbound, udpFrame("contains exploit-kit marker"))
	m.Process(nf.Outbound, udpFrame("beacon home"))
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	if alerts[0].Severity != nf.SevWarning {
		t.Fatalf("severity = %v", alerts[0].Severity)
	}
	if m.NFStats()["signature_hits"] != 2 {
		t.Fatalf("stats = %v", m.NFStats())
	}
}

func TestNonIPForwarded(t *testing.T) {
	m := New("mon", 0)
	arp := packet.BuildARP(packet.ARPRequest, macA, ipA, packet.MAC{}, ipB)
	if len(m.Process(nf.Outbound, arp).Forward) != 1 {
		t.Fatal("ARP dropped")
	}
	if m.Flows() != 0 {
		t.Fatal("ARP tracked as flow")
	}
}

func TestStateMigrationRestoresCounters(t *testing.T) {
	m1 := New("mon", 0)
	for i := 0; i < 7; i++ {
		m1.Process(nf.Outbound, udpFrame("x"))
	}
	data, err := m1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	m2 := New("mon", 0)
	if err := m2.ImportState(data); err != nil {
		t.Fatal(err)
	}
	fs, ok := m2.Flow(flow())
	if !ok || fs.Packets != 7 {
		t.Fatalf("migrated flow = %+v, %v", fs, ok)
	}
	// Continued traffic accumulates on top of migrated counters.
	m2.Process(nf.Outbound, udpFrame("x"))
	fs, _ = m2.Flow(flow())
	if fs.Packets != 8 {
		t.Fatalf("post-migration packets = %d", fs.Packets)
	}
	if m2.NFStats()["total_frames"] != 7 { // total restored; +1 counted locally
		// total is 7 imported + 1 new = 8
		if m2.NFStats()["total_frames"] != 8 {
			t.Fatalf("total = %v", m2.NFStats())
		}
	}
	if err := m2.ImportState([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestParseFlowKeyRoundTrip(t *testing.T) {
	ft := flow().Canonical()
	got, ok := parseFlowKey(flowKey(ft))
	if !ok || got != ft {
		t.Fatalf("round trip = %+v, %v", got, ok)
	}
	for _, bad := range []string{"", "tcp", "quic 1.2.3.4:1->5.6.7.8:2", "tcp 1.2.3.4:x->5.6.7.8:2", "tcp 1.2.3.4:1-5.6.7.8:2"} {
		if _, ok := parseFlowKey(bad); ok {
			t.Errorf("parseFlowKey(%q) accepted", bad)
		}
	}
}

func TestFactory(t *testing.T) {
	fn, err := nf.Default.New("counter", "c0", nf.Params{"alert_pps": "100", "signatures": "a,b"})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if fn.Kind() != "counter" {
		t.Fatal("kind")
	}
	if _, err := nf.Default.New("counter", "x", nf.Params{"alert_pps": "NaN"}); err == nil {
		t.Fatal("bad alert_pps accepted")
	}
}
