package ratelimit

import (
	"testing"
	"testing/quick"
	"time"

	"gnf/internal/clock"
	"gnf/internal/nf"
)

func frames(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
	}
	return out
}

func TestBurstThenPolice(t *testing.T) {
	clk := clock.NewVirtual() // time frozen: no refill
	l := New("rl", 8000 /* 1000 B/s */, 1000)
	l.SetClock(clk)
	passed := 0
	for _, f := range frames(20, 100) { // 2000 bytes offered against 1000 burst
		if len(l.Process(nf.Outbound, f).Forward) == 1 {
			passed++
		}
	}
	if passed != 10 {
		t.Fatalf("passed = %d, want exactly the 1000-byte burst", passed)
	}
	st := l.NFStats()
	if st["passed"] != 10 || st["policed"] != 10 || st["passed_bytes"] != 1000 {
		t.Fatalf("stats = %v", st)
	}
}

func TestRefillOverTime(t *testing.T) {
	clk := clock.NewVirtual()
	l := New("rl", 8000 /* 1000 B/s */, 100)
	l.SetClock(clk)
	// Exhaust the burst.
	if len(l.Process(nf.Outbound, make([]byte, 100)).Forward) != 1 {
		t.Fatal("initial burst rejected")
	}
	if len(l.Process(nf.Outbound, make([]byte, 100)).Forward) != 0 {
		t.Fatal("empty bucket passed a frame")
	}
	clk.Advance(50 * time.Millisecond) // +50 bytes
	if len(l.Process(nf.Outbound, make([]byte, 100)).Forward) != 0 {
		t.Fatal("passed with insufficient tokens")
	}
	clk.Advance(60 * time.Millisecond) // >= 100 bytes total
	if len(l.Process(nf.Outbound, make([]byte, 100)).Forward) != 1 {
		t.Fatal("refilled bucket still policing")
	}
}

func TestBucketCapsAtBurst(t *testing.T) {
	clk := clock.NewVirtual()
	l := New("rl", 8_000_000, 500)
	l.SetClock(clk)
	clk.Advance(time.Hour) // tokens must cap at burst, not accumulate
	passed := 0
	for _, f := range frames(10, 100) {
		if len(l.Process(nf.Outbound, f).Forward) == 1 {
			passed++
		}
	}
	if passed != 5 {
		t.Fatalf("passed = %d, want 5 (burst cap)", passed)
	}
}

func TestDirectionScoping(t *testing.T) {
	clk := clock.NewVirtual()
	l := New("rl", 8000, 100).Direction(nf.Outbound)
	l.SetClock(clk)
	l.Process(nf.Outbound, make([]byte, 100)) // consume bucket
	if len(l.Process(nf.Outbound, make([]byte, 50)).Forward) != 0 {
		t.Fatal("outbound not policed")
	}
	for i := 0; i < 5; i++ {
		if len(l.Process(nf.Inbound, make([]byte, 1000)).Forward) != 1 {
			t.Fatal("inbound policed despite out-only scope")
		}
	}
}

func TestRateEnforcedOverWindow(t *testing.T) {
	clk := clock.NewVirtual()
	const rate = 80_000 // 10 KB/s
	l := New("rl", rate, 1000)
	l.SetClock(clk)
	var passedBytes uint64
	// Offer 100 KB over 1 second in 1ms ticks; ~11KB should pass
	// (10KB rate + 1KB initial burst).
	for i := 0; i < 1000; i++ {
		clk.Advance(time.Millisecond)
		out := l.Process(nf.Outbound, make([]byte, 100))
		if len(out.Forward) == 1 {
			passedBytes += 100
		}
	}
	if passedBytes < 10_000 || passedBytes > 12_000 {
		t.Fatalf("passed %d bytes over 1s, want ~11000", passedBytes)
	}
}

func TestFactory(t *testing.T) {
	fn, err := nf.Default.New("ratelimit", "rl0", nf.Params{
		"rate_bps": "500000", "burst_bytes": "10000", "direction": "out",
	})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if fn.Kind() != "ratelimit" {
		t.Fatal("kind")
	}
	for _, bad := range []nf.Params{
		{"rate_bps": "0"}, {"rate_bps": "x"}, {"burst_bytes": "-1"}, {"direction": "up"},
	} {
		if _, err := nf.Default.New("ratelimit", "x", bad); err == nil {
			t.Fatalf("factory accepted %v", bad)
		}
	}
}

// Property: bytes passed never exceed burst + rate*elapsed (token
// conservation), for any offered load pattern.
func TestTokenConservationProperty(t *testing.T) {
	f := func(sizes []uint16, gapsMs []uint8) bool {
		clk := clock.NewVirtual()
		const rate, burst = 80_000, 2_000 // 10 KB/s, 2 KB burst
		l := New("rl", rate, burst)
		l.SetClock(clk)
		var elapsed time.Duration
		var passedBytes int64
		for i, s := range sizes {
			if i < len(gapsMs) {
				d := time.Duration(gapsMs[i]) * time.Millisecond
				clk.Advance(d)
				elapsed += d
			}
			size := int(s%1400) + 1
			if len(l.Process(nf.Outbound, make([]byte, size)).Forward) == 1 {
				passedBytes += int64(size)
			}
		}
		budget := int64(burst) + int64(float64(rate)/8*elapsed.Seconds()) + 1
		return passedBytes <= budget
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
