// Package ratelimit implements a token-bucket rate limiter NF, GNF's
// equivalent of attaching a `tc` policer to a client's traffic. The bucket
// refills on the injected clock, so virtual-time simulations shape traffic
// deterministically.
package ratelimit

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"gnf/internal/clock"
	"gnf/internal/nf"
	"gnf/internal/packet"
)

// Limiter polices frame bytes against a token bucket.
type Limiter struct {
	name    string
	rateBps int64 // tokens added per second, in bits
	burst   int64 // bucket depth in bytes
	dir     nf.Direction
	both    bool

	mu     sync.Mutex
	clk    clock.Clock
	tokens float64 // bytes available
	last   time.Time

	passed, policed uint64
	passedBytes     uint64
}

// New creates a limiter enforcing rateBps with the given burst (bytes).
// It polices both directions unless restricted with Direction.
func New(name string, rateBps, burstBytes int64) *Limiter {
	l := &Limiter{
		name:    name,
		rateBps: rateBps,
		burst:   burstBytes,
		both:    true,
		clk:     clock.System(),
		tokens:  float64(burstBytes),
	}
	l.last = l.clk.Now()
	return l
}

// Direction restricts policing to one direction; the other passes freely.
func (l *Limiter) Direction(d nf.Direction) *Limiter {
	l.mu.Lock()
	l.dir, l.both = d, false
	l.mu.Unlock()
	return l
}

// SetClock implements nf.ClockSetter.
func (l *Limiter) SetClock(c clock.Clock) {
	l.mu.Lock()
	l.clk = c
	l.last = c.Now()
	l.tokens = float64(l.burst)
	l.mu.Unlock()
}

// Name implements nf.Function.
func (l *Limiter) Name() string { return l.name }

// Kind implements nf.Function.
func (l *Limiter) Kind() string { return "ratelimit" }

// Process implements nf.Function.
func (l *Limiter) Process(dir nf.Direction, frame []byte) nf.Output {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.allowLocked(dir, frame) {
		return nf.Forward(frame)
	}
	return nf.Drop()
}

// ProcessBatch implements nf.BatchProcessor: one lock acquisition per
// batch; policed frames are recycled into the frame pool.
func (l *Limiter) ProcessBatch(dir nf.Direction, frames [][]byte, out *nf.BatchOutput) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, frame := range frames {
		if l.allowLocked(dir, frame) {
			out.Forward = append(out.Forward, frame)
		} else {
			packet.ReturnFrame(frame)
		}
	}
}

// allowLocked refills the bucket and charges one frame with l.mu held.
func (l *Limiter) allowLocked(dir nf.Direction, frame []byte) bool {
	if !l.both && dir != l.dir {
		return true
	}
	now := l.clk.Now()
	elapsed := now.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * float64(l.rateBps) / 8
		if l.tokens > float64(l.burst) {
			l.tokens = float64(l.burst)
		}
		l.last = now
	}
	need := float64(len(frame))
	if l.tokens < need {
		l.policed++
		return false
	}
	l.tokens -= need
	l.passed++
	l.passedBytes += uint64(len(frame))
	return true
}

var _ nf.BatchProcessor = (*Limiter)(nil)

// NFStats implements nf.StatsReporter.
func (l *Limiter) NFStats() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return map[string]uint64{
		"passed":       l.passed,
		"passed_bytes": l.passedBytes,
		"policed":      l.policed,
	}
}

func init() {
	nf.Default.RegisterKind("ratelimit", nf.KindInfo{Shareable: true}, func(name string, params nf.Params) (nf.Function, error) {
		rate, err := strconv.ParseInt(params.Get("rate_bps", "1000000"), 10, 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("ratelimit: bad rate_bps %q", params["rate_bps"])
		}
		burst, err := strconv.ParseInt(params.Get("burst_bytes", "15000"), 10, 64)
		if err != nil || burst <= 0 {
			return nil, fmt.Errorf("ratelimit: bad burst_bytes %q", params["burst_bytes"])
		}
		l := New(name, rate, burst)
		switch params.Get("direction", "both") {
		case "both":
		case "out":
			l.Direction(nf.Outbound)
		case "in":
			l.Direction(nf.Inbound)
		default:
			return nil, fmt.Errorf("ratelimit: bad direction %q", params["direction"])
		}
		return l, nil
	})
}
