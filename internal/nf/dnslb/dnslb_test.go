package dnslb

import (
	"testing"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

var (
	macC = packet.MAC{2, 0, 0, 0, 0, 1}
	macR = packet.MAC{2, 0, 0, 0, 0, 2}
	ipC  = packet.IP{10, 0, 0, 1}
	ipR  = packet.IP{10, 0, 0, 53} // resolver
	be1  = packet.IP{10, 1, 0, 1}
	be2  = packet.IP{10, 1, 0, 2}
)

func queryFrame(id uint16, name string) []byte {
	wire, _ := packet.NewDNSQuery(id, name).Append(nil)
	return packet.BuildUDP(macC, macR, ipC, ipR, 5353, 53, wire)
}

func responseFrame(id uint16, name string, addr packet.IP) []byte {
	q := packet.NewDNSQuery(id, name)
	wire, _ := packet.AnswerA(q, 60, addr).Append(nil)
	return packet.BuildUDP(macR, macC, ipR, ipC, 53, 5353, wire)
}

func decodeDNS(t *testing.T, frame []byte) *packet.DNSMessage {
	t.Helper()
	var p packet.Parser
	if err := p.Parse(frame); err != nil {
		t.Fatalf("parse: %v", err)
	}
	var m packet.DNSMessage
	if err := m.Decode(p.UDP.Payload()); err != nil {
		t.Fatalf("dns decode: %v", err)
	}
	return &m
}

func TestRespondModeRoundRobin(t *testing.T) {
	b, err := New("lb", "svc.gnf", Respond, be1, be2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[packet.IP]int)
	for i := 0; i < 4; i++ {
		out := b.Process(nf.Outbound, queryFrame(uint16(i), "svc.gnf"))
		if len(out.Reverse) != 1 || len(out.Forward) != 0 {
			t.Fatalf("iteration %d: out = %+v", i, out)
		}
		m := decodeDNS(t, out.Reverse[0])
		if !m.Response || m.ID != uint16(i) || len(m.Answers) != 1 {
			t.Fatalf("answer = %+v", m)
		}
		seen[m.Answers[0].A]++
	}
	if seen[be1] != 2 || seen[be2] != 2 {
		t.Fatalf("round robin uneven: %v", seen)
	}
	// Reply frame must be addressed back to the client.
	out := b.Process(nf.Outbound, queryFrame(9, "svc.gnf"))
	var p packet.Parser
	p.Parse(out.Reverse[0])
	if p.IP.Dst != ipC || p.UDP.DstPort != 5353 || p.Eth.Dst != macC {
		t.Fatal("reply not addressed to querying client")
	}
}

func TestRespondIgnoresOtherNames(t *testing.T) {
	b, _ := New("lb", "svc.gnf", Respond, be1)
	out := b.Process(nf.Outbound, queryFrame(1, "other.example"))
	if len(out.Forward) != 1 || len(out.Reverse) != 0 {
		t.Fatalf("other name intercepted: %+v", out)
	}
}

func TestRewriteMode(t *testing.T) {
	b, _ := New("lb", "svc.gnf", RewriteResponses, be1, be2)
	// Queries pass through untouched.
	out := b.Process(nf.Outbound, queryFrame(1, "svc.gnf"))
	if len(out.Forward) != 1 || len(out.Reverse) != 0 {
		t.Fatalf("query not passed: %+v", out)
	}
	// Upstream response is rewritten to a backend.
	orig := packet.IP{99, 99, 99, 99}
	out = b.Process(nf.Inbound, responseFrame(1, "svc.gnf", orig))
	if len(out.Forward) != 1 {
		t.Fatalf("response lost: %+v", out)
	}
	m := decodeDNS(t, out.Forward[0])
	if m.Answers[0].A == orig {
		t.Fatal("answer not rewritten")
	}
	if m.Answers[0].A != be1 {
		t.Fatalf("rewritten to %v, want %v", m.Answers[0].A, be1)
	}
	// Responses for other names untouched.
	out = b.Process(nf.Inbound, responseFrame(2, "other.example", orig))
	m = decodeDNS(t, out.Forward[0])
	if m.Answers[0].A != orig {
		t.Fatal("foreign response rewritten")
	}
}

func TestNonDNSPasses(t *testing.T) {
	b, _ := New("lb", "svc.gnf", Respond, be1)
	frame := packet.BuildUDP(macC, macR, ipC, ipR, 1000, 2000, []byte("not dns"))
	out := b.Process(nf.Outbound, frame)
	if len(out.Forward) != 1 {
		t.Fatal("non-DNS UDP dropped")
	}
	tcp := packet.BuildTCP(macC, macR, ipC, ipR, 1000, 53, packet.TCPOptions{}, nil)
	if out = b.Process(nf.Outbound, tcp); len(out.Forward) != 1 {
		t.Fatal("TCP dropped")
	}
}

func TestEmptyPoolRejected(t *testing.T) {
	if _, err := New("lb", "svc.gnf", Respond); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestStateRoundTripPreservesCursor(t *testing.T) {
	b1, _ := New("lb", "svc.gnf", Respond, be1, be2)
	b1.Process(nf.Outbound, queryFrame(1, "svc.gnf")) // served be1, cursor now at be2
	data, err := b1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := New("lb", "svc.gnf", Respond, be1, be2)
	if err := b2.ImportState(data); err != nil {
		t.Fatal(err)
	}
	out := b2.Process(nf.Outbound, queryFrame(2, "svc.gnf"))
	m := decodeDNS(t, out.Reverse[0])
	if m.Answers[0].A != be2 {
		t.Fatalf("cursor lost in migration: got %v, want %v", m.Answers[0].A, be2)
	}
	stats := b2.NFStats()
	if stats["queries_answered"] != 2 {
		t.Fatalf("stats = %v", stats)
	}
	if err := b2.ImportState([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestFactory(t *testing.T) {
	fn, err := nf.Default.New("dnslb", "lb0", nf.Params{
		"service":  "cdn.gnf",
		"backends": "10.1.0.1, 10.1.0.2",
		"mode":     "rewrite",
	})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if fn.(*Balancer).Service() != "cdn.gnf" {
		t.Fatal("service lost")
	}
	if _, err := nf.Default.New("dnslb", "x", nf.Params{"backends": "banana"}); err == nil {
		t.Fatal("bad backend accepted")
	}
	if _, err := nf.Default.New("dnslb", "x", nf.Params{"backends": "1.2.3.4", "mode": "nope"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := nf.Default.New("dnslb", "x", nf.Params{}); err == nil {
		t.Fatal("missing backends accepted")
	}
}
