// Package dnslb implements GNF's DNS load balancer NF — the third of the
// paper's demo functions. For configured service names it either answers
// client queries directly at the edge (respond mode, round-robin over the
// backend pool) or rewrites upstream responses' A records (rewrite mode).
// The round-robin cursor and per-backend counts are migration state, so a
// roaming client keeps its balancing continuity.
package dnslb

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

// Mode selects how the balancer intervenes.
type Mode uint8

// Balancer modes.
const (
	// Respond answers matching queries authoritatively at the edge.
	Respond Mode = iota
	// RewriteResponses lets queries through and rewrites the upstream
	// answers.
	RewriteResponses
)

// Balancer is the NF instance.
type Balancer struct {
	name    string
	service string // lowercase FQDN handled by this balancer
	mode    Mode
	ttl     uint32

	mu       sync.Mutex
	backends []packet.IP
	next     int
	served   map[string]uint64 // backend IP -> answers handed out
	queries  uint64
	rewrites uint64
	parser   packet.Parser
	msg      packet.DNSMessage
}

// New creates a balancer for service with the given backend pool.
func New(name, service string, mode Mode, backends ...packet.IP) (*Balancer, error) {
	if len(backends) == 0 {
		return nil, errors.New("dnslb: empty backend pool")
	}
	return &Balancer{
		name:     name,
		service:  strings.ToLower(strings.TrimSuffix(service, ".")),
		mode:     mode,
		ttl:      30,
		backends: append([]packet.IP(nil), backends...),
		served:   make(map[string]uint64),
	}, nil
}

// Name implements nf.Function.
func (b *Balancer) Name() string { return b.name }

// Kind implements nf.Function.
func (b *Balancer) Kind() string { return "dnslb" }

// Service returns the balanced FQDN.
func (b *Balancer) Service() string { return b.service }

// pick advances the round-robin cursor. Called with mu held.
func (b *Balancer) pick() packet.IP {
	ip := b.backends[b.next%len(b.backends)]
	b.next++
	b.served[ip.String()]++
	return ip
}

// Process implements nf.Function.
func (b *Balancer) Process(dir nf.Direction, frame []byte) nf.Output {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.parser.Parse(frame); err != nil || !b.parser.Has(packet.LayerUDP) {
		return nf.Forward(frame)
	}
	isQuery := dir == nf.Outbound && b.parser.UDP.DstPort == 53
	isResponse := dir == nf.Inbound && b.parser.UDP.SrcPort == 53
	if !isQuery && !isResponse {
		return nf.Forward(frame)
	}
	if err := b.msg.Decode(b.parser.UDP.Payload()); err != nil {
		return nf.Forward(frame)
	}
	if len(b.msg.Questions) == 0 || b.msg.Questions[0].Name != b.service {
		return nf.Forward(frame)
	}

	switch {
	case isQuery && b.mode == Respond && !b.msg.Response:
		b.queries++
		resp := packet.AnswerA(&b.msg, b.ttl, b.pick())
		wire, err := resp.Append(nil)
		if err != nil {
			return nf.Forward(frame)
		}
		p := &b.parser
		reply := packet.BuildUDP(p.Eth.Dst, p.Eth.Src, p.IP.Dst, p.IP.Src,
			p.UDP.DstPort, p.UDP.SrcPort, wire)
		return nf.Reply(reply)

	case isResponse && b.mode == RewriteResponses && b.msg.Response:
		changed := false
		for i := range b.msg.Answers {
			if b.msg.Answers[i].Type == packet.DNSTypeA {
				b.msg.Answers[i].A = b.pick()
				b.msg.Answers[i].TTL = b.ttl
				changed = true
			}
		}
		if !changed {
			return nf.Forward(frame)
		}
		b.rewrites++
		wire, err := b.msg.Append(nil)
		if err != nil {
			return nf.Forward(frame)
		}
		out, err := packet.ReplaceUDPPayload(frame, wire)
		if err != nil {
			return nf.Forward(frame)
		}
		return nf.Forward(out)
	}
	return nf.Forward(frame)
}

// NFStats implements nf.StatsReporter.
func (b *Balancer) NFStats() map[string]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := map[string]uint64{"queries_answered": b.queries, "responses_rewritten": b.rewrites}
	for ip, n := range b.served {
		out["backend_"+ip] = n
	}
	return out
}

type lbState struct {
	Next     int               `json:"next"`
	Served   map[string]uint64 `json:"served"`
	Queries  uint64            `json:"queries"`
	Rewrites uint64            `json:"rewrites"`
}

// ExportState implements container.StateHandler.
func (b *Balancer) ExportState() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return json.Marshal(lbState{Next: b.next, Served: b.served, Queries: b.queries, Rewrites: b.rewrites})
}

// ImportState implements container.StateHandler.
func (b *Balancer) ImportState(data []byte) error {
	var st lbState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.next = st.Next
	b.queries = st.Queries
	b.rewrites = st.Rewrites
	b.served = st.Served
	if b.served == nil {
		b.served = make(map[string]uint64)
	}
	return nil
}

func init() {
	nf.Default.Register("dnslb", func(name string, params nf.Params) (nf.Function, error) {
		var backends []packet.IP
		for _, s := range strings.Split(params.Get("backends", ""), ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			ip, ok := packet.ParseIP(s)
			if !ok {
				return nil, fmt.Errorf("dnslb: bad backend %q", s)
			}
			backends = append(backends, ip)
		}
		mode := Respond
		switch params.Get("mode", "respond") {
		case "respond":
		case "rewrite":
			mode = RewriteResponses
		default:
			return nil, fmt.Errorf("dnslb: bad mode %q", params["mode"])
		}
		return New(name, params.Get("service", "svc.gnf"), mode, backends...)
	})
}
