package nf

import (
	"bytes"
	"testing"
	"time"

	"gnf/internal/netem"
	"gnf/internal/packet"
)

// batchDropper drops frames whose first byte is odd, via both interfaces,
// so per-frame and batched chain traversals can be compared.
type batchDropper struct{ name string }

func (d *batchDropper) Name() string { return d.name }
func (d *batchDropper) Kind() string { return "batchdropper" }
func (d *batchDropper) Process(_ Direction, frame []byte) Output {
	if frame[0]%2 == 1 {
		return Drop()
	}
	return Forward(frame)
}
func (d *batchDropper) ProcessBatch(dir Direction, frames [][]byte, out *BatchOutput) {
	for _, f := range frames {
		if f[0]%2 == 1 {
			packet.ReturnFrame(f)
			continue
		}
		out.Forward = append(out.Forward, f)
	}
}

// batchBouncer answers outbound frames ending in '?' with a reply, via
// both interfaces.
type batchBouncer struct{ name string }

func (b *batchBouncer) Name() string { return b.name }
func (b *batchBouncer) Kind() string { return "batchbouncer" }
func (b *batchBouncer) Process(dir Direction, frame []byte) Output {
	if dir == Outbound && bytes.ContainsRune(frame, '?') {
		return Reply(append(append([]byte(nil), frame...), '!'))
	}
	return Forward(frame)
}
func (b *batchBouncer) ProcessBatch(dir Direction, frames [][]byte, out *BatchOutput) {
	for _, f := range frames {
		o := b.Process(dir, f)
		out.Forward = append(out.Forward, o.Forward...)
		out.Reverse = append(out.Reverse, o.Reverse...)
		if len(o.Forward) == 0 && len(o.Reverse) == 0 {
			packet.ReturnFrame(f)
		}
	}
}

func runBatch(c *Chain, dir Direction, frames [][]byte) *BatchOutput {
	out := &BatchOutput{}
	c.ProcessBatch(dir, frames, out)
	return out
}

func framesOf(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestChainProcessBatchMatchesPerFrameOrder(t *testing.T) {
	mk := func() *Chain {
		return NewChain("c", &tagger{name: "a", tag: 'a'}, &tagger{name: "b", tag: 'b'})
	}
	for _, dir := range []Direction{Outbound, Inbound} {
		per := mk()
		var want []string
		for _, f := range framesOf("x", "y", "z") {
			o := per.Process(dir, f)
			for _, g := range o.Forward {
				want = append(want, string(g))
			}
		}
		out := runBatch(mk(), dir, framesOf("x", "y", "z"))
		if len(out.Forward) != len(want) || len(out.Reverse) != 0 {
			t.Fatalf("dir %v: batch output %q/%q, want %q", dir, out.Forward, out.Reverse, want)
		}
		for i, f := range out.Forward {
			if string(f) != want[i] {
				t.Fatalf("dir %v frame %d = %q, want %q", dir, i, f, want[i])
			}
		}
	}
}

func TestChainProcessBatchDropsLikePerFrame(t *testing.T) {
	c := NewChain("c", &batchDropper{name: "d"}, &tagger{name: "a", tag: 'a'})
	out := runBatch(c, Outbound, framesOf("0", "1", "2", "3"))
	if len(out.Forward) != 2 || string(out.Forward[0]) != "0a" || string(out.Forward[1]) != "2a" {
		t.Fatalf("forward = %q", out.Forward)
	}
}

// TestChainProcessBatchReverseFrames checks a mid-chain reply re-walks the
// earlier members in the opposite direction — exactly what the recursive
// per-frame walk does.
func TestChainProcessBatchReverseFrames(t *testing.T) {
	mkMembers := func() (*tagger, Function) { return &tagger{name: "a", tag: 'a'}, &batchBouncer{name: "b"} }
	ta, ba := mkMembers()
	perChain := NewChain("c", ta, ba)
	perOut := perChain.Process(Outbound, []byte("q?"))

	tb, bb := mkMembers()
	batchOut := runBatch(NewChain("c", tb, bb), Outbound, framesOf("q?", "ok"))
	if len(batchOut.Reverse) != len(perOut.Reverse) || len(batchOut.Reverse) != 1 {
		t.Fatalf("reverse = %q, per-frame %q", batchOut.Reverse, perOut.Reverse)
	}
	if string(batchOut.Reverse[0]) != string(perOut.Reverse[0]) {
		t.Fatalf("reverse = %q, want %q", batchOut.Reverse[0], perOut.Reverse[0])
	}
	if len(batchOut.Forward) != 1 || string(batchOut.Forward[0]) != "oka" {
		t.Fatalf("forward = %q", batchOut.Forward)
	}
}

// TestChainProcessBatchMixedMembers drives a chain where only some members
// batch: the chain must fall back to per-frame processing for the others
// and still produce identical output.
func TestChainProcessBatchMixedMembers(t *testing.T) {
	c := NewChain("c",
		&tagger{name: "t1", tag: '1'}, // no ProcessBatch
		&batchDropper{name: "d"},      // batches
		&tagger{name: "t2", tag: '2'}, // no ProcessBatch
	)
	// '1' is odd (0x31), 'B' is even (0x42): after tagging, first bytes
	// decide the drop, so "0.." survives only when its first byte is even.
	out := runBatch(c, Outbound, framesOf("B", "1"))
	if len(out.Forward) != 1 || string(out.Forward[0]) != "B12" {
		t.Fatalf("forward = %q", out.Forward)
	}
}

func TestBatchOutputPool(t *testing.T) {
	o := BorrowBatchOutput()
	o.Forward = append(o.Forward, []byte("f"))
	o.Reverse = append(o.Reverse, []byte("r"))
	ReturnBatchOutput(o)
	o2 := BorrowBatchOutput()
	if len(o2.Forward) != 0 || len(o2.Reverse) != 0 {
		t.Fatalf("recycled output not reset: %q/%q", o2.Forward, o2.Reverse)
	}
	ReturnBatchOutput(o2)
}

// TestChainHostBatchPath sends a burst through a ChainHost whose chain
// batches, asserting the batched ingress path forwards, drops and replies
// exactly like the per-frame one.
func TestChainHostBatchPath(t *testing.T) {
	inA, inB := netem.NewVethPair("ci", "hi")
	outA, outB := netem.NewVethPair("co", "ho")
	defer inA.Close()
	defer outA.Close()
	c := NewChain("c", &batchDropper{name: "d"}, &batchBouncer{name: "b"})
	h := NewChainHost(c, inB, outB)
	h.Enable()

	fromEgress := make(chan []byte, 16)
	backToClient := make(chan []byte, 16)
	outA.SetReceiver(func(f []byte) { fromEgress <- f })
	inA.SetReceiver(func(f []byte) { backToClient <- f })

	// "0": forwarded; "1": dropped; "2?": bounced back as a reply.
	inA.SendBatch(framesOf("0", "1", "2?"))
	select {
	case f := <-fromEgress:
		if string(f) != "0" {
			t.Fatalf("egress frame = %q", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no egress frame")
	}
	select {
	case f := <-backToClient:
		if string(f) != "2?!" {
			t.Fatalf("reply = %q", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply frame")
	}
	select {
	case f := <-fromEgress:
		t.Fatalf("dropped frame leaked: %q", f)
	case <-time.After(50 * time.Millisecond):
	}
	if h.Processed() != 3 {
		t.Fatalf("processed = %d", h.Processed())
	}
}

// TestChainHostBatchDisabledDrops checks the batched path still honors the
// enable gate (and its drop accounting) via the per-frame fallback.
func TestChainHostBatchDisabledDrops(t *testing.T) {
	inA, inB := netem.NewVethPair("ci", "hi")
	outA, outB := netem.NewVethPair("co", "ho")
	defer inA.Close()
	defer outA.Close()
	h := NewChainHost(NewChain("c", &batchDropper{name: "d"}), inB, outB)

	inA.SendBatch(framesOf("0", "2", "4"))
	deadline := time.Now().Add(2 * time.Second)
	for h.Dropped() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped = %d, want 3", h.Dropped())
		}
		time.Sleep(time.Millisecond)
	}
}
