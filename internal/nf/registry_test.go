package nf_test

import (
	"testing"

	"gnf/internal/nf"
	_ "gnf/internal/nf/builtin"
)

func TestRegistryKindInfo(t *testing.T) {
	r := nf.NewRegistry()
	r.Register("plain", func(name string, params nf.Params) (nf.Function, error) { return nil, nil })
	r.RegisterKind("versioned", nf.KindInfo{Version: "2.1", Shareable: true},
		func(name string, params nf.Params) (nf.Function, error) { return nil, nil })

	if info, ok := r.Info("plain"); !ok || info.Version != nf.DefaultVersion || info.Shareable {
		t.Fatalf("plain info = %+v ok=%v", info, ok)
	}
	if info, ok := r.Info("versioned"); !ok || info.Version != "2.1" || !info.Shareable {
		t.Fatalf("versioned info = %+v ok=%v", info, ok)
	}
	if got := r.ImageForKind("plain"); got != "gnf/plain:1.0" {
		t.Fatalf("image(plain) = %q", got)
	}
	if got := r.ImageForKind("versioned"); got != "gnf/versioned:2.1" {
		t.Fatalf("image(versioned) = %q", got)
	}
	// Unregistered kinds still resolve a deterministic image name.
	if got := r.ImageForKind("ghost"); got != "gnf/ghost:1.0" {
		t.Fatalf("image(ghost) = %q", got)
	}
	if _, ok := r.Info("ghost"); ok {
		t.Fatal("unregistered kind reported ok")
	}
	if r.Shareable("ghost") || r.Shareable("plain") || !r.Shareable("versioned") {
		t.Fatal("shareable flags wrong")
	}
}

func TestBuiltinShareableMarkers(t *testing.T) {
	// The stateless demo NFs share; NFs holding per-client state (nat,
	// caches, the DNS balancer's sticky tables) must not.
	want := map[string]bool{
		"firewall": true, "counter": true, "ratelimit": true, "httpfilter": true,
		"nat": false, "dnscache": false, "dnslb": false, "httpcache": false,
	}
	for kind, shareable := range want {
		if got := nf.Default.Shareable(kind); got != shareable {
			t.Errorf("Shareable(%s) = %v, want %v", kind, got, shareable)
		}
	}
}
