package nf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Chain state is serialized as a sequence of length-prefixed blobs, one per
// stateful member, in outbound chain order. Stateless members contribute an
// empty blob so positional matching survives round-trips.

// Stateful mirrors container.StateHandler locally to avoid an import cycle
// (the container package must not depend on nf).
type Stateful interface {
	ExportState() ([]byte, error)
	ImportState([]byte) error
}

// DeltaStateful is implemented by stateful functions that track dirty
// entries under an epoch counter, so live migration can ship only the
// state mutated since the previous pre-copy round instead of re-exporting
// everything. The contract:
//
//   - Every mutation stamps the touched entries with a monotonically
//     increasing epoch.
//   - ExportDelta(since) returns exactly the entries stamped after `since`
//     plus the epoch to pass on the next call; since == 0 exports the full
//     state (the first pre-copy round).
//   - ImportDelta merges a delta into the current state (upserts). Deltas
//     carry no tombstones: entry deletion converges through the functions'
//     own expiry (caches) or simply never occurs (nat, counter), so a
//     merge-only protocol stays correct for every built-in kind.
type DeltaStateful interface {
	Stateful
	ExportDelta(since uint64) (delta []byte, epoch uint64, err error)
	ImportDelta(delta []byte) error
}

// ErrStateMismatch is returned when imported chain state does not line up
// with the chain's members.
var ErrStateMismatch = errors.New("nf: chain state does not match chain shape")

func exportChainState(fns []Function) ([]byte, error) {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, uint32(len(fns)))
	for _, f := range fns {
		var blob []byte
		if s, ok := f.(Stateful); ok {
			b, err := s.ExportState()
			if err != nil {
				return nil, fmt.Errorf("nf: exporting %s: %w", f.Name(), err)
			}
			blob = b
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out, nil
}

func importChainState(fns []Function, data []byte) error {
	if len(data) < 4 {
		return ErrStateMismatch
	}
	n := binary.BigEndian.Uint32(data)
	if int(n) != len(fns) {
		return fmt.Errorf("%w: state has %d members, chain has %d", ErrStateMismatch, n, len(fns))
	}
	off := 4
	for _, f := range fns {
		if off+4 > len(data) {
			return ErrStateMismatch
		}
		l := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return ErrStateMismatch
		}
		blob := data[off : off+l]
		off += l
		s, ok := f.(Stateful)
		if !ok {
			if l != 0 {
				return fmt.Errorf("%w: state for stateless member %s", ErrStateMismatch, f.Name())
			}
			continue
		}
		if err := s.ImportState(blob); err != nil {
			return fmt.Errorf("nf: importing %s: %w", f.Name(), err)
		}
	}
	if off != len(data) {
		return ErrStateMismatch
	}
	return nil
}

// Chain deltas are serialized as a sequence of tagged, length-prefixed
// member blobs in outbound chain order: one mode byte (below), a u32
// length, then the blob. Positional matching mirrors the full-state
// format, so a delta stream only ever applies to the chain shape it was
// exported from.
const (
	deltaModeNone  = 0 // stateless member, no blob
	deltaModeFull  = 1 // full snapshot, apply via ImportState
	deltaModeDelta = 2 // incremental, apply via ImportDelta
)

func exportChainDelta(fns []Function, since []uint64) ([]byte, []uint64, error) {
	if since == nil {
		since = make([]uint64, len(fns))
	}
	if len(since) != len(fns) {
		return nil, nil, fmt.Errorf("%w: %d epochs for %d members", ErrStateMismatch, len(since), len(fns))
	}
	epochs := make([]uint64, len(fns))
	var out []byte
	out = binary.BigEndian.AppendUint32(out, uint32(len(fns)))
	for i, f := range fns {
		mode := byte(deltaModeNone)
		var blob []byte
		switch s := f.(type) {
		case DeltaStateful:
			d, ep, err := s.ExportDelta(since[i])
			if err != nil {
				return nil, nil, fmt.Errorf("nf: delta-exporting %s: %w", f.Name(), err)
			}
			mode, blob, epochs[i] = deltaModeDelta, d, ep
		case Stateful:
			// No dirty tracking: this member re-ships its full state every
			// round. Correct, just not incremental.
			b, err := s.ExportState()
			if err != nil {
				return nil, nil, fmt.Errorf("nf: exporting %s: %w", f.Name(), err)
			}
			mode, blob = deltaModeFull, b
		}
		out = append(out, mode)
		out = binary.BigEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out, epochs, nil
}

func importChainDelta(fns []Function, data []byte) error {
	if len(data) < 4 {
		return ErrStateMismatch
	}
	if n := binary.BigEndian.Uint32(data); int(n) != len(fns) {
		return fmt.Errorf("%w: delta has %d members, chain has %d", ErrStateMismatch, n, len(fns))
	}
	off := 4
	for _, f := range fns {
		if off+5 > len(data) {
			return ErrStateMismatch
		}
		mode := data[off]
		l := int(binary.BigEndian.Uint32(data[off+1:]))
		off += 5
		if off+l > len(data) {
			return ErrStateMismatch
		}
		blob := data[off : off+l]
		off += l
		switch mode {
		case deltaModeNone:
			if l != 0 {
				return fmt.Errorf("%w: delta for stateless member %s", ErrStateMismatch, f.Name())
			}
		case deltaModeFull:
			s, ok := f.(Stateful)
			if !ok {
				return fmt.Errorf("%w: full state for stateless member %s", ErrStateMismatch, f.Name())
			}
			if err := s.ImportState(blob); err != nil {
				return fmt.Errorf("nf: importing %s: %w", f.Name(), err)
			}
		case deltaModeDelta:
			s, ok := f.(DeltaStateful)
			if !ok {
				return fmt.Errorf("%w: delta for non-delta member %s", ErrStateMismatch, f.Name())
			}
			if err := s.ImportDelta(blob); err != nil {
				return fmt.Errorf("nf: delta-importing %s: %w", f.Name(), err)
			}
		default:
			return fmt.Errorf("%w: unknown delta mode %d for member %s", ErrStateMismatch, mode, f.Name())
		}
	}
	if off != len(data) {
		return ErrStateMismatch
	}
	return nil
}
