package nf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Chain state is serialized as a sequence of length-prefixed blobs, one per
// stateful member, in outbound chain order. Stateless members contribute an
// empty blob so positional matching survives round-trips.

// Stateful mirrors container.StateHandler locally to avoid an import cycle
// (the container package must not depend on nf).
type Stateful interface {
	ExportState() ([]byte, error)
	ImportState([]byte) error
}

// ErrStateMismatch is returned when imported chain state does not line up
// with the chain's members.
var ErrStateMismatch = errors.New("nf: chain state does not match chain shape")

func exportChainState(fns []Function) ([]byte, error) {
	var out []byte
	out = binary.BigEndian.AppendUint32(out, uint32(len(fns)))
	for _, f := range fns {
		var blob []byte
		if s, ok := f.(Stateful); ok {
			b, err := s.ExportState()
			if err != nil {
				return nil, fmt.Errorf("nf: exporting %s: %w", f.Name(), err)
			}
			blob = b
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out, nil
}

func importChainState(fns []Function, data []byte) error {
	if len(data) < 4 {
		return ErrStateMismatch
	}
	n := binary.BigEndian.Uint32(data)
	if int(n) != len(fns) {
		return fmt.Errorf("%w: state has %d members, chain has %d", ErrStateMismatch, n, len(fns))
	}
	off := 4
	for _, f := range fns {
		if off+4 > len(data) {
			return ErrStateMismatch
		}
		l := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return ErrStateMismatch
		}
		blob := data[off : off+l]
		off += l
		s, ok := f.(Stateful)
		if !ok {
			if l != 0 {
				return fmt.Errorf("%w: state for stateless member %s", ErrStateMismatch, f.Name())
			}
			continue
		}
		if err := s.ImportState(blob); err != nil {
			return fmt.Errorf("nf: importing %s: %w", f.Name(), err)
		}
	}
	if off != len(data) {
		return ErrStateMismatch
	}
	return nil
}
