package dnscache

import (
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/nf"
	"gnf/internal/packet"
)

var (
	macC = packet.MAC{2, 0, 0, 0, 0, 1}
	macR = packet.MAC{2, 0, 0, 0, 0, 2}
	ipC  = packet.IP{10, 0, 0, 1}
	ipR  = packet.IP{10, 0, 0, 53}
	addr = packet.IP{93, 184, 216, 34}
)

func queryFrame(id uint16, name string) []byte {
	wire, _ := packet.NewDNSQuery(id, name).Append(nil)
	return packet.BuildUDP(macC, macR, ipC, ipR, 5353, 53, wire)
}

func responseFrame(id uint16, name string, ttl uint32, a packet.IP) []byte {
	q := packet.NewDNSQuery(id, name)
	wire, _ := packet.AnswerA(q, ttl, a).Append(nil)
	return packet.BuildUDP(macR, macC, ipR, ipC, 53, 5353, wire)
}

func newCache(t *testing.T, size int, maxTTL uint32) (*Cache, *clock.Virtual) {
	t.Helper()
	c := New("dc", size, maxTTL)
	clk := clock.NewVirtual()
	c.SetClock(clk)
	return c, clk
}

func decodeDNS(t *testing.T, frame []byte) *packet.DNSMessage {
	t.Helper()
	var p packet.Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	var m packet.DNSMessage
	if err := m.Decode(p.UDP.Payload()); err != nil {
		t.Fatal(err)
	}
	return &m
}

func TestMissThenHit(t *testing.T) {
	c, _ := newCache(t, 10, 300)
	// Miss: query forwarded upstream.
	out := c.Process(nf.Outbound, queryFrame(1, "example.com"))
	if len(out.Forward) != 1 || len(out.Reverse) != 0 {
		t.Fatalf("miss out = %+v", out)
	}
	// Response cached and forwarded to the client.
	out = c.Process(nf.Inbound, responseFrame(1, "example.com", 60, addr))
	if len(out.Forward) != 1 {
		t.Fatalf("response out = %+v", out)
	}
	if c.Len() != 1 {
		t.Fatalf("entries = %d", c.Len())
	}
	// Hit: answered at the edge, query consumed.
	out = c.Process(nf.Outbound, queryFrame(2, "example.com"))
	if len(out.Reverse) != 1 || len(out.Forward) != 0 {
		t.Fatalf("hit out = %+v", out)
	}
	m := decodeDNS(t, out.Reverse[0])
	if m.ID != 2 || !m.Response || m.Answers[0].A != addr {
		t.Fatalf("cached answer = %+v", m)
	}
	st := c.NFStats()
	if st["hits"] != 1 || st["misses"] != 1 || st["stores"] != 1 {
		t.Fatalf("stats = %v", st)
	}
}

func TestTTLExpiryAndDecay(t *testing.T) {
	c, clk := newCache(t, 10, 300)
	c.Process(nf.Outbound, queryFrame(1, "example.com"))
	c.Process(nf.Inbound, responseFrame(1, "example.com", 60, addr))

	clk.Advance(20 * time.Second)
	out := c.Process(nf.Outbound, queryFrame(2, "example.com"))
	m := decodeDNS(t, out.Reverse[0])
	if m.Answers[0].TTL != 40 {
		t.Fatalf("decayed TTL = %d, want 40", m.Answers[0].TTL)
	}

	clk.Advance(41 * time.Second) // past expiry
	out = c.Process(nf.Outbound, queryFrame(3, "example.com"))
	if len(out.Forward) != 1 {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not evicted")
	}
}

func TestMaxTTLCap(t *testing.T) {
	c, clk := newCache(t, 10, 30)
	c.Process(nf.Inbound, responseFrame(1, "example.com", 86400, addr))
	clk.Advance(31 * time.Second)
	out := c.Process(nf.Outbound, queryFrame(2, "example.com"))
	if len(out.Forward) != 1 {
		t.Fatal("entry outlived the TTL cap")
	}
}

func TestEvictionAtCapacity(t *testing.T) {
	c, _ := newCache(t, 2, 300)
	c.Process(nf.Inbound, responseFrame(1, "a.example", 10, addr))
	c.Process(nf.Inbound, responseFrame(2, "b.example", 60, addr))
	c.Process(nf.Inbound, responseFrame(3, "c.example", 60, addr)) // evicts a (soonest expiry)
	if c.Len() != 2 {
		t.Fatalf("entries = %d", c.Len())
	}
	if len(c.Process(nf.Outbound, queryFrame(4, "a.example")).Forward) != 1 {
		t.Fatal("evicted entry still served")
	}
	if len(c.Process(nf.Outbound, queryFrame(5, "c.example")).Reverse) != 1 {
		t.Fatal("new entry not cached")
	}
}

func TestNegativeAndNonAPassThrough(t *testing.T) {
	c, _ := newCache(t, 10, 300)
	// NXDOMAIN responses are not cached.
	q := packet.NewDNSQuery(1, "missing.example")
	wire, _ := packet.AnswerA(q, 60).Append(nil)
	frame := packet.BuildUDP(macR, macC, ipR, ipC, 53, 5353, wire)
	c.Process(nf.Inbound, frame)
	if c.Len() != 0 {
		t.Fatal("NXDOMAIN cached")
	}
	// Non-DNS UDP passes.
	other := packet.BuildUDP(macC, macR, ipC, ipR, 1, 2, []byte("x"))
	if len(c.Process(nf.Outbound, other).Forward) != 1 {
		t.Fatal("non-DNS dropped")
	}
	// Zero-TTL responses pass uncached.
	c.Process(nf.Inbound, responseFrame(2, "zero.example", 0, addr))
	if c.Len() != 0 {
		t.Fatal("zero-TTL cached")
	}
}

func TestStateMigrationKeepsWarmCache(t *testing.T) {
	c1, clk1 := newCache(t, 10, 300)
	c1.Process(nf.Inbound, responseFrame(1, "warm.example", 60, addr))
	data, err := c1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	c2, clk2 := newCache(t, 10, 300)
	_ = clk1
	_ = clk2
	if err := c2.ImportState(data); err != nil {
		t.Fatal(err)
	}
	out := c2.Process(nf.Outbound, queryFrame(9, "warm.example"))
	if len(out.Reverse) != 1 {
		t.Fatal("migrated cache cold")
	}
	if err := c2.ImportState([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestFactory(t *testing.T) {
	fn, err := nf.Default.New("dnscache", "dc0", nf.Params{"max_entries": "64", "max_ttl": "120"})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if fn.Kind() != "dnscache" {
		t.Fatal("kind")
	}
	if _, err := nf.Default.New("dnscache", "x", nf.Params{"max_entries": "nope"}); err == nil {
		t.Fatal("bad max_entries accepted")
	}
}
