// Package dnscache implements an edge DNS cache NF. Inbound responses are
// cached by question name; subsequent outbound queries hit the cache and
// are answered directly at the edge with a TTL-decayed copy — the classic
// latency win of edge computing that §1 of the paper motivates. The cache
// contents are migration state: a roaming client keeps its warm cache.
package dnscache

import (
	"encoding/json"
	"strconv"
	"sync"
	"time"

	"gnf/internal/clock"
	"gnf/internal/nf"
	"gnf/internal/packet"
)

// entry is one cached answer set.
type entry struct {
	Answers []packet.DNSRecord `json:"answers"`
	Expires time.Time          `json:"expires"`
	// Seq stamps the dirty epoch of the store, so pre-copy migration rounds
	// export only fresh entries.
	Seq uint64 `json:"seq,omitempty"`
}

// Cache is the NF instance.
type Cache struct {
	name    string
	maxTTL  uint32
	maxSize int

	mu      sync.Mutex
	clk     clock.Clock
	entries map[string]entry
	seq     uint64 // dirty epoch, bumped per store
	hits    uint64
	misses  uint64
	stores  uint64
	parser  packet.Parser
	msg     packet.DNSMessage
}

// New creates a cache bounded to maxSize entries (0 = unbounded) capping
// stored TTLs at maxTTL seconds.
func New(name string, maxSize int, maxTTL uint32) *Cache {
	if maxTTL == 0 {
		maxTTL = 300
	}
	return &Cache{
		name:    name,
		maxTTL:  maxTTL,
		maxSize: maxSize,
		clk:     clock.System(),
		entries: make(map[string]entry),
	}
}

// SetClock implements nf.ClockSetter.
func (c *Cache) SetClock(k clock.Clock) {
	c.mu.Lock()
	c.clk = k
	c.mu.Unlock()
}

// Name implements nf.Function.
func (c *Cache) Name() string { return c.name }

// Kind implements nf.Function.
func (c *Cache) Kind() string { return "dnscache" }

// Len returns the number of live cache entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Process implements nf.Function.
func (c *Cache) Process(dir nf.Direction, frame []byte) nf.Output {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.parser.Parse(frame); err != nil || !c.parser.Has(packet.LayerUDP) {
		return nf.Forward(frame)
	}
	p := &c.parser
	switch {
	case dir == nf.Outbound && p.UDP.DstPort == 53:
		if err := c.msg.Decode(p.UDP.Payload()); err != nil || c.msg.Response || len(c.msg.Questions) == 0 {
			return nf.Forward(frame)
		}
		q := c.msg.Questions[0]
		if q.Type != packet.DNSTypeA {
			return nf.Forward(frame)
		}
		e, ok := c.entries[q.Name]
		now := c.clk.Now()
		if !ok || !e.Expires.After(now) {
			if ok {
				delete(c.entries, q.Name)
			}
			c.misses++
			return nf.Forward(frame)
		}
		c.hits++
		remaining := uint32(e.Expires.Sub(now).Seconds())
		if remaining == 0 {
			remaining = 1
		}
		resp := packet.DNSMessage{
			ID:        c.msg.ID,
			Response:  true,
			Recursion: c.msg.Recursion,
			Questions: append([]packet.DNSQuestion(nil), c.msg.Questions...),
		}
		for _, a := range e.Answers {
			a.TTL = remaining
			resp.Answers = append(resp.Answers, a)
		}
		wire, err := resp.Append(nil)
		if err != nil {
			return nf.Forward(frame)
		}
		reply := packet.BuildUDP(p.Eth.Dst, p.Eth.Src, p.IP.Dst, p.IP.Src,
			p.UDP.DstPort, p.UDP.SrcPort, wire)
		return nf.Reply(reply)

	case dir == nf.Inbound && p.UDP.SrcPort == 53:
		if err := c.msg.Decode(p.UDP.Payload()); err != nil || !c.msg.Response ||
			len(c.msg.Questions) == 0 || len(c.msg.Answers) == 0 || c.msg.Rcode != packet.DNSRcodeOK {
			return nf.Forward(frame)
		}
		name := c.msg.Questions[0].Name
		ttl := c.msg.Answers[0].TTL
		if ttl > c.maxTTL {
			ttl = c.maxTTL
		}
		if ttl == 0 {
			return nf.Forward(frame)
		}
		if c.maxSize > 0 && len(c.entries) >= c.maxSize {
			if _, exists := c.entries[name]; !exists {
				c.evictOne()
			}
		}
		ans := make([]packet.DNSRecord, len(c.msg.Answers))
		copy(ans, c.msg.Answers)
		c.seq++
		c.entries[name] = entry{Answers: ans, Expires: c.clk.Now().Add(time.Duration(ttl) * time.Second), Seq: c.seq}
		c.stores++
		return nf.Forward(frame)
	}
	return nf.Forward(frame)
}

// evictOne removes the entry expiring soonest. Called with mu held.
func (c *Cache) evictOne() {
	var victim string
	var soonest time.Time
	first := true
	for name, e := range c.entries {
		if first || e.Expires.Before(soonest) {
			victim, soonest, first = name, e.Expires, false
		}
	}
	if victim != "" {
		delete(c.entries, victim)
	}
}

// NFStats implements nf.StatsReporter.
func (c *Cache) NFStats() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return map[string]uint64{
		"hits":    c.hits,
		"misses":  c.misses,
		"stores":  c.stores,
		"entries": uint64(len(c.entries)),
	}
}

type cacheState struct {
	Entries map[string]entry `json:"entries"`
	Hits    uint64           `json:"hits"`
	Misses  uint64           `json:"misses"`
	Stores  uint64           `json:"stores"`
}

// ExportState implements container.StateHandler.
func (c *Cache) ExportState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(cacheState{Entries: c.entries, Hits: c.hits, Misses: c.misses, Stores: c.stores})
}

// ImportState implements container.StateHandler.
func (c *Cache) ImportState(data []byte) error {
	var st cacheState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = st.Entries
	if c.entries == nil {
		c.entries = make(map[string]entry)
	}
	for _, e := range c.entries {
		if e.Seq > c.seq {
			c.seq = e.Seq
		}
	}
	c.hits, c.misses, c.stores = st.Hits, st.Misses, st.Stores
	return nil
}

// ExportDelta implements nf.DeltaStateful: entries stored after epoch
// `since` (everything for since == 0) plus the aggregate counters, which
// are tiny and shipped every round. Evicted or expired entries carry no
// tombstone — stale copies at the migration target expire by their own
// absolute deadlines.
func (c *Cache) ExportDelta(since uint64) ([]byte, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := cacheState{Entries: make(map[string]entry), Hits: c.hits, Misses: c.misses, Stores: c.stores}
	for k, e := range c.entries {
		if e.Seq > since {
			st.Entries[k] = e
		}
	}
	data, err := json.Marshal(st)
	return data, c.seq, err
}

// ImportDelta implements nf.DeltaStateful by merging exported entries into
// the live cache and adopting the absolute counters.
func (c *Cache) ImportDelta(data []byte) error {
	var st cacheState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range st.Entries {
		if e.Seq > c.seq {
			c.seq = e.Seq
		}
		c.entries[k] = e
	}
	c.hits, c.misses, c.stores = st.Hits, st.Misses, st.Stores
	return nil
}

var _ nf.DeltaStateful = (*Cache)(nil)

func init() {
	nf.Default.Register("dnscache", func(name string, params nf.Params) (nf.Function, error) {
		size, err := strconv.Atoi(params.Get("max_entries", "1024"))
		if err != nil || size < 0 {
			return nil, err
		}
		ttl, err := strconv.ParseUint(params.Get("max_ttl", "300"), 10, 32)
		if err != nil {
			return nil, err
		}
		return New(name, size, uint32(ttl)), nil
	})
}
