package dnscache

import (
	"testing"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

func TestDNSCacheDeltaExportsOnlyFreshEntries(t *testing.T) {
	src, clk := newCache(t, 0, 300)
	src.Process(nf.Outbound, queryFrame(1, "a.example"))
	src.Process(nf.Inbound, responseFrame(1, "a.example", 120, packet.IP{1, 1, 1, 1}))
	src.Process(nf.Outbound, queryFrame(2, "b.example"))
	src.Process(nf.Inbound, responseFrame(2, "b.example", 120, packet.IP{2, 2, 2, 2}))

	full, epoch, err := src.ExportDelta(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := New("d1", 0, 300)
	dst.SetClock(clk)
	if err := dst.ImportDelta(full); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 {
		t.Fatalf("entries after full = %d, want 2", dst.Len())
	}

	src.Process(nf.Outbound, queryFrame(3, "c.example"))
	src.Process(nf.Inbound, responseFrame(3, "c.example", 120, packet.IP{3, 3, 3, 3}))
	delta, _, err := src.ExportDelta(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full) {
		t.Fatalf("delta %dB not smaller than full %dB", len(delta), len(full))
	}
	if err := dst.ImportDelta(delta); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 {
		t.Fatalf("entries after delta = %d, want 3", dst.Len())
	}
	// The migrated-in entry answers at the edge.
	out := dst.Process(nf.Outbound, queryFrame(4, "c.example"))
	if len(out.Reverse) != 1 || len(out.Forward) != 0 {
		t.Fatalf("warm entry missed: %+v", out)
	}
}
