package nf

import (
	"encoding/json"
	"errors"
	"testing"
)

// kvStore is a toy DeltaStateful function: a map with per-key dirty
// epochs, the same shape the real stateful kinds implement.
type kvStore struct {
	name string
	seq  uint64
	vals map[string]string
	dirt map[string]uint64
}

func newKV(name string) *kvStore {
	return &kvStore{name: name, vals: map[string]string{}, dirt: map[string]uint64{}}
}

func (k *kvStore) Name() string                           { return k.name }
func (k *kvStore) Kind() string                           { return "kv" }
func (k *kvStore) Process(dir Direction, f []byte) Output { return Forward(f) }
func (k *kvStore) set(key, val string)                    { k.seq++; k.vals[key] = val; k.dirt[key] = k.seq }
func (k *kvStore) ExportState() ([]byte, error)           { return json.Marshal(k.vals) }
func (k *kvStore) ImportState(b []byte) error             { return json.Unmarshal(b, &k.vals) }
func (k *kvStore) ExportDelta(since uint64) ([]byte, uint64, error) {
	out := map[string]string{}
	for key, ep := range k.dirt {
		if ep > since {
			out[key] = k.vals[key]
		}
	}
	b, err := json.Marshal(out)
	return b, k.seq, err
}
func (k *kvStore) ImportDelta(b []byte) error {
	var in map[string]string
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	for key, val := range in {
		k.vals[key] = val
	}
	return nil
}

// fullOnly is Stateful without delta support: it must re-ship its full
// state every round.
type fullOnly struct {
	name string
	val  string
}

func (f *fullOnly) Name() string                            { return f.name }
func (f *fullOnly) Kind() string                            { return "full" }
func (f *fullOnly) Process(dir Direction, fr []byte) Output { return Forward(fr) }
func (f *fullOnly) ExportState() ([]byte, error)            { return []byte(f.val), nil }
func (f *fullOnly) ImportState(b []byte) error              { f.val = string(b); return nil }

func TestChainDeltaRoundTrip(t *testing.T) {
	srcKV := newKV("kv")
	srcFull := &fullOnly{name: "full", val: "v1"}
	src := NewChain("c", srcKV, &tagger{name: "t"}, srcFull)

	dstKV := newKV("kv")
	dstFull := &fullOnly{name: "full"}
	dst := NewChain("c", dstKV, &tagger{name: "t"}, dstFull)

	srcKV.set("a", "1")
	srcKV.set("b", "2")

	// Round 1: nil epochs = full export.
	blob, epochs, err := src.ExportStateDelta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 {
		t.Fatalf("epochs = %v", epochs)
	}
	if err := dst.ImportStateDelta(blob); err != nil {
		t.Fatal(err)
	}
	if dstKV.vals["a"] != "1" || dstKV.vals["b"] != "2" || dstFull.val != "v1" {
		t.Fatalf("after full round: kv=%v full=%q", dstKV.vals, dstFull.val)
	}

	// Round 2: only the mutation since round 1 ships for the delta member;
	// the full-only member re-ships everything.
	srcKV.set("c", "3")
	srcFull.val = "v2"
	blob2, epochs2, err := src.ExportStateDelta(epochs)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob2) >= len(blob) {
		t.Fatalf("delta (%dB) not smaller than full (%dB)", len(blob2), len(blob))
	}
	if err := dst.ImportStateDelta(blob2); err != nil {
		t.Fatal(err)
	}
	if dstKV.vals["c"] != "3" || dstFull.val != "v2" {
		t.Fatalf("after delta round: kv=%v full=%q", dstKV.vals, dstFull.val)
	}

	// Round 3: nothing changed — the delta member contributes an empty
	// delta; epochs are stable.
	blob3, epochs3, err := src.ExportStateDelta(epochs2)
	if err != nil {
		t.Fatal(err)
	}
	if epochs3[0] != epochs2[0] {
		t.Fatalf("idle epochs moved: %v -> %v", epochs2, epochs3)
	}
	if err := dst.ImportStateDelta(blob3); err != nil {
		t.Fatal(err)
	}
	if len(dstKV.vals) != 3 {
		t.Fatalf("idle round changed state: %v", dstKV.vals)
	}
}

func TestChainDeltaShapeMismatch(t *testing.T) {
	src := NewChain("c", newKV("kv"))
	dst := NewChain("c", newKV("kv"), &tagger{name: "t"})
	blob, _, err := src.ExportStateDelta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportStateDelta(blob); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("mismatched import = %v, want ErrStateMismatch", err)
	}
	if _, _, err := src.ExportStateDelta([]uint64{1, 2}); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("bad epoch vector = %v, want ErrStateMismatch", err)
	}
}

func TestChainDeltaStatelessMembers(t *testing.T) {
	src := NewChain("c", &tagger{name: "t1"}, &tagger{name: "t2"})
	dst := NewChain("c", &tagger{name: "t1"}, &tagger{name: "t2"})
	blob, epochs, err := src.ExportStateDelta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if epochs[0] != 0 || epochs[1] != 0 {
		t.Fatalf("stateless epochs = %v", epochs)
	}
	if err := dst.ImportStateDelta(blob); err != nil {
		t.Fatal(err)
	}
}
