// Package firewall implements GNF's iptables-style packet firewall NF — the
// first of the paper's three demo functions. Rules are evaluated in order
// against the 5-tuple (plus direction); the first match wins, otherwise the
// default policy applies. Rule hit counters are exported as migration
// state, mirroring how iptables counters travel with a checkpointed
// container.
package firewall

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

// Target is a rule action.
type Target uint8

// Rule targets.
const (
	Accept Target = iota
	Drop
)

// String implements fmt.Stringer.
func (t Target) String() string {
	if t == Drop {
		return "drop"
	}
	return "accept"
}

// CIDR is an IPv4 prefix. A zero Bits with zero IP matches everything.
type CIDR struct {
	IP   packet.IP
	Bits int
}

// Contains reports whether ip falls inside the prefix.
func (c CIDR) Contains(ip packet.IP) bool {
	if c.Bits == 0 && c.IP.IsZero() {
		return true
	}
	mask := ^uint32(0) << (32 - uint32(c.Bits))
	if c.Bits == 0 {
		mask = 0
	}
	return ip.Uint32()&mask == c.IP.Uint32()&mask
}

// String renders "a.b.c.d/len" or "any".
func (c CIDR) String() string {
	if c.Bits == 0 && c.IP.IsZero() {
		return "any"
	}
	return fmt.Sprintf("%s/%d", c.IP, c.Bits)
}

// ParseCIDR accepts "any", "a.b.c.d" (= /32) or "a.b.c.d/len".
func ParseCIDR(s string) (CIDR, error) {
	if s == "any" || s == "*" || s == "" {
		return CIDR{}, nil
	}
	ipStr, lenStr, hasLen := strings.Cut(s, "/")
	ip, ok := packet.ParseIP(ipStr)
	if !ok {
		return CIDR{}, fmt.Errorf("firewall: bad IP %q", ipStr)
	}
	bits := 32
	if hasLen {
		n, err := strconv.Atoi(lenStr)
		if err != nil || n < 0 || n > 32 {
			return CIDR{}, fmt.Errorf("firewall: bad prefix length %q", lenStr)
		}
		bits = n
	}
	return CIDR{IP: ip, Bits: bits}, nil
}

// PortRange matches transport ports; the zero value matches any port.
type PortRange struct{ Lo, Hi uint16 }

// Contains reports whether p falls in the range.
func (r PortRange) Contains(p uint16) bool {
	if r.Lo == 0 && r.Hi == 0 {
		return true
	}
	return p >= r.Lo && p <= r.Hi
}

// String renders "lo-hi", "lo" or "any".
func (r PortRange) String() string {
	switch {
	case r.Lo == 0 && r.Hi == 0:
		return "any"
	case r.Lo == r.Hi:
		return strconv.Itoa(int(r.Lo))
	default:
		return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
	}
}

func parsePorts(s string) (PortRange, error) {
	if s == "any" || s == "*" || s == "" {
		return PortRange{}, nil
	}
	lo, hi, ranged := strings.Cut(s, "-")
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return PortRange{}, fmt.Errorf("firewall: bad port %q", s)
	}
	h := l
	if ranged {
		h, err = strconv.ParseUint(hi, 10, 16)
		if err != nil || h < l {
			return PortRange{}, fmt.Errorf("firewall: bad port range %q", s)
		}
	}
	return PortRange{Lo: uint16(l), Hi: uint16(h)}, nil
}

// anyDir marks a rule matching both directions.
const anyDir = nf.Direction(0xff)

// Rule is one ordered firewall entry.
type Rule struct {
	Action Target
	Dir    nf.Direction // anyDir matches both
	Proto  uint8        // 0 = any
	Src    CIDR
	Dst    CIDR
	SPorts PortRange
	DPorts PortRange
}

// String renders the rule in the textual rule grammar.
func (r Rule) String() string {
	dir := "any"
	switch r.Dir {
	case nf.Outbound:
		dir = "out"
	case nf.Inbound:
		dir = "in"
	}
	proto := "any"
	if r.Proto != 0 {
		proto = packet.ProtoName(r.Proto)
	}
	return fmt.Sprintf("%s %s %s %s %s %s %s", r.Action, dir, proto, r.Src, r.SPorts, r.Dst, r.DPorts)
}

// ParseRule parses "action dir proto src sports dst dports", e.g.
// "drop out tcp any any 93.184.216.34/32 80". Fields past the action may
// be omitted right-to-left.
func ParseRule(s string) (Rule, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Rule{}, errors.New("firewall: empty rule")
	}
	r := Rule{Dir: anyDir}
	switch fields[0] {
	case "accept":
		r.Action = Accept
	case "drop":
		r.Action = Drop
	default:
		return Rule{}, fmt.Errorf("firewall: bad action %q", fields[0])
	}
	get := func(i int) string {
		if i < len(fields) {
			return fields[i]
		}
		return "any"
	}
	switch get(1) {
	case "out":
		r.Dir = nf.Outbound
	case "in":
		r.Dir = nf.Inbound
	case "any":
		r.Dir = anyDir
	default:
		return Rule{}, fmt.Errorf("firewall: bad direction %q", get(1))
	}
	switch get(2) {
	case "tcp":
		r.Proto = packet.ProtoTCP
	case "udp":
		r.Proto = packet.ProtoUDP
	case "icmp":
		r.Proto = packet.ProtoICMP
	case "any":
	default:
		return Rule{}, fmt.Errorf("firewall: bad proto %q", get(2))
	}
	var err error
	if r.Src, err = ParseCIDR(get(3)); err != nil {
		return Rule{}, err
	}
	if r.SPorts, err = parsePorts(get(4)); err != nil {
		return Rule{}, err
	}
	if r.Dst, err = ParseCIDR(get(5)); err != nil {
		return Rule{}, err
	}
	if r.DPorts, err = parsePorts(get(6)); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// ParseRules parses a semicolon-separated rule list.
func ParseRules(s string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := ParseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// Firewall is the NF instance.
type Firewall struct {
	name   string
	policy Target

	mu       sync.Mutex
	rules    []Rule
	hits     []uint64
	accepted uint64
	dropped  uint64
	parser   packet.Parser
}

// New creates a firewall with the given default policy and rules.
func New(name string, policy Target, rules ...Rule) *Firewall {
	return &Firewall{name: name, policy: policy, rules: rules, hits: make([]uint64, len(rules))}
}

// Name implements nf.Function.
func (f *Firewall) Name() string { return f.name }

// Kind implements nf.Function.
func (f *Firewall) Kind() string { return "firewall" }

// AppendRule adds a rule at the end of the table.
func (f *Firewall) AppendRule(r Rule) {
	f.mu.Lock()
	f.rules = append(f.rules, r)
	f.hits = append(f.hits, 0)
	f.mu.Unlock()
}

// Rules returns a copy of the rule table.
func (f *Firewall) Rules() []Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Rule(nil), f.rules...)
}

// Process implements nf.Function.
func (f *Firewall) Process(dir nf.Direction, frame []byte) nf.Output {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.acceptLocked(dir, frame) {
		return nf.Forward(frame)
	}
	return nf.Drop()
}

// ProcessBatch implements nf.BatchProcessor: one lock acquisition covers
// the whole batch, dropped frames are recycled into the frame pool.
func (f *Firewall) ProcessBatch(dir nf.Direction, frames [][]byte, out *nf.BatchOutput) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, frame := range frames {
		if f.acceptLocked(dir, frame) {
			out.Forward = append(out.Forward, frame)
		} else {
			packet.ReturnFrame(frame)
		}
	}
}

// acceptLocked evaluates the table for one frame with f.mu held.
func (f *Firewall) acceptLocked(dir nf.Direction, frame []byte) bool {
	if err := f.parser.Parse(frame); err != nil {
		f.dropped++
		return false
	}
	// Non-IP frames (ARP) always pass: the firewall is an L3 function.
	if !f.parser.Has(packet.LayerIPv4) {
		f.accepted++
		return true
	}
	ft, hasPorts := f.parser.FiveTuple()
	action := f.policy
	for i := range f.rules {
		r := &f.rules[i]
		if r.Dir != anyDir && r.Dir != dir {
			continue
		}
		if r.Proto != 0 && r.Proto != f.parser.IP.Proto {
			continue
		}
		if !r.Src.Contains(f.parser.IP.Src) || !r.Dst.Contains(f.parser.IP.Dst) {
			continue
		}
		if hasPorts {
			if !r.SPorts.Contains(ft.Src.Port) || !r.DPorts.Contains(ft.Dst.Port) {
				continue
			}
		} else if r.SPorts != (PortRange{}) || r.DPorts != (PortRange{}) {
			continue
		}
		f.hits[i]++
		action = r.Action
		break
	}
	if action == Drop {
		f.dropped++
		return false
	}
	f.accepted++
	return true
}

var _ nf.BatchProcessor = (*Firewall)(nil)

// NFStats implements nf.StatsReporter.
func (f *Firewall) NFStats() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]uint64{"accepted": f.accepted, "dropped": f.dropped}
	for i, h := range f.hits {
		out[fmt.Sprintf("rule%d_hits", i)] = h
	}
	return out
}

type fwState struct {
	Accepted uint64   `json:"accepted"`
	Dropped  uint64   `json:"dropped"`
	Hits     []uint64 `json:"hits"`
}

// ExportState implements container.StateHandler (counters migrate).
func (f *Firewall) ExportState() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return json.Marshal(fwState{Accepted: f.accepted, Dropped: f.dropped, Hits: append([]uint64(nil), f.hits...)})
}

// ImportState implements container.StateHandler.
func (f *Firewall) ImportState(data []byte) error {
	var st fwState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(st.Hits) != len(f.rules) {
		return fmt.Errorf("firewall: state has %d rule counters, table has %d rules", len(st.Hits), len(f.rules))
	}
	f.accepted, f.dropped = st.Accepted, st.Dropped
	copy(f.hits, st.Hits)
	return nil
}

func init() {
	nf.Default.RegisterKind("firewall", nf.KindInfo{Shareable: true}, func(name string, params nf.Params) (nf.Function, error) {
		policy := Accept
		switch params.Get("policy", "accept") {
		case "accept":
		case "drop":
			policy = Drop
		default:
			return nil, fmt.Errorf("firewall: bad policy %q", params["policy"])
		}
		rules, err := ParseRules(params.Get("rules", ""))
		if err != nil {
			return nil, err
		}
		return New(name, policy, rules...), nil
	})
}
