package firewall

import (
	"strings"
	"testing"
	"testing/quick"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 1}
	macB = packet.MAC{2, 0, 0, 0, 0, 2}
	ipA  = packet.IP{10, 0, 0, 1}
	ipB  = packet.IP{93, 184, 216, 34}
)

func udp(dstPort uint16) []byte {
	return packet.BuildUDP(macA, macB, ipA, ipB, 40000, dstPort, []byte("x"))
}

func tcp(dstPort uint16) []byte {
	return packet.BuildTCP(macA, macB, ipA, ipB, 40000, dstPort, packet.TCPOptions{Flags: packet.TCPSyn}, nil)
}

func passed(out nf.Output) bool { return len(out.Forward) == 1 }

func TestCIDRContains(t *testing.T) {
	cases := []struct {
		cidr string
		ip   packet.IP
		want bool
	}{
		{"10.0.0.0/8", packet.IP{10, 9, 8, 7}, true},
		{"10.0.0.0/8", packet.IP{11, 0, 0, 1}, false},
		{"10.0.0.1", packet.IP{10, 0, 0, 1}, true},
		{"10.0.0.1/32", packet.IP{10, 0, 0, 2}, false},
		{"any", packet.IP{1, 2, 3, 4}, true},
		{"0.0.0.0/0", packet.IP{200, 1, 1, 1}, true},
		{"192.168.4.0/22", packet.IP{192, 168, 7, 255}, true},
		{"192.168.4.0/22", packet.IP{192, 168, 8, 0}, false},
	}
	for _, c := range cases {
		cidr, err := ParseCIDR(c.cidr)
		if err != nil {
			t.Fatalf("ParseCIDR(%q): %v", c.cidr, err)
		}
		if got := cidr.Contains(c.ip); got != c.want {
			t.Errorf("%s contains %s = %v, want %v", c.cidr, c.ip, got, c.want)
		}
	}
}

func TestParseCIDRErrors(t *testing.T) {
	for _, s := range []string{"10.0.0/8", "10.0.0.1/33", "10.0.0.1/-1", "banana", "1.2.3.4/x"} {
		if _, err := ParseCIDR(s); err == nil {
			t.Errorf("ParseCIDR(%q) accepted", s)
		}
	}
}

func TestParseRuleFull(t *testing.T) {
	r, err := ParseRule("drop out tcp 10.0.0.0/8 1000-2000 93.184.216.34/32 80")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Action != Drop || r.Dir != nf.Outbound || r.Proto != packet.ProtoTCP {
		t.Fatalf("rule = %+v", r)
	}
	if r.SPorts != (PortRange{1000, 2000}) || r.DPorts != (PortRange{80, 80}) {
		t.Fatalf("ports = %+v", r)
	}
	if !strings.Contains(r.String(), "drop out tcp") {
		t.Fatalf("String = %q", r.String())
	}
}

func TestParseRuleDefaults(t *testing.T) {
	r, err := ParseRule("accept")
	if err != nil {
		t.Fatalf("ParseRule: %v", err)
	}
	if r.Action != Accept || r.Proto != 0 || r.Src != (CIDR{}) {
		t.Fatalf("rule = %+v", r)
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, s := range []string{"", "explode", "drop sideways", "drop out quic", "drop out tcp 1.2.3/8", "drop out tcp any 99999", "drop out tcp any any 1.2.3.4 80-79"} {
		if _, err := ParseRule(s); err == nil {
			t.Errorf("ParseRule(%q) accepted", s)
		}
	}
}

func TestParseRulesList(t *testing.T) {
	rules, err := ParseRules("drop out udp any any any 53; accept any tcp ; ")
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	if _, err := ParseRules("drop; banana"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestFirewallFirstMatchWins(t *testing.T) {
	r1, _ := ParseRule("drop any udp any any any 53")
	r2, _ := ParseRule("accept any udp")
	fw := New("fw", Accept, r1, r2)
	if passed(fw.Process(nf.Outbound, udp(53))) {
		t.Fatal("DNS not dropped by first rule")
	}
	if !passed(fw.Process(nf.Outbound, udp(123))) {
		t.Fatal("NTP dropped")
	}
	stats := fw.NFStats()
	if stats["dropped"] != 1 || stats["accepted"] != 1 || stats["rule0_hits"] != 1 || stats["rule1_hits"] != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestFirewallDefaultPolicyDrop(t *testing.T) {
	allowDNS, _ := ParseRule("accept any udp any any any 53")
	fw := New("fw", Drop, allowDNS)
	if !passed(fw.Process(nf.Outbound, udp(53))) {
		t.Fatal("allowed flow dropped")
	}
	if passed(fw.Process(nf.Outbound, udp(80))) {
		t.Fatal("default-drop let traffic through")
	}
}

func TestFirewallDirectionality(t *testing.T) {
	r, _ := ParseRule("drop in tcp")
	fw := New("fw", Accept, r)
	if !passed(fw.Process(nf.Outbound, tcp(80))) {
		t.Fatal("outbound dropped by in-rule")
	}
	if passed(fw.Process(nf.Inbound, tcp(80))) {
		t.Fatal("inbound not dropped")
	}
}

func TestFirewallARPAlwaysPasses(t *testing.T) {
	fw := New("fw", Drop)
	arp := packet.BuildARP(packet.ARPRequest, macA, ipA, packet.MAC{}, ipB)
	if !passed(fw.Process(nf.Outbound, arp)) {
		t.Fatal("ARP dropped by default-drop L3 firewall")
	}
}

func TestFirewallICMPMatchesWithoutPorts(t *testing.T) {
	r, _ := ParseRule("drop any icmp")
	fw := New("fw", Accept, r)
	ping := packet.BuildICMPEcho(macA, macB, ipA, ipB, packet.ICMPEchoRequest, 1, 1, nil)
	if passed(fw.Process(nf.Outbound, ping)) {
		t.Fatal("ICMP not dropped")
	}
	// A rule with ports never matches ICMP.
	r2, _ := ParseRule("drop any icmp any 1-100")
	fw2 := New("fw2", Accept, r2)
	if !passed(fw2.Process(nf.Outbound, ping)) {
		t.Fatal("port-rule matched ICMP")
	}
}

func TestFirewallMalformedDropped(t *testing.T) {
	fw := New("fw", Accept)
	if passed(fw.Process(nf.Outbound, []byte{1, 2})) {
		t.Fatal("garbage forwarded")
	}
}

func TestFirewallAppendRule(t *testing.T) {
	fw := New("fw", Accept)
	r, _ := ParseRule("drop any udp")
	fw.AppendRule(r)
	if len(fw.Rules()) != 1 {
		t.Fatal("AppendRule lost the rule")
	}
	if passed(fw.Process(nf.Outbound, udp(1))) {
		t.Fatal("appended rule ignored")
	}
}

func TestFirewallStateRoundTrip(t *testing.T) {
	r, _ := ParseRule("drop any udp any any any 53")
	fw := New("fw", Accept, r)
	fw.Process(nf.Outbound, udp(53))
	fw.Process(nf.Outbound, udp(80))
	data, err := fw.ExportState()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	fw2 := New("fw", Accept, r)
	if err := fw2.ImportState(data); err != nil {
		t.Fatalf("import: %v", err)
	}
	s1, s2 := fw.NFStats(), fw2.NFStats()
	for k, v := range s1 {
		if s2[k] != v {
			t.Fatalf("stat %s = %d, want %d", k, s2[k], v)
		}
	}
	// Mismatched rule count rejected.
	fw3 := New("fw", Accept)
	if err := fw3.ImportState(data); err == nil {
		t.Fatal("mismatched import accepted")
	}
	if err := fw2.ImportState([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestFactoryRegistration(t *testing.T) {
	fn, err := nf.Default.New("firewall", "fw0", nf.Params{
		"policy": "drop",
		"rules":  "accept any udp any any any 53",
	})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if fn.Kind() != "firewall" || fn.Name() != "fw0" {
		t.Fatalf("fn = %v/%v", fn.Kind(), fn.Name())
	}
	if _, err := nf.Default.New("firewall", "x", nf.Params{"policy": "maybe"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := nf.Default.New("firewall", "x", nf.Params{"rules": "garbage"}); err == nil {
		t.Fatal("bad rules accepted")
	}
}

// Property: for disjoint single-port drop rules, evaluation order does not
// change the verdict.
func TestDisjointRuleOrderIndependenceProperty(t *testing.T) {
	f := func(p1Raw, p2Raw uint16, probe uint16) bool {
		p1 := p1Raw%1000 + 1
		p2 := p2Raw%1000 + 1002 // disjoint from p1
		r1 := Rule{Action: Drop, Dir: anyDir, Proto: packet.ProtoUDP, DPorts: PortRange{p1, p1}}
		r2 := Rule{Action: Drop, Dir: anyDir, Proto: packet.ProtoUDP, DPorts: PortRange{p2, p2}}
		fwA := New("a", Accept, r1, r2)
		fwB := New("b", Accept, r2, r1)
		frame := udp(probe)
		return passed(fwA.Process(nf.Outbound, frame)) == passed(fwB.Process(nf.Outbound, packet.Clone(frame)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CIDR /32 contains exactly its own address.
func TestCIDRSlash32Property(t *testing.T) {
	f := func(a, b, c, d, x, y, z, w byte) bool {
		ip1 := packet.IP{a, b, c, d}
		ip2 := packet.IP{x, y, z, w}
		cidr := CIDR{IP: ip1, Bits: 32}
		return cidr.Contains(ip2) == (ip1 == ip2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPortRangeString(t *testing.T) {
	if (PortRange{}).String() != "any" || (PortRange{5, 5}).String() != "5" || (PortRange{1, 9}).String() != "1-9" {
		t.Fatal("PortRange.String forms")
	}
}
