package firewall

import (
	"fmt"
	"testing"

	"gnf/internal/nf"
	"gnf/internal/packet"
)

// BenchmarkRuleTableScaling measures verdict latency as the rule table
// grows — the iptables-style linear-scan cost curve.
func BenchmarkRuleTableScaling(b *testing.B) {
	frame := packet.BuildUDP(macA, macB, ipA, ipB, 40000, 53, make([]byte, 470))
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("%drules", n), func(b *testing.B) {
			rules := make([]Rule, 0, n)
			for i := 0; i < n; i++ {
				// Non-matching drop rules followed by a terminal accept.
				r, err := ParseRule(fmt.Sprintf("drop out tcp any any any %d", (i%60000)+2))
				if err != nil {
					b.Fatal(err)
				}
				rules = append(rules, r)
			}
			fw := New("bench", Accept, rules...)
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := fw.Process(nf.Outbound, frame); len(out.Forward) != 1 {
					b.Fatal("frame dropped")
				}
			}
		})
	}
}
