package predict

import (
	"sync"
	"testing"

	"gnf/internal/topology"
)

func TestMarkovPredictsMostFrequentSuccessor(t *testing.T) {
	m := NewMarkov()
	if _, _, ok := m.Predict("st-a"); ok {
		t.Fatal("empty model predicted something")
	}
	m.Observe("st-a", "st-b")
	m.Observe("st-a", "st-b")
	m.Observe("st-a", "st-c")
	next, prob, ok := m.Predict("st-a")
	if !ok || next != "st-b" {
		t.Fatalf("Predict = %q, %v; want st-b", next, ok)
	}
	if prob < 0.66 || prob > 0.67 {
		t.Fatalf("prob = %f, want 2/3", prob)
	}
	if got := m.Observations("st-a"); got != 3 {
		t.Fatalf("observations = %d, want 3", got)
	}
}

func TestMarkovIgnoresNonHandoffs(t *testing.T) {
	m := NewMarkov()
	m.Observe("", "st-a")     // first attach
	m.Observe("st-a", "")     // detach
	m.Observe("st-a", "st-a") // reassociation within a station
	if _, _, ok := m.Predict("st-a"); ok {
		t.Fatal("non-handoffs trained the model")
	}
}

func TestMarkovDeterministicTieBreak(t *testing.T) {
	m := NewMarkov()
	m.Observe("st-a", "st-c")
	m.Observe("st-a", "st-b")
	next, prob, ok := m.Predict("st-a")
	if !ok || next != "st-b" || prob != 0.5 {
		t.Fatalf("Predict = %q/%f/%v; want st-b/0.5/true", next, prob, ok)
	}
}

func TestMarkovTrainFromTrace(t *testing.T) {
	stations := map[topology.CellID]string{
		"cell-a": "st-a", "cell-b": "st-b",
	}
	resolve := func(c topology.CellID) (string, bool) {
		s, ok := stations[c]
		return s, ok
	}
	m := NewMarkov()
	m.Train([]topology.AssociationEvent{
		{Client: "phone", From: "", To: "cell-a"},       // first attach: skipped
		{Client: "phone", From: "cell-a", To: "cell-b"}, // handoff
		{Client: "phone", From: "cell-b", To: "cell-a"},
		{Client: "phone", From: "cell-a", To: "cell-x"}, // unknown cell: skipped
	}, resolve)
	if next, _, ok := m.Predict("st-a"); !ok || next != "st-b" {
		t.Fatalf("Predict(st-a) = %q, %v", next, ok)
	}
	if next, _, ok := m.Predict("st-b"); !ok || next != "st-a" {
		t.Fatalf("Predict(st-b) = %q, %v", next, ok)
	}
	if got := m.Stations(); len(got) != 2 {
		t.Fatalf("stations = %v", got)
	}
}

func TestMarkovConcurrentUse(t *testing.T) {
	m := NewMarkov()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Observe("st-a", "st-b")
				m.Predict("st-a")
			}
		}(g)
	}
	wg.Wait()
	if got := m.Observations("st-a"); got != 4000 {
		t.Fatalf("observations = %d, want 4000", got)
	}
}
