// Package predict implements the mobility predictors that drive
// anticipatory NF placement: the manager trains a model on the handoff
// history flowing out of internal/mobility and uses it to prewarm a
// standby chain at the station a client is most likely to roam to next —
// the "anticipatory placement" lever the VNF-placement literature
// identifies as the complement of fast migration.
package predict

import (
	"sort"
	"sync"

	"gnf/internal/topology"
)

// Markov is a first-order next-cell model over stations: it counts
// observed station-to-station handoffs and predicts the most likely
// successor of the current station. It is deliberately tiny — the point is
// anticipation on an edge box, not deep trajectory modeling — and safe for
// concurrent use.
type Markov struct {
	mu     sync.Mutex
	counts map[string]map[string]uint64
	totals map[string]uint64
}

// NewMarkov returns an empty model.
func NewMarkov() *Markov {
	return &Markov{
		counts: make(map[string]map[string]uint64),
		totals: make(map[string]uint64),
	}
}

// Observe records one handoff from -> to. Empty endpoints (first attach,
// detach) and self-transitions are ignored — they carry no roaming signal.
func (m *Markov) Observe(from, to string) {
	if from == "" || to == "" || from == to {
		return
	}
	m.mu.Lock()
	row := m.counts[from]
	if row == nil {
		row = make(map[string]uint64)
		m.counts[from] = row
	}
	row[to]++
	m.totals[from]++
	m.mu.Unlock()
}

// Predict returns the most likely next station after from and the
// transition probability the model assigns it. ok is false when the model
// has never seen a handoff out of from. Ties break to the
// lexicographically smallest station so predictions are deterministic.
func (m *Markov) Predict(from string) (next string, prob float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := m.totals[from]
	if total == 0 {
		return "", 0, false
	}
	var bestCount uint64
	for to, c := range m.counts[from] {
		if c > bestCount || (c == bestCount && (next == "" || to < next)) {
			next, bestCount = to, c
		}
	}
	return next, float64(bestCount) / float64(total), true
}

// Transitions returns a copy of the observed successor counts of from,
// for inspection and tests.
func (m *Markov) Transitions(from string) map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.counts[from]))
	for to, c := range m.counts[from] {
		out[to] = c
	}
	return out
}

// Observations reports how many handoffs out of from the model has seen.
func (m *Markov) Observations(from string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totals[from]
}

// Stations lists every station the model has seen a handoff out of,
// sorted.
func (m *Markov) Stations() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.counts))
	for s := range m.counts {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Train folds a recorded association history (mobility.Trace.Events()) into
// the model. Cell-level events are projected onto stations by the resolver;
// pass topo.StationForCell-backed lookups or any test stub. Events whose
// cells do not resolve are skipped.
func (m *Markov) Train(events []topology.AssociationEvent, stationOf func(topology.CellID) (string, bool)) {
	for _, ev := range events {
		if ev.From == "" || ev.To == "" {
			continue
		}
		from, okF := stationOf(ev.From)
		to, okT := stationOf(ev.To)
		if okF && okT {
			m.Observe(from, to)
		}
	}
}
