// Package traffic provides workload generators and measurement sinks for
// the evaluation: constant-bit-rate UDP streams (with sequence numbers, so
// loss windows and migration downtime are measurable), DNS query clients
// and HTTP-request senders matching the paper's demo NFs.
package traffic

import (
	"encoding/binary"
	"sort"
	"sync"
	"time"

	"gnf/internal/clock"
	"gnf/internal/netem"
	"gnf/internal/packet"
)

// SeqRecord is one received CBR packet.
type SeqRecord struct {
	Seq uint64
	At  time.Time
}

// Sink receives sequence-stamped CBR packets on a UDP port and records
// arrival order and times.
type Sink struct {
	clk clock.Clock

	mu   sync.Mutex
	recs []SeqRecord
	seen map[uint64]bool
}

// NewSink registers a sink on host's UDP port.
func NewSink(h *netem.Host, port uint16, clk clock.Clock) *Sink {
	s := &Sink{clk: clk, seen: make(map[uint64]bool)}
	h.HandleUDP(port, func(src, dst packet.Endpoint, payload []byte) []byte {
		if len(payload) < 8 {
			return nil
		}
		seq := binary.BigEndian.Uint64(payload)
		s.mu.Lock()
		if !s.seen[seq] {
			s.seen[seq] = true
			s.recs = append(s.recs, SeqRecord{Seq: seq, At: s.clk.Now()})
		}
		s.mu.Unlock()
		return nil
	})
	return s
}

// Count returns distinct packets received.
func (s *Sink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns a copy of arrivals in receive order.
func (s *Sink) Records() []SeqRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SeqRecord{}, s.recs...)
}

// Has reports whether seq arrived.
func (s *Sink) Has(seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[seq]
}

// ContinuityReport summarises a CBR run against a sink.
type ContinuityReport struct {
	Sent, Received int
	Lost           int
	// LongestGap is the longest run of consecutive lost sequence numbers.
	LongestGap int
	// GapDuration estimates downtime: the receive-time span around the
	// longest gap (zero when nothing was lost or the gap is at the edges).
	GapDuration time.Duration
}

// Analyze compares sent sequence numbers [0,sent) with the sink's record.
func (s *Sink) Analyze(sent int) ContinuityReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := ContinuityReport{Sent: sent, Received: len(s.recs)}
	rep.Lost = sent - rep.Received
	if rep.Lost < 0 {
		rep.Lost = 0
	}
	// Longest consecutive missing run.
	run, best := 0, 0
	bestEnd := -1
	for seq := 0; seq < sent; seq++ {
		if !s.seen[uint64(seq)] {
			run++
			if run > best {
				best = run
				bestEnd = seq
			}
		} else {
			run = 0
		}
	}
	rep.LongestGap = best
	if best > 0 {
		// Find receive times bracketing the gap.
		var before, after time.Time
		startSeq := bestEnd - best + 1
		bys := make(map[uint64]time.Time, len(s.recs))
		for _, r := range s.recs {
			bys[r.Seq] = r.At
		}
		for seq := startSeq - 1; seq >= 0; seq-- {
			if t, ok := bys[uint64(seq)]; ok {
				before = t
				break
			}
		}
		for seq := bestEnd + 1; seq < sent; seq++ {
			if t, ok := bys[uint64(seq)]; ok {
				after = t
				break
			}
		}
		if !before.IsZero() && !after.IsZero() && after.After(before) {
			rep.GapDuration = after.Sub(before)
		}
	}
	return rep
}

// CBR sends count sequence-stamped packets of size bytes at the given
// packet rate from src to dst, pacing on the wall clock (the dataplane
// delivers asynchronously in real goroutines). It returns the number sent.
func CBR(src *netem.Host, dst packet.Endpoint, srcPort uint16, count, size, pps int) int {
	return CBRFrom(src, dst, srcPort, 0, count, size, pps)
}

// CBRFrom is CBR starting at sequence number start — use it to continue a
// stream across phases (e.g. before and after a roaming handoff) without
// colliding with already-recorded sequence numbers.
func CBRFrom(src *netem.Host, dst packet.Endpoint, srcPort uint16, start uint64, count, size, pps int) int {
	if size < 8 {
		size = 8
	}
	interval := time.Duration(0)
	if pps > 0 {
		interval = time.Second / time.Duration(pps)
	}
	payload := make([]byte, size)
	for i := 0; i < count; i++ {
		binary.BigEndian.PutUint64(payload, start+uint64(i))
		src.SendUDP(dst, srcPort, payload)
		if interval > 0 {
			time.Sleep(interval)
		}
	}
	return count
}

// EchoServer answers every datagram on port with its own payload.
func EchoServer(h *netem.Host, port uint16) {
	h.HandleUDP(port, func(src, dst packet.Endpoint, payload []byte) []byte {
		return payload
	})
}

// DNSServer serves static A records from a zone map on port 53.
func DNSServer(h *netem.Host, zone map[string]packet.IP) {
	h.HandleUDP(53, func(src, dst packet.Endpoint, payload []byte) []byte {
		var q packet.DNSMessage
		if err := q.Decode(payload); err != nil || q.Response || len(q.Questions) == 0 {
			return nil
		}
		var resp *packet.DNSMessage
		if addr, ok := zone[q.Questions[0].Name]; ok {
			resp = packet.AnswerA(&q, 60, addr)
		} else {
			resp = packet.AnswerA(&q, 60) // NXDOMAIN
		}
		wire, err := resp.Append(nil)
		if err != nil {
			return nil
		}
		return wire
	})
}

// DNSQuery sends an A query from the client host and waits for the answer
// (or nil after timeout). srcPort must be unused on the host.
func DNSQuery(h *netem.Host, resolver packet.Endpoint, srcPort uint16, id uint16, name string, timeout time.Duration) *packet.DNSMessage {
	ch := make(chan *packet.DNSMessage, 1)
	h.HandleUDP(srcPort, func(src, dst packet.Endpoint, payload []byte) []byte {
		var m packet.DNSMessage
		if err := m.Decode(payload); err == nil && m.Response && m.ID == id {
			select {
			case ch <- &m:
			default:
			}
		}
		return nil
	})
	wire, err := packet.NewDNSQuery(id, name).Append(nil)
	if err != nil {
		return nil
	}
	h.SendUDP(resolver, srcPort, wire)
	select {
	case m := <-ch:
		return m
	case <-time.After(timeout):
		return nil
	}
}

// HTTPRequestFrame builds the one-segment HTTP request the httpfilter NF
// inspects, sent as a raw TCP frame from the client (no full TCP state
// machine: middlebox NFs operate per segment).
func HTTPRequestFrame(srcMAC, dstMAC packet.MAC, srcIP, dstIP packet.IP, srcPort uint16, host, path string) []byte {
	payload := packet.BuildHTTPRequest("GET", host, path, nil, nil)
	return packet.BuildTCP(srcMAC, dstMAC, srcIP, dstIP, srcPort, 80,
		packet.TCPOptions{Seq: 1, Flags: packet.TCPAck | packet.TCPPsh}, payload)
}

// Percentiles summarises inter-arrival jitter of a sink's records.
func Percentiles(recs []SeqRecord, ps ...float64) []time.Duration {
	if len(recs) < 2 {
		return make([]time.Duration, len(ps))
	}
	gaps := make([]time.Duration, 0, len(recs)-1)
	for i := 1; i < len(recs); i++ {
		gaps = append(gaps, recs[i].At.Sub(recs[i-1].At))
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	out := make([]time.Duration, len(ps))
	for i, p := range ps {
		idx := int(p / 100 * float64(len(gaps)-1))
		out[i] = gaps[idx]
	}
	return out
}
