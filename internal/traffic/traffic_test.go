package traffic

import (
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/netem"
	"gnf/internal/packet"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 1}
	macB = packet.MAC{2, 0, 0, 0, 0, 2}
	ipA  = packet.IP{10, 0, 0, 1}
	ipB  = packet.IP{10, 0, 0, 2}
)

func pair(t *testing.T) (*netem.Host, *netem.Host) {
	t.Helper()
	sw := netem.NewSwitch("sw")
	a1, a2 := netem.NewVethPair("a", "a-sw")
	b1, b2 := netem.NewVethPair("b", "b-sw")
	sw.Attach(1, a2)
	sw.Attach(2, b2)
	ha := netem.NewHost(macA, ipA, a1)
	hb := netem.NewHost(macB, ipB, b1)
	ha.Learn(ipB, macB)
	hb.Learn(ipA, macA)
	t.Cleanup(func() { a1.Close(); b1.Close() })
	return ha, hb
}

func TestCBRAndSink(t *testing.T) {
	ha, hb := pair(t)
	sink := NewSink(hb, 7000, clock.System())
	sent := CBR(ha, packet.Endpoint{Addr: ipB, Port: 7000}, 6000, 50, 64, 0)
	deadline := time.After(2 * time.Second)
	for sink.Count() < sent {
		select {
		case <-deadline:
			t.Fatalf("received %d of %d", sink.Count(), sent)
		case <-time.After(2 * time.Millisecond):
		}
	}
	rep := sink.Analyze(sent)
	if rep.Lost != 0 || rep.LongestGap != 0 || rep.Received != 50 {
		t.Fatalf("report = %+v", rep)
	}
	if !sink.Has(0) || !sink.Has(49) || sink.Has(50) {
		t.Fatal("Has() wrong")
	}
	recs := sink.Records()
	if len(recs) != 50 || recs[0].Seq != 0 {
		t.Fatalf("records = %d", len(recs))
	}
	if ps := Percentiles(recs, 50, 99); len(ps) != 2 {
		t.Fatal("percentiles shape")
	}
}

func TestAnalyzeDetectsGap(t *testing.T) {
	clk := clock.NewVirtual()
	s := &Sink{clk: clk, seen: map[uint64]bool{}}
	record := func(seq uint64, at time.Duration) {
		s.seen[seq] = true
		s.recs = append(s.recs, SeqRecord{Seq: seq, At: clock.Epoch.Add(at)})
	}
	// Received 0,1,2 then 7,8,9 — gap of 4 (seqs 3..6) spanning 400ms.
	record(0, 0)
	record(1, 10*time.Millisecond)
	record(2, 20*time.Millisecond)
	record(7, 420*time.Millisecond)
	record(8, 430*time.Millisecond)
	record(9, 440*time.Millisecond)
	rep := s.Analyze(10)
	if rep.Lost != 4 || rep.LongestGap != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.GapDuration != 400*time.Millisecond {
		t.Fatalf("gap duration = %v", rep.GapDuration)
	}
}

func TestAnalyzeEdgeGaps(t *testing.T) {
	s := &Sink{clk: clock.System(), seen: map[uint64]bool{}}
	// Nothing received at all.
	rep := s.Analyze(5)
	if rep.Lost != 5 || rep.LongestGap != 5 || rep.GapDuration != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestEchoServer(t *testing.T) {
	ha, hb := pair(t)
	EchoServer(hb, 9)
	got := make(chan []byte, 1)
	ha.HandleUDP(1234, func(src, dst packet.Endpoint, payload []byte) []byte {
		got <- payload
		return nil
	})
	ha.SendUDP(packet.Endpoint{Addr: ipB, Port: 9}, 1234, []byte("echo me"))
	select {
	case p := <-got:
		if string(p) != "echo me" {
			t.Fatalf("payload = %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no echo")
	}
}

func TestDNSServerAndQuery(t *testing.T) {
	ha, hb := pair(t)
	DNSServer(hb, map[string]packet.IP{"svc.example": {9, 9, 9, 9}})
	res := DNSQuery(ha, packet.Endpoint{Addr: ipB, Port: 53}, 5353, 42, "svc.example", 2*time.Second)
	if res == nil || len(res.Answers) != 1 || res.Answers[0].A != (packet.IP{9, 9, 9, 9}) {
		t.Fatalf("res = %+v", res)
	}
	// Unknown name: NXDOMAIN.
	res = DNSQuery(ha, packet.Endpoint{Addr: ipB, Port: 53}, 5354, 43, "missing.example", 2*time.Second)
	if res == nil || res.Rcode != packet.DNSRcodeNXDomain {
		t.Fatalf("nxdomain res = %+v", res)
	}
}

func TestHTTPRequestFrame(t *testing.T) {
	frame := HTTPRequestFrame(macA, macB, ipA, ipB, 40000, "example.com", "/index")
	var p packet.Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	if !p.Has(packet.LayerTCP) || p.TCP.DstPort != 80 {
		t.Fatal("not a port-80 TCP frame")
	}
	req, err := packet.ParseHTTPRequest(p.TCP.Payload())
	if err != nil || req.Host != "example.com" {
		t.Fatalf("req = %+v, %v", req, err)
	}
}

func TestCBRPacing(t *testing.T) {
	ha, hb := pair(t)
	sink := NewSink(hb, 7000, clock.System())
	start := time.Now()
	CBR(ha, packet.Endpoint{Addr: ipB, Port: 7000}, 6000, 20, 32, 1000) // 1ms apart
	elapsed := time.Since(start)
	if elapsed < 19*time.Millisecond {
		t.Fatalf("pacing too fast: %v", elapsed)
	}
	deadline := time.After(2 * time.Second)
	for sink.Count() < 20 {
		select {
		case <-deadline:
			t.Fatalf("received %d", sink.Count())
		case <-time.After(2 * time.Millisecond):
		}
	}
}
