package traffic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"gnf/internal/clock"
	"gnf/internal/netem"
	"gnf/internal/packet"
)

// Megascale load harness. The map-based Sink above is fine for a few
// thousand CBR packets; driving 100k–1M concurrent flows needs flat,
// index-addressed per-flow state and pooled frames. LoadGen emits
// sequence- and timestamp-stamped datagrams for every flow in rounds with
// a flow-control window, and Accountant folds arrivals into per-flow
// continuity state: received/lost counts, merged loss windows and a
// virtual-clock latency histogram.

// LoadPayloadLen is the minimum payload: flow ID (4), sequence number (4),
// send timestamp in virtual nanoseconds (8).
const LoadPayloadLen = 16

// DefaultSeqRing is the sequence-number ring size (power of two): load
// sequence numbers live in [0, ring) and wrap, like a hardware counter.
const DefaultSeqRing = 1 << 16

// PutLoadPayload stamps a load header into buf (len >= LoadPayloadLen).
func PutLoadPayload(buf []byte, flow, seq uint32, sentNanos int64) {
	binary.BigEndian.PutUint32(buf[0:4], flow)
	binary.BigEndian.PutUint32(buf[4:8], seq)
	binary.BigEndian.PutUint64(buf[8:16], uint64(sentNanos))
}

// flowAcct is one flow's continuity state: 20 bytes, so a million flows
// cost 20MB flat — no maps, no per-arrival allocation.
type flowAcct struct {
	expect   uint32 // next expected sequence number (mod ring)
	received uint32
	lost     uint32
	windows  uint32 // maximal runs of consecutive lost sequence numbers
	late     uint32 // arrivals behind expect (reordered or duplicated)
}

// Accountant ingests load datagrams and accounts per-flow continuity.
// Sequence arithmetic is modular over the ring, which is what makes a
// loss gap spanning the ring wrap (…, ring-2, ring-1, 0, 1, …) a single
// gap — and therefore a single loss window — rather than a tail gap plus
// a head gap counted separately.
type Accountant struct {
	mask uint32
	clk  clock.Clock

	mu        sync.Mutex
	flows     []flowAcct
	received  uint64
	lost      uint64
	windows   uint64
	late      uint64
	malformed uint64
	// hist buckets latency by bit length of the virtual-nanosecond delta:
	// bucket b holds deltas in [2^(b-1), 2^b).
	hist [65]uint64
}

// NewAccountant tracks flows [0, flows) with sequence numbers modulo
// seqRing (0 = DefaultSeqRing; must be a power of two). Every flow is
// expected to start at sequence 0.
func NewAccountant(flows int, seqRing uint32, clk clock.Clock) *Accountant {
	if seqRing == 0 {
		seqRing = DefaultSeqRing
	}
	if seqRing&(seqRing-1) != 0 {
		panic("traffic: seqRing must be a power of two")
	}
	if clk == nil {
		clk = clock.System()
	}
	return &Accountant{mask: seqRing - 1, clk: clk, flows: make([]flowAcct, flows)}
}

// AttachAny registers the accountant as host's catch-all UDP handler, so
// flows may spread over arbitrary destination ports.
func (a *Accountant) AttachAny(h *netem.Host) {
	h.HandleAnyUDP(func(src, dst packet.Endpoint, payload []byte) []byte {
		a.Observe(payload)
		return nil
	})
}

// Observe ingests one load payload. The bytes are read, never retained —
// safe under the host's copy-on-retain contract.
func (a *Accountant) Observe(payload []byte) {
	a.mu.Lock()
	a.observeLocked(payload)
	a.mu.Unlock()
}

// ObserveBatch ingests a batch of payloads under one lock acquisition.
func (a *Accountant) ObserveBatch(payloads [][]byte) {
	a.mu.Lock()
	for _, p := range payloads {
		a.observeLocked(p)
	}
	a.mu.Unlock()
}

func (a *Accountant) observeLocked(payload []byte) {
	if len(payload) < LoadPayloadLen {
		a.malformed++
		return
	}
	flow := binary.BigEndian.Uint32(payload[0:4])
	seq := binary.BigEndian.Uint32(payload[4:8]) & a.mask
	sent := int64(binary.BigEndian.Uint64(payload[8:16]))
	if int(flow) >= len(a.flows) {
		a.malformed++
		return
	}
	fs := &a.flows[flow]
	switch delta := (seq - fs.expect) & a.mask; {
	case delta == 0: // in order
		fs.received++
		a.received++
	case delta <= a.mask/2:
		// Forward jump: delta consecutive sequence numbers are missing.
		// One arrival reveals the whole run — one window, whether or not
		// the run straddles the ring wrap or an arrival-batch boundary.
		fs.lost += delta
		fs.windows++
		fs.received++
		a.lost += uint64(delta)
		a.windows++
		a.received++
	default:
		// Behind the expectation: a duplicate or a reordered straggler.
		fs.late++
		a.late++
		return
	}
	fs.expect = (seq + 1) & a.mask
	if d := a.clk.Now().UnixNano() - sent; d >= 0 {
		a.hist[bits.Len64(uint64(d))]++
	}
}

// Received returns total accounted arrivals (in-order plus gap-revealing).
func (a *Accountant) Received() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.received
}

// Flow returns a copy of one flow's continuity state.
func (a *Accountant) Flow(i int) (received, lost, windows, late uint32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fs := &a.flows[i]
	return fs.received, fs.lost, fs.windows, fs.late
}

// LoadReport summarises a load run.
type LoadReport struct {
	Flows       int // flows with at least one arrival
	Received    uint64
	Lost        uint64
	LossWindows uint64
	Late        uint64
	Malformed   uint64
	P50, P99    time.Duration // virtual-clock latency (bucket upper bounds)
}

// LossRatio is lost/(lost+received), 0 when idle.
func (r LoadReport) LossRatio() float64 {
	if total := r.Lost + r.Received; total > 0 {
		return float64(r.Lost) / float64(total)
	}
	return 0
}

// String implements fmt.Stringer.
func (r LoadReport) String() string {
	return fmt.Sprintf("flows=%d rx=%d lost=%d windows=%d late=%d loss=%.4f%% p99=%s",
		r.Flows, r.Received, r.Lost, r.LossWindows, r.Late, 100*r.LossRatio(), r.P99)
}

// Report snapshots the accounting.
func (a *Accountant) Report() LoadReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := LoadReport{
		Received:    a.received,
		Lost:        a.lost,
		LossWindows: a.windows,
		Late:        a.late,
		Malformed:   a.malformed,
	}
	for i := range a.flows {
		if a.flows[i].received > 0 {
			r.Flows++
		}
	}
	r.P50 = a.percentileLocked(50)
	r.P99 = a.percentileLocked(99)
	return r
}

// percentileLocked returns the upper bound of the histogram bucket the
// p-th percentile falls into.
func (a *Accountant) percentileLocked(p float64) time.Duration {
	var total uint64
	for _, n := range a.hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for b, n := range a.hist {
		seen += n
		if seen > rank {
			if b == 0 {
				return 0
			}
			return time.Duration(uint64(1) << uint(b))
		}
	}
	return 0
}

// LoadConfig parameterises a LoadGen run.
type LoadConfig struct {
	Flows       int
	Rounds      int    // frames per flow
	PayloadSize int    // 0 = LoadPayloadLen
	SeqRing     uint32 // 0 = DefaultSeqRing
	// Burst frames are emitted between flow-control checks; Window bounds
	// frames in flight. Both must stay under the endpoint queue depth or
	// tail-drop turns the continuity numbers into a queue benchmark.
	Burst  int // 0 = 128
	Window int // 0 = 256
}

// LoadGen emits load datagrams for cfg.Flows flows in rounds: round r
// sends sequence number r (mod ring) on every flow, so all flows are
// concurrently live for the whole run. Frames are built once into a
// template and then stamped per send into pooled buffers — the steady
// state allocates nothing. Flow f sends from srcPort 1024+f%60000 to
// dstPort 5000+f/60000 (the accountant attaches as a catch-all handler),
// giving every flow a distinct five-tuple.
type LoadGen struct {
	ep   *netem.Endpoint
	clk  clock.Clock
	cfg  LoadConfig
	tmpl []byte
	sent uint64
}

// NewLoadGen builds a generator sending from ep (typically a client
// host's endpoint, used directly so the host stack stays out of the hot
// path) with the given addressing.
func NewLoadGen(ep *netem.Endpoint, srcMAC, dstMAC packet.MAC, srcIP, dstIP packet.IP, cfg LoadConfig, clk clock.Clock) *LoadGen {
	if cfg.PayloadSize < LoadPayloadLen {
		cfg.PayloadSize = LoadPayloadLen
	}
	if cfg.SeqRing == 0 {
		cfg.SeqRing = DefaultSeqRing
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 128
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if clk == nil {
		clk = clock.System()
	}
	tmpl := packet.BuildUDP(srcMAC, dstMAC, srcIP, dstIP, 0, 0, make([]byte, cfg.PayloadSize))
	// Zero the UDP checksum ("not computed", legal for UDP/IPv4): ports
	// and payload are stamped per frame and must not dirty the template.
	tmpl[40] = 0
	tmpl[41] = 0
	return &LoadGen{ep: ep, clk: clk, cfg: cfg, tmpl: tmpl}
}

// Sent returns frames emitted so far.
func (g *LoadGen) Sent() uint64 { return g.sent }

// ErrLoadStalled reports a flow-control stall: the receive counter stopped
// advancing while frames were still outstanding.
var ErrLoadStalled = errors.New("traffic: load generator stalled awaiting deliveries")

// Run drives the full load: cfg.Rounds × cfg.Flows frames, flow-controlled
// against recv (typically Accountant.Received) so no queue on the path is
// ever offered more than cfg.Window frames in flight.
func (g *LoadGen) Run(recv func() uint64) error {
	const (
		ethHeader = 14
		ipHeader  = 20
	)
	mask := g.cfg.SeqRing - 1
	batch := make([][]byte, 0, g.cfg.Burst)
	for round := 0; round < g.cfg.Rounds; round++ {
		seq := uint32(round) & mask
		for flow := 0; flow < g.cfg.Flows; flow++ {
			f := packet.BorrowFrame()[:len(g.tmpl)]
			copy(f, g.tmpl)
			srcPort := uint16(1024 + flow%60000)
			dstPort := uint16(5000 + flow/60000)
			binary.BigEndian.PutUint16(f[ethHeader+ipHeader:], srcPort)
			binary.BigEndian.PutUint16(f[ethHeader+ipHeader+2:], dstPort)
			PutLoadPayload(f[ethHeader+ipHeader+8:], uint32(flow), seq, g.clk.Now().UnixNano())
			batch = append(batch, f)
			if len(batch) == g.cfg.Burst {
				if err := g.flush(&batch, recv); err != nil {
					return err
				}
			}
		}
	}
	if err := g.flush(&batch, recv); err != nil {
		return err
	}
	return g.await(recv, g.sent)
}

func (g *LoadGen) flush(batch *[][]byte, recv func() uint64) error {
	g.sent += uint64(g.ep.SendBatch(*batch))
	for i := range *batch {
		(*batch)[i] = nil
	}
	*batch = (*batch)[:0]
	if g.sent < uint64(g.cfg.Window) {
		return nil
	}
	return g.await(recv, g.sent-uint64(g.cfg.Window))
}

// await blocks until recv reaches target, erroring out if it stops
// advancing for several wall-clock seconds (delivery goroutines run on
// the wall even when the simulation clock is virtual).
func (g *LoadGen) await(recv func() uint64, target uint64) error {
	last, lastChange := recv(), time.Now()
	for last < target {
		time.Sleep(100 * time.Microsecond)
		cur := recv()
		if cur != last {
			last, lastChange = cur, time.Now()
			continue
		}
		if time.Since(lastChange) > 5*time.Second {
			return fmt.Errorf("%w: %d/%d delivered", ErrLoadStalled, cur, target)
		}
	}
	return nil
}
