package traffic

import (
	"errors"
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/netem"
	"gnf/internal/packet"
)

// pl builds a load payload for accountant-only tests.
func pl(flow, seq uint32, sent int64) []byte {
	buf := make([]byte, LoadPayloadLen)
	PutLoadPayload(buf, flow, seq, sent)
	return buf
}

func TestAccountantInOrder(t *testing.T) {
	clk := clock.NewVirtual()
	a := NewAccountant(2, 0, clk)
	for seq := uint32(0); seq < 10; seq++ {
		a.Observe(pl(0, seq, clk.Now().UnixNano()))
		a.Observe(pl(1, seq, clk.Now().UnixNano()))
	}
	r := a.Report()
	if r.Received != 20 || r.Lost != 0 || r.LossWindows != 0 || r.Late != 0 || r.Flows != 2 {
		t.Fatalf("report = %+v", r)
	}
	if r.LossRatio() != 0 {
		t.Fatalf("loss ratio = %v", r.LossRatio())
	}
}

func TestAccountantGapIsOneWindow(t *testing.T) {
	a := NewAccountant(1, 0, clock.NewVirtual())
	for _, seq := range []uint32{0, 1, 2, 7, 8, 9} {
		a.Observe(pl(0, seq, 0))
	}
	rx, lost, windows, late := a.Flow(0)
	if rx != 6 || lost != 4 || windows != 1 || late != 0 {
		t.Fatalf("flow = rx=%d lost=%d windows=%d late=%d", rx, lost, windows, late)
	}
}

func TestAccountantTwoGapsTwoWindows(t *testing.T) {
	a := NewAccountant(1, 0, clock.NewVirtual())
	for _, seq := range []uint32{0, 2, 3, 6} {
		a.Observe(pl(0, seq, 0))
	}
	_, lost, windows, _ := a.Flow(0)
	if lost != 3 || windows != 2 {
		t.Fatalf("lost=%d windows=%d, want 3 and 2", lost, windows)
	}
}

// TestAccountantRingWrapGapIsOneWindow pins the satellite contract: a loss
// run straddling the sequence-ring wrap (…, ring-2, ring-1, 0, 1, …) is a
// single continuity event. A naive accountant that splits accounting at
// the wrap ([expect, ring) plus [0, seq)) would report two windows here.
func TestAccountantRingWrapGapIsOneWindow(t *testing.T) {
	const ring = 16
	a := NewAccountant(1, ring, clock.NewVirtual())
	for seq := uint32(0); seq < 14; seq++ { // expect is now 14
		a.Observe(pl(0, seq, 0))
	}
	a.Observe(pl(0, 2, 0)) // 14, 15 lost before the wrap; 0, 1 after it
	rx, lost, windows, late := a.Flow(0)
	if rx != 15 || lost != 4 || windows != 1 || late != 0 {
		t.Fatalf("flow = rx=%d lost=%d windows=%d late=%d, want one window of 4", rx, lost, windows, late)
	}
	// Continuing in order after the wrap opens no further windows.
	for _, seq := range []uint32{3, 4, 5} {
		a.Observe(pl(0, seq, 0))
	}
	if _, lost, windows, _ = a.Flow(0); lost != 4 || windows != 1 {
		t.Fatalf("after resume lost=%d windows=%d", lost, windows)
	}
}

// TestAccountantBatchBoundaryGap pins the same contract for a gap that is
// split across two ObserveBatch calls: accounting is per flow, not per
// batch, so the boundary is invisible.
func TestAccountantBatchBoundaryGap(t *testing.T) {
	a := NewAccountant(1, 0, clock.NewVirtual())
	a.ObserveBatch([][]byte{pl(0, 0, 0), pl(0, 1, 0)})
	a.ObserveBatch([][]byte{pl(0, 6, 0), pl(0, 7, 0)})
	_, lost, windows, _ := a.Flow(0)
	if lost != 4 || windows != 1 {
		t.Fatalf("lost=%d windows=%d, want one window of 4", lost, windows)
	}
}

func TestAccountantLateAndDuplicate(t *testing.T) {
	a := NewAccountant(1, 0, clock.NewVirtual())
	for _, seq := range []uint32{0, 1, 2} {
		a.Observe(pl(0, seq, 0))
	}
	a.Observe(pl(0, 1, 0)) // duplicate
	a.Observe(pl(0, 2, 0)) // straggler behind expect
	rx, lost, _, late := a.Flow(0)
	if rx != 3 || lost != 0 || late != 2 {
		t.Fatalf("rx=%d lost=%d late=%d", rx, lost, late)
	}
	if r := a.Report(); r.Received != 3 || r.Late != 2 {
		t.Fatalf("report = %+v", r)
	}
}

func TestAccountantMalformed(t *testing.T) {
	a := NewAccountant(1, 0, clock.NewVirtual())
	a.Observe([]byte{1, 2, 3})            // short
	a.Observe(pl(9, 0, 0))                // flow out of range
	a.ObserveBatch([][]byte{pl(0, 0, 0)}) // valid
	r := a.Report()
	if r.Malformed != 2 || r.Received != 1 {
		t.Fatalf("report = %+v", r)
	}
}

func TestAccountantLatencyPercentiles(t *testing.T) {
	clk := clock.NewVirtual()
	a := NewAccountant(1, 0, clk)
	base := clk.Now().UnixNano()
	for seq := uint32(0); seq < 100; seq++ {
		d := int64(time.Millisecond)
		if seq >= 99 {
			d = int64(time.Second)
		}
		a.Observe(pl(0, seq, base-d))
	}
	r := a.Report()
	if r.P50 < time.Millisecond || r.P50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v", r.P50)
	}
	if r.P99 < time.Second || r.P99 > 4*time.Second {
		t.Fatalf("p99 = %v", r.P99)
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestNewAccountantBadRing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two ring")
		}
	}()
	NewAccountant(1, 12, clock.NewVirtual())
}

// TestLoadGenEndToEnd drives a small many-flow load through a real switch
// into an accountant sink and expects perfect continuity: flow control
// keeps offered load under every queue depth, so nothing may be lost.
func TestLoadGenEndToEnd(t *testing.T) {
	clk := clock.NewVirtual()
	sw := netem.NewSwitch("sw")
	a1, a2 := netem.NewVethPair("gen", "gen-sw")
	b1, b2 := netem.NewVethPair("sink", "sink-sw")
	sw.Attach(1, a2)
	sw.Attach(2, b2)
	t.Cleanup(func() { a1.Close(); b1.Close() })
	sink := netem.NewHost(macB, ipB, b1)
	sink.Learn(ipA, macA)

	const flows, rounds = 1000, 3
	acct := NewAccountant(flows, 0, clk)
	acct.AttachAny(sink)
	// Prime the FDB so load frames unicast instead of flooding.
	if err := sink.SendUDP(packet.Endpoint{Addr: ipA, Port: 9}, 9, []byte("prime")); err != nil {
		t.Fatal(err)
	}

	gen := NewLoadGen(a1, macA, macB, ipA, ipB, LoadConfig{Flows: flows, Rounds: rounds}, clk)
	if err := gen.Run(acct.Received); err != nil {
		t.Fatal(err)
	}
	r := acct.Report()
	if gen.Sent() != flows*rounds {
		t.Fatalf("sent %d of %d", gen.Sent(), flows*rounds)
	}
	if r.Flows != flows || r.Received != flows*rounds || r.Lost != 0 || r.LossWindows != 0 || r.Malformed != 0 {
		t.Fatalf("report = %v", r)
	}
}

func TestLoadGenStallError(t *testing.T) {
	g := &LoadGen{}
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- g.await(func() uint64 { return 0 }, 1) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrLoadStalled) {
			t.Fatalf("err = %v", err)
		}
		if time.Since(start) < 4*time.Second {
			t.Fatal("stall detection fired too early")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("await never returned")
	}
}
