package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0xaa}
	macB = MAC{0x02, 0, 0, 0, 0, 0xbb}
	ipA  = IP{10, 0, 0, 1}
	ipB  = IP{10, 0, 0, 2}
)

func TestBuildUDPRoundTrip(t *testing.T) {
	payload := []byte("hello edge")
	frame := BuildUDP(macA, macB, ipA, ipB, 5353, 53, payload)

	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Has(LayerEthernet) || !p.Has(LayerIPv4) || !p.Has(LayerUDP) {
		t.Fatalf("layers = %v", p.Layers())
	}
	if p.Eth.Src != macA || p.Eth.Dst != macB || p.Eth.EtherType != EtherTypeIPv4 {
		t.Fatalf("ethernet = %+v", p.Eth)
	}
	if p.IP.Src != ipA || p.IP.Dst != ipB || p.IP.Proto != ProtoUDP {
		t.Fatalf("ip = %+v", p.IP)
	}
	if !p.IP.ChecksumOK() {
		t.Fatal("IP checksum invalid")
	}
	if p.UDP.SrcPort != 5353 || p.UDP.DstPort != 53 {
		t.Fatalf("udp ports = %d->%d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	if !bytes.Equal(p.UDP.Payload(), payload) {
		t.Fatalf("payload = %q", p.UDP.Payload())
	}
	if !bytes.Equal(p.TransportPayload(), payload) {
		t.Fatal("TransportPayload mismatch")
	}
	// Verify the UDP checksum is valid by recomputation over the segment.
	seg := p.IP.Payload()
	if ck := transportChecksum(ipA, ipB, ProtoUDP, seg); ck != 0 && ck != 0xffff {
		t.Fatalf("udp checksum residue = %#x", ck)
	}
	ft, ok := p.FiveTuple()
	if !ok || ft.Src.Port != 5353 || ft.Dst.Port != 53 || ft.Proto != ProtoUDP {
		t.Fatalf("FiveTuple = %v, %v", ft, ok)
	}
}

func TestBuildTCPRoundTrip(t *testing.T) {
	payload := []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	frame := BuildTCP(macA, macB, ipA, ipB, 43210, 80, TCPOptions{Seq: 7, Ack: 9, Flags: TCPAck | TCPPsh}, payload)
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Has(LayerTCP) {
		t.Fatalf("layers = %v", p.Layers())
	}
	tcp := p.TCP
	if tcp.SrcPort != 43210 || tcp.DstPort != 80 || tcp.Seq != 7 || tcp.Ack != 9 {
		t.Fatalf("tcp = %+v", tcp)
	}
	if !tcp.HasFlag(TCPAck) || !tcp.HasFlag(TCPPsh) || tcp.HasFlag(TCPSyn) {
		t.Fatalf("flags = %#x", tcp.Flags)
	}
	if !bytes.Equal(tcp.Payload(), payload) {
		t.Fatal("payload mismatch")
	}
	if ck := transportChecksum(ipA, ipB, ProtoTCP, p.IP.Payload()); ck != 0 {
		t.Fatalf("tcp checksum residue = %#x", ck)
	}
}

func TestBuildICMPEchoRoundTrip(t *testing.T) {
	frame := BuildICMPEcho(macA, macB, ipA, ipB, ICMPEchoRequest, 42, 7, []byte("ping"))
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Has(LayerICMP) {
		t.Fatalf("layers = %v", p.Layers())
	}
	ic := p.ICMP
	if ic.Type != ICMPEchoRequest || ic.ID != 42 || ic.Seq != 7 || !bytes.Equal(ic.Payload(), []byte("ping")) {
		t.Fatalf("icmp = %+v", ic)
	}
	if Checksum(p.IP.Payload()) != 0 {
		t.Fatal("icmp checksum residue")
	}
	ft, ok := p.FiveTuple()
	if !ok || ft.Proto != ProtoICMP || ft.Src.Port != 0 {
		t.Fatalf("icmp FiveTuple = %v %v", ft, ok)
	}
}

func TestBuildARPRoundTrip(t *testing.T) {
	frame := BuildARP(ARPRequest, macA, ipA, MAC{}, ipB)
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Has(LayerARP) {
		t.Fatalf("layers = %v", p.Layers())
	}
	if p.Eth.Dst != BroadcastMAC {
		t.Fatal("ARP request not broadcast")
	}
	if p.ARP.Op != ARPRequest || p.ARP.SenderIP != ipA || p.ARP.TargetIP != ipB {
		t.Fatalf("arp = %+v", p.ARP)
	}
	if _, ok := p.FiveTuple(); ok {
		t.Fatal("ARP produced a five-tuple")
	}

	reply := BuildARP(ARPReply, macB, ipB, macA, ipA)
	if err := p.Parse(reply); err != nil {
		t.Fatalf("Parse reply: %v", err)
	}
	if p.Eth.Dst != macA || p.ARP.Op != ARPReply {
		t.Fatalf("reply eth=%v op=%d", p.Eth.Dst, p.ARP.Op)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var eth Ethernet
	if err := eth.Decode(make([]byte, 13)); err != ErrTruncated {
		t.Fatalf("eth: %v", err)
	}
	var ip IPv4
	if err := ip.Decode(make([]byte, 19)); err != ErrTruncated {
		t.Fatalf("ip: %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // version 6
	if err := ip.Decode(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	bad[0] = 0x43 // IHL 3 words < 5
	if err := ip.Decode(bad); err != ErrBadHeader {
		t.Fatalf("ihl: %v", err)
	}
	var udp UDP
	if err := udp.Decode(make([]byte, 7)); err != ErrTruncated {
		t.Fatalf("udp: %v", err)
	}
	var tcp TCP
	if err := tcp.Decode(make([]byte, 19)); err != ErrTruncated {
		t.Fatalf("tcp: %v", err)
	}
	var ic ICMP
	if err := ic.Decode(make([]byte, 7)); err != ErrTruncated {
		t.Fatalf("icmp: %v", err)
	}
	var arp ARP
	if err := arp.Decode(make([]byte, 27)); err != ErrTruncated {
		t.Fatalf("arp: %v", err)
	}
}

func TestIPv4TotalLenBoundsPayload(t *testing.T) {
	frame := BuildUDP(macA, macB, ipA, ipB, 1, 2, []byte("abcd"))
	// Append trailing garbage (e.g. Ethernet padding) — payload must stay
	// bounded by TotalLen.
	frame = append(frame, 0xff, 0xff, 0xff)
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := p.UDP.Payload(); !bytes.Equal(got, []byte("abcd")) {
		t.Fatalf("payload leaked padding: %q", got)
	}
}

func TestParserUnknownEtherType(t *testing.T) {
	eth := Ethernet{Dst: macB, Src: macA, EtherType: 0x86dd} // IPv6
	frame := eth.AppendHeader(nil)
	frame = append(frame, 1, 2, 3)
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Has(LayerPayload) || p.Has(LayerIPv4) {
		t.Fatalf("layers = %v", p.Layers())
	}
	if p.TransportPayload() != nil {
		t.Fatal("unexpected transport payload")
	}
}

// Property: build->parse is the identity on addresses, ports and payload
// for arbitrary UDP payloads.
func TestUDPBuildParseIdentityProperty(t *testing.T) {
	f := func(sp, dp uint16, sa, da [4]byte, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		frame := BuildUDP(macA, macB, IP(sa), IP(da), sp, dp, payload)
		var p Parser
		if err := p.Parse(frame); err != nil {
			return false
		}
		return p.IP.Src == IP(sa) && p.IP.Dst == IP(da) &&
			p.UDP.SrcPort == sp && p.UDP.DstPort == dp &&
			bytes.Equal(p.UDP.Payload(), payload) && p.IP.ChecksumOK()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TCP build->parse identity.
func TestTCPBuildParseIdentityProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		frame := BuildTCP(macA, macB, ipA, ipB, sp, dp, TCPOptions{Seq: seq, Ack: ack, Flags: flags}, payload)
		var p Parser
		if err := p.Parse(frame); err != nil {
			return false
		}
		return p.TCP.SrcPort == sp && p.TCP.DstPort == dp &&
			p.TCP.Seq == seq && p.TCP.Ack == ack && p.TCP.Flags == flags &&
			bytes.Equal(p.TCP.Payload(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteNATAndChecksums(t *testing.T) {
	frame := BuildUDP(macA, macB, ipA, ipB, 1234, 53, []byte("query"))
	newSrc := IP{192, 168, 1, 100}
	newPort := uint16(40001)
	rw := Rewrite{SrcIP: &newSrc, SrcPort: &newPort, DecrementTTL: true}
	if err := rw.Apply(frame); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.IP.Src != newSrc || p.UDP.SrcPort != newPort {
		t.Fatalf("rewrite ignored: %v %d", p.IP.Src, p.UDP.SrcPort)
	}
	if p.IP.TTL != 63 {
		t.Fatalf("TTL = %d, want 63", p.IP.TTL)
	}
	if !p.IP.ChecksumOK() {
		t.Fatal("IP checksum broken by rewrite")
	}
	if ck := transportChecksum(newSrc, ipB, ProtoUDP, p.IP.Payload()); ck != 0 && ck != 0xffff {
		t.Fatalf("udp checksum residue after rewrite = %#x", ck)
	}
}

func TestRewriteTCP(t *testing.T) {
	frame := BuildTCP(macA, macB, ipA, ipB, 1000, 80, TCPOptions{Flags: TCPSyn}, nil)
	newDst := IP{172, 16, 0, 9}
	newPort := uint16(8080)
	newMAC := MAC{2, 2, 2, 2, 2, 2}
	rw := Rewrite{DstIP: &newDst, DstPort: &newPort, DstMAC: &newMAC}
	if err := rw.Apply(frame); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Eth.Dst != newMAC || p.IP.Dst != newDst || p.TCP.DstPort != 8080 {
		t.Fatal("TCP rewrite incomplete")
	}
	if ck := transportChecksum(ipA, newDst, ProtoTCP, p.IP.Payload()); ck != 0 {
		t.Fatalf("tcp checksum residue = %#x", ck)
	}
}

func TestRewriteOnARPFrame(t *testing.T) {
	frame := BuildARP(ARPRequest, macA, ipA, MAC{}, ipB)
	newIP := IP{1, 1, 1, 1}
	if err := (Rewrite{SrcIP: &newIP}).Apply(frame); err != ErrBadHeader {
		t.Fatalf("expected ErrBadHeader, got %v", err)
	}
	// MAC-only rewrite is fine on ARP frames.
	m := MAC{9, 9, 9, 9, 9, 9}
	if err := (Rewrite{SrcMAC: &m}).Apply(frame); err != nil {
		t.Fatalf("MAC rewrite on ARP: %v", err)
	}
}

func TestReplaceUDPPayload(t *testing.T) {
	frame := BuildUDP(macA, macB, ipA, ipB, 53, 5353, []byte("original"))
	out, err := ReplaceUDPPayload(frame, []byte("replaced-with-longer-payload"))
	if err != nil {
		t.Fatalf("ReplaceUDPPayload: %v", err)
	}
	var p Parser
	if err := p.Parse(out); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if string(p.UDP.Payload()) != "replaced-with-longer-payload" {
		t.Fatalf("payload = %q", p.UDP.Payload())
	}
	if p.UDP.SrcPort != 53 || p.IP.Dst != ipB {
		t.Fatal("addressing lost in replacement")
	}
	if _, err := ReplaceUDPPayload(BuildARP(ARPRequest, macA, ipA, MAC{}, ipB), nil); err == nil {
		t.Fatal("ReplaceUDPPayload accepted ARP frame")
	}
	tcpf := BuildTCP(macA, macB, ipA, ipB, 1, 2, TCPOptions{}, nil)
	if _, err := ReplaceUDPPayload(tcpf, nil); err == nil {
		t.Fatal("ReplaceUDPPayload accepted TCP frame")
	}
}
