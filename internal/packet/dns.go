package packet

import (
	"encoding/binary"
	"errors"
	"strings"
)

// DNS codec — enough of RFC 1035 for the GNF DNS NFs: header, QD/AN
// sections, A/CNAME records, compression-pointer decoding (serialization is
// uncompressed, which every resolver accepts).

// DNS record types and classes used by the NFs.
const (
	DNSTypeA     uint16 = 1
	DNSTypeCNAME uint16 = 5
	DNSClassIN   uint16 = 1
)

// DNS response codes.
const (
	DNSRcodeOK       uint8 = 0
	DNSRcodeNXDomain uint8 = 3
	DNSRcodeRefused  uint8 = 5
)

// DNS decode errors.
var (
	ErrDNSTruncated = errors.New("dns: truncated message")
	ErrDNSBadName   = errors.New("dns: malformed name")
	ErrDNSLoop      = errors.New("dns: compression loop")
)

// DNSQuestion is one QD entry.
type DNSQuestion struct {
	Name  string // fully qualified, lowercase, no trailing dot
	Type  uint16
	Class uint16
}

// DNSRecord is one resource record (AN section; A and CNAME payloads are
// understood, others keep raw RData).
type DNSRecord struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	A     IP     // set for Type A
	CNAME string // set for Type CNAME
	RData []byte // raw bytes for other types
}

// DNSMessage is a DNS query or response.
type DNSMessage struct {
	ID        uint16
	Response  bool
	Opcode    uint8
	Authority bool
	Recursion bool
	Rcode     uint8
	Questions []DNSQuestion
	Answers   []DNSRecord
}

// Decode parses a DNS message from a UDP payload.
func (m *DNSMessage) Decode(b []byte) error {
	if len(b) < 12 {
		return ErrDNSTruncated
	}
	m.ID = binary.BigEndian.Uint16(b[0:2])
	flags := binary.BigEndian.Uint16(b[2:4])
	m.Response = flags&0x8000 != 0
	m.Opcode = uint8(flags >> 11 & 0xf)
	m.Authority = flags&0x0400 != 0
	m.Recursion = flags&0x0100 != 0
	m.Rcode = uint8(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(b[4:6]))
	an := int(binary.BigEndian.Uint16(b[6:8]))
	// NS and AR counts are parsed but their sections are skipped.
	off := 12
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	for i := 0; i < qd; i++ {
		name, n, err := decodeName(b, off)
		if err != nil {
			return err
		}
		off = n
		if off+4 > len(b) {
			return ErrDNSTruncated
		}
		m.Questions = append(m.Questions, DNSQuestion{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[off:]),
			Class: binary.BigEndian.Uint16(b[off+2:]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := decodeName(b, off)
		if err != nil {
			return err
		}
		off = n
		if off+10 > len(b) {
			return ErrDNSTruncated
		}
		rec := DNSRecord{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[off:]),
			Class: binary.BigEndian.Uint16(b[off+2:]),
			TTL:   binary.BigEndian.Uint32(b[off+4:]),
		}
		rdlen := int(binary.BigEndian.Uint16(b[off+8:]))
		off += 10
		if off+rdlen > len(b) {
			return ErrDNSTruncated
		}
		rdata := b[off : off+rdlen]
		switch rec.Type {
		case DNSTypeA:
			if rdlen != 4 {
				return ErrDNSTruncated
			}
			copy(rec.A[:], rdata)
		case DNSTypeCNAME:
			cname, _, err := decodeName(b, off)
			if err != nil {
				return err
			}
			rec.CNAME = cname
		default:
			rec.RData = append([]byte(nil), rdata...)
		}
		off += rdlen
		m.Answers = append(m.Answers, rec)
	}
	return nil
}

// decodeName reads a possibly-compressed name starting at off; it returns
// the lowercase dotted name and the offset just past the name in the
// original stream.
func decodeName(b []byte, off int) (string, int, error) {
	var sb strings.Builder
	end := -1 // offset after name in original stream; set at first pointer
	hops := 0
	for {
		if off >= len(b) {
			return "", 0, ErrDNSTruncated
		}
		l := int(b[off])
		switch {
		case l == 0:
			if end == -1 {
				end = off + 1
			}
			return strings.ToLower(sb.String()), end, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(b) {
				return "", 0, ErrDNSTruncated
			}
			if end == -1 {
				end = off + 2
			}
			ptr := (l&0x3f)<<8 | int(b[off+1])
			if ptr >= off {
				return "", 0, ErrDNSLoop
			}
			off = ptr
			hops++
			if hops > 32 {
				return "", 0, ErrDNSLoop
			}
		case l > 63:
			return "", 0, ErrDNSBadName
		default:
			if off+1+l > len(b) {
				return "", 0, ErrDNSTruncated
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(b[off+1 : off+1+l])
			off += 1 + l
			if sb.Len() > 255 {
				return "", 0, ErrDNSBadName
			}
		}
	}
}

// appendName serializes a dotted name uncompressed.
func appendName(dst []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, ErrDNSBadName
			}
			dst = append(dst, byte(len(label)))
			dst = append(dst, label...)
		}
	}
	return append(dst, 0), nil
}

// Append serializes the message (uncompressed names).
func (m *DNSMessage) Append(dst []byte) ([]byte, error) {
	dst = binary.BigEndian.AppendUint16(dst, m.ID)
	var flags uint16
	if m.Response {
		flags |= 0x8000
	}
	flags |= uint16(m.Opcode&0xf) << 11
	if m.Authority {
		flags |= 0x0400
	}
	if m.Recursion {
		flags |= 0x0100
	}
	flags |= uint16(m.Rcode & 0xf)
	dst = binary.BigEndian.AppendUint16(dst, flags)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Questions)))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Answers)))
	dst = binary.BigEndian.AppendUint16(dst, 0) // NS
	dst = binary.BigEndian.AppendUint16(dst, 0) // AR
	var err error
	for _, q := range m.Questions {
		if dst, err = appendName(dst, q.Name); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint16(dst, q.Type)
		dst = binary.BigEndian.AppendUint16(dst, q.Class)
	}
	for _, r := range m.Answers {
		if dst, err = appendName(dst, r.Name); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint16(dst, r.Type)
		dst = binary.BigEndian.AppendUint16(dst, r.Class)
		dst = binary.BigEndian.AppendUint32(dst, r.TTL)
		switch r.Type {
		case DNSTypeA:
			dst = binary.BigEndian.AppendUint16(dst, 4)
			dst = append(dst, r.A[:]...)
		case DNSTypeCNAME:
			var nameBytes []byte
			if nameBytes, err = appendName(nil, r.CNAME); err != nil {
				return nil, err
			}
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(nameBytes)))
			dst = append(dst, nameBytes...)
		default:
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.RData)))
			dst = append(dst, r.RData...)
		}
	}
	return dst, nil
}

// NewDNSQuery builds a standard recursive A query.
func NewDNSQuery(id uint16, name string) *DNSMessage {
	return &DNSMessage{
		ID:        id,
		Recursion: true,
		Questions: []DNSQuestion{{Name: strings.ToLower(name), Type: DNSTypeA, Class: DNSClassIN}},
	}
}

// AnswerA builds a response to q answering with the given A records.
func AnswerA(q *DNSMessage, ttl uint32, addrs ...IP) *DNSMessage {
	resp := &DNSMessage{
		ID:        q.ID,
		Response:  true,
		Recursion: q.Recursion,
		Questions: append([]DNSQuestion(nil), q.Questions...),
	}
	if len(q.Questions) == 0 {
		resp.Rcode = DNSRcodeRefused
		return resp
	}
	name := q.Questions[0].Name
	if len(addrs) == 0 {
		resp.Rcode = DNSRcodeNXDomain
		return resp
	}
	for _, a := range addrs {
		resp.Answers = append(resp.Answers, DNSRecord{
			Name: name, Type: DNSTypeA, Class: DNSClassIN, TTL: ttl, A: a,
		})
	}
	return resp
}
