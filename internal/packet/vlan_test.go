package packet_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"gnf/internal/packet"
)

var (
	vlanSrcMAC = packet.MAC{2, 0, 0, 0, 0, 1}
	vlanDstMAC = packet.MAC{2, 0, 0, 0, 0, 2}
	vlanSrcIP  = packet.IP{10, 0, 0, 1}
	vlanDstIP  = packet.IP{10, 9, 0, 1}
)

func TestVLANTagDecode(t *testing.T) {
	plain := packet.BuildUDP(vlanSrcMAC, vlanDstMAC, vlanSrcIP, vlanDstIP, 6000, 7000, []byte("hi"))
	tagged := packet.TagVLAN(plain, 5, 42)
	if len(tagged) != len(plain)+packet.VLANTagLen {
		t.Fatalf("tagged length = %d", len(tagged))
	}

	var eth packet.Ethernet
	if err := eth.Decode(tagged); err != nil {
		t.Fatal(err)
	}
	if !eth.Tagged || eth.VID != 42 || eth.PCP != 5 {
		t.Fatalf("tag fields = %+v", eth)
	}
	// The inner EtherType shows through the tag.
	if eth.EtherType != packet.EtherTypeIPv4 {
		t.Fatalf("EtherType = %#x", eth.EtherType)
	}
	if vid, ok := packet.FrameVID(tagged); !ok || vid != 42 {
		t.Fatalf("FrameVID = %d %v", vid, ok)
	}
	if _, ok := packet.FrameVID(plain); ok {
		t.Fatal("untagged frame reported a VID")
	}
}

func TestVLANParserSeesThroughTag(t *testing.T) {
	plain := packet.BuildUDP(vlanSrcMAC, vlanDstMAC, vlanSrcIP, vlanDstIP, 6000, 7000, []byte("payload"))
	tagged := packet.TagVLAN(plain, 0, 100)

	var p packet.Parser
	if err := p.Parse(tagged); err != nil {
		t.Fatal(err)
	}
	if !p.Has(packet.LayerIPv4) || !p.Has(packet.LayerUDP) {
		t.Fatalf("layers missing through the tag")
	}
	if p.IP.Src != vlanSrcIP || p.UDP.DstPort != 7000 {
		t.Fatalf("inner fields wrong: %+v %+v", p.IP, p.UDP)
	}
	if string(p.UDP.Payload()) != "payload" {
		t.Fatalf("payload = %q", p.UDP.Payload())
	}
}

func TestVLANQinQ(t *testing.T) {
	plain := packet.BuildUDP(vlanSrcMAC, vlanDstMAC, vlanSrcIP, vlanDstIP, 6000, 7000, nil)
	double := packet.TagVLAN(packet.TagVLAN(plain, 1, 10), 3, 200) // provider tag outermost

	var eth packet.Ethernet
	if err := eth.Decode(double); err != nil {
		t.Fatal(err)
	}
	// Outermost (provider) tag is reported; the inner payload still
	// parses.
	if eth.VID != 200 || eth.PCP != 3 {
		t.Fatalf("outer tag = %+v", eth)
	}
	if eth.EtherType != packet.EtherTypeIPv4 {
		t.Fatalf("EtherType = %#x", eth.EtherType)
	}
	// Stripping one tag reveals the customer tag.
	inner := packet.UntagVLAN(double)
	if vid, ok := packet.FrameVID(inner); !ok || vid != 10 {
		t.Fatalf("inner VID = %d %v", vid, ok)
	}
}

func TestVLANTruncatedTag(t *testing.T) {
	plain := packet.BuildUDP(vlanSrcMAC, vlanDstMAC, vlanSrcIP, vlanDstIP, 6000, 7000, nil)
	tagged := packet.TagVLAN(plain, 0, 7)
	var eth packet.Ethernet
	if err := eth.Decode(tagged[:15]); err == nil {
		t.Fatal("truncated tag decoded")
	}
}

// Property: Untag(Tag(f)) == f for any frame long enough to be Ethernet,
// and the VID survives the round trip masked to 12 bits.
func TestVLANTagUntagRoundTripProperty(t *testing.T) {
	prop := func(payload []byte, pcp uint8, vid uint16) bool {
		frame := packet.BuildUDP(vlanSrcMAC, vlanDstMAC, vlanSrcIP, vlanDstIP, 6000, 7000, payload)
		tagged := packet.TagVLAN(frame, pcp, vid)
		gotVID, ok := packet.FrameVID(tagged)
		if !ok || gotVID != vid&0x0fff {
			return false
		}
		return bytes.Equal(packet.UntagVLAN(tagged), frame)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: tagging never corrupts the inner packet — the parser extracts
// identical L3/L4 fields from tagged and untagged forms.
func TestVLANTransparencyProperty(t *testing.T) {
	prop := func(srcPort, dstPort uint16, vid uint16, payload []byte) bool {
		if srcPort == 0 || dstPort == 0 {
			return true
		}
		frame := packet.BuildUDP(vlanSrcMAC, vlanDstMAC, vlanSrcIP, vlanDstIP, srcPort, dstPort, payload)
		var plain, tagged packet.Parser
		if err := plain.Parse(frame); err != nil {
			return false
		}
		if err := tagged.Parse(packet.TagVLAN(frame, 0, vid)); err != nil {
			return false
		}
		return plain.UDP.SrcPort == tagged.UDP.SrcPort &&
			plain.UDP.DstPort == tagged.UDP.DstPort &&
			plain.IP.Src == tagged.IP.Src &&
			bytes.Equal(plain.UDP.Payload(), tagged.UDP.Payload())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
