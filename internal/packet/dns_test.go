package packet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDNSQueryRoundTrip(t *testing.T) {
	q := NewDNSQuery(0x1234, "WWW.Example.COM")
	wire, err := q.Append(nil)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	var m DNSMessage
	if err := m.Decode(wire); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if m.ID != 0x1234 || m.Response || !m.Recursion {
		t.Fatalf("header = %+v", m)
	}
	if len(m.Questions) != 1 || m.Questions[0].Name != "www.example.com" ||
		m.Questions[0].Type != DNSTypeA || m.Questions[0].Class != DNSClassIN {
		t.Fatalf("questions = %+v", m.Questions)
	}
}

func TestDNSAnswerRoundTrip(t *testing.T) {
	q := NewDNSQuery(7, "cache.edge.gnf")
	resp := AnswerA(q, 300, IP{10, 1, 1, 1}, IP{10, 1, 1, 2})
	wire, err := resp.Append(nil)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	var m DNSMessage
	if err := m.Decode(wire); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !m.Response || m.Rcode != DNSRcodeOK || m.ID != 7 {
		t.Fatalf("header = %+v", m)
	}
	if len(m.Answers) != 2 {
		t.Fatalf("answers = %+v", m.Answers)
	}
	if m.Answers[0].A != (IP{10, 1, 1, 1}) || m.Answers[1].A != (IP{10, 1, 1, 2}) {
		t.Fatalf("A records = %v %v", m.Answers[0].A, m.Answers[1].A)
	}
	if m.Answers[0].TTL != 300 || m.Answers[0].Name != "cache.edge.gnf" {
		t.Fatalf("answer meta = %+v", m.Answers[0])
	}
}

func TestDNSNXDomainAndRefused(t *testing.T) {
	q := NewDNSQuery(9, "missing.example")
	resp := AnswerA(q, 60)
	if resp.Rcode != DNSRcodeNXDomain || len(resp.Answers) != 0 {
		t.Fatalf("nxdomain = %+v", resp)
	}
	empty := &DNSMessage{ID: 1}
	if r := AnswerA(empty, 60, IP{1, 2, 3, 4}); r.Rcode != DNSRcodeRefused {
		t.Fatalf("refused = %+v", r)
	}
}

func TestDNSCNAMERoundTrip(t *testing.T) {
	m := &DNSMessage{
		ID:       3,
		Response: true,
		Answers: []DNSRecord{
			{Name: "alias.example", Type: DNSTypeCNAME, Class: DNSClassIN, TTL: 30, CNAME: "real.example"},
			{Name: "real.example", Type: DNSTypeA, Class: DNSClassIN, TTL: 30, A: IP{9, 9, 9, 9}},
		},
	}
	wire, err := m.Append(nil)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	var out DNSMessage
	if err := out.Decode(wire); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Answers[0].CNAME != "real.example" || out.Answers[1].A != (IP{9, 9, 9, 9}) {
		t.Fatalf("answers = %+v", out.Answers)
	}
}

func TestDNSUnknownRData(t *testing.T) {
	m := &DNSMessage{
		ID:       4,
		Response: true,
		Answers: []DNSRecord{
			{Name: "x.example", Type: 16 /*TXT*/, Class: DNSClassIN, TTL: 5, RData: []byte{4, 't', 'e', 's', 't'}},
		},
	}
	wire, err := m.Append(nil)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	var out DNSMessage
	if err := out.Decode(wire); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if string(out.Answers[0].RData) != "\x04test" {
		t.Fatalf("rdata = %q", out.Answers[0].RData)
	}
}

// TestDNSCompressionPointer hand-builds a response using a compression
// pointer for the answer name, as real resolvers emit.
func TestDNSCompressionPointer(t *testing.T) {
	var b []byte
	b = append(b, 0x00, 0x05) // ID 5
	b = append(b, 0x81, 0x80) // QR=1 RD=1 RA=1
	b = append(b, 0, 1, 0, 1, 0, 0, 0, 0)
	// Question at offset 12: example.com A IN
	nameOff := len(b)
	b = append(b, 7)
	b = append(b, "example"...)
	b = append(b, 3)
	b = append(b, "com"...)
	b = append(b, 0)
	b = append(b, 0, 1, 0, 1)
	// Answer: pointer to offset 12.
	b = append(b, 0xc0, byte(nameOff))
	b = append(b, 0, 1, 0, 1)             // A IN
	b = append(b, 0, 0, 0, 60)            // TTL
	b = append(b, 0, 4, 93, 184, 216, 34) // rdlen + addr

	var m DNSMessage
	if err := m.Decode(b); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if m.Questions[0].Name != "example.com" {
		t.Fatalf("question = %+v", m.Questions[0])
	}
	if m.Answers[0].Name != "example.com" || m.Answers[0].A != (IP{93, 184, 216, 34}) {
		t.Fatalf("answer = %+v", m.Answers[0])
	}
}

func TestDNSCompressionLoopRejected(t *testing.T) {
	var b []byte
	b = append(b, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0)
	// Name that points at itself.
	b = append(b, 0xc0, 12)
	b = append(b, 0, 1, 0, 1)
	var m DNSMessage
	if err := m.Decode(b); err == nil {
		t.Fatal("self-pointing name accepted")
	}
}

func TestDNSTruncatedRejected(t *testing.T) {
	var m DNSMessage
	if err := m.Decode([]byte{1, 2, 3}); err != ErrDNSTruncated {
		t.Fatalf("short header: %v", err)
	}
	q := NewDNSQuery(1, "a.example")
	wire, _ := q.Append(nil)
	for cut := 13; cut < len(wire); cut += 3 {
		if err := m.Decode(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDNSBadLabelRejected(t *testing.T) {
	if _, err := appendName(nil, strings.Repeat("a", 64)+".example"); err == nil {
		t.Fatal("64-byte label accepted")
	}
	q := &DNSMessage{Questions: []DNSQuestion{{Name: "..bad"}}}
	if _, err := q.Append(nil); err == nil {
		t.Fatal("empty label accepted")
	}
}

func TestDNSRootName(t *testing.T) {
	b, err := appendName(nil, ".")
	if err != nil || len(b) != 1 || b[0] != 0 {
		t.Fatalf("root name = %v, %v", b, err)
	}
}

// Property: query encode->decode round-trips the (lowercased) name for
// arbitrary well-formed names.
func TestDNSNameRoundTripProperty(t *testing.T) {
	f := func(labelsRaw []uint8) bool {
		if len(labelsRaw) == 0 {
			return true
		}
		if len(labelsRaw) > 6 {
			labelsRaw = labelsRaw[:6]
		}
		labels := make([]string, 0, len(labelsRaw))
		for _, lr := range labelsRaw {
			n := int(lr%20) + 1
			labels = append(labels, strings.Repeat("x", n))
		}
		name := strings.Join(labels, ".")
		if len(name) > 200 {
			return true
		}
		q := NewDNSQuery(1, name)
		wire, err := q.Append(nil)
		if err != nil {
			return false
		}
		var m DNSMessage
		if err := m.Decode(wire); err != nil {
			return false
		}
		return m.Questions[0].Name == strings.ToLower(name)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AnswerA produces a decodable response echoing the question.
func TestDNSAnswerDecodableProperty(t *testing.T) {
	f := func(id uint16, a, b, c, d byte) bool {
		q := NewDNSQuery(id, "svc.edge.gnf")
		resp := AnswerA(q, 60, IPv4Addr(a, b, c, d))
		wire, err := resp.Append(nil)
		if err != nil {
			return false
		}
		var m DNSMessage
		if err := m.Decode(wire); err != nil {
			return false
		}
		return m.ID == id && m.Response && len(m.Answers) == 1 && m.Answers[0].A == IPv4Addr(a, b, c, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
