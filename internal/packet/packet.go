// Package packet implements from-scratch packet decoding and serialization
// for the GNF dataplane: Ethernet, ARP, IPv4, UDP, TCP, ICMP, plus DNS and
// HTTP-request application codecs.
//
// The design borrows the ideas that make gopacket pleasant in production:
//
//   - each protocol is a plain struct with a Decode method that parses from
//     a byte slice without allocating (slices into the input are retained,
//     so callers that reuse buffers must copy first — see Clone);
//   - a Parser decodes a whole frame into preallocated layer structs, the
//     analogue of gopacket's DecodingLayerParser, for zero-allocation fast
//     paths;
//   - Flow/Endpoint values are small comparable structs usable as map keys,
//     so NFs can keep per-flow state in ordinary Go maps;
//   - serialization appends to caller-provided buffers and fixes up length
//     and checksum fields.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer produced by the Parser.
type LayerType uint8

// Known layer types.
const (
	LayerNone LayerType = iota
	LayerEthernet
	LayerARP
	LayerIPv4
	LayerUDP
	LayerTCP
	LayerICMP
	LayerPayload
)

// String implements fmt.Stringer.
func (t LayerType) String() string {
	switch t {
	case LayerEthernet:
		return "Ethernet"
	case LayerARP:
		return "ARP"
	case LayerIPv4:
		return "IPv4"
	case LayerUDP:
		return "UDP"
	case LayerTCP:
		return "TCP"
	case LayerICMP:
		return "ICMP"
	case LayerPayload:
		return "Payload"
	default:
		return "None"
	}
}

// Errors shared by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadHeader   = errors.New("packet: malformed header")
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the usual colon-separated hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IsZero reports whether m is all zeroes.
func (m MAC) IsZero() bool { return m == MAC{} }

// IP is an IPv4 address as a comparable array (usable as a map key).
type IP [4]byte

// IPv4 address constructors and well-known values.
func IPv4Addr(a, b, c, d byte) IP { return IP{a, b, c, d} }

// String renders dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports whether ip is 0.0.0.0.
func (ip IP) IsZero() bool { return ip == IP{} }

// Uint32 returns the big-endian integer form.
func (ip IP) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IPFromUint32 converts back from integer form.
func IPFromUint32(v uint32) IP {
	var ip IP
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// ParseIP parses dotted-quad text; it returns the zero IP and false on
// malformed input.
func ParseIP(s string) (IP, bool) {
	var ip IP
	part, idx, digits := 0, 0, 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if digits == 0 || idx > 3 {
				return IP{}, false
			}
			ip[idx] = byte(part)
			idx++
			part, digits = 0, 0
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return IP{}, false
		}
		part = part*10 + int(c-'0')
		if part > 255 || digits >= 3 {
			return IP{}, false
		}
		digits++
	}
	if idx != 4 {
		return IP{}, false
	}
	return ip, true
}

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// ProtoName returns a human-readable protocol name.
func ProtoName(p uint8) string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", p)
	}
}

// Endpoint is one side of a transport flow.
type Endpoint struct {
	Addr IP
	Port uint16
}

// String implements fmt.Stringer.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// FiveTuple identifies a transport flow. It is comparable and therefore a
// valid map key; NFs use it for per-flow state.
type FiveTuple struct {
	Proto    uint8
	Src, Dst Endpoint
}

// Reverse returns the tuple with source and destination swapped.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Proto: f.Proto, Src: f.Dst, Dst: f.Src}
}

// Canonical returns a direction-independent form (the lexicographically
// smaller endpoint first), so bidirectional flows hash identically —
// gopacket's symmetric FastHash property.
func (f FiveTuple) Canonical() FiveTuple {
	if less(f.Dst, f.Src) {
		return f.Reverse()
	}
	return f
}

func less(a, b Endpoint) bool {
	for i := range a.Addr {
		if a.Addr[i] != b.Addr[i] {
			return a.Addr[i] < b.Addr[i]
		}
	}
	return a.Port < b.Port
}

// String implements fmt.Stringer.
func (f FiveTuple) String() string {
	return fmt.Sprintf("%s %s->%s", ProtoName(f.Proto), f.Src, f.Dst)
}

// Checksum computes the RFC 1071 internet checksum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the IPv4 pseudo-header partial sum used by
// TCP/UDP checksums.
func pseudoHeaderSum(src, dst IP, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes the TCP/UDP checksum including pseudo-header.
func transportChecksum(src, dst IP, proto uint8, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i:]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// Clone returns a copy of b; decoders retain slices into their input, so
// callers that reuse receive buffers clone frames before queuing them.
func Clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
