package packet

import "encoding/binary"

// FlowKey is a compact, comparable summary of every header field the
// dataplane steers on: L2 addressing, the outermost 802.1Q tag, and the
// IPv4 five-tuple. Two frames with equal keys are indistinguishable to a
// steering Match, which is what makes the key safe to use for verdict
// caching on forwarding fast paths. The zero five-tuple fields stay zero
// for non-IP frames (and ports stay zero for non-TCP/UDP), mirroring how
// matches evaluate those frames.
type FlowKey struct {
	Src, Dst  MAC
	EtherType uint16 // inner EtherType (802.1Q looked through)
	Tagged    bool
	VID       uint16
	Proto     uint8
	SrcIP     IP
	DstIP     IP
	SrcPort   uint16
	DstPort   uint16
}

// FlowKey extracts the steering key of the last parsed frame. It reads
// only already-decoded layer structs, so it costs a few copies and no
// allocation.
func (p *Parser) FlowKey() FlowKey {
	k := FlowKey{
		Src:       p.Eth.Src,
		Dst:       p.Eth.Dst,
		EtherType: p.Eth.EtherType,
		Tagged:    p.Eth.Tagged,
		VID:       p.Eth.VID,
	}
	if p.Has(LayerIPv4) {
		k.SrcIP, k.DstIP, k.Proto = p.IP.Src, p.IP.Dst, p.IP.Proto
		switch {
		case p.Has(LayerUDP):
			k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
		case p.Has(LayerTCP):
			k.SrcPort, k.DstPort = p.TCP.SrcPort, p.TCP.DstPort
		}
	}
	return k
}

// Hash returns a 64-bit hash of the key for shard selection in flow
// tables. The key packs into four words that are chained through a
// splitmix64-style finalizer — word-at-a-time so the whole thing costs a
// handful of multiplies on the per-frame fast path, with no allocation.
func (k FlowKey) Hash() uint64 {
	w0 := uint64(k.Src[0])<<40 | uint64(k.Src[1])<<32 | uint64(k.Src[2])<<24 |
		uint64(k.Src[3])<<16 | uint64(k.Src[4])<<8 | uint64(k.Src[5]) |
		uint64(k.EtherType)<<48
	w1 := uint64(k.Dst[0])<<40 | uint64(k.Dst[1])<<32 | uint64(k.Dst[2])<<24 |
		uint64(k.Dst[3])<<16 | uint64(k.Dst[4])<<8 | uint64(k.Dst[5]) |
		uint64(k.VID)<<48
	if k.Tagged {
		w1 |= 1 << 63
	}
	w2 := uint64(binary.BigEndian.Uint32(k.SrcIP[:]))<<32 |
		uint64(binary.BigEndian.Uint32(k.DstIP[:]))
	w3 := uint64(k.SrcPort)<<32 | uint64(k.DstPort)<<16 | uint64(k.Proto)
	return mix64(mix64(mix64(mix64(w0)+w1)+w2) + w3)
}

// mix64 is the splitmix64 finalizer (Steele et al.), a full-avalanche
// bijection on 64-bit words.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
