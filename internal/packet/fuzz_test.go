package packet

import (
	"bytes"
	"os"
	"testing"

	"gnf/internal/pcap"
)

// FuzzParse throws arbitrary bytes at the frame parser and the code that
// consumes its results on the switch fast path: FlowKey extraction and
// hashing, five-tuple extraction, transport payload slicing, and header
// rewriting. The corpus is seeded from the checked-in pcap fixture
// (testdata/fuzz_frames.pcap, written with the repo's own pcap writer)
// plus builder output for each frame family.
func FuzzParse(f *testing.F) {
	srcMAC := MAC{2, 0, 0, 0, 0, 1}
	dstMAC := MAC{2, 0, 0, 0, 0, 2}
	srcIP := IP{10, 0, 0, 1}
	dstIP := IP{10, 0, 0, 2}
	f.Add(BuildUDP(srcMAC, dstMAC, srcIP, dstIP, 4000, 53, []byte("payload")))
	f.Add(BuildTCP(srcMAC, dstMAC, srcIP, dstIP, 40000, 80, TCPOptions{Seq: 1, Flags: TCPSyn}, nil))
	f.Add(BuildICMPEcho(srcMAC, dstMAC, srcIP, dstIP, 8, 1, 1, []byte("ping")))
	f.Add(BuildARP(1, srcMAC, srcIP, MAC{}, dstIP))
	f.Add(TagVLAN(BuildUDP(srcMAC, dstMAC, srcIP, dstIP, 1, 2, nil), 7, 100))
	if data, err := os.ReadFile("testdata/fuzz_frames.pcap"); err == nil {
		r, err := pcap.NewReader(bytes.NewReader(data))
		if err != nil {
			f.Fatalf("corrupt pcap fixture: %v", err)
		}
		pkts, err := r.ReadAll()
		if err != nil {
			f.Fatalf("reading pcap fixture: %v", err)
		}
		for _, p := range pkts {
			f.Add(p.Data)
		}
		if len(pkts) == 0 {
			f.Fatal("empty pcap fixture")
		}
	}

	f.Fuzz(func(t *testing.T, frame []byte) {
		var p Parser
		if err := p.Parse(frame); err != nil {
			// Rejected frames must still be safe to interrogate.
			_ = p.FlowKey()
			_, _ = p.FiveTuple()
			return
		}
		key := p.FlowKey()
		_ = key.Hash()
		if ft, ok := p.FiveTuple(); ok {
			// A five-tuple implies a parsed IPv4 header whose addresses
			// match the flow key.
			if !p.Has(LayerIPv4) {
				t.Fatalf("five-tuple %v without an IPv4 layer", ft)
			}
			if ft.Src.Addr != key.SrcIP || ft.Dst.Addr != key.DstIP {
				t.Fatalf("five-tuple %v disagrees with flow key %+v", ft, key)
			}
		}
		if pl := p.TransportPayload(); len(pl) > len(frame) {
			t.Fatalf("transport payload longer than frame: %d > %d", len(pl), len(frame))
		}
		// Rewriting a parseable frame must not panic, and the result must
		// still be parseable (or cleanly rejected) afterwards.
		ip := IP{192, 0, 2, 1}
		port := uint16(3784)
		cp := Clone(frame)
		_ = Rewrite{SrcIP: &ip, DstIP: &ip, SrcPort: &port, DstPort: &port, DecrementTTL: true, SrcMAC: &srcMAC}.Apply(cp)
		var p2 Parser
		_ = p2.Parse(cp)
	})
}
