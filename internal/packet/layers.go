package packet

import (
	"encoding/binary"
)

// EtherType values understood by the dataplane.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100 // 802.1Q tag
)

// EthernetHeaderLen is the fixed Ethernet II header size (no 802.1Q).
const EthernetHeaderLen = 14

// VLANTagLen is the size of one 802.1Q tag.
const VLANTagLen = 4

// maxVLANDepth bounds tag nesting (one customer + one provider tag, as
// 802.1ad stacks them).
const maxVLANDepth = 2

// Ethernet is an Ethernet II header, with transparent 802.1Q handling:
// Decode skips up to two VLAN tags, records the outermost VID/PCP, and
// reports the *inner* EtherType — so every upper-layer consumer (parser,
// switch, NFs) sees tagged and untagged frames uniformly.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16 // inner (payload) EtherType
	// Tagged is true when at least one 802.1Q tag was present; VID and
	// PCP are then the outermost tag's fields.
	Tagged  bool
	VID     uint16
	PCP     uint8
	payload []byte
}

// Decode parses an Ethernet frame. The payload slice aliases b.
func (e *Ethernet) Decode(b []byte) error {
	if len(b) < EthernetHeaderLen {
		return ErrTruncated
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	e.Tagged, e.VID, e.PCP = false, 0, 0
	off := 14
	for depth := 0; e.EtherType == EtherTypeVLAN && depth < maxVLANDepth; depth++ {
		if len(b) < off+VLANTagLen {
			return ErrTruncated
		}
		tci := binary.BigEndian.Uint16(b[off : off+2])
		if !e.Tagged {
			e.Tagged = true
			e.PCP = uint8(tci >> 13)
			e.VID = tci & 0x0fff
		}
		e.EtherType = binary.BigEndian.Uint16(b[off+2 : off+4])
		off += VLANTagLen
	}
	e.payload = b[off:]
	return nil
}

// Payload returns the bytes after the header.
func (e *Ethernet) Payload() []byte { return e.payload }

// AppendHeader appends the 14-byte header to dst and returns the extended
// slice. Tagged frames are built with TagVLAN instead.
func (e *Ethernet) AppendHeader(dst []byte) []byte {
	dst = append(dst, e.Dst[:]...)
	dst = append(dst, e.Src[:]...)
	return binary.BigEndian.AppendUint16(dst, e.EtherType)
}

// TagVLAN returns a copy of frame with an 802.1Q tag (pcp, vid) inserted
// as the outermost tag. Only the low 12 bits of vid and 3 bits of pcp are
// used.
func TagVLAN(frame []byte, pcp uint8, vid uint16) []byte {
	if len(frame) < EthernetHeaderLen {
		return append([]byte(nil), frame...)
	}
	out := make([]byte, 0, len(frame)+VLANTagLen)
	out = append(out, frame[:12]...)
	out = binary.BigEndian.AppendUint16(out, EtherTypeVLAN)
	out = binary.BigEndian.AppendUint16(out, uint16(pcp&7)<<13|vid&0x0fff)
	out = append(out, frame[12:]...)
	return out
}

// UntagVLAN returns a copy of frame with its outermost 802.1Q tag removed;
// untagged frames are returned as a plain copy.
func UntagVLAN(frame []byte) []byte {
	if len(frame) < EthernetHeaderLen+VLANTagLen ||
		binary.BigEndian.Uint16(frame[12:14]) != EtherTypeVLAN {
		return append([]byte(nil), frame...)
	}
	out := make([]byte, 0, len(frame)-VLANTagLen)
	out = append(out, frame[:12]...)
	out = append(out, frame[16:]...)
	return out
}

// FrameVID reports the outermost VLAN ID of a frame, if tagged.
func FrameVID(frame []byte) (uint16, bool) {
	if len(frame) < EthernetHeaderLen+VLANTagLen ||
		binary.BigEndian.Uint16(frame[12:14]) != EtherTypeVLAN {
		return 0, false
	}
	return binary.BigEndian.Uint16(frame[14:16]) & 0x0fff, true
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPLen is the length of an IPv4-over-Ethernet ARP packet.
const ARPLen = 28

// ARP is an IPv4-over-Ethernet ARP packet.
type ARP struct {
	Op                 uint16
	SenderHW, TargetHW MAC
	SenderIP, TargetIP IP
}

// Decode parses an ARP packet.
func (a *ARP) Decode(b []byte) error {
	if len(b) < ARPLen {
		return ErrTruncated
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || // hardware type Ethernet
		binary.BigEndian.Uint16(b[2:4]) != EtherTypeIPv4 ||
		b[4] != 6 || b[5] != 4 {
		return ErrBadHeader
	}
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderHW[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetHW[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return nil
}

// Append serializes the ARP packet onto dst.
func (a *ARP) Append(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, 1)
	dst = binary.BigEndian.AppendUint16(dst, EtherTypeIPv4)
	dst = append(dst, 6, 4)
	dst = binary.BigEndian.AppendUint16(dst, a.Op)
	dst = append(dst, a.SenderHW[:]...)
	dst = append(dst, a.SenderIP[:]...)
	dst = append(dst, a.TargetHW[:]...)
	return append(dst, a.TargetIP[:]...)
}

// IPv4HeaderLen is the size of an option-less IPv4 header; the dataplane
// never emits options and tolerates them on decode.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header.
type IPv4 struct {
	TOS         uint8
	TotalLen    uint16
	ID          uint16
	Flags       uint8 // 3 bits
	FragOffset  uint16
	TTL         uint8
	Proto       uint8
	Checksum    uint16
	Src, Dst    IP
	headerLen   int
	payload     []byte
	checksumOK  bool
	rawChecksum uint16
}

// Decode parses an IPv4 header and verifies its checksum.
func (ip *IPv4) Decode(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return ErrTruncated
	}
	if v := b[0] >> 4; v != 4 {
		return ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return ErrBadHeader
	}
	ip.headerLen = ihl
	ip.TOS = b[1]
	ip.TotalLen = binary.BigEndian.Uint16(b[2:4])
	if int(ip.TotalLen) < ihl || int(ip.TotalLen) > len(b) {
		return ErrTruncated
	}
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = b[8]
	ip.Proto = b[9]
	ip.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(ip.Src[:], b[12:16])
	copy(ip.Dst[:], b[16:20])
	ip.rawChecksum = ip.Checksum
	ip.checksumOK = Checksum(b[:ihl]) == 0
	ip.payload = b[ihl:ip.TotalLen]
	return nil
}

// ChecksumOK reports whether the decoded header checksum verified.
func (ip *IPv4) ChecksumOK() bool { return ip.checksumOK }

// HeaderLen returns the decoded header length in bytes.
func (ip *IPv4) HeaderLen() int {
	if ip.headerLen == 0 {
		return IPv4HeaderLen
	}
	return ip.headerLen
}

// Payload returns the L4 bytes (TotalLen-bounded).
func (ip *IPv4) Payload() []byte { return ip.payload }

// AppendHeader serializes a 20-byte header for a payload of payloadLen
// bytes, computing TotalLen and Checksum. Flags/FragOffset are honoured.
func (ip *IPv4) AppendHeader(dst []byte, payloadLen int) []byte {
	total := IPv4HeaderLen + payloadLen
	start := len(dst)
	dst = append(dst, 0x45, ip.TOS)
	dst = binary.BigEndian.AppendUint16(dst, uint16(total))
	dst = binary.BigEndian.AppendUint16(dst, ip.ID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	dst = append(dst, ttl, ip.Proto, 0, 0) // checksum placeholder
	dst = append(dst, ip.Src[:]...)
	dst = append(dst, ip.Dst[:]...)
	ck := Checksum(dst[start : start+IPv4HeaderLen])
	binary.BigEndian.PutUint16(dst[start+10:], ck)
	return dst
}

// UDPHeaderLen is the UDP header size.
const UDPHeaderLen = 8

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
	payload          []byte
}

// Decode parses a UDP header.
func (u *UDP) Decode(b []byte) error {
	if len(b) < UDPHeaderLen {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(b) {
		return ErrTruncated
	}
	u.payload = b[UDPHeaderLen:u.Length]
	return nil
}

// Payload returns the datagram body.
func (u *UDP) Payload() []byte { return u.payload }

// TCPHeaderLen is the option-less TCP header size.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is a TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	payload          []byte
}

// Decode parses a TCP header.
func (t *TCP) Decode(b []byte) error {
	if len(b) < TCPHeaderLen {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.DataOffset = b[12] >> 4
	hl := int(t.DataOffset) * 4
	if hl < TCPHeaderLen || hl > len(b) {
		return ErrBadHeader
	}
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Checksum = binary.BigEndian.Uint16(b[16:18])
	t.Urgent = binary.BigEndian.Uint16(b[18:20])
	t.payload = b[hl:]
	return nil
}

// Payload returns the segment body.
func (t *TCP) Payload() []byte { return t.payload }

// HasFlag reports whether all bits in f are set.
func (t *TCP) HasFlag(f uint8) bool { return t.Flags&f == f }

// ICMP message types used by the dataplane.
const (
	ICMPEchoReply   uint8 = 0
	ICMPEchoRequest uint8 = 8
)

// ICMPHeaderLen is the echo header size.
const ICMPHeaderLen = 8

// ICMP is an ICMP echo header.
type ICMP struct {
	Type, Code uint8
	Checksum   uint16
	ID, Seq    uint16
	payload    []byte
}

// Decode parses an ICMP message.
func (ic *ICMP) Decode(b []byte) error {
	if len(b) < ICMPHeaderLen {
		return ErrTruncated
	}
	ic.Type = b[0]
	ic.Code = b[1]
	ic.Checksum = binary.BigEndian.Uint16(b[2:4])
	ic.ID = binary.BigEndian.Uint16(b[4:6])
	ic.Seq = binary.BigEndian.Uint16(b[6:8])
	ic.payload = b[8:]
	return nil
}

// Payload returns the echo body.
func (ic *ICMP) Payload() []byte { return ic.payload }

// Append serializes the ICMP message with payload, computing the checksum.
func (ic *ICMP) Append(dst []byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, ic.Type, ic.Code, 0, 0)
	dst = binary.BigEndian.AppendUint16(dst, ic.ID)
	dst = binary.BigEndian.AppendUint16(dst, ic.Seq)
	dst = append(dst, payload...)
	ck := Checksum(dst[start:])
	binary.BigEndian.PutUint16(dst[start+2:], ck)
	return dst
}
