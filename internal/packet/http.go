package packet

import (
	"errors"
	"strings"
)

// Minimal HTTP/1.x request parsing for the HTTP-filter NF. The NF inspects
// the first segment of a request (as middleboxes do); it needs the request
// line, Host header, and arbitrary header lookup — not a full RFC 9112
// implementation.

// HTTP parse errors.
var (
	ErrHTTPNotRequest  = errors.New("http: not an HTTP request")
	ErrHTTPNotResponse = errors.New("http: not an HTTP response")
	ErrHTTPTruncated   = errors.New("http: truncated header block")
)

// HTTPRequest is a parsed request head.
type HTTPRequest struct {
	Method  string
	Target  string // request-target as sent (origin-form path or absolute)
	Proto   string // e.g. "HTTP/1.1"
	Host    string // Host header, lowercased, port stripped
	headers []httpHeader
}

type httpHeader struct{ key, value string }

var httpMethods = map[string]bool{
	"GET": true, "HEAD": true, "POST": true, "PUT": true, "DELETE": true,
	"CONNECT": true, "OPTIONS": true, "TRACE": true, "PATCH": true,
}

// LooksLikeHTTPRequest cheaply tests whether b starts with a known method —
// the pre-filter NFs use before a full parse.
func LooksLikeHTTPRequest(b []byte) bool {
	sp := -1
	limit := len(b)
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if b[i] == ' ' {
			sp = i
			break
		}
	}
	if sp <= 0 {
		return false
	}
	return httpMethods[string(b[:sp])]
}

// ParseHTTPRequest parses the request head from b. It requires the full
// header block (terminated by a blank line) to be present; middlebox NFs
// apply it to the first data segment of a flow, where request heads fit in
// practice.
func ParseHTTPRequest(b []byte) (*HTTPRequest, error) {
	head := string(b)
	endIdx := strings.Index(head, "\r\n\r\n")
	sep := "\r\n"
	if endIdx < 0 {
		endIdx = strings.Index(head, "\n\n")
		sep = "\n"
		if endIdx < 0 {
			return nil, ErrHTTPTruncated
		}
	}
	lines := strings.Split(head[:endIdx], sep)
	if len(lines) == 0 {
		return nil, ErrHTTPNotRequest
	}
	parts := strings.SplitN(strings.TrimRight(lines[0], "\r"), " ", 3)
	if len(parts) != 3 || !httpMethods[parts[0]] || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, ErrHTTPNotRequest
	}
	req := &HTTPRequest{Method: parts[0], Target: parts[1], Proto: parts[2]}
	for _, ln := range lines[1:] {
		ln = strings.TrimRight(ln, "\r")
		if ln == "" {
			continue
		}
		ci := strings.IndexByte(ln, ':')
		if ci <= 0 {
			return nil, ErrHTTPNotRequest
		}
		key := strings.ToLower(strings.TrimSpace(ln[:ci]))
		val := strings.TrimSpace(ln[ci+1:])
		req.headers = append(req.headers, httpHeader{key, val})
		if key == "host" && req.Host == "" {
			host := strings.ToLower(val)
			if i := strings.LastIndexByte(host, ':'); i > 0 {
				host = host[:i]
			}
			req.Host = host
		}
	}
	return req, nil
}

// Header returns the first value of the named header (case-insensitive) and
// whether it was present.
func (r *HTTPRequest) Header(name string) (string, bool) {
	name = strings.ToLower(name)
	for _, h := range r.headers {
		if h.key == name {
			return h.value, true
		}
	}
	return "", false
}

// HeaderCount returns the number of parsed header fields.
func (r *HTTPRequest) HeaderCount() int { return len(r.headers) }

// HTTPResponse is a parsed response head plus whatever body bytes followed
// it in the same segment — enough for the edge HTTP cache NF, which stores
// and replays single-segment responses.
type HTTPResponse struct {
	Proto      string // e.g. "HTTP/1.1"
	StatusCode int
	Reason     string
	Body       []byte
	headers    []httpHeader
}

// LooksLikeHTTPResponse cheaply tests whether b starts with a status line.
func LooksLikeHTTPResponse(b []byte) bool {
	return len(b) >= 8 && string(b[:5]) == "HTTP/"
}

// ParseHTTPResponse parses a response head (and trailing body bytes) from
// b. Like ParseHTTPRequest it requires the full header block.
func ParseHTTPResponse(b []byte) (*HTTPResponse, error) {
	if !LooksLikeHTTPResponse(b) {
		return nil, ErrHTTPNotResponse
	}
	head := string(b)
	endIdx := strings.Index(head, "\r\n\r\n")
	sep, skip := "\r\n", 4
	if endIdx < 0 {
		endIdx = strings.Index(head, "\n\n")
		sep, skip = "\n", 2
		if endIdx < 0 {
			return nil, ErrHTTPTruncated
		}
	}
	lines := strings.Split(head[:endIdx], sep)
	status := strings.SplitN(strings.TrimRight(lines[0], "\r"), " ", 3)
	if len(status) < 2 || !strings.HasPrefix(status[0], "HTTP/") {
		return nil, ErrHTTPNotResponse
	}
	code := 0
	for _, c := range status[1] {
		if c < '0' || c > '9' {
			return nil, ErrHTTPNotResponse
		}
		code = code*10 + int(c-'0')
	}
	resp := &HTTPResponse{Proto: status[0], StatusCode: code}
	if len(status) == 3 {
		resp.Reason = status[2]
	}
	for _, ln := range lines[1:] {
		ln = strings.TrimRight(ln, "\r")
		if ln == "" {
			continue
		}
		ci := strings.IndexByte(ln, ':')
		if ci <= 0 {
			return nil, ErrHTTPNotResponse
		}
		resp.headers = append(resp.headers, httpHeader{
			key:   strings.ToLower(strings.TrimSpace(ln[:ci])),
			value: strings.TrimSpace(ln[ci+1:]),
		})
	}
	resp.Body = append([]byte(nil), b[endIdx+skip:]...)
	return resp, nil
}

// Header returns the first value of the named header (case-insensitive)
// and whether it was present.
func (r *HTTPResponse) Header(name string) (string, bool) {
	name = strings.ToLower(name)
	for _, h := range r.headers {
		if h.key == name {
			return h.value, true
		}
	}
	return "", false
}

// HeaderCount returns the number of parsed header fields.
func (r *HTTPResponse) HeaderCount() int { return len(r.headers) }

// BuildHTTPResponse renders a response head plus body — used by traffic
// servers and the HTTP cache NF when replaying a hit.
func BuildHTTPResponse(code int, reason string, extra map[string]string, body []byte) []byte {
	var sb strings.Builder
	sb.WriteString("HTTP/1.1 ")
	writeInt(&sb, code)
	sb.WriteByte(' ')
	sb.WriteString(reason)
	sb.WriteString("\r\nContent-Length: ")
	writeInt(&sb, len(body))
	sb.WriteString("\r\n")
	for k, v := range extra {
		sb.WriteString(k)
		sb.WriteString(": ")
		sb.WriteString(v)
		sb.WriteString("\r\n")
	}
	sb.WriteString("\r\n")
	out := []byte(sb.String())
	return append(out, body...)
}

// writeInt appends the decimal rendering of v (v >= 0) without fmt.
func writeInt(sb *strings.Builder, v int) {
	if v == 0 {
		sb.WriteByte('0')
		return
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	sb.Write(buf[i:])
}

// BuildHTTPRequest renders a request head (plus optional body) — used by
// traffic generators.
func BuildHTTPRequest(method, host, path string, extra map[string]string, body []byte) []byte {
	var sb strings.Builder
	sb.WriteString(method)
	sb.WriteByte(' ')
	if path == "" {
		path = "/"
	}
	sb.WriteString(path)
	sb.WriteString(" HTTP/1.1\r\nHost: ")
	sb.WriteString(host)
	sb.WriteString("\r\n")
	for k, v := range extra {
		sb.WriteString(k)
		sb.WriteString(": ")
		sb.WriteString(v)
		sb.WriteString("\r\n")
	}
	sb.WriteString("\r\n")
	out := []byte(sb.String())
	return append(out, body...)
}
