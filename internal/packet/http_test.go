package packet

import (
	"testing"
)

func TestParseHTTPRequestBasic(t *testing.T) {
	raw := []byte("GET /index.html HTTP/1.1\r\nHost: www.Example.com:8080\r\nUser-Agent: gnf-test\r\n\r\n")
	req, err := ParseHTTPRequest(raw)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if req.Method != "GET" || req.Target != "/index.html" || req.Proto != "HTTP/1.1" {
		t.Fatalf("request line = %+v", req)
	}
	if req.Host != "www.example.com" {
		t.Fatalf("host = %q", req.Host)
	}
	if ua, ok := req.Header("user-agent"); !ok || ua != "gnf-test" {
		t.Fatalf("user-agent = %q %v", ua, ok)
	}
	if _, ok := req.Header("missing"); ok {
		t.Fatal("missing header found")
	}
	if req.HeaderCount() != 2 {
		t.Fatalf("header count = %d", req.HeaderCount())
	}
}

func TestParseHTTPRequestLFOnly(t *testing.T) {
	raw := []byte("POST /submit HTTP/1.0\nHost: a.b\nContent-Length: 0\n\n")
	req, err := ParseHTTPRequest(raw)
	if err != nil {
		t.Fatalf("parse LF-only: %v", err)
	}
	if req.Method != "POST" || req.Host != "a.b" {
		t.Fatalf("req = %+v", req)
	}
}

func TestParseHTTPRequestErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no blank line", "GET / HTTP/1.1\r\nHost: x\r\n"},
		{"bad method", "FETCH / HTTP/1.1\r\n\r\n"},
		{"no proto", "GET /\r\n\r\n"},
		{"garbage header", "GET / HTTP/1.1\r\nnocolon\r\n\r\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ParseHTTPRequest([]byte(c.in)); err == nil {
			t.Errorf("%s: parse accepted %q", c.name, c.in)
		}
	}
}

func TestLooksLikeHTTPRequest(t *testing.T) {
	yes := [][]byte{
		[]byte("GET / HTTP/1.1\r\n"),
		[]byte("POST /x HTTP/1.0\r\n"),
		[]byte("DELETE /y HTTP/1.1\r\n"),
		[]byte("OPTIONS * HTTP/1.1\r\n"),
	}
	no := [][]byte{
		nil,
		[]byte(""),
		[]byte("HELLO WORLD"),
		[]byte("GETX/"),
		[]byte{0x16, 0x03, 0x01}, // TLS hello
		[]byte(" GET /"),
	}
	for _, b := range yes {
		if !LooksLikeHTTPRequest(b) {
			t.Errorf("rejected %q", b)
		}
	}
	for _, b := range no {
		if LooksLikeHTTPRequest(b) {
			t.Errorf("accepted %q", b)
		}
	}
}

func TestBuildHTTPRequestRoundTrip(t *testing.T) {
	raw := BuildHTTPRequest("GET", "cdn.gnf.test", "/video.mp4", map[string]string{"Range": "bytes=0-1023"}, nil)
	if !LooksLikeHTTPRequest(raw) {
		t.Fatal("built request does not look like HTTP")
	}
	req, err := ParseHTTPRequest(raw)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if req.Host != "cdn.gnf.test" || req.Target != "/video.mp4" {
		t.Fatalf("req = %+v", req)
	}
	if rg, ok := req.Header("range"); !ok || rg != "bytes=0-1023" {
		t.Fatalf("range = %q %v", rg, ok)
	}
}

func TestBuildHTTPRequestDefaultPath(t *testing.T) {
	raw := BuildHTTPRequest("GET", "h", "", nil, []byte("body"))
	req, err := ParseHTTPRequest(raw)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if req.Target != "/" {
		t.Fatalf("target = %q", req.Target)
	}
}
