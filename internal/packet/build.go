package packet

import "encoding/binary"

// This file contains frame builders: they assemble full Ethernet frames,
// computing every length and checksum field, so tests, traffic generators
// and NFs never hand-craft byte offsets.

// BuildUDP assembles Ethernet+IPv4+UDP+payload. Zero TTL defaults to 64.
func BuildUDP(srcMAC, dstMAC MAC, srcIP, dstIP IP, srcPort, dstPort uint16, payload []byte) []byte {
	udpLen := UDPHeaderLen + len(payload)
	frame := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+udpLen)
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	frame = eth.AppendHeader(frame)
	ip := IPv4{Proto: ProtoUDP, Src: srcIP, Dst: dstIP}
	frame = ip.AppendHeader(frame, udpLen)
	l4 := len(frame)
	frame = binary.BigEndian.AppendUint16(frame, srcPort)
	frame = binary.BigEndian.AppendUint16(frame, dstPort)
	frame = binary.BigEndian.AppendUint16(frame, uint16(udpLen))
	frame = append(frame, 0, 0) // checksum placeholder
	frame = append(frame, payload...)
	ck := transportChecksum(srcIP, dstIP, ProtoUDP, frame[l4:])
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(frame[l4+6:], ck)
	return frame
}

// TCPOptions carries the mutable TCP header fields for BuildTCP.
type TCPOptions struct {
	Seq, Ack uint32
	Flags    uint8
	Window   uint16
}

// BuildTCP assembles Ethernet+IPv4+TCP+payload.
func BuildTCP(srcMAC, dstMAC MAC, srcIP, dstIP IP, srcPort, dstPort uint16, opt TCPOptions, payload []byte) []byte {
	tcpLen := TCPHeaderLen + len(payload)
	frame := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+tcpLen)
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	frame = eth.AppendHeader(frame)
	ip := IPv4{Proto: ProtoTCP, Src: srcIP, Dst: dstIP}
	frame = ip.AppendHeader(frame, tcpLen)
	l4 := len(frame)
	frame = binary.BigEndian.AppendUint16(frame, srcPort)
	frame = binary.BigEndian.AppendUint16(frame, dstPort)
	frame = binary.BigEndian.AppendUint32(frame, opt.Seq)
	frame = binary.BigEndian.AppendUint32(frame, opt.Ack)
	win := opt.Window
	if win == 0 {
		win = 65535
	}
	frame = append(frame, 5<<4, opt.Flags)
	frame = binary.BigEndian.AppendUint16(frame, win)
	frame = append(frame, 0, 0, 0, 0) // checksum + urgent
	frame = append(frame, payload...)
	ck := transportChecksum(srcIP, dstIP, ProtoTCP, frame[l4:])
	binary.BigEndian.PutUint16(frame[l4+16:], ck)
	return frame
}

// BuildICMPEcho assembles an ICMP echo request/reply frame.
func BuildICMPEcho(srcMAC, dstMAC MAC, srcIP, dstIP IP, typ uint8, id, seq uint16, payload []byte) []byte {
	icmpLen := ICMPHeaderLen + len(payload)
	frame := make([]byte, 0, EthernetHeaderLen+IPv4HeaderLen+icmpLen)
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	frame = eth.AppendHeader(frame)
	ip := IPv4{Proto: ProtoICMP, Src: srcIP, Dst: dstIP}
	frame = ip.AppendHeader(frame, icmpLen)
	ic := ICMP{Type: typ, ID: id, Seq: seq}
	return ic.Append(frame, payload)
}

// BuildARP assembles an ARP request or reply frame.
func BuildARP(op uint16, senderHW MAC, senderIP IP, targetHW MAC, targetIP IP) []byte {
	dst := targetHW
	if op == ARPRequest {
		dst = BroadcastMAC
	}
	frame := make([]byte, 0, EthernetHeaderLen+ARPLen)
	eth := Ethernet{Dst: dst, Src: senderHW, EtherType: EtherTypeARP}
	frame = eth.AppendHeader(frame)
	arp := ARP{Op: op, SenderHW: senderHW, SenderIP: senderIP, TargetHW: targetHW, TargetIP: targetIP}
	return arp.Append(frame)
}

// Rewrite mutates address/port fields of a decoded frame in place and fixes
// the affected checksums. It is the primitive NAT and load-balancer NFs use.
// Frames must contain Ethernet+IPv4; non-IPv4 frames return ErrBadHeader.
type Rewrite struct {
	SrcIP, DstIP     *IP     // nil = leave unchanged
	SrcPort, DstPort *uint16 // nil = leave unchanged; ignored for ICMP
	SrcMAC, DstMAC   *MAC
	DecrementTTL     bool
}

// Apply performs the rewrite on frame.
func (rw Rewrite) Apply(frame []byte) error {
	if len(frame) < EthernetHeaderLen {
		return ErrTruncated
	}
	if rw.SrcMAC != nil {
		copy(frame[6:12], rw.SrcMAC[:])
	}
	if rw.DstMAC != nil {
		copy(frame[0:6], rw.DstMAC[:])
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		if rw.SrcIP != nil || rw.DstIP != nil || rw.SrcPort != nil || rw.DstPort != nil {
			return ErrBadHeader
		}
		return nil
	}
	ipb := frame[EthernetHeaderLen:]
	if len(ipb) < IPv4HeaderLen {
		return ErrTruncated
	}
	ihl := int(ipb[0]&0x0f) * 4
	total := int(binary.BigEndian.Uint16(ipb[2:4]))
	if ihl < IPv4HeaderLen || total < ihl || total > len(ipb) {
		return ErrBadHeader
	}
	if rw.SrcIP != nil {
		copy(ipb[12:16], rw.SrcIP[:])
	}
	if rw.DstIP != nil {
		copy(ipb[16:20], rw.DstIP[:])
	}
	if rw.DecrementTTL && ipb[8] > 0 {
		ipb[8]--
	}
	// Recompute the IP header checksum.
	binary.BigEndian.PutUint16(ipb[10:12], 0)
	binary.BigEndian.PutUint16(ipb[10:12], Checksum(ipb[:ihl]))

	proto := ipb[9]
	l4 := ipb[ihl:total]
	var src, dst IP
	copy(src[:], ipb[12:16])
	copy(dst[:], ipb[16:20])
	switch proto {
	case ProtoUDP:
		if len(l4) < UDPHeaderLen {
			return ErrTruncated
		}
		if rw.SrcPort != nil {
			binary.BigEndian.PutUint16(l4[0:2], *rw.SrcPort)
		}
		if rw.DstPort != nil {
			binary.BigEndian.PutUint16(l4[2:4], *rw.DstPort)
		}
		binary.BigEndian.PutUint16(l4[6:8], 0)
		ck := transportChecksum(src, dst, ProtoUDP, l4)
		if ck == 0 {
			ck = 0xffff
		}
		binary.BigEndian.PutUint16(l4[6:8], ck)
	case ProtoTCP:
		if len(l4) < TCPHeaderLen {
			return ErrTruncated
		}
		if rw.SrcPort != nil {
			binary.BigEndian.PutUint16(l4[0:2], *rw.SrcPort)
		}
		if rw.DstPort != nil {
			binary.BigEndian.PutUint16(l4[2:4], *rw.DstPort)
		}
		binary.BigEndian.PutUint16(l4[16:18], 0)
		binary.BigEndian.PutUint16(l4[16:18], transportChecksum(src, dst, ProtoTCP, l4))
	}
	return nil
}

// ReplaceUDPPayload returns a new frame identical to the input but carrying
// a different UDP payload, with lengths and checksums fixed. The DNS load
// balancer uses it to rewrite answers.
func ReplaceUDPPayload(frame, payload []byte) ([]byte, error) {
	var eth Ethernet
	if err := eth.Decode(frame); err != nil {
		return nil, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return nil, ErrBadHeader
	}
	var ip IPv4
	if err := ip.Decode(eth.Payload()); err != nil {
		return nil, err
	}
	if ip.Proto != ProtoUDP {
		return nil, ErrBadHeader
	}
	var udp UDP
	if err := udp.Decode(ip.Payload()); err != nil {
		return nil, err
	}
	return BuildUDP(eth.Src, eth.Dst, ip.Src, ip.Dst, udp.SrcPort, udp.DstPort, payload), nil
}
