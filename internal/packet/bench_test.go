package packet

import (
	"testing"
)

var benchFrame = BuildUDP(
	MAC{2, 0, 0, 0, 0, 1}, MAC{2, 0, 0, 0, 0, 2},
	IP{10, 0, 0, 1}, IP{10, 0, 0, 2}, 40000, 53, make([]byte, 470))

func BenchmarkParserParseUDP(b *testing.B) {
	var p Parser
	b.SetBytes(int64(len(benchFrame)))
	for i := 0; i < b.N; i++ {
		if err := p.Parse(benchFrame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParserParseTCP(b *testing.B) {
	frame := BuildTCP(MAC{2, 0, 0, 0, 0, 1}, MAC{2, 0, 0, 0, 0, 2},
		IP{10, 0, 0, 1}, IP{10, 0, 0, 2}, 40000, 80, TCPOptions{Flags: TCPAck}, make([]byte, 470))
	var p Parser
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if err := p.Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildUDP(b *testing.B) {
	payload := make([]byte, 470)
	for i := 0; i < b.N; i++ {
		BuildUDP(MAC{2, 0, 0, 0, 0, 1}, MAC{2, 0, 0, 0, 0, 2},
			IP{10, 0, 0, 1}, IP{10, 0, 0, 2}, 40000, 53, payload)
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}

func BenchmarkRewriteNAT(b *testing.B) {
	frame := Clone(benchFrame)
	newIP := IP{192, 168, 1, 1}
	newPort := uint16(41000)
	rw := Rewrite{SrcIP: &newIP, SrcPort: &newPort}
	for i := 0; i < b.N; i++ {
		if err := rw.Apply(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSDecode(b *testing.B) {
	q := NewDNSQuery(1, "edge.services.gnf.example")
	resp := AnswerA(q, 300, IP{10, 1, 1, 1}, IP{10, 1, 1, 2})
	wire, err := resp.Append(nil)
	if err != nil {
		b.Fatal(err)
	}
	var m DNSMessage
	for i := 0; i < b.N; i++ {
		if err := m.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSAppend(b *testing.B) {
	q := NewDNSQuery(1, "edge.services.gnf.example")
	resp := AnswerA(q, 300, IP{10, 1, 1, 1})
	buf := make([]byte, 0, 256)
	for i := 0; i < b.N; i++ {
		if _, err := resp.Append(buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHTTPParse(b *testing.B) {
	raw := BuildHTTPRequest("GET", "www.example.com", "/index.html",
		map[string]string{"User-Agent": "gnf-bench", "Accept": "*/*"}, nil)
	for i := 0; i < b.N; i++ {
		if _, err := ParseHTTPRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}
