package packet

import "testing"

func parseKey(t *testing.T, frame []byte) FlowKey {
	t.Helper()
	var p Parser
	if err := p.Parse(frame); err != nil {
		t.Fatal(err)
	}
	return p.FlowKey()
}

func TestFlowKeyCapturesSteeringFields(t *testing.T) {
	src, dst := MAC{2, 0, 0, 0, 0, 1}, MAC{2, 0, 0, 0, 0, 2}
	sip, dip := IP{10, 0, 0, 1}, IP{10, 0, 0, 2}
	base := BuildUDP(src, dst, sip, dip, 1000, 53, []byte("x"))

	k := parseKey(t, base)
	want := FlowKey{Src: src, Dst: dst, EtherType: EtherTypeIPv4,
		Proto: ProtoUDP, SrcIP: sip, DstIP: dip, SrcPort: 1000, DstPort: 53}
	if k != want {
		t.Fatalf("key = %+v, want %+v", k, want)
	}

	// Same flow, different payload: identical key.
	if k2 := parseKey(t, BuildUDP(src, dst, sip, dip, 1000, 53, []byte("other payload"))); k2 != k {
		t.Fatalf("payload changed the flow key: %+v vs %+v", k2, k)
	}
	// Every steerable field must flip the key.
	variants := [][]byte{
		BuildUDP(MAC{2, 0, 0, 0, 0, 9}, dst, sip, dip, 1000, 53, nil), // src MAC
		BuildUDP(src, MAC{2, 0, 0, 0, 0, 9}, sip, dip, 1000, 53, nil), // dst MAC
		BuildUDP(src, dst, IP{10, 0, 0, 9}, dip, 1000, 53, nil),       // src IP
		BuildUDP(src, dst, sip, IP{10, 0, 0, 9}, 1000, 53, nil),       // dst IP
		BuildUDP(src, dst, sip, dip, 1001, 53, nil),                   // src port
		BuildUDP(src, dst, sip, dip, 1000, 54, nil),                   // dst port
		TagVLAN(base, 3, 42),                                          // VID/tagged
	}
	for i, f := range variants {
		if kv := parseKey(t, f); kv == k {
			t.Fatalf("variant %d did not change the flow key", i)
		}
	}
}

func TestFlowKeyVLANAndNonIP(t *testing.T) {
	src, dst := MAC{2, 0, 0, 0, 0, 1}, MAC{2, 0, 0, 0, 0, 2}
	tagged := TagVLAN(BuildUDP(src, dst, IP{10, 0, 0, 1}, IP{10, 0, 0, 2}, 7, 8, nil), 5, 77)
	k := parseKey(t, tagged)
	if !k.Tagged || k.VID != 77 || k.EtherType != EtherTypeIPv4 {
		t.Fatalf("tagged key = %+v", k)
	}

	arp := BuildARP(ARPRequest, src, IP{10, 0, 0, 1}, MAC{}, IP{10, 0, 0, 2})
	ka := parseKey(t, arp)
	if ka.EtherType != EtherTypeARP || ka.Proto != 0 || ka.SrcPort != 0 {
		t.Fatalf("ARP key leaked transport fields: %+v", ka)
	}

	// ICMP flows: ports stay zero, proto distinguishes them from UDP.
	icmp := BuildICMPEcho(src, dst, IP{10, 0, 0, 1}, IP{10, 0, 0, 2}, ICMPEchoRequest, 7, 1, nil)
	ki := parseKey(t, icmp)
	if ki.Proto != ProtoICMP || ki.SrcPort != 0 || ki.DstPort != 0 {
		t.Fatalf("ICMP key = %+v", ki)
	}
}

func TestFlowKeyHashSpreads(t *testing.T) {
	// Hash must be deterministic and sensitive to single-field changes.
	a := FlowKey{SrcPort: 1000, DstPort: 53, Proto: ProtoUDP}
	if a.Hash() != a.Hash() {
		t.Fatal("hash not deterministic")
	}
	seen := map[uint64]bool{}
	for port := uint16(0); port < 1024; port++ {
		k := a
		k.SrcPort = port
		seen[k.Hash()] = true
	}
	if len(seen) != 1024 {
		t.Fatalf("hash collided on %d of 1024 single-field variants", 1024-len(seen))
	}
}
