package packet

import "sync"

// parserPool recycles Parsers for per-frame call sites that cannot keep a
// long-lived per-goroutine Parser (e.g. a switch pipeline entered from
// arbitrary delivery goroutines). A Parser self-references its scratch
// array through the layers slice, so a stack-declared one escapes to the
// heap — one allocation per frame, which at line rate turns into GC
// pressure that eats the extra cores.
var parserPool = sync.Pool{New: func() any { return new(Parser) }}

// BorrowParser fetches a pooled Parser; pair it with ReturnParser.
func BorrowParser() *Parser { return parserPool.Get().(*Parser) }

// ReturnParser recycles p. The caller must not touch p (or slices
// obtained from it — they alias the parsed frame) afterwards.
func ReturnParser(p *Parser) { parserPool.Put(p) }

// Parser decodes a frame into preallocated layer structs, the stdlib
// analogue of gopacket's DecodingLayerParser: one Parser per goroutine,
// reused across frames, zero allocations on the hot path.
//
//	var p packet.Parser
//	for frame := range frames {
//	    if err := p.Parse(frame); err != nil { continue }
//	    if p.Has(packet.LayerUDP) { use(p.UDP.DstPort) }
//	}
type Parser struct {
	Eth  Ethernet
	ARP  ARP
	IP   IPv4
	UDP  UDP
	TCP  TCP
	ICMP ICMP

	decoded [8]bool
	layers  []LayerType
	scratch [8]LayerType
}

// Parse decodes frame starting at Ethernet. It decodes as deep as it can
// and returns the first hard error; partially decoded layers remain
// queryable via Has.
func (p *Parser) Parse(frame []byte) error {
	for i := range p.decoded {
		p.decoded[i] = false
	}
	p.layers = p.scratch[:0]
	if err := p.Eth.Decode(frame); err != nil {
		return err
	}
	p.mark(LayerEthernet)
	switch p.Eth.EtherType {
	case EtherTypeARP:
		if err := p.ARP.Decode(p.Eth.Payload()); err != nil {
			return err
		}
		p.mark(LayerARP)
		return nil
	case EtherTypeIPv4:
		if err := p.IP.Decode(p.Eth.Payload()); err != nil {
			return err
		}
		p.mark(LayerIPv4)
	default:
		p.mark(LayerPayload)
		return nil
	}
	switch p.IP.Proto {
	case ProtoUDP:
		if err := p.UDP.Decode(p.IP.Payload()); err != nil {
			return err
		}
		p.mark(LayerUDP)
	case ProtoTCP:
		if err := p.TCP.Decode(p.IP.Payload()); err != nil {
			return err
		}
		p.mark(LayerTCP)
	case ProtoICMP:
		if err := p.ICMP.Decode(p.IP.Payload()); err != nil {
			return err
		}
		p.mark(LayerICMP)
	default:
		p.mark(LayerPayload)
	}
	return nil
}

func (p *Parser) mark(t LayerType) {
	p.decoded[t] = true
	p.layers = append(p.layers, t)
}

// Has reports whether layer t was decoded by the last Parse.
func (p *Parser) Has(t LayerType) bool { return p.decoded[t] }

// Layers returns the layer types decoded by the last Parse, outermost
// first. The slice is valid until the next Parse.
func (p *Parser) Layers() []LayerType { return p.layers }

// FiveTuple returns the transport flow of the last parsed frame; ok is
// false for non-TCP/UDP frames. ICMP frames report ports of zero with
// ok=true so ping flows remain trackable.
func (p *Parser) FiveTuple() (FiveTuple, bool) {
	if !p.Has(LayerIPv4) {
		return FiveTuple{}, false
	}
	ft := FiveTuple{Proto: p.IP.Proto}
	ft.Src.Addr = p.IP.Src
	ft.Dst.Addr = p.IP.Dst
	switch {
	case p.Has(LayerUDP):
		ft.Src.Port = p.UDP.SrcPort
		ft.Dst.Port = p.UDP.DstPort
	case p.Has(LayerTCP):
		ft.Src.Port = p.TCP.SrcPort
		ft.Dst.Port = p.TCP.DstPort
	case p.Has(LayerICMP):
		// ports stay zero
	default:
		return FiveTuple{}, false
	}
	return ft, true
}

// TransportPayload returns the application bytes of the last parsed frame
// (UDP datagram body or TCP segment body), or nil.
func (p *Parser) TransportPayload() []byte {
	switch {
	case p.Has(LayerUDP):
		return p.UDP.Payload()
	case p.Has(LayerTCP):
		return p.TCP.Payload()
	}
	return nil
}
