package packet

import (
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Fatalf("String = %q", got)
	}
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() {
		t.Fatal("broadcast classification wrong")
	}
	if m.IsBroadcast() || m.IsZero() {
		t.Fatal("unicast misclassified")
	}
	if !(MAC{}).IsZero() {
		t.Fatal("zero MAC not zero")
	}
	if (MAC{0x01}).IsMulticast() != true {
		t.Fatal("multicast bit not detected")
	}
}

func TestParseIP(t *testing.T) {
	cases := []struct {
		in   string
		want IP
		ok   bool
	}{
		{"10.0.0.1", IP{10, 0, 0, 1}, true},
		{"255.255.255.255", IP{255, 255, 255, 255}, true},
		{"0.0.0.0", IP{}, true},
		{"1.2.3", IP{}, false},
		{"1.2.3.4.5", IP{}, false},
		{"256.1.1.1", IP{}, false},
		{"a.b.c.d", IP{}, false},
		{"", IP{}, false},
		{"1..2.3", IP{}, false},
		{"01.2.3.4", IP{1, 2, 3, 4}, true}, // leading zeros tolerated
	}
	for _, c := range cases {
		got, ok := ParseIP(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseIP(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestIPStringRoundTripProperty(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		ip := IPv4Addr(a, b, c, d)
		got, ok := ParseIP(ip.String())
		return ok && got == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPUint32RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool { return IPFromUint32(v).Uint32() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFiveTupleReverseCanonical(t *testing.T) {
	ft := FiveTuple{
		Proto: ProtoTCP,
		Src:   Endpoint{Addr: IP{10, 0, 0, 2}, Port: 4000},
		Dst:   Endpoint{Addr: IP{10, 0, 0, 1}, Port: 80},
	}
	rev := ft.Reverse()
	if rev.Src != ft.Dst || rev.Dst != ft.Src || rev.Proto != ft.Proto {
		t.Fatalf("Reverse = %v", rev)
	}
	if ft.Canonical() != rev.Canonical() {
		t.Fatal("Canonical not symmetric")
	}
	if ft.String() == "" || ft.Src.String() == "" {
		t.Fatal("empty Stringer output")
	}
}

func TestCanonicalSymmetricProperty(t *testing.T) {
	f := func(sa, da [4]byte, sp, dp uint16, proto uint8) bool {
		ft := FiveTuple{Proto: proto, Src: Endpoint{IP(sa), sp}, Dst: Endpoint{IP(da), dp}}
		return ft.Canonical() == ft.Reverse().Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0x01, 0x02, 0x03}
	// Manual: 0x0102 + 0x0300 = 0x0402 -> ^0x0402 = 0xfbfd
	if got := Checksum(b); got != 0xfbfd {
		t.Fatalf("Checksum odd = %#04x", got)
	}
}

func TestProtoName(t *testing.T) {
	if ProtoName(ProtoTCP) != "tcp" || ProtoName(ProtoUDP) != "udp" || ProtoName(ProtoICMP) != "icmp" {
		t.Fatal("wrong known proto names")
	}
	if ProtoName(99) != "proto-99" {
		t.Fatalf("ProtoName(99) = %q", ProtoName(99))
	}
}

func TestClone(t *testing.T) {
	orig := []byte{1, 2, 3}
	c := Clone(orig)
	c[0] = 9
	if orig[0] != 1 {
		t.Fatal("Clone aliases input")
	}
}

func TestLayerTypeString(t *testing.T) {
	for lt, want := range map[LayerType]string{
		LayerEthernet: "Ethernet", LayerARP: "ARP", LayerIPv4: "IPv4",
		LayerUDP: "UDP", LayerTCP: "TCP", LayerICMP: "ICMP",
		LayerPayload: "Payload", LayerNone: "None",
	} {
		if lt.String() != want {
			t.Errorf("LayerType(%d).String() = %q, want %q", lt, lt.String(), want)
		}
	}
}
