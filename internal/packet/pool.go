package packet

import (
	"sync"
	"sync/atomic"
)

// FrameCap is the capacity of pooled frame buffers. It comfortably holds a
// DefaultMTU frame; Clone and the builders allocate exact-size buffers, so
// no organically built frame ever has this capacity — which is what lets
// ReturnFrame tell pooled buffers apart without a wrapper type.
const FrameCap = 2048

// framePool is a freelist of frame buffers for the batched dataplane. A
// sync.Pool is the obvious shape, but Put-ing a []byte boxes the slice
// header (one heap allocation per recycle), which defeats the point; a
// mutex-guarded stack of slice headers recycles with zero allocations in
// steady state.
var framePool struct {
	mu   sync.Mutex
	free [][]byte

	borrowed atomic.Uint64
	returned atomic.Uint64
}

// BorrowFrame returns a zero-length frame buffer with capacity FrameCap.
// Grow it with append or reslice it up to FrameCap. Hand it to a terminal
// owner (Endpoint.Send transfers ownership) or give it back with
// ReturnFrame.
func BorrowFrame() []byte {
	framePool.borrowed.Add(1)
	framePool.mu.Lock()
	if n := len(framePool.free); n > 0 {
		f := framePool.free[n-1]
		framePool.free[n-1] = nil
		framePool.free = framePool.free[:n-1]
		framePool.mu.Unlock()
		return f[:0]
	}
	framePool.mu.Unlock()
	return make([]byte, 0, FrameCap)
}

// ReturnFrame recycles a frame buffer previously handed out by BorrowFrame.
// Buffers of any other capacity are ignored, so terminal points in the
// dataplane (switch drops, host receive, NF drops) may call it on every
// frame they consume without knowing its provenance. The caller must not
// touch the slice afterwards.
func ReturnFrame(f []byte) {
	if cap(f) != FrameCap {
		return
	}
	framePool.returned.Add(1)
	framePool.mu.Lock()
	framePool.free = append(framePool.free, f[:0])
	framePool.mu.Unlock()
}

// BorrowFrames fills dst with zero-length pooled buffers, one per slot —
// BorrowFrame amortized to one lock acquisition for a whole batch.
func BorrowFrames(dst [][]byte) {
	framePool.borrowed.Add(uint64(len(dst)))
	framePool.mu.Lock()
	n := len(framePool.free)
	take := n
	if take > len(dst) {
		take = len(dst)
	}
	for i := 0; i < take; i++ {
		f := framePool.free[n-1-i]
		framePool.free[n-1-i] = nil
		dst[i] = f[:0]
	}
	framePool.free = framePool.free[:n-take]
	framePool.mu.Unlock()
	for i := take; i < len(dst); i++ {
		dst[i] = make([]byte, 0, FrameCap)
	}
}

// ReturnFrames recycles a batch of buffers under one lock acquisition,
// with the same any-capacity tolerance as ReturnFrame. Nil entries are
// skipped, so callers may hand over scratch slices with gaps.
func ReturnFrames(frames [][]byte) {
	pooled := 0
	for _, f := range frames {
		if cap(f) == FrameCap {
			pooled++
		}
	}
	if pooled == 0 {
		return
	}
	framePool.returned.Add(uint64(pooled))
	framePool.mu.Lock()
	for _, f := range frames {
		if cap(f) == FrameCap {
			framePool.free = append(framePool.free, f[:0])
		}
	}
	framePool.mu.Unlock()
}

// FramePoolOutstanding reports borrowed-but-not-returned pooled frames —
// the leak signal tests assert converges to a baseline once traffic drains.
func FramePoolOutstanding() int64 {
	return int64(framePool.borrowed.Load()) - int64(framePool.returned.Load())
}
