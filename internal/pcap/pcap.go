// Package pcap writes and reads classic libpcap capture files (the
// tcpdump/Wireshark format), so traffic captured from netem taps can be
// inspected with standard tooling — the debugging workflow the GNF authors
// describe using on their OpenWrt routers.
//
//	w, _ := pcap.NewWriter(f, pcap.DefaultSnapLen)
//	host.Tap(func(frame []byte) { w.WritePacket(clk.Now(), frame) })
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// File-format constants.
const (
	magicNumber  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	// LinkTypeEthernet is the only link type GNF captures.
	LinkTypeEthernet = 1
	// DefaultSnapLen stores frames whole up to this size.
	DefaultSnapLen = 65535
)

// Errors returned by the reader.
var (
	ErrBadMagic   = errors.New("pcap: bad magic number")
	ErrBadVersion = errors.New("pcap: unsupported version")
	ErrTruncated  = errors.New("pcap: truncated file")
)

// Writer streams packets into a pcap file. Safe for concurrent use (taps
// fire from dataplane goroutines).
type Writer struct {
	mu      sync.Mutex
	w       io.Writer
	snapLen uint32
	packets uint64
}

// NewWriter writes the global header and returns a packet writer.
func NewWriter(w io.Writer, snapLen uint32) (*Writer, error) {
	if snapLen == 0 {
		snapLen = DefaultSnapLen
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicNumber)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// WritePacket appends one captured frame with the given timestamp.
func (w *Writer) WritePacket(ts time.Time, frame []byte) error {
	capLen := uint32(len(frame))
	if capLen > w.snapLen {
		capLen = w.snapLen
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:], capLen)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(frame)))
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(frame[:capLen]); err != nil {
		return err
	}
	w.packets++
	return nil
}

// Count returns the number of packets written.
func (w *Writer) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.packets
}

// Packet is one record read back from a capture.
type Packet struct {
	Timestamp time.Time
	// Data is the captured bytes (possibly snapped short of OrigLen).
	Data    []byte
	OrigLen int
}

// Reader iterates a pcap file.
type Reader struct {
	r       io.Reader
	snapLen uint32
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicNumber {
		return nil, ErrBadMagic
	}
	if binary.LittleEndian.Uint16(hdr[4:]) != versionMajor {
		return nil, ErrBadVersion
	}
	return &Reader{r: r, snapLen: binary.LittleEndian.Uint32(hdr[16:])}, nil
}

// Next returns the next packet, or io.EOF at clean end of file.
func (r *Reader) Next() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	sec := binary.LittleEndian.Uint32(hdr[0:])
	usec := binary.LittleEndian.Uint32(hdr[4:])
	capLen := binary.LittleEndian.Uint32(hdr[8:])
	origLen := binary.LittleEndian.Uint32(hdr[12:])
	if capLen > r.snapLen {
		return Packet{}, fmt.Errorf("pcap: record capLen %d exceeds snapLen %d", capLen, r.snapLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), int64(usec)*1000),
		Data:      data,
		OrigLen:   int(origLen),
	}, nil
}

// ReadAll drains the file.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
