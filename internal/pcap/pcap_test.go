package pcap

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"

	"gnf/internal/netem"
	"gnf/internal/packet"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, DefaultSnapLen)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1471852800, 123456000) // 2016-08-22, microsecond precision
	frames := [][]byte{
		packet.BuildARP(packet.ARPRequest, packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}, packet.MAC{}, packet.IP{10, 0, 0, 2}),
		packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
			packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2}, 1000, 53, []byte("payload")),
	}
	for i, f := range frames {
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Millisecond), f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Fatalf("count = %d", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d packets", len(got))
	}
	for i := range frames {
		if !bytes.Equal(got[i].Data, frames[i]) {
			t.Fatalf("packet %d corrupted", i)
		}
		if got[i].OrigLen != len(frames[i]) {
			t.Fatalf("origLen = %d", got[i].OrigLen)
		}
	}
	if !got[0].Timestamp.Equal(ts) {
		t.Fatalf("timestamp = %v, want %v", got[0].Timestamp, ts)
	}
}

func TestSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 16)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 100)
	for i := range frame {
		frame[i] = byte(i)
	}
	if err := w.WritePacket(time.Now(), frame); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 16 || p.OrigLen != 100 {
		t.Fatalf("snap = %d/%d", len(p.Data), p.OrigLen)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file............."))); err != ErrBadMagic {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
	// Truncated record body.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, DefaultSnapLen)
	w.WritePacket(time.Now(), make([]byte, 60))
	trunc := buf.Bytes()[:buf.Len()-10]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestTapCapture(t *testing.T) {
	// End to end: capture live frames from a netem host tap.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, DefaultSnapLen)
	if err != nil {
		t.Fatal(err)
	}
	a, b := netem.NewVethPair("a", "b")
	defer a.Close()
	ha := netem.NewHost(packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}, a)
	hb := netem.NewHost(packet.MAC{2, 0, 0, 0, 0, 2}, packet.IP{10, 0, 0, 2}, b)
	hb.Tap(func(frame []byte) { w.WritePacket(time.Now(), frame) })
	ha.Learn(packet.IP{10, 0, 0, 2}, packet.MAC{2, 0, 0, 0, 0, 2})

	const n = 10
	for i := 0; i < n; i++ {
		ha.SendUDP(packet.Endpoint{Addr: packet.IP{10, 0, 0, 2}, Port: 7}, 9, []byte{byte(i)})
	}
	deadline := time.After(2 * time.Second)
	for w.Count() < n {
		select {
		case <-deadline:
			t.Fatalf("captured %d of %d", w.Count(), n)
		case <-time.After(2 * time.Millisecond):
		}
	}
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	pkts, err := r.ReadAll()
	if err != nil || len(pkts) != n {
		t.Fatalf("read %d, err %v", len(pkts), err)
	}
	var p packet.Parser
	if err := p.Parse(pkts[0].Data); err != nil || !p.Has(packet.LayerUDP) {
		t.Fatalf("captured frame unparseable: %v", err)
	}
}

// Property: any byte blob round-trips through write+read intact.
func TestRoundTripProperty(t *testing.T) {
	f := func(blobs [][]byte) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, DefaultSnapLen)
		if err != nil {
			return false
		}
		for _, blob := range blobs {
			if len(blob) > int(DefaultSnapLen) {
				blob = blob[:DefaultSnapLen]
			}
			if err := w.WritePacket(time.Unix(0, 0), blob); err != nil {
				return false
			}
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(blobs) {
			return false
		}
		for i := range blobs {
			want := blobs[i]
			if len(want) > int(DefaultSnapLen) {
				want = want[:DefaultSnapLen]
			}
			if !bytes.Equal(got[i].Data, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
