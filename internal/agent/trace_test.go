package agent_test

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/trace"
	"gnf/internal/wire"
)

// fakeManager is a wire server speaking just enough of the manager.*
// surface to accept an agent connection and capture flushed span batches.
type fakeManager struct {
	srv  *wire.Server
	peer *wire.Peer

	mu    sync.Mutex
	spans []trace.SpanRecord
}

func newFakeManager(t *testing.T) *fakeManager {
	t.Helper()
	fm := &fakeManager{}
	srv, err := wire.NewServer("127.0.0.1:0", func(p *wire.Peer) {
		p.Handle(agent.MethodRegister, func(json.RawMessage) (any, error) { return nil, nil })
		p.Handle(agent.MethodClientEvent, func(json.RawMessage) (any, error) { return nil, nil })
		p.Handle(agent.MethodSpans, func(body json.RawMessage) (any, error) {
			var b agent.SpanBatch
			if err := json.Unmarshal(body, &b); err != nil {
				return nil, err
			}
			fm.mu.Lock()
			fm.spans = append(fm.spans, b.Spans...)
			fm.mu.Unlock()
			return nil, nil
		})
		p.HandleNotify(agent.MethodReport, func(json.RawMessage) {})
		p.HandleNotify(agent.MethodNFAlert, func(json.RawMessage) {})
		fm.mu.Lock()
		fm.peer = p
		fm.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	fm.srv = srv
	t.Cleanup(func() { srv.Close() })
	return fm
}

// drain returns the spans flushed since the last drain. No waiting is
// needed: traced handlers flush synchronously before responding, so by the
// time a traced call returns, its spans have been captured.
func (fm *fakeManager) drain() []trace.SpanRecord {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	out := fm.spans
	fm.spans = nil
	return out
}

// TestTraceHeaderDegradesToFreshRoot pins the wire-level contract of the
// agent's traced handlers: no header means no span (the zero-overhead
// path), a corrupt/foreign header degrades to a fresh root span instead of
// failing the RPC, and a well-formed header nests the agent's span under
// the caller's.
func TestTraceHeaderDegradesToFreshRoot(t *testing.T) {
	st := newStation(t)
	fm := newFakeManager(t)
	link, err := agent.Connect(st.ag, fm.srv.Addr(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(link.Close)
	// The accept callback parked the server-side peer for us.
	waitCount(t, time.Second, func() bool { return fm.peerReady() })

	// 1. No header: the RPC is served without producing any span.
	if err := fm.peer.Call(agent.MethodPing, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := fm.drain(); len(got) != 0 {
		t.Fatalf("untraced ping produced spans: %+v", got)
	}

	// 2. Garbage header: the RPC must still succeed, with a fresh root.
	if err := fm.peer.CallTraced(agent.MethodPing, "!!not-a-trace-header!!", nil, nil); err != nil {
		t.Fatalf("garbage trace header failed the RPC: %v", err)
	}
	spans := fm.drain()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1: %+v", len(spans), spans)
	}
	if spans[0].Parent != "" {
		t.Errorf("garbage header produced a child span (parent %q), want a fresh root", spans[0].Parent)
	}
	if spans[0].Name != agent.MethodPing || spans[0].TraceID == "" {
		t.Errorf("unexpected root span: %+v", spans[0])
	}

	// 3. Well-formed header: the agent's span nests under the caller's.
	if err := fm.peer.CallTraced(agent.MethodPing, "aaaaaaaabbbb-ccccccccdddd-1", nil, nil); err != nil {
		t.Fatal(err)
	}
	spans = fm.drain()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1: %+v", len(spans), spans)
	}
	if spans[0].TraceID != "aaaaaaaabbbb" || spans[0].Parent != "ccccccccdddd" {
		t.Errorf("span did not nest under the wire context: %+v", spans[0])
	}
}

// peerReady reports whether the accept callback has surfaced the
// server-side peer, adopting it on first sight.
func (fm *fakeManager) peerReady() bool {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	return fm.peer != nil
}
