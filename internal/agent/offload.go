// GNFC offload support (Cziva et al., "GNFC: Towards Network Function
// Cloudification", IEEE NFV-SDN 2016 — reference [2] of the demo paper):
// chains can run away from the client's station, typically on a cloud
// site, with the client's traffic detoured through a provisioned tunnel.
//
// The agent's share of the mechanism is three-fold:
//
//   - Tunnels: the wiring layer provisions one WAN-emulated veth between
//     every edge station and every cloud site, attached as *service* ports
//     (no MAC learning, excluded from flooding) so the L2 topology stays
//     loop-free, and registers each end here.
//   - Detour steering (client's station): a high-priority rule redirects
//     everything the client emits into the tunnel toward the hosting site.
//   - Remote chain steering (hosting site): tunnel arrivals from the
//     client enter the chain ingress; backhaul frames addressed to the
//     client enter the chain egress; frames the chain emits toward the
//     client are pushed back into the tunnel.
package agent

import (
	"fmt"

	"gnf/internal/netem"
	"gnf/internal/topology"
)

// RegisterTunnel records the local switch port of a provisioned tunnel to
// peer. The wiring layer calls this on both ends after attaching the
// tunnel veth as service ports.
func (a *Agent) RegisterTunnel(peer topology.StationID, port netem.PortID) {
	a.mu.Lock()
	a.tunnels[peer] = port
	a.mu.Unlock()
}

// TunnelTo reports the local port of the tunnel to peer.
func (a *Agent) TunnelTo(peer topology.StationID) (netem.PortID, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.tunnels[peer]
	return p, ok
}

// Tunnels lists registered tunnel peers.
func (a *Agent) Tunnels() []topology.StationID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]topology.StationID, 0, len(a.tunnels))
	for p := range a.tunnels {
		out = append(out, p)
	}
	return out
}

// installRemoteSteering programs the hosting-site rules for a remote
// deployment: tunnel ingress by client source MAC, backhaul egress by
// client destination MAC (MAC, not IP, so unicast ARP replies detour
// too), and the return leg from the chain's client side back into the
// tunnel.
func (a *Agent) installRemoteSteering(spec DeploySpec, tunnel netem.PortID, inPort, outPort netem.PortID) []int {
	src, dst := spec.ClientMAC, spec.ClientMAC
	up := a.uplink
	tp := tunnel
	cin := inPort
	return []int{
		a.sw.AddRule(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &tp, SrcMAC: &src},
			Action:   netem.ActionRedirect,
			OutPort:  inPort,
		}),
		a.sw.AddRule(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &up, DstMAC: &dst},
			Action:   netem.ActionRedirect,
			OutPort:  outPort,
		}),
		a.sw.AddRule(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &cin},
			Action:   netem.ActionRedirect,
			OutPort:  tp,
		}),
	}
}

// Steer detours everything the client emits into the tunnel toward via —
// the client-station half of an offload. Re-steering an already steered
// client atomically replaces the previous detour.
func (a *Agent) Steer(client topology.ClientID, via topology.StationID) error {
	a.mu.Lock()
	ci, haveClient := a.clients[client]
	tp, haveTunnel := a.tunnels[via]
	oldRule, wasSteered := a.steers[client]
	a.mu.Unlock()
	if !haveClient {
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	if !haveTunnel {
		return fmt.Errorf("%w: %s", ErrNoTunnel, via)
	}
	cp := ci.port
	id := a.sw.AddRule(netem.Rule{
		Priority: detourPriority,
		Match:    netem.Match{InPort: &cp},
		Action:   netem.ActionRedirect,
		OutPort:  tp,
	})
	a.mu.Lock()
	a.steers[client] = id
	a.mu.Unlock()
	if wasSteered {
		a.sw.RemoveRule(oldRule)
	}
	return nil
}

// ClearSteer removes the client's detour; its traffic flows the normal
// station path (and through any local chains) again.
func (a *Agent) ClearSteer(client topology.ClientID) error {
	a.mu.Lock()
	id, ok := a.steers[client]
	delete(a.steers, client)
	a.mu.Unlock()
	if !ok {
		return nil // idempotent: recall after partial failures re-clears
	}
	a.sw.RemoveRule(id)
	return nil
}

// Steered reports whether the client currently has a detour installed.
func (a *Agent) Steered(client topology.ClientID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.steers[client]
	return ok
}

// Retarget re-points a remote deployment at the tunnel to via — the
// hosting-site half of roaming an offloaded client: the chain stays put,
// only its tunnel rules move.
func (a *Agent) Retarget(chain string, via topology.StationID) error {
	a.mu.Lock()
	dep, ok := a.deployments[chain]
	if !ok {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownChain, chain)
	}
	if !dep.spec.Remote {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotRemote, chain)
	}
	tp, haveTunnel := a.tunnels[via]
	a.mu.Unlock()
	if !haveTunnel {
		return fmt.Errorf("%w: %s", ErrNoTunnel, via)
	}

	spec := dep.spec
	spec.Via = string(via)
	newRules := a.installRemoteSteering(spec, tp, dep.ports[0], dep.ports[1])
	a.mu.Lock()
	old := dep.ruleIDs
	dep.ruleIDs = newRules
	dep.spec = spec
	a.mu.Unlock()
	for _, id := range old {
		a.sw.RemoveRule(id)
	}
	return nil
}
