package agent_test

import (
	"errors"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/netem"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

// twoSites wires an edge agent and a cloud agent whose switches share a
// tunnel veth (service ports), plus a client host behind the edge and a
// server host behind the cloud-side backhaul... kept minimal: both
// stations hang off the same "backbone" switch through their uplinks.
type twoSites struct {
	edge, cloud *agent.Agent
	client      *netem.Host
	server      *netem.Host
}

func newTwoSites(t *testing.T) *twoSites {
	t.Helper()
	clk := clock.NewAutoVirtual()
	repo := container.NewRepository(clk, 0, 0)
	pushImages(repo)

	backbone := netem.NewSwitch("bb")

	mk := func(name string, cloud bool) (*agent.Agent, *netem.Switch) {
		rt := container.NewRuntime(name, clk, repo)
		sw := netem.NewSwitch(name)
		up, core := netem.NewVethPair(name+"-up", name+"-core", netem.WithClock(clk))
		sw.Attach(0, up)
		switch name {
		case "edge":
			backbone.Attach(1, core)
		default:
			backbone.Attach(2, core)
		}
		var opts []agent.Option
		if cloud {
			opts = append(opts, agent.WithCloud())
		}
		return agent.New(topology.StationID(name), clk, rt, sw, 0, opts...), sw
	}
	edgeAg, edgeSw := mk("edge", false)
	cloudAg, cloudSw := mk("cloud", true)

	// Tunnel between the two switches, attached as service ports.
	te, tc := netem.NewVethPair("edge-tun", "cloud-tun", netem.WithClock(clk))
	edgeSw.AttachService(50, te)
	cloudSw.AttachService(50, tc)
	edgeAg.RegisterTunnel("cloud", 50)
	cloudAg.RegisterTunnel("edge", 50)

	// Client on edge port 1; server on backbone port 3.
	cl, clSw := netem.NewVethPair("cl", "ap", netem.WithClock(clk))
	edgeSw.Attach(1, clSw)
	client := netem.NewHost(clientMAC, clientIP, cl)
	srvSide, srvCore := netem.NewVethPair("srv", "srv-core", netem.WithClock(clk))
	backbone.Attach(3, srvCore)
	server := netem.NewHost(serverMAC, serverIP, srvSide)
	client.Learn(serverIP, serverMAC)
	server.Learn(clientIP, clientMAC)

	edgeAg.AttachClient("phone", clientMAC, clientIP, 1)
	return &twoSites{edge: edgeAg, cloud: cloudAg, client: client, server: server}
}

// timeoutC returns a channel firing after the per-assertion deadline.
func timeoutC(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(2 * time.Second)
}

func TestTunnelRegistry(t *testing.T) {
	ts := newTwoSites(t)
	if p, ok := ts.edge.TunnelTo("cloud"); !ok || p != 50 {
		t.Fatalf("edge tunnel = %v %v", p, ok)
	}
	if _, ok := ts.edge.TunnelTo("mars"); ok {
		t.Fatal("unknown tunnel resolved")
	}
	if got := ts.edge.Tunnels(); len(got) != 1 || got[0] != "cloud" {
		t.Fatalf("Tunnels = %v", got)
	}
	if !ts.cloud.Cloud() || ts.edge.Cloud() {
		t.Fatal("cloud flags wrong")
	}
}

func TestRemoteDeployAndDetourCarryTraffic(t *testing.T) {
	ts := newTwoSites(t)

	// Remote chain on the cloud, fed by the tunnel from "edge".
	_, err := ts.cloud.Deploy(agent.DeploySpec{
		Chain:     "fw",
		Client:    "phone",
		ClientMAC: clientMAC,
		ClientIP:  clientIP,
		Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw0"}},
		Enabled:   true,
		Remote:    true,
		Via:       "edge",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.edge.Steer("phone", "cloud"); err != nil {
		t.Fatal(err)
	}
	if !ts.edge.Steered("phone") {
		t.Fatal("not steered")
	}

	got := make(chan []byte, 16)
	ts.server.HandleUDP(7000, func(src, dst packet.Endpoint, payload []byte) []byte {
		got <- append([]byte(nil), payload...)
		return nil
	})
	if err := ts.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		if string(b) != "hi" {
			t.Fatalf("payload = %q", b)
		}
	case <-timeoutC(t):
		t.Fatal("packet never crossed the detour")
	}
	// The frame really went through the remote chain.
	fn, err := ts.cloud.ChainFunction("fw")
	if err != nil {
		t.Fatal(err)
	}
	if fn.NFStats()["fw0.accepted"] == 0 {
		t.Fatalf("remote chain saw nothing: %v", fn.NFStats())
	}

	// Return traffic rides the tunnel back through the chain.
	pong := make(chan struct{}, 1)
	ts.client.HandleUDP(6000, func(src, dst packet.Endpoint, payload []byte) []byte {
		pong <- struct{}{}
		return nil
	})
	if err := ts.server.SendUDP(packet.Endpoint{Addr: clientIP, Port: 6000}, 7000, []byte("yo")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-pong:
	case <-timeoutC(t):
		t.Fatal("return packet never arrived")
	}
}

func TestRemoteDeployWithoutTunnelFails(t *testing.T) {
	ts := newTwoSites(t)
	_, err := ts.cloud.Deploy(agent.DeploySpec{
		Chain:     "fw",
		Client:    "phone",
		ClientMAC: clientMAC,
		Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw0"}},
		Remote:    true,
		Via:       "atlantis",
	})
	if !errors.Is(err, agent.ErrNoTunnel) {
		t.Fatalf("err = %v", err)
	}
	// The failed deploy must leave nothing behind.
	if got := ts.cloud.Chains(); len(got) != 0 {
		t.Fatalf("chains = %v", got)
	}
}

func TestSteerErrors(t *testing.T) {
	ts := newTwoSites(t)
	if err := ts.edge.Steer("ghost", "cloud"); !errors.Is(err, agent.ErrUnknownClient) {
		t.Fatalf("err = %v", err)
	}
	if err := ts.edge.Steer("phone", "atlantis"); !errors.Is(err, agent.ErrNoTunnel) {
		t.Fatalf("err = %v", err)
	}
	// ClearSteer is idempotent.
	if err := ts.edge.ClearSteer("phone"); err != nil {
		t.Fatal(err)
	}
}

func TestSteerReplacedAtomicallyAndClearedOnDetach(t *testing.T) {
	ts := newTwoSites(t)
	if err := ts.edge.Steer("phone", "cloud"); err != nil {
		t.Fatal(err)
	}
	// Re-steering replaces rather than stacking rules.
	if err := ts.edge.Steer("phone", "cloud"); err != nil {
		t.Fatal(err)
	}
	rules := ts.edge.Switch().Rules()
	n := 0
	for range rules {
		n++
	}
	if n != 1 {
		t.Fatalf("%d rules after double steer", n)
	}
	ts.edge.DetachClient("phone")
	if ts.edge.Steered("phone") {
		t.Fatal("steer survived detach")
	}
	if got := len(ts.edge.Switch().Rules()); got != 0 {
		t.Fatalf("%d rules after detach", got)
	}
}

func TestRetargetMovesTunnelRules(t *testing.T) {
	ts := newTwoSites(t)
	// A second tunnel pretends to lead to station "edge2".
	e2, _ := netem.NewVethPair("t2a", "t2b", netem.WithClock(clock.NewAutoVirtual()))
	ts.cloud.Switch().AttachService(60, e2)
	ts.cloud.RegisterTunnel("edge2", 60)

	if _, err := ts.cloud.Deploy(agent.DeploySpec{
		Chain:     "fw",
		Client:    "phone",
		ClientMAC: clientMAC,
		Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw0"}},
		Enabled:   true,
		Remote:    true,
		Via:       "edge",
	}); err != nil {
		t.Fatal(err)
	}
	before := len(ts.cloud.Switch().Rules())
	if err := ts.cloud.Retarget("fw", "edge2"); err != nil {
		t.Fatal(err)
	}
	if got := len(ts.cloud.Switch().Rules()); got != before {
		t.Fatalf("rules %d -> %d; retarget must replace, not add", before, got)
	}
	// Errors: unknown chain, local chain, unknown tunnel.
	if err := ts.cloud.Retarget("nope", "edge"); !errors.Is(err, agent.ErrUnknownChain) {
		t.Fatalf("err = %v", err)
	}
	if err := ts.cloud.Retarget("fw", "atlantis"); !errors.Is(err, agent.ErrNoTunnel) {
		t.Fatalf("err = %v", err)
	}
	ts.edge.AttachClient("phone", clientMAC, clientIP, 1)
	if _, err := ts.edge.Deploy(agent.DeploySpec{
		Chain:     "local",
		Client:    "phone",
		Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw0"}},
		Enabled:   true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := ts.edge.Retarget("local", "cloud"); !errors.Is(err, agent.ErrNotRemote) {
		t.Fatalf("err = %v", err)
	}
}
