package agent

import (
	"encoding/json"
	"sync"
	"time"

	"gnf/internal/topology"
	"gnf/internal/wire"
)

// Link is the agent's connection to the Manager: it serves the agent.*
// RPC methods and pushes registration, periodic reports, client events and
// NF alerts upward.
type Link struct {
	agent *Agent
	peer  *wire.Peer

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
	done    chan struct{}
}

// Connect dials the manager, registers this agent and starts the
// reporting loop. interval <= 0 uses the 1s default.
func Connect(a *Agent, managerAddr string, interval time.Duration) (*Link, error) {
	peer, err := wire.Dial(managerAddr)
	if err != nil {
		return nil, err
	}
	l := &Link{agent: a, peer: peer, stop: make(chan struct{}), done: make(chan struct{})}
	l.installHandlers()
	go peer.Run()

	if err := peer.Call(MethodRegister, RegisterSpec{
		Station:     string(a.Station()),
		MemoryBytes: a.Runtime().Capacity(),
		Cloud:       a.Cloud(),
		Chains:      a.Chains(),
	}, nil); err != nil {
		peer.Close()
		return nil, err
	}
	// NF alerts relay as fire-and-forget notifications; client events ride
	// a synchronous call so the handoff path only continues once the
	// manager has recorded the (dis)connection — §3's notification with
	// delivery-order guarantees, which roaming correctness depends on.
	a.OnAlert(func(al Alert) { peer.Notify(MethodNFAlert, al) })
	a.OnClientEvent(func(ev ClientEvent) { peer.Call(MethodClientEvent, ev, nil) })

	if interval <= 0 {
		interval = reportEvery
	}
	go l.reportLoop(interval)
	peer.OnClose(func(error) { l.Close() })
	return l, nil
}

// Peer exposes the underlying wire peer (tests).
func (l *Link) Peer() *wire.Peer { return l.peer }

// Close stops reporting and closes the connection.
func (l *Link) Close() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	close(l.stop)
	l.mu.Unlock()
	l.peer.Close()
	<-l.done
}

func (l *Link) reportLoop(interval time.Duration) {
	defer close(l.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.peer.Notify(MethodReport, l.agent.Report())
		}
	}
}

// installHandlers exposes the agent's local API over the wire.
func (l *Link) installHandlers() {
	a := l.agent
	l.peer.Handle(MethodPing, func(json.RawMessage) (any, error) {
		return map[string]string{"station": string(a.Station())}, nil
	})
	l.peer.Handle(MethodDeploy, func(body json.RawMessage) (any, error) {
		var spec DeploySpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return a.Deploy(spec)
	})
	l.peer.Handle(MethodRemove, func(body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		return nil, a.Remove(ref.Chain)
	})
	l.peer.Handle(MethodEnable, func(body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		return nil, a.Enable(ref.Chain)
	})
	l.peer.Handle(MethodDisable, func(body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		if ref.Brownout {
			return nil, a.Freeze(ref.Chain)
		}
		return nil, a.Disable(ref.Chain)
	})
	l.peer.Handle(MethodCheckpoint, func(body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		state, err := a.Checkpoint(ref.Chain)
		if err != nil {
			return nil, err
		}
		return CheckpointResult{Chain: ref.Chain, State: state}, nil
	})
	l.peer.Handle(MethodRestore, func(body json.RawMessage) (any, error) {
		var spec RestoreSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.Restore(spec.Chain, spec.State)
	})
	l.peer.Handle(MethodPreCopy, func(body json.RawMessage) (any, error) {
		var spec PreCopySpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return a.PreCopy(spec.Chain, spec.Restart)
	})
	l.peer.Handle(MethodSyncDelta, func(body json.RawMessage) (any, error) {
		var spec SyncDeltaSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.SyncDelta(spec.Chain, spec.State)
	})
	l.peer.Handle(MethodActivate, func(body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		return a.Activate(ref.Chain)
	})
	l.peer.Handle(MethodPrefetch, func(body json.RawMessage) (any, error) {
		var spec PrefetchSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.Prefetch(spec.Images)
	})
	l.peer.Handle(MethodStats, func(json.RawMessage) (any, error) {
		return a.Report(), nil
	})
	l.peer.Handle(MethodSteer, func(body json.RawMessage) (any, error) {
		var spec SteerSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.Steer(topology.ClientID(spec.Client), topology.StationID(spec.Via))
	})
	l.peer.Handle(MethodUnsteer, func(body json.RawMessage) (any, error) {
		var spec UnsteerSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.ClearSteer(topology.ClientID(spec.Client))
	})
	l.peer.Handle(MethodScalePool, func(body json.RawMessage) (any, error) {
		var spec ScalePoolSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.ScalePool(spec.Kinds, spec.ConfigHash, spec.Replicas)
	})
	l.peer.Handle(MethodRetarget, func(body json.RawMessage) (any, error) {
		var spec RetargetSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.Retarget(spec.Chain, topology.StationID(spec.Via))
	})
}
