package agent

import (
	"encoding/json"
	"sync"
	"time"

	"gnf/internal/topology"
	"gnf/internal/trace"
	"gnf/internal/wire"
)

// Link is the agent's connection to the Manager: it serves the agent.*
// RPC methods and pushes registration, periodic reports, client events and
// NF alerts upward.
type Link struct {
	agent *Agent
	peer  *wire.Peer

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
	done    chan struct{}
}

// Connect dials the manager, registers this agent and starts the
// reporting loop. interval <= 0 uses the 1s default.
func Connect(a *Agent, managerAddr string, interval time.Duration) (*Link, error) {
	peer, err := wire.Dial(managerAddr)
	if err != nil {
		return nil, err
	}
	l := &Link{agent: a, peer: peer, stop: make(chan struct{}), done: make(chan struct{})}
	l.installHandlers()
	go peer.Run()

	if err := peer.Call(MethodRegister, RegisterSpec{
		Station:     string(a.Station()),
		MemoryBytes: a.Runtime().Capacity(),
		Cloud:       a.Cloud(),
		Chains:      a.Chains(),
	}, nil); err != nil {
		peer.Close()
		return nil, err
	}
	// NF alerts relay as fire-and-forget notifications; client events ride
	// a synchronous call so the handoff path only continues once the
	// manager has recorded the (dis)connection — §3's notification with
	// delivery-order guarantees, which roaming correctness depends on.
	a.OnAlert(func(al Alert) { peer.Notify(MethodNFAlert, al) })
	a.OnClientEvent(func(ev ClientEvent) { peer.Call(MethodClientEvent, ev, nil) })

	if interval <= 0 {
		interval = reportEvery
	}
	go l.reportLoop(interval)
	peer.OnClose(func(error) { l.Close() })
	return l, nil
}

// Peer exposes the underlying wire peer (tests).
func (l *Link) Peer() *wire.Peer { return l.peer }

// Close stops reporting and closes the connection.
func (l *Link) Close() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	close(l.stop)
	l.mu.Unlock()
	l.peer.Close()
	<-l.done
}

func (l *Link) reportLoop(interval time.Duration) {
	defer close(l.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.peer.Notify(MethodReport, l.agent.Report())
		}
	}
}

// flushSpans ships the agent's buffered spans up to the manager. Traced
// handlers call it synchronously before returning their response, so by the
// time the manager's traced call completes, every span the agent produced
// for it is already in the manager's store — no eventual-consistency window
// for scenario assertions (or operators) to race against. Safe from inside
// a handler because wire handlers run on their own goroutines.
func (l *Link) flushSpans() {
	batch := l.agent.Tracer().Drain()
	if len(batch) == 0 {
		return
	}
	l.peer.Call(MethodSpans, SpanBatch{Station: string(l.agent.Station()), Spans: batch}, nil)
}

// installHandlers exposes the agent's local API over the wire. Every
// handler is wrapped in trace propagation: an empty trace header costs
// nothing, a valid one opens a child span under the caller's trace, and a
// corrupt/foreign one degrades to a fresh root span rather than an error.
func (l *Link) installHandlers() {
	a := l.agent
	traced := func(method string, h func(trace.Context, json.RawMessage) (any, error)) {
		l.peer.HandleTraced(method, func(hdr string, body json.RawMessage) (any, error) {
			if hdr == "" {
				return h(trace.Context{}, body)
			}
			parent, _ := trace.ParseHeader(hdr) // garbage parses to a zero Context → fresh root
			sp := a.Tracer().StartSpan(parent, method)
			out, err := h(sp.Context(), body)
			sp.End(err)
			l.flushSpans()
			return out, err
		})
	}
	traced(MethodPing, func(_ trace.Context, _ json.RawMessage) (any, error) {
		return map[string]string{"station": string(a.Station())}, nil
	})
	traced(MethodDeploy, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec DeploySpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return a.Deploy(spec)
	})
	traced(MethodRemove, func(_ trace.Context, body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		return nil, a.Remove(ref.Chain)
	})
	traced(MethodEnable, func(_ trace.Context, body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		return nil, a.Enable(ref.Chain)
	})
	traced(MethodDisable, func(_ trace.Context, body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		if ref.Brownout {
			return nil, a.Freeze(ref.Chain)
		}
		return nil, a.Disable(ref.Chain)
	})
	traced(MethodCheckpoint, func(_ trace.Context, body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		state, err := a.Checkpoint(ref.Chain)
		if err != nil {
			return nil, err
		}
		return CheckpointResult{Chain: ref.Chain, State: state}, nil
	})
	traced(MethodRestore, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec RestoreSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.Restore(spec.Chain, spec.State)
	})
	traced(MethodPreCopy, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec PreCopySpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return a.PreCopy(spec.Chain, spec.Restart)
	})
	traced(MethodSyncDelta, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec SyncDeltaSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.SyncDelta(spec.Chain, spec.State)
	})
	traced(MethodActivate, func(tctx trace.Context, body json.RawMessage) (any, error) {
		var ref ChainRef
		if err := json.Unmarshal(body, &ref); err != nil {
			return nil, err
		}
		return a.ActivateTraced(tctx, ref.Chain)
	})
	traced(MethodPrefetch, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec PrefetchSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.Prefetch(spec.Images)
	})
	traced(MethodStats, func(_ trace.Context, _ json.RawMessage) (any, error) {
		return a.Report(), nil
	})
	traced(MethodSteer, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec SteerSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.Steer(topology.ClientID(spec.Client), topology.StationID(spec.Via))
	})
	traced(MethodSteerBatch, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec SteerBatchSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		for _, r := range spec.Rules {
			if err := a.Steer(topology.ClientID(r.Client), topology.StationID(r.Via)); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	traced(MethodUnsteer, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec UnsteerSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.ClearSteer(topology.ClientID(spec.Client))
	})
	traced(MethodScalePool, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec ScalePoolSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		return nil, a.ScalePool(spec.Kinds, spec.ConfigHash, spec.Replicas)
	})
	traced(MethodRetarget, func(_ trace.Context, body json.RawMessage) (any, error) {
		var spec RetargetSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		if spec.PrevVia != nil || spec.NextVia != nil {
			return nil, a.RetargetSegment(spec.Chain, spec.PrevVia, spec.NextVia)
		}
		return nil, a.Retarget(spec.Chain, topology.StationID(spec.Via))
	})
}
