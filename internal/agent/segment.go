// Split-chain segment steering: one chain, several stations.
//
// A chain whose functions carry placement affinities is split by the
// manager into contiguous segments, each deployed on its own station
// (DeploySpec.SegIndex/SegCount), with the inter-segment legs riding the
// same shaped tunnels GNFC offload uses. The agent's share of the
// mechanism is the per-segment rule table:
//
//   - Head (SegIndex 0): the client's access-port traffic enters the
//     segment ingress; forward output is pushed into the tunnel toward
//     NextVia; return traffic arriving from that tunnel enters the
//     segment egress, and its processed output reaches the client through
//     the pinned client MAC.
//   - Middle: forward traffic arrives over the tunnel from PrevVia
//     (matched by client source MAC, exactly like remote offload
//     steering), continues into the tunnel toward NextVia; the reverse
//     direction mirrors it.
//   - Tail (NextVia ""): identical to GNFC remote steering with
//     PrevVia as the delivering tunnel — forward output flows the normal
//     uplink path, return traffic is matched at the uplink by client
//     destination MAC.
//
// Consecutive segments may land on the same station (the client roams
// onto the aggregation hub): such a leg is wired port-to-port instead of
// through a tunnel, and its rules — both directions — are owned by the
// upstream segment, whose deploy happens after the downstream one (the
// manager deploys tail→head). The downstream segment installs no rules
// for a local previous leg.
package agent

import (
	"errors"
	"fmt"

	"gnf/internal/netem"
	"gnf/internal/topology"
)

// ErrNotSegment rejects segment-only operations on unsplit deployments.
var ErrNotSegment = errors.New("agent: chain is not a segment deployment")

// installSegmentSteering programs the switch rules for one segment of a
// split chain and returns their IDs. A head segment whose client has not
// associated yet installs nothing (AttachClient/Activate re-arm on
// arrival). On error every rule already installed is removed.
func (a *Agent) installSegmentSteering(spec DeploySpec, inPort, outPort netem.PortID) (ids []int, err error) {
	defer func() {
		if err != nil {
			for _, id := range ids {
				a.sw.RemoveRule(id)
			}
			ids = nil
		}
	}()
	src, dst := spec.ClientMAC, spec.ClientMAC
	up := a.uplink
	self := string(a.station)
	add := func(r netem.Rule) { ids = append(ids, a.sw.AddRule(r)) }

	// Previous leg: where the client's outbound frames arrive from, and
	// where processed inbound frames are sent back toward the client.
	switch {
	case spec.SegIndex == 0:
		a.mu.Lock()
		ci, have := a.clients[topology.ClientID(spec.Client)]
		a.mu.Unlock()
		if !have {
			// Standby head staged before the client's arrival: no rules at
			// all, so the re-arm path's len(ruleIDs)==0 check stays truthful.
			return nil, nil
		}
		// Inbound output emerging at the ingress side reaches the client
		// through its pinned MAC entry; only the outbound divert needs a rule.
		cp := ci.port
		add(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &cp},
			Action:   netem.ActionRedirect,
			OutPort:  inPort,
		})
	case spec.PrevVia == self:
		// Local previous segment: both directions of that leg are owned by
		// the previous segment's next-leg rules (see below).
	default:
		tp, ok := a.TunnelTo(topology.StationID(spec.PrevVia))
		if !ok {
			return ids, fmt.Errorf("%w: %s", ErrNoTunnel, spec.PrevVia)
		}
		ptp, pin := tp, inPort
		add(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &ptp, SrcMAC: &src},
			Action:   netem.ActionRedirect,
			OutPort:  inPort,
		})
		add(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &pin},
			Action:   netem.ActionRedirect,
			OutPort:  ptp,
		})
	}

	// Next leg: where forward output continues, and where return traffic
	// addressed to the client arrives.
	switch {
	case spec.NextVia == "":
		// Tail: forward output flows the normal uplink path.
		op := outPort
		add(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &up, DstMAC: &dst},
			Action:   netem.ActionRedirect,
			OutPort:  op,
		})
	case spec.NextVia == self:
		// Next segment hosted on this very station (already deployed — the
		// manager deploys tail→head): wire the leg port-to-port.
		base, _ := ParseSegmentName(spec.Chain)
		nextName := SegmentDeployName(base, spec.SegIndex+1)
		a.mu.Lock()
		next, ok := a.deployments[nextName]
		var nin netem.PortID
		if ok && !next.building && next.shared == nil {
			nin = next.ports[0]
		} else {
			ok = false
		}
		a.mu.Unlock()
		if !ok {
			return ids, fmt.Errorf("%w: %s (next segment of %s not deployed here)", ErrUnknownChain, nextName, spec.Chain)
		}
		op, nip := outPort, nin
		add(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &op},
			Action:   netem.ActionRedirect,
			OutPort:  nip,
		})
		add(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &nip},
			Action:   netem.ActionRedirect,
			OutPort:  outPort,
		})
	default:
		tp, ok := a.TunnelTo(topology.StationID(spec.NextVia))
		if !ok {
			return ids, fmt.Errorf("%w: %s", ErrNoTunnel, spec.NextVia)
		}
		ntp, op := tp, outPort
		add(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &op},
			Action:   netem.ActionRedirect,
			OutPort:  ntp,
		})
		add(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &ntp, DstMAC: &dst},
			Action:   netem.ActionRedirect,
			OutPort:  op,
		})
	}
	return ids, nil
}

// RetargetSegment re-points a split-chain segment's neighbour legs: a nil
// via leaves that leg untouched, a pointed-at station name moves it, and
// pointing at "" makes the segment a head/tail. The full rule set is
// reinstalled before the old rules go, so there is no unsteered window.
// It is how the anchored segments follow a roaming head (the downstream
// segment's PrevVia chases the client) and how failover splices a revived
// middle segment back between its neighbours.
func (a *Agent) RetargetSegment(chain string, prevVia, nextVia *string) error {
	a.mu.Lock()
	dep, ok := a.deployments[chain]
	if !ok || dep.building {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownChain, chain)
	}
	if dep.spec.SegCount <= 1 {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotSegment, chain)
	}
	spec := dep.spec
	ports := dep.ports
	a.mu.Unlock()

	if prevVia != nil {
		spec.PrevVia = *prevVia
	}
	if nextVia != nil {
		spec.NextVia = *nextVia
	}
	newRules, err := a.installSegmentSteering(spec, ports[0], ports[1])
	if err != nil {
		return err
	}
	a.mu.Lock()
	old := dep.ruleIDs
	dep.ruleIDs = newRules
	dep.spec = spec
	a.mu.Unlock()
	for _, id := range old {
		a.sw.RemoveRule(id)
	}
	return nil
}
