package agent_test

import (
	"errors"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/netem"
	"gnf/internal/nf"
	"gnf/internal/packet"

	_ "gnf/internal/nf/builtin"
)

var (
	clientMAC = packet.MAC{2, 0, 0, 0, 0, 1}
	serverMAC = packet.MAC{2, 0, 0, 0, 0, 2}
	clientIP  = packet.IP{10, 0, 0, 1}
	serverIP  = packet.IP{10, 99, 0, 1}
)

// station is a self-contained single-station testbed: a client host on
// port 1, the uplink on port 0 leading to a server host.
type station struct {
	ag     *agent.Agent
	client *netem.Host
	server *netem.Host
	clk    *clock.Virtual
}

func pushImages(repo *container.Repository) {
	for _, kind := range []string{"firewall", "httpfilter", "dnslb", "ratelimit", "nat", "dnscache", "counter"} {
		repo.Push(container.Image{Name: agent.ImageForKind(kind), SizeBytes: 4 << 20, MemoryBytes: 6 << 20, CPUPercent: 2})
	}
}

func newStation(t *testing.T) *station {
	t.Helper()
	clk := clock.NewAutoVirtual()
	repo := container.NewRepository(clk, 0, 0)
	pushImages(repo)
	rt := container.NewRuntime("st-1", clk, repo)
	sw := netem.NewSwitch("st-1")

	// Uplink (port 0) to the server host.
	up, upCore := netem.NewVethPair("up", "core")
	sw.Attach(0, up)
	server := netem.NewHost(serverMAC, serverIP, upCore)

	// Client on port 1.
	cl, clSw := netem.NewVethPair("cl", "ap")
	sw.Attach(1, clSw)
	client := netem.NewHost(clientMAC, clientIP, cl)
	client.Learn(serverIP, serverMAC)
	server.Learn(clientIP, clientMAC)

	ag := agent.New("st-1", clk, rt, sw, 0)
	ag.AttachClient("phone", clientMAC, clientIP, 1)
	t.Cleanup(func() { up.Close(); cl.Close() })
	return &station{ag: ag, client: client, server: server, clk: clk}
}

func waitCount(t *testing.T, deadline time.Duration, probe func() bool) {
	t.Helper()
	limit := time.After(deadline)
	for {
		if probe() {
			return
		}
		select {
		case <-limit:
			t.Fatal("condition never reached")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func firewallSpec(chain, rules string) agent.DeploySpec {
	return agent.DeploySpec{
		Chain:  chain,
		Client: "phone",
		Functions: []agent.NFSpec{{
			Kind: "firewall", Name: "fw0",
			Params: nf.Params{"policy": "accept", "rules": rules},
		}},
		Enabled: true,
	}
}

func TestDeploySteersTrafficThroughChain(t *testing.T) {
	st := newStation(t)
	res, err := st.ag.Deploy(firewallSpec("ch1", "drop out udp any any any 9999"))
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if len(res.Containers) != 1 {
		t.Fatalf("containers = %v", res.Containers)
	}

	got := make(chan uint16, 16)
	st.server.HandleAnyUDP(func(src, dst packet.Endpoint, payload []byte) []byte {
		got <- dst.Port
		return nil
	})
	// Allowed traffic flows through the chain to the server.
	st.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 53}, 1234, []byte("ok"))
	select {
	case p := <-got:
		if p != 53 {
			t.Fatalf("unexpected port %d", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("allowed traffic never arrived")
	}
	// Firewalled traffic is dropped inside the chain.
	st.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 9999}, 1234, []byte("blocked"))
	select {
	case p := <-got:
		t.Fatalf("blocked traffic arrived on port %d", p)
	case <-time.After(100 * time.Millisecond):
	}

	ch, err := st.ag.ChainFunction("ch1")
	if err != nil {
		t.Fatal(err)
	}
	stats := ch.NFStats()
	if stats["fw0.dropped"] != 1 || stats["fw0.accepted"] == 0 {
		t.Fatalf("firewall stats = %v", stats)
	}
}

func TestReturnTrafficTraversesChain(t *testing.T) {
	st := newStation(t)
	if _, err := st.ag.Deploy(firewallSpec("ch1", "")); err != nil {
		t.Fatal(err)
	}
	traffic := make(chan []byte, 16)
	st.client.HandleUDP(5555, func(src, dst packet.Endpoint, payload []byte) []byte {
		traffic <- payload
		return nil
	})
	// Server-originated traffic to the client must pass the chain egress.
	st.server.SendUDP(packet.Endpoint{Addr: clientIP, Port: 5555}, 53, []byte("inbound"))
	select {
	case p := <-traffic:
		if string(p) != "inbound" {
			t.Fatalf("payload = %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("inbound traffic never arrived")
	}
	ch, _ := st.ag.ChainFunction("ch1")
	if ch.NFStats()["fw0.accepted"] == 0 {
		t.Fatal("inbound traffic bypassed the chain")
	}
}

func TestRemoveRestoresDirectPath(t *testing.T) {
	st := newStation(t)
	if _, err := st.ag.Deploy(firewallSpec("ch1", "drop out udp")); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{}, 4)
	st.server.HandleAnyUDP(func(src, dst packet.Endpoint, payload []byte) []byte {
		got <- struct{}{}
		return nil
	})
	st.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 1}, 2, []byte("x"))
	select {
	case <-got:
		t.Fatal("drop-all chain leaked")
	case <-time.After(100 * time.Millisecond):
	}
	if err := st.ag.Remove("ch1"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	st.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 1}, 2, []byte("x"))
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("direct path not restored after Remove")
	}
	if err := st.ag.Remove("ch1"); !errors.Is(err, agent.ErrUnknownChain) {
		t.Fatalf("double remove: %v", err)
	}
	// The shareable chain's instance idles in the pool's grace window after
	// the last reference leaves; once grace lapses the reaper reclaims it.
	st.clk.Advance(time.Minute)
	st.ag.ReapPools()
	if len(st.ag.Runtime().List()) != 0 {
		t.Fatal("containers leaked after Remove + reap")
	}
}

func TestDeployErrors(t *testing.T) {
	st := newStation(t)
	if _, err := st.ag.Deploy(firewallSpec("dup", "")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ag.Deploy(firewallSpec("dup", "")); !errors.Is(err, agent.ErrChainExists) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := st.ag.Deploy(agent.DeploySpec{
		Chain: "bad", Client: "phone",
		Functions: []agent.NFSpec{{Kind: "warp-drive", Name: "x"}},
	}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Unknown client: deploy succeeds but installs no steering rules.
	res, err := st.ag.Deploy(agent.DeploySpec{
		Chain: "nobody", Client: "ghost",
		Functions: []agent.NFSpec{{Kind: "firewall", Name: "f"}},
		Enabled:   true,
	})
	if err != nil || res == nil {
		t.Fatalf("deploy for unknown client: %v", err)
	}
}

func TestDisableCausesDowntimeEnableRestores(t *testing.T) {
	st := newStation(t)
	if _, err := st.ag.Deploy(firewallSpec("ch1", "")); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{}, 16)
	st.server.HandleAnyUDP(func(src, dst packet.Endpoint, payload []byte) []byte {
		got <- struct{}{}
		return nil
	})
	send := func() { st.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 1}, 2, []byte("x")) }
	send()
	waitCount(t, 2*time.Second, func() bool {
		select {
		case <-got:
			return true
		default:
			return false
		}
	})
	if err := st.ag.Disable("ch1"); err != nil {
		t.Fatal(err)
	}
	send()
	select {
	case <-got:
		t.Fatal("disabled chain forwarded")
	case <-time.After(100 * time.Millisecond):
	}
	if err := st.ag.Enable("ch1"); err != nil {
		t.Fatal(err)
	}
	send()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("enabled chain did not forward")
	}
	if err := st.ag.Enable("ghost"); !errors.Is(err, agent.ErrUnknownChain) {
		t.Fatalf("enable unknown: %v", err)
	}
}

func TestCheckpointRestoreAcrossAgents(t *testing.T) {
	stA := newStation(t)
	stB := newStation(t)
	spec := agent.DeploySpec{
		Chain:  "nat-ch",
		Client: "phone",
		Functions: []agent.NFSpec{{
			Kind: "nat", Name: "n0",
			Params: nf.Params{"nat_ip": "192.168.50.1", "ports": "40000-41000"},
		}},
		Enabled: true,
	}
	if _, err := stA.ag.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	// Create NAT state by pushing a frame through the chain host manually:
	// client -> server via the deployed chain.
	probe := make(chan struct{}, 1)
	stA.server.HandleAnyUDP(func(src, dst packet.Endpoint, payload []byte) []byte {
		probe <- struct{}{}
		return nil
	})
	stA.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 53}, 7000, []byte("q"))
	select {
	case <-probe:
	case <-time.After(2 * time.Second):
		t.Fatal("nat chain never forwarded")
	}

	state, err := stA.ag.Checkpoint("nat-ch")
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if len(state) == 0 {
		t.Fatal("empty checkpoint")
	}
	if _, err := stB.ag.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	if err := stB.ag.Restore("nat-ch", state); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	chB, _ := stB.ag.ChainFunction("nat-ch")
	if chB.NFStats()["n0.mappings"] != 1 {
		t.Fatalf("restored stats = %v", chB.NFStats())
	}
	if _, err := stA.ag.Checkpoint("ghost"); !errors.Is(err, agent.ErrUnknownChain) {
		t.Fatalf("checkpoint unknown: %v", err)
	}
}

func TestNotificationsRelayToSink(t *testing.T) {
	st := newStation(t)
	alerts := make(chan agent.Alert, 4)
	st.ag.OnAlert(func(al agent.Alert) { alerts <- al })
	_, err := st.ag.Deploy(agent.DeploySpec{
		Chain:  "ids",
		Client: "phone",
		Functions: []agent.NFSpec{{
			Kind: "counter", Name: "ids0",
			Params: nf.Params{"signatures": "attack-marker"},
		}},
		Enabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 1}, 2, []byte("attack-marker payload"))
	select {
	case al := <-alerts:
		if al.Station != "st-1" || al.Notification.Kind != "counter" {
			t.Fatalf("alert = %+v", al)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("alert never relayed")
	}
}

func TestClientEventsFire(t *testing.T) {
	st := newStation(t)
	events := make(chan agent.ClientEvent, 4)
	st.ag.OnClientEvent(func(ev agent.ClientEvent) { events <- ev })
	st.ag.AttachClient("tablet", packet.MAC{2, 9, 9, 9, 9, 9}, packet.IP{10, 0, 0, 9}, 7)
	ev := <-events
	if !ev.Connected || ev.Client != "tablet" || ev.Station != "st-1" {
		t.Fatalf("event = %+v", ev)
	}
	st.ag.DetachClient("tablet")
	ev = <-events
	if ev.Connected {
		t.Fatalf("event = %+v", ev)
	}
	// Detaching an unknown client fires nothing.
	st.ag.DetachClient("ghost")
	select {
	case ev := <-events:
		t.Fatalf("spurious event %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
	if _, _, _, err := st.ag.Client("ghost"); !errors.Is(err, agent.ErrUnknownClient) {
		t.Fatalf("Client(ghost): %v", err)
	}
}

func TestReportContents(t *testing.T) {
	st := newStation(t)
	if _, err := st.ag.Deploy(firewallSpec("ch1", "")); err != nil {
		t.Fatal(err)
	}
	rep := st.ag.Report()
	if rep.Station != "st-1" {
		t.Fatalf("station = %q", rep.Station)
	}
	if rep.Usage.Containers != 1 {
		t.Fatalf("usage = %+v", rep.Usage)
	}
	if len(rep.Chains) != 1 || rep.Chains[0].Chain != "ch1" || !rep.Chains[0].Enabled {
		t.Fatalf("chains = %+v", rep.Chains)
	}
	if rep.Switch.Rules != 2 {
		t.Fatalf("switch rules = %d", rep.Switch.Rules)
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	st := newStation(t)
	if err := st.ag.Prefetch([]string{agent.ImageForKind("dnscache")}); err != nil {
		t.Fatal(err)
	}
	cold, _ := st.ag.Runtime().CacheStats()
	if cold != 1 {
		t.Fatalf("cold pulls = %d", cold)
	}
	if err := st.ag.Prefetch([]string{"gnf/ghost:1.0"}); err == nil {
		t.Fatal("prefetch of unknown image succeeded")
	}
}
