// Package agent implements the GNF Agent of §3: "a lightweight daemon
// running on the stations managed by the provider. It is responsible for
// the instantiation of the NFs on the hosting platform, notifying the
// Manager of clients' (dis)connection and reporting periodically the state
// of the device."
//
// The Agent owns its station's dataplane: the software switch, the
// container runtime, and — per deployed chain — the two veth pairs that
// connect the chain's container(s) to the switch, plus the steering rules
// that transparently divert the client's traffic through the chain.
//
// Design note on chains vs containers: GNF runs every NF of a chain in its
// own container (that is what the density and footprint accounting model),
// while the packet path hosts the whole chain in one ChainHost between a
// single ingress/egress veth pair. This keeps resource accounting faithful
// per NF without paying a synthetic per-hop veth cost that the in-process
// chain would render meaningless.
package agent

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/netem"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

// Errors returned by the agent.
var (
	ErrUnknownChain  = errors.New("agent: unknown chain")
	ErrChainExists   = errors.New("agent: chain already deployed")
	ErrUnknownClient = errors.New("agent: unknown client")
	ErrNoTunnel      = errors.New("agent: no tunnel to station")
	ErrNotRemote     = errors.New("agent: chain is not a remote deployment")
)

// Steering rule priorities: client redirection beats everything else the
// station programs, and the offload detour beats local chain steering so
// an offloaded client's traffic leaves for the cloud before any local
// rule can claim it.
const (
	steerPriority  = 100
	detourPriority = 200
)

// clientInfo tracks one associated client.
type clientInfo struct {
	id   topology.ClientID
	mac  packet.MAC
	ip   packet.IP
	port netem.PortID
}

// deployment is one running chain.
type deployment struct {
	spec       DeploySpec
	chain      *nf.Chain
	host       *nf.ChainHost
	containers []*container.Container
	endpoints  []*netem.Endpoint // switch-side ends (close on remove)
	ruleIDs    []int
	ports      [2]netem.PortID
}

// Agent is the station daemon.
type Agent struct {
	station  topology.StationID
	clk      clock.Clock
	rt       *container.Runtime
	sw       *netem.Switch
	uplink   netem.PortID
	registry *nf.Registry
	cloud    bool

	mu          sync.Mutex
	clients     map[topology.ClientID]clientInfo
	deployments map[string]*deployment
	tunnels     map[topology.StationID]netem.PortID
	steers      map[topology.ClientID]int // detour rule IDs
	nextPort    netem.PortID
	notifySink  func(Alert)
	clientSink  func(ClientEvent)
}

// Option configures New.
type Option func(*Agent)

// WithRegistry overrides the NF factory registry (default nf.Default).
func WithRegistry(r *nf.Registry) Option { return func(a *Agent) { a.registry = r } }

// WithCloud marks this agent's station as a GNFC cloud site. Cloud sites
// register with the Cloud flag, host offloaded chains with remote steering
// and are skipped by edge placement policies.
func WithCloud() Option { return func(a *Agent) { a.cloud = true } }

// New creates an agent for station, owning switch sw (with the uplink to
// the backhaul already attached at uplinkPort) and container runtime rt.
func New(station topology.StationID, clk clock.Clock, rt *container.Runtime, sw *netem.Switch, uplinkPort netem.PortID, opts ...Option) *Agent {
	a := &Agent{
		station:     station,
		clk:         clk,
		rt:          rt,
		sw:          sw,
		uplink:      uplinkPort,
		registry:    nf.Default,
		clients:     make(map[topology.ClientID]clientInfo),
		deployments: make(map[string]*deployment),
		tunnels:     make(map[topology.StationID]netem.PortID),
		steers:      make(map[topology.ClientID]int),
		nextPort:    1000,
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Station returns the agent's station ID.
func (a *Agent) Station() topology.StationID { return a.station }

// Cloud reports whether this station is a GNFC cloud site.
func (a *Agent) Cloud() bool { return a.cloud }

// Switch returns the station's software switch.
func (a *Agent) Switch() *netem.Switch { return a.sw }

// Runtime returns the station's container runtime.
func (a *Agent) Runtime() *container.Runtime { return a.rt }

// OnAlert installs the sink receiving NF notifications (the connected
// manager link installs itself here).
func (a *Agent) OnAlert(fn func(Alert)) {
	a.mu.Lock()
	a.notifySink = fn
	a.mu.Unlock()
}

// OnClientEvent installs the sink receiving client (dis)connections.
func (a *Agent) OnClientEvent(fn func(ClientEvent)) {
	a.mu.Lock()
	a.clientSink = fn
	a.mu.Unlock()
}

// allocPort reserves a fresh switch port id. Called with mu held.
func (a *Agent) allocPort() netem.PortID {
	p := a.nextPort
	a.nextPort++
	return p
}

// AttachClient wires an associated client into the station switch at the
// given port (the core wiring layer created the veth). It fires the
// (dis)connection notification toward the manager.
func (a *Agent) AttachClient(id topology.ClientID, mac packet.MAC, ip packet.IP, port netem.PortID) {
	a.mu.Lock()
	a.clients[id] = clientInfo{id: id, mac: mac, ip: ip, port: port}
	sink := a.clientSink
	a.mu.Unlock()
	// Sticky FDB entry, as an AP installs for an associated station: the
	// client's frames flooded back from the backhaul must never repoint
	// local forwarding away from the access port.
	a.sw.PinMAC(mac, port)
	if sink != nil {
		sink(ClientEvent{Station: string(a.station), Client: string(id), Connected: true, MAC: mac, IP: ip})
	}
}

// DetachClient removes a client (cell disassociation). Any offload detour
// dies with the association: the client's traffic now enters at its next
// station, which installs its own detour.
func (a *Agent) DetachClient(id topology.ClientID) {
	a.mu.Lock()
	ci, known := a.clients[id]
	delete(a.clients, id)
	steerID, steered := a.steers[id]
	delete(a.steers, id)
	sink := a.clientSink
	a.mu.Unlock()
	if known {
		a.sw.UnpinMAC(ci.mac)
	}
	if steered {
		a.sw.RemoveRule(steerID)
	}
	if known && sink != nil {
		sink(ClientEvent{Station: string(a.station), Client: string(id), Connected: false})
	}
}

// Client returns the attach record for a client.
func (a *Agent) Client(id topology.ClientID) (mac packet.MAC, ip packet.IP, port netem.PortID, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ci, ok := a.clients[id]
	if !ok {
		return packet.MAC{}, packet.IP{}, 0, fmt.Errorf("%w: %s", ErrUnknownClient, id)
	}
	return ci.mac, ci.ip, ci.port, nil
}

// Deploy instantiates spec: containers are created and started, veths
// wired, steering installed. It returns the modeled attach latency.
func (a *Agent) Deploy(spec DeploySpec) (*DeployResult, error) {
	a.mu.Lock()
	if _, dup := a.deployments[spec.Chain]; dup {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrChainExists, spec.Chain)
	}
	ci, haveClient := a.clients[topology.ClientID(spec.Client)]
	a.mu.Unlock()

	started := a.clk.Now()

	// Build the chain functions from the registry.
	fns := make([]nf.Function, 0, len(spec.Functions))
	for _, fs := range spec.Functions {
		fn, err := a.registry.New(fs.Kind, fs.Name, fs.Params)
		if err != nil {
			return nil, err
		}
		fns = append(fns, fn)
	}
	chain := nf.NewChain(spec.Chain, fns...)
	chain.SetClock(a.clk)
	chain.SetNotifier(func(n nf.Notification) {
		a.mu.Lock()
		sink := a.notifySink
		a.mu.Unlock()
		if sink != nil {
			sink(Alert{Station: string(a.station), Notification: n})
		}
	})

	// One container per NF, as GNF packages functions individually.
	var ctrs []*container.Container
	cleanupCtrs := func() {
		for _, c := range ctrs {
			c.Stop()
			c.Remove()
		}
	}
	for i, fs := range spec.Functions {
		c, err := a.rt.Create(container.Config{
			Name:  fmt.Sprintf("%s-%d-%s", spec.Chain, i, fs.Kind),
			Image: ImageForKind(fs.Kind),
		})
		if err != nil {
			cleanupCtrs()
			return nil, err
		}
		ctrs = append(ctrs, c)
		if err := c.Start(); err != nil {
			cleanupCtrs()
			return nil, err
		}
	}
	// The chain's aggregate state rides the first container's checkpoint.
	if len(ctrs) > 0 {
		ctrs[0].SetStateHandler(chain)
	}

	// Two veth pairs: switch <-> chain ingress, switch <-> chain egress.
	swIn, chainIn := netem.NewVethPair(spec.Chain+"-in0", spec.Chain+"-in1", netem.WithClock(a.clk))
	swOut, chainOut := netem.NewVethPair(spec.Chain+"-out0", spec.Chain+"-out1", netem.WithClock(a.clk))
	host := nf.NewChainHost(chain, chainIn, chainOut)

	a.mu.Lock()
	inPort, outPort := a.allocPort(), a.allocPort()
	a.mu.Unlock()
	a.sw.AttachService(inPort, swIn)
	a.sw.AttachService(outPort, swOut)

	// Steering. Local chains divert the attached client's traffic: the
	// client's outbound traffic enters the chain ingress; backhaul
	// traffic addressed to the client enters the chain egress. Remote
	// (offloaded) chains receive the client's traffic through a tunnel
	// from the client's station instead, and frames the chain emits
	// toward the client ride the same tunnel home.
	var ruleIDs []int
	switch {
	case spec.Remote:
		a.mu.Lock()
		tp, ok := a.tunnels[topology.StationID(spec.Via)]
		a.mu.Unlock()
		if !ok {
			cleanupCtrs()
			for _, ep := range []*netem.Endpoint{swIn, swOut} {
				ep.Close()
			}
			a.sw.Detach(inPort)
			a.sw.Detach(outPort)
			return nil, fmt.Errorf("%w: %s", ErrNoTunnel, spec.Via)
		}
		ruleIDs = a.installRemoteSteering(spec, tp, inPort, outPort)
	case haveClient:
		cp := ci.port
		ruleIDs = append(ruleIDs, a.sw.AddRule(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &cp},
			Action:   netem.ActionRedirect,
			OutPort:  inPort,
		}))
		up := a.uplink
		dstIP := ci.ip
		ruleIDs = append(ruleIDs, a.sw.AddRule(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &up, DstIP: &dstIP},
			Action:   netem.ActionRedirect,
			OutPort:  outPort,
		}))
	}

	dep := &deployment{
		spec:       spec,
		chain:      chain,
		host:       host,
		containers: ctrs,
		endpoints:  []*netem.Endpoint{swIn, swOut},
		ruleIDs:    ruleIDs,
		ports:      [2]netem.PortID{inPort, outPort},
	}
	if spec.Enabled {
		host.Enable()
	}
	a.mu.Lock()
	a.deployments[spec.Chain] = dep
	a.mu.Unlock()

	res := &DeployResult{Chain: spec.Chain, AttachMillis: a.clk.Since(started).Milliseconds()}
	for _, c := range ctrs {
		res.Containers = append(res.Containers, c.Name())
	}
	return res, nil
}

// ImageForKind maps an NF kind to its repository image name.
func ImageForKind(kind string) string { return "gnf/" + kind + ":1.0" }

// get fetches a deployment.
func (a *Agent) get(chain string) (*deployment, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.deployments[chain]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChain, chain)
	}
	return d, nil
}

// Enable starts forwarding on a deployed chain.
func (a *Agent) Enable(chain string) error {
	d, err := a.get(chain)
	if err != nil {
		return err
	}
	d.host.Enable()
	return nil
}

// Disable pauses forwarding (traffic drops while disabled).
func (a *Agent) Disable(chain string) error {
	d, err := a.get(chain)
	if err != nil {
		return err
	}
	d.host.Disable()
	return nil
}

// Checkpoint exports the chain's aggregate NF state.
func (a *Agent) Checkpoint(chain string) ([]byte, error) {
	d, err := a.get(chain)
	if err != nil {
		return nil, err
	}
	if len(d.containers) == 0 {
		return d.chain.ExportState()
	}
	return d.containers[0].Checkpoint()
}

// Restore imports chain state exported by Checkpoint.
func (a *Agent) Restore(chain string, state []byte) error {
	d, err := a.get(chain)
	if err != nil {
		return err
	}
	if len(d.containers) == 0 {
		return d.chain.ImportState(state)
	}
	return d.containers[0].Restore(state)
}

// Remove tears a deployment down: steering rules out first (traffic cuts
// over to normal forwarding), then containers, ports and veths.
func (a *Agent) Remove(chain string) error {
	a.mu.Lock()
	d, ok := a.deployments[chain]
	if !ok {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownChain, chain)
	}
	delete(a.deployments, chain)
	a.mu.Unlock()

	for _, id := range d.ruleIDs {
		a.sw.RemoveRule(id)
	}
	d.host.Disable()
	a.sw.Detach(d.ports[0])
	a.sw.Detach(d.ports[1])
	for _, ep := range d.endpoints {
		ep.Close()
	}
	var firstErr error
	for _, c := range d.containers {
		if err := c.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := c.Remove(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Prefetch warms images on the local cache (migration pre-staging).
func (a *Agent) Prefetch(images []string) error {
	for _, img := range images {
		if err := a.rt.PrefetchImage(img); err != nil {
			return err
		}
	}
	return nil
}

// Chains lists deployment names, sorted.
func (a *Agent) Chains() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.deployments))
	for name := range a.deployments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ChainEnabled reports whether a deployed chain is currently forwarding.
func (a *Agent) ChainEnabled(chain string) (bool, error) {
	d, err := a.get(chain)
	if err != nil {
		return false, err
	}
	return d.host.Enabled(), nil
}

// ChainFunction exposes the live chain function (local callers only, e.g.
// tests asserting NF state).
func (a *Agent) ChainFunction(chain string) (*nf.Chain, error) {
	d, err := a.get(chain)
	if err != nil {
		return nil, err
	}
	return d.chain, nil
}

// Report builds the periodic status report.
func (a *Agent) Report() Report {
	swst := a.sw.Stats()
	rep := Report{
		Station: string(a.station),
		Usage:   a.rt.Usage(),
		Switch: SwitchStats{
			RxFrames:  swst.RxFrames,
			Dropped:   swst.Dropped,
			Flooded:   swst.Flooded,
			Redirects: swst.Redirects,
			Rules:     swst.Rules,
		},
		UnixNano: a.clk.Now().UnixNano(),
	}
	a.mu.Lock()
	deps := make([]*deployment, 0, len(a.deployments))
	for _, d := range a.deployments {
		deps = append(deps, d)
	}
	a.mu.Unlock()
	for _, d := range deps {
		cs := ChainStatus{
			Chain:     d.spec.Chain,
			Client:    d.spec.Client,
			Enabled:   d.host.Enabled(),
			Processed: d.host.Processed(),
			Dropped:   d.host.Dropped(),
			NFStats:   d.chain.NFStats(),
		}
		rep.Chains = append(rep.Chains, cs)
	}
	return rep
}

// reportEvery is the default health reporting interval.
const reportEvery = time.Second
