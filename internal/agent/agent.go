// Package agent implements the GNF Agent of §3: "a lightweight daemon
// running on the stations managed by the provider. It is responsible for
// the instantiation of the NFs on the hosting platform, notifying the
// Manager of clients' (dis)connection and reporting periodically the state
// of the device."
//
// The Agent owns its station's dataplane: the software switch, the
// container runtime, and — per deployed chain — the two veth pairs that
// connect the chain's container(s) to the switch, plus the steering rules
// that transparently divert the client's traffic through the chain.
//
// Design note on chains vs containers: GNF runs every NF of a chain in its
// own container (that is what the density and footprint accounting model),
// while the packet path hosts the whole chain in one ChainHost between a
// single ingress/egress veth pair. This keeps resource accounting faithful
// per NF without paying a synthetic per-hop veth cost that the in-process
// chain would render meaningless.
package agent

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/netem"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/share"
	"gnf/internal/topology"
	"gnf/internal/trace"
)

// Errors returned by the agent.
var (
	ErrUnknownChain  = errors.New("agent: unknown chain")
	ErrChainExists   = errors.New("agent: chain already deployed")
	ErrUnknownClient = errors.New("agent: unknown client")
	ErrNoTunnel      = errors.New("agent: no tunnel to station")
	ErrNotRemote     = errors.New("agent: chain is not a remote deployment")
)

// Steering rule priorities: client redirection beats everything else the
// station programs, and the offload detour beats local chain steering so
// an offloaded client's traffic leaves for the cloud before any local
// rule can claim it.
const (
	steerPriority  = 100
	detourPriority = 200
)

// brownoutDepth bounds the per-chain brownout buffer armed on disabled
// (migration/standby) deploys: frames the client sends while its chain is
// frozen mid-handoff are parked up to this depth and replayed on
// activation instead of being dropped.
const brownoutDepth = 4096

// clientInfo tracks one associated client.
type clientInfo struct {
	id   topology.ClientID
	mac  packet.MAC
	ip   packet.IP
	port netem.PortID
}

// deployment is one running chain — either an exclusive instance (the
// paper's one-chain-per-client layout) or an attachment to a shared pool
// instance serving every client with the same configuration.
type deployment struct {
	spec DeploySpec
	// building marks a name reservation while Deploy constructs resources;
	// such entries are invisible to every other API.
	building bool
	// standby mirrors spec.Standby but is mutable under Agent.mu: Activate
	// promotes a prewarmed standby into a real placement.
	standby bool
	// Pre-copy session state (guarded by Agent.mu): the per-member dirty
	// epochs of the last PreCopy export and the 1-based round counter.
	// Rounds of one session are serialised by the manager (per-client
	// migration lock), so no finer synchronisation is needed.
	preEpochs []uint64
	preRound  int

	// Exclusive-instance resources (unset for shared attachments).
	chain      *nf.Chain
	host       *nf.ChainHost
	containers []*container.Container
	endpoints  []*netem.Endpoint // switch-side ends (close on remove)
	ports      [2]netem.PortID

	// Shared attachment: the pool instance serving this chain. enabled,
	// ruleIDs and removed (guarded by Agent.mu) track whether the client's
	// steering rules are installed and whether the attachment has been torn
	// down — an Enable/Disable racing Remove must not resurrect rules on a
	// dead attachment.
	shared  *share.Instance
	enabled bool
	removed bool
	// steerSeq orders concurrent Enable/Disable calls on a shared
	// attachment: each intent bumps it before installing rules, and an
	// installer that finds a newer sequence discards its own rules — the
	// latest intent's rules and the enabled flag always agree.
	steerSeq uint64

	ruleIDs []int
}

// Agent is the station daemon.
type Agent struct {
	station   topology.StationID
	clk       clock.Clock
	rt        *container.Runtime
	sw        *netem.Switch
	uplink    netem.PortID
	registry  *nf.Registry
	cloud     bool
	sharing   bool
	poolGrace time.Duration
	pool      *share.Pool
	poolSeq   atomic.Uint64 // shared-instance name generations

	// tracer buffers this agent's finished spans; the RPC layer flushes
	// them to the manager before each traced response returns.
	tracer *trace.Tracer

	// retiredDrops accumulates the drop counters of chains that have been
	// torn down, so station-level loss accounting (the zero-loss scenario
	// expectation) survives migration removals.
	retiredDrops atomic.Uint64

	mu          sync.Mutex
	clients     map[topology.ClientID]clientInfo
	deployments map[string]*deployment
	tunnels     map[topology.StationID]netem.PortID
	steers      map[topology.ClientID]int // detour rule IDs
	nextPort    netem.PortID
	notifySink  func(Alert)
	clientSink  func(ClientEvent)
}

// Option configures New.
type Option func(*Agent)

// WithRegistry overrides the NF factory registry (default nf.Default).
func WithRegistry(r *nf.Registry) Option { return func(a *Agent) { a.registry = r } }

// WithCloud marks this agent's station as a GNFC cloud site. Cloud sites
// register with the Cloud flag, host offloaded chains with remote steering
// and are skipped by edge placement policies.
func WithCloud() Option { return func(a *Agent) { a.cloud = true } }

// WithPoolGrace sets how long an unreferenced shared instance survives
// before the reaper reclaims it (default share.DefaultGrace).
func WithPoolGrace(d time.Duration) Option { return func(a *Agent) { a.poolGrace = d } }

// WithSharingDisabled forces the paper's one-instance-per-client layout
// even for shareable chains — the ablation baseline for E5.
func WithSharingDisabled() Option { return func(a *Agent) { a.sharing = false } }

// New creates an agent for station, owning switch sw (with the uplink to
// the backhaul already attached at uplinkPort) and container runtime rt.
func New(station topology.StationID, clk clock.Clock, rt *container.Runtime, sw *netem.Switch, uplinkPort netem.PortID, opts ...Option) *Agent {
	a := &Agent{
		station:     station,
		clk:         clk,
		rt:          rt,
		sw:          sw,
		uplink:      uplinkPort,
		registry:    nf.Default,
		sharing:     true,
		clients:     make(map[topology.ClientID]clientInfo),
		deployments: make(map[string]*deployment),
		tunnels:     make(map[topology.StationID]netem.PortID),
		steers:      make(map[topology.ClientID]int),
		nextPort:    1000,
	}
	for _, o := range opts {
		o(a)
	}
	a.pool = share.NewPool(a.clk, a.poolGrace)
	a.tracer = trace.New(clk, trace.WithOrigin(string(station)), trace.WithBuffer(0))
	return a
}

// Tracer exposes the agent's span tracer (the RPC layer drains it).
func (a *Agent) Tracer() *trace.Tracer { return a.tracer }

// Station returns the agent's station ID.
func (a *Agent) Station() topology.StationID { return a.station }

// Cloud reports whether this station is a GNFC cloud site.
func (a *Agent) Cloud() bool { return a.cloud }

// Switch returns the station's software switch.
func (a *Agent) Switch() *netem.Switch { return a.sw }

// Runtime returns the station's container runtime.
func (a *Agent) Runtime() *container.Runtime { return a.rt }

// OnAlert installs the sink receiving NF notifications (the connected
// manager link installs itself here).
func (a *Agent) OnAlert(fn func(Alert)) {
	a.mu.Lock()
	a.notifySink = fn
	a.mu.Unlock()
}

// OnClientEvent installs the sink receiving client (dis)connections.
func (a *Agent) OnClientEvent(fn func(ClientEvent)) {
	a.mu.Lock()
	a.clientSink = fn
	a.mu.Unlock()
}

// allocPort reserves a fresh switch port id. Called with mu held.
func (a *Agent) allocPort() netem.PortID {
	p := a.nextPort
	a.nextPort++
	return p
}

// AttachClient wires an associated client into the station switch at the
// given port (the core wiring layer created the veth). It fires the
// (dis)connection notification toward the manager.
func (a *Agent) AttachClient(id topology.ClientID, mac packet.MAC, ip packet.IP, port netem.PortID) {
	a.mu.Lock()
	a.clients[id] = clientInfo{id: id, mac: mac, ip: ip, port: port}
	sink := a.clientSink
	a.mu.Unlock()
	// Sticky FDB entry, as an AP installs for an associated station: the
	// client's frames flooded back from the backhaul must never repoint
	// local forwarding away from the access port.
	a.sw.PinMAC(mac, port)
	// Prewarmed standby chains arm their steering the moment the predicted
	// client actually arrives — before the manager even hears about the
	// handoff — so early frames park in the brownout buffer (fail closed)
	// instead of slipping past the not-yet-activated chain.
	a.armStandbySteering(id)
	if sink != nil {
		sink(ClientEvent{Station: string(a.station), Client: string(id), Connected: true, MAC: mac, IP: ip})
	}
}

// armStandbySteering installs fail-closed steering for every standby
// deployment belonging to a freshly associated client: exclusive standbys
// steer into their (disabled, brownout-buffering) chain host, shared
// standby attachments get drop rules.
func (a *Agent) armStandbySteering(id topology.ClientID) {
	a.mu.Lock()
	ci, ok := a.clients[id]
	if !ok {
		a.mu.Unlock()
		return
	}
	var shared, segHeads []*deployment
	for _, d := range a.deployments {
		if d.building || !d.standby || d.spec.Client != string(id) {
			continue
		}
		if d.shared != nil {
			shared = append(shared, d)
			continue
		}
		if d.spec.SegCount > 1 {
			// Split-chain heads install their full segment rule set outside
			// the lock (the installer re-takes a.mu for lookups).
			if d.spec.SegIndex == 0 && len(d.ruleIDs) == 0 {
				segHeads = append(segHeads, d)
			}
			continue
		}
		if !d.spec.Remote && len(d.ruleIDs) == 0 {
			d.ruleIDs = a.clientSteeringRules(ci, d.ports[0], d.ports[1])
		}
	}
	a.mu.Unlock()
	// The steering-swap helper manages its own locking and installs drop
	// rules for a disabled attachment.
	for _, d := range shared {
		a.disableShared(d)
	}
	for _, d := range segHeads {
		a.armSegmentHead(d)
	}
}

// armSegmentHead installs a split-chain head's segment steering if it has
// none yet, discarding its own rules when another installer won the race.
func (a *Agent) armSegmentHead(d *deployment) {
	ids, err := a.installSegmentSteering(d.spec, d.ports[0], d.ports[1])
	if err != nil || len(ids) == 0 {
		return
	}
	a.mu.Lock()
	if len(d.ruleIDs) == 0 {
		d.ruleIDs = ids
		ids = nil
	}
	a.mu.Unlock()
	for _, id := range ids {
		a.sw.RemoveRule(id)
	}
}

// DetachClient removes a client (cell disassociation). Any offload detour
// dies with the association: the client's traffic now enters at its next
// station, which installs its own detour.
func (a *Agent) DetachClient(id topology.ClientID) {
	a.mu.Lock()
	ci, known := a.clients[id]
	delete(a.clients, id)
	steerID, steered := a.steers[id]
	delete(a.steers, id)
	sink := a.clientSink
	a.mu.Unlock()
	if known {
		a.sw.UnpinMAC(ci.mac)
	}
	if steered {
		a.sw.RemoveRule(steerID)
	}
	if known && sink != nil {
		sink(ClientEvent{Station: string(a.station), Client: string(id), Connected: false})
	}
}

// Client returns the attach record for a client.
func (a *Agent) Client(id topology.ClientID) (mac packet.MAC, ip packet.IP, port netem.PortID, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ci, ok := a.clients[id]
	if !ok {
		return packet.MAC{}, packet.IP{}, 0, fmt.Errorf("%w: %s", ErrUnknownClient, id)
	}
	return ci.mac, ci.ip, ci.port, nil
}

// Deploy instantiates spec: containers are created and started, veths
// wired, steering installed. It returns the modeled attach latency.
//
// Shareable specs (every member kind registered Shareable, local chain)
// go through the per-agent shared pool instead: if a compatible instance
// already runs, Deploy only attaches a reference and installs steering —
// no containers boot, which is how a station hosts thousands of clients
// running the same firewall spec with O(replicas) instances.
func (a *Agent) Deploy(spec DeploySpec) (*DeployResult, error) {
	a.mu.Lock()
	if _, dup := a.deployments[spec.Chain]; dup {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrChainExists, spec.Chain)
	}
	// Reserve the name so concurrent deploys of the same chain can never
	// both build; the reservation is invisible to every other API.
	a.deployments[spec.Chain] = &deployment{spec: spec, building: true}
	ci, haveClient := a.clients[topology.ClientID(spec.Client)]
	a.mu.Unlock()

	started := a.clk.Now()
	dep, err := a.buildDeployment(spec, ci, haveClient)
	if err != nil {
		a.mu.Lock()
		delete(a.deployments, spec.Chain)
		a.mu.Unlock()
		return nil, err
	}
	a.mu.Lock()
	a.deployments[spec.Chain] = dep
	a.mu.Unlock()
	// A standby's predicted client may have associated while the build was
	// in flight — the exact timing prewarm anticipates. AttachClient's
	// arming pass skipped the entry (still marked building), and the build
	// snapshotted the client table before the arrival, so re-arm now:
	// without this the client's frames bypass the staged chain instead of
	// parking fail-closed.
	if spec.Standby {
		a.armStandbySteering(topology.ClientID(spec.Client))
	}
	// Lazy reaping rides control-plane activity — after the attach, so a
	// re-deploy arriving right at grace expiry revives the warm instance
	// instead of watching it die first.
	a.ReapPools()

	res := &DeployResult{Chain: spec.Chain, AttachMillis: a.clk.Since(started).Milliseconds()}
	if dep.shared != nil {
		res.Shared = true
		res.Containers = dep.shared.Payload().(*poolResources).containerNames()
	} else {
		for _, c := range dep.containers {
			res.Containers = append(res.Containers, c.Name())
		}
	}
	return res, nil
}

// chainResources is one built chain instance: functions in containers,
// the ChainHost between its two veth pairs, attached at two service ports.
// Both the exclusive layout and shared-pool replicas are made of exactly
// this; only naming and steering differ.
type chainResources struct {
	chain      *nf.Chain
	host       *nf.ChainHost
	containers []*container.Container
	endpoints  []*netem.Endpoint // switch-side ends (close on teardown)
	inPort     netem.PortID
	outPort    netem.PortID
}

// containerCleanup stops and removes the instance's containers.
func (cr *chainResources) containerCleanup() {
	for _, c := range cr.containers {
		c.Stop()
		c.Remove()
	}
}

// buildChainResources boots one chain instance named name from fns: one
// container per NF (as GNF packages functions individually), the chain's
// aggregate state riding the first container's checkpoint, and the
// ingress/egress veth pairs attached as service ports. The host starts
// disabled; callers enable it when forwarding should begin.
func (a *Agent) buildChainResources(name string, fns []NFSpec) (*chainResources, error) {
	members := make([]nf.Function, 0, len(fns))
	for _, fs := range fns {
		fn, err := a.registry.New(fs.Kind, fs.Name, fs.Params)
		if err != nil {
			return nil, err
		}
		members = append(members, fn)
	}
	chain := nf.NewChain(name, members...)
	chain.SetClock(a.clk)
	chain.SetNotifier(func(n nf.Notification) {
		a.mu.Lock()
		sink := a.notifySink
		a.mu.Unlock()
		if sink != nil {
			sink(Alert{Station: string(a.station), Notification: n})
		}
	})

	cr := &chainResources{chain: chain}
	for i, fs := range fns {
		c, err := a.rt.Create(container.Config{
			Name:  fmt.Sprintf("%s-%d-%s", name, i, fs.Kind),
			Image: a.registry.ImageForKind(fs.Kind),
		})
		if err != nil {
			cr.containerCleanup()
			return nil, err
		}
		cr.containers = append(cr.containers, c)
		if err := c.Start(); err != nil {
			cr.containerCleanup()
			return nil, err
		}
	}
	if len(cr.containers) > 0 {
		cr.containers[0].SetStateHandler(chain)
	}

	swIn, chainIn := netem.NewVethPair(name+"-in0", name+"-in1", netem.WithClock(a.clk))
	swOut, chainOut := netem.NewVethPair(name+"-out0", name+"-out1", netem.WithClock(a.clk))
	cr.host = nf.NewChainHost(chain, chainIn, chainOut)
	cr.endpoints = []*netem.Endpoint{swIn, swOut}

	a.mu.Lock()
	cr.inPort, cr.outPort = a.allocPort(), a.allocPort()
	a.mu.Unlock()
	a.sw.AttachService(cr.inPort, swIn)
	a.sw.AttachService(cr.outPort, swOut)
	return cr, nil
}

// teardownChainResources stops forwarding and releases the instance's
// ports, veths and containers.
func (a *Agent) teardownChainResources(cr *chainResources) {
	cr.host.Disable()
	a.retiredDrops.Add(cr.host.Dropped() + cr.host.Parked())
	a.sw.Detach(cr.inPort)
	a.sw.Detach(cr.outPort)
	for _, ep := range cr.endpoints {
		ep.Close()
	}
	cr.containerCleanup()
}

// buildDeployment constructs the resources behind one deployment: a shared
// pool attachment when eligible, otherwise an exclusive instance.
func (a *Agent) buildDeployment(spec DeploySpec, ci clientInfo, haveClient bool) (*deployment, error) {
	if a.sharingEligible(spec) {
		return a.attachShared(spec)
	}

	cr, err := a.buildChainResources(spec.Chain, spec.Functions)
	if err != nil {
		return nil, err
	}

	// Steering. Local chains divert the attached client's traffic: the
	// client's outbound traffic enters the chain ingress; backhaul
	// traffic addressed to the client enters the chain egress. Remote
	// (offloaded) chains receive the client's traffic through a tunnel
	// from the client's station instead, and frames the chain emits
	// toward the client ride the same tunnel home.
	var ruleIDs []int
	switch {
	case spec.SegCount > 1:
		ruleIDs, err = a.installSegmentSteering(spec, cr.inPort, cr.outPort)
		if err != nil {
			a.teardownChainResources(cr)
			return nil, err
		}
	case spec.Remote:
		a.mu.Lock()
		tp, ok := a.tunnels[topology.StationID(spec.Via)]
		a.mu.Unlock()
		if !ok {
			a.teardownChainResources(cr)
			return nil, fmt.Errorf("%w: %s", ErrNoTunnel, spec.Via)
		}
		ruleIDs = a.installRemoteSteering(spec, tp, cr.inPort, cr.outPort)
	case haveClient:
		ruleIDs = a.clientSteeringRules(ci, cr.inPort, cr.outPort)
	}

	dep := &deployment{
		spec:       spec,
		standby:    spec.Standby,
		chain:      cr.chain,
		host:       cr.host,
		containers: cr.containers,
		endpoints:  cr.endpoints,
		ruleIDs:    ruleIDs,
		ports:      [2]netem.PortID{cr.inPort, cr.outPort},
	}
	if spec.Enabled {
		cr.host.Enable()
	} else {
		// Migration and standby deploys start disabled; park the freeze
		// window's frames for replay on activation instead of dropping
		// them. Schedule windows disable *running* chains and are
		// unaffected: their out-of-window traffic still drops.
		cr.host.BufferWhileDisabled(brownoutDepth)
	}
	return dep, nil
}

// clientSteeringRules diverts an attached client's traffic through a
// chain's two service ports: outbound frames from the client's access port
// into the chain ingress, backhaul frames addressed to the client into the
// chain egress.
func (a *Agent) clientSteeringRules(ci clientInfo, inPort, outPort netem.PortID) []int {
	cp := ci.port
	up := a.uplink
	dstIP := ci.ip
	return []int{
		a.sw.AddRule(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &cp},
			Action:   netem.ActionRedirect,
			OutPort:  inPort,
		}),
		a.sw.AddRule(netem.Rule{
			Priority: steerPriority,
			Match:    netem.Match{InPort: &up, DstIP: &dstIP},
			Action:   netem.ActionRedirect,
			OutPort:  outPort,
		}),
	}
}

// ImageForKind resolves an NF kind's repository image name through the
// default registry, so registered NF versions select the image tag.
func ImageForKind(kind string) string { return nf.Default.ImageForKind(kind) }

// get fetches a deployment; names still mid-build are invisible.
func (a *Agent) get(chain string) (*deployment, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.deployments[chain]
	if !ok || d.building {
		return nil, fmt.Errorf("%w: %s", ErrUnknownChain, chain)
	}
	return d, nil
}

// Enable starts forwarding on a deployed chain. For a shared attachment
// this installs the client's steering rules; the pooled instance itself is
// always forwarding.
func (a *Agent) Enable(chain string) error {
	d, err := a.get(chain)
	if err != nil {
		return err
	}
	if d.shared != nil {
		a.enableShared(d)
		return nil
	}
	d.host.Enable()
	return nil
}

// Disable pauses forwarding. Exclusive chains drop traffic while disabled;
// shared attachments instead remove the client's steering (bypass), since
// the instance keeps serving its other clients.
func (a *Agent) Disable(chain string) error {
	d, err := a.get(chain)
	if err != nil {
		return err
	}
	if d.shared != nil {
		a.disableShared(d)
		return nil
	}
	d.host.Disable()
	return nil
}

// Freeze pauses forwarding for a migration: unlike Disable, in-flight
// stragglers park in the brownout buffer, keeping the freeze window
// drop-free while the residual delta ships. Frames still parked when the
// source is removed are folded into the station's retired-drop counter —
// loss is deferred and made visible at teardown, never hidden. Shared
// attachments swap to drop rules like Disable (their instance keeps
// serving other clients; the roamed client's traffic no longer arrives
// here).
func (a *Agent) Freeze(chain string) error {
	d, err := a.get(chain)
	if err != nil {
		return err
	}
	if d.shared != nil {
		a.disableShared(d)
		return nil
	}
	d.host.FreezeBuffered(brownoutDepth)
	return nil
}

// Checkpoint exports the chain's aggregate NF state. For shared
// attachments this exports the pooled instance's primary-replica state —
// shareable NFs hold only advisory state (counters), exported for
// continuity, never per-client correctness state.
func (a *Agent) Checkpoint(chain string) ([]byte, error) {
	d, err := a.get(chain)
	if err != nil {
		return nil, err
	}
	if d.shared != nil {
		res := d.shared.Payload().(*poolResources)
		res.mu.Lock()
		defer res.mu.Unlock()
		if len(res.replicas) == 0 {
			return nil, fmt.Errorf("%w: %s", ErrUnknownChain, chain)
		}
		return res.replicas[0].chain.ExportState()
	}
	if len(d.containers) == 0 {
		return d.chain.ExportState()
	}
	return d.containers[0].Checkpoint()
}

// Restore imports chain state exported by Checkpoint. Importing into a
// shared instance only happens while this attachment is its sole sharer (a
// migration landing on a fresh instance); otherwise the state of the
// clients already being served wins and the import is a no-op.
func (a *Agent) Restore(chain string, state []byte) error {
	d, err := a.get(chain)
	if err != nil {
		return err
	}
	if d.shared != nil {
		if a.pool.Refs(d.shared.Key()) != 1 {
			return nil
		}
		res := d.shared.Payload().(*poolResources)
		res.mu.Lock()
		defer res.mu.Unlock()
		if len(res.replicas) == 0 {
			return fmt.Errorf("%w: %s", ErrUnknownChain, chain)
		}
		return res.replicas[0].chain.ImportState(state)
	}
	if len(d.containers) == 0 {
		return d.chain.ImportState(state)
	}
	return d.containers[0].Restore(state)
}

// PreCopy runs one pre-copy round for a live migration: it exports the
// chain state dirtied since the previous round of the session (the full
// state on the first round) while the chain keeps serving. restart
// discards any stale session from an earlier migration attempt. Rounds of
// one session are serialised by the caller (the manager holds the
// client's migration lock).
func (a *Agent) PreCopy(chain string, restart bool) (*PreCopyResult, error) {
	d, err := a.get(chain)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	if restart {
		d.preEpochs, d.preRound = nil, 0
	}
	since := d.preEpochs
	a.mu.Unlock()

	var blob []byte
	var epochs []uint64
	switch {
	case d.shared != nil:
		// Shared instances export their primary replica, like Checkpoint;
		// shareable NFs hold only advisory state.
		res := d.shared.Payload().(*poolResources)
		res.mu.Lock()
		if len(res.replicas) == 0 {
			res.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrUnknownChain, chain)
		}
		ch := res.replicas[0].chain
		res.mu.Unlock()
		blob, epochs, err = ch.ExportStateDelta(since)
	case len(d.containers) == 0:
		blob, epochs, err = d.chain.ExportStateDelta(since)
	default:
		blob, epochs, err = d.containers[0].CheckpointDelta(since)
	}
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	d.preEpochs = epochs
	d.preRound++
	round := d.preRound
	a.mu.Unlock()
	return &PreCopyResult{Chain: chain, State: blob, Round: round}, nil
}

// SyncDelta applies one pre-copy round's payload to the target chain. For
// shared attachments the import only happens while this attachment is the
// instance's sole sharer, mirroring Restore: the state of clients already
// being served wins.
func (a *Agent) SyncDelta(chain string, state []byte) error {
	d, err := a.get(chain)
	if err != nil {
		return err
	}
	if d.shared != nil {
		if a.pool.Refs(d.shared.Key()) != 1 {
			return nil
		}
		res := d.shared.Payload().(*poolResources)
		res.mu.Lock()
		if len(res.replicas) == 0 {
			res.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrUnknownChain, chain)
		}
		ch := res.replicas[0].chain
		res.mu.Unlock()
		return ch.ImportStateDelta(state)
	}
	if len(d.containers) == 0 {
		return d.chain.ImportStateDelta(state)
	}
	return d.containers[0].RestoreDelta(state)
}

// Activate flips a migration-staged (or prewarmed standby) deployment
// live: the standby mark clears, steering is installed if the client has
// associated since the deploy, the chain starts forwarding, and every
// brownout-buffered frame is replayed in arrival order — the loss-free end
// of a handoff.
func (a *Agent) Activate(chain string) (*ActivateResult, error) {
	return a.ActivateTraced(trace.Context{}, chain)
}

// ActivateTraced is Activate under a trace: the steering flip and the
// brownout replay — the two sub-steps whose durations bound a handoff's
// downtime — each get their own child span when tctx is recording.
func (a *Agent) ActivateTraced(tctx trace.Context, chain string) (*ActivateResult, error) {
	d, err := a.get(chain)
	if err != nil {
		return nil, err
	}
	if d.shared != nil {
		a.mu.Lock()
		d.standby = false
		a.mu.Unlock()
		flip := a.tracer.Child(tctx, "agent.steer_flip")
		a.enableShared(d)
		flip.End(nil)
		return &ActivateResult{Chain: chain}, nil
	}
	flip := a.tracer.Child(tctx, "agent.steer_flip")
	a.mu.Lock()
	d.standby = false
	ci, have := a.clients[topology.ClientID(d.spec.Client)]
	needSeg := d.spec.SegCount > 1 && d.spec.SegIndex == 0 && len(d.ruleIDs) == 0
	if have && !d.spec.Remote && d.spec.SegCount <= 1 && len(d.ruleIDs) == 0 {
		d.ruleIDs = a.clientSteeringRules(ci, d.ports[0], d.ports[1])
	}
	a.mu.Unlock()
	if needSeg {
		// A head segment staged before the client arrived (standby or a
		// mid-handoff migration deploy) installs its rules now.
		a.armSegmentHead(d)
	}
	flip.End(nil)
	replay := a.tracer.Child(tctx, "agent.brownout_replay")
	before := d.host.Replayed()
	d.host.Enable()
	replayed := d.host.Replayed() - before
	replay.SetAttr("replayed", strconv.FormatUint(replayed, 10))
	replay.End(nil)
	return &ActivateResult{Chain: chain, Replayed: replayed}, nil
}

// Remove tears a deployment down: steering rules out first (traffic cuts
// over to normal forwarding), then containers, ports and veths. Shared
// attachments only drop their reference; the instance survives for other
// sharers, or idles into the reaper's grace window.
func (a *Agent) Remove(chain string) error {
	a.mu.Lock()
	d, ok := a.deployments[chain]
	if !ok || d.building {
		a.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownChain, chain)
	}
	delete(a.deployments, chain)
	a.mu.Unlock()

	if d.shared != nil {
		a.releaseShared(d)
		return nil
	}

	for _, id := range d.ruleIDs {
		a.sw.RemoveRule(id)
	}
	d.host.Disable()
	// Parked brownout frames die with the chain; count them so teardown
	// never hides real traffic loss (e.g. a frozen source removed while
	// its client was still attached, as manual migrations do).
	a.retiredDrops.Add(d.host.Dropped() + d.host.Parked())
	a.sw.Detach(d.ports[0])
	a.sw.Detach(d.ports[1])
	for _, ep := range d.endpoints {
		ep.Close()
	}
	var firstErr error
	for _, c := range d.containers {
		if err := c.Stop(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := c.Remove(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Prefetch warms images on the local cache (migration pre-staging).
func (a *Agent) Prefetch(images []string) error {
	for _, img := range images {
		if err := a.rt.PrefetchImage(img); err != nil {
			return err
		}
	}
	return nil
}

// Chains lists deployment names, sorted.
func (a *Agent) Chains() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.deployments))
	for name, d := range a.deployments {
		if d.building {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ChainEnabled reports whether a deployed chain is currently forwarding
// (for shared attachments: whether the client's steering is installed).
func (a *Agent) ChainEnabled(chain string) (bool, error) {
	d, err := a.get(chain)
	if err != nil {
		return false, err
	}
	if d.shared != nil {
		a.mu.Lock()
		defer a.mu.Unlock()
		return d.enabled, nil
	}
	return d.host.Enabled(), nil
}

// ChainFunction exposes the live chain function (local callers only, e.g.
// tests asserting NF state). For shared attachments it returns the pooled
// instance's primary replica.
func (a *Agent) ChainFunction(chain string) (*nf.Chain, error) {
	d, err := a.get(chain)
	if err != nil {
		return nil, err
	}
	if d.shared != nil {
		res := d.shared.Payload().(*poolResources)
		res.mu.Lock()
		defer res.mu.Unlock()
		if len(res.replicas) == 0 {
			return nil, fmt.Errorf("%w: %s", ErrUnknownChain, chain)
		}
		return res.replicas[0].chain, nil
	}
	return d.chain, nil
}

// Report builds the periodic status report. It doubles as the reaper's
// heartbeat: idle shared instances whose grace lapsed between control-plane
// operations are reclaimed on the next report tick.
func (a *Agent) Report() Report {
	a.ReapPools()
	swst := a.sw.Stats()
	rep := Report{
		Station: string(a.station),
		Usage:   a.rt.Usage(),
		Switch: SwitchStats{
			RxFrames:      swst.RxFrames,
			Dropped:       swst.Dropped,
			Flooded:       swst.Flooded,
			Redirects:     swst.Redirects,
			Rules:         swst.Rules,
			CacheHits:     swst.CacheHits,
			CacheMisses:   swst.CacheMisses,
			FlowEntries:   swst.FlowEntries,
			BatchFrames:   swst.BatchFrames,
			BatchRuns:     swst.BatchRuns,
			SampledFrames: swst.SampledFrames,
		},
		RetiredDrops:         a.retiredDrops.Load(),
		FramePoolOutstanding: packet.FramePoolOutstanding(),
		UnixNano:             a.clk.Now().UnixNano(),
	}
	// Snapshot the mutable per-deployment flags in the same locked pass
	// that collects the list, so the loop below never re-takes a.mu.
	type depSnap struct {
		d                *deployment
		enabled, standby bool
	}
	a.mu.Lock()
	deps := make([]depSnap, 0, len(a.deployments))
	for _, d := range a.deployments {
		if d.building {
			continue
		}
		deps = append(deps, depSnap{d: d, enabled: d.enabled, standby: d.standby})
	}
	a.mu.Unlock()
	// Sharers of one instance all report the same aggregate counters;
	// compute them once per instance, not once per sharer (a thousand
	// clients on one pool would otherwise rescan it a thousand times).
	type poolLoad struct{ processed, dropped uint64 }
	loadOf := make(map[*poolResources]poolLoad)
	for _, snap := range deps {
		d := snap.d
		var cs ChainStatus
		if d.shared != nil {
			res := d.shared.Payload().(*poolResources)
			load, ok := loadOf[res]
			if !ok {
				load.processed, load.dropped, _ = res.loads()
				loadOf[res] = load
			}
			cs = ChainStatus{
				Chain:      d.spec.Chain,
				Client:     d.spec.Client,
				Enabled:    snap.enabled,
				Processed:  load.processed,
				Dropped:    load.dropped,
				Shared:     true,
				ConfigHash: d.shared.Key().ConfigHash,
				Standby:    snap.standby,
			}
		} else {
			cs = ChainStatus{
				Chain:     d.spec.Chain,
				Client:    d.spec.Client,
				Enabled:   d.host.Enabled(),
				Processed: d.host.Processed(),
				Dropped:   d.host.Dropped(),
				NFStats:   d.chain.NFStats(),
				Standby:   snap.standby,
			}
		}
		rep.Chains = append(rep.Chains, cs)
	}
	rep.Pools = a.PoolStats()
	return rep
}

// reportEvery is the default health reporting interval.
const reportEvery = time.Second
