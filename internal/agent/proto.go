package agent

import (
	"strconv"
	"strings"

	"gnf/internal/metrics"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/trace"
)

// SegmentDeployName returns the deployment name of segment i of chain.
// The head keeps the chain's own name, so every single-placement code
// path — migration, brownout replay, prewarm, sharing — applies to it
// unchanged; later segments append "#i".
func SegmentDeployName(chain string, i int) string {
	if i == 0 {
		return chain
	}
	return chain + "#" + strconv.Itoa(i)
}

// ParseSegmentName splits a deployment name back into its chain name and
// segment index (0 for the head and for unsplit chains).
func ParseSegmentName(dep string) (chain string, seg int) {
	i := strings.LastIndexByte(dep, '#')
	if i < 0 {
		return dep, 0
	}
	n, err := strconv.Atoi(dep[i+1:])
	if err != nil || n <= 0 {
		return dep, 0
	}
	return dep[:i], n
}

// Wire method names spoken between Manager and Agent. Methods prefixed
// "agent." are served by the Agent (Manager calls down); "manager." methods
// are served by the Manager (Agent calls/notifies up).
const (
	// Agent-served methods.
	MethodDeploy     = "agent.deploy"
	MethodRemove     = "agent.remove"
	MethodCheckpoint = "agent.checkpoint"
	MethodRestore    = "agent.restore"
	MethodEnable     = "agent.enable"
	MethodDisable    = "agent.disable"
	MethodPrefetch   = "agent.prefetch"
	MethodStats      = "agent.stats"
	MethodPing       = "agent.ping"
	MethodSteer      = "agent.steer"
	// MethodSteerBatch installs many steering detours in one call: the
	// manager's per-agent coalescer collapses a storm of clients landing on
	// one station into a single rule-install RPC.
	MethodSteerBatch = "agent.steerBatch"
	MethodUnsteer    = "agent.unsteer"
	MethodRetarget   = "agent.retarget"
	MethodScalePool  = "agent.scalePool"
	// Live-migration pipeline: PreCopy exports (incremental) state from a
	// still-serving source, SyncDelta applies it on the target, Activate
	// flips the target live and replays its brownout buffer.
	MethodPreCopy   = "agent.preCopy"
	MethodSyncDelta = "agent.syncDelta"
	MethodActivate  = "agent.activate"

	// Manager-served methods.
	MethodRegister    = "manager.register"
	MethodReport      = "manager.report"      // notify
	MethodClientEvent = "manager.clientEvent" // notify
	MethodNFAlert     = "manager.nfAlert"     // notify
	// MethodSpans flushes finished agent-side trace spans up to the
	// manager's span store. Traced agents call it synchronously from
	// inside the RPC handler, before the response, so the manager's span
	// tree is complete by the time its traced call returns.
	MethodSpans = "manager.spans"
)

// NFSpec describes one function of a chain to instantiate via the NF
// registry.
type NFSpec struct {
	Kind   string    `json:"kind"`
	Name   string    `json:"name"`
	Params nf.Params `json:"params,omitempty"`
	// Affinity tags where this function wants to run when its chain is
	// split into per-station segments: "near-client" pins it to the
	// client's current station (it roams with the client), "aggregate"
	// anchors it on a stable aggregation station, "cloud-ok" permits a
	// GNFC cloud site. Empty means "follow the chain" — a chain whose
	// functions all carry the empty tag is never split.
	Affinity string `json:"affinity,omitempty"`
}

// DeploySpec asks an Agent to run a chain for one client's traffic.
type DeploySpec struct {
	Chain     string     `json:"chain"` // unique deployment name
	Client    string     `json:"client"`
	ClientMAC packet.MAC `json:"client_mac"`
	ClientIP  packet.IP  `json:"client_ip"`
	Functions []NFSpec   `json:"functions"`
	// Enabled starts forwarding immediately (default for fresh deploys);
	// migrations deploy disabled, restore state, then enable.
	Enabled bool `json:"enabled"`
	// Remote deploys the chain away from the client's station (GNFC
	// offload): traffic arrives through the tunnel from Via, and
	// ClientMAC/ClientIP must be set since the hosting agent has no
	// local record of the client.
	Remote bool `json:"remote,omitempty"`
	// Via names the station whose tunnel delivers the client's traffic.
	Via string `json:"via,omitempty"`
	// Standby marks a predictive prewarm deployment: the chain is staged
	// disabled at the station a mobility model expects the client to roam
	// to next. Standby chains are placement intents, not placements — they
	// are excluded from the invariant audit, and steering is armed
	// fail-closed (into the brownout buffer) the moment the client actually
	// associates, so a mid-handoff frame is parked rather than leaked.
	Standby bool `json:"standby,omitempty"`
	// SegIndex/SegCount mark this deployment as one segment of a chain
	// split across stations (SegCount > 1). The head segment (SegIndex 0)
	// sits at the client's station and takes traffic straight off the
	// client port; later segments receive it over the tunnel from PrevVia.
	SegIndex int `json:"seg_index,omitempty"`
	SegCount int `json:"seg_count,omitempty"`
	// PrevVia names the station hosting the previous segment ("" for the
	// head); frames arrive over its tunnel. NextVia names the station
	// hosting the next segment ("" for the tail); egress frames are
	// steered into its tunnel instead of the uplink.
	PrevVia string `json:"prev_via,omitempty"`
	NextVia string `json:"next_via,omitempty"`
}

// DeployResult reports what the agent built.
type DeployResult struct {
	Chain        string   `json:"chain"`
	Containers   []string `json:"containers"`
	AttachMillis int64    `json:"attach_millis"` // modeled attach latency
	// Shared marks an attachment to a pooled instance; Containers then
	// lists the instance's (shared) containers rather than fresh ones.
	Shared bool `json:"shared,omitempty"`
}

// ChainRef names a deployment on an agent. Brownout applies to
// MethodDisable only: the chain freezes with its brownout buffer armed
// (migration freeze) instead of dropping in-flight frames (schedule
// windows, which must police out-of-window traffic).
type ChainRef struct {
	Chain    string `json:"chain"`
	Brownout bool   `json:"brownout,omitempty"`
}

// CheckpointResult carries exported chain state.
type CheckpointResult struct {
	Chain string `json:"chain"`
	State []byte `json:"state"` // base64 via JSON
}

// RestoreSpec imports chain state.
type RestoreSpec struct {
	Chain string `json:"chain"`
	State []byte `json:"state"`
}

// PreCopySpec asks a source agent for the next pre-copy round of a chain:
// the state dirtied since the previous round (the full state on the first
// round of a session). Restart discards any existing session first, so a
// fresh migration attempt never resumes a stale epoch vector.
type PreCopySpec struct {
	Chain   string `json:"chain"`
	Restart bool   `json:"restart,omitempty"`
}

// PreCopyResult carries one pre-copy round's payload; len(State) is the
// caller's convergence signal.
type PreCopyResult struct {
	Chain string `json:"chain"`
	State []byte `json:"state"` // chain-delta format (self-describing per member)
	Round int    `json:"round"` // 1-based round number within the session
}

// SyncDeltaSpec applies a pre-copy round's payload on the target.
type SyncDeltaSpec struct {
	Chain string `json:"chain"`
	State []byte `json:"state"`
}

// ActivateResult reports target activation: how many brownout-buffered
// frames were replayed through the chain, making the handoff loss-free.
type ActivateResult struct {
	Chain    string `json:"chain"`
	Replayed uint64 `json:"replayed"`
}

// PrefetchSpec warms an image on the agent's runtime.
type PrefetchSpec struct {
	Images []string `json:"images"`
}

// RegisterSpec announces an agent to the manager.
type RegisterSpec struct {
	Station     string `json:"station"`
	MemoryBytes uint64 `json:"memory_bytes"`
	// Cloud marks the station as a GNFC cloud site: high capacity behind
	// a WAN link, eligible for offload placement but not client
	// association.
	Cloud bool `json:"cloud,omitempty"`
	// Chains lists deployments the agent already hosts (a rejoin after a
	// management-plane outage); the manager garbage-collects any it has
	// re-placed elsewhere meanwhile.
	Chains []string `json:"chains,omitempty"`
}

// Report is the periodic health/resource report of §3 ("reporting
// periodically the state of the device").
type Report struct {
	Station string                `json:"station"`
	Usage   metrics.ResourceUsage `json:"usage"`
	Switch  SwitchStats           `json:"switch"`
	Chains  []ChainStatus         `json:"chains"`
	Pools   []PoolStatus          `json:"pools,omitempty"`
	// RetiredDrops carries the accumulated drop counters of chains already
	// torn down on this station, so loss accounting survives migrations.
	RetiredDrops uint64 `json:"retired_drops,omitempty"`
	// FramePoolOutstanding is the process-wide borrowed-minus-returned
	// pooled-frame count — the dataplane leak signal, surfaced per report
	// so the manager can watch it trend.
	FramePoolOutstanding int64 `json:"frame_pool_outstanding,omitempty"`
	UnixNano             int64 `json:"unix_nano"`
}

// PoolStatus describes one shared NF instance on a station: its pool key,
// how many deployments reference it, how many replicas serve it, and the
// aggregate frames processed (the autoscaler's load signal).
type PoolStatus struct {
	Kinds      string `json:"kinds"`       // chain kind signature, e.g. "firewall+counter"
	ConfigHash string `json:"config_hash"` // canonical configuration digest
	Refs       int    `json:"refs"`        // attached deployments (0 = idle, in grace)
	Replicas   int    `json:"replicas"`
	Processed  uint64 `json:"processed"` // frames, summed over replicas
	Dropped    uint64 `json:"dropped"`
	// PerReplica breaks Processed down per replica, in replica order.
	PerReplica []uint64 `json:"per_replica,omitempty"`
}

// ScalePoolSpec asks an agent to resize a shared instance's replica group.
// Replicas must be >= 1; scale-in drains (removes the replica from the
// steering group so flows re-hash away) before tearing the replica down.
type ScalePoolSpec struct {
	Kinds      string `json:"kinds"`
	ConfigHash string `json:"config_hash"`
	Replicas   int    `json:"replicas"`
}

// SwitchStats mirrors netem.SwitchStats for the wire. Beyond the classic
// forwarding counters it carries the dataplane telemetry the manager folds
// into its metrics registry: verdict-cache hits/misses (hit ratio), live
// flow-cache entries, and the batched path's run amortisation counters
// (frames per run = BatchFrames / BatchRuns).
type SwitchStats struct {
	RxFrames    uint64 `json:"rx_frames"`
	Dropped     uint64 `json:"dropped"`
	Flooded     uint64 `json:"flooded"`
	Redirects   uint64 `json:"redirects"`
	Rules       int    `json:"rules"`
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
	FlowEntries int    `json:"flow_entries,omitempty"`
	BatchFrames uint64 `json:"batch_frames,omitempty"`
	BatchRuns   uint64 `json:"batch_runs,omitempty"`
	// SampledFrames counts frames captured by the switch's 1-in-N trace
	// sampler (0 when sampling is disabled).
	SampledFrames uint64 `json:"sampled_frames,omitempty"`
}

// ChainStatus summarises one deployment for the UI.
type ChainStatus struct {
	Chain     string            `json:"chain"`
	Client    string            `json:"client"`
	Enabled   bool              `json:"enabled"`
	Processed uint64            `json:"processed"`
	Dropped   uint64            `json:"dropped"`
	NFStats   map[string]uint64 `json:"nf_stats,omitempty"`
	// Shared marks a deployment served by a pooled instance; Processed and
	// Dropped then aggregate over every sharer, and ConfigHash names the
	// pool entry serving it.
	Shared     bool   `json:"shared,omitempty"`
	ConfigHash string `json:"config_hash,omitempty"`
	// Standby marks a prewarmed placement intent (see DeploySpec.Standby);
	// the invariant audit skips these.
	Standby bool `json:"standby,omitempty"`
}

// ClientEvent reports client (dis)connection to the manager (§3: the Agent
// is responsible for "notifying the Manager of clients' (dis)connection").
type ClientEvent struct {
	Station   string `json:"station"`
	Client    string `json:"client"`
	Connected bool   `json:"connected"`
	// MAC and IP carry the client's addressing on connect events so the
	// Manager can deploy remote (offloaded) chains, whose hosting agent
	// has no local client table entry to resolve them from.
	MAC packet.MAC `json:"mac,omitempty"`
	IP  packet.IP  `json:"ip,omitempty"`
}

// SteerSpec asks a client's station to detour the client's traffic into
// the tunnel toward Via (the GNFC offload detour).
type SteerSpec struct {
	Client string `json:"client"`
	Via    string `json:"via"`
}

// SteerBatchSpec carries many steering detours in one MethodSteerBatch
// call. Rules apply in order; the first failure aborts the rest.
type SteerBatchSpec struct {
	Rules []SteerSpec `json:"rules"`
}

// UnsteerSpec removes a client's detour.
type UnsteerSpec struct {
	Client string `json:"client"`
}

// RetargetSpec re-points a remote deployment's tunnel rules at the tunnel
// from Via (roaming an offloaded client). For segment deployments the
// optional PrevVia/NextVia pointers re-point the segment's neighbour legs
// instead (nil leaves a leg untouched; pointing at "" makes the segment a
// head/tail).
type RetargetSpec struct {
	Chain   string  `json:"chain"`
	Via     string  `json:"via"`
	PrevVia *string `json:"prev_via,omitempty"`
	NextVia *string `json:"next_via,omitempty"`
}

// Alert relays an NF notification with its origin station.
type Alert struct {
	Station      string          `json:"station"`
	Notification nf.Notification `json:"notification"`
}

// SpanBatch carries finished agent-side trace spans to the manager
// (MethodSpans).
type SpanBatch struct {
	Station string             `json:"station"`
	Spans   []trace.SpanRecord `json:"spans"`
}
