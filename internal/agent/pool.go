package agent

import (
	"errors"
	"fmt"
	"sync"

	"gnf/internal/netem"
	"gnf/internal/share"
	"gnf/internal/topology"
)

// Errors returned by the shared-pool paths.
var (
	ErrUnknownPool = errors.New("agent: no shared instance for pool key")
	ErrBadReplicas = errors.New("agent: replica count must be >= 1")
)

// poolResources is the dataplane payload behind one share.Instance: the
// replica set plus the two switch select groups (ingress/egress) that
// client steering rules fan into. Client rules never name replica ports
// directly, so scaling only rewrites group membership.
type poolResources struct {
	name string   // unique resource-name prefix ("pool-<hash>-gN")
	fns  []NFSpec // replica blueprint

	inGroup  int
	outGroup int

	// scaleMu serialises replica-set transitions (ScalePool, teardown).
	// Container boots happen under scaleMu only — never under mu — so
	// counter readers (reports, checkpoints) cannot stall behind a
	// modeled boot latency.
	scaleMu     sync.Mutex
	nextReplica int // monotonic naming index, never reused; scaleMu-held

	// mu guards the published replica list and the dead flag; held only
	// for cheap reads and list swaps. Replicas are plain chainResources,
	// always-forwarding — per-client activation lives in steering rules.
	mu       sync.Mutex
	replicas []*chainResources
	dead     bool // torn down by the reaper; reject scaling
}

// loads sums processed/dropped frames over the replica set and returns the
// per-replica processed breakdown, in replica order.
func (res *poolResources) loads() (processed, dropped uint64, per []uint64) {
	res.mu.Lock()
	defer res.mu.Unlock()
	per = make([]uint64, 0, len(res.replicas))
	for _, rep := range res.replicas {
		p := rep.host.Processed()
		processed += p
		dropped += rep.host.Dropped()
		per = append(per, p)
	}
	return processed, dropped, per
}

// poolKeyOf computes the canonical pool key of a chain spec. Function
// instance names are excluded: sharing is decided by configuration alone.
func poolKeyOf(fns []NFSpec) share.Key {
	specs := make([]share.FuncSpec, 0, len(fns))
	for _, fs := range fns {
		specs = append(specs, share.FuncSpec{Kind: fs.Kind, Params: fs.Params})
	}
	return share.ChainKey(specs)
}

// sharingEligible reports whether a deployment may attach to a shared
// instance: sharing enabled, a local (non-tunnelled) chain, and every
// member kind registered shareable. Chains with any stateful member keep
// the one-instance-per-client layout of the paper. Split-chain segments
// are excluded: their egress must steer into the next leg's tunnel,
// which the pool's shared group steering cannot express (the manager
// still pools their prefix keys for placement affinity — share.PrefixKeys).
func (a *Agent) sharingEligible(spec DeploySpec) bool {
	if !a.sharing || spec.Remote || spec.SegCount > 1 || len(spec.Functions) == 0 {
		return false
	}
	for _, fs := range spec.Functions {
		if !a.registry.Shareable(fs.Kind) {
			return false
		}
	}
	return true
}

// attachShared deploys spec against the shared pool: attach to a
// compatible live instance, or build the first replica of a new one. The
// attach cost of a pool hit is zero container boots — that is the whole
// point.
func (a *Agent) attachShared(spec DeploySpec) (*deployment, error) {
	key := poolKeyOf(spec.Functions)
	inst, _, err := a.pool.Acquire(key, spec.Chain, func() (any, error) {
		return a.buildPoolResources(key, spec.Functions)
	})
	if err != nil {
		return nil, err
	}
	dep := &deployment{spec: spec, standby: spec.Standby, shared: inst}
	if spec.Enabled {
		a.enableShared(dep)
	} else {
		// Match the exclusive layout's disabled semantics from the first
		// frame: steer-and-drop, never an unfiltered window.
		a.disableShared(dep)
	}
	return dep, nil
}

// containerNames lists the containers backing the instance, replica order.
func (res *poolResources) containerNames() []string {
	res.mu.Lock()
	defer res.mu.Unlock()
	var out []string
	for _, rep := range res.replicas {
		for _, c := range rep.containers {
			out = append(out, c.Name())
		}
	}
	return out
}

// buildPoolResources constructs a fresh shared instance: replica 0 and the
// steering groups. The generation counter keeps resource names unique even
// when a key is reaped and re-created.
func (a *Agent) buildPoolResources(key share.Key, fns []NFSpec) (*poolResources, error) {
	res := &poolResources{
		name: fmt.Sprintf("pool-%s-g%d", key.Short(), a.poolSeq.Add(1)),
		fns:  fns,
	}
	rep, err := a.buildPoolReplica(res)
	if err != nil {
		return nil, err
	}
	res.replicas = []*chainResources{rep}
	res.inGroup = a.sw.AddGroup([]netem.PortID{rep.inPort})
	res.outGroup = a.sw.AddGroup([]netem.PortID{rep.outPort})
	return res, nil
}

// buildPoolReplica boots one replica of res — the same build as an
// exclusive deployment (buildChainResources), named under the pool prefix
// and forwarding from birth: per-client activation is steering-only.
// Callers hold res.scaleMu once res is published (ScalePool); the initial
// build owns res exclusively. res.mu is deliberately not required: boots
// sleep modeled container costs.
func (a *Agent) buildPoolReplica(res *poolResources) (*chainResources, error) {
	idx := res.nextReplica
	res.nextReplica++
	rep, err := a.buildChainResources(fmt.Sprintf("%s-r%d", res.name, idx), res.fns)
	if err != nil {
		return nil, err
	}
	rep.host.Enable()
	return rep, nil
}

// enableShared points the client's steering rules at the instance's select
// groups.
func (a *Agent) enableShared(dep *deployment) {
	a.setSharedSteering(dep, true)
}

// disableShared swaps the client's steering to drop rules: a disabled
// chain must behave the same whether its instance is exclusive or shared —
// fail closed — so a firewall mid-migration never fails open just because
// the instance also serves other clients. The shared instance itself keeps
// forwarding for its other sharers.
func (a *Agent) disableShared(dep *deployment) {
	a.setSharedSteering(dep, false)
}

// setSharedSteering (re)installs the attachment's two client rules —
// outbound into the ingress group and inbound into the egress group when
// enabled, both dropping when disabled — then removes whatever rules the
// attachment had before, so there is no unsteered window during the swap.
// An attachment Remove has already torn down gets nothing: rules installed
// past that point would never be cleaned up and would steer the client
// into groups destined for removal.
func (a *Agent) setSharedSteering(dep *deployment, enabled bool) {
	a.mu.Lock()
	if dep.removed || (dep.enabled == enabled && dep.ruleIDs != nil) {
		a.mu.Unlock()
		return
	}
	dep.enabled = enabled
	dep.steerSeq++
	seq := dep.steerSeq
	ci, haveClient := a.clients[topology.ClientID(dep.spec.Client)]
	a.mu.Unlock()
	if !haveClient {
		return
	}
	res := dep.shared.Payload().(*poolResources)
	cp := ci.port
	up := a.uplink
	dstIP := ci.ip
	outRule := netem.Rule{Priority: steerPriority, Match: netem.Match{InPort: &cp}}
	inRule := netem.Rule{Priority: steerPriority, Match: netem.Match{InPort: &up, DstIP: &dstIP}}
	if enabled {
		outRule.Action, outRule.Group = netem.ActionGroup, res.inGroup
		inRule.Action, inRule.Group = netem.ActionGroup, res.outGroup
	} else {
		outRule.Action = netem.ActionDrop
		inRule.Action = netem.ActionDrop
	}
	ids := []int{a.sw.AddRule(outRule), a.sw.AddRule(inRule)}
	a.mu.Lock()
	if dep.removed || dep.steerSeq != seq {
		// Remove, or a newer Enable/Disable intent, won the race while we
		// were installing: our fresh rules must go, not persist as orphans
		// (or shadow the newer intent's rules).
		a.mu.Unlock()
		for _, id := range ids {
			a.sw.RemoveRule(id)
		}
		return
	}
	old := dep.ruleIDs
	dep.ruleIDs = ids
	a.mu.Unlock()
	for _, id := range old {
		a.sw.RemoveRule(id)
	}
}

// releaseShared removes the attachment's steering entirely (traffic cuts
// over to normal forwarding), detaches it from its instance, and reaps
// anything whose grace period has lapsed.
func (a *Agent) releaseShared(dep *deployment) {
	a.mu.Lock()
	dep.removed = true
	ids := dep.ruleIDs
	dep.ruleIDs = nil
	dep.enabled = false
	a.mu.Unlock()
	for _, id := range ids {
		a.sw.RemoveRule(id)
	}
	a.pool.Release(dep.shared.Key(), dep.spec.Chain)
	a.ReapPools()
}

// ReapPools tears down shared instances that have been unreferenced past
// the pool's grace period, returning how many were reclaimed. It runs
// lazily on deploy/remove/report; tests and operators may call it
// directly.
func (a *Agent) ReapPools() int {
	reaped := a.pool.Reap()
	for _, inst := range reaped {
		a.teardownPoolResources(inst.Payload().(*poolResources))
	}
	return len(reaped)
}

// teardownPoolResources dismantles an instance: groups first (rules that
// somehow survive go to group-miss drops instead of a dead port), then
// every replica. Holding scaleMu keeps it from interleaving with an
// in-flight ScalePool.
func (a *Agent) teardownPoolResources(res *poolResources) {
	res.scaleMu.Lock()
	defer res.scaleMu.Unlock()
	res.mu.Lock()
	res.dead = true
	reps := res.replicas
	res.replicas = nil
	res.mu.Unlock()
	a.sw.RemoveGroup(res.inGroup)
	a.sw.RemoveGroup(res.outGroup)
	for _, rep := range reps {
		a.teardownChainResources(rep)
	}
}

// refreshGroups republishes the instance's group membership from the
// current replica set. Callers hold res.mu.
func (a *Agent) refreshGroups(res *poolResources) {
	inPorts := make([]netem.PortID, 0, len(res.replicas))
	outPorts := make([]netem.PortID, 0, len(res.replicas))
	for _, rep := range res.replicas {
		inPorts = append(inPorts, rep.inPort)
		outPorts = append(outPorts, rep.outPort)
	}
	a.sw.SetGroup(res.inGroup, inPorts)
	a.sw.SetGroup(res.outGroup, outPorts)
}

// ScalePool resizes a shared instance's replica set. Scale-out boots new
// replicas and then adds their ports to the steering groups (no frame
// reaches a replica before it forwards); scale-in drains first — victims
// leave the groups, flows re-hash onto survivors — and tears the victims
// down after. The generation bump of the group rewrite invalidates every
// cached flow verdict, so live flows re-spread immediately.
func (a *Agent) ScalePool(kinds, configHash string, replicas int) error {
	if replicas < 1 {
		return fmt.Errorf("%w: got %d", ErrBadReplicas, replicas)
	}
	key := share.Key{Kinds: kinds, ConfigHash: configHash}
	inst := a.pool.Get(key)
	if inst == nil {
		return fmt.Errorf("%w: %s/%s", ErrUnknownPool, kinds, configHash)
	}
	res := inst.Payload().(*poolResources)
	res.scaleMu.Lock()
	defer res.scaleMu.Unlock()
	res.mu.Lock()
	cur := len(res.replicas)
	if res.dead {
		res.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrUnknownPool, kinds, configHash)
	}
	res.mu.Unlock()

	// Scale out first, without holding res.mu: booting a replica sleeps
	// the modeled container costs, and counter readers (reports feeding
	// the very autoscaler driving this call) must not stall behind it.
	var added []*chainResources
	var buildErr error
	for cur+len(added) < replicas {
		rep, err := a.buildPoolReplica(res)
		if err != nil {
			buildErr = err // publish whatever did come up
			break
		}
		added = append(added, rep)
	}
	res.mu.Lock()
	res.replicas = append(res.replicas, added...)
	var victims []*chainResources
	if buildErr == nil && len(res.replicas) > replicas {
		victims = append(victims, res.replicas[replicas:]...)
		res.replicas = res.replicas[:replicas]
	}
	if len(added) > 0 || len(victims) > 0 {
		// A no-op resize must not rewrite the groups: every SetGroup bumps
		// the switch generation and flushes the whole per-flow verdict
		// cache — for all flows on the station, not just this pool's.
		a.refreshGroups(res)
	}
	res.mu.Unlock()
	for _, rep := range victims {
		a.teardownChainResources(rep)
	}
	return buildErr
}

// PoolStats snapshots the agent's shared-instance table for reports, the
// autoscaler and gnfctl pools.
func (a *Agent) PoolStats() []PoolStatus {
	stats := a.pool.Snapshot()
	out := make([]PoolStatus, 0, len(stats))
	for _, st := range stats {
		ps := PoolStatus{
			Kinds:      st.Key.Kinds,
			ConfigHash: st.Key.ConfigHash,
			Refs:       st.Refs,
		}
		if inst := a.pool.Get(st.Key); inst != nil {
			res := inst.Payload().(*poolResources)
			ps.Processed, ps.Dropped, ps.PerReplica = res.loads()
			ps.Replicas = len(ps.PerReplica)
		}
		out = append(out, ps)
	}
	return out
}
