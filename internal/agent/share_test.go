package agent_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/netem"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

// sharedSpec is a shareable chain spec (all member kinds stateless) for
// client, with a per-client chain name and identical configuration.
func sharedSpec(chain, client string) agent.DeploySpec {
	return agent.DeploySpec{
		Chain:  chain,
		Client: client,
		Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
			{Kind: "counter", Name: "acct"},
		},
		Enabled: true,
	}
}

// attachExtraClient wires another client host into the station switch.
func attachExtraClient(t *testing.T, st *station, id string, idx int) *netem.Host {
	t.Helper()
	mac := packet.MAC{2, 0, 0, 9, byte(idx >> 8), byte(idx)}
	ip := packet.IP{10, 0, 1, byte(idx)}
	cl, clSw := netem.NewVethPair(id+"-wl", id+"-ap")
	port := netem.PortID(10 + idx)
	st.ag.Switch().Attach(port, clSw)
	host := netem.NewHost(mac, ip, cl)
	host.Learn(serverIP, serverMAC)
	st.ag.AttachClient(topology.ClientID(id), mac, ip, port)
	t.Cleanup(func() { cl.Close() })
	return host
}

func TestSharedDeployDeduplicatesInstances(t *testing.T) {
	st := newStation(t)
	attachExtraClient(t, st, "c2", 2)
	attachExtraClient(t, st, "c3", 3)

	r1, err := st.ag.Deploy(sharedSpec("fw-phone", "phone"))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Shared {
		t.Fatal("shareable spec not pooled")
	}
	base := len(st.ag.Runtime().List())
	for i, client := range []string{"c2", "c3"} {
		res, err := st.ag.Deploy(sharedSpec(fmt.Sprintf("fw-c%d", i+2), client))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Shared {
			t.Fatal("expected pool attachment")
		}
		if res.AttachMillis != 0 {
			t.Fatalf("pool hit paid %dms attach latency", res.AttachMillis)
		}
	}
	if got := len(st.ag.Runtime().List()); got != base {
		t.Fatalf("containers grew from %d to %d on pool hits", base, got)
	}
	pools := st.ag.PoolStats()
	if len(pools) != 1 || pools[0].Refs != 3 || pools[0].Replicas != 1 {
		t.Fatalf("pools = %+v", pools)
	}
	if pools[0].Kinds != "firewall+counter" {
		t.Fatalf("kind signature = %q", pools[0].Kinds)
	}

	// A different configuration must get its own instance.
	other := sharedSpec("lim-phone2", "phone")
	other.Functions = []agent.NFSpec{{Kind: "ratelimit", Name: "pol", Params: nf.Params{"rate_bps": "1000000"}}}
	if _, err := st.ag.Deploy(other); err != nil {
		t.Fatal(err)
	}
	if pools := st.ag.PoolStats(); len(pools) != 2 {
		t.Fatalf("pools after distinct spec = %+v", pools)
	}
}

func TestSharedDensityHundredClients(t *testing.T) {
	st := newStation(t)
	const clients = 100
	for i := 0; i < clients; i++ {
		id := fmt.Sprintf("c%03d", i)
		attachExtraClient(t, st, id, i+2)
		if _, err := st.ag.Deploy(sharedSpec("fw-"+id, id)); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	// 100 clients, one shareable spec: O(replicas) instances, not 100.
	if got := len(st.ag.Runtime().List()); got != 2 {
		t.Fatalf("runtime hosts %d containers for %d clients (want 2: one per NF of one instance)", got, clients)
	}
	pools := st.ag.PoolStats()
	if len(pools) != 1 || pools[0].Refs != clients {
		t.Fatalf("pools = %+v", pools)
	}
	if got := len(st.ag.Chains()); got != clients {
		t.Fatalf("chains = %d", got)
	}
}

func TestSharedConcurrentDeployRemove(t *testing.T) {
	st := newStation(t)
	const workers = 16
	for i := 0; i < workers; i++ {
		attachExtraClient(t, st, fmt.Sprintf("w%d", i), i+2)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := fmt.Sprintf("w%d", i)
			chain := "fw-" + client
			for j := 0; j < 20; j++ {
				if _, err := st.ag.Deploy(sharedSpec(chain, client)); err != nil {
					t.Errorf("deploy %s: %v", chain, err)
					return
				}
				if err := st.ag.Remove(chain); err != nil {
					t.Errorf("remove %s: %v", chain, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, ps := range st.ag.PoolStats() {
		if ps.Refs != 0 {
			t.Fatalf("leaked refs after churn: %+v", ps)
		}
	}
	st.clk.Advance(time.Minute)
	st.ag.ReapPools()
	if got := len(st.ag.Runtime().List()); got != 0 {
		t.Fatalf("%d containers survive reap after full churn", got)
	}
}

func TestSharedReapSparesReattached(t *testing.T) {
	st := newStation(t)
	if _, err := st.ag.Deploy(sharedSpec("fw-phone", "phone")); err != nil {
		t.Fatal(err)
	}
	if err := st.ag.Remove("fw-phone"); err != nil {
		t.Fatal(err)
	}
	// Grace fully lapses, then the chain is re-deployed before any reap
	// pass: the warm instance must be revived, not rebuilt or killed.
	st.clk.Advance(time.Minute)
	res, err := st.ag.Deploy(sharedSpec("fw-phone", "phone"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shared || res.AttachMillis != 0 {
		t.Fatalf("reattach rebuilt the instance: %+v", res)
	}
	if n := st.ag.ReapPools(); n != 0 {
		t.Fatalf("reap killed %d just-reattached instance(s)", n)
	}
	if pools := st.ag.PoolStats(); len(pools) != 1 || pools[0].Refs != 1 {
		t.Fatalf("pools = %+v", pools)
	}
	if enabled, err := st.ag.ChainEnabled("fw-phone"); err != nil || !enabled {
		t.Fatalf("reattached chain enabled = %v, %v", enabled, err)
	}
}

func TestScalePoolSpreadsTrafficAndDrains(t *testing.T) {
	st := newStation(t)
	if _, err := st.ag.Deploy(sharedSpec("fw-phone", "phone")); err != nil {
		t.Fatal(err)
	}
	pools := st.ag.PoolStats()
	if len(pools) != 1 {
		t.Fatalf("pools = %+v", pools)
	}
	kinds, hash := pools[0].Kinds, pools[0].ConfigHash

	if err := st.ag.ScalePool(kinds, hash, 3); err != nil {
		t.Fatal(err)
	}
	if ps := st.ag.PoolStats(); ps[0].Replicas != 3 {
		t.Fatalf("replicas = %d after scale-out", ps[0].Replicas)
	}

	got := make(chan struct{}, 1024)
	st.server.HandleAnyUDP(func(src, dst packet.Endpoint, payload []byte) []byte {
		got <- struct{}{}
		return nil
	})
	const flows, per = 64, 4
	for f := 0; f < flows; f++ {
		for n := 0; n < per; n++ {
			st.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 80}, uint16(30000+f), []byte("x"))
		}
	}
	seen := 0
	waitCount(t, 5*time.Second, func() bool {
		for {
			select {
			case <-got:
				seen++
			default:
				return seen == flows*per
			}
		}
	})

	ps := st.ag.PoolStats()
	if ps[0].Processed < flows*per {
		t.Fatalf("processed = %d, want >= %d", ps[0].Processed, flows*per)
	}
	busy := 0
	for _, n := range ps[0].PerReplica {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("flow hashing used %d of 3 replicas: %v", busy, ps[0].PerReplica)
	}

	// Scale back in: drained replicas' containers go away, traffic still flows.
	if err := st.ag.ScalePool(kinds, hash, 1); err != nil {
		t.Fatal(err)
	}
	if ps := st.ag.PoolStats(); ps[0].Replicas != 1 {
		t.Fatalf("replicas = %d after scale-in", ps[0].Replicas)
	}
	if got := len(st.ag.Runtime().List()); got != 2 {
		t.Fatalf("%d containers after scale-in, want 2", got)
	}
	st.client.SendUDP(packet.Endpoint{Addr: serverIP, Port: 80}, 31000, []byte("x"))
	waitCount(t, 5*time.Second, func() bool {
		select {
		case <-got:
			return true
		default:
			return false
		}
	})

	// Guard rails.
	if err := st.ag.ScalePool(kinds, hash, 0); !errors.Is(err, agent.ErrBadReplicas) {
		t.Fatalf("replicas=0: %v", err)
	}
	if err := st.ag.ScalePool("ghost", "nohash", 2); !errors.Is(err, agent.ErrUnknownPool) {
		t.Fatalf("unknown pool: %v", err)
	}
}

func TestSharedMigrationOneSharerLeaves(t *testing.T) {
	// Two sharers on one agent; one "migrates away" (the manager's
	// disable/checkpoint/remove source-side sequence). The instance must
	// keep serving the remaining sharer throughout.
	st := newStation(t)
	c2 := attachExtraClient(t, st, "c2", 2)
	if _, err := st.ag.Deploy(sharedSpec("fw-phone", "phone")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ag.Deploy(sharedSpec("fw-c2", "c2")); err != nil {
		t.Fatal(err)
	}

	if err := st.ag.Disable("fw-phone"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ag.Checkpoint("fw-phone"); err != nil {
		t.Fatal(err)
	}
	if err := st.ag.Remove("fw-phone"); err != nil {
		t.Fatal(err)
	}

	// The stayer's refcount keeps the instance alive with 2 containers.
	pools := st.ag.PoolStats()
	if len(pools) != 1 || pools[0].Refs != 1 {
		t.Fatalf("pools after sharer left = %+v", pools)
	}
	if got := len(st.ag.Runtime().List()); got != 2 {
		t.Fatalf("containers = %d", got)
	}

	// And it still forwards the stayer's traffic.
	got := make(chan struct{}, 16)
	st.server.HandleAnyUDP(func(src, dst packet.Endpoint, payload []byte) []byte {
		got <- struct{}{}
		return nil
	})
	c2.SendUDP(packet.Endpoint{Addr: serverIP, Port: 80}, 4000, []byte("x"))
	waitCount(t, 5*time.Second, func() bool {
		select {
		case <-got:
			return true
		default:
			return false
		}
	})

	// Restore into a shared instance with other sharers must be a no-op
	// (their state wins), not an error.
	if _, err := st.ag.Deploy(sharedSpec("fw-back", "phone")); err != nil {
		t.Fatal(err)
	}
	if err := st.ag.Restore("fw-back", []byte("bogus")); err != nil {
		t.Fatalf("restore into shared instance with sharers: %v", err)
	}
}

func TestDeployResolvesImageThroughRegistry(t *testing.T) {
	// Satellite fix: registered NF versions select the image tag instead of
	// the hardcoded "gnf/<kind>:1.0".
	clk := clock.NewAutoVirtual()
	repo := container.NewRepository(clk, 0, 0)
	repo.Push(container.Image{Name: "gnf/blessed:2.7", SizeBytes: 1 << 20, MemoryBytes: 1 << 20})
	rt := container.NewRuntime("st-x", clk, repo)
	sw := netem.NewSwitch("st-x")
	up, _ := netem.NewVethPair("up", "core")
	sw.Attach(0, up)

	reg := nf.NewRegistry()
	reg.RegisterKind("blessed", nf.KindInfo{Version: "2.7"},
		func(name string, params nf.Params) (nf.Function, error) {
			return passthroughFn{name: name}, nil
		})
	ag := agent.New("st-x", clk, rt, sw, 0, agent.WithRegistry(reg))
	res, err := ag.Deploy(agent.DeploySpec{
		Chain:     "ch",
		Client:    "ghost",
		Functions: []agent.NFSpec{{Kind: "blessed", Name: "b0"}},
		Enabled:   true,
	})
	if err != nil {
		t.Fatalf("deploy with versioned image: %v", err)
	}
	ctr, ok := rt.Get(res.Containers[0])
	if !ok {
		t.Fatal("container not found")
	}
	if got := ctr.Image().Name; got != "gnf/blessed:2.7" {
		t.Fatalf("image = %q, want gnf/blessed:2.7", got)
	}
}

type passthroughFn struct{ name string }

func (p passthroughFn) Name() string { return p.name }
func (p passthroughFn) Kind() string { return "blessed" }
func (p passthroughFn) Process(dir nf.Direction, frame []byte) nf.Output {
	return nf.Forward(frame)
}
