package ui_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	dstate "gnf/internal/spec"
	"gnf/internal/topology"
	"gnf/internal/ui"
)

// uiFixture runs a live two-station system behind a UI server.
func uiFixture(t *testing.T) (*core.System, *httptest.Server) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		ReportInterval: 30 * time.Millisecond,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.AddClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ui.New(sys.Manager).Handler())
	t.Cleanup(srv.Close)
	return sys, srv
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestOverviewEndpoint(t *testing.T) {
	_, srv := uiFixture(t)
	var ov ui.Overview
	getJSON(t, srv.URL+"/api/overview", &ov)
	if ov.OnlineCount != 2 || len(ov.Stations) != 2 {
		t.Fatalf("overview = %+v", ov)
	}
	if ov.Stations[0].Station != "st-a" {
		t.Fatalf("stations = %+v", ov.Stations)
	}
}

func TestAttachDetachOverAPI(t *testing.T) {
	sys, srv := uiFixture(t)
	req := ui.AttachRequest{
		Client: "phone",
		Chain: manager.ChainSpec{
			Name:      "fw",
			Functions: []agent.NFSpec{{Kind: "firewall", Name: "f0", Params: nf.Params{"policy": "accept"}}},
		},
	}
	if resp := postJSON(t, srv.URL+"/api/chains/attach", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("attach = %d", resp.StatusCode)
	}
	if err := sys.WaitChainOn("st-a", "fw", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Re-attaching the identical spec is idempotent (reconciler retries);
	// a different spec under the same name still conflicts.
	if resp := postJSON(t, srv.URL+"/api/chains/attach", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent re-attach = %d", resp.StatusCode)
	}
	conflicting := req
	conflicting.Chain.Functions = []agent.NFSpec{{Kind: "firewall", Name: "f0", Params: nf.Params{"policy": "drop"}}}
	if resp := postJSON(t, srv.URL+"/api/chains/attach", conflicting); resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting attach = %d", resp.StatusCode)
	}
	// Migrate over the API.
	mig := ui.MigrateRequest{Client: "phone", Chain: "fw", To: "st-b"}
	if resp := postJSON(t, srv.URL+"/api/chains/migrate", mig); resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate = %d", resp.StatusCode)
	}
	var migs ui.MigrationsView
	getJSON(t, srv.URL+"/api/migrations", &migs)
	if len(migs.Reports) != 1 || migs.Reports[0].To != "st-b" {
		t.Fatalf("migrations = %+v", migs.Reports)
	}
	if got := migs.Summary.Counters["migration.count"]; got != 1 {
		t.Fatalf("migration.count = %d, want 1", got)
	}
	if h, ok := migs.Summary.Histograms["migration.downtime_ms"]; !ok || h.Count != 1 {
		t.Fatalf("downtime histogram = %+v (ok=%v)", h, ok)
	}
	// Detach.
	det := ui.DetachRequest{Client: "phone", Chain: "fw"}
	if resp := postJSON(t, srv.URL+"/api/chains/detach", det); resp.StatusCode != http.StatusOK {
		t.Fatalf("detach = %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/api/chains/detach", det); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double detach = %d", resp.StatusCode)
	}
}

// TestSegmentsEndpoint attaches a split chain and checks the per-segment
// placement view: one row per segment with its affinity class, NF kinds,
// live station, and planner target.
func TestSegmentsEndpoint(t *testing.T) {
	sys, srv := uiFixture(t)
	req := ui.AttachRequest{
		Client: "phone",
		Chain: manager.ChainSpec{
			Name: "split",
			Functions: []agent.NFSpec{
				{Kind: "firewall", Name: "f0", Params: nf.Params{"policy": "accept"}, Affinity: "near-client"},
				{Kind: "counter", Name: "c0", Affinity: "aggregate"},
			},
		},
	}
	if resp := postJSON(t, srv.URL+"/api/chains/attach", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("attach = %d", resp.StatusCode)
	}
	if err := sys.WaitChainOn("st-a", "split", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", agent.SegmentDeployName("split", 1), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var segs []ui.SegmentView
	getJSON(t, srv.URL+"/api/segments", &segs)
	if len(segs) != 2 {
		t.Fatalf("segments = %+v, want 2 rows", segs)
	}
	head, anchor := segs[0], segs[1]
	if head.Segment != 0 || head.Affinity != "near-client" || head.Station != "st-a" {
		t.Fatalf("head row = %+v", head)
	}
	if anchor.Segment != 1 || anchor.Affinity != "aggregate" || anchor.Station != "st-a" {
		t.Fatalf("anchor row = %+v", anchor)
	}
	if head.Planned != "st-a" || anchor.Planned != "st-a" {
		t.Fatalf("planner targets = %q/%q, want st-a/st-a", head.Planned, anchor.Planned)
	}
	if len(head.Functions) != 1 || head.Functions[0] != "firewall" ||
		len(anchor.Functions) != 1 || anchor.Functions[0] != "counter" {
		t.Fatalf("segment functions = %v / %v", head.Functions, anchor.Functions)
	}
}

// TestBadRequestBodies drives every POST route with malformed and empty
// bodies: each must answer a structured {"error": ...} 400, never a
// plain-text error or a silent success.
func TestBadRequestBodies(t *testing.T) {
	_, srv := uiFixture(t)
	routes := []string{
		"/api/chains/attach",
		"/api/chains/detach",
		"/api/chains/migrate",
		"/api/clients/offload",
		"/api/clients/recall",
		"/api/reconcile",
	}
	bodies := map[string]string{
		"malformed": "{not json",
		"empty":     "",
	}
	for _, path := range routes {
		for kind, body := range bodies {
			t.Run(path+"/"+kind, func(t *testing.T) {
				resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("%s with %s body = %d, want 400", path, kind, resp.StatusCode)
				}
				if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
					t.Fatalf("%s error content-type = %q", path, ct)
				}
				var e struct {
					Error string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
					t.Fatalf("%s error body not JSON: %v", path, err)
				}
				if e.Error == "" {
					t.Fatalf("%s error body has empty message", path)
				}
			})
		}
	}
	// PUT /api/spec shares the same contract.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/api/spec", strings.NewReader("{not json"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT /api/spec malformed = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("PUT /api/spec error body = %+v, %v", e, err)
	}
}

// TestSpecAPIFlow walks the declarative surface end to end: PUT a spec,
// see the gap in /api/diff, reconcile to convergence, and verify a repeat
// pass is a no-op (idempotence) with the installed spec readable back.
func TestSpecAPIFlow(t *testing.T) {
	sys, srv := uiFixture(t)

	// Before any spec: 404s everywhere.
	for _, path := range []string{"/api/spec", "/api/diff"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s before install = %d, want 404", path, resp.StatusCode)
		}
	}

	desired := dstate.Spec{Clients: []dstate.Client{{
		ID: "phone",
		Chains: []dstate.Chain{{ChainSpec: manager.ChainSpec{
			Name:      "fw",
			Functions: []agent.NFSpec{{Kind: "firewall", Name: "f0", Params: nf.Params{"policy": "accept"}}},
		}}},
	}}}
	body, _ := json.Marshal(desired)
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/api/spec", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /api/spec = %d", resp.StatusCode)
	}

	var diff ui.DiffView
	getJSON(t, srv.URL+"/api/diff", &diff)
	if diff.Converged || len(diff.Actions) != 1 || diff.Actions[0].Kind != dstate.ActionAttach {
		t.Fatalf("diff before reconcile = %+v", diff)
	}

	var res struct {
		Converged bool `json:"converged"`
		Executed  []struct {
			Err string `json:"err"`
		} `json:"executed"`
	}
	if r := postJSON(t, srv.URL+"/api/reconcile", map[string]any{}); r.StatusCode != http.StatusOK {
		t.Fatalf("reconcile = %d", r.StatusCode)
	} else if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Executed) != 1 || res.Executed[0].Err != "" {
		t.Fatalf("reconcile executed = %+v", res)
	}
	if err := sys.WaitChainOn("st-a", "fw", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Second pass: converged, zero actions. (Reset res: the omitempty
	// fields of a converged pass would otherwise keep the first decode's
	// values.)
	res.Executed = nil
	if r := postJSON(t, srv.URL+"/api/reconcile", map[string]any{}); r.StatusCode != http.StatusOK {
		t.Fatalf("second reconcile = %d", r.StatusCode)
	} else if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Executed) != 0 {
		t.Fatalf("second reconcile = %+v, want converged no-op", res)
	}
	getJSON(t, srv.URL+"/api/diff", &diff)
	if !diff.Converged || len(diff.Actions) != 0 {
		t.Fatalf("diff after convergence = %+v", diff)
	}

	var st struct {
		Installed bool        `json:"installed"`
		Converged bool        `json:"converged"`
		Spec      dstate.Spec `json:"spec"`
	}
	getJSON(t, srv.URL+"/api/spec", &st)
	if !st.Installed || !st.Converged || len(st.Spec.Clients) != 1 || st.Spec.Clients[0].ID != "phone" {
		t.Fatalf("GET /api/spec = %+v", st)
	}

	// Dry-run never executes: drop the chain from the desired state and ask
	// for the plan — the chain must survive.
	empty := dstate.Spec{Clients: []dstate.Client{{ID: "phone"}}}
	body, _ = json.Marshal(empty)
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/api/spec", bytes.NewReader(body))
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	var dry struct {
		DryRun  bool           `json:"dry_run"`
		Planned []dstate.Action `json:"planned"`
	}
	if r := postJSON(t, srv.URL+"/api/reconcile", map[string]any{"dry_run": true}); r.StatusCode != http.StatusOK {
		t.Fatalf("dry-run = %d", r.StatusCode)
	} else if err := json.NewDecoder(r.Body).Decode(&dry); err != nil {
		t.Fatal(err)
	}
	if !dry.DryRun || len(dry.Planned) != 1 || dry.Planned[0].Kind != dstate.ActionDetach {
		t.Fatalf("dry-run = %+v", dry)
	}
	if got := sys.Manager.Chains("phone"); len(got) != 1 {
		t.Fatalf("dry-run mutated state: chains = %+v", got)
	}
}

func TestDashboardRenders(t *testing.T) {
	_, srv := uiFixture(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	html := buf.String()
	if !strings.Contains(html, "Glasgow Network Functions") || !strings.Contains(html, "st-a") {
		t.Fatalf("dashboard missing content: %.200s", html)
	}
	// Unknown paths 404.
	resp2, _ := http.Get(srv.URL + "/nope")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d", resp2.StatusCode)
	}
}

func TestStartAndClose(t *testing.T) {
	sys, _ := uiFixture(t)
	s := ui.New(sys.Manager)
	if s.Addr() != "" {
		t.Fatal("addr before start")
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" {
		t.Fatal("no addr after start")
	}
	resp, err := http.Get("http://" + s.Addr() + "/api/overview")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReportsPropagateToOverview(t *testing.T) {
	sys, srv := uiFixture(t)
	if err := sys.AttachChain("phone", manager.ChainSpec{
		Name:      "c",
		Functions: []agent.NFSpec{{Kind: "counter", Name: "n"}},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		var ov ui.Overview
		getJSON(t, srv.URL+"/api/overview", &ov)
		if ov.NFCount >= 1 {
			found := false
			for _, st := range ov.Stations {
				for _, ch := range st.Chains {
					if ch.Chain == "c" && ch.Client == "phone" {
						found = true
					}
				}
			}
			if found {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatal("chain never appeared in overview")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestPoolsEndpoint(t *testing.T) {
	sys, srv := uiFixture(t)
	// Two clients, one shareable spec: the pools view must show a single
	// instance on st-a carrying two references.
	if err := sys.AddClient("tablet", packet.MAC{2, 0, 0, 0, 0, 2}, packet.IP{10, 0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("tablet", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("tablet", "st-a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	shared := func(name string) manager.ChainSpec {
		return manager.ChainSpec{Name: name, Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
		}}
	}
	if err := sys.Manager.AttachChain("phone", shared("fw-phone")); err != nil {
		t.Fatal(err)
	}
	if err := sys.Manager.AttachChain("tablet", shared("fw-tablet")); err != nil {
		t.Fatal(err)
	}

	var view ui.PoolsView
	getJSON(t, srv.URL+"/api/pools", &view)
	pools := view.Stations["st-a"]
	if len(pools) != 1 {
		t.Fatalf("pools on st-a = %+v", view.Stations)
	}
	if pools[0].Kinds != "firewall" || pools[0].Refs != 2 || pools[0].Replicas != 1 {
		t.Fatalf("pool = %+v", pools[0])
	}
	if pools[0].ConfigHash == "" {
		t.Fatal("pool missing config hash")
	}
	if len(view.ScaleEvents) != 0 {
		t.Fatalf("unexpected scale events: %+v", view.ScaleEvents)
	}
}
