package ui_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/ui"
)

// uiFixture runs a live two-station system behind a UI server.
func uiFixture(t *testing.T) (*core.System, *httptest.Server) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		ReportInterval: 30 * time.Millisecond,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.AddClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ui.New(sys.Manager).Handler())
	t.Cleanup(srv.Close)
	return sys, srv
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestOverviewEndpoint(t *testing.T) {
	_, srv := uiFixture(t)
	var ov ui.Overview
	getJSON(t, srv.URL+"/api/overview", &ov)
	if ov.OnlineCount != 2 || len(ov.Stations) != 2 {
		t.Fatalf("overview = %+v", ov)
	}
	if ov.Stations[0].Station != "st-a" {
		t.Fatalf("stations = %+v", ov.Stations)
	}
}

func TestAttachDetachOverAPI(t *testing.T) {
	sys, srv := uiFixture(t)
	req := ui.AttachRequest{
		Client: "phone",
		Chain: manager.ChainSpec{
			Name:      "fw",
			Functions: []agent.NFSpec{{Kind: "firewall", Name: "f0", Params: nf.Params{"policy": "accept"}}},
		},
	}
	if resp := postJSON(t, srv.URL+"/api/chains/attach", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("attach = %d", resp.StatusCode)
	}
	if err := sys.WaitChainOn("st-a", "fw", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Duplicate attach conflicts.
	if resp := postJSON(t, srv.URL+"/api/chains/attach", req); resp.StatusCode != http.StatusConflict {
		t.Fatalf("dup attach = %d", resp.StatusCode)
	}
	// Migrate over the API.
	mig := ui.MigrateRequest{Client: "phone", Chain: "fw", To: "st-b"}
	if resp := postJSON(t, srv.URL+"/api/chains/migrate", mig); resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate = %d", resp.StatusCode)
	}
	var migs ui.MigrationsView
	getJSON(t, srv.URL+"/api/migrations", &migs)
	if len(migs.Reports) != 1 || migs.Reports[0].To != "st-b" {
		t.Fatalf("migrations = %+v", migs.Reports)
	}
	if got := migs.Summary.Counters["migration.count"]; got != 1 {
		t.Fatalf("migration.count = %d, want 1", got)
	}
	if h, ok := migs.Summary.Histograms["migration.downtime_ms"]; !ok || h.Count != 1 {
		t.Fatalf("downtime histogram = %+v (ok=%v)", h, ok)
	}
	// Detach.
	det := ui.DetachRequest{Client: "phone", Chain: "fw"}
	if resp := postJSON(t, srv.URL+"/api/chains/detach", det); resp.StatusCode != http.StatusOK {
		t.Fatalf("detach = %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/api/chains/detach", det); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double detach = %d", resp.StatusCode)
	}
}

func TestBadRequestBodies(t *testing.T) {
	_, srv := uiFixture(t)
	for _, path := range []string{"/api/chains/attach", "/api/chains/detach", "/api/chains/migrate"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}
}

func TestDashboardRenders(t *testing.T) {
	_, srv := uiFixture(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	html := buf.String()
	if !strings.Contains(html, "Glasgow Network Functions") || !strings.Contains(html, "st-a") {
		t.Fatalf("dashboard missing content: %.200s", html)
	}
	// Unknown paths 404.
	resp2, _ := http.Get(srv.URL + "/nope")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d", resp2.StatusCode)
	}
}

func TestStartAndClose(t *testing.T) {
	sys, _ := uiFixture(t)
	s := ui.New(sys.Manager)
	if s.Addr() != "" {
		t.Fatal("addr before start")
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" {
		t.Fatal("no addr after start")
	}
	resp, err := http.Get("http://" + s.Addr() + "/api/overview")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReportsPropagateToOverview(t *testing.T) {
	sys, srv := uiFixture(t)
	if err := sys.AttachChain("phone", manager.ChainSpec{
		Name:      "c",
		Functions: []agent.NFSpec{{Kind: "counter", Name: "n"}},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		var ov ui.Overview
		getJSON(t, srv.URL+"/api/overview", &ov)
		if ov.NFCount >= 1 {
			found := false
			for _, st := range ov.Stations {
				for _, ch := range st.Chains {
					if ch.Chain == "c" && ch.Client == "phone" {
						found = true
					}
				}
			}
			if found {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatal("chain never appeared in overview")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestPoolsEndpoint(t *testing.T) {
	sys, srv := uiFixture(t)
	// Two clients, one shareable spec: the pools view must show a single
	// instance on st-a carrying two references.
	if err := sys.AddClient("tablet", packet.MAC{2, 0, 0, 0, 0, 2}, packet.IP{10, 0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("tablet", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("tablet", "st-a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	shared := func(name string) manager.ChainSpec {
		return manager.ChainSpec{Name: name, Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
		}}
	}
	if err := sys.Manager.AttachChain("phone", shared("fw-phone")); err != nil {
		t.Fatal(err)
	}
	if err := sys.Manager.AttachChain("tablet", shared("fw-tablet")); err != nil {
		t.Fatal(err)
	}

	var view ui.PoolsView
	getJSON(t, srv.URL+"/api/pools", &view)
	pools := view.Stations["st-a"]
	if len(pools) != 1 {
		t.Fatalf("pools on st-a = %+v", view.Stations)
	}
	if pools[0].Kinds != "firewall" || pools[0].Refs != 2 || pools[0].Replicas != 1 {
		t.Fatalf("pool = %+v", pools[0])
	}
	if pools[0].ConfigHash == "" {
		t.Fatal("pool missing config hash")
	}
	if len(view.ScaleEvents) != 0 {
		t.Fatalf("unexpected scale events: %+v", view.ScaleEvents)
	}
}
