// Package ui implements the GNF User Interface of §3: "the overall
// management interface for the system through a direct connection to the
// Manager's API. Using a simple interface, the entire network health,
// status, and notifications can be monitored, including the number of
// online stations, connected clients, enabled NFs, and current processing
// and network resource consumption."
//
// It is an HTTP server rendering a JSON API (consumed by gnfctl and the
// benches) plus a single self-refreshing HTML dashboard.
package ui

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"gnf/internal/agent"
	"gnf/internal/manager"
	"gnf/internal/metrics"
	"gnf/internal/reconcile"
	"gnf/internal/spec"
	"gnf/internal/trace"
)

// StationView is one station's row in the dashboard.
type StationView struct {
	Station   string      `json:"station"`
	Online    bool        `json:"online"`
	LastSeen  time.Time   `json:"last_seen"`
	CPU       float64     `json:"cpu_percent"`
	MemoryMB  float64     `json:"memory_mb"`
	NFs       int         `json:"nfs"`
	RxFrames  uint64      `json:"rx_frames"`
	Redirects uint64      `json:"redirects"`
	Chains    []ChainView `json:"chains,omitempty"`
}

// ChainView is one deployed chain.
type ChainView struct {
	Chain     string `json:"chain"`
	Client    string `json:"client"`
	Enabled   bool   `json:"enabled"`
	Processed uint64 `json:"processed"`
}

// Overview is the dashboard snapshot.
type Overview struct {
	Stations      []StationView             `json:"stations"`
	OnlineCount   int                       `json:"online_count"`
	NFCount       int                       `json:"nf_count"`
	Hotspots      []string                  `json:"hotspots"`
	Notifications []agent.Alert             `json:"notifications"`
	Migrations    []manager.MigrationReport `json:"migrations"`
}

// Server is the UI HTTP server.
type Server struct {
	mgr *manager.Manager
	rec *reconcile.Reconciler
	mux *http.ServeMux
	ln  net.Listener
	srv *http.Server
}

// New builds a UI server over the manager (not yet listening).
func New(mgr *manager.Manager) *Server {
	s := &Server{mgr: mgr, rec: reconcile.New(mgr), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/overview", s.handleOverview)
	s.mux.HandleFunc("GET /api/stations", s.handleStations)
	s.mux.HandleFunc("GET /api/notifications", s.handleNotifications)
	s.mux.HandleFunc("GET /api/migrations", s.handleMigrations)
	s.mux.HandleFunc("POST /api/chains/attach", s.handleAttach)
	s.mux.HandleFunc("POST /api/chains/detach", s.handleDetach)
	s.mux.HandleFunc("POST /api/chains/migrate", s.handleMigrate)
	s.mux.HandleFunc("POST /api/clients/offload", s.handleOffload)
	s.mux.HandleFunc("POST /api/clients/recall", s.handleRecall)
	s.mux.HandleFunc("GET /api/failovers", s.handleFailovers)
	s.mux.HandleFunc("GET /api/placement", s.handlePlacement)
	s.mux.HandleFunc("GET /api/pools", s.handlePools)
	s.mux.HandleFunc("GET /api/segments", s.handleSegments)
	s.mux.HandleFunc("GET /api/spec", s.handleGetSpec)
	s.mux.HandleFunc("PUT /api/spec", s.handlePutSpec)
	s.mux.HandleFunc("GET /api/diff", s.handleDiff)
	s.mux.HandleFunc("POST /api/reconcile", s.handleReconcile)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/traces", s.handleTraces)
	s.mux.HandleFunc("GET /api/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /api/events", s.handleEvents)
	s.mux.HandleFunc("GET /", s.handleDashboard)
	return s
}

// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by default —
// the daemon arms it behind a flag; profiling endpoints expose enough
// internals that they should be opt-in.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// Reconciler exposes the desired-state reconciler so the daemon can start
// its background loop (and tests can drive passes directly).
func (s *Server) Reconciler() *reconcile.Reconciler { return s.rec }

// Handler exposes the mux (tests use httptest against it).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("127.0.0.1:0" for ephemeral) and serves in the
// background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln)
	return nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server and the reconcile loop if one is running.
func (s *Server) Close() error {
	s.rec.Stop()
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

// overview assembles the dashboard snapshot from manager state.
func (s *Server) overview(withChains bool) Overview {
	var ov Overview
	for _, st := range s.mgr.Agents() {
		h, ok := s.mgr.AgentHandleFor(st)
		if !ok {
			continue
		}
		rep, seen := h.LastReport()
		view := StationView{
			Station:   st,
			Online:    true,
			LastSeen:  seen,
			CPU:       rep.Usage.CPUPercent,
			MemoryMB:  float64(rep.Usage.MemoryBytes) / (1 << 20),
			NFs:       rep.Usage.Containers,
			RxFrames:  rep.Switch.RxFrames,
			Redirects: rep.Switch.Redirects,
		}
		if withChains {
			for _, cs := range rep.Chains {
				view.Chains = append(view.Chains, ChainView{
					Chain: cs.Chain, Client: cs.Client, Enabled: cs.Enabled, Processed: cs.Processed,
				})
			}
		}
		ov.Stations = append(ov.Stations, view)
		ov.OnlineCount++
		ov.NFCount += view.NFs
	}
	sort.Slice(ov.Stations, func(i, j int) bool { return ov.Stations[i].Station < ov.Stations[j].Station })
	ov.Hotspots = s.mgr.Hotspots()
	ov.Notifications = s.mgr.Notifications()
	ov.Migrations = s.mgr.Migrations()
	return ov
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeErr renders every API error the same way: a structured JSON body
// so clients never have to guess between plain-text and JSON failures.
func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// decodeBody parses a JSON request body into v, rejecting empty bodies
// explicitly (Decode would report a bare io.EOF, which reads like a
// transport bug rather than a client mistake).
func decodeBody(r *http.Request, v any) error {
	err := json.NewDecoder(r.Body).Decode(v)
	if errors.Is(err, io.EOF) {
		return errors.New("empty request body: expected a JSON object")
	}
	return err
}

func (s *Server) handleOverview(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.overview(true))
}

func (s *Server) handleStations(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.overview(true).Stations)
}

func (s *Server) handleNotifications(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.mgr.Notifications())
}

// MigrationsView is the GET /api/migrations payload: the raw reports plus
// the manager's aggregate observability (downtime/total/state-size
// histograms and migration counters).
type MigrationsView struct {
	Reports []manager.MigrationReport `json:"reports"`
	Summary metrics.Snapshot          `json:"summary"`
}

func (s *Server) handleMigrations(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, MigrationsView{
		Reports: s.mgr.Migrations(),
		Summary: s.mgr.MetricsSnapshot(),
	})
}

// SegmentView is one row of GET /api/segments: one segment of an
// attached chain — its affinity class, the NFs it carries, where it
// actually runs, and where the placement planner wants it. Unsplit
// chains appear as a single segment-0 row, so the view doubles as a
// complete placement table.
type SegmentView struct {
	Client   string `json:"client"`
	Chain    string `json:"chain"`
	Segment  int    `json:"segment"`
	Affinity string `json:"affinity,omitempty"`
	// Functions lists the NF kinds this segment hosts, in chain order.
	Functions []string `json:"functions"`
	// Station is where the segment's deployment currently sits ("" while
	// in flight); Planned is the planner's target for split chains.
	Station string `json:"station,omitempty"`
	Planned string `json:"planned,omitempty"`
}

func (s *Server) handleSegments(w http.ResponseWriter, r *http.Request) {
	placed := map[string]map[string]string{}
	for _, p := range s.mgr.Placements() {
		if placed[p.Client] == nil {
			placed[p.Client] = map[string]string{}
		}
		placed[p.Client][p.Chain] = p.Station
	}
	out := []SegmentView{}
	for _, client := range s.mgr.Clients() {
		for _, cs := range s.mgr.Chains(client) {
			segs := manager.SegmentsOf(cs)
			var plan []string
			if len(segs) > 1 {
				plan, _ = s.mgr.SegmentPlan(client, cs)
			}
			for i, sg := range segs {
				kinds := make([]string, len(sg.Functions))
				for j, fn := range sg.Functions {
					kinds[j] = fn.Kind
				}
				v := SegmentView{
					Client: client, Chain: cs.Name, Segment: i,
					Affinity:  sg.Affinity,
					Functions: kinds,
					Station:   placed[client][agent.SegmentDeployName(cs.Name, i)],
				}
				if i < len(plan) {
					v.Planned = plan[i]
				}
				out = append(out, v)
			}
		}
	}
	writeJSON(w, out)
}

// AttachRequest is the POST body for /api/chains/attach.
type AttachRequest struct {
	Client string            `json:"client"`
	Chain  manager.ChainSpec `json:"chain"`
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	var req AttachRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mgr.AttachChain(req.Client, req.Chain); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, map[string]string{"status": "attached"})
}

// DetachRequest is the POST body for /api/chains/detach.
type DetachRequest struct {
	Client string `json:"client"`
	Chain  string `json:"chain"`
}

func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request) {
	var req DetachRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.mgr.DetachChain(req.Client, req.Chain); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, map[string]string{"status": "detached"})
}

// MigrateRequest is the POST body for /api/chains/migrate.
type MigrateRequest struct {
	Client string `json:"client"`
	Chain  string `json:"chain"`
	To     string `json:"to"`
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.mgr.MigrateChain(req.Client, req.Chain, req.To)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, rep)
}

// OffloadRequest is the POST body for /api/clients/offload.
type OffloadRequest struct {
	Client string `json:"client"`
	Site   string `json:"site"`
}

func (s *Server) handleOffload(w http.ResponseWriter, r *http.Request) {
	var req OffloadRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.mgr.OffloadClient(req.Client, req.Site)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, rep)
}

// RecallRequest is the POST body for /api/clients/recall.
type RecallRequest struct {
	Client string `json:"client"`
}

func (s *Server) handleRecall(w http.ResponseWriter, r *http.Request) {
	var req RecallRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep, err := s.mgr.RecallClient(req.Client)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, rep)
}

func (s *Server) handleFailovers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Failed    []string                 `json:"failed_stations"`
		Recovered []manager.FailoverReport `json:"recovered"`
	}{s.mgr.FailedStations(), s.mgr.Failovers()})
}

func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Policy   string                `json:"policy"`
		Stations []manager.StationInfo `json:"stations"`
	}{s.mgr.Placement().Name(), s.mgr.StationInfos()})
}

// PoolsView is the GET /api/pools payload: each station's live
// shared-instance table plus the autoscaler's decision log.
type PoolsView struct {
	Stations    map[string][]agent.PoolStatus `json:"stations"`
	ScaleEvents []manager.ScaleEvent          `json:"scale_events"`
}

func (s *Server) handlePools(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, PoolsView{
		Stations:    s.mgr.PoolTables(),
		ScaleEvents: s.mgr.ScaleEvents(),
	})
}

// handleGetSpec returns the installed desired spec and its convergence
// status; 404 before any spec was installed.
func (s *Server) handleGetSpec(w http.ResponseWriter, r *http.Request) {
	st := s.rec.Status()
	if !st.Installed {
		writeErr(w, http.StatusNotFound, reconcile.ErrNoSpec)
		return
	}
	writeJSON(w, st)
}

// handlePutSpec validates and installs a desired spec document.
func (s *Server) handlePutSpec(w http.ResponseWriter, r *http.Request) {
	var sp spec.Spec
	if err := decodeBody(r, &sp); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.rec.SetSpec(&sp)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, st)
}

// DiffView is the GET /api/diff payload: the full pending action plan.
type DiffView struct {
	Hash       string        `json:"hash"`
	Generation uint64        `json:"generation"`
	Converged  bool          `json:"converged"`
	Actions    []spec.Action `json:"actions"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	plan, err := s.rec.Plan()
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	st := s.rec.Status()
	writeJSON(w, DiffView{
		Hash: st.Hash, Generation: st.Generation,
		Converged: len(plan) == 0,
		Actions:   append([]spec.Action{}, plan...),
	})
}

// ReconcileRequest is the POST body for /api/reconcile. An empty object
// runs a real pass; {"dry_run": true} only reports the plan.
type ReconcileRequest struct {
	DryRun bool `json:"dry_run,omitempty"`
}

func (s *Server) handleReconcile(w http.ResponseWriter, r *http.Request) {
	var req ReconcileRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.rec.ReconcileOnce(req.DryRun)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, res)
}

// handleMetrics renders the manager registry in the Prometheus text
// exposition format — the unified telemetry plane's scrape endpoint.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WriteProm(w, s.mgr.MetricsSnapshot())
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.mgr.Tracer().Traces())
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.mgr.Tracer().Trace(id)
	if len(spans) == 0 {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown trace %q", id))
		return
	}
	writeJSON(w, spans)
}

// EventsView is the GET /api/events payload. LastSeq lets pollers (gnfctl
// events -follow) resume with ?after=N without re-reading the ring.
type EventsView struct {
	LastSeq uint64        `json:"last_seq"`
	Events  []trace.Event `json:"events"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad after=%q: %v", v, err))
			return
		}
		after = n
	}
	j := s.mgr.Journal()
	writeJSON(w, EventsView{
		LastSeq: j.LastSeq(),
		Events:  j.Events(after, q["type"]...),
	})
}

var dashboardTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html><head><title>GNF Dashboard</title>
<meta http-equiv="refresh" content="2">
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
table{border-collapse:collapse;margin-bottom:1.5em}
td,th{border:1px solid #ccc;padding:4px 10px;text-align:left}
th{background:#223}
th{color:#fff}
.warn{color:#b00}
</style></head><body>
<h1>Glasgow Network Functions</h1>
<p>{{.OnlineCount}} stations online &middot; {{.NFCount}} NFs running
{{if .Hotspots}}<span class="warn">&middot; hotspots: {{range .Hotspots}}{{.}} {{end}}</span>{{end}}</p>
<h2>Stations</h2>
<table><tr><th>Station</th><th>CPU %</th><th>Memory MB</th><th>NFs</th><th>Frames</th><th>Redirects</th></tr>
{{range .Stations}}<tr><td>{{.Station}}</td><td>{{printf "%.1f" .CPU}}</td><td>{{printf "%.1f" .MemoryMB}}</td><td>{{.NFs}}</td><td>{{.RxFrames}}</td><td>{{.Redirects}}</td></tr>{{end}}
</table>
<h2>Chains</h2>
<table><tr><th>Station</th><th>Chain</th><th>Client</th><th>Enabled</th><th>Processed</th></tr>
{{range $st := .Stations}}{{range .Chains}}<tr><td>{{$st.Station}}</td><td>{{.Chain}}</td><td>{{.Client}}</td><td>{{.Enabled}}</td><td>{{.Processed}}</td></tr>{{end}}{{end}}
</table>
<h2>Migrations ({{len .Migrations}})</h2>
<table><tr><th>Client</th><th>Chain</th><th>From</th><th>To</th><th>Strategy</th><th>Downtime</th></tr>
{{range .Migrations}}<tr><td>{{.Client}}</td><td>{{.Chain}}</td><td>{{.From}}</td><td>{{.To}}</td><td>{{.Strategy}}</td><td>{{.Downtime}}</td></tr>{{end}}
</table>
<h2>Notifications ({{len .Notifications}})</h2>
<table><tr><th>Station</th><th>NF</th><th>Severity</th><th>Message</th></tr>
{{range .Notifications}}<tr><td>{{.Station}}</td><td>{{.Notification.NF}}</td><td>{{.Notification.Severity}}</td><td>{{.Notification.Message}}</td></tr>{{end}}
</table>
</body></html>`))

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashboardTmpl.Execute(w, s.overview(true)); err != nil {
		fmt.Fprintf(w, "<!-- render error: %v -->", err)
	}
}
