package ui_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/netem"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/ui"
)

// cloudFixture is uiFixture plus a cloud site.
func cloudFixture(t *testing.T) (*core.System, *httptest.Server) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		ReportInterval: 30 * time.Millisecond,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
		},
		Clouds: []core.CloudConfig{{ID: "nimbus", WAN: netem.LinkParams{Delay: time.Millisecond}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.AddClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ui.New(sys.Manager).Handler())
	t.Cleanup(srv.Close)
	return sys, srv
}

func TestOffloadAndRecallEndpoints(t *testing.T) {
	sys, srv := cloudFixture(t)
	if err := sys.AttachChain("phone", manager.ChainSpec{
		Name:      "fw",
		Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw0"}},
	}); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, srv.URL+"/api/clients/offload", ui.OffloadRequest{Client: "phone", Site: "nimbus"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offload = %d", resp.StatusCode)
	}
	var rep manager.OffloadReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Site != "nimbus" || len(rep.Chains) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if got := sys.Manager.Offloaded("phone"); got != "nimbus" {
		t.Fatalf("Offloaded = %q", got)
	}

	// Offloading an already offloaded client is a conflict.
	if resp := postJSON(t, srv.URL+"/api/clients/offload", ui.OffloadRequest{Client: "phone", Site: "nimbus"}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double offload = %d", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/api/clients/recall", ui.RecallRequest{Client: "phone"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recall = %d", resp.StatusCode)
	}
	if got := sys.Manager.Offloaded("phone"); got != "" {
		t.Fatalf("still offloaded: %q", got)
	}
}

func TestFailoversAndPlacementEndpoints(t *testing.T) {
	_, srv := cloudFixture(t)

	var fo struct {
		Failed    []string                 `json:"failed_stations"`
		Recovered []manager.FailoverReport `json:"recovered"`
	}
	getJSON(t, srv.URL+"/api/failovers", &fo)
	if len(fo.Failed) != 0 || len(fo.Recovered) != 0 {
		t.Fatalf("unexpected failovers: %+v", fo)
	}

	var pl struct {
		Policy   string                `json:"policy"`
		Stations []manager.StationInfo `json:"stations"`
	}
	getJSON(t, srv.URL+"/api/placement", &pl)
	if pl.Policy != "client-local" {
		t.Fatalf("policy = %q", pl.Policy)
	}
	if len(pl.Stations) != 2 {
		t.Fatalf("stations = %+v", pl.Stations)
	}
	// The cloud site is flagged.
	cloudSeen := false
	for _, st := range pl.Stations {
		if st.Station == "nimbus" && st.Cloud {
			cloudSeen = true
		}
	}
	if !cloudSeen {
		t.Fatal("cloud site not reported")
	}
}
