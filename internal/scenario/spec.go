// Package scenario is GNF's deterministic scenario engine: declarative
// JSON specs describe an edge deployment (stations and their cells, cloud
// sites, clients and their NF chains), a script of timed actions (moves,
// handoffs, station failures, offloads, schedules, random-waypoint
// mobility), and the invariants the run must uphold. The engine executes a
// spec against core.System on an auto-advancing virtual clock, so every
// modeled latency is a jump of simulated time, runs are reproducible from
// the spec's seed, and the conformance suite replays the whole corpus in
// milliseconds of wall time.
//
// The format exists so that new placements, chains, and mobility patterns
// are new data files, not new test code — see scenarios/ at the repo root
// for the corpus mirroring the examples/ programs.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"gnf/internal/manager"
	dstate "gnf/internal/spec"
)

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("150ms", "3s") so scenario files stay readable.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"3s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("scenario: bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Std returns the standard-library form.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Point is a position on the topology plane, in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y,omitempty"`
}

// Cell is one coverage area of a station.
type Cell struct {
	ID     string  `json:"id"`
	Center Point   `json:"center"`
	Radius float64 `json:"radius"`
}

// Station is one GNF edge station.
type Station struct {
	ID          string `json:"id"`
	MemoryBytes uint64 `json:"memory_bytes,omitempty"`
	Position    Point  `json:"position,omitempty"`
	Cells       []Cell `json:"cells"`
}

// Cloud is one GNFC cloud site reachable over an emulated WAN.
type Cloud struct {
	ID string `json:"id"`
	// DelayMs is the one-way WAN delay (default 20ms).
	DelayMs int `json:"delay_ms,omitempty"`
	// RateBps is the WAN rate in bits/s (default 1 Gbit/s).
	RateBps int64 `json:"rate_bps,omitempty"`
}

// Function is one NF of a chain, instantiated by kind from the registry.
type Function struct {
	Kind   string            `json:"kind"`
	Name   string            `json:"name,omitempty"`
	Params map[string]string `json:"params,omitempty"`
	// Affinity tags the function's placement preference ("near-client",
	// "aggregate", "cloud-ok"; empty inherits the previous function's
	// tag). A chain whose functions carry more than one effective tag is
	// split into per-station segments: the near-client head roams with
	// the client while anchored segments stay put, linked over tunnels.
	Affinity string `json:"affinity,omitempty"`
}

// Chain is a named NF chain.
type Chain struct {
	Name      string     `json:"name"`
	Functions []Function `json:"functions"`
	// MaxRTTMs is the chain's QoS budget: the largest predicted
	// client<->chain round-trip (milliseconds) tolerated. Requires a
	// topology block; QoS-aware placement rejects over-budget candidates,
	// roaming lets the chain lag behind its client while in budget, and
	// the engine fails the run if the budget is violated at scenario end.
	MaxRTTMs float64 `json:"max_rtt_ms,omitempty"`
}

// Client is one mobile client. MAC and IP addressing is assigned
// deterministically from the client's index; IP may be overridden.
type Client struct {
	ID string `json:"id"`
	IP string `json:"ip,omitempty"`
	// At places the client before the script runs (omitted = start
	// unassociated; required when Chains are declared, since the manager
	// only deploys chains for an attached client).
	At *Point `json:"at,omitempty"`
	// Chains are attached at deployment, right after the client's initial
	// placement. Attach chains to a late-joining client with the
	// attach-chain script action instead.
	Chains []Chain `json:"chains,omitempty"`
	// Count > 1 expands this entry into a fleet of Count clients named
	// "<id>-0000".."<id>-NNNN", each placed at At with copies of Chains
	// (each copy suffixed "-NNNN", since chain names are station-global) —
	// the mass-mobility population a storm step hands off in one window.
	// Addressing stays index-derived, so IP cannot be combined with Count.
	Count int `json:"count,omitempty"`
}

// Step is one scripted action. At is the virtual-time offset from scenario
// start at which the action runs; the engine advances the virtual clock to
// it (steps must be listed in non-decreasing At order).
type Step struct {
	At     Duration `json:"at,omitempty"`
	Action string   `json:"action"`

	Client  string `json:"client,omitempty"`
	Cell    string `json:"cell,omitempty"`
	To      *Point `json:"to,omitempty"`
	Station string `json:"station,omitempty"`
	Site    string `json:"site,omitempty"`

	Chain     *Chain `json:"chain,omitempty"`      // attach-chain
	ChainName string `json:"chain_name,omitempty"` // detach-chain, migrate, schedule

	// waypoint parameters.
	Rounds   int      `json:"rounds,omitempty"`
	Interval Duration `json:"interval,omitempty"`
	Speed    float64  `json:"speed,omitempty"`
	ArenaW   float64  `json:"arena_w,omitempty"`
	ArenaH   float64  `json:"arena_h,omitempty"`

	// schedule window, relative to the step's virtual time.
	EnableAfter  Duration `json:"enable_after,omitempty"`
	DisableAfter Duration `json:"disable_after,omitempty"`

	Strategy string `json:"strategy,omitempty"` // set-strategy

	// Spec is the desired-state document an apply-spec step installs; the
	// engine then drives reconcile passes until the fleet converges.
	Spec *dstate.Spec `json:"spec,omitempty"`

	// traffic parameters: the client sends Frames UDP frames spread over
	// Flows distinct flows (default 16) toward the backhaul — the load
	// signal the autoscaler reads off the shared instance serving the
	// client. The engine waits until the client's chains have processed
	// the batch, so the load is fully visible to the next step — unless
	// NoWait is set, which fires the frames and returns immediately so a
	// same-instant handoff can catch them in flight (the brownout-buffer
	// scenarios' trigger).
	Frames int  `json:"frames,omitempty"`
	Flows  int  `json:"flows,omitempty"`
	NoWait bool `json:"no_wait,omitempty"`

	// load parameters: the client drives the batched dataplane harness —
	// Flows concurrent sequence-stamped flows, Rounds frames per flow,
	// flow-controlled into a backhaul sink that accounts per-flow loss and
	// latency (see Expect.MinFlows / MaxLossRatio / MaxP99Ms). Reuses the
	// Flows field above; Rounds is shared with waypoint.
}

// Actions understood by the engine.
const (
	ActMove           = "move"            // move Client to To (re-associates by coverage)
	ActAttach         = "attach"          // force Client onto Cell
	ActDetach         = "detach"          // disassociate Client
	ActAttachChain    = "attach-chain"    // attach Chain to Client
	ActDetachChain    = "detach-chain"    // detach ChainName from Client
	ActMigrate        = "migrate"         // move ChainName of Client to Station
	ActWaypoint       = "waypoint"        // Rounds random-waypoint steps of Interval at Speed
	ActKillStation    = "kill-station"    // drop Station's management link
	ActRestartStation = "restart-station" // reconnect Station's agent
	ActCheckFailures  = "check-failures"  // run the manager's failure scan
	ActOffload        = "offload"         // move Client's chains to cloud Site
	ActRecall         = "recall"          // bring Client's chains back to the edge
	ActSchedule       = "schedule"        // window ChainName of Client
	ActEvalSchedules  = "eval-schedules"  // apply activation windows at current virtual time
	ActSetStrategy    = "set-strategy"    // switch migration Strategy
	ActSettle         = "settle"          // wait for in-flight work (implicit after every step)
	ActTraffic        = "traffic"         // Client sends Frames frames over Flows flows
	ActLoad           = "load"            // Client drives Flows megascale flows for Rounds rounds
	ActAutoscale      = "autoscale"       // run one manager autoscaler evaluation
	ActEvacuate       = "evacuate"        // move every chain off Station (maintenance)
	ActApplySpec      = "apply-spec"      // install Spec as desired state, reconcile to convergence
	ActReconcile      = "reconcile"       // run one desired-state reconcile pass
	ActStorm          = "storm"           // hand the whole fleet of Client off onto Cell at once
)

// TopoLink is one declared inter-station link of the topology block.
type TopoLink struct {
	A       string  `json:"a"`
	B       string  `json:"b"`
	DelayMs float64 `json:"delay_ms"`
	RateBps int64   `json:"rate_bps,omitempty"`
}

// Topology declares the station graph: how the stations interconnect and
// at what cost. Either a preset generates the links (over the stations in
// declaration order) or they are listed explicitly — or both, with
// explicit links overlaying the preset. Cloud sites always join as WAN
// spokes (one link to every station, shaped like their tunnels), so they
// never appear in the links list. The engine wires each edge-to-edge link
// as a shaped netem veth and hands the graph to the Manager for RTT-aware
// placement.
type Topology struct {
	// Preset: "ring", "tree" (complete binary, rooted at the first
	// station) or "fat-edge" (full mesh).
	Preset string `json:"preset,omitempty"`
	// HopDelayMs / HopRateBps shape every preset-generated link.
	HopDelayMs float64 `json:"hop_delay_ms,omitempty"`
	HopRateBps int64   `json:"hop_rate_bps,omitempty"`
	// Links declares (or overrides) individual station-to-station links.
	Links []TopoLink `json:"links,omitempty"`
}

// AutoscalerSpec configures the manager's shared-instance autoscaler for
// the run; autoscale script actions evaluate it.
type AutoscalerSpec struct {
	// ScaleOutLoad / ScaleInLoad bound per-replica processed-frame deltas
	// between evaluations (see manager.AutoscalerPolicy).
	ScaleOutLoad uint64 `json:"scale_out_load"`
	ScaleInLoad  uint64 `json:"scale_in_load"`
	MaxReplicas  int    `json:"max_replicas,omitempty"`
}

// Expect declares the outcome a run must satisfy.
type Expect struct {
	MinHandoffs   int `json:"min_handoffs,omitempty"`
	MinMigrations int `json:"min_migrations,omitempty"`
	MinFailovers  int `json:"min_failovers,omitempty"`
	// MinScaleOuts / MinScaleIns require the autoscaler to have grown and
	// shrunk shared replica groups at least this often.
	MinScaleOuts int `json:"min_scale_outs,omitempty"`
	MinScaleIns  int `json:"min_scale_ins,omitempty"`
	// MaxPoolReplicas caps, per station, the total replicas of referenced
	// shared instances at scenario end — the instances-not-clients
	// density property sharing exists for.
	MaxPoolReplicas map[string]int `json:"max_pool_replicas,omitempty"`
	// FinalStations pins clients to stations at scenario end.
	FinalStations map[string]string `json:"final_stations,omitempty"`
	// Placements pins deployments to stations at scenario end. Keys are
	// "client/chain"; a split chain's anchored segments are addressable
	// as "client/chain#1" and so on — how the splitchain scenario proves
	// its aggregation segment never moved while the head roamed.
	Placements map[string]string `json:"placements,omitempty"`
	// Offloaded pins clients to cloud sites at scenario end.
	Offloaded map[string]string `json:"offloaded,omitempty"`
	// ChainEnabled pins a chain's forwarding state at scenario end
	// (activation-schedule scenarios). Keys are chain names, optionally
	// client-qualified as "client/chain" — required when two clients
	// declare same-named chains, since bare names are only unique per
	// client.
	ChainEnabled map[string]bool `json:"chain_enabled,omitempty"`
	// MaxDowntimeMs caps every successful migration's measured dark window
	// (milliseconds); 0 means no cap. The live-migration scenarios use it
	// to pin downtime independent of state size.
	MaxDowntimeMs float64 `json:"max_downtime_ms,omitempty"`
	// ZeroLoss requires that no chain dropped a single frame during the
	// run: every frame that reached a chain was processed or replayed from
	// a brownout buffer, never lost to a migration freeze window.
	ZeroLoss bool `json:"zero_loss,omitempty"`
	// MinPrewarmed requires at least this many migrations to have landed
	// on a prewarmed standby (prewarm spec flag).
	MinPrewarmed int `json:"min_prewarmed,omitempty"`
	// MaxChainRTTMs caps every attached chain's predicted client<->chain
	// round-trip (milliseconds) at scenario end, computed over the
	// topology graph; 0 means no cap. Per-chain max_rtt_ms budgets are
	// checked on top of this, whether or not a cap is set.
	MaxChainRTTMs float64 `json:"max_rtt_ms,omitempty"`
	// MaxScheduleTransitions bounds the total chain enable/disable
	// transitions performed by eval-schedules steps — the no-flapping
	// property of activation windows; 0 means no bound.
	MaxScheduleTransitions int `json:"max_schedule_transitions,omitempty"`
	// AllowViolations lists audit violation kinds tolerated at scenario
	// end (e.g. disabled-chain when a schedule window is closed).
	AllowViolations []string `json:"allow_violations,omitempty"`
	// AllowFailedMigrations tolerates migration reports carrying errors
	// (default: any failed migration fails the scenario).
	AllowFailedMigrations bool `json:"allow_failed_migrations,omitempty"`
	// MinFlows requires the (last) load step's accountant to have seen at
	// least this many distinct flows deliver traffic; 0 means no check.
	MinFlows int `json:"min_flows,omitempty"`
	// MaxLossRatio caps the load step's lost/(lost+received) ratio. A
	// pointer so an explicit 0.0 — no loss tolerated — is expressible;
	// omitted means no check.
	MaxLossRatio *float64 `json:"max_loss_ratio,omitempty"`
	// MaxP99Ms caps the load step's 99th-percentile virtual-clock latency
	// (milliseconds); 0 means no check.
	MaxP99Ms float64 `json:"max_p99_ms,omitempty"`
	// ConvergedWithinMs caps the virtual time every apply-spec step took to
	// reach convergence, and requires the desired state to still be
	// converged (empty diff) at scenario end; 0 means no check.
	ConvergedWithinMs float64 `json:"converged_within_ms,omitempty"`
	// MaxReconcileActions bounds the total imperative actions all reconcile
	// passes issued — a converging reconciler does bounded work, a
	// thrashing one doesn't; 0 means no bound.
	MaxReconcileActions int `json:"max_reconcile_actions,omitempty"`
	// MinTraceSpans requires some stored trace to hold at least this many
	// spans in one connected tree (trace.ConnectedSize) — the end-to-end
	// tracing property: one handoff yields one span tree spanning manager
	// decision, migration rounds and agent-side steering flips, not a pile
	// of fragments; 0 means no check.
	MinTraceSpans int `json:"min_trace_spans,omitempty"`
	// ExpectEvents lists journal event types (trace.Event*) that must have
	// been recorded at least once by scenario end.
	ExpectEvents []string `json:"expect_events,omitempty"`
	// MaxVirtualMs caps the whole run's virtual elapsed time (milliseconds)
	// — the storm scenarios' convergence bound: all handoffs of the window
	// must complete within a fixed budget of simulated control-plane time;
	// 0 means no bound.
	MaxVirtualMs float64 `json:"max_virtual_ms,omitempty"`
}

// Spec is one complete scenario file.
type Spec struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Seed        int64   `json:"seed"`
	Strategy    string  `json:"strategy,omitempty"`   // cold | stateful (default) | live
	Hysteresis  float64 `json:"hysteresis,omitempty"` // metres (default 5)
	// Prewarm enables predictive standby staging (live strategy only): the
	// manager trains a Markov next-cell model on the run's handoffs and
	// pre-deploys disabled, state-synced chains at predicted stations.
	Prewarm bool `json:"prewarm,omitempty"`
	// Placement selects the manager's placement policy by registry name
	// (manager.PlacementFor); empty keeps the client-local default.
	Placement  string          `json:"placement,omitempty"`
	Topology   *Topology       `json:"topology,omitempty"`
	Autoscaler *AutoscalerSpec `json:"autoscaler,omitempty"`
	Stations   []Station       `json:"stations"`
	Clouds     []Cloud         `json:"clouds,omitempty"`
	Clients    []Client        `json:"clients"`
	Script     []Step          `json:"script,omitempty"`
	Expect     Expect          `json:"expect"`
}

// Validate checks structural consistency before a run: unique IDs, known
// references, monotonic script times.
func (sp *Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(sp.Stations) == 0 {
		return fmt.Errorf("scenario %s: no stations", sp.Name)
	}
	if !validStrategy(sp.Strategy, true) {
		return fmt.Errorf("scenario %s: unknown strategy %q (want cold, stateful or live)", sp.Name, sp.Strategy)
	}
	stations := map[string]bool{}
	cells := map[string]bool{}
	for _, st := range sp.Stations {
		if st.ID == "" {
			return fmt.Errorf("scenario %s: station with empty id", sp.Name)
		}
		if stations[st.ID] {
			return fmt.Errorf("scenario %s: duplicate station %s", sp.Name, st.ID)
		}
		stations[st.ID] = true
		for _, c := range st.Cells {
			if cells[c.ID] {
				return fmt.Errorf("scenario %s: duplicate cell %s", sp.Name, c.ID)
			}
			if c.Radius <= 0 {
				return fmt.Errorf("scenario %s: cell %s has no coverage radius", sp.Name, c.ID)
			}
			cells[c.ID] = true
		}
	}
	sites := map[string]bool{}
	for _, cl := range sp.Clouds {
		if stations[cl.ID] || sites[cl.ID] {
			return fmt.Errorf("scenario %s: duplicate site %s", sp.Name, cl.ID)
		}
		sites[cl.ID] = true
	}
	if sp.Placement != "" {
		if _, ok := manager.PlacementFor(sp.Placement); !ok {
			return fmt.Errorf("scenario %s: unknown placement %q (want one of %v)",
				sp.Name, sp.Placement, manager.PlacementNames())
		}
	}
	if tp := sp.Topology; tp != nil {
		switch tp.Preset {
		case "ring", "tree", "fat-edge":
			if tp.HopDelayMs <= 0 {
				return fmt.Errorf("scenario %s: topology preset %q needs hop_delay_ms > 0", sp.Name, tp.Preset)
			}
		case "":
			if len(tp.Links) == 0 {
				return fmt.Errorf("scenario %s: topology needs a preset or links", sp.Name)
			}
		default:
			return fmt.Errorf("scenario %s: unknown topology preset %q (want ring, tree or fat-edge)", sp.Name, tp.Preset)
		}
		for i, l := range tp.Links {
			if !stations[l.A] || !stations[l.B] {
				return fmt.Errorf("scenario %s: topology link %d references unknown station (%q, %q)", sp.Name, i, l.A, l.B)
			}
			if l.A == l.B {
				return fmt.Errorf("scenario %s: topology link %d links %s to itself", sp.Name, i, l.A)
			}
			if l.DelayMs < 0 {
				return fmt.Errorf("scenario %s: topology link %d has negative delay", sp.Name, i)
			}
		}
	}
	clients := map[string]bool{}
	for _, c := range sp.Clients {
		if c.ID == "" {
			return fmt.Errorf("scenario %s: client with empty id", sp.Name)
		}
		if clients[c.ID] {
			return fmt.Errorf("scenario %s: duplicate client %s", sp.Name, c.ID)
		}
		if c.Count < 0 {
			return fmt.Errorf("scenario %s: client %s has negative count", sp.Name, c.ID)
		}
		if c.Count > 1 {
			if c.IP != "" {
				return fmt.Errorf("scenario %s: client %s cannot combine count with a fixed ip", sp.Name, c.ID)
			}
			if c.Count > 60000 {
				return fmt.Errorf("scenario %s: client %s count %d exceeds the addressing space", sp.Name, c.ID, c.Count)
			}
		}
		if len(c.Chains) > 0 && c.At == nil {
			return fmt.Errorf("scenario %s: client %s declares chains but no initial position (\"at\"); use the attach-chain action for late joiners", sp.Name, c.ID)
		}
		for _, ch := range c.Chains {
			if err := validChainBudget(sp, ch); err != nil {
				return err
			}
		}
		clients[c.ID] = true
	}
	last := Duration(0)
	for i, st := range sp.Script {
		if st.At < last {
			return fmt.Errorf("scenario %s: script step %d goes back in time (%s < %s)",
				sp.Name, i, st.At.Std(), last.Std())
		}
		last = st.At
		switch st.Action {
		case ActMove, ActAttach, ActDetach, ActAttachChain, ActDetachChain,
			ActMigrate, ActWaypoint, ActKillStation, ActRestartStation,
			ActCheckFailures, ActOffload, ActRecall, ActSchedule,
			ActEvalSchedules, ActSetStrategy, ActSettle, ActTraffic,
			ActLoad, ActAutoscale, ActEvacuate, ActApplySpec, ActReconcile,
			ActStorm:
		default:
			return fmt.Errorf("scenario %s: script step %d has unknown action %q", sp.Name, i, st.Action)
		}
		if needsClient(st.Action) && !clients[st.Client] {
			return fmt.Errorf("scenario %s: step %d (%s) references unknown client %q",
				sp.Name, i, st.Action, st.Client)
		}
		switch st.Action {
		case ActKillStation, ActRestartStation, ActEvacuate:
			if !stations[st.Station] {
				return fmt.Errorf("scenario %s: step %d references unknown station %q", sp.Name, i, st.Station)
			}
		case ActAttachChain:
			if st.Chain != nil {
				if err := validChainBudget(sp, *st.Chain); err != nil {
					return err
				}
			}
		case ActMigrate:
			if !stations[st.Station] && !sites[st.Station] {
				return fmt.Errorf("scenario %s: step %d references unknown station %q", sp.Name, i, st.Station)
			}
		case ActOffload:
			if !sites[st.Site] {
				return fmt.Errorf("scenario %s: step %d references unknown cloud site %q", sp.Name, i, st.Site)
			}
		case ActAttach, ActStorm:
			if !cells[st.Cell] {
				return fmt.Errorf("scenario %s: step %d references unknown cell %q", sp.Name, i, st.Cell)
			}
		case ActWaypoint:
			if st.Rounds <= 0 || st.Speed <= 0 || st.Interval <= 0 {
				return fmt.Errorf("scenario %s: step %d waypoint needs rounds, speed and interval", sp.Name, i)
			}
			if st.ArenaW <= 0 {
				return fmt.Errorf("scenario %s: step %d waypoint needs arena_w > 0 (arena_h 0 means a 1D corridor)", sp.Name, i)
			}
		case ActSetStrategy:
			if !validStrategy(st.Strategy, false) {
				return fmt.Errorf("scenario %s: step %d set-strategy needs cold, stateful or live, got %q", sp.Name, i, st.Strategy)
			}
		case ActTraffic:
			if st.Frames <= 0 {
				return fmt.Errorf("scenario %s: step %d traffic needs frames > 0", sp.Name, i)
			}
			if st.Flows < 0 {
				return fmt.Errorf("scenario %s: step %d traffic flows must be >= 0", sp.Name, i)
			}
		case ActLoad:
			if st.Flows <= 0 || st.Rounds <= 0 {
				return fmt.Errorf("scenario %s: step %d load needs flows > 0 and rounds > 0", sp.Name, i)
			}
		case ActApplySpec:
			if st.Spec == nil {
				return fmt.Errorf("scenario %s: step %d apply-spec needs a spec block", sp.Name, i)
			}
			if err := st.Spec.Validate(); err != nil {
				return fmt.Errorf("scenario %s: step %d: %w", sp.Name, i, err)
			}
			for _, dc := range st.Spec.Clients {
				if !clients[dc.ID] {
					return fmt.Errorf("scenario %s: step %d desired spec references unknown client %q", sp.Name, i, dc.ID)
				}
				if dc.Offload != "" && !sites[dc.Offload] {
					return fmt.Errorf("scenario %s: step %d desired spec references unknown cloud site %q", sp.Name, i, dc.Offload)
				}
				for _, ch := range dc.Chains {
					if ch.MaxRTTMs > 0 && sp.Topology == nil {
						return fmt.Errorf("scenario %s: step %d desired chain %s declares max_rtt_ms but the scenario has no topology block", sp.Name, i, ch.Name)
					}
				}
			}
		}
	}
	if as := sp.Autoscaler; as != nil {
		if as.ScaleOutLoad == 0 {
			return fmt.Errorf("scenario %s: autoscaler needs scale_out_load > 0", sp.Name)
		}
		if as.ScaleInLoad >= as.ScaleOutLoad {
			return fmt.Errorf("scenario %s: autoscaler scale_in_load must be below scale_out_load", sp.Name)
		}
		if as.MaxReplicas < 0 {
			return fmt.Errorf("scenario %s: autoscaler max_replicas must be >= 0", sp.Name)
		}
	}
	return nil
}

// validChainBudget rejects malformed QoS budgets: negative, or declared
// without the topology that would give them meaning.
func validChainBudget(sp *Spec, ch Chain) error {
	if ch.MaxRTTMs < 0 {
		return fmt.Errorf("scenario %s: chain %s has negative max_rtt_ms", sp.Name, ch.Name)
	}
	if ch.MaxRTTMs > 0 && sp.Topology == nil {
		return fmt.Errorf("scenario %s: chain %s declares max_rtt_ms but the scenario has no topology block", sp.Name, ch.Name)
	}
	for _, fn := range ch.Functions {
		if !manager.ValidAffinity(fn.Affinity) {
			return fmt.Errorf("scenario %s: chain %s function %s has unknown affinity %q",
				sp.Name, ch.Name, fn.Kind, fn.Affinity)
		}
	}
	return nil
}

// validStrategy accepts the spec-facing migration strategies; a typo'd
// value would otherwise silently fall back to cold migration in the
// manager and test nothing.
func validStrategy(s string, allowEmpty bool) bool {
	switch s {
	case "cold", "stateful", "live":
		return true
	case "":
		return allowEmpty
	}
	return false
}

func needsClient(action string) bool {
	switch action {
	case ActMove, ActAttach, ActDetach, ActAttachChain, ActDetachChain,
		ActMigrate, ActOffload, ActRecall, ActSchedule, ActTraffic, ActLoad,
		ActStorm:
		return true
	}
	return false
}

// Load reads and validates one scenario file.
func Load(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sp Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &sp, nil
}

// LoadDir loads every *.json scenario under dir, sorted by filename.
func LoadDir(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no scenario files under %s", dir)
	}
	specs := make([]*Spec, 0, len(paths))
	for _, p := range paths {
		sp, err := Load(p)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}
