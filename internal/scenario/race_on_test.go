//go:build race

package scenario

// raceEnabled reports whether this test binary was built with the race
// detector; heavyweight corpus entries use it to skip replays whose
// interleavings are already covered by dedicated -race tests.
const raceEnabled = true
