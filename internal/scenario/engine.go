package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/mobility"
	"gnf/internal/netem"
	"gnf/internal/packet"
	"gnf/internal/reconcile"
	"gnf/internal/topology"
	"gnf/internal/trace"
	"gnf/internal/traffic"
)

// Migration is one canonical migration-log entry: the placement move
// stripped of measured durations, which is what two runs of the same seed
// must reproduce byte-for-byte.
type Migration struct {
	Client   string `json:"client"`
	Chain    string `json:"chain"`
	From     string `json:"from"`
	To       string `json:"to"`
	Strategy string `json:"strategy"`
}

// Result is everything a run produced.
type Result struct {
	Scenario string `json:"scenario"`
	// Handoffs counts cell-to-cell association changes (first attaches
	// and detaches excluded).
	Handoffs int `json:"handoffs"`
	// Migrations is the canonical migration log: settled after every
	// script step, sorted within each step's batch, so the sequence is a
	// deterministic function of the spec.
	Migrations []Migration `json:"migrations"`
	// FailedMigrations carries the error strings of migrations that did
	// not complete.
	FailedMigrations []string `json:"failed_migrations,omitempty"`
	Failovers        int      `json:"failovers"`
	// Violations is the final invariant audit (minus allowed kinds).
	Violations []core.Violation `json:"violations,omitempty"`
	// FinalStations maps every client to its station at scenario end
	// ("" = unassociated).
	FinalStations map[string]string `json:"final_stations"`
	// ScaleOuts / ScaleIns count successful replica-group grows and
	// shrinks the autoscaler ordered during the run.
	ScaleOuts int `json:"scale_outs,omitempty"`
	ScaleIns  int `json:"scale_ins,omitempty"`
	// Prewarmed counts migrations that landed on a prewarmed standby;
	// MaxDowntime is the largest dark window any successful migration
	// measured; DroppedFrames sums frame drops across every chain at
	// scenario end (0 under the zero-loss brownout-buffer contract);
	// ReplayedFrames counts brownout-buffered frames replayed on
	// activation.
	Prewarmed      int      `json:"prewarmed,omitempty"`
	MaxDowntime    Duration `json:"max_downtime,omitempty"`
	DroppedFrames  uint64   `json:"dropped_frames,omitempty"`
	ReplayedFrames uint64   `json:"replayed_frames,omitempty"`
	// PoolReplicas maps each station to the total replicas of its
	// referenced shared instances at scenario end.
	PoolReplicas map[string]int `json:"pool_replicas,omitempty"`
	// ScheduleTransitions counts chain enable/disable transitions made by
	// eval-schedules steps over the whole run.
	ScheduleTransitions int `json:"schedule_transitions,omitempty"`
	// ChainRTTs maps "client/chain" to the predicted client<->chain
	// round-trip at scenario end, over the topology graph (only when the
	// scenario declares one).
	ChainRTTs map[string]Duration `json:"chain_rtts,omitempty"`
	// ReconcileActions is the total imperative actions issued by apply-spec
	// and reconcile steps; ConvergedIn is the worst virtual time any
	// apply-spec step took to converge.
	ReconcileActions int      `json:"reconcile_actions,omitempty"`
	ConvergedIn      Duration `json:"converged_in,omitempty"`
	// Load summarises the (last) load step's megascale harness run; nil
	// when the script had none.
	Load *LoadSummary `json:"load,omitempty"`
	// TraceSpans is the largest connected span tree any stored trace held
	// at scenario end; JournalEvents counts journal entries by type.
	TraceSpans    int            `json:"trace_spans,omitempty"`
	JournalEvents map[string]int `json:"journal_events,omitempty"`
	// VirtualElapsed is simulated time consumed by the run (rendered as a
	// duration string, e.g. "12s", like every duration in scenario files).
	VirtualElapsed Duration `json:"virtual_elapsed"`
	// Failures lists unmet expectations; empty means the scenario passed.
	Failures []string `json:"failures,omitempty"`
}

// LoadSummary is the outcome of a load step: per-flow continuity
// accounting from the traffic harness, serialized for the result log.
type LoadSummary struct {
	Flows       int      `json:"flows"` // flows with at least one arrival
	Sent        uint64   `json:"sent"`
	Received    uint64   `json:"received"`
	Lost        uint64   `json:"lost"`
	LossWindows uint64   `json:"loss_windows"`
	Late        uint64   `json:"late,omitempty"`
	LossRatio   float64  `json:"loss_ratio"`
	P50         Duration `json:"p50"`
	P99         Duration `json:"p99"`
}

// Passed reports whether every declared expectation held.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// Engine executes one Spec against a dedicated core.System on an
// auto-advancing virtual clock. Engines are single-use: Run may be called
// once.
type Engine struct {
	spec  *Spec
	sys   *core.System
	clk   *clock.Virtual
	graph *topology.Graph // station graph (nil without a topology block)

	start      time.Time
	handoffs   int
	migSeen    int // migration reports already folded into the canonical log
	schedTrans int // transitions applied by eval-schedules steps
	result     *Result
	loadSink   *netem.Host // backhaul sink for load steps, created lazily

	rec              *reconcile.Reconciler // created by the first apply-spec step
	reconcileActions int
	convergeWorst    time.Duration // slowest apply-spec convergence

	// clients is the deployed client list after fleet expansion
	// (Client.Count); fleet maps each declared client ID to the concrete
	// IDs it expanded to — what a storm step fans out over.
	clients []Client
	fleet   map[string][]string
}

// New validates the spec and brings the deployment up.
func New(sp *Spec) (*Engine, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	cfg := core.Config{
		Strategy: manager.StrategyStateful,
		Stations: make([]core.StationConfig, 0, len(sp.Stations)),
		Clouds:   make([]core.CloudConfig, 0, len(sp.Clouds)),
	}
	if sp.Strategy != "" {
		cfg.Strategy = manager.Strategy(sp.Strategy)
	}
	for _, st := range sp.Stations {
		sc := core.StationConfig{
			ID:          topology.StationID(st.ID),
			MemoryBytes: st.MemoryBytes,
			Position:    topology.Point{X: st.Position.X, Y: st.Position.Y},
		}
		for _, c := range st.Cells {
			sc.Cells = append(sc.Cells, core.CellConfig{
				ID:     topology.CellID(c.ID),
				Center: topology.Point{X: c.Center.X, Y: c.Center.Y},
				Radius: c.Radius,
			})
		}
		cfg.Stations = append(cfg.Stations, sc)
	}
	for _, cl := range sp.Clouds {
		cfg.Clouds = append(cfg.Clouds, core.CloudConfig{
			ID:  topology.StationID(cl.ID),
			WAN: cloudWAN(cl),
		})
	}
	graph := buildGraph(sp)
	cfg.Topology = graph
	sys, clk, err := core.NewVirtualSystem(cfg)
	if err != nil {
		return nil, err
	}
	if sp.Placement != "" {
		// Validate() already vetted the name.
		if p, ok := manager.PlacementFor(sp.Placement); ok {
			sys.Manager.SetPlacement(p)
		}
	}
	if sp.Autoscaler != nil {
		sys.Manager.SetAutoscalerPolicy(manager.AutoscalerPolicy{
			ScaleOutLoad: sp.Autoscaler.ScaleOutLoad,
			ScaleInLoad:  sp.Autoscaler.ScaleInLoad,
			MaxReplicas:  sp.Autoscaler.MaxReplicas,
		})
	}
	if sp.Prewarm {
		sys.Manager.SetPrewarm(true)
	}
	e := &Engine{spec: sp, sys: sys, clk: clk, graph: graph, start: clk.Now()}
	if err := e.expandClients(); err != nil {
		sys.Close()
		return nil, err
	}
	sys.Topo.OnAssociation(func(ev topology.AssociationEvent) {
		if ev.From != "" && ev.To != "" {
			e.handoffs++
		}
	})
	return e, nil
}

// buildGraph turns the spec's topology block into a station graph; nil
// without one. Cloud sites always join as WAN spokes — one link to every
// station, shaped exactly like the tunnels AddCloudSite wires.
func buildGraph(sp *Spec) *topology.Graph {
	tp := sp.Topology
	if tp == nil {
		return nil
	}
	ids := make([]topology.StationID, 0, len(sp.Stations))
	for _, st := range sp.Stations {
		ids = append(ids, topology.StationID(st.ID))
	}
	hop := time.Duration(tp.HopDelayMs * float64(time.Millisecond))
	var g *topology.Graph
	switch tp.Preset {
	case "ring":
		g = topology.Ring(ids, hop, tp.HopRateBps)
	case "tree":
		g = topology.Tree(ids, hop, tp.HopRateBps)
	case "fat-edge":
		g = topology.FatEdge(ids, hop, tp.HopRateBps)
	default:
		g = topology.NewGraph()
		for _, id := range ids {
			g.AddNode(id)
		}
	}
	for _, l := range tp.Links {
		g.SetLink(topology.Link{
			A: topology.StationID(l.A), B: topology.StationID(l.B),
			Delay:   time.Duration(l.DelayMs * float64(time.Millisecond)),
			RateBps: l.RateBps,
		})
	}
	for _, cl := range sp.Clouds {
		wan := cloudWAN(cl)
		site := topology.StationID(cl.ID)
		g.AddNode(site)
		for _, st := range ids {
			g.SetLink(topology.Link{A: site, B: st, Delay: wan.Delay, RateBps: wan.RateBps})
		}
	}
	return g
}

// cloudWAN resolves one cloud site's WAN shape — the single source both
// the core tunnels and the graph's cloud spokes are built from, so the
// RTT expectations can never diverge from the wired link cost.
func cloudWAN(cl Cloud) netem.LinkParams {
	if cl.DelayMs > 0 || cl.RateBps > 0 {
		return netem.LinkParams{
			Delay:   time.Duration(cl.DelayMs) * time.Millisecond,
			RateBps: cl.RateBps,
		}
	}
	return core.DefaultWAN()
}

// hysteresis returns the association stickiness in metres.
func (e *Engine) hysteresis() float64 {
	if e.spec.Hysteresis > 0 {
		return e.spec.Hysteresis
	}
	return 5
}

// clientAddr derives deterministic addressing for client index i.
func clientAddr(c Client, i int) (packet.MAC, packet.IP, error) {
	mac := packet.MAC{2, 0, 0, 0, byte(i >> 8), byte(i)}
	ip := packet.IP{10, 0, byte(i >> 8), byte(i + 1)}
	if c.IP != "" {
		parsed, ok := packet.ParseIP(c.IP)
		if !ok {
			return mac, ip, fmt.Errorf("scenario: client %s: bad ip %q", c.ID, c.IP)
		}
		ip = parsed
	}
	return mac, ip, nil
}

// expandClients materialises the deployed client list: entries with
// Count > 1 become fleets of "<id>-NNNN" clones sharing position and
// chains. Expansion keeps the index-derived addressing collision-free and
// rejects a clone ID that shadows another declared client.
func (e *Engine) expandClients() error {
	e.fleet = make(map[string][]string, len(e.spec.Clients))
	declared := make(map[string]bool, len(e.spec.Clients))
	for _, c := range e.spec.Clients {
		declared[c.ID] = true
	}
	for _, c := range e.spec.Clients {
		if c.Count <= 1 {
			e.clients = append(e.clients, c)
			e.fleet[c.ID] = []string{c.ID}
			continue
		}
		for k := 0; k < c.Count; k++ {
			clone := c
			clone.Count = 0
			clone.ID = fmt.Sprintf("%s-%04d", c.ID, k)
			// Chain names are station-global on the agent side, so each
			// clone gets its own suffixed copies.
			clone.Chains = make([]Chain, len(c.Chains))
			for j, ch := range c.Chains {
				ch.Name = fmt.Sprintf("%s-%04d", ch.Name, k)
				clone.Chains[j] = ch
			}
			if declared[clone.ID] {
				return fmt.Errorf("scenario %s: fleet %s expands onto declared client %s",
					e.spec.Name, c.ID, clone.ID)
			}
			e.clients = append(e.clients, clone)
			e.fleet[c.ID] = append(e.fleet[c.ID], clone.ID)
		}
	}
	return nil
}

func toChainSpec(ch Chain) manager.ChainSpec {
	spec := manager.ChainSpec{Name: ch.Name, MaxRTTMs: ch.MaxRTTMs}
	for i, fn := range ch.Functions {
		name := fn.Name
		if name == "" {
			name = fmt.Sprintf("%s-%d", fn.Kind, i)
		}
		spec.Functions = append(spec.Functions, agent.NFSpec{
			Kind: fn.Kind, Name: name, Params: fn.Params, Affinity: fn.Affinity,
		})
	}
	return spec
}

// settle waits for every in-flight reconciliation and folds the migrations
// it produced into the canonical log. Client events are synchronous calls,
// so by the time any scripted action returns the manager has recorded the
// placement change and armed its reconcile work — WaitIdle observes all of
// it without wall-clock sleeps.
func (e *Engine) settle() {
	e.sys.Manager.WaitIdle()
	reports := e.sys.Manager.Migrations()
	// The manager trims its report history at historyCap; a scenario that
	// somehow exceeded it would shift earlier indexes out from under us, so
	// clamp rather than slice past the end.
	if e.migSeen > len(reports) {
		e.migSeen = len(reports)
	}
	fresh := reports[e.migSeen:]
	e.migSeen = len(reports)
	batch := make([]Migration, 0, len(fresh))
	for _, m := range fresh {
		if m.Err != "" {
			e.result.FailedMigrations = append(e.result.FailedMigrations,
				fmt.Sprintf("%s/%s %s->%s: %s", m.Client, m.Chain, m.From, m.To, m.Err))
			continue
		}
		batch = append(batch, Migration{
			Client: m.Client, Chain: m.Chain,
			From: m.From, To: m.To, Strategy: string(m.Strategy),
		})
	}
	// Concurrent reconciles within one batch finish in arbitrary order;
	// sorting the batch makes the log a function of the spec alone.
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		if a.Chain != b.Chain {
			return a.Chain < b.Chain
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	e.result.Migrations = append(e.result.Migrations, batch...)
}

// await polls cond until it holds or the wall-clock deadline passes; it
// exists only for transitions the control plane cannot confirm
// synchronously (an agent's TCP teardown reaching the manager).
func (e *Engine) await(what string, cond func() bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("scenario %s: timed out waiting for %s", e.spec.Name, what)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// Run executes the scenario and returns its result. The returned error
// covers execution problems (bad references, RPC failures); unmet
// expectations land in Result.Failures instead.
func (e *Engine) Run() (*Result, error) {
	if e.result != nil {
		return nil, fmt.Errorf("scenario %s: engine already ran", e.spec.Name)
	}
	e.result = &Result{Scenario: e.spec.Name, FinalStations: map[string]string{}}
	defer e.sys.Close()

	// Deployment: clients placed, chains attached once associated.
	for i, c := range e.clients {
		mac, ip, err := clientAddr(c, i)
		if err != nil {
			return nil, err
		}
		if err := e.sys.AddClient(topology.ClientID(c.ID), mac, ip); err != nil {
			return nil, err
		}
		if c.At != nil {
			if err := e.sys.Topo.MoveClient(topology.ClientID(c.ID),
				topology.Point{X: c.At.X, Y: c.At.Y}, e.hysteresis()); err != nil {
				return nil, err
			}
		}
		for _, ch := range c.Chains {
			if err := e.sys.AttachChain(topology.ClientID(c.ID), toChainSpec(ch)); err != nil {
				return nil, fmt.Errorf("scenario %s: attach %s to %s: %w", e.spec.Name, ch.Name, c.ID, err)
			}
		}
	}
	e.settle()

	for i, st := range e.spec.Script {
		if target := e.start.Add(st.At.Std()); target.After(e.clk.Now()) {
			e.clk.AdvanceTo(target)
		}
		if err := e.step(st); err != nil {
			return nil, fmt.Errorf("scenario %s: step %d (%s): %w", e.spec.Name, i, st.Action, err)
		}
		e.settle()
	}

	e.finish()
	return e.result, nil
}

// step dispatches one scripted action.
func (e *Engine) step(st Step) error {
	mgr := e.sys.Manager
	switch st.Action {
	case ActMove:
		if st.To == nil {
			return fmt.Errorf("move needs a destination")
		}
		return e.sys.Topo.MoveClient(topology.ClientID(st.Client),
			topology.Point{X: st.To.X, Y: st.To.Y}, e.hysteresis())
	case ActAttach:
		return e.sys.Topo.Attach(topology.ClientID(st.Client), topology.CellID(st.Cell))
	case ActDetach:
		return e.sys.Topo.Detach(topology.ClientID(st.Client))
	case ActAttachChain:
		if st.Chain == nil {
			return fmt.Errorf("attach-chain needs a chain")
		}
		return e.sys.AttachChain(topology.ClientID(st.Client), toChainSpec(*st.Chain))
	case ActDetachChain:
		return mgr.DetachChain(st.Client, st.ChainName)
	case ActMigrate:
		_, err := mgr.MigrateChain(st.Client, st.ChainName, st.Station)
		return err
	case ActWaypoint:
		wp := mobility.NewWaypoint(e.sys.Topo, st.ArenaW, st.ArenaH, st.Speed, e.spec.Seed)
		wp.SetHysteresis(e.hysteresis())
		for r := 0; r < st.Rounds; r++ {
			e.clk.Advance(st.Interval.Std())
			wp.Step(st.Interval.Std())
			// Settling every round keeps each round's migrations a
			// deterministic batch and matches real pacing, where a
			// mobility tick is aeons of control-plane time.
			e.settle()
		}
		return nil
	case ActKillStation:
		if err := e.sys.KillStation(topology.StationID(st.Station)); err != nil {
			return err
		}
		// The manager notices the death through TCP teardown; wait for
		// the registry drop so subsequent steps see the failure.
		return e.await("manager to drop "+st.Station, func() bool {
			_, ok := mgr.AgentHandleFor(st.Station)
			return !ok
		})
	case ActRestartStation:
		return e.sys.RestartStation(topology.StationID(st.Station))
	case ActCheckFailures:
		mgr.CheckFailures()
		return nil
	case ActOffload:
		return e.sys.OffloadClient(topology.ClientID(st.Client), topology.StationID(st.Site))
	case ActRecall:
		return e.sys.RecallClient(topology.ClientID(st.Client))
	case ActSchedule:
		now := e.clk.Now()
		w := manager.Window{EnableAt: now.Add(st.EnableAfter.Std())}
		if st.DisableAfter > 0 {
			w.DisableAt = now.Add(st.DisableAfter.Std())
		}
		return mgr.Schedule(st.Client, st.ChainName, w)
	case ActEvalSchedules:
		e.schedTrans += mgr.EvaluateSchedules()
		return nil
	case ActEvacuate:
		_, err := mgr.EvacuateStation(st.Station)
		return err
	case ActSetStrategy:
		mgr.SetStrategy(manager.Strategy(st.Strategy))
		return nil
	case ActTraffic:
		return e.generateTraffic(st)
	case ActLoad:
		return e.generateLoad(st)
	case ActAutoscale:
		mgr.EvaluateAutoscaler()
		return nil
	case ActApplySpec:
		return e.applySpec(st)
	case ActReconcile:
		res, err := e.reconciler().ReconcileOnce(false)
		if err != nil {
			return err
		}
		e.reconcileActions += len(res.Executed)
		return nil
	case ActStorm:
		// One window of mass mobility: every member of the fleet hands off
		// onto the cell. Dispatch is sequential (deterministic handoff
		// order); the migrations it arms drain concurrently through the
		// manager's worker pool, bounded by the per-station limits — the
		// following settle observes full convergence.
		ids := e.fleet[st.Client]
		if len(ids) == 0 {
			return fmt.Errorf("storm references unknown fleet %q", st.Client)
		}
		for _, id := range ids {
			if err := e.sys.Topo.Attach(topology.ClientID(id), topology.CellID(st.Cell)); err != nil {
				return err
			}
		}
		return nil
	case ActSettle:
		return nil // settle runs after every step anyway
	}
	return fmt.Errorf("unknown action %q", st.Action)
}

// reconciler lazily builds the desired-state reconciler over the run's
// manager; it shares the virtual clock, so backoff timing is simulated.
func (e *Engine) reconciler() *reconcile.Reconciler {
	if e.rec == nil {
		e.rec = reconcile.New(e.sys.Manager)
	}
	return e.rec
}

// applySpecPasses bounds the convergence loop of one apply-spec step.
// Each non-converged pass advances virtual time by applySpecTick, so the
// cap also bounds the simulated time charged against converged_within_ms.
const (
	applySpecPasses = 400
	applySpecTick   = 100 * time.Millisecond
)

// applySpec installs the step's desired-state document and drives
// reconcile passes until the fleet converges, advancing the virtual clock
// a tick per pass (multi-pass transitions — recall then re-offload — and
// failure backoff both need time to move). The elapsed virtual time is
// what converged_within_ms bounds.
func (e *Engine) applySpec(st Step) error {
	rec := e.reconciler()
	if _, err := rec.SetSpec(st.Spec); err != nil {
		return err
	}
	begin := e.clk.Now()
	for pass := 0; pass < applySpecPasses; pass++ {
		res, err := rec.ReconcileOnce(false)
		if err != nil {
			return err
		}
		e.reconcileActions += len(res.Executed)
		if res.Converged {
			if took := e.clk.Since(begin); took > e.convergeWorst {
				e.convergeWorst = took
			}
			return nil
		}
		e.sys.Manager.WaitIdle()
		e.clk.Advance(applySpecTick)
	}
	return fmt.Errorf("apply-spec: not converged after %d reconcile passes", applySpecPasses)
}

// trafficSink is the backhaul-side destination traffic steps send toward;
// nothing answers, the frames only exist to load the client's chains.
var trafficSink = packet.Endpoint{Addr: packet.IP{10, 200, 0, 9}, Port: 7}

// generateTraffic sends st.Frames UDP frames from the client, spread over
// st.Flows flows by source port so steering groups can hash them across
// replicas. Delivery is asynchronous (veth queues), so the step completes
// only once the client's chains have processed the whole batch — that
// makes the load visible, deterministically, to any following autoscale
// evaluation. Frames are paced in sub-queue-depth batches so the veth
// tail-drop can never eat part of the load.
func (e *Engine) generateTraffic(st Step) error {
	host := e.sys.ClientHost(topology.ClientID(st.Client))
	if host == nil {
		return fmt.Errorf("traffic: client %s has no dataplane presence", st.Client)
	}
	station, ok := e.sys.Manager.ClientStation(st.Client)
	if !ok {
		return fmt.Errorf("traffic: client %s not attached to any station", st.Client)
	}
	ag := e.sys.Agent(topology.StationID(station))
	if ag == nil {
		return fmt.Errorf("traffic: client %s attached to unknown station %s", st.Client, station)
	}
	flows := st.Flows
	if flows <= 0 {
		flows = 16
	}
	baseline, steered := clientProcessed(ag, st.Client)
	payload := []byte("gnf-load")
	const batch = 64
	for sent := 0; sent < st.Frames; {
		n := st.Frames - sent
		if n > batch {
			n = batch
		}
		for i := 0; i < n; i++ {
			if err := host.SendUDP(packet.Endpoint{Addr: trafficSink.Addr, Port: trafficSink.Port},
				uint16(30000+(sent+i)%flows), payload); err != nil {
				return fmt.Errorf("traffic: %w", err)
			}
		}
		sent += n
		// no_wait fires the batch and returns with the frames still in
		// flight: a same-instant handoff then exercises the brownout
		// buffer on frames the freeze window would otherwise drop.
		if steered && !st.NoWait {
			want := baseline + uint64(sent)
			if err := e.await(fmt.Sprintf("%s's chains to process %d frames", st.Client, sent), func() bool {
				got, _ := clientProcessed(ag, st.Client)
				return got >= want
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load-sink addressing: a fixed server host on the backhaul that load
// steps send toward; distinct from trafficSink, which nothing answers.
var (
	loadSinkMAC = packet.MAC{2, 0xef, 0, 0, 0, 1}
	loadSinkIP  = packet.IP{10, 200, 0, 10}
)

// generateLoad drives the megascale harness over the client's real
// dataplane path: client host -> station switch (and the client's chains)
// -> backhaul -> sink server. The generator stamps every frame with flow,
// sequence number and virtual send time; the sink's accountant folds
// arrivals into per-flow continuity state that finish() checks against
// the expectation block. The run is flow-controlled, so a lossless path
// must deliver every frame — any gap in the report is real loss.
func (e *Engine) generateLoad(st Step) error {
	host := e.sys.ClientHost(topology.ClientID(st.Client))
	if host == nil {
		return fmt.Errorf("load: client %s has no dataplane presence", st.Client)
	}
	var cmac packet.MAC
	var cip packet.IP
	found := false
	for i, c := range e.spec.Clients {
		if c.ID == st.Client {
			var err error
			if cmac, cip, err = clientAddr(c, i); err != nil {
				return err
			}
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("load: unknown client %s", st.Client)
	}
	if e.loadSink == nil {
		e.loadSink = e.sys.AddServer("load-sink", loadSinkMAC, loadSinkIP)
	}
	acct := traffic.NewAccountant(st.Flows, 0, e.clk)
	acct.AttachAny(e.loadSink)

	// Prime the path: one reverse frame teaches every switch on the way
	// which port the sink lives behind, so the load unicasts instead of
	// flooding. Wait for it to reach the client before opening the load.
	e.loadSink.Learn(cip, cmac)
	rx0 := host.Endpoint().Stats().RxFrames
	if err := e.loadSink.SendUDP(packet.Endpoint{Addr: cip, Port: 9}, 9, []byte("gnf-load-prime")); err != nil {
		return fmt.Errorf("load: prime: %w", err)
	}
	if err := e.await("load prime to reach "+st.Client, func() bool {
		return host.Endpoint().Stats().RxFrames > rx0
	}); err != nil {
		return err
	}

	gen := traffic.NewLoadGen(host.Endpoint(), cmac, loadSinkMAC, cip, loadSinkIP,
		traffic.LoadConfig{Flows: st.Flows, Rounds: st.Rounds}, e.clk)
	if err := gen.Run(acct.Received); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	rep := acct.Report()
	e.result.Load = &LoadSummary{
		Flows:       rep.Flows,
		Sent:        gen.Sent(),
		Received:    rep.Received,
		Lost:        rep.Lost,
		LossWindows: rep.LossWindows,
		Late:        rep.Late,
		LossRatio:   rep.LossRatio(),
		P50:         Duration(rep.P50),
		P99:         Duration(rep.P99),
	}
	return nil
}

// clientProcessed sums processed-frame counters over the client's enabled
// chains on ag, and reports whether any such chain exists (an unsteered
// client's frames cannot be awaited).
func clientProcessed(ag *agent.Agent, client string) (uint64, bool) {
	var sum uint64
	steered := false
	for _, cs := range ag.Report().Chains {
		if cs.Client != client || !cs.Enabled {
			continue
		}
		steered = true
		sum += cs.Processed
	}
	return sum, steered
}

// finish audits invariants and evaluates expectations.
func (e *Engine) finish() {
	res, exp := e.result, e.spec.Expect
	res.Handoffs = e.handoffs
	res.VirtualElapsed = Duration(e.clk.Since(e.start))
	for _, fo := range e.sys.Manager.Failovers() {
		if fo.Err == "" {
			res.Failovers++
		} else {
			res.Failures = append(res.Failures, "failed failover: "+fo.Err)
		}
	}
	for _, c := range e.clients {
		st, _ := e.sys.Manager.ClientStation(c.ID)
		res.FinalStations[c.ID] = st
	}
	for _, mig := range e.sys.Manager.Migrations() {
		if mig.Err != "" {
			continue
		}
		if mig.Prewarmed {
			res.Prewarmed++
		}
		if d := Duration(mig.Downtime); d > res.MaxDowntime {
			res.MaxDowntime = d
		}
		res.ReplayedFrames += mig.ReplayedFrames
	}
	// Loss accounting: drops of live chains plus the retired counters of
	// chains already torn down by migrations, over every site — edge
	// stations and cloud agents alike, so an offload scenario cannot hide
	// loss on its cloud site. Standby chains are excluded — they never
	// carried committed traffic.
	sites := make([]string, 0, len(e.spec.Stations)+len(e.spec.Clouds))
	for _, stn := range e.spec.Stations {
		sites = append(sites, stn.ID)
	}
	for _, cl := range e.spec.Clouds {
		sites = append(sites, cl.ID)
	}
	for _, site := range sites {
		ag := e.sys.Agent(topology.StationID(site))
		if ag == nil {
			continue
		}
		rep := ag.Report()
		res.DroppedFrames += rep.RetiredDrops
		for _, cs := range rep.Chains {
			if !cs.Standby {
				res.DroppedFrames += cs.Dropped
			}
		}
	}
	for _, ev := range e.sys.Manager.ScaleEvents() {
		if ev.Err != "" {
			res.Failures = append(res.Failures, "failed scale: "+ev.Err)
			continue
		}
		if ev.To > ev.From {
			res.ScaleOuts++
		} else {
			res.ScaleIns++
		}
	}
	for _, stn := range e.spec.Stations {
		total := 0
		if ag := e.sys.Agent(topology.StationID(stn.ID)); ag != nil {
			for _, ps := range ag.PoolStats() {
				if ps.Refs > 0 {
					total += ps.Replicas
				}
			}
		}
		if total > 0 {
			if res.PoolReplicas == nil {
				res.PoolReplicas = map[string]int{}
			}
			res.PoolReplicas[stn.ID] = total
		}
	}

	res.ScheduleTransitions = e.schedTrans
	if exp.MaxScheduleTransitions > 0 && res.ScheduleTransitions > exp.MaxScheduleTransitions {
		res.Failures = append(res.Failures,
			fmt.Sprintf("schedule transitions: got %d, want <= %d (flapping)",
				res.ScheduleTransitions, exp.MaxScheduleTransitions))
	}
	res.ReconcileActions = e.reconcileActions
	res.ConvergedIn = Duration(e.convergeWorst)
	if exp.MaxReconcileActions > 0 && res.ReconcileActions > exp.MaxReconcileActions {
		res.Failures = append(res.Failures,
			fmt.Sprintf("reconcile actions: got %d, want <= %d (thrashing)",
				res.ReconcileActions, exp.MaxReconcileActions))
	}
	if exp.ConvergedWithinMs > 0 {
		if e.rec == nil {
			res.Failures = append(res.Failures,
				"converged_within_ms declared but no apply-spec step ran")
		} else {
			if got := float64(e.convergeWorst.Microseconds()) / 1000; got > exp.ConvergedWithinMs {
				res.Failures = append(res.Failures,
					fmt.Sprintf("convergence: took %.3fms, want <= %.3fms", got, exp.ConvergedWithinMs))
			}
			// Convergence must also hold at scenario end: later script steps
			// (station kills, moves) may have re-opened a gap the reconciler
			// failed to close.
			if plan, err := e.rec.Plan(); err != nil {
				res.Failures = append(res.Failures, "final diff: "+err.Error())
			} else if len(plan) > 0 {
				for _, a := range plan {
					res.Failures = append(res.Failures, "desired state diverged at scenario end: "+a.String())
				}
			}
		}
	}
	e.checkChainRTTs()

	allowed := map[string]bool{}
	for _, k := range exp.AllowViolations {
		allowed[k] = true
	}
	for _, v := range e.sys.Audit() {
		if !allowed[v.Kind] {
			res.Violations = append(res.Violations, v)
		}
	}
	for _, v := range res.Violations {
		res.Failures = append(res.Failures, "invariant: "+v.String())
	}

	if res.Handoffs < exp.MinHandoffs {
		res.Failures = append(res.Failures,
			fmt.Sprintf("handoffs: got %d, want >= %d", res.Handoffs, exp.MinHandoffs))
	}
	if len(res.Migrations) < exp.MinMigrations {
		res.Failures = append(res.Failures,
			fmt.Sprintf("migrations: got %d, want >= %d", len(res.Migrations), exp.MinMigrations))
	}
	if res.Failovers < exp.MinFailovers {
		res.Failures = append(res.Failures,
			fmt.Sprintf("failovers: got %d, want >= %d", res.Failovers, exp.MinFailovers))
	}
	if res.ScaleOuts < exp.MinScaleOuts {
		res.Failures = append(res.Failures,
			fmt.Sprintf("scale-outs: got %d, want >= %d", res.ScaleOuts, exp.MinScaleOuts))
	}
	if res.ScaleIns < exp.MinScaleIns {
		res.Failures = append(res.Failures,
			fmt.Sprintf("scale-ins: got %d, want >= %d", res.ScaleIns, exp.MinScaleIns))
	}
	for _, station := range sortedKeys(exp.MaxPoolReplicas) {
		limit := exp.MaxPoolReplicas[station]
		if got := res.PoolReplicas[station]; got > limit {
			res.Failures = append(res.Failures,
				fmt.Sprintf("pool replicas on %s: got %d, want <= %d", station, got, limit))
		}
	}
	if !exp.AllowFailedMigrations {
		for _, f := range res.FailedMigrations {
			res.Failures = append(res.Failures, "failed migration: "+f)
		}
	}
	if exp.MaxVirtualMs > 0 {
		if got := float64(res.VirtualElapsed.Std().Microseconds()) / 1000; got > exp.MaxVirtualMs {
			res.Failures = append(res.Failures,
				fmt.Sprintf("virtual elapsed: got %.3fms, want <= %.3fms (storm did not converge in budget)",
					got, exp.MaxVirtualMs))
		}
	}
	if exp.MaxDowntimeMs > 0 {
		if got := float64(res.MaxDowntime.Std().Microseconds()) / 1000; got > exp.MaxDowntimeMs {
			res.Failures = append(res.Failures,
				fmt.Sprintf("max downtime: got %.3fms, want <= %.3fms", got, exp.MaxDowntimeMs))
		}
	}
	if exp.ZeroLoss && res.DroppedFrames > 0 {
		res.Failures = append(res.Failures,
			fmt.Sprintf("zero loss: %d frames dropped by chains", res.DroppedFrames))
	}
	if exp.MinFlows > 0 || exp.MaxLossRatio != nil || exp.MaxP99Ms > 0 {
		if res.Load == nil {
			res.Failures = append(res.Failures,
				"load expectations declared but no load step ran")
		} else {
			if exp.MinFlows > 0 && res.Load.Flows < exp.MinFlows {
				res.Failures = append(res.Failures,
					fmt.Sprintf("load flows: got %d, want >= %d", res.Load.Flows, exp.MinFlows))
			}
			if exp.MaxLossRatio != nil && res.Load.LossRatio > *exp.MaxLossRatio {
				res.Failures = append(res.Failures,
					fmt.Sprintf("load loss ratio: got %.6f (%d lost, %d windows), want <= %.6f",
						res.Load.LossRatio, res.Load.Lost, res.Load.LossWindows, *exp.MaxLossRatio))
			}
			if exp.MaxP99Ms > 0 {
				if got := float64(res.Load.P99.Std().Microseconds()) / 1000; got > exp.MaxP99Ms {
					res.Failures = append(res.Failures,
						fmt.Sprintf("load p99 latency: got %.3fms, want <= %.3fms", got, exp.MaxP99Ms))
				}
			}
		}
	}
	if res.Prewarmed < exp.MinPrewarmed {
		res.Failures = append(res.Failures,
			fmt.Sprintf("prewarmed migrations: got %d, want >= %d", res.Prewarmed, exp.MinPrewarmed))
	}
	for _, client := range sortedKeys(exp.FinalStations) {
		want := exp.FinalStations[client]
		if got := res.FinalStations[client]; got != want {
			res.Failures = append(res.Failures,
				fmt.Sprintf("final station of %s: got %q, want %q", client, got, want))
		}
	}
	for _, client := range sortedKeys(exp.Offloaded) {
		want := exp.Offloaded[client]
		if got := e.sys.Manager.Offloaded(client); got != want {
			res.Failures = append(res.Failures,
				fmt.Sprintf("offload site of %s: got %q, want %q", client, got, want))
		}
	}
	if len(exp.Placements) > 0 {
		at := map[string]string{}
		for _, pl := range e.sys.Manager.Placements() {
			at[pl.Client+"/"+pl.Chain] = pl.Station
		}
		for _, key := range sortedKeys(exp.Placements) {
			want := exp.Placements[key]
			if got := at[key]; got != want {
				res.Failures = append(res.Failures,
					fmt.Sprintf("placement of %s: got %q, want %q", key, got, want))
			}
		}
	}
	for _, key := range sortedKeys(exp.ChainEnabled) {
		want := exp.ChainEnabled[key]
		got, err := e.chainEnabled(key)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("chain_enabled %q: %v", key, err))
			continue
		}
		if got != want {
			res.Failures = append(res.Failures,
				fmt.Sprintf("chain %s enabled: got %v, want %v", key, got, want))
		}
	}
	e.checkObservability()
}

// checkObservability evaluates the tracing and journal expectations: the
// largest *connected* span tree any stored trace holds (fragments — spans
// whose ancestry never reaches a root — do not count), and the presence
// of required journal event types.
func (e *Engine) checkObservability() {
	res, exp := e.result, e.spec.Expect
	tracer := e.sys.Manager.Tracer()
	for _, ts := range tracer.Traces() {
		if n := trace.ConnectedSize(tracer.Trace(ts.TraceID)); n > res.TraceSpans {
			res.TraceSpans = n
		}
	}
	if exp.MinTraceSpans > 0 && res.TraceSpans < exp.MinTraceSpans {
		res.Failures = append(res.Failures,
			fmt.Sprintf("trace spans: largest connected tree has %d, want >= %d",
				res.TraceSpans, exp.MinTraceSpans))
	}
	events := e.sys.Manager.Journal().Events(0)
	if len(events) > 0 {
		res.JournalEvents = map[string]int{}
		for _, ev := range events {
			res.JournalEvents[ev.Type]++
		}
	}
	for _, typ := range exp.ExpectEvents {
		if res.JournalEvents[typ] == 0 {
			res.Failures = append(res.Failures,
				fmt.Sprintf("journal: no %q event recorded", typ))
		}
	}
}

// checkChainRTTs predicts every attached chain's client<->chain
// round-trip over the topology graph at scenario end and enforces the
// expectation block's global max_rtt_ms cap plus each chain's own budget.
// Without a topology block this is a no-op.
//
// For split chains the predicted RTT is the full multi-leg path: the
// access leg to the head segment plus every inter-segment hop, exactly
// as the manager's own budget check walks it. The old single-placement
// walk silently scored a split chain on its head leg alone — a chain
// could be "in budget" while its anchored tail sat a continent away —
// so a chain whose segment placements the walk cannot resolve is now a
// loud failure, never a skip.
func (e *Engine) checkChainRTTs() {
	if e.graph == nil {
		return
	}
	res, exp := e.result, e.spec.Expect
	// Group placements by (client, base chain): Placements reports each
	// split-chain segment as its own entry named "chain#i".
	segsOf := map[[2]string]map[int]string{}
	for _, pl := range e.sys.Manager.Placements() {
		base, seg := agent.ParseSegmentName(pl.Chain)
		key := [2]string{pl.Client, base}
		if segsOf[key] == nil {
			segsOf[key] = map[int]string{}
		}
		segsOf[key][seg] = pl.Station
	}
	for _, client := range e.sys.Manager.Clients() {
		at := res.FinalStations[client]
		for _, spec := range e.sys.Manager.Chains(client) {
			key := client + "/" + spec.Name
			placed := segsOf[[2]string{client, spec.Name}]
			if at == "" || placed[0] == "" {
				continue // out of coverage, or never deployed: no RTT to predict
			}
			nsegs := len(manager.SegmentsOf(spec))
			if nsegs < 1 {
				nsegs = 1
			}
			total, prev, bad := time.Duration(0), at, false
			for i := 0; i < nsegs; i++ {
				st, ok := placed[i]
				if !ok || st == "" {
					res.Failures = append(res.Failures,
						fmt.Sprintf("chain rtt %s: segment %d of %d is not placed anywhere", key, i, nsegs))
					bad = true
					break
				}
				if st != prev {
					leg, ok := e.graph.RTT(topology.StationID(prev), topology.StationID(st))
					if !ok {
						res.Failures = append(res.Failures,
							fmt.Sprintf("chain rtt %s: no path between %s and %s (leg to segment %d)", key, prev, st, i))
						bad = true
						break
					}
					total += leg
				}
				prev = st
			}
			if bad {
				continue
			}
			if res.ChainRTTs == nil {
				res.ChainRTTs = map[string]Duration{}
			}
			res.ChainRTTs[key] = Duration(total)
			ms := float64(total.Microseconds()) / 1000
			if exp.MaxChainRTTMs > 0 && ms > exp.MaxChainRTTMs {
				res.Failures = append(res.Failures,
					fmt.Sprintf("chain rtt %s: got %.3fms, want <= %.3fms", key, ms, exp.MaxChainRTTMs))
			}
			if spec.MaxRTTMs > 0 && ms > spec.MaxRTTMs {
				res.Failures = append(res.Failures,
					fmt.Sprintf("chain rtt %s: got %.3fms, exceeds its %.3fms budget", key, ms, spec.MaxRTTMs))
			}
		}
	}
}

// chainEnabled resolves a chain_enabled key ("chain" or "client/chain" —
// chain names are only unique per client) to the hosted chain's
// forwarding state. A bare name matching chains of several clients is an
// error: the expectation would silently test an arbitrary one.
func (e *Engine) chainEnabled(key string) (bool, error) {
	client, chain, qualified := strings.Cut(key, "/")
	if !qualified {
		chain, client = key, ""
	}
	var matches []manager.ChainPlacement
	for _, pl := range e.sys.Manager.Placements() {
		if pl.Chain == chain && (client == "" || pl.Client == client) {
			matches = append(matches, pl)
		}
	}
	if len(matches) == 0 {
		return false, fmt.Errorf("chain not attached to any client")
	}
	if len(matches) > 1 {
		return false, fmt.Errorf("ambiguous: %d clients have a chain named %q, qualify as \"client/%s\"", len(matches), chain, chain)
	}
	pl := matches[0]
	if pl.Station == "" {
		return false, fmt.Errorf("chain not deployed anywhere")
	}
	ag := e.sys.Agent(topology.StationID(pl.Station))
	if ag == nil {
		return false, fmt.Errorf("chain placed on unknown station %s", pl.Station)
	}
	return ag.ChainEnabled(chain)
}

// Run loads, validates and executes the scenario at path.
func Run(path string) (*Result, error) {
	sp, err := Load(path)
	if err != nil {
		return nil, err
	}
	return RunSpec(sp)
}

// Execute runs the scenario at path and writes the indented result JSON
// to w — the shared CLI entry point (gnfctl run-scenario, gnf-demo
// -scenario). It returns an error when the run cannot execute or when
// expectations went unmet, so callers can exit non-zero.
func Execute(path string, w io.Writer) error {
	res, err := Run(path)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, string(out))
	if !res.Passed() {
		return fmt.Errorf("scenario %s: %d expectation(s) failed", res.Scenario, len(res.Failures))
	}
	return nil
}

// RunSpec executes an in-memory spec.
func RunSpec(sp *Spec) (*Result, error) {
	e, err := New(sp)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
