package scenario

import (
	"path/filepath"
	"reflect"
	"testing"
)

// corpusDir is the scenario corpus at the repo root.
const corpusDir = "../../scenarios"

// TestScenarioConformance replays every scenario file in the corpus and
// asserts its declared expectations and invariants. Each scenario then
// runs a second time from the same spec: the two runs must agree on the
// handoff count and produce identical canonical migration logs — the
// engine's determinism contract. Everything executes in virtual time; the
// only wall-clock spent is control-plane RPC on loopback.
func TestScenarioConformance(t *testing.T) {
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	required := map[string]bool{
		"roaming": false, "failover": false, "chaining": false,
		"cloud-offload": false, "density": false, "sharing": false,
		"scheduling": false, "qos": false, "megascale": false,
		"drift": false, "storm": false, "splitchain": false,
	}
	for _, sp := range specs {
		if _, ok := required[sp.Name]; ok {
			required[sp.Name] = true
		}
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			// The megascale load drives hundreds of thousands of frames
			// through the dataplane, and the storm deploys a 2000-client
			// fleet; keep both out of -short runs.
			if (sp.Name == "megascale" || sp.Name == "storm") && testing.Short() {
				t.Skip(sp.Name + " skipped in -short mode")
			}
			// Under the race detector the 2000-client storm replay takes
			// ~8 minutes and exercises no interleaving the dedicated
			// manager/core -race storm tests don't already cover.
			if sp.Name == "storm" && raceEnabled {
				t.Skip("storm skipped under -race (covered by manager/core storm race tests)")
			}
			first, err := RunSpec(sp)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range first.Failures {
				t.Errorf("expectation: %s", f)
			}
			if t.Failed() {
				t.Logf("handoffs=%d migrations=%d failovers=%d final=%v",
					first.Handoffs, len(first.Migrations), first.Failovers, first.FinalStations)
				return
			}

			second, err := RunSpec(sp)
			if err != nil {
				t.Fatal(err)
			}
			if second.Handoffs != first.Handoffs {
				t.Errorf("nondeterministic handoffs: first=%d second=%d", first.Handoffs, second.Handoffs)
			}
			if !reflect.DeepEqual(second.Migrations, first.Migrations) {
				t.Errorf("nondeterministic migration log:\nfirst:  %+v\nsecond: %+v",
					first.Migrations, second.Migrations)
			}
			if !reflect.DeepEqual(second.FinalStations, first.FinalStations) {
				t.Errorf("nondeterministic final placement:\nfirst:  %v\nsecond: %v",
					first.FinalStations, second.FinalStations)
			}
		})
	}
	for name, seen := range required {
		if !seen {
			t.Errorf("required scenario %q missing from %s", name, corpusDir)
		}
	}
}

// TestScenarioFilesValidate ensures every corpus file parses strictly (no
// unknown fields) and passes structural validation with a non-empty
// expectation block or script.
func TestScenarioFilesValidate(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("scenario corpus too small: %d files", len(paths))
	}
	for _, p := range paths {
		if _, err := Load(p); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}
