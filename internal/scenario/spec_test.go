package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func base() *Spec {
	return &Spec{
		Name: "t",
		Stations: []Station{
			{ID: "st-a", Cells: []Cell{{ID: "cell-a", Center: Point{X: 0}, Radius: 50}}},
		},
		Clients: []Client{{ID: "c0", At: &Point{X: 0}}},
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "missing name"},
		{"no stations", func(s *Spec) { s.Stations = nil }, "no stations"},
		{"dup station", func(s *Spec) { s.Stations = append(s.Stations, s.Stations[0]) }, "duplicate station"},
		{"zero radius", func(s *Spec) { s.Stations[0].Cells[0].Radius = 0 }, "no coverage radius"},
		{"dup client", func(s *Spec) { s.Clients = append(s.Clients, s.Clients[0]) }, "duplicate client"},
		{"unknown action", func(s *Spec) { s.Script = []Step{{Action: "explode"}} }, "unknown action"},
		{"unknown client ref", func(s *Spec) { s.Script = []Step{{Action: ActMove, Client: "ghost", To: &Point{}}} }, "unknown client"},
		{"unknown cell ref", func(s *Spec) { s.Script = []Step{{Action: ActAttach, Client: "c0", Cell: "nowhere"}} }, "unknown cell"},
		{"unknown station ref", func(s *Spec) { s.Script = []Step{{Action: ActKillStation, Station: "ghost"}} }, "unknown station"},
		{"unknown site ref", func(s *Spec) { s.Script = []Step{{Action: ActOffload, Client: "c0", Site: "ghost"}} }, "unknown cloud site"},
		{"time reversal", func(s *Spec) {
			s.Script = []Step{
				{At: Duration(2 * time.Second), Action: ActSettle},
				{At: Duration(time.Second), Action: ActSettle},
			}
		}, "back in time"},
		{"waypoint params", func(s *Spec) { s.Script = []Step{{Action: ActWaypoint}} }, "waypoint needs"},
		{"waypoint arena", func(s *Spec) {
			s.Script = []Step{{Action: ActWaypoint, Rounds: 1, Speed: 1, Interval: Duration(time.Second)}}
		}, "arena_w"},
		{"typo'd strategy", func(s *Spec) { s.Strategy = "statefull" }, "unknown strategy"},
		{"set-strategy without value", func(s *Spec) { s.Script = []Step{{Action: ActSetStrategy}} }, "set-strategy needs"},
		{"chains without position", func(s *Spec) {
			s.Clients[0].At = nil
			s.Clients[0].Chains = []Chain{{Name: "ch", Functions: []Function{{Kind: "counter"}}}}
		}, "no initial position"},
		{"traffic without frames", func(s *Spec) {
			s.Script = []Step{{Action: ActTraffic, Client: "c0"}}
		}, "frames > 0"},
		{"traffic unknown client", func(s *Spec) {
			s.Script = []Step{{Action: ActTraffic, Client: "ghost", Frames: 10}}
		}, "unknown client"},
		{"autoscaler zero band", func(s *Spec) {
			s.Autoscaler = &AutoscalerSpec{}
		}, "scale_out_load"},
		{"autoscaler inverted band", func(s *Spec) {
			s.Autoscaler = &AutoscalerSpec{ScaleOutLoad: 10, ScaleInLoad: 20}
		}, "below scale_out_load"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := base()
			tc.mut(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatalf("validation passed, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec should validate: %v", err)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"name":"x","statoins":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected unknown-field error")
	}
}

func TestDurationRoundTrip(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"150ms"`)); err != nil {
		t.Fatal(err)
	}
	if d.Std() != 150*time.Millisecond {
		t.Fatalf("got %v", d.Std())
	}
	if err := d.UnmarshalJSON([]byte(`"fast"`)); err == nil {
		t.Fatal("expected parse error")
	}
	if err := d.UnmarshalJSON([]byte(`42`)); err == nil {
		t.Fatal("expected type error")
	}
	b, err := Duration(3 * time.Second).MarshalJSON()
	if err != nil || string(b) != `"3s"` {
		t.Fatalf("marshal: %s, %v", b, err)
	}
}

// TestEngineReportsUnmetExpectations checks that a run with impossible
// expectations fails loudly rather than erroring out.
func TestEngineReportsUnmetExpectations(t *testing.T) {
	sp := base()
	sp.Clients[0].Chains = []Chain{{Name: "ch", Functions: []Function{{Kind: "counter"}}}}
	sp.Expect = Expect{
		MinHandoffs:   99,
		FinalStations: map[string]string{"c0": "st-zz"},
	}
	res, err := RunSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("impossible expectations reported as passed")
	}
	joined := strings.Join(res.Failures, "\n")
	for _, want := range []string{"handoffs: got 0, want >= 99", `final station of c0: got "st-a", want "st-zz"`} {
		if !strings.Contains(joined, want) {
			t.Errorf("failures missing %q:\n%s", want, joined)
		}
	}
}

// TestEngineSingleUse ensures Run refuses a second invocation.
func TestEngineSingleUse(t *testing.T) {
	e, err := New(base())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}
