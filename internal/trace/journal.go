package trace

import (
	"sync"
	"time"

	"gnf/internal/clock"
)

// Event types the journal records. The journal unifies what used to be
// ad-hoc per-subsystem histories: attach/detach, migrations, autoscaler
// decisions, reconcile passes, failovers, client (dis)connections and NF
// notifications all land here with trace links.
const (
	EventAttach    = "attach"
	EventDetach    = "detach"
	EventMigrate   = "migrate"
	EventScale     = "scale"
	EventReconcile = "reconcile"
	EventFailover  = "failover"
	EventClient    = "client"
	EventNotify    = "notify"
	EventSchedule  = "schedule"
	EventOffload   = "offload"
	// EventStormCoalesced records a superseded handoff collapsed in the
	// manager's handoff queue before reaching a worker: the client handed
	// off again while its previous reconcile was still queued.
	EventStormCoalesced = "storm-coalesced"
)

// Event is one journal entry. Seq is assigned at append time under one
// lock, so sequence order is causal order as observed by the manager: if
// event A's append happened-before event B's append, Seq(A) < Seq(B).
type Event struct {
	Seq     uint64    `json:"seq"`
	At      time.Time `json:"at"`
	Type    string    `json:"type"`
	Subject string    `json:"subject,omitempty"` // client, chain or pool the event is about
	Station string    `json:"station,omitempty"`
	TraceID string    `json:"trace_id,omitempty"` // link into the span store
	Detail  string    `json:"detail,omitempty"`
	Err     string    `json:"error,omitempty"`
}

// Journal is a bounded ring of events. Appends never block and never
// fail; when the ring is full the oldest events are evicted (their Seq
// numbers remain burned, so consumers can detect the gap). All methods
// are nil-receiver-safe: a nil *Journal records nothing.
type Journal struct {
	clk  clock.Clock
	mu   sync.Mutex
	ring []Event
	head int // index of oldest
	n    int
	seq  uint64
}

// NewJournal builds a journal holding at most capacity events.
func NewJournal(clk clock.Clock, capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{clk: clk, ring: make([]Event, capacity)}
}

// Append stamps the event with the next sequence number and the journal
// clock (unless At is already set) and stores it, returning the stamped
// event.
func (j *Journal) Append(ev Event) Event {
	if j == nil {
		return ev
	}
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	if ev.At.IsZero() {
		ev.At = j.clk.Now()
	}
	idx := (j.head + j.n) % len(j.ring)
	if j.n == len(j.ring) {
		j.ring[j.head] = ev
		j.head = (j.head + 1) % len(j.ring)
	} else {
		j.ring[idx] = ev
		j.n++
	}
	j.mu.Unlock()
	return ev
}

// LastSeq returns the sequence number of the newest event (0 = empty).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Events returns stored events with Seq > after, oldest first, optionally
// filtered to the given types (none = all). The result is a copy.
func (j *Journal) Events(after uint64, types ...string) []Event {
	if j == nil {
		return nil
	}
	want := func(string) bool { return true }
	if len(types) > 0 {
		set := make(map[string]bool, len(types))
		for _, t := range types {
			set[t] = true
		}
		want = func(t string) bool { return set[t] }
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for i := 0; i < j.n; i++ {
		ev := j.ring[(j.head+i)%len(j.ring)]
		if ev.Seq > after && want(ev.Type) {
			out = append(out, ev)
		}
	}
	return out
}
