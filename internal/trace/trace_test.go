package trace

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gnf/internal/clock"
)

func TestHeaderRoundTrip(t *testing.T) {
	clk := clock.NewVirtual()
	tr := New(clk, WithOrigin("manager"), WithStore(8))
	root := tr.StartSpan(Context{}, "root")
	h := root.Context().Header()
	if h == "" {
		t.Fatal("sampled root produced empty header")
	}
	ctx, ok := ParseHeader(h)
	if !ok {
		t.Fatalf("ParseHeader(%q) rejected its own encoding", h)
	}
	if ctx.TraceID != root.Context().TraceID || ctx.SpanID != root.Context().SpanID {
		t.Fatalf("round-trip mismatch: %+v vs %+v", ctx, root.Context())
	}
	if !ctx.Sampled {
		t.Fatal("parsed context lost the sampled flag")
	}
}

func TestParseHeaderDegradesOnGarbage(t *testing.T) {
	for _, h := range []string{
		"", "garbage", "a-b-c", "xyz-123-1", "--1",
		"0123456789abcdef-00ab12cd-0",       // unsampled flag form not emitted
		"0123456789ABCDEF-000000000001-1",   // upper-case hex is foreign
		"0123456-0000000000000001-1",        // trace ID too short
		"0123456789abcdef0123456789abcdef0", // no separators
	} {
		if ctx, ok := ParseHeader(h); ok || ctx.Valid() {
			t.Errorf("ParseHeader(%q) = %+v, %v; want rejection", h, ctx, ok)
		}
	}
}

func TestStartSpanWithInvalidParentStartsFreshRoot(t *testing.T) {
	tr := New(clock.NewVirtual(), WithOrigin("st-1"), WithStore(8))
	ctx, ok := ParseHeader("not a header at all")
	if ok {
		t.Fatal("garbage header parsed")
	}
	sp := tr.StartSpan(ctx, "op")
	if sp.Context().TraceID == "" || sp.rec.Parent != "" {
		t.Fatalf("degraded span is not a fresh root: %+v", sp.rec)
	}
	sp.End(nil)
	if got := len(tr.Trace(sp.Context().TraceID)); got != 1 {
		t.Fatalf("root span not stored: %d spans", got)
	}
}

func TestSpanTreeAndDurations(t *testing.T) {
	clk := clock.NewVirtual()
	tr := New(clk, WithOrigin("manager"), WithStore(8))
	root := tr.StartSpan(Context{}, "handoff")
	clk.Advance(2 * time.Millisecond)
	child := tr.StartSpan(root.Context(), "rpc:agent.preCopy")
	child.SetAttr("station", "st-b")
	clk.Advance(3 * time.Millisecond)
	child.End(nil)
	clk.Advance(time.Millisecond)
	root.End(nil)

	spans := tr.Trace(root.Context().TraceID)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "handoff" || spans[1].Parent != spans[0].SpanID {
		t.Fatalf("tree shape wrong: %+v", spans)
	}
	if spans[1].DurationMs != 3 {
		t.Fatalf("child duration = %vms, want 3 (virtual clock)", spans[1].DurationMs)
	}
	if spans[0].DurationMs != 6 {
		t.Fatalf("root duration = %vms, want 6", spans[0].DurationMs)
	}
	if spans[1].Attrs["station"] != "st-b" {
		t.Fatalf("attr lost: %+v", spans[1].Attrs)
	}
	if ConnectedSize(spans) != 2 {
		t.Fatalf("ConnectedSize = %d, want 2", ConnectedSize(spans))
	}
}

func TestSamplingRatio(t *testing.T) {
	tr := New(clock.NewVirtual(), WithStore(2048), WithSampleRatio(0.25))
	sampled := 0
	for i := 0; i < 400; i++ {
		sp := tr.StartSpan(Context{}, "root")
		if sp.Context().Sampled {
			sampled++
		}
		sp.End(nil)
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 400 roots at ratio 0.25, want exactly 100 (deterministic accumulator)", sampled)
	}
	// Unsampled spans must not propagate.
	tr2 := New(clock.NewVirtual(), WithSampleRatio(0))
	if h := tr2.StartSpan(Context{}, "x").Context().Header(); h != "" {
		t.Fatalf("unsampled span emitted header %q", h)
	}
}

func TestStoreEviction(t *testing.T) {
	tr := New(clock.NewVirtual(), WithStore(4))
	var first string
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan(Context{}, "root")
		if i == 0 {
			first = sp.Context().TraceID
		}
		sp.End(nil)
	}
	if got := tr.Traces(); len(got) != 4 {
		t.Fatalf("store holds %d traces, want 4", len(got))
	}
	if len(tr.Trace(first)) != 0 {
		t.Fatal("oldest trace survived eviction")
	}
}

func TestBufferDrain(t *testing.T) {
	tr := New(clock.NewVirtual(), WithOrigin("st-1"), WithBuffer(3))
	for i := 0; i < 5; i++ {
		tr.StartSpan(Context{}, fmt.Sprintf("op-%d", i)).End(errors.New("boom"))
	}
	got := tr.Drain()
	if len(got) != 3 {
		t.Fatalf("drained %d spans, want 3 (buffer cap)", len(got))
	}
	if got[0].Name != "op-2" {
		t.Fatalf("overflow should drop oldest; first drained = %s", got[0].Name)
	}
	if got[0].Err != "boom" {
		t.Fatalf("error not recorded: %+v", got[0])
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", tr.Dropped())
	}
	if tr.Drain() != nil {
		t.Fatal("second drain not empty")
	}
}

func TestIngestRemoteSpans(t *testing.T) {
	tr := New(clock.NewVirtual(), WithOrigin("manager"), WithStore(8))
	root := tr.StartSpan(Context{}, "handoff")
	root.End(nil)
	tr.Ingest(SpanRecord{
		TraceID: root.Context().TraceID, SpanID: "abcd000000000001",
		Parent: root.Context().SpanID, Name: "agent:activate", Origin: "st-b",
	})
	spans := tr.Trace(root.Context().TraceID)
	if len(spans) != 2 || ConnectedSize(spans) != 2 {
		t.Fatalf("remote span not merged into tree: %+v", spans)
	}
}

func TestConnectedSizeIgnoresOrphansAndCycles(t *testing.T) {
	spans := []SpanRecord{
		{SpanID: "a", Parent: ""},
		{SpanID: "b", Parent: "a"},
		{SpanID: "c", Parent: "missing"}, // orphan: parent never arrived
		{SpanID: "d", Parent: "e"},       // cycle
		{SpanID: "e", Parent: "d"},
	}
	if got := ConnectedSize(spans); got != 2 {
		t.Fatalf("ConnectedSize = %d, want 2", got)
	}
}

func TestJournalOrderingAndFiltering(t *testing.T) {
	clk := clock.NewVirtual()
	j := NewJournal(clk, 4)
	j.Append(Event{Type: EventAttach, Subject: "chain-1"})
	j.Append(Event{Type: EventMigrate, Subject: "chain-1"})
	j.Append(Event{Type: EventScale, Subject: "pool-1"})

	all := j.Events(0)
	if len(all) != 3 {
		t.Fatalf("got %d events, want 3", len(all))
	}
	for i, ev := range all {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("seq not causal: %+v", all)
		}
	}
	if got := j.Events(0, EventMigrate); len(got) != 1 || got[0].Subject != "chain-1" {
		t.Fatalf("type filter wrong: %+v", got)
	}
	if got := j.Events(2); len(got) != 1 || got[0].Type != EventScale {
		t.Fatalf("after filter wrong: %+v", got)
	}

	// Ring eviction burns seq numbers but keeps order.
	j.Append(Event{Type: EventDetach})
	j.Append(Event{Type: EventFailover})
	got := j.Events(0)
	if len(got) != 4 || got[0].Seq != 2 || got[3].Seq != 5 {
		t.Fatalf("eviction broke ordering: %+v", got)
	}
	if j.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", j.LastSeq())
	}
}
