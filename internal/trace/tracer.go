package trace

import (
	"sort"
	"sync"
	"time"

	"gnf/internal/clock"
)

// SpanRecord is one finished span, the unit the store holds and the wire
// ships (agents flush their spans to the manager as batches of these).
type SpanRecord struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	Parent     string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	Origin     string            `json:"origin,omitempty"` // "manager" or a station name
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end"`
	DurationMs float64           `json:"duration_ms"`
	Err        string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceSummary describes one stored trace for listings.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"` // name of the root span ("" if not yet seen)
	Spans      int       `json:"spans"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
}

// Defaults for the bounded stores.
const (
	defaultMaxTraces        = 512
	defaultMaxSpansPerTrace = 4096
	defaultMaxPending       = 4096
)

// Tracer mints span and trace IDs, measures spans on a clock, and owns the
// bounded span storage. Exported methods are nil-receiver-safe (a nil
// tracer is simply off). The manager runs one with a store; each agent runs
// one that only buffers finished spans for flushing upstream.
type Tracer struct {
	clk    clock.Clock
	origin string
	tag    uint16

	mu      sync.Mutex
	nextID  uint64
	ratio   float64 // root-span sampling ratio (0..1]
	credits float64 // sampling accumulator: deterministic, no RNG

	store     map[string]*traceEntry
	order     []string // trace IDs in first-seen order (eviction)
	maxTraces int

	pending    []SpanRecord // buffered spans awaiting Drain (agents)
	buffering  bool
	maxPending int
	dropped    uint64
}

type traceEntry struct{ spans []SpanRecord }

// Option configures a Tracer.
type Option func(*Tracer)

// WithOrigin stamps every span minted by this tracer (and prefixes its
// IDs) with the given origin — "manager" or a station name.
func WithOrigin(origin string) Option {
	return func(t *Tracer) {
		t.origin = origin
		t.tag = originTag(origin)
	}
}

// WithStore bounds the in-memory trace store to maxTraces traces (oldest
// evicted first; < 1 selects the default of 512). Without this option the
// tracer stores nothing locally.
func WithStore(maxTraces int) Option {
	return func(t *Tracer) {
		if maxTraces < 1 {
			maxTraces = defaultMaxTraces
		}
		t.store = make(map[string]*traceEntry)
		t.maxTraces = maxTraces
	}
}

// WithBuffer makes the tracer queue finished spans for Drain — the agent
// mode, where spans ship to the manager instead of being stored locally.
// Overflow drops the oldest buffered spans.
func WithBuffer(maxPending int) Option {
	return func(t *Tracer) {
		if maxPending < 1 {
			maxPending = defaultMaxPending
		}
		t.buffering = true
		t.maxPending = maxPending
	}
}

// WithSampleRatio sets the fraction of root spans that are sampled
// (recorded and propagated). Children inherit their root's decision.
// Ratio is clamped to [0,1]; the default is 1 (trace everything).
func WithSampleRatio(r float64) Option {
	return func(t *Tracer) {
		if r < 0 {
			r = 0
		}
		if r > 1 {
			r = 1
		}
		t.ratio = r
	}
}

// New builds a tracer on the given clock.
func New(clk clock.Clock, opts ...Option) *Tracer {
	t := &Tracer{clk: clk, origin: "local", tag: originTag("local"), ratio: 1}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Span is one in-flight operation. Created by StartSpan, finished by End;
// unsampled spans are inert (attribute writes and End are cheap no-ops).
// Every method is nil-receiver-safe, so call sites that only trace
// conditionally (Tracer.Child) need no guards.
type Span struct {
	t       *Tracer
	rec     SpanRecord
	sampled bool
	ended   bool
	mu      sync.Mutex
}

// StartSpan opens a span. An invalid parent context starts a fresh root
// trace (subject to the sampling ratio); a valid one starts a child that
// inherits the parent's trace and sampling decision. This "degrade to
// root" behaviour is what makes dropped or foreign trace headers harmless.
func (t *Tracer) StartSpan(parent Context, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := formatID(t.tag, t.nextID)
	var traceID string
	var sampled bool
	if parent.Valid() {
		traceID = parent.TraceID
		sampled = parent.Sampled
	} else {
		traceID = id
		t.credits += t.ratio
		if t.credits >= 1 {
			t.credits--
			sampled = true
		}
	}
	t.mu.Unlock()
	sp := &Span{t: t, sampled: sampled}
	sp.rec = SpanRecord{
		TraceID: traceID,
		SpanID:  id,
		Parent:  parent.SpanID,
		Name:    name,
		Origin:  t.origin,
		Start:   t.clk.Now(),
	}
	return sp
}

// Child opens a child span only when parent is recording; otherwise it
// returns nil, which every Span method treats as an inert no-op. It is the
// cheap form for code that traces only when a caller asked for it.
func (t *Tracer) Child(parent Context, name string) *Span {
	if t == nil || !parent.Recording() {
		return nil
	}
	return t.StartSpan(parent, name)
}

// Context returns the span's propagation context: children started from it
// (locally or across the wire) nest under this span.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID, Sampled: s.sampled}
}

// SetAttr attaches a key/value annotation (no-op on unsampled spans).
func (s *Span) SetAttr(k, v string) {
	if s == nil || !s.sampled {
		return
	}
	s.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string)
	}
	s.rec.Attrs[k] = v
	s.mu.Unlock()
}

// End finishes the span, stamping its duration on the tracer's clock and
// recording it (err, when non-nil, marks the span failed). End is
// idempotent; only the first call records.
func (s *Span) End(err error) {
	if s == nil || !s.sampled {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.End = s.t.clk.Now()
	s.rec.DurationMs = float64(s.rec.End.Sub(s.rec.Start).Microseconds()) / 1000
	if err != nil {
		s.rec.Err = err.Error()
	}
	rec := s.rec
	s.mu.Unlock()
	s.t.record(rec)
}

// record stores and/or buffers one finished span.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.store != nil {
		t.ingestLocked(rec)
	}
	if t.buffering {
		if len(t.pending) >= t.maxPending {
			t.pending = t.pending[1:]
			t.dropped++
		}
		t.pending = append(t.pending, rec)
	}
}

// Ingest adds remotely produced span records to the store — how the
// manager absorbs the batches agents flush up.
func (t *Tracer) Ingest(recs ...SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.store == nil {
		return
	}
	for _, rec := range recs {
		t.ingestLocked(rec)
	}
}

func (t *Tracer) ingestLocked(rec SpanRecord) {
	if rec.TraceID == "" || rec.SpanID == "" {
		return
	}
	e, ok := t.store[rec.TraceID]
	if !ok {
		for len(t.order) >= t.maxTraces {
			delete(t.store, t.order[0])
			t.order = t.order[1:]
		}
		e = &traceEntry{}
		t.store[rec.TraceID] = e
		t.order = append(t.order, rec.TraceID)
	}
	if len(e.spans) >= defaultMaxSpansPerTrace {
		return
	}
	e.spans = append(e.spans, rec)
}

// Drain returns buffered spans and clears the buffer (agent flush path).
func (t *Tracer) Drain() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.pending) == 0 {
		return nil
	}
	out := t.pending
	t.pending = nil
	return out
}

// Dropped reports spans discarded from a full flush buffer.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Trace returns the stored spans of one trace, ordered by start time (ties
// by span ID, so the order is stable).
func (t *Tracer) Trace(id string) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	e := t.store[id]
	var out []SpanRecord
	if e != nil {
		out = append([]SpanRecord(nil), e.spans...)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// Traces summarises every stored trace, newest first.
func (t *Tracer) Traces() []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceSummary, 0, len(t.order))
	for i := len(t.order) - 1; i >= 0; i-- {
		id := t.order[i]
		e := t.store[id]
		if e == nil || len(e.spans) == 0 {
			continue
		}
		s := TraceSummary{TraceID: id, Spans: len(e.spans)}
		var start, end time.Time
		for _, sp := range e.spans {
			if start.IsZero() || sp.Start.Before(start) {
				start = sp.Start
			}
			if sp.End.After(end) {
				end = sp.End
			}
			if sp.Parent == "" && s.Root == "" {
				s.Root = sp.Name
			}
		}
		s.Start = start
		if !start.IsZero() {
			s.DurationMs = float64(end.Sub(start).Microseconds()) / 1000
		}
		out = append(out, s)
	}
	t.mu.Unlock()
	return out
}

// ConnectedSize reports the size of the span tree reachable from root
// spans (Parent == "" or parent outside the set counts as a root only when
// Parent == ""; spans whose ancestry never reaches a root are orphans and
// do not count). Scenario expectations use it to assert one *connected*
// tree rather than a pile of fragments.
func ConnectedSize(spans []SpanRecord) int {
	byID := make(map[string]*SpanRecord, len(spans))
	for i := range spans {
		byID[spans[i].SpanID] = &spans[i]
	}
	memo := make(map[string]bool, len(spans))
	var reaches func(id string, depth int) bool
	reaches = func(id string, depth int) bool {
		if depth > len(spans)+1 {
			return false // cycle guard
		}
		if v, ok := memo[id]; ok {
			return v
		}
		sp := byID[id]
		if sp == nil {
			return false
		}
		memo[id] = false // provisional: breaks parent cycles
		var v bool
		if sp.Parent == "" {
			v = true
		} else {
			v = reaches(sp.Parent, depth+1)
		}
		memo[id] = v
		return v
	}
	n := 0
	for i := range spans {
		if reaches(spans[i].SpanID, 0) {
			n++
		}
	}
	return n
}
