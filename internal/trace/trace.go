// Package trace implements GNF's control-plane observability substrate:
// virtual-clock-aware distributed tracing plus a causally-ordered event
// journal. A trace.Context (trace ID, span ID, sampled flag) propagates
// through wire RPC metadata, so one client handoff — manager decision,
// pre-copy rounds, delta sync, activation, steering flip, brownout replay —
// yields a single span tree whose per-span durations are measured on
// whatever clock the system runs (virtual in sims, wall in deployments).
//
// Spans are recorded into a bounded in-memory store on the manager;
// agent-side spans are buffered and flushed back to the manager over the
// same wire connection that carried the traced request, so the tree is
// complete by the time the traced call returns.
package trace

import (
	"fmt"
	"strings"
)

// Context identifies a position in one trace: the trace it belongs to and
// the span that is the parent of any work started under it. The zero
// Context is "not tracing" — spans started from it become new roots.
type Context struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	Sampled bool   `json:"sampled,omitempty"`
}

// Valid reports whether the context names a real position in a trace.
func (c Context) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

// Recording reports whether work under this context should produce spans.
func (c Context) Recording() bool { return c.Valid() && c.Sampled }

// Header serialises the context for wire RPC metadata. Unsampled or
// invalid contexts serialise to "" — the absence of a header is the
// zero-overhead representation of "not tracing".
func (c Context) Header() string {
	if !c.Recording() {
		return ""
	}
	return c.TraceID + "-" + c.SpanID + "-1"
}

// ParseHeader decodes a wire trace header. It is deliberately tolerant:
// any malformed, truncated or foreign header yields (Context{}, false),
// and the receiver degrades to starting a fresh root span — a bad header
// must never fail the RPC it rode in on.
func ParseHeader(h string) (Context, bool) {
	if h == "" {
		return Context{}, false
	}
	parts := strings.Split(h, "-")
	if len(parts) != 3 || parts[2] != "1" {
		return Context{}, false
	}
	if !validID(parts[0]) || !validID(parts[1]) {
		return Context{}, false
	}
	return Context{TraceID: parts[0], SpanID: parts[1], Sampled: true}, true
}

// validID accepts lower-case hex strings of plausible ID length.
func validID(s string) bool {
	if len(s) < 8 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// originTag folds an origin name into a 16-bit hex prefix so IDs minted by
// different tracers (the manager, each station) cannot collide even though
// every tracer numbers its IDs from a deterministic counter.
func originTag(origin string) uint16 {
	var h uint16 = 0x9dc5
	for i := 0; i < len(origin); i++ {
		h ^= uint16(origin[i])
		h *= 0x0193
	}
	return h
}

func formatID(tag uint16, n uint64) string {
	return fmt.Sprintf("%04x%012x", tag, n&0xffffffffffff)
}
