// Package mobility drives client movement for the paper's §4 use-case:
// "the migration of multiple lightweight NFs attached to mobile clients
// (smartphones) roaming between wireless networks". Two models are
// provided: deterministic handoff scripts (what the demo stages) and a
// random-waypoint walker (for scale experiments), plus trace replay.
// All models run against a clock.Clock, so simulations are reproducible.
package mobility

import (
	"math/rand"
	"sync"
	"time"

	"gnf/internal/clock"
	"gnf/internal/topology"
)

// Step is one scripted handoff: after Delay, move Client to Cell.
type Step struct {
	Delay  time.Duration
	Client topology.ClientID
	Cell   topology.CellID
}

// Script replays deterministic handoffs — the staged demo of Fig. 2.
type Script struct {
	clk   clock.Clock
	topo  *topology.Topology
	steps []Step
}

// NewScript builds a script over topo.
func NewScript(clk clock.Clock, topo *topology.Topology, steps ...Step) *Script {
	return &Script{clk: clk, topo: topo, steps: steps}
}

// Run executes every step in order, sleeping each Delay on the clock. It
// returns the first attachment error, if any.
func (s *Script) Run() error {
	for _, st := range s.steps {
		if st.Delay > 0 {
			s.clk.Sleep(st.Delay)
		}
		if err := s.topo.Attach(st.Client, st.Cell); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of steps.
func (s *Script) Len() int { return len(s.steps) }

// Waypoint is the classic random-waypoint model on the topology plane:
// each client picks a random destination inside the arena, walks toward it
// at its speed, pauses, and repeats. Association changes fall out of
// Topology.MoveClient.
type Waypoint struct {
	topo       *topology.Topology
	rng        *rand.Rand
	arenaW     float64
	arenaH     float64
	speed      float64 // metres/second
	hysteresis float64

	mu      sync.Mutex
	targets map[topology.ClientID]topology.Point
}

// NewWaypoint creates a walker with a deterministic seed. Arena is
// [0,w]x[0,h]; speed is in m/s.
func NewWaypoint(topo *topology.Topology, w, h, speed float64, seed int64) *Waypoint {
	return &Waypoint{
		topo:       topo,
		rng:        rand.New(rand.NewSource(seed)),
		arenaW:     w,
		arenaH:     h,
		speed:      speed,
		hysteresis: 5,
		targets:    make(map[topology.ClientID]topology.Point),
	}
}

// SetHysteresis overrides the association stickiness (default 5 m) so the
// walker re-associates with the same margin as the rest of a simulation.
func (wp *Waypoint) SetHysteresis(h float64) {
	wp.mu.Lock()
	wp.hysteresis = h
	wp.mu.Unlock()
}

// Step advances every client by dt, re-associating as needed. It returns
// the number of clients that changed cells (observable via topology
// listeners too).
func (wp *Waypoint) Step(dt time.Duration) int {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	changed := 0
	for _, c := range wp.topo.Clients() {
		target, ok := wp.targets[c.ID]
		if !ok || c.Position.Distance(target) < 1 {
			target = topology.Point{X: wp.rng.Float64() * wp.arenaW, Y: wp.rng.Float64() * wp.arenaH}
			wp.targets[c.ID] = target
		}
		dist := c.Position.Distance(target)
		stride := wp.speed * dt.Seconds()
		var next topology.Point
		if stride >= dist {
			next = target
		} else {
			frac := stride / dist
			next = topology.Point{
				X: c.Position.X + (target.X-c.Position.X)*frac,
				Y: c.Position.Y + (target.Y-c.Position.Y)*frac,
			}
		}
		before := c.Attached
		if err := wp.topo.MoveClient(c.ID, next, wp.hysteresis); err != nil {
			continue
		}
		after, err := wp.topo.Client(c.ID)
		if err == nil && after.Attached != before {
			changed++
		}
	}
	return changed
}

// Run steps the model every interval for rounds iterations, sleeping on
// clk between steps. It returns the total number of handoffs.
func (wp *Waypoint) Run(clk clock.Clock, interval time.Duration, rounds int) int {
	total := 0
	for i := 0; i < rounds; i++ {
		clk.Sleep(interval)
		total += wp.Step(interval)
	}
	return total
}

// Trace is a recorded handoff sequence (client, from, to, at) that can be
// replayed; useful for regression tests that need identical mobility.
type Trace struct {
	mu     sync.Mutex
	events []topology.AssociationEvent
}

// Recorder returns a listener that appends events to the trace; register
// it with Topology.OnAssociation.
func (tr *Trace) Recorder() func(topology.AssociationEvent) {
	return func(ev topology.AssociationEvent) {
		tr.mu.Lock()
		tr.events = append(tr.events, ev)
		tr.mu.Unlock()
	}
}

// Events returns a copy of the recorded events.
func (tr *Trace) Events() []topology.AssociationEvent {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]topology.AssociationEvent(nil), tr.events...)
}

// Replay re-applies the recorded handoffs onto topo (ignoring detaches).
func (tr *Trace) Replay(topo *topology.Topology) error {
	for _, ev := range tr.Events() {
		if ev.To == "" {
			if err := topo.Detach(ev.Client); err != nil {
				return err
			}
			continue
		}
		if err := topo.Attach(ev.Client, ev.To); err != nil {
			return err
		}
	}
	return nil
}
