package mobility

import (
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

func corridor(t *testing.T, nClients int) *topology.Topology {
	t.Helper()
	topo := topology.New()
	for i, x := range []float64{0, 100, 200} {
		sid := topology.StationID([]string{"st-a", "st-b", "st-c"}[i])
		if err := topo.AddStation(topology.Station{ID: sid, Position: topology.Point{X: x}}); err != nil {
			t.Fatal(err)
		}
		cid := topology.CellID([]string{"cell-a", "cell-b", "cell-c"}[i])
		if err := topo.AddCell(topology.Cell{ID: cid, Station: sid, Center: topology.Point{X: x}, Radius: 70}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nClients; i++ {
		id := topology.ClientID("c" + string(rune('0'+i)))
		if err := topo.AddClient(topology.Client{ID: id, MAC: packet.MAC{2, 0, 0, 0, 0, byte(i)}, IP: packet.IP{10, 0, 0, byte(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func TestScriptRunsHandoffsInOrder(t *testing.T) {
	topo := corridor(t, 1)
	clk := clock.NewAutoVirtual()
	var events []topology.AssociationEvent
	topo.OnAssociation(func(ev topology.AssociationEvent) { events = append(events, ev) })

	script := NewScript(clk, topo,
		Step{Delay: time.Second, Client: "c0", Cell: "cell-a"},
		Step{Delay: 2 * time.Second, Client: "c0", Cell: "cell-b"},
		Step{Delay: time.Second, Client: "c0", Cell: "cell-c"},
	)
	if script.Len() != 3 {
		t.Fatalf("len = %d", script.Len())
	}
	start := clk.Now()
	if err := script.Run(); err != nil {
		t.Fatal(err)
	}
	if el := clk.Since(start); el != 4*time.Second {
		t.Fatalf("script took %v of simulated time, want 4s", el)
	}
	if len(events) != 3 || events[1].From != "cell-a" || events[1].To != "cell-b" {
		t.Fatalf("events = %+v", events)
	}
}

func TestScriptUnknownClientFails(t *testing.T) {
	topo := corridor(t, 1)
	script := NewScript(clock.NewAutoVirtual(), topo, Step{Client: "ghost", Cell: "cell-a"})
	if err := script.Run(); err == nil {
		t.Fatal("script accepted unknown client")
	}
}

func TestWaypointWalksAndAssociates(t *testing.T) {
	topo := corridor(t, 3)
	wp := NewWaypoint(topo, 200, 50, 20 /* m/s */, 42)
	// Step for a simulated minute; every client must end up attached to
	// some cell at least once (cells cover most of the arena).
	attached := make(map[topology.ClientID]bool)
	topo.OnAssociation(func(ev topology.AssociationEvent) {
		if ev.To != "" {
			attached[ev.Client] = true
		}
	})
	for i := 0; i < 60; i++ {
		wp.Step(time.Second)
	}
	if len(attached) != 3 {
		t.Fatalf("only %d of 3 clients ever associated", len(attached))
	}
	// Positions stay inside the arena.
	for _, c := range topo.Clients() {
		if c.Position.X < -1 || c.Position.X > 201 || c.Position.Y < -1 || c.Position.Y > 51 {
			t.Fatalf("client %s escaped arena: %+v", c.ID, c.Position)
		}
	}
}

func TestWaypointDeterministicWithSeed(t *testing.T) {
	run := func() []topology.Point {
		topo := corridor(t, 2)
		wp := NewWaypoint(topo, 200, 50, 10, 7)
		for i := 0; i < 30; i++ {
			wp.Step(time.Second)
		}
		var pts []topology.Point
		for _, c := range topo.Clients() {
			pts = append(pts, c.Position)
		}
		return pts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestWaypointRunCountsHandoffs(t *testing.T) {
	topo := corridor(t, 4)
	clk := clock.NewAutoVirtual()
	wp := NewWaypoint(topo, 200, 50, 30, 11)
	start := clk.Now()
	handoffs := wp.Run(clk, time.Second, 120)
	if clk.Since(start) != 120*time.Second {
		t.Fatal("Run did not sleep on the clock")
	}
	if handoffs == 0 {
		t.Fatal("no handoffs in 2 simulated minutes at 30 m/s")
	}
}

func TestTraceRecordAndReplay(t *testing.T) {
	topo := corridor(t, 1)
	var tr Trace
	topo.OnAssociation(tr.Recorder())
	topo.Attach("c0", "cell-a")
	topo.Attach("c0", "cell-b")
	topo.Detach("c0")
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("recorded %d events", len(events))
	}

	// Replay onto a fresh topology reproduces the final state.
	topo2 := corridor(t, 1)
	var tr2 Trace
	topo2.OnAssociation(tr2.Recorder())
	if err := tr.Replay(topo2); err != nil {
		t.Fatal(err)
	}
	got := tr2.Events()
	if len(got) != len(events) {
		t.Fatalf("replay produced %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("replay event[%d] = %+v, want %+v", i, got[i], events[i])
		}
	}
	c, _ := topo2.Client("c0")
	if c.Attached != "" {
		t.Fatal("replayed final state wrong")
	}
}

func TestTraceReplayUnknownClient(t *testing.T) {
	topo := corridor(t, 1)
	var tr Trace
	topo.OnAssociation(tr.Recorder())
	topo.Attach("c0", "cell-a")
	empty := topology.New()
	if err := tr.Replay(empty); err == nil {
		t.Fatal("replay on empty topology succeeded")
	}
}
