// Package reconcile drives GNF toward a declared desired state: it
// snapshots actual fleet state from the Manager's query surface, computes
// the semantic diff against the installed spec (internal/spec), and
// issues the minimal imperative actions — with per-action retry backoff,
// convergence-generation stamps, a dry-run mode, and an optional
// background loop. It is the convergence controller ROADMAP item 3 calls
// for: the same continuous "observe, diff, act" shape as metallb's config
// reconciliation and sfc-controller's re-render-on-change.
package reconcile

import (
	"errors"
	"sync"
	"time"

	"fmt"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/manager"
	"gnf/internal/spec"
	"gnf/internal/trace"
)

// ErrNoSpec is returned by Plan and ReconcileOnce before any desired
// state has been installed.
var ErrNoSpec = errors.New("reconcile: no desired spec installed")

// Backoff bounds for failing actions: first retry after Base, doubling to
// Max while the same action keeps failing.
const (
	backoffBase = 250 * time.Millisecond
	backoffMax  = 30 * time.Second
)

// backoffEntry tracks one failing action's retry schedule.
type backoffEntry struct {
	fails int
	next  time.Time
}

// Reconciler owns the installed desired spec and converges the fleet
// toward it. All methods are safe for concurrent use.
type Reconciler struct {
	mgr *manager.Manager
	clk clock.Clock

	mu           sync.Mutex
	desired      *spec.Spec
	hash         string
	generation   uint64
	convergedGen uint64
	// lastPlacement/lastStrategy remember what this reconciler applied so
	// repeated passes don't reinstall an identical policy (resetting e.g.
	// round-robin rotation state) on every tick.
	lastPlacement string
	lastStrategy  string
	backoff       map[string]*backoffEntry

	stop chan struct{}
	done chan struct{}
}

// New builds a reconciler over the manager, sharing its clock (virtual in
// sims) for backoff timing.
func New(mgr *manager.Manager) *Reconciler {
	return &Reconciler{
		mgr:     mgr,
		clk:     mgr.Clock(),
		backoff: make(map[string]*backoffEntry),
	}
}

// Status describes the installed spec and convergence progress.
type Status struct {
	Installed  bool   `json:"installed"`
	Hash       string `json:"hash,omitempty"`
	Generation uint64 `json:"generation"`
	// ConvergedGeneration is the newest generation a reconcile pass found
	// fully converged (empty diff at pass start).
	ConvergedGeneration uint64 `json:"converged_generation"`
	// Converged is true when the current generation has been observed
	// converged.
	Converged bool       `json:"converged"`
	Spec      *spec.Spec `json:"spec,omitempty"`
}

// SetSpec validates and installs a desired spec, returning the resulting
// status. Installing a spec whose canonical hash differs from the current
// one bumps the generation and clears retry backoff (a new desired state
// deserves fresh attempts); re-installing an identical spec is a no-op.
func (r *Reconciler) SetSpec(sp *spec.Spec) (Status, error) {
	if err := sp.Validate(); err != nil {
		return r.Status(), err
	}
	c := sp.Clone()
	c.Normalize()
	h := c.Hash()
	r.mu.Lock()
	defer r.mu.Unlock()
	if h != r.hash {
		r.desired = c
		r.hash = h
		r.generation++
		r.backoff = make(map[string]*backoffEntry)
	}
	return r.statusLocked(), nil
}

// Status reports the installed spec and convergence stamps.
func (r *Reconciler) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statusLocked()
}

func (r *Reconciler) statusLocked() Status {
	st := Status{
		Installed:           r.desired != nil,
		Hash:                r.hash,
		Generation:          r.generation,
		ConvergedGeneration: r.convergedGen,
		Converged:           r.generation > 0 && r.convergedGen == r.generation,
	}
	if r.desired != nil {
		st.Spec = r.desired.Clone()
	}
	return st
}

// Snapshot builds an Actual from the manager's query surface. Pool state
// costs one stats RPC per agent, so it is only gathered when wantPools is
// set (the installed spec declares pool targets).
func Snapshot(mgr *manager.Manager, wantPools bool) *spec.Actual {
	actual := &spec.Actual{Clients: make(map[string]spec.ActualClient)}

	deployed := make(map[string]map[string]string)          // client -> chain -> station
	segPlaced := make(map[string]map[string]map[int]string) // client -> base chain -> segment -> station
	for _, p := range mgr.Placements() {
		if p.Segment > 0 {
			// Anchored split-chain segments: p.Chain is the deployment name
			// ("web#1"); record under the base chain for per-segment drift.
			base, seg := agent.ParseSegmentName(p.Chain)
			if segPlaced[p.Client] == nil {
				segPlaced[p.Client] = make(map[string]map[int]string)
			}
			if segPlaced[p.Client][base] == nil {
				segPlaced[p.Client][base] = make(map[int]string)
			}
			segPlaced[p.Client][base][seg] = p.Station
			continue
		}
		if deployed[p.Client] == nil {
			deployed[p.Client] = make(map[string]string)
		}
		deployed[p.Client][p.Chain] = p.Station
	}
	windows := make(map[string]map[string]manager.Window)
	for _, s := range mgr.Schedules() {
		if windows[s.Client] == nil {
			windows[s.Client] = make(map[string]manager.Window)
		}
		windows[s.Client][s.Chain] = s.Window
	}
	for _, client := range mgr.Clients() {
		station, _ := mgr.ClientStation(client)
		site := mgr.Offloaded(client)
		ac := spec.ActualClient{
			Station: station,
			Offload: site,
			Chains:  make(map[string]spec.ActualChain),
			Windows: windows[client],
		}
		for _, cs := range mgr.Chains(client) {
			at := deployed[client][cs.Name]
			settled := false
			if site != "" {
				// Offloaded chains are settled on their cloud site; anywhere
				// else is drift.
				settled = at == site
			} else {
				settled = mgr.ChainSettled(cs, station, at)
			}
			ach := spec.ActualChain{Spec: cs, DeployedOn: at, Settled: settled}
			if len(manager.SegmentsOf(cs)) > 1 {
				ach.Segments = segPlaced[client][cs.Name]
				if plan, ok := mgr.SegmentPlan(client, cs); ok {
					ach.SegmentPlan = plan
				}
			}
			ac.Chains[cs.Name] = ach
		}
		actual.Clients[client] = ac
	}
	if wantPools {
		actual.Pools = make(map[string][]spec.PoolState)
		for station, pools := range mgr.PoolTables() {
			for _, ps := range pools {
				actual.Pools[station] = append(actual.Pools[station], spec.PoolState{
					Kinds: ps.Kinds, ConfigHash: ps.ConfigHash,
					Refs: ps.Refs, Replicas: ps.Replicas,
				})
			}
		}
	}
	return actual
}

// Plan computes the current diff without executing anything and without
// backoff filtering — the full gap, for operator review (gnfctl diff,
// GET /api/diff).
func (r *Reconciler) Plan() ([]spec.Action, error) {
	r.mu.Lock()
	desired := r.desired
	r.mu.Unlock()
	if desired == nil {
		return nil, ErrNoSpec
	}
	actual := Snapshot(r.mgr, len(desired.Pools) > 0)
	return spec.Diff(desired, actual), nil
}

// ActionResult pairs a planned action with its execution outcome.
type ActionResult struct {
	Action spec.Action `json:"action"`
	Err    string      `json:"err,omitempty"`
}

// Result reports one reconcile pass.
type Result struct {
	Generation uint64 `json:"generation"`
	DryRun     bool   `json:"dry_run"`
	// Planned is the full diff at pass start (before backoff filtering).
	Planned []spec.Action `json:"planned,omitempty"`
	// Executed holds the actions actually issued this pass with their
	// outcomes (empty in dry-run).
	Executed []ActionResult `json:"executed,omitempty"`
	// Failed counts executed actions that errored; Deferred counts planned
	// actions skipped because they are in retry backoff.
	Failed   int `json:"failed"`
	Deferred int `json:"deferred"`
	// Converged is true when the pass found nothing to do: the fleet
	// matched the desired state at pass start.
	Converged bool `json:"converged"`
}

// ReconcileOnce runs a single observe→diff→act pass. With dryRun set it
// only reports the plan. A pass that finds an empty diff stamps the
// current generation converged.
func (r *Reconciler) ReconcileOnce(dryRun bool) (Result, error) {
	r.mu.Lock()
	desired := r.desired
	gen := r.generation
	lastPlacement, lastStrategy := r.lastPlacement, r.lastStrategy
	r.mu.Unlock()
	if desired == nil {
		return Result{}, ErrNoSpec
	}

	res := Result{Generation: gen, DryRun: dryRun}

	if !dryRun {
		// Policy fields apply before the diff: placement steers where the
		// actions below land. Applied only on change so repeated passes do
		// not reset stateful policies (round-robin rotation).
		if desired.Placement != "" && desired.Placement != lastPlacement {
			if p, ok := manager.PlacementFor(desired.Placement); ok {
				r.mgr.SetPlacement(p)
				r.mu.Lock()
				r.lastPlacement = desired.Placement
				r.mu.Unlock()
			}
		}
		if desired.Strategy != "" && desired.Strategy != lastStrategy {
			r.mgr.SetStrategy(manager.Strategy(desired.Strategy))
			r.mu.Lock()
			r.lastStrategy = desired.Strategy
			r.mu.Unlock()
		}
	}

	actual := Snapshot(r.mgr, len(desired.Pools) > 0)
	res.Planned = spec.Diff(desired, actual)
	res.Converged = len(res.Planned) == 0
	if res.Converged {
		r.mu.Lock()
		// Stamp only if no newer spec landed while we were snapshotting.
		stamped := false
		if r.generation == gen && r.convergedGen < gen {
			r.convergedGen = gen
			stamped = true
		}
		r.mu.Unlock()
		if stamped {
			// Journal the convergence edge, not every idle tick — the loop
			// re-finds an empty diff each interval and would flood the ring.
			r.mgr.Journal().Append(trace.Event{
				Type:    trace.EventReconcile,
				Detail:  fmt.Sprintf("generation %d converged", gen),
				Subject: fmt.Sprintf("gen-%d", gen),
			})
		}
		return res, nil
	}
	if dryRun {
		return res, nil
	}

	now := r.clk.Now()
	for _, a := range res.Planned {
		key := a.Key()
		r.mu.Lock()
		be := r.backoff[key]
		deferred := be != nil && now.Before(be.next)
		r.mu.Unlock()
		if deferred {
			res.Deferred++
			continue
		}
		err := r.apply(a)
		ar := ActionResult{Action: a}
		r.mu.Lock()
		if err != nil {
			ar.Err = err.Error()
			res.Failed++
			if be == nil {
				be = &backoffEntry{}
				r.backoff[key] = be
			}
			be.fails++
			delay := backoffBase << (be.fails - 1)
			if delay > backoffMax || delay <= 0 {
				delay = backoffMax
			}
			be.next = now.Add(delay)
		} else {
			delete(r.backoff, key)
		}
		r.mu.Unlock()
		res.Executed = append(res.Executed, ar)
	}
	ev := trace.Event{
		Type:    trace.EventReconcile,
		Subject: fmt.Sprintf("gen-%d", gen),
		Detail: fmt.Sprintf("planned=%d executed=%d failed=%d deferred=%d",
			len(res.Planned), len(res.Executed), res.Failed, res.Deferred),
	}
	if res.Failed > 0 {
		ev.Err = fmt.Sprintf("%d action(s) failed", res.Failed)
	}
	r.mgr.Journal().Append(ev)
	return res, nil
}

// apply maps one diff action to its manager call.
func (r *Reconciler) apply(a spec.Action) error {
	switch a.Kind {
	case spec.ActionAttach:
		if err := r.mgr.AttachChain(a.Client, a.Chain.ChainSpec); err != nil {
			return err
		}
		if a.Chain.Schedule != nil {
			return r.mgr.Schedule(a.Client, a.ChainName, *a.Chain.Schedule)
		}
		return nil
	case spec.ActionDetach:
		return r.mgr.DetachChain(a.Client, a.ChainName)
	case spec.ActionMigrate:
		if a.Segment > 0 {
			_, err := r.mgr.MigrateSegment(a.Client, a.ChainName, a.Segment, a.Station)
			return err
		}
		_, err := r.mgr.MigrateChain(a.Client, a.ChainName, a.Station)
		return err
	case spec.ActionSchedule:
		return r.mgr.Schedule(a.Client, a.ChainName, *a.Window)
	case spec.ActionUnschedule:
		r.mgr.Unschedule(a.Client, a.ChainName)
		return nil
	case spec.ActionOffload:
		_, err := r.mgr.OffloadClient(a.Client, a.Site)
		return err
	case spec.ActionRecall:
		_, err := r.mgr.RecallClient(a.Client)
		return err
	case spec.ActionScale:
		return r.mgr.ScalePool(a.Station, a.Kinds, a.ConfigHash, a.Replicas)
	}
	return errors.New("reconcile: unknown action kind " + string(a.Kind))
}

// Start runs ReconcileOnce every interval until Stop (or a second Start
// is a no-op). Wall-clock deployments use this; virtual-clock scenarios
// script passes instead.
func (r *Reconciler) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	r.mu.Lock()
	if r.stop != nil {
		r.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.stop, r.done = stop, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				// ErrNoSpec before the first PUT /api/spec is the idle state.
				_, _ = r.ReconcileOnce(false)
			}
		}
	}()
}

// Stop halts the background loop (idempotent).
func (r *Reconciler) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
