package reconcile_test

import (
	"strings"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/reconcile"
	"gnf/internal/spec"
	"gnf/internal/topology"
)

// fixture is one virtual station with one associated phone.
func fixture(t *testing.T) (*core.System, *reconcile.Reconciler) {
	t.Helper()
	sys, _, err := core.NewVirtualSystem(core.Config{
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.AddClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 10}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return sys, reconcile.New(sys.Manager)
}

func fwSpec() *spec.Spec {
	return &spec.Spec{Clients: []spec.Client{{ID: "phone", Chains: []spec.Chain{{
		ChainSpec: manager.ChainSpec{
			Name:      "fw",
			Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw0", Params: nf.Params{"policy": "accept"}}},
		},
	}}}}}
}

// converge drives ReconcileOnce until the plan is empty, returning how
// many actions ran. Real deployments settle asynchronously, so each pass
// waits for the manager to go idle before re-snapshotting.
func converge(t *testing.T, sys *core.System, rec *reconcile.Reconciler) int {
	t.Helper()
	total := 0
	for pass := 0; pass < 50; pass++ {
		res, err := rec.ReconcileOnce(false)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		total += len(res.Executed)
		if res.Converged {
			return total
		}
		sys.Manager.WaitIdle()
	}
	t.Fatal("never converged")
	return total
}

func TestApplyConvergesThenIdempotent(t *testing.T) {
	sys, rec := fixture(t)
	st, err := rec.SetSpec(fwSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Installed || st.Converged {
		t.Fatalf("fresh status = %+v", st)
	}
	if n := converge(t, sys, rec); n != 1 {
		t.Fatalf("fresh apply ran %d actions, want 1 attach", n)
	}
	if err := sys.WaitChainOn("st-a", "fw", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Re-reconciling a converged system must be a pure no-op.
	res, err := rec.ReconcileOnce(false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Executed) != 0 || res.Failed != 0 {
		t.Fatalf("steady-state result = %+v", res)
	}
	if st := rec.Status(); !st.Converged {
		t.Fatalf("status = %+v", st)
	}
	if v := sys.Audit(); len(v) != 0 {
		t.Fatalf("audit violations: %v", v)
	}
}

func TestReapplySameSpecKeepsGeneration(t *testing.T) {
	_, rec := fixture(t)
	st1, err := rec.SetSpec(fwSpec())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := rec.SetSpec(fwSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Generation != st1.Generation || st2.Hash != st1.Hash {
		t.Fatalf("byte-identical re-apply bumped generation: %+v -> %+v", st1, st2)
	}
	changed := fwSpec()
	changed.Clients[0].Chains[0].MaxRTTMs = 25
	st3, err := rec.SetSpec(changed)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Generation != st1.Generation+1 {
		t.Fatalf("changed spec generation = %d, want %d", st3.Generation, st1.Generation+1)
	}
}

func TestDryRunPlansWithoutMutating(t *testing.T) {
	sys, rec := fixture(t)
	if _, err := rec.SetSpec(fwSpec()); err != nil {
		t.Fatal(err)
	}
	res, err := rec.ReconcileOnce(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DryRun || len(res.Planned) != 1 || res.Planned[0].Kind != spec.ActionAttach {
		t.Fatalf("dry-run result = %+v", res)
	}
	if chains := sys.Manager.Chains("phone"); len(chains) != 0 {
		t.Fatalf("dry run attached chains: %v", chains)
	}
	if st := rec.Status(); st.Converged {
		t.Fatal("dry run stamped convergence")
	}
}

func TestScheduleFlows(t *testing.T) {
	sys, rec := fixture(t)
	sp := fwSpec()
	win := manager.Window{EnableAt: sys.Clock.Now().Add(time.Hour)}
	sp.Clients[0].Chains[0].Schedule = &win
	if _, err := rec.SetSpec(sp); err != nil {
		t.Fatal(err)
	}
	converge(t, sys, rec)
	scheds := sys.Manager.Schedules()
	if len(scheds) != 1 || scheds[0].Window != win {
		t.Fatalf("schedules = %+v", scheds)
	}
	// Drop the window from the spec: one unschedule action converges again.
	if _, err := rec.SetSpec(fwSpec()); err != nil {
		t.Fatal(err)
	}
	if n := converge(t, sys, rec); n != 1 {
		t.Fatalf("window removal ran %d actions, want 1 unschedule", n)
	}
	if scheds := sys.Manager.Schedules(); len(scheds) != 0 {
		t.Fatalf("schedules after removal = %+v", scheds)
	}
}

// TestBackoffDefersFailingAction runs on the real clock: the auto-virtual
// clock advances on every background Sleep, which would blow through the
// 250ms backoff window between passes. An offload-only spec keeps the
// manager free of sleeping deploy goroutines.
func TestBackoffDefersFailingAction(t *testing.T) {
	sys, err := core.NewSystem(core.Config{
		ReportInterval: time.Hour,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.AddClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 10}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rec := reconcile.New(sys.Manager)
	sp := &spec.Spec{Clients: []spec.Client{{ID: "phone", Offload: "no-such-site"}}}
	if _, err := rec.SetSpec(sp); err != nil {
		t.Fatal(err)
	}
	res, err := rec.ReconcileOnce(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("offload to unknown site: %+v", res)
	}
	// Immediately after the failure the action is deferred, not retried.
	res, err = rec.ReconcileOnce(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferred != 1 || res.Failed != 0 {
		t.Fatalf("want deferral inside backoff window, got %+v", res)
	}
	// Once the window elapses the action is retried (and fails again).
	time.Sleep(300 * time.Millisecond)
	res, err = rec.ReconcileOnce(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("want retry after backoff elapsed, got %+v", res)
	}
	// Installing a fixed spec clears backoff so repair is immediate.
	if _, err := rec.SetSpec(&spec.Spec{Clients: []spec.Client{{ID: "phone"}}}); err != nil {
		t.Fatal(err)
	}
	res, err = rec.ReconcileOnce(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferred != 0 || !res.Converged {
		t.Fatalf("backoff survived a spec change: %+v", res)
	}
}

func TestDriftRepair(t *testing.T) {
	sys, rec := fixture(t)
	if _, err := rec.SetSpec(fwSpec()); err != nil {
		t.Fatal(err)
	}
	converge(t, sys, rec)
	// Out-of-band mutation: an operator detaches the chain imperatively.
	if err := sys.Manager.DetachChain("phone", "fw"); err != nil {
		t.Fatal(err)
	}
	sys.Manager.WaitIdle()
	if n := converge(t, sys, rec); n != 1 {
		t.Fatalf("drift repair ran %d actions, want 1 re-attach", n)
	}
	if err := sys.WaitChainOn("st-a", "fw", 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestNoSpecErrors(t *testing.T) {
	_, rec := fixture(t)
	if _, err := rec.Plan(); err != reconcile.ErrNoSpec {
		t.Fatalf("Plan err = %v", err)
	}
	if _, err := rec.ReconcileOnce(false); err != reconcile.ErrNoSpec {
		t.Fatalf("ReconcileOnce err = %v", err)
	}
	bad := fwSpec()
	bad.Strategy = "teleport"
	if _, err := rec.SetSpec(bad); err == nil || !strings.Contains(err.Error(), "strategy") {
		t.Fatalf("SetSpec err = %v", err)
	}
	if st := rec.Status(); st.Installed {
		t.Fatal("rejected spec was installed")
	}
}
