// Package share implements shared NF instance pools: the bookkeeping that
// lets one station host a single NF chain instance for every client that
// requested an identical, shareable configuration, instead of one container
// set per client ("Reducing Service Deployment Cost Through VNF Sharing",
// Malandrino et al.).
//
// The package is deliberately resource-agnostic: a Pool tracks instances by
// canonical configuration key, reference-counts the deployments attached to
// them, single-flights instance construction, and reaps instances that have
// sat idle past a grace period. The *resources* behind an instance
// (containers, veths, switch groups) are an opaque payload owned by the
// caller — the Agent — which tears them down when Reap hands an instance
// back. Keeping the lifecycle logic free of dataplane dependencies is what
// makes the refcount edge cases directly testable under -race.
package share

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"gnf/internal/clock"
)

// DefaultGrace is how long an instance may sit at zero references before a
// Reap pass may tear it down. The window exists so churn (a client roaming
// away and back, a chain re-attached moments later) re-uses the warm
// instance instead of paying the container boot cost again.
const DefaultGrace = 30 * time.Second

// FuncSpec is the configuration of one NF as far as sharing is concerned:
// its kind and its parameters. Instance names are deliberately excluded —
// two clients asking for "firewall policy=accept" share regardless of what
// each named its function.
type FuncSpec struct {
	Kind   string
	Params map[string]string
}

// Key identifies a pool of interchangeable instances: the ordered kind
// signature of the chain plus the canonical hash of every function's
// configuration.
type Key struct {
	// Kinds is the chain's kind sequence joined with "+", e.g.
	// "firewall+counter". Redundant with the hash but kept readable for
	// operators (gnfctl pools) and reports.
	Kinds string
	// ConfigHash is the canonical configuration digest (see ChainKey).
	ConfigHash string
}

// Short returns a compact hash prefix for resource naming.
func (k Key) Short() string {
	if len(k.ConfigHash) > 12 {
		return k.ConfigHash[:12]
	}
	return k.ConfigHash
}

// ChainKey computes the canonical Key of a chain configuration: function
// order matters (a firewall in front of a counter is not a counter in front
// of a firewall), parameter order does not. Two chains with equal keys are
// behaviourally interchangeable for stateless NFs.
//
// Every field is length-prefixed before hashing — separator bytes alone
// would let a crafted parameter value collide with a differently-shaped
// configuration and alias two distinct policies onto one shared instance.
func ChainKey(fns []FuncSpec) Key {
	h := sha256.New()
	writeField := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	kinds := ""
	for i, f := range fns {
		if i > 0 {
			kinds += "+"
		}
		kinds += f.Kind
		writeField(f.Kind)
		// Param count pins the function boundaries: without it, one
		// function with a parameter and three parameterless functions
		// could produce the same field stream.
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(f.Params)))
		h.Write(n[:])
		keys := make([]string, 0, len(f.Params))
		for k := range f.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeField(k)
			writeField(f.Params[k])
		}
	}
	return Key{Kinds: kinds, ConfigHash: hex.EncodeToString(h.Sum(nil)[:16])}
}

// PrefixKeys returns the canonical Key of every chain prefix whose
// members are all shareable: keys[0] covers fns[:1], keys[1] covers
// fns[:2], and so on. Enumeration stops at the first function the
// shareable predicate rejects (nil treats every function as shareable),
// so for a fully shareable chain the last key equals ChainKey(fns).
//
// Two chains that agree on a prefix produce byte-identical keys for it —
// the groundwork for prefix-level dedup, where a common "firewall →
// ratelimit" front is hosted once and fanned out into the chains'
// differing tails.
func PrefixKeys(fns []FuncSpec, shareable func(FuncSpec) bool) []Key {
	out := make([]Key, 0, len(fns))
	for i := range fns {
		if shareable != nil && !shareable(fns[i]) {
			break
		}
		out = append(out, ChainKey(fns[:i+1]))
	}
	return out
}

// Instance is one live (or building) shared instance group. All mutable
// fields are guarded by the owning Pool's mutex.
type Instance struct {
	key     Key
	ready   chan struct{} // closed when build finishes (ok or not)
	err     error         // build failure, set before ready closes
	payload any           // caller-owned resources, set before ready closes

	// owners counts attachments per deployment name. A count (not a set)
	// because a Remove's pending Release may overlap a re-Deploy of the
	// same chain name: the re-deploy bumps the count to 2 and the late
	// release brings it back to 1 instead of silently erasing the live
	// deployment's reference.
	owners    map[string]int
	refs      int       // total attachment count across owners
	idleSince time.Time // non-zero while refs is zero
	dead      bool      // removed by Reap; resources being torn down
}

// Key returns the instance's pool key.
func (i *Instance) Key() Key { return i.key }

// Payload returns the caller-owned resources registered at build time.
func (i *Instance) Payload() any { return i.payload }

// Pool is one station's shared-instance table.
type Pool struct {
	clk   clock.Clock
	grace time.Duration

	mu        sync.Mutex
	instances map[Key]*Instance
}

// NewPool creates an empty pool on clk. grace <= 0 selects DefaultGrace;
// use a tiny positive grace in tests that exercise reaping.
func NewPool(clk clock.Clock, grace time.Duration) *Pool {
	if grace <= 0 {
		grace = DefaultGrace
	}
	return &Pool{clk: clk, grace: grace, instances: make(map[Key]*Instance)}
}

// Grace returns the configured idle grace period.
func (p *Pool) Grace() time.Duration { return p.grace }

// Acquire attaches owner to the live instance for key, creating one via
// build when none exists. Exactly one caller runs build for a given key;
// concurrent acquirers block until it finishes and then attach to the
// result (or retry the creation themselves if the build failed or the
// instance died meanwhile). The returned bool reports whether this call
// built the instance.
//
// Attaching clears any idle stamp, so an instance re-acquired inside its
// grace window is revived rather than reaped: Reap only removes instances
// that are unreferenced at the moment it holds the lock.
func (p *Pool) Acquire(key Key, owner string, build func() (any, error)) (*Instance, bool, error) {
	for {
		p.mu.Lock()
		inst := p.instances[key]
		if inst == nil {
			inst = &Instance{key: key, ready: make(chan struct{}), owners: make(map[string]int)}
			p.instances[key] = inst
			p.mu.Unlock()

			payload, err := build()

			p.mu.Lock()
			if err != nil {
				inst.err = err
				if p.instances[key] == inst {
					delete(p.instances, key)
				}
				close(inst.ready)
				p.mu.Unlock()
				return nil, false, err
			}
			inst.payload = payload
			inst.owners[owner]++
			inst.refs++
			close(inst.ready)
			p.mu.Unlock()
			return inst, true, nil
		}
		p.mu.Unlock()

		<-inst.ready
		p.mu.Lock()
		if inst.err != nil || inst.dead || p.instances[key] != inst {
			// Build failed, or the instance was reaped between our lookup
			// and attach: go around and (re)create.
			p.mu.Unlock()
			continue
		}
		inst.owners[owner]++
		inst.refs++
		inst.idleSince = time.Time{}
		p.mu.Unlock()
		return inst, false, nil
	}
}

// Release detaches owner from the instance for key and returns the
// remaining reference count. When the last owner leaves, the instance is
// stamped idle and becomes eligible for Reap after the grace period. ok is
// false when the key or owner is unknown.
func (p *Pool) Release(key Key, owner string) (refs int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	inst := p.instances[key]
	if inst == nil || inst.owners[owner] == 0 {
		return 0, false
	}
	inst.owners[owner]--
	if inst.owners[owner] == 0 {
		delete(inst.owners, owner)
	}
	inst.refs--
	if inst.refs == 0 {
		inst.idleSince = p.clk.Now()
	}
	return inst.refs, true
}

// Get returns the live instance for key (nil when absent, still building
// counts as absent for everyone but the builder's waiters).
func (p *Pool) Get(key Key) *Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	inst := p.instances[key]
	if inst == nil {
		return nil
	}
	select {
	case <-inst.ready:
	default:
		return nil // still building
	}
	if inst.err != nil || inst.dead {
		return nil
	}
	return inst
}

// Refs returns the current reference count of the instance for key (0 when
// absent or still building).
func (p *Pool) Refs(key Key) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	inst := p.instances[key]
	if inst == nil {
		return 0
	}
	return inst.refs
}

// Reap removes every instance that has been unreferenced for at least the
// grace period and returns them so the caller can tear their resources
// down. Removal happens under the pool lock, so a concurrent Acquire either
// revives the instance before Reap sees it idle, or misses it entirely and
// builds a fresh one — it can never attach to a reaped instance.
func (p *Pool) Reap() []*Instance {
	now := p.clk.Now()
	p.mu.Lock()
	var out []*Instance
	for key, inst := range p.instances {
		select {
		case <-inst.ready:
		default:
			continue // still building, necessarily about to gain an owner
		}
		if inst.err == nil && inst.refs == 0 &&
			!inst.idleSince.IsZero() && now.Sub(inst.idleSince) >= p.grace {
			inst.dead = true
			delete(p.instances, key)
			out = append(out, inst)
		}
	}
	p.mu.Unlock()
	return out
}

// Stat is one instance's bookkeeping snapshot.
type Stat struct {
	Key    Key
	Refs   int
	Owners []string // sorted deployment names attached
	Idle   bool     // true when unreferenced (inside its grace window)
}

// Snapshot lists live instances sorted by key for stable output.
func (p *Pool) Snapshot() []Stat {
	p.mu.Lock()
	out := make([]Stat, 0, len(p.instances))
	for _, inst := range p.instances {
		select {
		case <-inst.ready:
		default:
			continue
		}
		if inst.err != nil {
			continue
		}
		st := Stat{Key: inst.key, Refs: inst.refs, Idle: inst.refs == 0}
		for o := range inst.owners {
			st.Owners = append(st.Owners, o)
		}
		sort.Strings(st.Owners)
		out = append(out, st)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Kinds != out[j].Key.Kinds {
			return out[i].Key.Kinds < out[j].Key.Kinds
		}
		return out[i].Key.ConfigHash < out[j].Key.ConfigHash
	})
	return out
}

// Size returns the number of live or building instances.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.instances)
}
