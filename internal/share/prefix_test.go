package share

import (
	"fmt"
	"testing"
)

// TestPrefixKeysCoverAllPrefixes: with every function shareable, one key
// per prefix, and the whole-chain key equals ChainKey.
func TestPrefixKeysCoverAllPrefixes(t *testing.T) {
	fns := []FuncSpec{
		{Kind: "firewall", Params: map[string]string{"policy": "accept"}},
		{Kind: "ratelimit", Params: map[string]string{"rate_bps": "1000000"}},
		{Kind: "counter"},
	}
	keys := PrefixKeys(fns, nil)
	if len(keys) != 3 {
		t.Fatalf("got %d keys, want 3", len(keys))
	}
	if keys[0].Kinds != "firewall" || keys[1].Kinds != "firewall+ratelimit" || keys[2].Kinds != "firewall+ratelimit+counter" {
		t.Fatalf("kind signatures wrong: %v", keys)
	}
	if keys[2] != ChainKey(fns) {
		t.Fatalf("whole-chain prefix key %v != ChainKey %v", keys[2], ChainKey(fns))
	}
	for i := range keys {
		if keys[i] != ChainKey(fns[:i+1]) {
			t.Fatalf("prefix %d key differs from ChainKey of the same slice", i)
		}
	}
}

// TestPrefixKeysStopAtNonShareable: enumeration must halt at the first
// function the predicate rejects — a stateful NF in the middle makes the
// whole remainder unshareable, including the functions after it.
func TestPrefixKeysStopAtNonShareable(t *testing.T) {
	fns := []FuncSpec{
		{Kind: "firewall"},
		{Kind: "nat"}, // per-client state: not shareable
		{Kind: "counter"},
	}
	shareable := func(f FuncSpec) bool { return f.Kind != "nat" }
	keys := PrefixKeys(fns, shareable)
	if len(keys) != 1 {
		t.Fatalf("got %d keys, want 1 (stop at nat)", len(keys))
	}
	if keys[0].Kinds != "firewall" {
		t.Fatalf("surviving prefix = %q", keys[0].Kinds)
	}
	if got := PrefixKeys(fns, func(FuncSpec) bool { return false }); len(got) != 0 {
		t.Fatalf("nothing shareable, got %d keys", len(got))
	}
}

// TestPrefixKeyDensity is the dedup groundwork property: N chains that
// agree on a common front produce byte-identical keys for every shared
// prefix level, so a pool keyed on prefixes hosts the front once no
// matter how many distinct tails exist. Distinct tails must still split
// at the first level they diverge.
func TestPrefixKeyDensity(t *testing.T) {
	front := []FuncSpec{
		{Kind: "firewall", Params: map[string]string{"policy": "accept"}},
		{Kind: "ratelimit", Params: map[string]string{"rate_bps": "2000000"}},
	}
	const chains = 32
	distinct := [3]map[Key]bool{{}, {}, {}}
	for i := 0; i < chains; i++ {
		fns := append(append([]FuncSpec{}, front...),
			FuncSpec{Kind: "counter", Params: map[string]string{"tag": fmt.Sprintf("t%d", i)}})
		keys := PrefixKeys(fns, nil)
		if len(keys) != 3 {
			t.Fatalf("chain %d: %d keys", i, len(keys))
		}
		for lvl, k := range keys {
			distinct[lvl][k] = true
		}
	}
	// Shared front: key density 1 at both prefix levels; unique tails: one
	// key per chain at the full-chain level.
	if len(distinct[0]) != 1 || len(distinct[1]) != 1 {
		t.Fatalf("shared prefixes not dense: level0=%d level1=%d keys", len(distinct[0]), len(distinct[1]))
	}
	if len(distinct[2]) != chains {
		t.Fatalf("distinct tails collided: %d keys for %d chains", len(distinct[2]), chains)
	}
}
