package share

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gnf/internal/clock"
)

func specFW() []FuncSpec {
	return []FuncSpec{
		{Kind: "firewall", Params: map[string]string{"policy": "accept", "rules": "accept any udp"}},
		{Kind: "counter", Params: nil},
	}
}

func TestChainKeyCanonical(t *testing.T) {
	a := ChainKey(specFW())
	if a.Kinds != "firewall+counter" {
		t.Fatalf("kinds = %q", a.Kinds)
	}
	// Parameter order must not matter; map iteration order would make the
	// hash flap without canonicalisation, so run a few times.
	for i := 0; i < 16; i++ {
		if b := ChainKey(specFW()); b != a {
			t.Fatalf("non-canonical key: %v vs %v", a, b)
		}
	}
	// Different parameter values, function order, or kinds must all change
	// the key.
	diff := []FuncSpec{
		{Kind: "firewall", Params: map[string]string{"policy": "drop", "rules": "accept any udp"}},
		{Kind: "counter"},
	}
	if ChainKey(diff) == a {
		t.Fatal("param value change did not change key")
	}
	rev := []FuncSpec{specFW()[1], specFW()[0]}
	if ChainKey(rev) == a {
		t.Fatal("function order change did not change key")
	}
	// Instance naming is excluded by construction (FuncSpec has no name).
	if ChainKey(specFW()).Short() == "" || len(ChainKey(specFW()).Short()) != 12 {
		t.Fatalf("short hash = %q", ChainKey(specFW()).Short())
	}
}

func TestAcquireSingleFlight(t *testing.T) {
	clk := clock.NewAutoVirtual()
	p := NewPool(clk, time.Second)
	key := ChainKey(specFW())

	var builds atomic.Int64
	const workers = 32
	var wg sync.WaitGroup
	insts := make([]*Instance, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst, _, err := p.Acquire(key, fmt.Sprintf("chain-%d", i), func() (any, error) {
				builds.Add(1)
				return "payload", nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			insts[i] = inst
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	for i := 1; i < workers; i++ {
		if insts[i] != insts[0] {
			t.Fatalf("worker %d got a different instance", i)
		}
	}
	st := p.Snapshot()
	if len(st) != 1 || st[0].Refs != workers {
		t.Fatalf("snapshot = %+v, want 1 instance with %d refs", st, workers)
	}
}

func TestAcquireBuildFailurePropagatesAndRetries(t *testing.T) {
	clk := clock.NewAutoVirtual()
	p := NewPool(clk, time.Second)
	key := ChainKey(specFW())
	boom := errors.New("no capacity")

	if _, _, err := p.Acquire(key, "a", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if p.Size() != 0 {
		t.Fatal("failed build left a placeholder behind")
	}
	// The key is creatable again after a failure.
	inst, created, err := p.Acquire(key, "a", func() (any, error) { return 7, nil })
	if err != nil || !created || inst.Payload() != 7 {
		t.Fatalf("retry: inst=%v created=%v err=%v", inst, created, err)
	}
}

func TestConcurrentAcquireRelease(t *testing.T) {
	clk := clock.NewAutoVirtual()
	p := NewPool(clk, time.Millisecond)
	key := ChainKey(specFW())

	// Hammer attach/detach of distinct owners; refcounts must balance and
	// every release must find its owner.
	const workers = 24
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		owner := fmt.Sprintf("chain-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, _, err := p.Acquire(key, owner, func() (any, error) { return nil, nil }); err != nil {
					t.Error(err)
					return
				}
				if _, ok := p.Release(key, owner); !ok {
					t.Errorf("release lost owner %s", owner)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Whatever instance generation survives, it must be unreferenced.
	for _, st := range p.Snapshot() {
		if st.Refs != 0 {
			t.Fatalf("leaked refs: %+v", st)
		}
	}
}

func TestReleaseUnknownOwner(t *testing.T) {
	clk := clock.NewAutoVirtual()
	p := NewPool(clk, time.Second)
	key := ChainKey(specFW())
	if _, ok := p.Release(key, "ghost"); ok {
		t.Fatal("release of unknown key succeeded")
	}
	p.Acquire(key, "a", func() (any, error) { return nil, nil })
	if _, ok := p.Release(key, "ghost"); ok {
		t.Fatal("release of unknown owner succeeded")
	}
	if refs, ok := p.Release(key, "a"); !ok || refs != 0 {
		t.Fatalf("release(a) = %d, %v", refs, ok)
	}
	// Double release must not underflow.
	if _, ok := p.Release(key, "a"); ok {
		t.Fatal("double release succeeded")
	}
}

func TestReapAfterGrace(t *testing.T) {
	clk := clock.NewVirtual() // manual: grace must be driven explicitly
	p := NewPool(clk, 10*time.Second)
	key := ChainKey(specFW())
	p.Acquire(key, "a", func() (any, error) { return "res", nil })
	p.Release(key, "a")

	if got := p.Reap(); len(got) != 0 {
		t.Fatalf("reaped %d instances inside grace", len(got))
	}
	clk.Advance(9 * time.Second)
	if got := p.Reap(); len(got) != 0 {
		t.Fatalf("reaped %d instances 1s before grace expiry", len(got))
	}
	clk.Advance(time.Second)
	got := p.Reap()
	if len(got) != 1 || got[0].Payload() != "res" {
		t.Fatalf("reap after grace = %v", got)
	}
	if p.Size() != 0 {
		t.Fatal("reaped instance still in table")
	}
	// A fresh acquire after the reap builds anew.
	_, created, err := p.Acquire(key, "b", func() (any, error) { return "res2", nil })
	if err != nil || !created {
		t.Fatalf("acquire after reap: created=%v err=%v", created, err)
	}
}

func TestReapSparesReattachedInstance(t *testing.T) {
	clk := clock.NewVirtual()
	p := NewPool(clk, 5*time.Second)
	key := ChainKey(specFW())
	inst, _, _ := p.Acquire(key, "a", func() (any, error) { return "warm", nil })
	p.Release(key, "a")

	// Grace fully expires, but the instance is re-acquired before any Reap
	// pass runs: the revived instance must survive.
	clk.Advance(time.Minute)
	again, created, err := p.Acquire(key, "b", func() (any, error) {
		t.Error("reattach rebuilt the instance")
		return nil, nil
	})
	if err != nil || created {
		t.Fatalf("reattach: created=%v err=%v", created, err)
	}
	if again != inst {
		t.Fatal("reattach returned a different instance")
	}
	if got := p.Reap(); len(got) != 0 {
		t.Fatalf("reap killed a just-reattached instance (%d reaped)", len(got))
	}
	if live := p.Get(key); live != inst {
		t.Fatal("instance gone after reap")
	}
}

func TestReapRaceWithAcquire(t *testing.T) {
	clk := clock.NewVirtual()
	p := NewPool(clk, time.Nanosecond) // everything idle is instantly reapable
	key := ChainKey(specFW())

	var builds atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churn: attach, detach
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _, err := p.Acquire(key, "chain-a", func() (any, error) {
				builds.Add(1)
				return nil, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			// An Acquire must never hand back an instance the reaper has
			// removed: its owner entry would be invisible to Release.
			if _, ok := p.Release(key, "chain-a"); !ok {
				t.Error("acquired instance vanished before release (reaped while referenced)")
				return
			}
			if _, _, err := p.Acquire(key, "chain-a", func() (any, error) {
				builds.Add(1)
				return nil, nil
			}); err != nil {
				t.Error(err)
				return
			}
			clk.Advance(time.Microsecond)
			p.Release(key, "chain-a")
		}
	}()
	go func() { // reaper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.Reap()
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if p.Size() > 1 {
		t.Fatalf("pool grew to %d instances of one key", p.Size())
	}
}
