package baseline

import (
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/container"
)

var ctrImage = container.Image{Name: "gnf/firewall:1.0", SizeBytes: 4 << 20, MemoryBytes: 6 << 20, CPUPercent: 2}

func TestVMImageOverheads(t *testing.T) {
	vm := VMImage(ctrImage)
	if vm.Name != "vm/gnf/firewall:1.0" {
		t.Fatalf("name = %q", vm.Name)
	}
	if vm.SizeBytes != ctrImage.SizeBytes*ImageOverheadFactor {
		t.Fatalf("size = %d", vm.SizeBytes)
	}
	if vm.MemoryBytes != ctrImage.MemoryBytes+MemoryOverheadBytes {
		t.Fatalf("memory = %d", vm.MemoryBytes)
	}
	if vm.CPUPercent != ctrImage.CPUPercent+CPUOverheadPercent {
		t.Fatalf("cpu = %v", vm.CPUPercent)
	}
}

func TestVMStartMuchSlowerThanContainer(t *testing.T) {
	clk := clock.NewAutoVirtual()
	src := container.NewRepository(clk, 0, 0)
	src.Push(ctrImage)

	ctrRT := container.NewRuntime("edge-1", clk, src)
	vmRT := NewVMRuntime("edge-1", clk, NewVMRepository(clk, src, 0, 0))

	measure := func(rt *container.Runtime, image string) time.Duration {
		start := clk.Now()
		c, err := rt.Create(container.Config{Name: "nf", Image: image})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := c.Start(); err != nil {
			t.Fatalf("start: %v", err)
		}
		return clk.Since(start)
	}

	ctrTime := measure(ctrRT, ctrImage.Name)
	vmTime := measure(vmRT, "vm/"+ctrImage.Name)
	if vmTime < 50*ctrTime {
		t.Fatalf("VM/container attach ratio = %v/%v — expected >=50x gap", vmTime, ctrTime)
	}
}

func TestVMDensityMuchLowerThanContainer(t *testing.T) {
	clk := clock.NewAutoVirtual()
	src := container.NewRepository(clk, 0, 0)
	src.Push(ctrImage)
	const hostMem = 4 << 30 // 4 GiB edge box

	ctrRT := container.NewRuntime("edge", clk, src, container.WithCapacity(hostMem))
	vmRT := NewVMRuntime("edge", clk, NewVMRepository(clk, src, 0, 0), container.WithCapacity(hostMem))

	count := func(rt *container.Runtime, image string) int {
		n := 0
		for {
			if _, err := rt.Create(container.Config{Image: image}); err != nil {
				return n
			}
			n++
			if n > 100000 {
				t.Fatal("runaway density loop")
			}
		}
	}
	ctrN := count(ctrRT, ctrImage.Name)
	vmN := count(vmRT, "vm/"+ctrImage.Name)
	if ctrN < 100 {
		t.Fatalf("container density = %d, want 'hundreds' per the paper", ctrN)
	}
	if vmN >= ctrN/10 {
		t.Fatalf("vm density %d vs container %d — expected >=10x gap", vmN, ctrN)
	}
}

func TestVMRepositoryMirrorsImages(t *testing.T) {
	clk := clock.NewAutoVirtual()
	src := container.NewRepository(clk, 0, 0)
	src.Push(ctrImage)
	src.Push(container.Image{Name: "gnf/dnslb:1.0", SizeBytes: 2 << 20, MemoryBytes: 3 << 20})
	repo := NewVMRepository(clk, src, 0, 0)
	if len(repo.Images()) != 2 {
		t.Fatalf("mirrored %d images", len(repo.Images()))
	}
	if _, ok := repo.Lookup("vm/gnf/dnslb:1.0"); !ok {
		t.Fatal("vm image missing")
	}
}
