// Package baseline implements the VM-based NFV comparator that the paper
// positions GNF against (§1: frameworks that "utilise commodity x86 servers
// using resource-hungry Virtual Machines"). It reuses the container
// runtime's lifecycle engine with hypervisor-class costs and VM-packaged
// images, so every experiment can run both datapoints through an identical
// API and isolate the container-vs-VM difference to the cost model — which
// is exactly the paper's argument.
package baseline

import (
	"gnf/internal/clock"
	"gnf/internal/container"
)

// ImageOverheadFactor scales a container image's transfer size to its
// VM-packaged equivalent (guest kernel + root filesystem). A 4 MB NF
// container ships as a ~512 MB appliance image.
const ImageOverheadFactor = 128

// MemoryOverheadBytes is the fixed per-instance guest OS footprint.
const MemoryOverheadBytes = 512 << 20

// CPUOverheadPercent is the idle hypervisor+guest overhead per instance.
const CPUOverheadPercent = 5.0

// VMImage converts a container image to its VM-appliance equivalent.
func VMImage(img container.Image) container.Image {
	img.Name = "vm/" + img.Name
	img.SizeBytes *= ImageOverheadFactor
	img.MemoryBytes += MemoryOverheadBytes
	img.CPUPercent += CPUOverheadPercent
	return img
}

// NewVMRepository mirrors every image in src as a VM appliance, served at
// the same link rate.
func NewVMRepository(clk clock.Clock, src *container.Repository, rateBps int64, rtt int64) *Repository {
	repo := container.NewRepository(clk, rateBps, 0)
	for _, img := range src.Images() {
		repo.Push(VMImage(img))
	}
	return &Repository{repo}
}

// Repository wraps a container.Repository holding VM images.
type Repository struct{ *container.Repository }

// NewVMRuntime creates a hypervisor-cost runtime for host pulling VM
// images from repo. Options (e.g. container.WithCapacity) apply after the
// VM cost model, so capacity can still be customised.
func NewVMRuntime(host string, clk clock.Clock, repo *Repository, opts ...container.RuntimeOption) *container.Runtime {
	all := append([]container.RuntimeOption{container.WithCosts(container.VMCosts)}, opts...)
	return container.NewRuntime(host, clk, repo.Repository, all...)
}
