package container

import (
	"errors"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"gnf/internal/clock"
)

var testImage = Image{Name: "gnf/firewall:1.0", SizeBytes: 4 << 20, MemoryBytes: 6 << 20, CPUPercent: 2}

func newTestRuntime(t *testing.T, opts ...RuntimeOption) (*Runtime, *clock.Virtual) {
	t.Helper()
	clk := clock.NewAutoVirtual()
	repo := NewRepository(clk, 100_000_000 /* 100 Mbit/s */, 5*time.Millisecond)
	repo.Push(testImage)
	repo.Push(Image{Name: "gnf/dnslb:1.0", SizeBytes: 2 << 20, MemoryBytes: 3 << 20, CPUPercent: 1})
	return NewRuntime("station-1", clk, repo, opts...), clk
}

func TestRepositoryPullCostsTransferTime(t *testing.T) {
	clk := clock.NewAutoVirtual()
	repo := NewRepository(clk, 100_000_000, 5*time.Millisecond)
	repo.Push(testImage)
	start := clk.Now()
	img, d, err := repo.Pull(testImage.Name)
	if err != nil {
		t.Fatalf("Pull: %v", err)
	}
	// 4 MiB at 100 Mbit/s = ~335ms + 5ms rtt.
	wantTransfer := time.Duration(testImage.SizeBytes*8*int64(time.Second)/100_000_000) + 5*time.Millisecond
	if d != wantTransfer {
		t.Fatalf("pull duration = %v, want %v", d, wantTransfer)
	}
	if got := clk.Since(start); got != wantTransfer {
		t.Fatalf("clock advanced %v, want %v", got, wantTransfer)
	}
	if img.Name != testImage.Name {
		t.Fatalf("image = %+v", img)
	}
	pulls, bytes := repo.PullStats()
	if pulls != 1 || bytes != testImage.SizeBytes {
		t.Fatalf("stats = %d, %d", pulls, bytes)
	}
}

func TestRepositoryUnknownImage(t *testing.T) {
	clk := clock.NewAutoVirtual()
	repo := NewRepository(clk, 0, 0)
	if _, _, err := repo.Pull("nope"); !errors.Is(err, ErrImageUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestRepositoryInjectedFailure(t *testing.T) {
	clk := clock.NewAutoVirtual()
	repo := NewRepository(clk, 0, 0)
	repo.Push(testImage)
	boom := errors.New("repo outage")
	repo.SetFailure(boom)
	if _, _, err := repo.Pull(testImage.Name); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	repo.SetFailure(nil)
	if _, _, err := repo.Pull(testImage.Name); err != nil {
		t.Fatalf("after clearing: %v", err)
	}
}

func TestRepositoryListAndLookup(t *testing.T) {
	clk := clock.NewAutoVirtual()
	repo := NewRepository(clk, 0, 0)
	repo.Push(Image{Name: "b"})
	repo.Push(Image{Name: "a"})
	imgs := repo.Images()
	if len(imgs) != 2 || imgs[0].Name != "a" || imgs[1].Name != "b" {
		t.Fatalf("Images = %+v", imgs)
	}
	if _, ok := repo.Lookup("a"); !ok {
		t.Fatal("Lookup(a) missed")
	}
	if _, ok := repo.Lookup("zzz"); ok {
		t.Fatal("Lookup(zzz) hit")
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	rt, clk := newTestRuntime(t)
	start := clk.Now()
	c, err := rt.Create(Config{Name: "fw0", Image: testImage.Name})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if c.State() != StateCreated {
		t.Fatalf("state = %v", c.State())
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if c.State() != StateRunning {
		t.Fatalf("state = %v", c.State())
	}
	// Cold create+start on virtual time: pull + create + start.
	if el := clk.Since(start); el < ContainerCosts.Create+ContainerCosts.Start {
		t.Fatalf("elapsed %v too small", el)
	}
	if err := c.Pause(); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	if err := c.Unpause(); err != nil {
		t.Fatalf("Unpause: %v", err)
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := c.Remove(); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if c.State() != StateRemoved {
		t.Fatalf("state = %v", c.State())
	}
	if _, ok := rt.Get("fw0"); ok {
		t.Fatal("removed container still listed")
	}
}

func TestInvalidTransitions(t *testing.T) {
	rt, _ := newTestRuntime(t)
	c, _ := rt.Create(Config{Name: "x", Image: testImage.Name})
	if err := c.Stop(); !errors.Is(err, ErrBadState) {
		t.Fatalf("Stop created: %v", err)
	}
	if err := c.Pause(); !errors.Is(err, ErrBadState) {
		t.Fatalf("Pause created: %v", err)
	}
	c.Start()
	if err := c.Start(); !errors.Is(err, ErrBadState) {
		t.Fatalf("double Start: %v", err)
	}
	if err := c.Remove(); !errors.Is(err, ErrBadState) {
		t.Fatalf("Remove running: %v", err)
	}
	c.Stop()
	if err := c.Start(); err != nil {
		t.Fatalf("restart stopped: %v", err)
	}
	c.Stop()
	if err := c.Remove(); err != nil {
		t.Fatalf("Remove stopped: %v", err)
	}
	if err := c.Remove(); err != nil {
		t.Fatalf("Remove removed (should be idempotent): %v", err)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	rt, _ := newTestRuntime(t)
	if _, err := rt.Create(Config{Name: "dup", Image: testImage.Name}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create(Config{Name: "dup", Image: testImage.Name}); !errors.Is(err, ErrNameInUse) {
		t.Fatalf("err = %v", err)
	}
}

func TestAutoNameAssigned(t *testing.T) {
	rt, _ := newTestRuntime(t)
	c, err := rt.Create(Config{Image: testImage.Name})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() == "" || c.ID() == "" {
		t.Fatalf("name=%q id=%q", c.Name(), c.ID())
	}
}

func TestImageCacheWarmVsCold(t *testing.T) {
	rt, clk := newTestRuntime(t)
	_, d1, err := rt.EnsureImage(testImage.Name)
	if err != nil || d1 == 0 {
		t.Fatalf("cold pull: d=%v err=%v", d1, err)
	}
	before := clk.Now()
	_, d2, err := rt.EnsureImage(testImage.Name)
	if err != nil || d2 != 0 {
		t.Fatalf("warm pull: d=%v err=%v", d2, err)
	}
	if clk.Since(before) != 0 {
		t.Fatal("warm pull advanced the clock")
	}
	cold, warm := rt.CacheStats()
	if cold != 1 || warm != 1 {
		t.Fatalf("cache stats = %d cold, %d warm", cold, warm)
	}
	if err := rt.PrefetchImage("gnf/dnslb:1.0"); err != nil {
		t.Fatalf("prefetch: %v", err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	// Capacity fits exactly two instances of the 6 MiB image.
	rt, _ := newTestRuntime(t, WithCapacity(13<<20))
	if _, err := rt.Create(Config{Name: "a", Image: testImage.Name}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create(Config{Name: "b", Image: testImage.Name}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create(Config{Name: "c", Image: testImage.Name}); !errors.Is(err, ErrCapacity) {
		t.Fatalf("third create: %v", err)
	}
	// Removing frees the reservation.
	b, _ := rt.Get("b")
	b.Remove()
	if _, err := rt.Create(Config{Name: "c", Image: testImage.Name}); err != nil {
		t.Fatalf("create after remove: %v", err)
	}
	if rt.Capacity() != 13<<20 {
		t.Fatal("capacity accessor wrong")
	}
}

func TestUsageAggregation(t *testing.T) {
	rt, _ := newTestRuntime(t)
	a, _ := rt.Create(Config{Name: "a", Image: testImage.Name})
	b, _ := rt.Create(Config{Name: "b", Image: testImage.Name, CPUPercent: 10, ExtraMemory: 1 << 20})
	a.Start()
	b.Start()
	u := rt.Usage()
	if u.Containers != 2 {
		t.Fatalf("containers = %d", u.Containers)
	}
	wantMem := 2*testImage.MemoryBytes + 1<<20
	if u.MemoryBytes != wantMem {
		t.Fatalf("mem = %d, want %d", u.MemoryBytes, wantMem)
	}
	if u.CPUPercent != testImage.CPUPercent+10 {
		t.Fatalf("cpu = %v", u.CPUPercent)
	}
	b.Stop()
	if got := rt.Usage(); got.Containers != 1 {
		t.Fatalf("after stop: %+v", got)
	}
	if rt.MemoryInUse() != wantMem { // stopped keeps reservation
		t.Fatalf("reservation = %d", rt.MemoryInUse())
	}
}

type mapState struct {
	data                   []byte
	failExport, failImport bool
}

func (m *mapState) ExportState() ([]byte, error) {
	if m.failExport {
		return nil, errors.New("export boom")
	}
	return m.data, nil
}
func (m *mapState) ImportState(b []byte) error {
	if m.failImport {
		return errors.New("import boom")
	}
	m.data = append([]byte(nil), b...)
	return nil
}

func TestCheckpointRestore(t *testing.T) {
	rt, clk := newTestRuntime(t)
	c, _ := rt.Create(Config{Name: "nat", Image: testImage.Name})
	c.Start()
	src := &mapState{data: make([]byte, 64<<10)}
	for i := range src.data {
		src.data[i] = byte(i)
	}
	c.SetStateHandler(src)
	before := clk.Now()
	data, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if d := clk.Since(before); d != 64*ContainerCosts.CheckpointKB {
		t.Fatalf("checkpoint cost = %v, want %v", d, 64*ContainerCosts.CheckpointKB)
	}
	dst := &mapState{}
	c2, _ := rt.Create(Config{Name: "nat2", Image: testImage.Name})
	c2.SetStateHandler(dst)
	if err := c2.Restore(data); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if len(dst.data) != len(src.data) || dst.data[1000] != src.data[1000] {
		t.Fatal("state corrupted in transfer")
	}
}

func TestCheckpointErrors(t *testing.T) {
	rt, _ := newTestRuntime(t)
	c, _ := rt.Create(Config{Name: "x", Image: testImage.Name})
	if _, err := c.Checkpoint(); !errors.Is(err, ErrBadState) {
		t.Fatalf("checkpoint created: %v", err)
	}
	c.Start()
	if _, err := c.Checkpoint(); !errors.Is(err, ErrNoStateHandler) {
		t.Fatalf("checkpoint without handler: %v", err)
	}
	c.SetStateHandler(&mapState{failExport: true})
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("export failure swallowed")
	}
	c.SetStateHandler(&mapState{failImport: true})
	if err := c.Restore(nil); err == nil {
		t.Fatal("restore with failing import succeeded")
	}
	c.SetStateHandler(nil)
	if err := c.Restore(nil); !errors.Is(err, ErrNoStateHandler) {
		t.Fatalf("restore without handler: %v", err)
	}
}

func TestEventsEmitted(t *testing.T) {
	rt, _ := newTestRuntime(t)
	c, _ := rt.Create(Config{Name: "ev", Image: testImage.Name})
	c.Start()
	c.Stop()
	c.Remove()
	want := []EventType{EventPulled, EventCreated, EventStarted, EventStopped, EventRemoved}
	for _, w := range want {
		select {
		case ev := <-rt.Events():
			if ev.Type != w {
				t.Fatalf("event = %v, want %v", ev.Type, w)
			}
		default:
			t.Fatalf("missing event %v", w)
		}
	}
	if rt.EventsDropped() != 0 {
		t.Fatal("events dropped unexpectedly")
	}
}

func TestEventOverflowDropsNotBlocks(t *testing.T) {
	rt, _ := newTestRuntime(t)
	for i := 0; i < 300; i++ { // buffer is 256
		rt.emit(EventCreated, "x", "y")
	}
	if rt.EventsDropped() == 0 {
		t.Fatal("no drops counted after overflow")
	}
}

// Property: for any sequence of create/remove operations, memory in use is
// exactly footprint * live containers.
func TestMemoryAccountingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		rt, _ := newTestRuntime(t)
		var live []*Container
		n := 0
		for _, create := range ops {
			if create || len(live) == 0 {
				n++
				c, err := rt.Create(Config{Name: "c" + strconv.Itoa(n), Image: testImage.Name})
				if err != nil {
					return false
				}
				live = append(live, c)
			} else {
				c := live[len(live)-1]
				live = live[:len(live)-1]
				if err := c.Remove(); err != nil {
					return false
				}
			}
		}
		return rt.MemoryInUse() == uint64(len(live))*testImage.MemoryBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
