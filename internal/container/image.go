// Package container implements the lightweight container runtime that GNF
// stations run NFs in (§2 of the paper). It is a from-scratch simulation of
// the Linux-container substrate the authors used: images pulled from a
// central repository, millisecond-class create/start/stop lifecycle,
// checkpoint/restore of application state, and per-container resource
// accounting against a host capacity.
//
// The runtime models *costs* rather than executing kernel namespaces: every
// delay (image transfer, boot, checkpoint) is taken on an injected
// clock.Clock, so experiments measuring instantiation latency, density and
// migration downtime exercise the same control flow as the real system with
// deterministic, configurable numbers. The cost defaults follow the
// container-vs-VM gap reported for LXC-class runtimes (tens of
// milliseconds) and are overridable per runtime.
package container

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gnf/internal/clock"
)

// Errors returned by the repository and runtime.
var (
	ErrImageUnknown    = errors.New("container: image unknown")
	ErrNoSuchContainer = errors.New("container: no such container")
	ErrBadState        = errors.New("container: operation invalid in current state")
	ErrCapacity        = errors.New("container: host memory capacity exceeded")
	ErrNameInUse       = errors.New("container: name already in use")
	ErrNoStateHandler  = errors.New("container: no state handler installed")
	ErrNoDeltaHandler  = errors.New("container: state handler does not support deltas")
)

// Image describes an NF image in the central repository.
type Image struct {
	Name string `json:"name"` // e.g. "gnf/firewall:1.0"
	// SizeBytes is the transfer size on pull (compressed image).
	SizeBytes int64 `json:"size_bytes"`
	// MemoryBytes is the resident footprint of a running instance.
	MemoryBytes uint64 `json:"memory_bytes"`
	// CPUPercent is the idle-state CPU share of a running instance.
	CPUPercent float64 `json:"cpu_percent"`
}

// Repository is the central NF store (§3: the Agent "retrieves (if not
// already hosted locally) the NF from a central repository"). Pulls cost
// transfer time at the repository's link rate on the injected clock.
type Repository struct {
	clk     clock.Clock
	rateBps int64 // download rate; 0 = instantaneous
	rtt     time.Duration

	mu     sync.RWMutex
	images map[string]Image
	pulls  int
	bytes  int64
	fail   error // injected fault: non-nil fails all pulls
}

// NewRepository creates a repository serving pulls at rateBps with the
// given round-trip setup latency.
func NewRepository(clk clock.Clock, rateBps int64, rtt time.Duration) *Repository {
	return &Repository{clk: clk, rateBps: rateBps, rtt: rtt, images: make(map[string]Image)}
}

// Push registers (or replaces) an image.
func (r *Repository) Push(img Image) {
	r.mu.Lock()
	r.images[img.Name] = img
	r.mu.Unlock()
}

// Lookup returns image metadata without transferring it.
func (r *Repository) Lookup(name string) (Image, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	img, ok := r.images[name]
	return img, ok
}

// Images lists registered images sorted by name.
func (r *Repository) Images() []Image {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Image, 0, len(r.images))
	for _, img := range r.images {
		out = append(out, img)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetFailure injects a pull fault (nil clears it). Tests use it to model a
// repository outage.
func (r *Repository) SetFailure(err error) {
	r.mu.Lock()
	r.fail = err
	r.mu.Unlock()
}

// Pull transfers an image, costing rtt + size/rate of clock time. It
// returns the image and the modeled transfer duration.
func (r *Repository) Pull(name string) (Image, time.Duration, error) {
	r.mu.Lock()
	if r.fail != nil {
		err := r.fail
		r.mu.Unlock()
		return Image{}, 0, err
	}
	img, ok := r.images[name]
	if ok {
		r.pulls++
		r.bytes += img.SizeBytes
	}
	r.mu.Unlock()
	if !ok {
		return Image{}, 0, fmt.Errorf("%w: %s", ErrImageUnknown, name)
	}
	d := r.rtt
	if r.rateBps > 0 {
		d += time.Duration(img.SizeBytes * 8 * int64(time.Second) / r.rateBps)
	}
	if d > 0 {
		r.clk.Sleep(d)
	}
	return img, d, nil
}

// PullStats reports cumulative pull count and bytes served.
func (r *Repository) PullStats() (pulls int, bytes int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.pulls, r.bytes
}
