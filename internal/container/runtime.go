package container

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gnf/internal/clock"
	"gnf/internal/metrics"
)

// State is a container lifecycle state.
type State uint8

// Container lifecycle states.
const (
	StateCreated State = iota
	StateRunning
	StatePaused
	StateStopped
	StateRemoved
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateStopped:
		return "stopped"
	case StateRemoved:
		return "removed"
	default:
		return fmt.Sprintf("state-%d", uint8(s))
	}
}

// CostModel parameterises lifecycle latencies. Per-KB costs apply to
// checkpoint/restore of exported state.
type CostModel struct {
	Create       time.Duration
	Start        time.Duration
	Stop         time.Duration
	Pause        time.Duration
	CheckpointKB time.Duration // per KiB of exported state
	RestoreKB    time.Duration // per KiB of imported state
}

// ContainerCosts is the default LXC-class cost model (tens of ms), matching
// the paper's "minimal cost of starting and stopping containers".
var ContainerCosts = CostModel{
	Create:       10 * time.Millisecond,
	Start:        110 * time.Millisecond,
	Stop:         25 * time.Millisecond,
	Pause:        5 * time.Millisecond,
	CheckpointKB: 40 * time.Microsecond,
	RestoreKB:    60 * time.Microsecond,
}

// VMCosts is the VM-class cost model used by the baseline comparator
// (hypervisor boot measured in tens of seconds).
var VMCosts = CostModel{
	Create:       2 * time.Second,
	Start:        25 * time.Second,
	Stop:         4 * time.Second,
	Pause:        200 * time.Millisecond,
	CheckpointKB: 40 * time.Microsecond,
	RestoreKB:    60 * time.Microsecond,
}

// StateHandler lets the application running inside a container export and
// import its state for checkpoint/restore-based migration.
type StateHandler interface {
	ExportState() ([]byte, error)
	ImportState([]byte) error
}

// DeltaStateHandler extends StateHandler with epoch-versioned incremental
// export/import, the substrate of pre-copy live migration: every round
// ships only the state dirtied since the previous round's epoch vector
// (one epoch per chain member; nil = full export).
type DeltaStateHandler interface {
	StateHandler
	ExportStateDelta(since []uint64) (delta []byte, epochs []uint64, err error)
	ImportStateDelta(delta []byte) error
}

// Config describes a container to create.
type Config struct {
	Name  string // unique per runtime
	Image string // must be pullable from the repository
	// CPUPercent overrides the image's idle CPU share when non-zero.
	CPUPercent float64
	// ExtraMemory adds to the image footprint (e.g. expected table sizes).
	ExtraMemory uint64
}

// Container is one NF instance. All methods are safe for concurrent use.
type Container struct {
	id   string
	cfg  Config
	img  Image
	rt   *Runtime
	born time.Time

	mu      sync.Mutex
	state   State
	handler StateHandler
}

// EventType classifies lifecycle events.
type EventType string

// Lifecycle event types.
const (
	EventCreated    EventType = "created"
	EventStarted    EventType = "started"
	EventStopped    EventType = "stopped"
	EventPaused     EventType = "paused"
	EventUnpaused   EventType = "unpaused"
	EventRemoved    EventType = "removed"
	EventPulled     EventType = "pulled"
	EventCheckpoint EventType = "checkpointed"
	EventRestored   EventType = "restored"
)

// Event is a runtime lifecycle notification.
type Event struct {
	Type      EventType `json:"type"`
	Container string    `json:"container"`
	Image     string    `json:"image,omitempty"`
	At        time.Time `json:"at"`
}

// Runtime is the per-station container engine.
type Runtime struct {
	host  string
	clk   clock.Clock
	repo  *Repository
	costs CostModel
	// MemoryCapacity bounds the sum of running containers' footprints;
	// 0 means unlimited.
	capacity uint64

	mu         sync.Mutex
	cache      map[string]Image
	containers map[string]*Container
	nextID     int
	memInUse   uint64

	events    chan Event
	dropped   metrics.Counter
	pullsCold metrics.Counter
	pullsWarm metrics.Counter
}

// RuntimeOption configures NewRuntime.
type RuntimeOption func(*Runtime)

// WithCosts overrides the lifecycle cost model.
func WithCosts(c CostModel) RuntimeOption { return func(r *Runtime) { r.costs = c } }

// WithCapacity bounds host memory available to containers.
func WithCapacity(bytes uint64) RuntimeOption { return func(r *Runtime) { r.capacity = bytes } }

// NewRuntime creates a runtime for the named host pulling from repo.
func NewRuntime(host string, clk clock.Clock, repo *Repository, opts ...RuntimeOption) *Runtime {
	r := &Runtime{
		host:       host,
		clk:        clk,
		repo:       repo,
		costs:      ContainerCosts,
		cache:      make(map[string]Image),
		containers: make(map[string]*Container),
		events:     make(chan Event, 256),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Host returns the host name this runtime serves.
func (r *Runtime) Host() string { return r.host }

// Events returns the lifecycle event stream. Events are dropped (and
// counted) when the buffer is full, never blocking the runtime.
func (r *Runtime) Events() <-chan Event { return r.events }

// EventsDropped reports how many events were lost to a full buffer.
func (r *Runtime) EventsDropped() uint64 { return r.dropped.Value() }

func (r *Runtime) emit(t EventType, ctr, image string) {
	select {
	case r.events <- Event{Type: t, Container: ctr, Image: image, At: r.clk.Now()}:
	default:
		r.dropped.Inc()
	}
}

// EnsureImage makes the image locally available, pulling on cache miss.
// It returns the modeled fetch duration (zero on warm cache).
func (r *Runtime) EnsureImage(name string) (Image, time.Duration, error) {
	r.mu.Lock()
	img, ok := r.cache[name]
	r.mu.Unlock()
	if ok {
		r.pullsWarm.Inc()
		return img, 0, nil
	}
	img, d, err := r.repo.Pull(name)
	if err != nil {
		return Image{}, 0, err
	}
	r.pullsCold.Inc()
	r.mu.Lock()
	r.cache[name] = img
	r.mu.Unlock()
	r.emit(EventPulled, "", name)
	return img, d, nil
}

// CacheStats reports cold and warm image fetches.
func (r *Runtime) CacheStats() (cold, warm uint64) {
	return r.pullsCold.Value(), r.pullsWarm.Value()
}

// PrefetchImage warms the cache without creating a container.
func (r *Runtime) PrefetchImage(name string) error {
	_, _, err := r.EnsureImage(name)
	return err
}

// Create allocates a container (pulling its image if needed) and charges
// its memory footprint against capacity.
func (r *Runtime) Create(cfg Config) (*Container, error) {
	img, _, err := r.EnsureImage(cfg.Image)
	if err != nil {
		return nil, err
	}
	need := img.MemoryBytes + cfg.ExtraMemory
	r.mu.Lock()
	if _, exists := r.containers[cfg.Name]; exists && cfg.Name != "" {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNameInUse, cfg.Name)
	}
	if r.capacity > 0 && r.memInUse+need > r.capacity {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: need %d, in use %d of %d", ErrCapacity, need, r.memInUse, r.capacity)
	}
	r.nextID++
	id := fmt.Sprintf("%s/ctr-%d", r.host, r.nextID)
	if cfg.Name == "" {
		cfg.Name = id
	}
	c := &Container{id: id, cfg: cfg, img: img, rt: r, state: StateCreated, born: r.clk.Now()}
	r.containers[cfg.Name] = c
	r.memInUse += need
	r.mu.Unlock()

	r.clk.Sleep(r.costs.Create)
	r.emit(EventCreated, cfg.Name, cfg.Image)
	return c, nil
}

// Get looks a container up by name.
func (r *Runtime) Get(name string) (*Container, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.containers[name]
	return c, ok
}

// List returns containers sorted by name.
func (r *Runtime) List() []*Container {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Container, 0, len(r.containers))
	for _, c := range r.containers {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].cfg.Name < out[j].cfg.Name })
	return out
}

// Usage sums resource usage over non-removed containers.
func (r *Runtime) Usage() metrics.ResourceUsage {
	var u metrics.ResourceUsage
	for _, c := range r.List() {
		st := c.State()
		if st == StateRunning || st == StatePaused {
			u.MemoryBytes += c.MemoryBytes()
			u.CPUPercent += c.CPUPercent()
			u.Containers++
		}
	}
	return u
}

// MemoryInUse returns reserved container memory (including created and
// stopped containers, which hold their reservation until removed).
func (r *Runtime) MemoryInUse() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.memInUse
}

// Capacity returns the configured memory capacity (0 = unlimited).
func (r *Runtime) Capacity() uint64 { return r.capacity }

// --- Container methods ---

// ID returns the runtime-assigned container ID.
func (c *Container) ID() string { return c.id }

// Name returns the user-assigned name.
func (c *Container) Name() string { return c.cfg.Name }

// Image returns the image the container was created from.
func (c *Container) Image() Image { return c.img }

// State returns the current lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// MemoryBytes is the container's resident footprint.
func (c *Container) MemoryBytes() uint64 { return c.img.MemoryBytes + c.cfg.ExtraMemory }

// CPUPercent is the container's CPU share.
func (c *Container) CPUPercent() float64 {
	if c.cfg.CPUPercent > 0 {
		return c.cfg.CPUPercent
	}
	return c.img.CPUPercent
}

// SetStateHandler installs the checkpoint/restore hook for the application
// inside the container.
func (c *Container) SetStateHandler(h StateHandler) {
	c.mu.Lock()
	c.handler = h
	c.mu.Unlock()
}

func (c *Container) transition(from []State, to State, cost time.Duration, ev EventType) error {
	c.mu.Lock()
	okFrom := false
	for _, s := range from {
		if c.state == s {
			okFrom = true
			break
		}
	}
	if !okFrom {
		st := c.state
		c.mu.Unlock()
		return fmt.Errorf("%w: %s (%s -> %s)", ErrBadState, c.cfg.Name, st, to)
	}
	c.state = to
	c.mu.Unlock()
	if cost > 0 {
		c.rt.clk.Sleep(cost)
	}
	c.rt.emit(ev, c.cfg.Name, c.img.Name)
	return nil
}

// Start boots the container.
func (c *Container) Start() error {
	return c.transition([]State{StateCreated, StateStopped}, StateRunning, c.rt.costs.Start, EventStarted)
}

// Stop halts the container, keeping its memory reservation until Remove.
func (c *Container) Stop() error {
	return c.transition([]State{StateRunning, StatePaused}, StateStopped, c.rt.costs.Stop, EventStopped)
}

// Pause freezes a running container.
func (c *Container) Pause() error {
	return c.transition([]State{StateRunning}, StatePaused, c.rt.costs.Pause, EventPaused)
}

// Unpause resumes a paused container.
func (c *Container) Unpause() error {
	return c.transition([]State{StatePaused}, StateRunning, c.rt.costs.Pause, EventUnpaused)
}

// Remove deletes the container and releases its memory reservation.
func (c *Container) Remove() error {
	c.mu.Lock()
	if c.state == StateRunning || c.state == StatePaused {
		st := c.state
		c.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrBadState, c.cfg.Name, st)
	}
	if c.state == StateRemoved {
		c.mu.Unlock()
		return nil
	}
	c.state = StateRemoved
	c.mu.Unlock()

	c.rt.mu.Lock()
	delete(c.rt.containers, c.cfg.Name)
	c.rt.memInUse -= c.MemoryBytes()
	c.rt.mu.Unlock()
	c.rt.emit(EventRemoved, c.cfg.Name, c.img.Name)
	return nil
}

// Checkpoint exports the application state (requires a StateHandler). The
// container must be running or paused; cost scales with state size.
func (c *Container) Checkpoint() ([]byte, error) {
	c.mu.Lock()
	h := c.handler
	st := c.state
	c.mu.Unlock()
	if st != StateRunning && st != StatePaused {
		return nil, fmt.Errorf("%w: checkpoint of %s container", ErrBadState, st)
	}
	if h == nil {
		return nil, ErrNoStateHandler
	}
	data, err := h.ExportState()
	if err != nil {
		return nil, err
	}
	kb := (len(data) + 1023) / 1024
	c.rt.clk.Sleep(time.Duration(kb) * c.rt.costs.CheckpointKB)
	c.rt.emit(EventCheckpoint, c.cfg.Name, c.img.Name)
	return data, nil
}

// CheckpointDelta exports only the application state dirtied since the
// epoch vector of a previous export (nil = full, starting the sequence).
// The modeled cost scales with the *delta* size — the whole point of
// pre-copy migration: the expensive full export happens while the source
// still serves, and the frozen residual round pays only for what changed.
func (c *Container) CheckpointDelta(since []uint64) ([]byte, []uint64, error) {
	c.mu.Lock()
	h := c.handler
	st := c.state
	c.mu.Unlock()
	if st != StateRunning && st != StatePaused {
		return nil, nil, fmt.Errorf("%w: checkpoint of %s container", ErrBadState, st)
	}
	if h == nil {
		return nil, nil, ErrNoStateHandler
	}
	dh, ok := h.(DeltaStateHandler)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoDeltaHandler, c.cfg.Name)
	}
	data, epochs, err := dh.ExportStateDelta(since)
	if err != nil {
		return nil, nil, err
	}
	kb := (len(data) + 1023) / 1024
	c.rt.clk.Sleep(time.Duration(kb) * c.rt.costs.CheckpointKB)
	c.rt.emit(EventCheckpoint, c.cfg.Name, c.img.Name)
	return data, epochs, nil
}

// Restore imports previously checkpointed state into the container.
func (c *Container) Restore(data []byte) error {
	c.mu.Lock()
	h := c.handler
	c.mu.Unlock()
	if h == nil {
		return ErrNoStateHandler
	}
	if err := h.ImportState(data); err != nil {
		return err
	}
	kb := (len(data) + 1023) / 1024
	c.rt.clk.Sleep(time.Duration(kb) * c.rt.costs.RestoreKB)
	c.rt.emit(EventRestored, c.cfg.Name, c.img.Name)
	return nil
}

// RestoreDelta merges a delta produced by CheckpointDelta into the
// container's application state; the modeled cost scales with the delta
// size.
func (c *Container) RestoreDelta(data []byte) error {
	c.mu.Lock()
	h := c.handler
	c.mu.Unlock()
	if h == nil {
		return ErrNoStateHandler
	}
	dh, ok := h.(DeltaStateHandler)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoDeltaHandler, c.cfg.Name)
	}
	if err := dh.ImportStateDelta(data); err != nil {
		return err
	}
	kb := (len(data) + 1023) / 1024
	c.rt.clk.Sleep(time.Duration(kb) * c.rt.costs.RestoreKB)
	c.rt.emit(EventRestored, c.cfg.Name, c.img.Name)
	return nil
}
