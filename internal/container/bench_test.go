package container

import (
	"strconv"
	"testing"

	"gnf/internal/clock"
)

func BenchmarkCreateStartStopRemove(b *testing.B) {
	clk := clock.NewAutoVirtual()
	repo := NewRepository(clk, 0, 0)
	repo.Push(testImage)
	rt := NewRuntime("bench", clk, repo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := rt.Create(Config{Name: "c" + strconv.Itoa(i), Image: testImage.Name})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Start(); err != nil {
			b.Fatal(err)
		}
		if err := c.Stop(); err != nil {
			b.Fatal(err)
		}
		if err := c.Remove(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpoint64KB(b *testing.B) {
	clk := clock.NewAutoVirtual()
	repo := NewRepository(clk, 0, 0)
	repo.Push(testImage)
	rt := NewRuntime("bench", clk, repo)
	c, err := rt.Create(Config{Name: "ck", Image: testImage.Name})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	c.SetStateHandler(&mapState{data: make([]byte, 64<<10)})
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}
