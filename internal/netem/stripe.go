package netem

import "sync/atomic"

// counterStripes is the cell count of a stripedCounter (power of two).
const counterStripes = 16

// stripedCounter spreads hot-path increments across cache-line-padded
// cells so concurrent ports don't serialise on one counter line — a
// shared atomic.Uint64 becomes the scaling bottleneck of the forwarding
// pipeline once the table mutex is gone. Reads sum the cells; they are
// monotonic but not a point-in-time snapshot, which is all a statistics
// counter needs.
type stripedCounter struct {
	cells [counterStripes]counterCell
}

type counterCell struct {
	n atomic.Uint64
	// Pad past a full cache line (the array is not guaranteed to start
	// line-aligned, and adjacent-line prefetchers pair lines).
	_ [120]byte
}

// Inc increments the cell selected by stripe (callers pass something
// stable per concurrent context, e.g. the arrival port) and returns the
// cell's new value, so per-frame consumers like the sampler can reuse
// the increment the pipeline already pays for.
func (c *stripedCounter) Inc(stripe uint) uint64 {
	return c.cells[stripe&(counterStripes-1)].n.Add(1)
}

// Cell returns one stripe's current value (for seeding thresholds that
// trigger off Inc's return).
func (c *stripedCounter) Cell(stripe uint) uint64 {
	return c.cells[stripe&(counterStripes-1)].n.Load()
}

// Load returns the sum of all cells.
func (c *stripedCounter) Load() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}
