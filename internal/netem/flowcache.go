package netem

import (
	"sync"

	"gnf/internal/packet"
)

// Flow cache sizing. Shard count is a power of two (mask selection);
// flowCacheShardCap bounds each shard's map, so total cache memory is
// O(flowCacheShards * flowCacheShardCap) regardless of how many distinct
// flows pass through.
const (
	flowCacheShards   = 16
	flowCacheShardCap = 2048
)

// flowCacheKey identifies a cached steering verdict: the arrival port plus
// everything a Match can inspect (packet.FlowKey). Equal keys are
// indistinguishable to the rule table, so caching per key is sound.
type flowCacheKey struct {
	in PortID
	fk packet.FlowKey
}

// flowCacheEntry is one cached verdict, stamped with the control-plane
// generation it was computed against. Any table mutation bumps the
// switch's generation, which invalidates every older entry at lookup time
// — there is no eager flush, stale entries simply stop matching.
type flowCacheEntry struct {
	gen    uint64
	action Action
	out    PortID
}

// flowCache is a bounded, sharded verdict cache. Hits take one shard read
// lock and one map probe — no rule scan, no table mutex. Eviction is by
// epoch: a shard that reaches capacity is wiped and repopulated by the
// traffic that still flows, which is O(1) amortised and keeps the hot
// working set resident.
type flowCache struct {
	shards [flowCacheShards]flowCacheShard
}

type flowCacheShard struct {
	mu sync.RWMutex
	m  map[flowCacheKey]flowCacheEntry
	// Pad shards apart (see fdbShard): adjacent reader locks must not
	// share a cache line.
	_ [96]byte
}

func newFlowCache() *flowCache {
	c := &flowCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[flowCacheKey]flowCacheEntry)
	}
	return c
}

// shard picks a shard by the key's full-avalanche hash (folding in the
// arrival port), so flows differing in any field spread instead of
// piling onto one shard's lock.
func (c *flowCache) shard(k flowCacheKey) *flowCacheShard {
	h := k.fk.Hash() ^ uint64(k.in)*0x9e3779b97f4a7c15
	return &c.shards[h&(flowCacheShards-1)]
}

// lookup returns the cached verdict for k if it was computed against
// generation gen.
func (c *flowCache) lookup(k flowCacheKey, gen uint64) (Action, PortID, bool) {
	s := c.shard(k)
	s.mu.RLock()
	e, ok := s.m[k]
	s.mu.RUnlock()
	if !ok || e.gen != gen {
		return ActionNormal, 0, false
	}
	return e.action, e.out, true
}

// insert records a verdict computed against generation gen.
func (c *flowCache) insert(k flowCacheKey, gen uint64, a Action, out PortID) {
	s := c.shard(k)
	s.mu.Lock()
	if len(s.m) >= flowCacheShardCap {
		s.m = make(map[flowCacheKey]flowCacheEntry, flowCacheShardCap/4)
	}
	s.m[k] = flowCacheEntry{gen: gen, action: a, out: out}
	s.mu.Unlock()
}

func (c *flowCache) size() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
