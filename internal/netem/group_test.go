package netem

import (
	"sync"
	"testing"
	"time"

	"gnf/internal/packet"
)

// groupHarness wires one ingress port and n capture ports into a switch,
// with a single ActionGroup rule steering everything from the ingress into
// the select group.
type groupHarness struct {
	sw      *Switch
	in      *Endpoint
	group   int
	ports   []PortID
	mu      sync.Mutex
	perPort map[PortID]int
	perFlow map[uint16]PortID // src port -> member that saw it
	multi   bool              // one flow seen on several members
}

func newGroupHarness(t *testing.T, members int) *groupHarness {
	t.Helper()
	h := &groupHarness{
		sw:      NewSwitch("pool"),
		perPort: make(map[PortID]int),
		perFlow: make(map[uint16]PortID),
	}
	inA, inB := NewVethPair("cl", "cl-sw")
	h.in = inA
	h.sw.Attach(1, inB)
	for i := 0; i < members; i++ {
		port := PortID(100 + i)
		h.ports = append(h.ports, port)
		a, b := NewVethPair("rep", "rep-sw")
		h.sw.AttachService(port, b)
		a.SetReceiver(func(frame []byte) {
			p := packet.BorrowParser()
			defer packet.ReturnParser(p)
			if err := p.Parse(frame); err != nil {
				return
			}
			h.mu.Lock()
			h.perPort[port]++
			if prev, seen := h.perFlow[p.UDP.SrcPort]; seen && prev != port {
				h.multi = true
			}
			h.perFlow[p.UDP.SrcPort] = port
			h.mu.Unlock()
		})
	}
	h.group = h.sw.AddGroup(h.ports)
	in := PortID(1)
	h.sw.AddRule(Rule{
		Priority: 100,
		Match:    Match{InPort: &in},
		Action:   ActionGroup,
		Group:    h.group,
	})
	return h
}

func (h *groupHarness) send(t *testing.T, flows, framesPerFlow int) {
	t.Helper()
	src := packet.MAC{2, 0, 0, 0, 0, 1}
	dst := packet.MAC{2, 0, 0, 0, 0, 2}
	for f := 0; f < flows; f++ {
		for n := 0; n < framesPerFlow; n++ {
			frame := packet.BuildUDP(src, dst,
				packet.IP{10, 0, 0, 1}, packet.IP{10, 9, 9, 9},
				uint16(20000+f), 7, []byte("x"))
			if err := h.in.Send(frame); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func (h *groupHarness) totals() (total int, used int, multi bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, n := range h.perPort {
		total += n
		if n > 0 {
			used++
		}
	}
	return total, used, h.multi
}

func waitTotal(t *testing.T, h *groupHarness, want int) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if total, _, _ := h.totals(); total >= want {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	total, _, _ := h.totals()
	t.Fatalf("delivered %d of %d frames", total, want)
}

func TestGroupSteeringSpreadsFlowsStickily(t *testing.T) {
	h := newGroupHarness(t, 3)
	const flows, per = 64, 5
	h.send(t, flows, per)
	waitTotal(t, h, flows*per)

	total, used, multi := h.totals()
	if total != flows*per {
		t.Fatalf("total = %d, want %d", total, flows*per)
	}
	if used != 3 {
		t.Fatalf("flows hashed onto %d of 3 members", used)
	}
	if multi {
		t.Fatal("a single flow was split across members")
	}
}

func TestGroupMembershipChangeRehashes(t *testing.T) {
	h := newGroupHarness(t, 2)
	const flows, per = 48, 2
	h.send(t, flows, per)
	waitTotal(t, h, flows*per)

	// Drain the second member: all flows must land on member 0 afterwards,
	// proving cached verdicts were invalidated by the membership change.
	if !h.sw.SetGroup(h.group, h.ports[:1]) {
		t.Fatal("SetGroup failed")
	}
	h.mu.Lock()
	h.perPort = make(map[PortID]int)
	h.perFlow = make(map[uint16]PortID)
	h.multi = false
	h.mu.Unlock()

	h.send(t, flows, per)
	waitTotal(t, h, flows*per)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.perPort[h.ports[1]] != 0 {
		t.Fatalf("drained member still received %d frames", h.perPort[h.ports[1]])
	}
	if h.perPort[h.ports[0]] != flows*per {
		t.Fatalf("surviving member saw %d of %d", h.perPort[h.ports[0]], flows*per)
	}
}

func TestGroupMissDrops(t *testing.T) {
	h := newGroupHarness(t, 1)
	if !h.sw.RemoveGroup(h.group) {
		t.Fatal("RemoveGroup failed")
	}
	before := h.sw.Stats().Dropped
	h.send(t, 4, 1)
	for i := 0; i < 5000; i++ {
		if h.sw.Stats().Dropped >= before+4 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := h.sw.Stats().Dropped; got < before+4 {
		t.Fatalf("dropped = %d, want >= %d", got, before+4)
	}
	if total, _, _ := h.totals(); total != 0 {
		t.Fatalf("%d frames leaked through a removed group", total)
	}
}
