package netem

import (
	"sync"
	"sync/atomic"
)

// FrameBuffer is a bounded FIFO frame queue — the brownout buffer a chain
// host arms while it is disabled for a migration: frames that would
// otherwise be dropped during the freeze window are parked here and
// replayed, in arrival order, once the target side activates. Tag carries
// caller-defined per-frame context (the chain host stores the traversal
// direction there).
type FrameBuffer struct {
	mu       sync.Mutex
	limit    int
	frames   []BufferedFrame
	overflow atomic.Uint64
}

// BufferedFrame is one parked frame plus its caller-defined tag.
type BufferedFrame struct {
	Tag   uint8
	Frame []byte
}

// NewFrameBuffer creates a buffer holding at most limit frames; limit < 1
// is raised to 1.
func NewFrameBuffer(limit int) *FrameBuffer {
	if limit < 1 {
		limit = 1
	}
	return &FrameBuffer{limit: limit}
}

// Push parks a frame. It reports false — and counts the overflow — when
// the buffer is full; the frame is then lost, exactly as a tail-dropping
// queue would lose it.
func (b *FrameBuffer) Push(tag uint8, frame []byte) bool {
	b.mu.Lock()
	if len(b.frames) >= b.limit {
		b.mu.Unlock()
		b.overflow.Add(1)
		return false
	}
	b.frames = append(b.frames, BufferedFrame{Tag: tag, Frame: frame})
	b.mu.Unlock()
	return true
}

// Drain removes and returns every parked frame in arrival order.
func (b *FrameBuffer) Drain() []BufferedFrame {
	b.mu.Lock()
	out := b.frames
	b.frames = nil
	b.mu.Unlock()
	return out
}

// Len reports the number of parked frames.
func (b *FrameBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}

// Overflow reports how many frames were refused because the buffer was
// full.
func (b *FrameBuffer) Overflow() uint64 { return b.overflow.Load() }
