package netem

import "sync"

// frameRing is the per-direction transmit queue of an Endpoint: a bounded
// circular buffer of frames with tail-drop on overflow. It replaces the
// old buffered channel so the delivery goroutine can pop a whole batch
// under one lock — the entry point of the batched dataplane — while Send
// keeps its never-blocks contract.
type frameRing struct {
	mu   sync.Mutex
	buf  [][]byte
	head int // index of the oldest frame
	n    int // occupied slots

	// notEmpty carries a level-triggered "frames available" signal to the
	// delivery goroutine; capacity 1, collapsing any number of pushes into
	// one wakeup.
	notEmpty chan struct{}
}

func newFrameRing(capacity int) *frameRing {
	return &frameRing{
		buf:      make([][]byte, capacity),
		notEmpty: make(chan struct{}, 1),
	}
}

// push appends one frame; it reports false when the ring is full
// (tail-drop).
func (r *frameRing) push(f []byte) bool {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.mu.Unlock()
		return false
	}
	r.buf[(r.head+r.n)%len(r.buf)] = f
	r.n++
	r.mu.Unlock()
	r.signal()
	return true
}

// pushBatch appends frames under one lock acquisition and returns how many
// fit; the remainder is the caller's to drop.
func (r *frameRing) pushBatch(frames [][]byte) int {
	r.mu.Lock()
	pushed := 0
	for _, f := range frames {
		if r.n == len(r.buf) {
			break
		}
		r.buf[(r.head+r.n)%len(r.buf)] = f
		r.n++
		pushed++
	}
	r.mu.Unlock()
	if pushed > 0 {
		r.signal()
	}
	return pushed
}

func (r *frameRing) signal() {
	select {
	case r.notEmpty <- struct{}{}:
	default:
	}
}

// popBatch moves up to cap(dst) frames into dst (oldest first) and returns
// the filled prefix. It clears vacated slots so the ring never pins frame
// buffers past delivery.
func (r *frameRing) popBatch(dst [][]byte) [][]byte {
	dst = dst[:0]
	r.mu.Lock()
	for r.n > 0 && len(dst) < cap(dst) {
		dst = append(dst, r.buf[r.head])
		r.buf[r.head] = nil
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
	r.mu.Unlock()
	return dst
}

// wait returns the wakeup channel; receive from it when popBatch came back
// empty. The signal is level-ish: a push racing the empty pop leaves a
// token behind, so the sleeper always wakes.
func (r *frameRing) wait() <-chan struct{} { return r.notEmpty }

func (r *frameRing) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
