package netem

import (
	"sync"

	"gnf/internal/packet"
)

// fdbShards is the shard count of the dynamic forwarding database. MAC
// learning is a per-frame write, so it lives outside the copy-on-write
// control-plane snapshot; sharding keeps concurrent ports from contending
// on one lock. Power of two so shard selection is a mask.
const fdbShards = 32

// fdbTable is the dynamic (learned) MAC table. Sticky "pinned" entries
// live in the switch snapshot instead and always shadow this table, so a
// racing learner can never repoint an associated client (see
// Switch.PinMAC).
type fdbTable struct {
	shards [fdbShards]fdbShard
}

type fdbShard struct {
	mu sync.RWMutex
	m  map[packet.MAC]PortID
	// Pad shards apart: RLock is an atomic RMW on the mutex word, so two
	// shards sharing a cache line would still bounce it between cores.
	_ [96]byte
}

func newFDBTable() *fdbTable {
	t := &fdbTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[packet.MAC]PortID)
	}
	return t
}

// shard picks a shard by the low bytes of the MAC; locally-administered
// test/deployment MACs vary in the tail, so this spreads well.
func (t *fdbTable) shard(mac packet.MAC) *fdbShard {
	return &t.shards[(uint(mac[5])^uint(mac[4])<<3^uint(mac[3])<<6)&(fdbShards-1)]
}

// learn records mac on port. The common case — entry already correct — is
// served under a read lock so steady traffic never serialises on learning.
func (t *fdbTable) learn(mac packet.MAC, port PortID) {
	s := t.shard(mac)
	s.mu.RLock()
	cur, ok := s.m[mac]
	s.mu.RUnlock()
	if ok && cur == port {
		return
	}
	s.mu.Lock()
	s.m[mac] = port
	s.mu.Unlock()
}

func (t *fdbTable) lookup(mac packet.MAC) (PortID, bool) {
	s := t.shard(mac)
	s.mu.RLock()
	port, ok := s.m[mac]
	s.mu.RUnlock()
	return port, ok
}

func (t *fdbTable) delete(mac packet.MAC) {
	s := t.shard(mac)
	s.mu.Lock()
	delete(s.m, mac)
	s.mu.Unlock()
}

// flushPort removes every entry pointing at port (port detach).
func (t *fdbTable) flushPort(port PortID) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for mac, p := range s.m {
			if p == port {
				delete(s.m, mac)
			}
		}
		s.mu.Unlock()
	}
}

func (t *fdbTable) size() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
