package netem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gnf/internal/packet"
)

// PortID identifies a switch port.
type PortID int

// Action is the verdict of a steering rule.
type Action uint8

// Steering actions.
const (
	// ActionNormal forwards by MAC learning (explicitly bypassing
	// lower-priority rules).
	ActionNormal Action = iota
	// ActionRedirect emits the frame on Rule.OutPort. It is how client
	// traffic is steered into an NF chain's ingress veth.
	ActionRedirect
	// ActionDrop discards the frame.
	ActionDrop
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionRedirect:
		return "redirect"
	case ActionDrop:
		return "drop"
	default:
		return "normal"
	}
}

// Match selects frames for a steering rule. Nil fields are wildcards. The
// shape mirrors what GNF programs into the station's software switch: match
// a client's traffic subset, leave everything else untouched.
type Match struct {
	InPort    *PortID
	SrcMAC    *packet.MAC
	DstMAC    *packet.MAC
	EtherType *uint16 // inner EtherType (802.1Q tags are looked through)
	// VID matches the outermost 802.1Q VLAN ID; untagged frames never
	// match a VID rule.
	VID     *uint16
	SrcIP   *packet.IP
	DstIP   *packet.IP
	Proto   *uint8
	SrcPort *uint16
	DstPort *uint16
}

// Matches evaluates the match against a parsed frame.
func (m *Match) Matches(in PortID, p *packet.Parser) bool {
	if m.InPort != nil && *m.InPort != in {
		return false
	}
	if m.SrcMAC != nil && *m.SrcMAC != p.Eth.Src {
		return false
	}
	if m.DstMAC != nil && *m.DstMAC != p.Eth.Dst {
		return false
	}
	if m.EtherType != nil && *m.EtherType != p.Eth.EtherType {
		return false
	}
	if m.VID != nil && (!p.Eth.Tagged || *m.VID != p.Eth.VID) {
		return false
	}
	needIP := m.SrcIP != nil || m.DstIP != nil || m.Proto != nil || m.SrcPort != nil || m.DstPort != nil
	if !needIP {
		return true
	}
	if !p.Has(packet.LayerIPv4) {
		return false
	}
	if m.SrcIP != nil && *m.SrcIP != p.IP.Src {
		return false
	}
	if m.DstIP != nil && *m.DstIP != p.IP.Dst {
		return false
	}
	if m.Proto != nil && *m.Proto != p.IP.Proto {
		return false
	}
	if m.SrcPort != nil || m.DstPort != nil {
		ft, ok := p.FiveTuple()
		if !ok {
			return false
		}
		if m.SrcPort != nil && *m.SrcPort != ft.Src.Port {
			return false
		}
		if m.DstPort != nil && *m.DstPort != ft.Dst.Port {
			return false
		}
	}
	return true
}

// Rule is one steering entry. Higher Priority wins; ties break by lower ID
// (insertion order).
type Rule struct {
	ID       int
	Priority int
	Match    Match
	Action   Action
	OutPort  PortID // for ActionRedirect
}

// Switch is an L2 learning switch with a priority steering table, the
// emulation of the OVS instance on every GNF station.
type Switch struct {
	name string

	mu     sync.RWMutex
	ports  map[PortID]*swPort
	fdb    map[packet.MAC]PortID
	pinned map[packet.MAC]PortID
	rules  []Rule
	nextID int

	rxFrames  atomic.Uint64
	dropped   atomic.Uint64
	flooded   atomic.Uint64
	redirects atomic.Uint64
}

type swPort struct {
	id      PortID
	ep      *Endpoint
	service bool
}

// NewSwitch creates an empty switch.
func NewSwitch(name string) *Switch {
	return &Switch{
		name:   name,
		ports:  make(map[PortID]*swPort),
		fdb:    make(map[packet.MAC]PortID),
		pinned: make(map[packet.MAC]PortID),
	}
}

// PinMAC installs a sticky FDB entry that dynamic learning cannot
// override — what an access point does for an associated station. Without
// it, a client's own frames flooded back from the backhaul would repoint
// the FDB at the uplink (MAC flapping), which turns into a forwarding
// loop once offload tunnels put cycles in the physical topology.
func (s *Switch) PinMAC(mac packet.MAC, port PortID) {
	s.mu.Lock()
	s.pinned[mac] = port
	s.fdb[mac] = port
	s.mu.Unlock()
}

// UnpinMAC removes a sticky entry (the dynamic entry goes with it).
func (s *Switch) UnpinMAC(mac packet.MAC) {
	s.mu.Lock()
	delete(s.pinned, mac)
	delete(s.fdb, mac)
	s.mu.Unlock()
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Attach connects an endpoint to the switch as port id; frames arriving on
// the endpoint enter the pipeline. Attaching to an existing id replaces the
// port.
func (s *Switch) Attach(id PortID, ep *Endpoint) {
	s.attach(id, ep, false)
}

// AttachService connects a service port: the attachment point of an NF
// chain. Service ports are excluded from MAC learning and from flooding —
// the OVS no-flood discipline GNF applies to its NF ports — so frames
// re-entering the switch from a chain can never loop back into it; only
// explicit steering rules direct traffic into service ports.
func (s *Switch) AttachService(id PortID, ep *Endpoint) {
	s.attach(id, ep, true)
}

func (s *Switch) attach(id PortID, ep *Endpoint, service bool) {
	s.mu.Lock()
	s.ports[id] = &swPort{id: id, ep: ep, service: service}
	s.mu.Unlock()
	ep.SetReceiver(func(frame []byte) { s.input(id, frame) })
}

// Detach removes a port and flushes FDB entries pointing at it.
func (s *Switch) Detach(id PortID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.ports[id]; ok {
		p.ep.SetReceiver(nil)
		delete(s.ports, id)
	}
	for mac, port := range s.fdb {
		if port == id {
			delete(s.fdb, mac)
		}
	}
}

// AddRule installs a steering rule and returns its ID.
func (s *Switch) AddRule(r Rule) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	r.ID = s.nextID
	s.rules = append(s.rules, r)
	sort.SliceStable(s.rules, func(i, j int) bool {
		if s.rules[i].Priority != s.rules[j].Priority {
			return s.rules[i].Priority > s.rules[j].Priority
		}
		return s.rules[i].ID < s.rules[j].ID
	})
	return r.ID
}

// RemoveRule deletes a rule by ID; it reports whether the rule existed.
func (s *Switch) RemoveRule(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.rules {
		if r.ID == id {
			s.rules = append(s.rules[:i], s.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Rules returns a copy of the steering table in evaluation order.
func (s *Switch) Rules() []Rule {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Rule(nil), s.rules...)
}

// input runs the forwarding pipeline for one frame.
func (s *Switch) input(in PortID, frame []byte) {
	s.rxFrames.Add(1)
	var p packet.Parser
	if err := p.Parse(frame); err != nil {
		s.dropped.Add(1)
		return
	}

	s.mu.Lock()
	inService := false
	if sp, ok := s.ports[in]; ok {
		inService = sp.service
	}
	// Learn source MAC (unicast sources only); frames emerging from
	// service ports carry end-host MACs and must not repoint the FDB,
	// and pinned (associated-client) entries never move.
	if !inService && !p.Eth.Src.IsMulticast() && !p.Eth.Src.IsZero() {
		if _, pin := s.pinned[p.Eth.Src]; !pin {
			s.fdb[p.Eth.Src] = in
		}
	}
	// Steering table lookup, first match wins (rules are pre-sorted).
	action, out := ActionNormal, PortID(0)
	for i := range s.rules {
		if s.rules[i].Match.Matches(in, &p) {
			action, out = s.rules[i].Action, s.rules[i].OutPort
			break
		}
	}
	var dst *swPort
	var flood []*swPort
	switch action {
	case ActionDrop:
		s.mu.Unlock()
		s.dropped.Add(1)
		return
	case ActionRedirect:
		dst = s.ports[out]
		s.mu.Unlock()
		s.redirects.Add(1)
		if dst != nil {
			dst.ep.Send(frame)
		} else {
			s.dropped.Add(1)
		}
		return
	default:
		if port, ok := s.fdb[p.Eth.Dst]; ok && !p.Eth.Dst.IsMulticast() {
			dst = s.ports[port]
		}
		if dst == nil {
			flood = make([]*swPort, 0, len(s.ports))
			for _, sp := range s.ports {
				if sp.id != in && !sp.service {
					flood = append(flood, sp)
				}
			}
		}
		s.mu.Unlock()
	}

	if dst != nil {
		if dst.id == in {
			// Hairpin suppressed: host already has the frame.
			s.dropped.Add(1)
			return
		}
		dst.ep.Send(frame)
		return
	}
	s.flooded.Add(1)
	for _, sp := range flood {
		sp.ep.Send(packet.Clone(frame))
	}
}

// SwitchStats is a snapshot of switch counters.
type SwitchStats struct {
	RxFrames  uint64
	Dropped   uint64
	Flooded   uint64
	Redirects uint64
	Ports     int
	Rules     int
	FDBSize   int
}

// Stats returns current counters.
func (s *Switch) Stats() SwitchStats {
	s.mu.RLock()
	ports, rules, fdb := len(s.ports), len(s.rules), len(s.fdb)
	s.mu.RUnlock()
	return SwitchStats{
		RxFrames:  s.rxFrames.Load(),
		Dropped:   s.dropped.Load(),
		Flooded:   s.flooded.Load(),
		Redirects: s.redirects.Load(),
		Ports:     ports,
		Rules:     rules,
		FDBSize:   fdb,
	}
}

// LookupFDB reports the learned port for a MAC.
func (s *Switch) LookupFDB(mac packet.MAC) (PortID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.fdb[mac]
	return id, ok
}

// String implements fmt.Stringer.
func (s *Switch) String() string {
	st := s.Stats()
	return fmt.Sprintf("switch %s: ports=%d rules=%d fdb=%d rx=%d drop=%d flood=%d redirect=%d",
		s.name, st.Ports, st.Rules, st.FDBSize, st.RxFrames, st.Dropped, st.Flooded, st.Redirects)
}
