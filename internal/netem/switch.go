package netem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gnf/internal/packet"
)

// PortID identifies a switch port.
type PortID int

// Action is the verdict of a steering rule.
type Action uint8

// Steering actions.
const (
	// ActionNormal forwards by MAC learning (explicitly bypassing
	// lower-priority rules).
	ActionNormal Action = iota
	// ActionRedirect emits the frame on Rule.OutPort. It is how client
	// traffic is steered into an NF chain's ingress veth.
	ActionRedirect
	// ActionDrop discards the frame.
	ActionDrop
	// ActionGroup emits the frame on one member of the select group named
	// by Rule.Group, chosen by flow-key hash — the OVS select-group
	// analogue that spreads flows across the replicas of a shared NF
	// instance while keeping each flow on one replica.
	ActionGroup
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionRedirect:
		return "redirect"
	case ActionDrop:
		return "drop"
	case ActionGroup:
		return "group"
	default:
		return "normal"
	}
}

// Match selects frames for a steering rule. Nil fields are wildcards. The
// shape mirrors what GNF programs into the station's software switch: match
// a client's traffic subset, leave everything else untouched.
//
// Every field a Match can inspect is captured by packet.FlowKey — that
// property is what lets the switch cache verdicts per flow. A new match
// field must be added to FlowKey too, or cached verdicts would leak
// across flows the new field distinguishes.
type Match struct {
	InPort    *PortID
	SrcMAC    *packet.MAC
	DstMAC    *packet.MAC
	EtherType *uint16 // inner EtherType (802.1Q tags are looked through)
	// VID matches the outermost 802.1Q VLAN ID; untagged frames never
	// match a VID rule.
	VID     *uint16
	SrcIP   *packet.IP
	DstIP   *packet.IP
	Proto   *uint8
	SrcPort *uint16
	DstPort *uint16
}

// Matches evaluates the match against a parsed frame.
func (m *Match) Matches(in PortID, p *packet.Parser) bool {
	if m.InPort != nil && *m.InPort != in {
		return false
	}
	if m.SrcMAC != nil && *m.SrcMAC != p.Eth.Src {
		return false
	}
	if m.DstMAC != nil && *m.DstMAC != p.Eth.Dst {
		return false
	}
	if m.EtherType != nil && *m.EtherType != p.Eth.EtherType {
		return false
	}
	if m.VID != nil && (!p.Eth.Tagged || *m.VID != p.Eth.VID) {
		return false
	}
	needIP := m.SrcIP != nil || m.DstIP != nil || m.Proto != nil || m.SrcPort != nil || m.DstPort != nil
	if !needIP {
		return true
	}
	if !p.Has(packet.LayerIPv4) {
		return false
	}
	if m.SrcIP != nil && *m.SrcIP != p.IP.Src {
		return false
	}
	if m.DstIP != nil && *m.DstIP != p.IP.Dst {
		return false
	}
	if m.Proto != nil && *m.Proto != p.IP.Proto {
		return false
	}
	if m.SrcPort != nil || m.DstPort != nil {
		ft, ok := p.FiveTuple()
		if !ok {
			return false
		}
		if m.SrcPort != nil && *m.SrcPort != ft.Src.Port {
			return false
		}
		if m.DstPort != nil && *m.DstPort != ft.Dst.Port {
			return false
		}
	}
	return true
}

// Rule is one steering entry. Higher Priority wins; ties break by lower ID
// (insertion order).
type Rule struct {
	ID       int
	Priority int
	Match    Match
	Action   Action
	OutPort  PortID // for ActionRedirect
	Group    int    // for ActionGroup: select-group ID
}

// swState is the immutable control-plane snapshot the forwarding fast
// path reads: ports, steering rules (sorted), and pinned MACs. Mutators
// clone it, edit the clone, bump gen, and publish it atomically, so the
// per-frame pipeline never takes a lock to read any of this.
type swState struct {
	gen    uint64
	ports  map[PortID]*swPort
	pinned map[packet.MAC]PortID
	rules  []Rule // sorted: higher priority first, then lower ID
	// groups are the select groups ActionGroup rules fan into. Member
	// slices are immutable once published; SetGroup installs a fresh one.
	groups map[int][]PortID
	// flood is the precomputed flood set (non-service ports); the fast
	// path only has to skip the arrival port.
	flood []*swPort
}

// clone deep-copies the maps and the rule slice; *swPort values and group
// member slices are themselves immutable after publication, so they are
// shared.
func (st *swState) clone() *swState {
	next := &swState{
		gen:    st.gen,
		ports:  make(map[PortID]*swPort, len(st.ports)),
		pinned: make(map[packet.MAC]PortID, len(st.pinned)),
		rules:  append([]Rule(nil), st.rules...),
		groups: make(map[int][]PortID, len(st.groups)),
	}
	for id, p := range st.ports {
		next.ports[id] = p
	}
	for mac, port := range st.pinned {
		next.pinned[mac] = port
	}
	for id, members := range st.groups {
		next.groups[id] = members
	}
	return next
}

// refreshFlood recomputes the flood set after port changes.
func (st *swState) refreshFlood() {
	st.flood = st.flood[:0]
	for _, sp := range st.ports {
		if !sp.service {
			st.flood = append(st.flood, sp)
		}
	}
}

// Switch is an L2 learning switch with a priority steering table, the
// emulation of the OVS instance on every GNF station.
//
// Forwarding is a read-mostly fast path: control-plane state lives in an
// immutable snapshot behind an atomic pointer (copy-on-write updates),
// steering verdicts are cached per flow with generation-stamped entries,
// and MAC learning goes through a sharded FDB — the per-frame pipeline
// takes no global lock, so concurrent ports forward in parallel.
type Switch struct {
	name string

	ctrl      sync.Mutex // serialises control-plane mutations only
	nextID    int
	nextGroup int

	state atomic.Pointer[swState]
	fdb   *fdbTable
	cache *flowCache

	// Per-frame counters are striped by arrival port: with the table
	// mutex gone, shared counter cache lines would be the next point of
	// serialisation.
	rxFrames    stripedCounter
	dropped     stripedCounter
	flooded     stripedCounter
	redirects   stripedCounter
	cacheHits   stripedCounter
	cacheMisses stripedCounter
	batchFrames stripedCounter
	batchRuns   stripedCounter

	// sampler, when armed, records one of every N forwarding verdicts
	// (see sampler.go). Nil when disabled: the fast path pays one atomic
	// pointer load to find out.
	sampler atomic.Pointer[frameSampler]
}

type swPort struct {
	id      PortID
	ep      *Endpoint
	service bool
}

// NewSwitch creates an empty switch.
func NewSwitch(name string) *Switch {
	s := &Switch{
		name:  name,
		fdb:   newFDBTable(),
		cache: newFlowCache(),
	}
	s.state.Store(&swState{
		ports:  make(map[PortID]*swPort),
		pinned: make(map[packet.MAC]PortID),
		groups: make(map[int][]PortID),
	})
	return s
}

// mutate applies one copy-on-write control-plane update: clone the
// current snapshot, edit it, bump the generation (invalidating every
// cached flow verdict), publish.
func (s *Switch) mutate(edit func(st *swState)) {
	s.ctrl.Lock()
	defer s.ctrl.Unlock()
	next := s.state.Load().clone()
	edit(next)
	next.refreshFlood()
	next.gen++
	s.state.Store(next)
}

// PinMAC installs a sticky FDB entry that dynamic learning cannot
// override — what an access point does for an associated station. Without
// it, a client's own frames flooded back from the backhaul would repoint
// the FDB at the uplink (MAC flapping), which turns into a forwarding
// loop once offload tunnels put cycles in the physical topology.
//
// Pinned entries live in the snapshot and shadow the dynamic FDB on every
// lookup, so a learner racing the pin can at worst leave a dead dynamic
// entry behind — never redirect the client's traffic.
func (s *Switch) PinMAC(mac packet.MAC, port PortID) {
	s.mutate(func(st *swState) { st.pinned[mac] = port })
	s.fdb.learn(mac, port)
}

// UnpinMAC removes a sticky entry (the dynamic entry goes with it).
func (s *Switch) UnpinMAC(mac packet.MAC) {
	s.mutate(func(st *swState) { delete(st.pinned, mac) })
	s.fdb.delete(mac)
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Attach connects an endpoint to the switch as port id; frames arriving on
// the endpoint enter the pipeline. Attaching to an existing id replaces the
// port.
func (s *Switch) Attach(id PortID, ep *Endpoint) {
	s.attach(id, ep, false)
}

// AttachService connects a service port: the attachment point of an NF
// chain. Service ports are excluded from MAC learning and from flooding —
// the OVS no-flood discipline GNF applies to its NF ports — so frames
// re-entering the switch from a chain can never loop back into it; only
// explicit steering rules direct traffic into service ports.
func (s *Switch) AttachService(id PortID, ep *Endpoint) {
	s.attach(id, ep, true)
}

func (s *Switch) attach(id PortID, ep *Endpoint, service bool) {
	s.mutate(func(st *swState) {
		st.ports[id] = &swPort{id: id, ep: ep, service: service}
	})
	ep.SetReceiver(func(frame []byte) { s.input(id, frame) })
	ep.SetBatchReceiver(func(frames [][]byte) { s.inputBatch(id, frames) })
}

// Detach removes a port and flushes FDB entries — dynamic *and* pinned —
// pointing at it. Pinned entries must go too: they are never re-learned,
// so a survivor would blackhole the client's traffic at a dead port
// forever (the reassociation pins the MAC at its new port).
func (s *Switch) Detach(id PortID) {
	var detached *swPort
	s.mutate(func(st *swState) {
		if p, ok := st.ports[id]; ok {
			detached = p
			delete(st.ports, id)
		}
		for mac, port := range st.pinned {
			if port == id {
				delete(st.pinned, mac)
			}
		}
	})
	if detached != nil {
		detached.ep.SetReceiver(nil)
		detached.ep.SetBatchReceiver(nil)
	}
	s.fdb.flushPort(id)
}

// AddRule installs a steering rule and returns its ID.
func (s *Switch) AddRule(r Rule) int {
	var id int
	s.mutate(func(st *swState) {
		s.nextID++
		r.ID = s.nextID
		id = r.ID
		st.rules = append(st.rules, r)
		sort.SliceStable(st.rules, func(i, j int) bool {
			if st.rules[i].Priority != st.rules[j].Priority {
				return st.rules[i].Priority > st.rules[j].Priority
			}
			return st.rules[i].ID < st.rules[j].ID
		})
	})
	return id
}

// RemoveRule deletes a rule by ID; it reports whether the rule existed.
func (s *Switch) RemoveRule(id int) bool {
	removed := false
	s.mutate(func(st *swState) {
		for i, r := range st.rules {
			if r.ID == id {
				st.rules = append(st.rules[:i], st.rules[i+1:]...)
				removed = true
				return
			}
		}
	})
	return removed
}

// Rules returns a copy of the steering table in evaluation order.
func (s *Switch) Rules() []Rule {
	return append([]Rule(nil), s.state.Load().rules...)
}

// AddGroup installs a select group over the given member ports and returns
// its ID. ActionGroup rules referencing the group hash each flow onto one
// member, so a flow sticks to one replica until the membership changes.
func (s *Switch) AddGroup(ports []PortID) int {
	var id int
	s.mutate(func(st *swState) {
		s.nextGroup++
		id = s.nextGroup
		st.groups[id] = append([]PortID(nil), ports...)
	})
	return id
}

// SetGroup replaces a group's membership (scale-out adds a replica's port,
// drain removes one before teardown). The generation bump republishes every
// cached verdict, so live flows re-hash over the new membership at their
// next frame. It reports whether the group existed.
func (s *Switch) SetGroup(id int, ports []PortID) bool {
	ok := false
	s.mutate(func(st *swState) {
		if _, exists := st.groups[id]; exists {
			st.groups[id] = append([]PortID(nil), ports...)
			ok = true
		}
	})
	return ok
}

// RemoveGroup deletes a group; rules still referencing it drop their
// traffic (like an OpenFlow group-miss). It reports whether it existed.
func (s *Switch) RemoveGroup(id int) bool {
	ok := false
	s.mutate(func(st *swState) {
		if _, exists := st.groups[id]; exists {
			delete(st.groups, id)
			ok = true
		}
	})
	return ok
}

// GroupPorts returns a copy of a group's membership.
func (s *Switch) GroupPorts(id int) ([]PortID, bool) {
	members, ok := s.state.Load().groups[id]
	return append([]PortID(nil), members...), ok
}

// steer computes the steering verdict for one frame: flow-cache hit, or a
// priority-ordered rule scan whose result is cached against st.gen.
func (s *Switch) steer(in PortID, p *packet.Parser, st *swState) (Action, PortID) {
	key := flowCacheKey{in: in, fk: p.FlowKey()}
	if action, out, ok := s.cache.lookup(key, st.gen); ok {
		s.cacheHits.Inc(uint(in))
		return action, out
	}
	s.cacheMisses.Inc(uint(in))
	action, out := ActionNormal, PortID(0)
	for i := range st.rules {
		if st.rules[i].Match.Matches(in, p) {
			action, out = st.rules[i].Action, st.rules[i].OutPort
			if action == ActionGroup {
				// Resolve the select group here so the cached verdict is a
				// plain redirect: the flow-key hash is a pure function of
				// the cache key, and membership changes bump the
				// generation, re-resolving every flow.
				action, out = resolveGroup(st, st.rules[i].Group, key.fk.Hash())
			}
			break
		}
	}
	s.cache.insert(key, st.gen, action, out)
	return action, out
}

// resolveGroup picks a select-group member by flow hash. An empty or
// missing group drops (group-miss semantics).
func resolveGroup(st *swState, group int, hash uint64) (Action, PortID) {
	members := st.groups[group]
	if len(members) == 0 {
		return ActionDrop, 0
	}
	return ActionRedirect, members[hash%uint64(len(members))]
}

// input runs the forwarding pipeline for one frame. It is lock-free
// against the control plane: one snapshot load, sharded-FDB learning, a
// cached (or scanned-and-cached) steering verdict, then dispatch.
func (s *Switch) input(in PortID, frame []byte) {
	rxN := s.rxFrames.Inc(uint(in))
	p := packet.BorrowParser()
	defer packet.ReturnParser(p)
	if err := p.Parse(frame); err != nil {
		s.dropped.Inc(uint(in))
		packet.ReturnFrame(frame)
		return
	}

	st := s.state.Load()
	inService := false
	if sp, ok := st.ports[in]; ok {
		inService = sp.service
	}
	// Learn source MAC (unicast sources only); frames emerging from
	// service ports carry end-host MACs and must not repoint the FDB,
	// and pinned (associated-client) entries never move.
	if !inService && !p.Eth.Src.IsMulticast() && !p.Eth.Src.IsZero() {
		if _, pin := st.pinned[p.Eth.Src]; !pin {
			s.fdb.learn(p.Eth.Src, in)
		}
	}

	action, out := s.steer(in, p, st)
	if fs := s.sampler.Load(); fs != nil {
		fs.observe(in, rxN, action, out)
	}
	switch action {
	case ActionDrop:
		s.dropped.Inc(uint(in))
		packet.ReturnFrame(frame)
		return
	case ActionRedirect:
		s.redirects.Inc(uint(in))
		if dst := st.ports[out]; dst != nil {
			dst.ep.Send(frame)
		} else {
			s.dropped.Inc(uint(in))
			packet.ReturnFrame(frame)
		}
		return
	}

	// Normal forwarding: pinned entries shadow the dynamic FDB.
	var dst *swPort
	if !p.Eth.Dst.IsMulticast() {
		if port, ok := st.pinned[p.Eth.Dst]; ok {
			dst = st.ports[port]
		} else if port, ok := s.fdb.lookup(p.Eth.Dst); ok {
			dst = st.ports[port]
		}
	}
	if dst != nil {
		if dst.id == in {
			// Hairpin suppressed: host already has the frame.
			s.dropped.Inc(uint(in))
			packet.ReturnFrame(frame)
			return
		}
		dst.ep.Send(frame)
		return
	}
	s.flooded.Inc(uint(in))
	for _, sp := range st.flood {
		if sp.id != in {
			sp.ep.Send(packet.Clone(frame))
		}
	}
	packet.ReturnFrame(frame)
}

// SwitchStats is a snapshot of switch counters.
type SwitchStats struct {
	RxFrames    uint64
	Dropped     uint64
	Flooded     uint64
	Redirects   uint64
	CacheHits   uint64
	CacheMisses uint64
	// BatchFrames / BatchRuns measure run amortisation on the batched
	// path: mean frames handled per steering decision is their ratio.
	BatchFrames uint64
	BatchRuns   uint64
	// SampledFrames counts verdicts captured by the 1-in-N frame sampler.
	SampledFrames uint64
	Ports         int
	Rules         int
	Groups        int
	FDBSize       int
	FlowEntries   int
}

// Stats returns current counters.
func (s *Switch) Stats() SwitchStats {
	st := s.state.Load()
	return SwitchStats{
		RxFrames:      s.rxFrames.Load(),
		Dropped:       s.dropped.Load(),
		Flooded:       s.flooded.Load(),
		Redirects:     s.redirects.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMisses.Load(),
		BatchFrames:   s.batchFrames.Load(),
		BatchRuns:     s.batchRuns.Load(),
		SampledFrames: s.SampledFrames(),
		Ports:         len(st.ports),
		Rules:         len(st.rules),
		Groups:        len(st.groups),
		FDBSize:       s.fdb.size(),
		FlowEntries:   s.cache.size(),
	}
}

// LookupFDB reports the learned port for a MAC (pinned entries first).
func (s *Switch) LookupFDB(mac packet.MAC) (PortID, bool) {
	if port, ok := s.state.Load().pinned[mac]; ok {
		return port, ok
	}
	return s.fdb.lookup(mac)
}

// String implements fmt.Stringer.
func (s *Switch) String() string {
	st := s.Stats()
	return fmt.Sprintf("switch %s: ports=%d rules=%d fdb=%d rx=%d drop=%d flood=%d redirect=%d cache=%d/%d",
		s.name, st.Ports, st.Rules, st.FDBSize, st.RxFrames, st.Dropped, st.Flooded, st.Redirects,
		st.CacheHits, st.CacheHits+st.CacheMisses)
}
