package netem

import (
	"context"
	"sync"

	"gnf/internal/packet"
)

// Host is a minimal L3 endpoint behind a veth: it answers ARP for its own
// address, replies to ICMP echo, and dispatches UDP datagrams to registered
// handlers. Traffic generators and example services are built on it; it
// plays the role of the paper's wireless clients and upstream servers.
type Host struct {
	MACAddr packet.MAC
	IPAddr  packet.IP

	ep *Endpoint

	mu       sync.RWMutex
	arpTable map[packet.IP]packet.MAC
	udp      map[uint16]UDPHandler
	anyUDP   UDPHandler
	rawTap   func(frame []byte)

	pingMu    sync.Mutex
	pingWaits map[uint32]chan struct{}
}

// UDPHandler receives a datagram payload plus its addressing. Returning a
// non-nil reply sends it back to the source.
//
// The payload aliases the received frame's buffer, which the host reclaims
// into the frame pool as soon as the handler returns — copy-on-retain: a
// handler that keeps the bytes past its return must copy them. Returning
// the payload (or a slice of it) as the reply is safe: the reply frame is
// assembled before the buffer is reclaimed.
type UDPHandler func(src packet.Endpoint, dst packet.Endpoint, payload []byte) (reply []byte)

// NewHost attaches a host to ep with the given addresses.
func NewHost(mac packet.MAC, ip packet.IP, ep *Endpoint) *Host {
	h := &Host{
		MACAddr:   mac,
		IPAddr:    ip,
		ep:        ep,
		arpTable:  make(map[packet.IP]packet.MAC),
		udp:       make(map[uint16]UDPHandler),
		pingWaits: make(map[uint32]chan struct{}),
	}
	ep.SetReceiver(h.input)
	ep.SetBatchReceiver(h.inputBatch)
	return h
}

// Endpoint returns the host's attachment point.
func (h *Host) Endpoint() *Endpoint {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ep
}

// Rebind moves the host onto a new attachment point — the dataplane half
// of a roaming handoff (the client associates with a different cell). The
// caller is responsible for closing the previous endpoint.
func (h *Host) Rebind(ep *Endpoint) {
	h.mu.Lock()
	old := h.ep
	h.ep = ep
	h.mu.Unlock()
	if old != nil {
		old.SetReceiver(nil)
		old.SetBatchReceiver(nil)
	}
	ep.SetReceiver(h.input)
	ep.SetBatchReceiver(h.inputBatch)
}

// HandleUDP registers a handler for a local UDP port.
func (h *Host) HandleUDP(port uint16, fn UDPHandler) {
	h.mu.Lock()
	h.udp[port] = fn
	h.mu.Unlock()
}

// HandleAnyUDP registers a catch-all UDP handler used when no per-port
// handler matches.
func (h *Host) HandleAnyUDP(fn UDPHandler) {
	h.mu.Lock()
	h.anyUDP = fn
	h.mu.Unlock()
}

// Tap installs a raw frame observer called for every received frame before
// protocol processing (nil to remove). Tests use it to assert on traffic.
func (h *Host) Tap(fn func(frame []byte)) {
	h.mu.Lock()
	h.rawTap = fn
	h.mu.Unlock()
}

// Learn seeds the host's ARP table (used instead of broadcasting in tests).
func (h *Host) Learn(ip packet.IP, mac packet.MAC) {
	h.mu.Lock()
	h.arpTable[ip] = mac
	h.mu.Unlock()
}

// Resolve returns the MAC for ip from the ARP table, or broadcast when
// unknown (upper layers may also issue ARP requests with SendARPRequest).
func (h *Host) Resolve(ip packet.IP) packet.MAC {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if mac, ok := h.arpTable[ip]; ok {
		return mac
	}
	return packet.BroadcastMAC
}

// SendARPRequest broadcasts a who-has for ip.
func (h *Host) SendARPRequest(ip packet.IP) error {
	return h.Endpoint().Send(packet.BuildARP(packet.ARPRequest, h.MACAddr, h.IPAddr, packet.MAC{}, ip))
}

// SendUDP sends a datagram to dst; the destination MAC comes from the ARP
// table (broadcast if unknown, which the switch floods — fine for tests).
func (h *Host) SendUDP(dst packet.Endpoint, srcPort uint16, payload []byte) error {
	frame := packet.BuildUDP(h.MACAddr, h.Resolve(dst.Addr), h.IPAddr, dst.Addr, srcPort, dst.Port, payload)
	return h.Endpoint().Send(frame)
}

// Ping sends an ICMP echo request; the returned channel closes when the
// matching reply arrives. An unanswered echo's bookkeeping lives until a
// reply with the same id/seq shows up — callers expecting loss should use
// PingCtx with a deadline so the wait is reclaimed.
func (h *Host) Ping(dst packet.IP, id, seq uint16) (<-chan struct{}, error) {
	return h.PingCtx(context.Background(), dst, id, seq)
}

// PingCtx is Ping with a cancellation path: when ctx ends before the
// reply arrives, the pending-reply entry is reclaimed, so echoes lost on
// the wire cannot grow the wait table without bound. A reply racing the
// cancellation may still close the returned channel; once the entry is
// reclaimed it never will.
func (h *Host) PingCtx(ctx context.Context, dst packet.IP, id, seq uint16) (<-chan struct{}, error) {
	key := uint32(id)<<16 | uint32(seq)
	ch := make(chan struct{})
	h.pingMu.Lock()
	h.pingWaits[key] = ch
	h.pingMu.Unlock()
	frame := packet.BuildICMPEcho(h.MACAddr, h.Resolve(dst), h.IPAddr, dst, packet.ICMPEchoRequest, id, seq, []byte("gnf-ping"))
	if err := h.Endpoint().Send(frame); err != nil {
		h.unwait(key, ch)
		return nil, err
	}
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-ch:
			case <-done:
				h.unwait(key, ch)
			}
		}()
	}
	return ch, nil
}

// unwait removes a pending-ping entry, but only if it is still the one
// this caller registered — a later Ping reusing the same id/seq replaces
// the map entry, and cleaning up the old wait must not tear down the new
// one.
func (h *Host) unwait(key uint32, ch chan struct{}) {
	h.pingMu.Lock()
	if cur, ok := h.pingWaits[key]; ok && cur == ch {
		delete(h.pingWaits, key)
	}
	h.pingMu.Unlock()
}

// PendingPings reports the number of echoes awaiting replies (leak
// visibility for tests and operators).
func (h *Host) PendingPings() int {
	h.pingMu.Lock()
	defer h.pingMu.Unlock()
	return len(h.pingWaits)
}

// input is the host's receive path. The frame buffer is reclaimed into
// the pool once processing (including any reply build) finishes; anything
// retaining frame bytes past that point must copy them.
func (h *Host) input(frame []byte) {
	h.process(frame)
	packet.ReturnFrame(frame)
}

// inputBatch is the batched receive path: per-frame protocol handling is
// unchanged, the win is upstream (one ring pop, one switch verdict per
// same-flow run) plus buffer reclamation without a per-frame pool trip
// upstream.
func (h *Host) inputBatch(frames [][]byte) {
	for _, frame := range frames {
		h.process(frame)
		packet.ReturnFrame(frame)
	}
}

func (h *Host) process(frame []byte) {
	h.mu.RLock()
	tap := h.rawTap
	h.mu.RUnlock()
	if tap != nil {
		tap(frame)
	}
	p := packet.BorrowParser()
	defer packet.ReturnParser(p)
	if err := p.Parse(frame); err != nil {
		return
	}
	// Frames not addressed to us (or broadcast) are ignored.
	if p.Eth.Dst != h.MACAddr && !p.Eth.Dst.IsBroadcast() {
		return
	}
	switch {
	case p.Has(packet.LayerARP):
		h.handleARP(&p.ARP)
	case p.Has(packet.LayerICMP):
		h.handleICMP(p)
	case p.Has(packet.LayerUDP):
		h.handleUDP(p)
	}
}

func (h *Host) handleARP(a *packet.ARP) {
	h.mu.Lock()
	h.arpTable[a.SenderIP] = a.SenderHW
	h.mu.Unlock()
	if a.Op == packet.ARPRequest && a.TargetIP == h.IPAddr {
		h.Endpoint().Send(packet.BuildARP(packet.ARPReply, h.MACAddr, h.IPAddr, a.SenderHW, a.SenderIP))
	}
}

func (h *Host) handleICMP(p *packet.Parser) {
	ic := p.ICMP
	switch ic.Type {
	case packet.ICMPEchoRequest:
		if p.IP.Dst != h.IPAddr {
			return
		}
		h.Learn(p.IP.Src, p.Eth.Src)
		reply := packet.BuildICMPEcho(h.MACAddr, p.Eth.Src, h.IPAddr, p.IP.Src,
			packet.ICMPEchoReply, ic.ID, ic.Seq, ic.Payload())
		h.Endpoint().Send(reply)
	case packet.ICMPEchoReply:
		key := uint32(ic.ID)<<16 | uint32(ic.Seq)
		h.pingMu.Lock()
		if ch, ok := h.pingWaits[key]; ok {
			delete(h.pingWaits, key)
			close(ch)
		}
		h.pingMu.Unlock()
	}
}

func (h *Host) handleUDP(p *packet.Parser) {
	if p.IP.Dst != h.IPAddr && !p.Eth.Dst.IsBroadcast() {
		return
	}
	h.Learn(p.IP.Src, p.Eth.Src)
	h.mu.RLock()
	fn, ok := h.udp[p.UDP.DstPort]
	if !ok {
		fn = h.anyUDP
	}
	h.mu.RUnlock()
	if fn == nil {
		return
	}
	src := packet.Endpoint{Addr: p.IP.Src, Port: p.UDP.SrcPort}
	dst := packet.Endpoint{Addr: p.IP.Dst, Port: p.UDP.DstPort}
	// The payload is handed to the handler aliasing the frame buffer —
	// no per-datagram clone. The copy-on-retain contract (see UDPHandler)
	// makes that safe: by the time the buffer is reclaimed in input, the
	// handler has returned and any reply has been copied into a new frame.
	payload := p.UDP.Payload()
	if reply := fn(src, dst, payload); reply != nil {
		frame := packet.BuildUDP(h.MACAddr, h.Resolve(src.Addr), h.IPAddr, src.Addr, dst.Port, src.Port, reply)
		h.Endpoint().Send(frame)
	}
}
