package netem

import (
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/packet"
)

func waitFrame(t *testing.T, ch <-chan []byte) []byte {
	t.Helper()
	select {
	case f := <-ch:
		return f
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for frame")
		return nil
	}
}

func TestVethDeliversBothDirections(t *testing.T) {
	a, b := NewVethPair("veth-a", "veth-b")
	defer a.Close()
	gotA, gotB := make(chan []byte, 1), make(chan []byte, 1)
	a.SetReceiver(func(f []byte) { gotA <- f })
	b.SetReceiver(func(f []byte) { gotB <- f })

	if err := a.Send([]byte("ping")); err != nil {
		t.Fatalf("a.Send: %v", err)
	}
	if string(waitFrame(t, gotB)) != "ping" {
		t.Fatal("b received wrong frame")
	}
	if err := b.Send([]byte("pong")); err != nil {
		t.Fatalf("b.Send: %v", err)
	}
	if string(waitFrame(t, gotA)) != "pong" {
		t.Fatal("a received wrong frame")
	}
	if a.Peer() != b || b.Peer() != a {
		t.Fatal("peers wired wrong")
	}
	if a.Name() != "veth-a" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestVethStats(t *testing.T) {
	a, b := NewVethPair("a", "b")
	defer a.Close()
	done := make(chan struct{}, 4)
	b.SetReceiver(func([]byte) { done <- struct{}{} })
	for i := 0; i < 3; i++ {
		if err := a.Send(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("delivery timeout")
		}
	}
	as, bs := a.Stats(), b.Stats()
	if as.TxFrames != 3 || as.TxBytes != 300 {
		t.Fatalf("a stats = %+v", as)
	}
	if bs.RxFrames != 3 || bs.RxBytes != 300 {
		t.Fatalf("b stats = %+v", bs)
	}
	if as.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestVethMTU(t *testing.T) {
	a, _ := NewVethPair("a", "b", WithLink(LinkParams{MTU: 64}))
	defer a.Close()
	if err := a.Send(make([]byte, 65)); err != ErrFrameTooBig {
		t.Fatalf("oversize send: %v", err)
	}
	if a.Stats().Drops != 1 {
		t.Fatal("oversize not counted as drop")
	}
}

func TestVethClosed(t *testing.T) {
	a, b := NewVethPair("a", "b")
	a.Close()
	if err := a.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send on closed: %v", err)
	}
	if err := b.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("peer not closed: %v", err)
	}
	a.Close() // idempotent
}

func TestVethLossDeterministic(t *testing.T) {
	const n = 1000
	a, b := NewVethPair("a", "b", WithLink(LinkParams{LossProb: 0.5, QueueLen: n}), WithSeed(42))
	defer a.Close()
	got := make(chan []byte, n)
	b.SetReceiver(func(f []byte) { got <- f })
	for i := 0; i < n; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Sent plus dropped must equal n.
	st := a.Stats()
	if st.TxFrames+st.Drops != n {
		t.Fatalf("tx=%d drops=%d", st.TxFrames, st.Drops)
	}
	if st.Drops < n/4 || st.Drops > 3*n/4 {
		t.Fatalf("loss way off 50%%: %d/%d", st.Drops, n)
	}
}

func TestVethDelayOnVirtualClock(t *testing.T) {
	vc := clock.NewAutoVirtual()
	a, b := NewVethPair("a", "b", WithClock(vc), WithLink(LinkParams{Delay: 10 * time.Millisecond}))
	defer a.Close()
	got := make(chan []byte, 1)
	b.SetReceiver(func(f []byte) { got <- f })
	start := vc.Now()
	if err := a.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFrame(t, got)
	if el := vc.Since(start); el < 10*time.Millisecond {
		t.Fatalf("virtual elapsed = %v, want >= 10ms", el)
	}
}

func TestVethSerializationDelay(t *testing.T) {
	vc := clock.NewAutoVirtual()
	// 1 Mbit/s: a 1250-byte frame takes 10ms to serialize.
	a, b := NewVethPair("a", "b", WithClock(vc), WithLink(LinkParams{RateBps: 1_000_000}))
	defer a.Close()
	got := make(chan []byte, 1)
	b.SetReceiver(func(f []byte) { got <- f })
	start := vc.Now()
	if err := a.Send(make([]byte, 1250)); err != nil {
		t.Fatal(err)
	}
	waitFrame(t, got)
	if el := vc.Since(start); el != 10*time.Millisecond {
		t.Fatalf("serialization delay = %v, want 10ms", el)
	}
}

func TestVethQueueOverflowDrops(t *testing.T) {
	// No receiver on b, tiny queue, blocked delivery via huge delay on a
	// non-auto virtual clock (the delivery goroutine parks in Sleep).
	vc := clock.NewVirtual()
	a, _ := NewVethPair("a", "b", WithClock(vc), WithLink(LinkParams{Delay: time.Hour, QueueLen: 2}))
	defer a.Close()
	for i := 0; i < 10; i++ {
		a.Send([]byte{1})
	}
	st := a.Stats()
	if st.Drops == 0 {
		t.Fatal("expected tail drops with full queue")
	}
	if st.TxFrames+st.Drops != 10 {
		t.Fatalf("tx=%d drops=%d, want sum 10", st.TxFrames, st.Drops)
	}
}

func TestUnpairedEndpointSend(t *testing.T) {
	e := newEndpoint("solo", clock.System(), LinkParams{MTU: DefaultMTU, QueueLen: 1}, 1)
	if err := e.Send([]byte("x")); err != ErrNoPeer {
		t.Fatalf("send without peer: %v", err)
	}
}

// End-to-end: frames built by the packet library traverse a veth intact.
func TestVethCarriesRealFrames(t *testing.T) {
	a, b := NewVethPair("a", "b")
	defer a.Close()
	got := make(chan []byte, 1)
	b.SetReceiver(func(f []byte) { got <- f })
	frame := packet.BuildUDP(
		packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2}, 1000, 2000, []byte("payload"))
	if err := a.Send(frame); err != nil {
		t.Fatal(err)
	}
	var p packet.Parser
	if err := p.Parse(waitFrame(t, got)); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if string(p.UDP.Payload()) != "payload" {
		t.Fatal("payload corrupted in transit")
	}
}
