package netem

import (
	"sync"
	"testing"
	"time"

	"gnf/internal/packet"
)

// testNet wires n hosts to a switch and returns them with receive taps.
type testNet struct {
	sw    *Switch
	eps   []*Endpoint // host-side endpoints
	taps  []chan []byte
	pairs []*Endpoint
}

func newTestNet(t *testing.T, n int) *testNet {
	t.Helper()
	tn := &testNet{sw: NewSwitch("sw0")}
	for i := 0; i < n; i++ {
		host, swSide := NewVethPair("h", "sw")
		tap := make(chan []byte, 64)
		host.SetReceiver(func(f []byte) { tap <- f })
		tn.sw.Attach(PortID(i+1), swSide)
		tn.eps = append(tn.eps, host)
		tn.taps = append(tn.taps, tap)
		tn.pairs = append(tn.pairs, swSide)
	}
	t.Cleanup(func() {
		for _, e := range tn.eps {
			e.Close()
		}
	})
	return tn
}

func mac(i byte) packet.MAC { return packet.MAC{2, 0, 0, 0, 0, i} }
func ip(i byte) packet.IP   { return packet.IP{10, 0, 0, i} }

func udpFrame(srcH, dstH byte, srcPort, dstPort uint16) []byte {
	return packet.BuildUDP(mac(srcH), mac(dstH), ip(srcH), ip(dstH), srcPort, dstPort, []byte("x"))
}

func expectFrame(t *testing.T, ch <-chan []byte) []byte {
	t.Helper()
	select {
	case f := <-ch:
		return f
	case <-time.After(2 * time.Second):
		t.Fatal("no frame arrived")
		return nil
	}
}

func expectSilence(t *testing.T, ch <-chan []byte, d time.Duration) {
	t.Helper()
	select {
	case <-ch:
		t.Fatal("unexpected frame")
	case <-time.After(d):
	}
}

func TestSwitchFloodsUnknownThenLearns(t *testing.T) {
	tn := newTestNet(t, 3)
	// Host 1 -> host 2, dst unknown: flood to 2 and 3, not back to 1.
	tn.eps[0].Send(udpFrame(1, 2, 100, 200))
	expectFrame(t, tn.taps[1])
	expectFrame(t, tn.taps[2])
	expectSilence(t, tn.taps[0], 50*time.Millisecond)

	// Host 2 replies; switch has learned 1's port, so no flood to 3.
	tn.eps[1].Send(udpFrame(2, 1, 200, 100))
	expectFrame(t, tn.taps[0])
	expectSilence(t, tn.taps[2], 50*time.Millisecond)

	// Now 1->2 is unicast: 3 must stay silent.
	tn.eps[0].Send(udpFrame(1, 2, 100, 200))
	expectFrame(t, tn.taps[1])
	expectSilence(t, tn.taps[2], 50*time.Millisecond)

	if port, ok := tn.sw.LookupFDB(mac(1)); !ok || port != 1 {
		t.Fatalf("FDB for mac(1) = %v, %v", port, ok)
	}
	st := tn.sw.Stats()
	if st.Flooded != 1 || st.Ports != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSwitchBroadcast(t *testing.T) {
	tn := newTestNet(t, 3)
	arp := packet.BuildARP(packet.ARPRequest, mac(1), ip(1), packet.MAC{}, ip(2))
	tn.eps[0].Send(arp)
	expectFrame(t, tn.taps[1])
	expectFrame(t, tn.taps[2])
	expectSilence(t, tn.taps[0], 50*time.Millisecond)
}

func TestSwitchRedirectRule(t *testing.T) {
	tn := newTestNet(t, 3)
	// Teach the switch where everyone is.
	tn.eps[1].Send(udpFrame(2, 9, 1, 1))
	tn.eps[2].Send(udpFrame(3, 9, 1, 1))
	time.Sleep(20 * time.Millisecond)
	for _, tap := range tn.taps { // drain frames flooded while learning
		for {
			select {
			case <-tap:
				continue
			default:
			}
			break
		}
	}

	// Steer all UDP traffic from host 1 into port 3 (the "NF ingress").
	inPort := PortID(1)
	proto := uint8(packet.ProtoUDP)
	tn.sw.AddRule(Rule{
		Priority: 10,
		Match:    Match{InPort: &inPort, Proto: &proto},
		Action:   ActionRedirect,
		OutPort:  3,
	})
	tn.eps[0].Send(udpFrame(1, 2, 5, 6))
	expectFrame(t, tn.taps[2]) // redirected to port 3
	expectSilence(t, tn.taps[1], 50*time.Millisecond)

	if tn.sw.Stats().Redirects != 1 {
		t.Fatalf("redirects = %d", tn.sw.Stats().Redirects)
	}
	// Non-UDP traffic from host 1 still follows normal forwarding.
	icmp := packet.BuildICMPEcho(mac(1), mac(2), ip(1), ip(2), packet.ICMPEchoRequest, 1, 1, nil)
	tn.eps[0].Send(icmp)
	expectFrame(t, tn.taps[1])
}

func TestSwitchDropRule(t *testing.T) {
	tn := newTestNet(t, 2)
	srcIP := ip(1)
	tn.sw.AddRule(Rule{Priority: 5, Match: Match{SrcIP: &srcIP}, Action: ActionDrop})
	tn.eps[0].Send(udpFrame(1, 2, 1, 2))
	expectSilence(t, tn.taps[1], 50*time.Millisecond)
	if tn.sw.Stats().Dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestSwitchRulePriorityAndRemoval(t *testing.T) {
	tn := newTestNet(t, 3)
	proto := uint8(packet.ProtoUDP)
	dropID := tn.sw.AddRule(Rule{Priority: 1, Match: Match{Proto: &proto}, Action: ActionDrop})
	tn.sw.AddRule(Rule{Priority: 10, Match: Match{Proto: &proto}, Action: ActionRedirect, OutPort: 3})

	tn.eps[0].Send(udpFrame(1, 2, 1, 2))
	expectFrame(t, tn.taps[2]) // high-priority redirect wins over drop

	rules := tn.sw.Rules()
	if len(rules) != 2 || rules[0].Priority != 10 {
		t.Fatalf("rules order = %+v", rules)
	}
	if !tn.sw.RemoveRule(dropID) {
		t.Fatal("RemoveRule failed")
	}
	if tn.sw.RemoveRule(dropID) {
		t.Fatal("double remove succeeded")
	}
}

func TestSwitchNormalActionOverridesLowerRules(t *testing.T) {
	tn := newTestNet(t, 3)
	proto := uint8(packet.ProtoUDP)
	sport := uint16(9999)
	// Low priority: drop all UDP. High priority: src port 9999 -> normal.
	tn.sw.AddRule(Rule{Priority: 1, Match: Match{Proto: &proto}, Action: ActionDrop})
	tn.sw.AddRule(Rule{Priority: 10, Match: Match{Proto: &proto, SrcPort: &sport}, Action: ActionNormal})

	tn.eps[0].Send(udpFrame(1, 2, 9999, 53))
	expectFrame(t, tn.taps[1]) // flooded (unknown dst) despite drop rule
	tn.eps[0].Send(udpFrame(1, 2, 1234, 53))
	expectSilence(t, tn.taps[1], 50*time.Millisecond)
}

func TestSwitchDetachFlushesFDB(t *testing.T) {
	tn := newTestNet(t, 2)
	tn.eps[0].Send(udpFrame(1, 2, 1, 2))
	expectFrame(t, tn.taps[1])
	if _, ok := tn.sw.LookupFDB(mac(1)); !ok {
		t.Fatal("mac(1) not learned")
	}
	tn.sw.Detach(1)
	if _, ok := tn.sw.LookupFDB(mac(1)); ok {
		t.Fatal("FDB entry survived Detach")
	}
	if tn.sw.Stats().Ports != 1 {
		t.Fatalf("ports = %d", tn.sw.Stats().Ports)
	}
}

func TestSwitchRedirectToMissingPortDrops(t *testing.T) {
	tn := newTestNet(t, 2)
	proto := uint8(packet.ProtoUDP)
	tn.sw.AddRule(Rule{Priority: 1, Match: Match{Proto: &proto}, Action: ActionRedirect, OutPort: 99})
	tn.eps[0].Send(udpFrame(1, 2, 1, 2))
	expectSilence(t, tn.taps[1], 50*time.Millisecond)
	if tn.sw.Stats().Dropped == 0 {
		t.Fatal("redirect to void not counted as drop")
	}
}

func TestSwitchMalformedFrameDropped(t *testing.T) {
	tn := newTestNet(t, 2)
	tn.eps[0].Send([]byte{1, 2, 3}) // not even an Ethernet header
	time.Sleep(20 * time.Millisecond)
	if tn.sw.Stats().Dropped == 0 {
		t.Fatal("malformed frame not dropped")
	}
}

func TestMatchFieldCombinations(t *testing.T) {
	var p packet.Parser
	if err := p.Parse(udpFrame(1, 2, 1000, 53)); err != nil {
		t.Fatal(err)
	}
	et := packet.EtherTypeIPv4
	src, dst := ip(1), ip(2)
	sm, dm := mac(1), mac(2)
	proto := uint8(packet.ProtoUDP)
	sp, dp := uint16(1000), uint16(53)
	inP := PortID(7)
	m := Match{InPort: &inP, SrcMAC: &sm, DstMAC: &dm, EtherType: &et,
		SrcIP: &src, DstIP: &dst, Proto: &proto, SrcPort: &sp, DstPort: &dp}
	if !m.Matches(7, &p) {
		t.Fatal("full match failed")
	}
	if m.Matches(8, &p) {
		t.Fatal("wrong in-port matched")
	}
	wrongPort := uint16(54)
	m4 := Match{DstPort: &wrongPort}
	if m4.Matches(7, &p) {
		t.Fatal("wrong dst port matched")
	}
	// IP match against an ARP frame must fail.
	var arpP packet.Parser
	if err := arpP.Parse(packet.BuildARP(packet.ARPRequest, sm, src, packet.MAC{}, dst)); err != nil {
		t.Fatal(err)
	}
	m2 := Match{SrcIP: &src}
	if m2.Matches(1, &arpP) {
		t.Fatal("IP match succeeded on ARP frame")
	}
	m3 := Match{}
	if !m3.Matches(1, &arpP) {
		t.Fatal("wildcard match failed")
	}
}

func TestSwitchConcurrentTraffic(t *testing.T) {
	tn := newTestNet(t, 4)
	var wg sync.WaitGroup
	const per = 50
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tn.eps[i].Send(udpFrame(byte(i+1), byte((i+1)%4+1), uint16(j), 53))
			}
		}(i)
	}
	wg.Wait()
	deadline := time.After(2 * time.Second)
	for tn.sw.Stats().RxFrames < 4*per {
		select {
		case <-deadline:
			t.Fatalf("switch saw %d frames, want %d", tn.sw.Stats().RxFrames, 4*per)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if tn.sw.String() == "" {
		t.Fatal("empty switch string")
	}
}
