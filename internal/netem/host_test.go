package netem

import (
	"context"
	"testing"
	"time"

	"gnf/internal/packet"
)

// twoHosts builds hostA <-> switch <-> hostB.
func twoHosts(t *testing.T) (*Host, *Host, *Switch) {
	t.Helper()
	sw := NewSwitch("sw")
	a1, a2 := NewVethPair("ha", "sw-a")
	b1, b2 := NewVethPair("hb", "sw-b")
	sw.Attach(1, a2)
	sw.Attach(2, b2)
	ha := NewHost(mac(1), ip(1), a1)
	hb := NewHost(mac(2), ip(2), b1)
	t.Cleanup(func() { a1.Close(); b1.Close() })
	return ha, hb, sw
}

func TestHostARPResolution(t *testing.T) {
	ha, hb, _ := twoHosts(t)
	if ha.Resolve(ip(2)) != packet.BroadcastMAC {
		t.Fatal("unknown IP should resolve to broadcast")
	}
	if err := ha.SendARPRequest(ip(2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for ha.Resolve(ip(2)) != hb.MACAddr {
		select {
		case <-deadline:
			t.Fatal("ARP reply never learned")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The replying host learned the requester too.
	if hb.Resolve(ip(1)) != ha.MACAddr {
		t.Fatal("responder did not learn requester")
	}
}

func TestHostPing(t *testing.T) {
	ha, _, _ := twoHosts(t)
	done, err := ha.Ping(ip(2), 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ping reply never arrived")
	}
}

func TestHostUDPEcho(t *testing.T) {
	ha, hb, _ := twoHosts(t)
	hb.HandleUDP(7, func(src, dst packet.Endpoint, payload []byte) []byte {
		return append([]byte("echo:"), payload...)
	})
	got := make(chan []byte, 1)
	ha.HandleUDP(5555, func(src, dst packet.Endpoint, payload []byte) []byte {
		got <- payload
		return nil
	})
	if err := ha.SendUDP(packet.Endpoint{Addr: ip(2), Port: 7}, 5555, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "echo:hi" {
			t.Fatalf("reply = %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no echo reply")
	}
}

func TestHostCatchAllUDP(t *testing.T) {
	ha, hb, _ := twoHosts(t)
	got := make(chan uint16, 1)
	hb.HandleAnyUDP(func(src, dst packet.Endpoint, payload []byte) []byte {
		got <- dst.Port
		return nil
	})
	ha.SendUDP(packet.Endpoint{Addr: ip(2), Port: 4321}, 1, []byte("x"))
	select {
	case port := <-got:
		if port != 4321 {
			t.Fatalf("port = %d", port)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("catch-all never fired")
	}
}

func TestHostIgnoresForeignUnicast(t *testing.T) {
	ha, hb, _ := twoHosts(t)
	seen := make(chan struct{}, 1)
	hb.HandleAnyUDP(func(src, dst packet.Endpoint, payload []byte) []byte {
		seen <- struct{}{}
		return nil
	})
	// Frame addressed to hb's IP but a different MAC: must be ignored at L2.
	frame := packet.BuildUDP(ha.MACAddr, mac(9), ip(1), ip(2), 1, 2, []byte("x"))
	ha.Endpoint().Send(frame)
	select {
	case <-seen:
		t.Fatal("host accepted frame for foreign MAC")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestHostTap(t *testing.T) {
	ha, hb, _ := twoHosts(t)
	frames := make(chan []byte, 8)
	hb.Tap(func(f []byte) { frames <- f })
	ha.SendUDP(packet.Endpoint{Addr: ip(2), Port: 1}, 2, []byte("tapped"))
	select {
	case <-frames:
	case <-time.After(2 * time.Second):
		t.Fatal("tap saw nothing")
	}
	hb.Tap(nil) // removable
}

// TestPingCtxCleansUpUnansweredEchoes is the regression test for the
// pingWaits leak: every echo lost on the wire used to leave a wait-table
// entry behind forever.
func TestPingCtxCleansUpUnansweredEchoes(t *testing.T) {
	ha, _, _ := twoHosts(t)
	const lost = 32
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < lost; i++ {
		// 10.0.0.99 has no host behind it: these echoes never come back.
		if _, err := ha.PingCtx(ctx, ip(99), 9, uint16(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := ha.PendingPings(); n != lost {
		t.Fatalf("pending pings = %d, want %d", n, lost)
	}
	cancel()
	deadline := time.After(2 * time.Second)
	for ha.PendingPings() != 0 {
		select {
		case <-deadline:
			t.Fatalf("pending pings = %d after cancel, want 0", ha.PendingPings())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestPingCtxTimeoutThenLateReplyIgnored: after the context deadline
// reclaims the wait, a late reply must not close anything or re-grow the
// table.
func TestPingCtxTimeoutThenLateReplyIgnored(t *testing.T) {
	ha, hb, _ := twoHosts(t)
	_ = hb // hb answers echoes addressed to it
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	ch, err := ha.PingCtx(ctx, ip(2), 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for ha.PendingPings() != 0 {
		select {
		case <-deadline:
			t.Fatal("expired ping wait never reclaimed")
		case <-time.After(2 * time.Millisecond):
		}
	}
	// The reply may still arrive; it must be ignored, and the original
	// channel may or may not have been closed before the deadline hit —
	// but the table must stay empty.
	time.Sleep(50 * time.Millisecond)
	if n := ha.PendingPings(); n != 0 {
		t.Fatalf("pending pings = %d after late reply, want 0", n)
	}
	select {
	case <-ch:
		// Closed before the deadline won the race: acceptable.
	default:
	}
}

// TestPingSendErrorDoesNotLeak: a send failure must remove the wait entry
// it just created.
func TestPingSendErrorDoesNotLeak(t *testing.T) {
	ha, _, _ := twoHosts(t)
	ha.Endpoint().Close()
	if _, err := ha.Ping(ip(2), 12, 1); err == nil {
		t.Fatal("ping on closed endpoint succeeded")
	}
	if n := ha.PendingPings(); n != 0 {
		t.Fatalf("pending pings = %d after send error, want 0", n)
	}
}
