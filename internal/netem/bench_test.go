package netem

import (
	"sync/atomic"
	"testing"
	"time"

	"gnf/internal/packet"
)

func BenchmarkVethDelivery(b *testing.B) {
	a, peer := NewVethPair("a", "b")
	defer a.Close()
	var delivered atomic.Uint64
	peer.SetReceiver(func([]byte) { delivered.Add(1) })
	frame := make([]byte, 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a.Send(frame) != nil {
		}
	}
	for delivered.Load() < uint64(b.N) {
		time.Sleep(time.Millisecond)
	}
}

func BenchmarkSwitchUnicastForward(b *testing.B) {
	sw := NewSwitch("bench")
	h1, p1 := NewVethPair("h1", "p1")
	h2, p2 := NewVethPair("h2", "p2")
	defer h1.Close()
	defer h2.Close()
	sw.Attach(1, p1)
	sw.Attach(2, p2)
	var got atomic.Uint64
	h2.SetReceiver(func([]byte) { got.Add(1) })

	// Teach the FDB both MACs.
	teach := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0, 2}, packet.MAC{2, 0, 0, 0, 0, 1},
		packet.IP{10, 0, 0, 2}, packet.IP{10, 0, 0, 1}, 1, 1, nil)
	h2.Send(teach)
	frame := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2}, 1000, 2000, make([]byte, 470))
	h1.Send(frame)
	deadline := time.After(time.Second)
	for got.Load() == 0 {
		select {
		case <-deadline:
			b.Fatal("warmup frame lost")
		case <-time.After(time.Millisecond):
		}
	}
	got.Store(0)

	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for h1.Send(frame) != nil {
		}
	}
	deadline = time.After(30 * time.Second)
	for got.Load() < uint64(b.N) {
		select {
		case <-deadline:
			b.Fatalf("delivered %d of %d", got.Load(), b.N)
		case <-time.After(time.Millisecond):
		}
	}
}

func BenchmarkSwitchSteeringLookup(b *testing.B) {
	// Measures the per-frame rule-evaluation cost with a realistic table.
	sw := NewSwitch("bench")
	for i := 0; i < 32; i++ {
		ip := packet.IP{10, 0, 1, byte(i)}
		in := PortID(500 + i)
		sw.AddRule(Rule{Priority: 10, Match: Match{InPort: &in, DstIP: &ip}, Action: ActionRedirect, OutPort: PortID(i)})
	}
	var p packet.Parser
	frame := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2}, 1000, 2000, nil)
	if err := p.Parse(frame); err != nil {
		b.Fatal(err)
	}
	rules := sw.Rules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := range rules {
			if rules[r].Match.Matches(1, &p) {
				break
			}
		}
	}
}
