package netem

import (
	"sync/atomic"
	"testing"
	"time"

	"gnf/internal/clock"
	"gnf/internal/packet"
)

func BenchmarkVethDelivery(b *testing.B) {
	a, peer := NewVethPair("a", "b")
	defer a.Close()
	var delivered atomic.Uint64
	peer.SetReceiver(func([]byte) { delivered.Add(1) })
	frame := make([]byte, 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a.Send(frame) != nil {
		}
	}
	for delivered.Load() < uint64(b.N) {
		time.Sleep(time.Millisecond)
	}
}

func BenchmarkSwitchUnicastForward(b *testing.B) {
	sw := NewSwitch("bench")
	h1, p1 := NewVethPair("h1", "p1")
	h2, p2 := NewVethPair("h2", "p2")
	defer h1.Close()
	defer h2.Close()
	sw.Attach(1, p1)
	sw.Attach(2, p2)
	var got atomic.Uint64
	h2.SetReceiver(func([]byte) { got.Add(1) })

	// Teach the FDB both MACs.
	teach := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0, 2}, packet.MAC{2, 0, 0, 0, 0, 1},
		packet.IP{10, 0, 0, 2}, packet.IP{10, 0, 0, 1}, 1, 1, nil)
	h2.Send(teach)
	frame := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2}, 1000, 2000, make([]byte, 470))
	h1.Send(frame)
	deadline := time.After(time.Second)
	for got.Load() == 0 {
		select {
		case <-deadline:
			b.Fatal("warmup frame lost")
		case <-time.After(time.Millisecond):
		}
	}
	got.Store(0)

	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	windowDeadline := time.Now().Add(30 * time.Second)
	for i := 0; i < b.N; i++ {
		// Window the in-flight count below the veth queue depth: Send
		// tail-drops silently under overload, which would lose frames
		// and hang the delivery wait below.
		for uint64(i)-got.Load() >= defaultQueueLen/2 {
			if time.Now().After(windowDeadline) {
				b.Fatalf("in-flight window stalled: delivered %d of %d sent", got.Load(), i)
			}
			time.Sleep(50 * time.Microsecond)
		}
		for h1.Send(frame) != nil {
		}
	}
	deadline = time.After(30 * time.Second)
	for got.Load() < uint64(b.N) {
		select {
		case <-deadline:
			b.Fatalf("delivered %d of %d", got.Load(), b.N)
		case <-time.After(time.Millisecond):
		}
	}
}

// benchRules installs n per-client steering entries the way an agent
// programs them — five-tuple matches on the client's address — none of
// which match the benchmark flow, so a full scan is the miss cost and the
// flow cache is what saves it.
func benchRules(sw *Switch, n int) {
	proto := uint8(packet.ProtoUDP)
	for i := 0; i < n; i++ {
		ip := packet.IP{10, 0, 1, byte(i)}
		port := uint16(7000 + i)
		sw.AddRule(Rule{Priority: 10, Match: Match{Proto: &proto, SrcIP: &ip, DstPort: &port},
			Action: ActionRedirect, OutPort: PortID(i)})
	}
}

// BenchmarkSwitchForwardParallel drives the forwarding pipeline from
// GOMAXPROCS goroutines at once (run with -cpu 1,2,4 to see the scaling
// the snapshot fast path buys): each worker is a distinct flow through a
// 32-rule table, so verdicts come from the flow cache after the first
// frame.
func BenchmarkSwitchForwardParallel(b *testing.B) {
	const lanes = 16 // ingress/egress port pairs, like cells on a station
	sw := NewSwitch("bench")
	for l := 0; l < lanes; l++ {
		// Peerless endpoints: Send is an O(1) rejection, so the bench
		// prices the forwarding pipeline itself rather than veth
		// delivery goroutines competing for the same GOMAXPROCS.
		sw.Attach(PortID(1+l), newEndpoint("in", clock.System(), LinkParams{MTU: DefaultMTU, QueueLen: 1}, 1))
		sw.AttachService(PortID(100+l), newEndpoint("out", clock.System(), LinkParams{MTU: DefaultMTU, QueueLen: 1}, 1))
	}
	benchRules(sw, 32)
	// Each lane's traffic redirects to its own service port, the
	// chain-ingress steering an agent programs per client.
	for l := 0; l < lanes; l++ {
		in := PortID(1 + l)
		sw.AddRule(Rule{Priority: 20, Match: Match{InPort: &in}, Action: ActionRedirect, OutPort: PortID(100 + l)})
	}

	var worker atomic.Uint64
	frame0 := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0x60, 0}, packet.MAC{2, 0, 0, 0, 0, 0x99},
		packet.IP{10, 0, 0, 1}, packet.IP{10, 99, 0, 1}, 1000, 7000, make([]byte, 470))
	b.SetBytes(int64(len(frame0)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := byte(worker.Add(1) % lanes)
		in := PortID(1 + int(id))
		frame := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0x60, id}, packet.MAC{2, 0, 0, 0, 0, 0x99},
			packet.IP{10, 0, 0, id}, packet.IP{10, 99, 0, 1}, 1000+uint16(id), 7000, make([]byte, 470))
		for pb.Next() {
			sw.input(in, frame)
		}
	})
	b.StopTimer()
	// The first frame of each worker flow is the only allowed miss.
	if st := sw.Stats(); uint64(b.N) > worker.Load() && st.CacheHits == 0 {
		b.Fatalf("flow cache never hit: %+v", st)
	}
}

// BenchmarkSwitchSteeringVerdict compares the two halves of the verdict
// path on a station serving many clients (128 steering entries): a
// flow-cache hit vs the full rule scan a miss pays.
func BenchmarkSwitchSteeringVerdict(b *testing.B) {
	mkSwitch := func() (*Switch, *packet.Parser) {
		sw := NewSwitch("bench")
		benchRules(sw, 128)
		var p packet.Parser
		frame := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
			packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2}, 1000, 2000, nil)
		if err := p.Parse(frame); err != nil {
			b.Fatal(err)
		}
		return sw, &p
	}
	b.Run("cache-hit", func(b *testing.B) {
		sw, p := mkSwitch()
		st := sw.state.Load()
		sw.steer(1, p, st) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sw.steer(1, p, st)
		}
	})
	b.Run("rule-scan-miss", func(b *testing.B) {
		sw, p := mkSwitch()
		st := sw.state.Load()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The work a cache miss pays: the priority-ordered scan.
			for r := range st.rules {
				if st.rules[r].Match.Matches(1, p) {
					break
				}
			}
		}
	})
}

// BenchmarkFlowKeyExtract prices the per-frame key construction the cache
// adds to the pipeline.
func BenchmarkFlowKeyExtract(b *testing.B) {
	var p packet.Parser
	frame := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2}, 1000, 2000, nil)
	if err := p.Parse(frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := p.FlowKey()
		_ = k.Hash()
	}
}

func BenchmarkSwitchSteeringLookup(b *testing.B) {
	// Measures the per-frame rule-evaluation cost with a realistic table.
	sw := NewSwitch("bench")
	for i := 0; i < 32; i++ {
		ip := packet.IP{10, 0, 1, byte(i)}
		in := PortID(500 + i)
		sw.AddRule(Rule{Priority: 10, Match: Match{InPort: &in, DstIP: &ip}, Action: ActionRedirect, OutPort: PortID(i)})
	}
	var p packet.Parser
	frame := packet.BuildUDP(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2}, 1000, 2000, nil)
	if err := p.Parse(frame); err != nil {
		b.Fatal(err)
	}
	rules := sw.Rules()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := range rules {
			if rules[r].Match.Matches(1, &p) {
				break
			}
		}
	}
}
