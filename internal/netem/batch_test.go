package netem

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"gnf/internal/packet"
)

func TestFrameRingOrderAndTailDrop(t *testing.T) {
	r := newFrameRing(4)
	frames := [][]byte{{1}, {2}, {3}, {4}, {5}}
	for i, f := range frames[:4] {
		if !r.push(f) {
			t.Fatalf("push %d refused", i)
		}
	}
	if r.push(frames[4]) {
		t.Fatal("push into full ring accepted")
	}
	if r.len() != 4 {
		t.Fatalf("len = %d", r.len())
	}
	select {
	case <-r.wait():
	default:
		t.Fatal("no wakeup pending after push")
	}

	dst := make([][]byte, 0, 2)
	got := r.popBatch(dst)
	if len(got) != 2 || got[0][0] != 1 || got[1][0] != 2 {
		t.Fatalf("popBatch = %v", got)
	}
	// Freed two slots: a batch of three fits two.
	if n := r.pushBatch([][]byte{{6}, {7}, {8}}); n != 2 {
		t.Fatalf("pushBatch = %d, want 2", n)
	}
	got = r.popBatch(make([][]byte, 0, 8))
	if len(got) != 4 || got[0][0] != 3 || got[3][0] != 7 {
		t.Fatalf("drained = %v", got)
	}
}

func TestSendBatchDeliversInOrder(t *testing.T) {
	a, b := NewVethPair("a", "b")
	t.Cleanup(a.Close)
	var mu sync.Mutex
	var got []byte // first payload byte per frame, in arrival order
	batches := 0
	b.SetBatchReceiver(func(frames [][]byte) {
		mu.Lock()
		batches++
		for _, f := range frames {
			got = append(got, f[0])
		}
		mu.Unlock()
	})

	const n = 100
	batch := make([][]byte, n)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	if sent := a.SendBatch(batch); sent != n {
		t.Fatalf("SendBatch = %d", sent)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		done := len(got) == n
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", len(got), n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("frame %d delivered out of order (payload %d)", i, v)
		}
	}
	if batches == 0 {
		t.Fatal("batch receiver never invoked")
	}
	if st := a.Stats(); st.TxFrames != n || st.Drops != 0 {
		t.Fatalf("stats = %v", st)
	}
}

func TestSendBatchRecyclesDrops(t *testing.T) {
	base := packet.FramePoolOutstanding()
	a, b := NewVethPair("a", "b", WithLink(LinkParams{MTU: 100}))
	b.SetBatchReceiver(func(frames [][]byte) {
		for _, f := range frames {
			packet.ReturnFrame(f)
		}
	})
	t.Cleanup(a.Close)

	oversize := packet.BorrowFrame()[:200]
	fits := packet.BorrowFrame()[:50]
	if sent := a.SendBatch([][]byte{oversize, fits}); sent != 1 {
		t.Fatalf("SendBatch = %d, want 1", sent)
	}
	if st := a.Stats(); st.Drops != 1 {
		t.Fatalf("drops = %d", st.Drops)
	}
	waitOutstanding(t, base)

	// Closed endpoint: the whole batch is recycled.
	a.Close()
	if sent := a.SendBatch([][]byte{packet.BorrowFrame()[:10]}); sent != 0 {
		t.Fatalf("SendBatch on closed = %d", sent)
	}
	waitOutstanding(t, base)
}

// waitOutstanding polls until the frame pool's outstanding count drops back
// to base (delivery and recycling are asynchronous).
func waitOutstanding(t *testing.T, base int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for packet.FramePoolOutstanding() != base {
		if time.Now().After(deadline) {
			t.Fatalf("frame pool outstanding = %d, want %d", packet.FramePoolOutstanding(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// loadFrame builds a pooled copy of template with a uint32 stamp written
// into the UDP payload (offset 42).
func stampedFrame(template []byte, stamp uint32) []byte {
	f := packet.BorrowFrame()[:len(template)]
	copy(f, template)
	binary.BigEndian.PutUint32(f[42:], stamp)
	return f
}

// TestInjectBatchMatchesPerFrame pushes the same frames through the
// per-frame and batched switch paths and expects identical forwarding.
func TestInjectBatchMatchesPerFrame(t *testing.T) {
	tn := newTestNet(t, 3)
	// Learn host 2's port so forwarding unicasts. The prime frame floods
	// (mac 1 is unknown), so consume it from both other taps.
	tn.eps[1].Send(udpFrame(2, 1, 9, 9))
	expectFrame(t, tn.taps[0])
	expectFrame(t, tn.taps[2])

	template := packet.BuildUDP(mac(1), mac(2), ip(1), ip(2), 4000, 53, make([]byte, 8))
	const n = 32
	perFrame := make([][]byte, n)
	batched := make([][]byte, n)
	for i := range perFrame {
		perFrame[i] = stampedFrame(template, uint32(i))
		batched[i] = stampedFrame(template, uint32(i))
	}
	for _, f := range perFrame {
		tn.sw.Inject(1, f)
	}
	for i := 0; i < n; i++ {
		f := expectFrame(t, tn.taps[1])
		if got := binary.BigEndian.Uint32(f[42:]); got != uint32(i) {
			t.Fatalf("per-frame path: frame %d carries stamp %d", i, got)
		}
	}
	tn.sw.InjectBatch(1, batched)
	for i := 0; i < n; i++ {
		f := expectFrame(t, tn.taps[1])
		if got := binary.BigEndian.Uint32(f[42:]); got != uint32(i) {
			t.Fatalf("batched path: frame %d carries stamp %d", i, got)
		}
	}
	expectSilence(t, tn.taps[2], 50*time.Millisecond)
}

// TestBatchRunAmortization verifies a same-flow batch is steered with one
// verdict: every frame after the first counts as a cache hit without a
// table scan, and all of them still reach the right port.
func TestBatchRunAmortization(t *testing.T) {
	tn := newTestNet(t, 2)
	tn.eps[1].Send(udpFrame(2, 1, 9, 9))
	expectFrame(t, tn.taps[0])
	before := tn.sw.Stats()

	template := packet.BuildUDP(mac(1), mac(2), ip(1), ip(2), 4000, 53, make([]byte, 8))
	const n = 64
	batch := make([][]byte, n)
	for i := range batch {
		batch[i] = stampedFrame(template, uint32(i))
	}
	tn.sw.InjectBatch(1, batch)
	for i := 0; i < n; i++ {
		expectFrame(t, tn.taps[1])
	}
	after := tn.sw.Stats()
	if hits := after.CacheHits - before.CacheHits; hits < n-1 {
		t.Fatalf("cache hits = %d, want >= %d (run amortization)", hits, n-1)
	}
}

// TestRuleInstallRacingBatchedForwarding is the generation-bump regression
// test for the batched fast path: while one goroutine streams same-flow
// batches through the switch, the control plane installs a drop rule. The
// staleness check inside inputBatch must re-snapshot the table mid-batch,
// so no frame injected after AddRule returns may ride a stale cached (or
// run-amortized) forward verdict. Run under -race this also proves the
// snapshot handoff is memory-safe.
func TestRuleInstallRacingBatchedForwarding(t *testing.T) {
	tn := newTestNet(t, 2)
	tn.eps[1].Send(udpFrame(2, 1, 9, 9))
	expectFrame(t, tn.taps[0])

	template := packet.BuildUDP(mac(1), mac(2), ip(1), ip(2), 4000, 53, make([]byte, 8))
	var mu sync.Mutex
	injected := uint32(0) // next batch stamp; guarded by mu
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			stamp := injected
			mu.Unlock()
			batch := make([][]byte, 64)
			for i := range batch {
				batch[i] = stampedFrame(template, stamp)
			}
			tn.sw.InjectBatch(1, batch)
			mu.Lock()
			injected = stamp + 1
			mu.Unlock()
		}
	}()

	// Let traffic flow, then install the drop.
	expectFrame(t, tn.taps[1])
	proto := uint8(packet.ProtoUDP)
	tn.sw.AddRule(Rule{Priority: 10, Match: Match{Proto: &proto}, Action: ActionDrop})
	mu.Lock()
	// The batch stamped `injected` may already be mid-flight around the
	// install; every batch stamped strictly later starts after the new
	// table is published and must be dropped entirely.
	boundary := injected
	mu.Unlock()

	timeout := time.After(500 * time.Millisecond)
	for draining := true; draining; {
		select {
		case f := <-tn.taps[1]:
			if stamp := binary.BigEndian.Uint32(f[42:]); stamp > boundary {
				t.Fatalf("frame from batch %d delivered after drop rule installed at batch %d", stamp, boundary)
			}
		case <-timeout:
			draining = false
		}
	}
	close(stop)
	<-done
	// Drain what's left in flight; still nothing newer than the boundary.
	deadline := time.After(200 * time.Millisecond)
	for {
		select {
		case f := <-tn.taps[1]:
			if stamp := binary.BigEndian.Uint32(f[42:]); stamp > boundary {
				t.Fatalf("late frame from batch %d leaked past the drop rule", stamp)
			}
		case <-deadline:
			return
		}
	}
}

// TestSwitchDropPathsRecycle covers the pooled-buffer bookkeeping of every
// switch drop path reachable from a batch: rule drops and hairpin drops
// must return frames to the pool.
func TestSwitchDropPathsRecycle(t *testing.T) {
	base := packet.FramePoolOutstanding()
	tn := newTestNet(t, 2)
	proto := uint8(packet.ProtoUDP)
	tn.sw.AddRule(Rule{Priority: 10, Match: Match{Proto: &proto}, Action: ActionDrop})

	template := packet.BuildUDP(mac(1), mac(2), ip(1), ip(2), 4000, 53, make([]byte, 8))
	batch := make([][]byte, 16)
	for i := range batch {
		batch[i] = stampedFrame(template, uint32(i))
	}
	tn.sw.InjectBatch(1, batch)
	waitOutstanding(t, base)

	drops := tn.sw.Stats().Dropped
	if drops < 16 {
		t.Fatalf("dropped = %d, want >= 16", drops)
	}
}

// TestHostPathReclaimsPooledFrames is the copy-on-retain leak test: pooled
// frames flowing veth -> switch -> Host must all return to the pool once
// the UDP handler has run, and a handler that copies its payload keeps
// valid data even after the buffers are reused.
func TestHostPathReclaimsPooledFrames(t *testing.T) {
	base := packet.FramePoolOutstanding()
	sw := NewSwitch("sw")
	g1, g2 := NewVethPair("gen", "gen-sw")
	s1, s2 := NewVethPair("sink", "sink-sw")
	sw.Attach(1, g2)
	sw.Attach(2, s2)
	t.Cleanup(func() { g1.Close(); s1.Close() })
	host := NewHost(mac(2), ip(2), s1)
	host.Learn(ip(1), mac(1))

	var mu sync.Mutex
	seen := make(map[uint32]bool)
	host.HandleUDP(53, func(src, dst packet.Endpoint, payload []byte) []byte {
		// Copy-on-retain: the payload aliases a pooled frame that is
		// reclaimed when this handler returns.
		stamp := binary.BigEndian.Uint32(payload)
		mu.Lock()
		seen[stamp] = true
		mu.Unlock()
		return nil
	})
	// Teach the switch where the host lives.
	if err := host.SendUDP(packet.Endpoint{Addr: ip(1), Port: 9}, 9, []byte("prime")); err != nil {
		t.Fatal(err)
	}

	template := packet.BuildUDP(mac(1), mac(2), ip(1), ip(2), 4000, 53, make([]byte, 8))
	const rounds, per = 10, 50
	for r := 0; r < rounds; r++ {
		batch := make([][]byte, per)
		for i := range batch {
			batch[i] = stampedFrame(template, uint32(r*per+i))
		}
		if sent := g1.SendBatch(batch); sent != per {
			t.Fatalf("round %d: sent %d of %d", r, sent, per)
		}
		// Stay well under every queue depth.
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			n := len(seen)
			mu.Unlock()
			if n == (r+1)*per {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: delivered %d of %d", r, n, (r+1)*per)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i := uint32(0); i < rounds*per; i++ {
		if !seen[i] {
			t.Fatalf("stamp %d never arrived", i)
		}
	}
	// Every pooled frame must be back: the host returns buffers after the
	// handler, and no path on the way may leak.
	waitOutstanding(t, base)
}
