// Package netem emulates the GNF dataplane substrate: virtual Ethernet
// pairs (the two-veth container wiring of §3), links with delay/rate/loss
// models, an L2 learning switch with a match-action steering table (the
// "transparent traffic handling" hook the Agents program), and a minimal
// L3 host for traffic endpoints.
//
// Frames are ordinary []byte Ethernet frames; everything that carries cost
// (propagation delay, serialization at a link rate) is expressed against a
// clock.Clock so simulations run deterministically on virtual time.
package netem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gnf/internal/clock"
	"gnf/internal/packet"
)

// Errors returned by endpoints.
var (
	ErrClosed      = errors.New("netem: endpoint closed")
	ErrNoPeer      = errors.New("netem: endpoint has no peer")
	ErrFrameTooBig = errors.New("netem: frame exceeds MTU")
)

// DefaultMTU bounds frame size including the Ethernet header.
const DefaultMTU = 1514

// defaultQueueLen is the per-direction transmit queue depth (frames).
const defaultQueueLen = 512

// deliverBatchSize caps how many queued frames one delivery pass hands to
// a batch receiver.
const deliverBatchSize = 256

// LinkParams model one direction of a link.
type LinkParams struct {
	Delay    time.Duration // propagation delay
	RateBps  int64         // serialization rate in bits/s; 0 = infinite
	LossProb float64       // independent drop probability in [0,1)
	MTU      int           // 0 = DefaultMTU
	QueueLen int           // 0 = defaultQueueLen
}

// Endpoint is one end of a virtual Ethernet pair. Frames sent on an
// endpoint are delivered — subject to the link model — to the peer's
// receiver function.
type Endpoint struct {
	name string
	clk  clock.Clock
	link LinkParams
	rng  *rand.Rand
	rngM sync.Mutex

	peer *Endpoint

	mu        sync.Mutex
	recv      func(frame []byte)
	recvBatch func(frames [][]byte)
	ring      *frameRing
	closed    bool
	done      chan struct{}

	txFrames, rxFrames atomic.Uint64
	txBytes, rxBytes   atomic.Uint64
	drops              atomic.Uint64
}

// PairOption adjusts veth construction.
type PairOption func(*pairConfig)

type pairConfig struct {
	clk  clock.Clock
	a2b  LinkParams
	b2a  LinkParams
	seed int64
}

// WithClock selects the time source for link delays (default: system).
func WithClock(c clock.Clock) PairOption { return func(pc *pairConfig) { pc.clk = c } }

// WithLink sets symmetric link parameters for both directions.
func WithLink(p LinkParams) PairOption {
	return func(pc *pairConfig) { pc.a2b, pc.b2a = p, p }
}

// WithAsymLink sets per-direction link parameters.
func WithAsymLink(aToB, bToA LinkParams) PairOption {
	return func(pc *pairConfig) { pc.a2b, pc.b2a = aToB, bToA }
}

// WithSeed fixes the loss-model PRNG seed for reproducible tests.
func WithSeed(seed int64) PairOption { return func(pc *pairConfig) { pc.seed = seed } }

// NewVethPair creates a connected pair of endpoints, the emulation of `ip
// link add ... type veth peer ...`. Each direction runs its own delivery
// goroutine; Close either end to stop both.
func NewVethPair(nameA, nameB string, opts ...PairOption) (*Endpoint, *Endpoint) {
	cfg := pairConfig{clk: clock.System(), seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	a := newEndpoint(nameA, cfg.clk, cfg.a2b, cfg.seed)
	b := newEndpoint(nameB, cfg.clk, cfg.b2a, cfg.seed+1)
	a.peer, b.peer = b, a
	go a.deliverLoop()
	go b.deliverLoop()
	return a, b
}

func newEndpoint(name string, clk clock.Clock, link LinkParams, seed int64) *Endpoint {
	if link.MTU == 0 {
		link.MTU = DefaultMTU
	}
	if link.QueueLen == 0 {
		link.QueueLen = defaultQueueLen
	}
	return &Endpoint{
		name: name,
		clk:  clk,
		link: link,
		rng:  rand.New(rand.NewSource(seed)),
		ring: newFrameRing(link.QueueLen),
		done: make(chan struct{}),
	}
}

// Name returns the endpoint's interface name.
func (e *Endpoint) Name() string { return e.name }

// SetReceiver installs the function invoked for each frame arriving at this
// endpoint. The frame slice is owned by the receiver.
func (e *Endpoint) SetReceiver(fn func(frame []byte)) {
	e.mu.Lock()
	e.recv = fn
	e.mu.Unlock()
}

// SetBatchReceiver installs a receiver invoked with a whole batch of
// arriving frames when the link is unshaped (no delay, no rate limit) and
// more than zero frames are queued. The frames — and the batch slice
// itself — are only valid for the duration of the call; the receiver owns
// the frame buffers but must not retain the slice. Endpoints with a batch
// receiver fall back to the per-frame receiver on shaped links, where each
// frame carries its own serialization and propagation cost.
func (e *Endpoint) SetBatchReceiver(fn func(frames [][]byte)) {
	e.mu.Lock()
	e.recvBatch = fn
	e.mu.Unlock()
}

// Send transmits a frame toward the peer, transferring ownership of the
// buffer. It never blocks: when the transmit queue is full the frame is
// dropped (tail-drop), as a real qdisc would. Dropped pooled buffers are
// recycled.
func (e *Endpoint) Send(frame []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		packet.ReturnFrame(frame)
		return ErrClosed
	}
	if e.peer == nil {
		packet.ReturnFrame(frame)
		return ErrNoPeer
	}
	if len(frame) > e.link.MTU {
		e.drops.Add(1)
		packet.ReturnFrame(frame)
		return ErrFrameTooBig
	}
	if p := e.link.LossProb; p > 0 {
		e.rngM.Lock()
		lost := e.rng.Float64() < p
		e.rngM.Unlock()
		if lost {
			e.drops.Add(1)
			packet.ReturnFrame(frame)
			return nil // silently lost on the wire
		}
	}
	n := len(frame)
	if e.ring.push(frame) {
		e.txFrames.Add(1)
		e.txBytes.Add(uint64(n))
	} else {
		e.drops.Add(1)
		packet.ReturnFrame(frame)
	}
	return nil
}

// SendBatch transmits a batch of frames, applying the same per-frame link
// model as Send but paying the queue lock once. Ownership of every buffer
// transfers to the endpoint. It returns the number of frames accepted onto
// the queue.
func (e *Endpoint) SendBatch(frames [][]byte) int {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed || e.peer == nil {
		packet.ReturnFrames(frames)
		return 0
	}
	// Apply MTU and loss per frame, compacting survivors in place so the
	// ring sees one contiguous push.
	kept := frames[:0]
	for _, f := range frames {
		if len(f) > e.link.MTU {
			e.drops.Add(1)
			packet.ReturnFrame(f)
			continue
		}
		if p := e.link.LossProb; p > 0 {
			e.rngM.Lock()
			lost := e.rng.Float64() < p
			e.rngM.Unlock()
			if lost {
				e.drops.Add(1)
				packet.ReturnFrame(f)
				continue
			}
		}
		kept = append(kept, f)
	}
	pushed := e.ring.pushBatch(kept)
	for _, f := range kept[:pushed] {
		e.txFrames.Add(1)
		e.txBytes.Add(uint64(len(f)))
	}
	for _, f := range kept[pushed:] {
		e.drops.Add(1)
		packet.ReturnFrame(f)
	}
	return pushed
}

// deliverLoop applies serialization and propagation delay, then hands
// frames to the peer's receiver — a whole popped batch at a time when the
// link is unshaped and the peer accepts batches, per frame otherwise.
func (e *Endpoint) deliverLoop() {
	scratch := make([][]byte, 0, deliverBatchSize)
	shaped := e.link.RateBps > 0 || e.link.Delay > 0
	for {
		batch := e.ring.popBatch(scratch)
		if len(batch) == 0 {
			select {
			case <-e.done:
				return
			case <-e.ring.wait():
				continue
			}
		}
		peer := e.peer
		if shaped {
			// Shaped links price each frame individually; batching must not
			// change when a frame crosses the wire.
			for _, frame := range batch {
				if e.link.RateBps > 0 {
					ser := time.Duration(int64(len(frame)) * 8 * int64(time.Second) / e.link.RateBps)
					e.clk.Sleep(ser)
				}
				if e.link.Delay > 0 {
					e.clk.Sleep(e.link.Delay)
				}
				peer.deliverOne(frame)
			}
			continue
		}
		peer.mu.Lock()
		batchFn, fn := peer.recvBatch, peer.recv
		closed := peer.closed
		peer.mu.Unlock()
		if closed {
			packet.ReturnFrames(batch)
			continue
		}
		peer.rxFrames.Add(uint64(len(batch)))
		for _, frame := range batch {
			peer.rxBytes.Add(uint64(len(frame)))
		}
		switch {
		case batchFn != nil:
			batchFn(batch)
		case fn != nil:
			for _, frame := range batch {
				fn(frame)
			}
		default:
			packet.ReturnFrames(batch)
		}
	}
}

// deliverOne hands a single frame to this endpoint's receiver.
func (e *Endpoint) deliverOne(frame []byte) {
	e.mu.Lock()
	fn := e.recv
	closed := e.closed
	e.mu.Unlock()
	if closed {
		packet.ReturnFrame(frame)
		return
	}
	e.rxFrames.Add(1)
	e.rxBytes.Add(uint64(len(frame)))
	if fn != nil {
		fn(frame)
	} else {
		packet.ReturnFrame(frame)
	}
}

// Close stops delivery on both directions of the pair.
func (e *Endpoint) Close() {
	for _, ep := range []*Endpoint{e, e.peer} {
		if ep == nil {
			continue
		}
		ep.mu.Lock()
		if !ep.closed {
			ep.closed = true
			close(ep.done)
		}
		ep.mu.Unlock()
	}
}

// Stats is a snapshot of endpoint counters.
type Stats struct {
	Name               string
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	Drops              uint64
}

// Stats returns the endpoint's counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		Name:     e.name,
		TxFrames: e.txFrames.Load(),
		RxFrames: e.rxFrames.Load(),
		TxBytes:  e.txBytes.Load(),
		RxBytes:  e.rxBytes.Load(),
		Drops:    e.drops.Load(),
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%s: tx=%d/%dB rx=%d/%dB drop=%d",
		s.Name, s.TxFrames, s.TxBytes, s.RxFrames, s.RxBytes, s.Drops)
}

// Peer returns the other end of the pair.
func (e *Endpoint) Peer() *Endpoint { return e.peer }
