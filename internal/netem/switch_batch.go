package netem

import (
	"bytes"
	"sync"

	"gnf/internal/packet"
)

// Batched forwarding fast path. A batch popped off one port's ring is
// walked frame by frame, but consecutive frames of the same flow — a
// "run", detected by raw header-prefix equality without parsing — reuse
// the previous steering verdict: one parse, one flow-cache probe and one
// FDB learn per run instead of per frame. Output frames are coalesced into
// per-destination-port sub-batches so the egress ring lock is also paid
// once per run, not once per frame.

// runPrefixLen is the amortization window: Ethernet (14) + IPv4 header
// with IHL=5 (20) + transport ports (4) + UDP length (2). Every field a
// steering Match or FlowKey can inspect — and every field the IPv4/UDP
// decoders validate, except the frame-length bound checked per frame —
// lives inside this window, so two frames with equal prefixes are
// indistinguishable to the rule table and parse identically.
const runPrefixLen = 40

// runnable reports whether a frame qualifies as a run reference: untagged
// IPv4 with no options and a UDP payload. Anything else (VLAN tags, IP
// options, TCP whose sequence numbers sit inside the window) takes the
// per-frame cached-verdict path, which is still one map probe.
func runnable(frame []byte) bool {
	return len(frame) >= runPrefixLen &&
		frame[12] == 0x08 && frame[13] == 0x00 && // EtherType IPv4
		frame[14] == 0x45 && // version 4, IHL 5
		frame[23] == 17 // protocol UDP
}

// sameFlowPrefix reports whether frame continues the run described by hdr
// (the copied prefix of an earlier runnable frame). The TotalLength bound
// is re-checked against this frame's own length; every other decoder
// invariant is implied by prefix equality with a frame that parsed clean.
func sameFlowPrefix(hdr, frame []byte) bool {
	if len(frame) < runPrefixLen {
		return false
	}
	if int(frame[16])<<8|int(frame[17])+14 > len(frame) {
		return false
	}
	return bytes.Equal(hdr[:runPrefixLen], frame[:runPrefixLen])
}

// portDispatch collects the frames of one batch bound for one egress port.
type portDispatch struct {
	port   *swPort
	frames [][]byte
}

// dispatchBatch is the pooled per-batch scratch: destination sub-batches
// plus the run state. A batch rarely touches more than a handful of ports,
// so destination lookup is a short linear scan.
type dispatchBatch struct {
	dests []portDispatch
}

var dispatchPool = sync.Pool{New: func() any { return new(dispatchBatch) }}

func (d *dispatchBatch) add(p *swPort, f []byte) {
	for i := range d.dests {
		if d.dests[i].port == p {
			d.dests[i].frames = append(d.dests[i].frames, f)
			return
		}
	}
	if n := len(d.dests); n < cap(d.dests) {
		// Reclaim a previously used entry so its frames backing array is
		// reused across batches.
		d.dests = d.dests[:n+1]
		e := &d.dests[n]
		e.port = p
		e.frames = append(e.frames[:0], f)
		return
	}
	d.dests = append(d.dests, portDispatch{port: p, frames: append(make([][]byte, 0, deliverBatchSize), f)})
}

// flush sends every sub-batch and clears frame references so delivered
// buffers are not pinned past the batch.
func (d *dispatchBatch) flush() {
	for i := range d.dests {
		e := &d.dests[i]
		if e.port != nil && len(e.frames) > 0 {
			e.port.ep.SendBatch(e.frames)
		}
		for j := range e.frames {
			e.frames[j] = nil
		}
		e.frames = e.frames[:0]
		e.port = nil
	}
	d.dests = d.dests[:0]
}

// inputBatch runs the forwarding pipeline over a batch of frames arriving
// on one port. Every frame re-loads the control-plane snapshot pointer (a
// single atomic load): a rule installed mid-batch invalidates the current
// run immediately, so no frame after the mutation can be forwarded on a
// stale verdict.
func (s *Switch) inputBatch(in PortID, frames [][]byte) {
	p := packet.BorrowParser()
	defer packet.ReturnParser(p)
	d := dispatchPool.Get().(*dispatchBatch)
	defer dispatchPool.Put(d)

	st := s.state.Load()
	inService := false
	if sp, ok := st.ports[in]; ok {
		inService = sp.service
	}

	var (
		runValid  bool
		runHdr    [runPrefixLen]byte
		runAction Action
		runOut    PortID
		runDst    packet.MAC
		runMcast  bool
	)

	sampler := s.sampler.Load()
	for _, frame := range frames {
		rxN := s.rxFrames.Inc(uint(in))
		s.batchFrames.Inc(uint(in))
		if cur := s.state.Load(); cur != st {
			// Control-plane mutation mid-batch: re-resolve everything
			// against the new snapshot.
			st = cur
			inService = false
			if sp, ok := st.ports[in]; ok {
				inService = sp.service
			}
			runValid = false
		}

		var (
			action Action
			out    PortID
			dstMAC packet.MAC
			mcast  bool
		)
		if runValid && sameFlowPrefix(runHdr[:], frame) {
			// A run reuse is a verdict served without a rule scan — the
			// same event CacheHits counts, minus even the map probe.
			s.cacheHits.Inc(uint(in))
			action, out = runAction, runOut
			dstMAC, mcast = runDst, runMcast
		} else {
			runValid = false
			if err := p.Parse(frame); err != nil {
				s.dropped.Inc(uint(in))
				packet.ReturnFrame(frame)
				continue
			}
			if !inService && !p.Eth.Src.IsMulticast() && !p.Eth.Src.IsZero() {
				if _, pin := st.pinned[p.Eth.Src]; !pin {
					s.fdb.learn(p.Eth.Src, in)
				}
			}
			action, out = s.steer(in, p, st)
			dstMAC = p.Eth.Dst
			mcast = p.Eth.Dst.IsMulticast()
			if runnable(frame) {
				// The prefix is copied, not referenced: ownership of frame
				// moves to the egress ring below, and a recycled buffer must
				// not be able to corrupt run detection.
				copy(runHdr[:], frame[:runPrefixLen])
				runValid = true
				runAction, runOut = action, out
				runDst, runMcast = dstMAC, mcast
				s.batchRuns.Inc(uint(in))
			}
		}
		if sampler != nil {
			sampler.observe(in, rxN, action, out)
		}

		switch action {
		case ActionDrop:
			s.dropped.Inc(uint(in))
			packet.ReturnFrame(frame)
			continue
		case ActionRedirect:
			s.redirects.Inc(uint(in))
			if dst := st.ports[out]; dst != nil {
				d.add(dst, frame)
			} else {
				s.dropped.Inc(uint(in))
				packet.ReturnFrame(frame)
			}
			continue
		}

		// Normal forwarding. The FDB is consulted per frame even inside a
		// run — learning elsewhere in the switch must repoint traffic as
		// soon as it happens, exactly as on the per-frame path.
		var dst *swPort
		if !mcast {
			if port, ok := st.pinned[dstMAC]; ok {
				dst = st.ports[port]
			} else if port, ok := s.fdb.lookup(dstMAC); ok {
				dst = st.ports[port]
			}
		}
		if dst != nil {
			if dst.id == in {
				s.dropped.Inc(uint(in))
				packet.ReturnFrame(frame)
				continue
			}
			d.add(dst, frame)
			continue
		}
		// Flood. Flush batched unicast first: a clone sent now must not
		// overtake an earlier frame to the same port still sitting in the
		// scratch, or per-port FIFO order would break.
		d.flush()
		s.flooded.Inc(uint(in))
		for _, sp := range st.flood {
			if sp.id != in {
				sp.ep.Send(packet.Clone(frame))
			}
		}
		packet.ReturnFrame(frame)
	}
	d.flush()
}

// Inject runs the forwarding pipeline for one frame on the caller's
// goroutine, as if it had arrived on port in. Ownership of the buffer
// transfers to the switch. Benchmarks and tests use it to price the
// pipeline without a delivery goroutine in the loop.
func (s *Switch) Inject(in PortID, frame []byte) { s.input(in, frame) }

// InjectBatch is Inject for a whole batch, entering the batched fast path.
// The batch slice is the caller's again after return; the frames are not.
func (s *Switch) InjectBatch(in PortID, frames [][]byte) { s.inputBatch(in, frames) }
