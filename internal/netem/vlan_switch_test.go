package netem_test

import (
	"sync/atomic"
	"testing"
	"time"

	"gnf/internal/netem"
	"gnf/internal/packet"
)

// collector attaches a counting receiver to an endpoint.
func collector(ep *netem.Endpoint) *atomic.Int64 {
	var n atomic.Int64
	ep.SetReceiver(func([]byte) { n.Add(1) })
	return &n
}

// waitCount polls until the counter reaches want.
func waitCount(t *testing.T, n *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for n.Load() < want {
		select {
		case <-deadline:
			t.Fatalf("count = %d, want %d", n.Load(), want)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestSwitchVIDSteering(t *testing.T) {
	sw := netem.NewSwitch("vlansw")
	aSw, aHost := netem.NewVethPair("a0", "a1")
	bSw, bHost := netem.NewVethPair("b0", "b1")
	qSw, qHost := netem.NewVethPair("q0", "q1") // quarantine port
	sw.Attach(1, aSw)
	sw.Attach(2, bSw)
	sw.Attach(3, qSw)
	bGot := collector(bHost)
	qGot := collector(qHost)

	// Steer VLAN 99 to the quarantine port; other traffic forwards
	// normally.
	vid := uint16(99)
	sw.AddRule(netem.Rule{
		Priority: 10,
		Match:    netem.Match{VID: &vid},
		Action:   netem.ActionRedirect,
		OutPort:  3,
	})

	src := packet.MAC{2, 0, 0, 0, 0, 1}
	dst := packet.MAC{2, 0, 0, 0, 0, 2}
	plain := packet.BuildUDP(src, dst, packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2}, 1, 2, nil)

	// Teach the switch where dst lives.
	back := packet.BuildUDP(dst, src, packet.IP{10, 0, 0, 2}, packet.IP{10, 0, 0, 1}, 2, 1, nil)
	if err := bHost.Send(back); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	// Untagged and VLAN-7 frames go to b; VLAN-99 frames are quarantined.
	if err := aHost.Send(plain); err != nil {
		t.Fatal(err)
	}
	if err := aHost.Send(packet.TagVLAN(plain, 0, 7)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, bGot, 2)
	if err := aHost.Send(packet.TagVLAN(plain, 0, 99)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, qGot, 1)
	if bGot.Load() != 2 {
		t.Fatalf("b received %d frames, want 2", bGot.Load())
	}
}

func TestSwitchPinnedMACNeverMoves(t *testing.T) {
	sw := netem.NewSwitch("pinsw")
	aSw, aHost := netem.NewVethPair("a0", "a1")
	upSw, upHost := netem.NewVethPair("u0", "u1")
	sw.Attach(1, aSw)
	sw.Attach(0, upSw)
	aGot := collector(aHost)
	collector(upHost)

	client := packet.MAC{2, 0, 0, 0, 0, 0xAA}
	remote := packet.MAC{2, 0, 0, 0, 0, 0xBB}
	sw.PinMAC(client, 1)

	// A copy of the client's own frame arrives from the uplink (as a
	// backhaul flood would deliver it). Learning must NOT repoint the
	// client's FDB entry at port 0.
	spoof := packet.BuildUDP(client, remote, packet.IP{10, 0, 0, 1}, packet.IP{10, 9, 0, 1}, 1, 2, nil)
	if err := upHost.Send(spoof); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if port, ok := sw.LookupFDB(client); !ok || port != 1 {
		t.Fatalf("pinned entry moved: port=%v ok=%v", port, ok)
	}

	// Traffic to the client still lands on its access port.
	toClient := packet.BuildUDP(remote, client, packet.IP{10, 9, 0, 1}, packet.IP{10, 0, 0, 1}, 2, 1, nil)
	if err := upHost.Send(toClient); err != nil {
		t.Fatal(err)
	}
	waitCount(t, aGot, 2) // the flooded spoof copy + the directed frame

	// Unpinning restores normal learning.
	sw.UnpinMAC(client)
	if _, ok := sw.LookupFDB(client); ok {
		t.Fatal("unpin left a dynamic entry")
	}
	if err := upHost.Send(spoof); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if port, ok := sw.LookupFDB(client); !ok || port != 0 {
		t.Fatalf("after unpin, learning broken: port=%v ok=%v", port, ok)
	}
}
