package netem

import "sync/atomic"

// Frame sampler: the dataplane end of the tracing plane. Control-plane
// spans describe *why* steering changed; the sampler captures *what* the
// fast path is actually doing, by recording every Nth forwarding verdict
// into a fixed ring. The sampler adds no read-modify-write of its own to
// the per-frame path: it piggybacks on the rx counter the pipeline
// already increments, comparing that stripe count against a per-stripe
// "next sample at" threshold — a plain atomic load and a branch per
// frame, plus, once per N frames, one CAS and one packed ring store.
// Disarmed, the cost is a single atomic pointer load.

// SampleRecord is one sampled forwarding verdict.
type SampleRecord struct {
	In     PortID `json:"in"`
	Out    PortID `json:"out"`
	Action Action `json:"action"`
}

// samplerRingSize bounds retained samples (power of two for mask indexing).
const samplerRingSize = 1024

type samplerCell struct {
	next atomic.Uint64 // rx-stripe count at which to take the next sample
	_    [120]byte     // pad past a cache line, as in stripedCounter
}

type frameSampler struct {
	every   uint64
	cells   [counterStripes]samplerCell
	head    atomic.Uint64
	sampled atomic.Uint64
	// ring entries are packed into one word so concurrent writers and the
	// Samples reader stay atomic without a lock:
	// bit 63 = valid, bits 32..47 = in, bits 16..31 = out, bits 0..7 = action.
	ring [samplerRingSize]atomic.Uint64
}

func packSample(in, out PortID, action Action) uint64 {
	return 1<<63 | uint64(uint16(in))<<32 | uint64(uint16(out))<<16 | uint64(action)
}

func unpackSample(v uint64) SampleRecord {
	return SampleRecord{
		In:     PortID(uint16(v >> 32)),
		Out:    PortID(uint16(v >> 16)),
		Action: Action(uint8(v)),
	}
}

// observe records the frame whose rx-stripe count n reaches the stripe's
// threshold. n is the value rxFrames.Inc already produced for this frame,
// so the common (unsampled) path costs one plain load and a compare. The
// CAS arbitrates concurrent frames crossing the threshold together: one
// wins the sample, the rest fall back to the cheap path.
func (fs *frameSampler) observe(in PortID, n uint64, action Action, out PortID) {
	c := &fs.cells[uint(in)&(counterStripes-1)].next
	next := c.Load()
	if n < next || !c.CompareAndSwap(next, n+fs.every) {
		return
	}
	fs.sampled.Add(1)
	idx := (fs.head.Add(1) - 1) & (samplerRingSize - 1)
	fs.ring[idx].Store(packSample(in, out, action))
}

// EnableSampling arms the switch's frame sampler to record one of every
// `every` forwarded frames (every 100 = 1% sampling). every < 1 disarms.
// Re-arming replaces the sampler, resetting its ring and counters.
func (s *Switch) EnableSampling(every int) {
	if every < 1 {
		s.sampler.Store(nil)
		return
	}
	fs := &frameSampler{every: uint64(every)}
	for i := range fs.cells {
		// Seed each threshold from the stripe's current rx count so frames
		// forwarded before arming don't count toward the first sample.
		fs.cells[i].next.Store(s.rxFrames.Cell(uint(i)) + fs.every)
	}
	s.sampler.Store(fs)
}

// DisableSampling disarms the frame sampler.
func (s *Switch) DisableSampling() { s.sampler.Store(nil) }

// SampledFrames reports how many frames the sampler has captured.
func (s *Switch) SampledFrames() uint64 {
	if fs := s.sampler.Load(); fs != nil {
		return fs.sampled.Load()
	}
	return 0
}

// Samples returns the retained sampled verdicts, oldest first (at most
// samplerRingSize; older samples are overwritten in place).
func (s *Switch) Samples() []SampleRecord {
	fs := s.sampler.Load()
	if fs == nil {
		return nil
	}
	head := fs.head.Load()
	out := make([]SampleRecord, 0, samplerRingSize)
	for i := uint64(0); i < samplerRingSize; i++ {
		v := fs.ring[(head+i)&(samplerRingSize-1)].Load()
		if v>>63 == 1 {
			out = append(out, unpackSample(v))
		}
	}
	return out
}
