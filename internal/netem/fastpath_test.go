package netem

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gnf/internal/packet"
)

// TestDetachFlushesPinnedEntries is the regression test for detached cell
// ports leaving sticky FDB entries behind: pinned MACs are never
// re-learned, so a survivor would blackhole (or mis-deliver) the client's
// traffic forever.
func TestDetachFlushesPinnedEntries(t *testing.T) {
	tn := newTestNet(t, 3)
	tn.sw.PinMAC(mac(1), 1)
	if port, ok := tn.sw.LookupFDB(mac(1)); !ok || port != 1 {
		t.Fatalf("pinned lookup = %v, %v", port, ok)
	}

	// The client's cell port goes away (e.g. the cell endpoint is torn
	// down during a handoff).
	tn.sw.Detach(1)
	if _, ok := tn.sw.LookupFDB(mac(1)); ok {
		t.Fatal("pinned FDB entry survived Detach")
	}

	// The client reassociates on port 3: traffic to it must unicast
	// there, not chase the dead pin.
	tn.sw.PinMAC(mac(1), 3)
	tn.eps[1].Send(udpFrame(2, 1, 100, 200))
	expectFrame(t, tn.taps[2])
	if port, ok := tn.sw.LookupFDB(mac(1)); !ok || port != 3 {
		t.Fatalf("reassociated lookup = %v, %v", port, ok)
	}
}

// TestFlowCacheInvalidationOnRuleChange verifies generation-stamped
// verdicts die with the table mutation that outdates them: a cached
// redirect must stop matching on the very next frame after RemoveRule,
// and a newly added drop rule must take effect despite a cached normal
// verdict.
func TestFlowCacheInvalidationOnRuleChange(t *testing.T) {
	tn := newTestNet(t, 3)
	// Teach the FDB where host 2 lives so normal forwarding unicasts.
	tn.eps[1].Send(udpFrame(2, 9, 1, 1))
	time.Sleep(20 * time.Millisecond)
	drainTaps(tn)

	proto := uint8(packet.ProtoUDP)
	id := tn.sw.AddRule(Rule{Priority: 10, Match: Match{Proto: &proto}, Action: ActionRedirect, OutPort: 3})

	// Two identical frames: miss then cache hit, both redirected.
	tn.eps[0].Send(udpFrame(1, 2, 5, 6))
	tn.eps[0].Send(udpFrame(1, 2, 5, 6))
	expectFrame(t, tn.taps[2])
	expectFrame(t, tn.taps[2])
	expectSilence(t, tn.taps[1], 50*time.Millisecond)
	if st := tn.sw.Stats(); st.CacheHits == 0 {
		t.Fatalf("repeated flow did not hit the cache: %+v", st)
	}

	// Remove the redirect: the same flow must revert to normal
	// forwarding on the next frame, not keep hitting the stale verdict.
	if !tn.sw.RemoveRule(id) {
		t.Fatal("RemoveRule failed")
	}
	tn.eps[0].Send(udpFrame(1, 2, 5, 6))
	expectFrame(t, tn.taps[1])
	expectSilence(t, tn.taps[2], 50*time.Millisecond)

	// And a new drop rule must beat the now-cached normal verdict.
	tn.sw.AddRule(Rule{Priority: 10, Match: Match{Proto: &proto}, Action: ActionDrop})
	tn.eps[0].Send(udpFrame(1, 2, 5, 6))
	expectSilence(t, tn.taps[1], 50*time.Millisecond)
	expectSilence(t, tn.taps[2], 50*time.Millisecond)
}

func drainTaps(tn *testNet) {
	for _, tap := range tn.taps {
		for {
			select {
			case <-tap:
				continue
			default:
			}
			break
		}
	}
}

// TestRuleChurnRacingForwarding runs steady traffic through the switch
// while the control plane churns rules, ports, and pins — the scenario
// the copy-on-write snapshot exists for. Run under -race; the assertion
// at the end also checks the table converged to correct behavior.
func TestRuleChurnRacingForwarding(t *testing.T) {
	tn := newTestNet(t, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Forwarding load on three ports.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				tn.eps[i].Send(udpFrame(byte(i+1), byte((i+1)%3+1), uint16(j%8+1), 53))
			}
		}(i)
	}
	// Rule churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		proto := uint8(packet.ProtoUDP)
		for j := 0; ; j++ {
			select {
			case <-stop:
				return
			default:
			}
			sport := uint16(j%8 + 1)
			id := tn.sw.AddRule(Rule{Priority: 5, Match: Match{Proto: &proto, SrcPort: &sport}, Action: ActionDrop})
			tn.sw.RemoveRule(id)
		}
	}()
	// Pin/unpin and port churn on a spare port id.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; ; j++ {
			select {
			case <-stop:
				return
			default:
			}
			tn.sw.PinMAC(mac(200), PortID(j%3+1))
			tn.sw.UnpinMAC(mac(200))
			host, swSide := NewVethPair("churn-h", "churn-sw")
			tn.sw.Attach(99, swSide)
			tn.sw.Detach(99)
			host.Close()
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	drainTaps(tn)

	// Post-churn sanity: empty table, forwarding still correct.
	if n := len(tn.sw.Rules()); n != 0 {
		t.Fatalf("rules leaked: %d", n)
	}
	tn.eps[0].Send(udpFrame(1, 2, 77, 88))
	expectFrame(t, tn.taps[1])
}

// TestFlowCacheBounded floods the switch with more distinct flows than
// the cache can hold and checks occupancy stays within its cap.
func TestFlowCacheBounded(t *testing.T) {
	tn := newTestNet(t, 2)
	const flows = flowCacheShards*flowCacheShardCap + 4096
	for i := 0; i < flows; i++ {
		// Vary the source port and IP to mint distinct flow keys.
		f := packet.BuildUDP(mac(1), mac(2), packet.IP{10, 0, byte(i >> 8), byte(i)}, ip(2),
			uint16(i%60000+1), 53, nil)
		tn.eps[0].Send(f) // tail drops under pressure are fine
		if i%256 == 0 {
			time.Sleep(time.Millisecond) // let delivery drain the veth queue
		}
	}
	// Frames accepted into the veth queue (TxFrames) are always
	// delivered; wait for them all to traverse the pipeline.
	sent := tn.eps[0].Stats().TxFrames
	deadline := time.After(10 * time.Second)
	for tn.sw.Stats().RxFrames < sent {
		select {
		case <-deadline:
			t.Fatalf("switch saw %d of %d frames", tn.sw.Stats().RxFrames, sent)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got, bound := tn.sw.Stats().FlowEntries, flowCacheShards*flowCacheShardCap; got > bound {
		t.Fatalf("flow cache grew past its bound: %d > %d", got, bound)
	}
}

// TestParallelForwardingDelivers pushes frames from four ports
// concurrently through steering rules and checks nothing is misrouted —
// the lock-free pipeline must behave like the locked one.
func TestParallelForwardingDelivers(t *testing.T) {
	tn := newTestNet(t, 4)
	proto := uint8(packet.ProtoUDP)
	inPort := PortID(1)
	// Steer host 1's UDP into port 4; everything else forwards normally.
	tn.sw.AddRule(Rule{Priority: 10, Match: Match{InPort: &inPort, Proto: &proto}, Action: ActionRedirect, OutPort: 4})

	var redirected, normal atomic.Uint64
	tn.eps[3].SetReceiver(func([]byte) { redirected.Add(1) })
	tn.eps[1].SetReceiver(func([]byte) { normal.Add(1) })
	// Teach the FDB host 2's port so host 3's frames unicast.
	tn.eps[1].Send(udpFrame(2, 9, 1, 1))
	time.Sleep(20 * time.Millisecond)

	const per = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // steered traffic
		defer wg.Done()
		for j := 0; j < per; j++ {
			for tn.eps[0].Send(udpFrame(1, 2, uint16(j%16+1), 53)) != nil {
			}
			if j%64 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	go func() { // normal unicast traffic
		defer wg.Done()
		for j := 0; j < per; j++ {
			for tn.eps[2].Send(udpFrame(3, 2, uint16(j%16+1), 80)) != nil {
			}
			if j%64 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	deadline := time.After(10 * time.Second)
	for redirected.Load() < per || normal.Load() < per {
		select {
		case <-deadline:
			t.Fatalf("redirected=%d normal=%d, want >= %d each", redirected.Load(), normal.Load(), per)
		case <-time.After(2 * time.Millisecond):
		}
	}
}
