package netem

import (
	"sync"
	"testing"
)

func TestFrameBufferFIFOAndOverflow(t *testing.T) {
	b := NewFrameBuffer(3)
	for i := 0; i < 3; i++ {
		if !b.Push(uint8(i%2), []byte{byte(i)}) {
			t.Fatalf("push %d refused below limit", i)
		}
	}
	if b.Push(0, []byte{9}) {
		t.Fatal("push accepted past limit")
	}
	if got := b.Overflow(); got != 1 {
		t.Fatalf("overflow = %d, want 1", got)
	}
	if got := b.Len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	frames := b.Drain()
	if len(frames) != 3 {
		t.Fatalf("drained %d frames, want 3", len(frames))
	}
	for i, f := range frames {
		if f.Frame[0] != byte(i) || f.Tag != uint8(i%2) {
			t.Fatalf("frame %d = %+v, out of order", i, f)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("len after drain = %d", b.Len())
	}
	// Room again after draining.
	if !b.Push(1, []byte{42}) {
		t.Fatal("push refused after drain")
	}
}

func TestFrameBufferConcurrentPush(t *testing.T) {
	b := NewFrameBuffer(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Push(0, []byte{1})
			}
		}()
	}
	wg.Wait()
	if got := b.Len() + int(b.Overflow()); got != 1600 {
		t.Fatalf("parked+overflowed = %d, want 1600", got)
	}
}
