package netem

import (
	"testing"

	"gnf/internal/packet"
)

// sinkTaps keeps every tap drained, returning delivered pooled frames so
// counters are the injections' only residue.
func sinkTaps(tn *testNet) {
	for _, tap := range tn.taps {
		go func(ch chan []byte) {
			for f := range ch {
				packet.ReturnFrame(f)
			}
		}(tap)
	}
}

func samplerFrame(srcH, dstH byte, srcPort uint16) []byte {
	tmpl := udpFrame(srcH, dstH, srcPort, 9)
	f := packet.BorrowFrame()[:len(tmpl)]
	copy(f, tmpl)
	return f
}

func TestFrameSamplerOneInN(t *testing.T) {
	tn := newTestNet(t, 2)
	sinkTaps(tn)

	tn.sw.EnableSampling(10)
	// Pin a redirect so sampled verdicts are deterministic.
	inPort := PortID(1)
	tn.sw.AddRule(Rule{Priority: 10, Match: Match{InPort: &inPort}, Action: ActionRedirect, OutPort: 2})

	const frames = 200
	for i := 0; i < frames; i++ {
		tn.sw.Inject(1, samplerFrame(1, 2, uint16(1000+i)))
	}
	if got := tn.sw.SampledFrames(); got != frames/10 {
		t.Fatalf("SampledFrames = %d, want %d", got, frames/10)
	}
	samples := tn.sw.Samples()
	if len(samples) != frames/10 {
		t.Fatalf("len(Samples) = %d, want %d", len(samples), frames/10)
	}
	for _, s := range samples {
		if s.In != 1 || s.Out != 2 || s.Action != ActionRedirect {
			t.Fatalf("unexpected sample %+v", s)
		}
	}
	if st := tn.sw.Stats(); st.SampledFrames != frames/10 {
		t.Fatalf("Stats().SampledFrames = %d", st.SampledFrames)
	}

	tn.sw.DisableSampling()
	tn.sw.Inject(1, samplerFrame(1, 2, 42))
	if got := tn.sw.SampledFrames(); got != 0 {
		t.Fatalf("SampledFrames after disable = %d", got)
	}
}

func TestFrameSamplerBatchPathAndRunCounters(t *testing.T) {
	tn := newTestNet(t, 2)
	sinkTaps(tn)

	tn.sw.EnableSampling(10)
	inPort := PortID(1)
	tn.sw.AddRule(Rule{Priority: 10, Match: Match{InPort: &inPort}, Action: ActionRedirect, OutPort: 2})

	// Same flow throughout: the batch path should establish one run per
	// batch (first frame scans, the rest reuse) and still sample 1 in 10.
	const batches, per = 5, 40
	for b := 0; b < batches; b++ {
		batch := make([][]byte, per)
		for i := range batch {
			batch[i] = samplerFrame(1, 2, 7777)
		}
		tn.sw.InjectBatch(1, batch)
	}
	st := tn.sw.Stats()
	if st.BatchFrames != batches*per {
		t.Fatalf("BatchFrames = %d, want %d", st.BatchFrames, batches*per)
	}
	if st.BatchRuns == 0 || st.BatchRuns > batches {
		t.Fatalf("BatchRuns = %d, want 1..%d", st.BatchRuns, batches)
	}
	if st.SampledFrames != batches*per/10 {
		t.Fatalf("SampledFrames = %d, want %d", st.SampledFrames, batches*per/10)
	}
	for _, s := range tn.sw.Samples() {
		if s.Action != ActionRedirect || s.Out != 2 {
			t.Fatalf("unexpected sample %+v", s)
		}
	}
}
