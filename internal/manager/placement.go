package manager

import (
	"sort"
	"sync/atomic"
	"time"
)

// StationInfo is a placement-time snapshot of one connected station, built
// from the agent registry and the most recent health reports (§3: the
// Manager "continuously monitoring the health and resource utilization from
// the GNF stations").
type StationInfo struct {
	// Station is the station ID.
	Station string
	// Cloud marks GNFC cloud sites (high capacity, WAN latency).
	Cloud bool
	// Capacity is the station's container memory capacity in bytes
	// (0 = unlimited).
	Capacity uint64
	// CPUPercent is the last reported CPU load.
	CPUPercent float64
	// MemUsed is the last reported container memory use in bytes.
	MemUsed uint64
	// Chains is the number of chains the station currently hosts.
	Chains int
	// PoolHashes lists the config hashes of shared NF instances the
	// station reported hosting — what SharingFirstPlacement matches
	// against to land chains where a compatible instance already runs.
	PoolHashes []string
	// Stale is true when no health report has arrived yet; policies
	// should treat such stations as unknown-load, not idle.
	Stale bool
	// RTTToClient predicts the round-trip between the station currently
	// serving the client (PlacementHint.ClientAt) and this candidate over
	// the modeled topology graph; RTTKnown is false when no topology is
	// installed, the hint names no client station, or no path exists.
	RTTToClient time.Duration
	RTTKnown    bool
}

// hostsPool reports whether the station hosts a shared instance with any
// of the given config hashes.
func (si StationInfo) hostsPool(hashes []string) bool {
	for _, want := range hashes {
		for _, have := range si.PoolHashes {
			if want == have {
				return true
			}
		}
	}
	return false
}

// memRatio returns fractional memory pressure (0 when capacity unlimited).
func (si StationInfo) memRatio() float64 {
	if si.Capacity == 0 {
		return 0
	}
	return float64(si.MemUsed) / float64(si.Capacity)
}

// PlacementHint carries per-decision context into a Placement policy.
type PlacementHint struct {
	// Client owns the chain being placed.
	Client string
	// Chain is the chain name.
	Chain string
	// Prefer is the client's current station ("" when disconnected);
	// client-local policies pick it when alive.
	Prefer string
	// AllowCloud permits GNFC cloud sites as targets. Roaming and
	// failover keep chains at the edge unless the operator opted in.
	AllowCloud bool
	// ConfigHashes carries the chain's canonical configuration hashes (the
	// pool keys its shareable members would share under); sharing-aware
	// policies prefer stations already hosting a compatible instance.
	ConfigHashes []string
	// ClientAt is the station currently serving the client — the reference
	// point RTT predictions are computed from. Unlike Prefer it may name a
	// station excluded from the candidate list (evacuating the client's
	// own station) or one already declared dead (failover).
	ClientAt string
	// MaxRTT is the chain's QoS budget (ChainSpec.MaxRTTMs); QoSPlacement
	// rejects candidates whose predicted RTT exceeds it (0 = no budget).
	MaxRTT time.Duration
}

// Placement chooses the hosting station for a chain among live candidates.
// It is consulted wherever the client's own station is not the forced
// answer: evacuation, failover re-placement and cloud offload. Candidates
// are pre-filtered (alive, not excluded) and sorted by station name, so
// policies are deterministic given equal inputs.
type Placement interface {
	// Name identifies the policy in reports and ablation benches.
	Name() string
	// Pick returns the chosen station; ok=false when no candidate suits.
	Pick(candidates []StationInfo, hint PlacementHint) (string, bool)
}

// ClientLocalPlacement is GNF's default policy (§3: the Manager "notifies
// the closest Agent"): host on the client's current station when it is a
// live candidate, otherwise fall back to least-loaded.
type ClientLocalPlacement struct{}

// Name implements Placement.
func (ClientLocalPlacement) Name() string { return "client-local" }

// Pick implements Placement.
func (ClientLocalPlacement) Pick(cands []StationInfo, hint PlacementHint) (string, bool) {
	if hint.Prefer != "" {
		for _, c := range cands {
			if c.Station == hint.Prefer {
				return c.Station, true
			}
		}
	}
	return LeastLoadedPlacement{}.Pick(cands, hint)
}

// LeastLoadedPlacement picks the station with the lowest CPU load, breaking
// ties by memory pressure and then by name. Stations that have not
// reported yet lose to stations with known load.
type LeastLoadedPlacement struct{}

// Name implements Placement.
func (LeastLoadedPlacement) Name() string { return "least-loaded" }

// Pick implements Placement.
func (LeastLoadedPlacement) Pick(cands []StationInfo, hint PlacementHint) (string, bool) {
	if !hint.AllowCloud {
		cands = edgeOnly(cands)
	}
	if len(cands) == 0 {
		return "", false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if lessLoaded(c, best) {
			best = c
		}
	}
	return best.Station, true
}

// lessLoaded orders stations by (stale, CPU, memory pressure, name).
func lessLoaded(a, b StationInfo) bool {
	if a.Stale != b.Stale {
		return !a.Stale
	}
	if a.CPUPercent != b.CPUPercent {
		return a.CPUPercent < b.CPUPercent
	}
	if ar, br := a.memRatio(), b.memRatio(); ar != br {
		return ar < br
	}
	return a.Station < b.Station
}

// SpreadPlacement picks the station hosting the fewest chains — it
// maximises function-to-host dispersion so a single station failure takes
// out the fewest clients.
type SpreadPlacement struct{}

// Name implements Placement.
func (SpreadPlacement) Name() string { return "spread" }

// Pick implements Placement.
func (SpreadPlacement) Pick(cands []StationInfo, hint PlacementHint) (string, bool) {
	if !hint.AllowCloud {
		cands = edgeOnly(cands)
	}
	if len(cands) == 0 {
		return "", false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Chains < best.Chains ||
			(c.Chains == best.Chains && lessLoaded(c, best)) {
			best = c
		}
	}
	return best.Station, true
}

// RoundRobinPlacement rotates deterministically through the candidate list;
// cheap and oblivious, it is the ablation baseline against load-aware
// policies.
type RoundRobinPlacement struct {
	next atomic.Uint64
}

// Name implements Placement.
func (*RoundRobinPlacement) Name() string { return "round-robin" }

// Pick implements Placement.
func (p *RoundRobinPlacement) Pick(cands []StationInfo, hint PlacementHint) (string, bool) {
	if !hint.AllowCloud {
		cands = edgeOnly(cands)
	}
	if len(cands) == 0 {
		return "", false
	}
	i := p.next.Add(1) - 1
	return cands[i%uint64(len(cands))].Station, true
}

// SharingFirstPlacement prefers stations that already host a shared NF
// instance compatible with the chain being placed (matched by the config
// hashes in the hint): landing there costs a refcount instead of a
// container boot ("Reducing Service Deployment Cost Through VNF Sharing").
// Among compatible hosts the least-loaded wins; with no compatible host —
// or no hashes in the hint — it defers to Fallback (default
// ClientLocalPlacement, preserving GNF's client-local bias).
type SharingFirstPlacement struct {
	Fallback Placement
}

// Name implements Placement.
func (SharingFirstPlacement) Name() string { return "sharing-first" }

// Pick implements Placement.
func (p SharingFirstPlacement) Pick(cands []StationInfo, hint PlacementHint) (string, bool) {
	if !hint.AllowCloud {
		cands = edgeOnly(cands)
	}
	if len(hint.ConfigHashes) > 0 {
		var hosts []StationInfo
		for _, c := range cands {
			if c.hostsPool(hint.ConfigHashes) {
				hosts = append(hosts, c)
			}
		}
		if len(hosts) > 0 {
			return LeastLoadedPlacement{}.Pick(hosts, PlacementHint{AllowCloud: true})
		}
	}
	fb := p.Fallback
	if fb == nil {
		fb = ClientLocalPlacement{}
	}
	return fb.Pick(cands, hint)
}

// CloudFirstPlacement prefers GNFC cloud sites (capacity first, WAN latency
// tolerated), falling back to the edge when no cloud site is connected.
// It is the offload default.
type CloudFirstPlacement struct{}

// Name implements Placement.
func (CloudFirstPlacement) Name() string { return "cloud-first" }

// Pick implements Placement.
func (CloudFirstPlacement) Pick(cands []StationInfo, hint PlacementHint) (string, bool) {
	var clouds []StationInfo
	for _, c := range cands {
		if c.Cloud {
			clouds = append(clouds, c)
		}
	}
	if len(clouds) > 0 {
		return LeastLoadedPlacement{}.Pick(clouds, PlacementHint{AllowCloud: true})
	}
	return LeastLoadedPlacement{}.Pick(cands, hint)
}

// edgeOnly filters cloud sites out of the candidate list.
func edgeOnly(cands []StationInfo) []StationInfo {
	out := cands[:0:0]
	for _, c := range cands {
		if !c.Cloud {
			out = append(out, c)
		}
	}
	return out
}

// SetPlacement swaps the placement policy consulted by evacuation,
// failover and offload (default ClientLocalPlacement).
func (m *Manager) SetPlacement(p Placement) {
	m.mutate(func(c *controlState) { c.placement = p })
}

// Placement returns the active placement policy.
func (m *Manager) Placement() Placement {
	return m.state().placement
}

// StationInfos snapshots every connected station except those listed in
// exclude, sorted by station name. It is the candidate list handed to
// Placement policies and is exported for the UI's capacity view.
func (m *Manager) StationInfos(exclude ...string) []StationInfo {
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	chainCount := make(map[string]int)
	m.clients.forEach(func(_ string, rec *clientRec) {
		rec.mu.Lock()
		for _, at := range rec.deployedOn {
			chainCount[at]++
		}
		rec.mu.Unlock()
	})
	agents := m.state().agents
	handles := make([]*AgentHandle, 0, len(agents))
	for st, h := range agents {
		if !skip[st] {
			handles = append(handles, h)
		}
	}

	out := make([]StationInfo, 0, len(handles))
	for _, h := range handles {
		rep, seen := h.LastReport()
		si := StationInfo{
			Station:    h.Station,
			Cloud:      h.Cloud,
			Capacity:   h.capacity,
			CPUPercent: rep.Usage.CPUPercent,
			MemUsed:    rep.Usage.MemoryBytes,
			Chains:     chainCount[h.Station],
			Stale:      seen.IsZero(),
		}
		for _, ps := range rep.Pools {
			if ps.Refs > 0 || ps.Replicas > 0 {
				si.PoolHashes = append(si.PoolHashes, ps.ConfigHash)
			}
		}
		out = append(out, si)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Station < out[j].Station })
	return out
}

// place runs the active policy over live candidates, annotated with RTT
// predictions when a topology graph is installed.
func (m *Manager) place(hint PlacementHint, exclude ...string) (string, bool) {
	cands := m.StationInfos(exclude...)
	st := m.state()
	p, g := st.placement, st.topo
	if p == nil {
		p = ClientLocalPlacement{}
	}
	annotateRTT(g, cands, hint.ClientAt)
	return p.Pick(cands, hint)
}
