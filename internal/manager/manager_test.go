package manager_test

import (
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/manager"
	"gnf/internal/metrics"
	"gnf/internal/netem"
	"gnf/internal/topology"
	"gnf/internal/wire"

	_ "gnf/internal/nf/builtin"
)

// fakeStation connects a real agent (with a minimal dataplane) to a
// manager for control-plane-focused tests.
func fakeStation(t *testing.T, mgr *manager.Manager, name string) (*agent.Agent, *agent.Link) {
	t.Helper()
	clk := clock.NewAutoVirtual()
	repo := container.NewRepository(clk, 0, 0)
	for _, kind := range []string{"firewall", "counter"} {
		repo.Push(container.Image{Name: agent.ImageForKind(kind), SizeBytes: 1 << 20, MemoryBytes: 1 << 20})
	}
	rt := container.NewRuntime(name, clk, repo)
	sw := netem.NewSwitch(name)
	up, _ := netem.NewVethPair(name+"-up", name+"-core")
	sw.Attach(0, up)
	ag := agent.New(topology.StationID(name), clk, rt, sw, 0)
	link, err := agent.Connect(ag, mgr.Addr(), 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(link.Close)
	return ag, link
}

func TestManagerTracksAgentsAndDisconnects(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	_, linkA := fakeStation(t, mgr, "st-a")
	fakeStation(t, mgr, "st-b")

	deadline := time.After(2 * time.Second)
	for len(mgr.Agents()) != 2 {
		select {
		case <-deadline:
			t.Fatalf("agents = %v", mgr.Agents())
		case <-time.After(5 * time.Millisecond):
		}
	}
	linkA.Close()
	deadline = time.After(2 * time.Second)
	for len(mgr.Agents()) != 1 {
		select {
		case <-deadline:
			t.Fatalf("after disconnect: %v", mgr.Agents())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if mgr.Agents()[0] != "st-b" {
		t.Fatalf("remaining agent = %v", mgr.Agents())
	}
}

func TestHotspotDetection(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithHotspotCPU(50))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	// Hand-feed a report through a raw wire peer pretending to be a hot
	// station.
	peer, err := wire.Dial(mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	go peer.Run()
	defer peer.Close()
	if err := peer.Call(agent.MethodRegister, agent.RegisterSpec{Station: "hot"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := peer.Notify(agent.MethodReport, agent.Report{
		Station: "hot",
		Usage:   metrics.ResourceUsage{CPUPercent: 93},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		hs := mgr.Hotspots()
		if len(hs) == 1 && hs[0] == "hot" {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("hotspots = %v", hs)
		case <-time.After(5 * time.Millisecond):
		}
	}
	// A cool report clears it.
	peer.Notify(agent.MethodReport, agent.Report{Station: "hot", Usage: metrics.ResourceUsage{CPUPercent: 3}})
	deadline = time.After(2 * time.Second)
	for len(mgr.Hotspots()) != 0 {
		select {
		case <-deadline:
			t.Fatalf("hotspots = %v", mgr.Hotspots())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestStrategySwitching(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithStrategy(manager.StrategyCold))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if mgr.Strategy() != manager.StrategyCold {
		t.Fatalf("strategy = %v", mgr.Strategy())
	}
	mgr.SetStrategy(manager.StrategyStateful)
	if mgr.Strategy() != manager.StrategyStateful {
		t.Fatalf("strategy = %v", mgr.Strategy())
	}
}

func TestMigrateToUnknownStationFails(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	mgr.RegisterClient("phone")
	if _, err := mgr.MigrateChain("phone", "nope", "ghost-station"); err == nil {
		t.Fatal("migrating unknown chain succeeded")
	}
}
