package manager

// Internal tests for the chain-partitioning primitives: segment
// derivation, layout validation, anchor election, and the multi-leg RTT
// walk. These run under -race in CI alongside the cross-process segment
// scenarios; here they pin the pure logic the control plane builds on.

import (
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/topology"
)

func fns(affinities ...string) []agent.NFSpec {
	out := make([]agent.NFSpec, len(affinities))
	for i, a := range affinities {
		out[i] = agent.NFSpec{Kind: "counter", Name: string(rune('a' + i)), Affinity: a}
	}
	return out
}

func TestSegmentsOfPartitioning(t *testing.T) {
	cases := []struct {
		name       string
		affinities []string
		wantSegs   int
		wantSizes  []int
		wantTags   []string
	}{
		{"all untagged: one segment", []string{"", "", ""}, 1, []int{3}, []string{""}},
		{"single tag: one segment", []string{"near-client", "", ""}, 1, []int{3}, []string{"near-client"}},
		{"empty inherits previous", []string{"near-client", "", "aggregate", ""}, 2, []int{2, 2}, []string{"near-client", "aggregate"}},
		{"leading empties inherit first tag", []string{"", "near-client", "aggregate"}, 2, []int{2, 1}, []string{"near-client", "aggregate"}},
		{"three-way split", []string{"near-client", "aggregate", "cloud-ok"}, 3, []int{1, 1, 1}, []string{"near-client", "aggregate", "cloud-ok"}},
		{"adjacent equal tags merge", []string{"aggregate", "aggregate", "cloud-ok"}, 2, []int{2, 1}, []string{"aggregate", "cloud-ok"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			segs := SegmentsOf(ChainSpec{Name: "c", Functions: fns(tc.affinities...)})
			if len(segs) != tc.wantSegs {
				t.Fatalf("got %d segments, want %d: %+v", len(segs), tc.wantSegs, segs)
			}
			total := 0
			for i, sg := range segs {
				if len(sg.Functions) != tc.wantSizes[i] {
					t.Errorf("segment %d has %d functions, want %d", i, len(sg.Functions), tc.wantSizes[i])
				}
				if sg.Affinity != tc.wantTags[i] {
					t.Errorf("segment %d affinity %q, want %q", i, sg.Affinity, tc.wantTags[i])
				}
				total += len(sg.Functions)
			}
			if total != len(tc.affinities) {
				t.Errorf("segments cover %d functions, want %d", total, len(tc.affinities))
			}
		})
	}
	if segs := SegmentsOf(ChainSpec{}); segs != nil {
		t.Errorf("empty chain: got %+v, want nil", segs)
	}
}

func TestValidateSegments(t *testing.T) {
	ok := ChainSpec{Name: "ok", Functions: fns("near-client", "aggregate", "cloud-ok")}
	if err := ValidateSegments(ok); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
	unknown := ChainSpec{Name: "typo", Functions: fns("near-clinet")}
	if err := ValidateSegments(unknown); err == nil {
		t.Error("unknown affinity accepted")
	}
	trailing := ChainSpec{Name: "trail", Functions: fns("aggregate", "near-client")}
	if err := ValidateSegments(trailing); err == nil {
		t.Error("near-client behind an anchored segment accepted")
	}
}

// hubState builds a controlState with the given edge/cloud agents and
// optional graph, the inputs anchor election reads.
func hubState(topo *topology.Graph, edges []string, clouds ...string) *controlState {
	st := &controlState{agents: map[string]*AgentHandle{}, topo: topo}
	for _, e := range edges {
		st.agents[e] = &AgentHandle{Station: e}
	}
	for _, c := range clouds {
		st.agents[c] = &AgentHandle{Station: c, Cloud: true}
	}
	return st
}

func TestAggregationHubElection(t *testing.T) {
	// A path a—b—c with a slow a—b leg: b minimises worst-case RTT.
	g := topology.NewGraph()
	g.SetLink(topology.Link{A: "st-a", B: "st-b", Delay: 10 * time.Millisecond})
	g.SetLink(topology.Link{A: "st-b", B: "st-c", Delay: 2 * time.Millisecond})
	hub, ok := aggregationHub(hubState(g, []string{"st-a", "st-b", "st-c"}, "nimbus"))
	if !ok || hub != "st-b" {
		t.Fatalf("hub = %q ok=%v, want st-b", hub, ok)
	}

	// Symmetric pair: tie broken by name — deterministic across restarts.
	g2 := topology.NewGraph()
	g2.SetLink(topology.Link{A: "st-x", B: "st-y", Delay: 5 * time.Millisecond})
	if hub, _ := aggregationHub(hubState(g2, []string{"st-y", "st-x"})); hub != "st-x" {
		t.Fatalf("tie broken to %q, want st-x", hub)
	}

	// No topology: lexicographically first edge, never a cloud.
	if hub, _ := aggregationHub(hubState(nil, []string{"st-q", "st-p"}, "aa-cloud")); hub != "st-p" {
		t.Fatalf("topo-less hub = %q, want st-p", hub)
	}

	// Cloud-only fleet: no anchor.
	if _, ok := aggregationHub(hubState(nil, nil, "nimbus")); ok {
		t.Fatal("cloud-only fleet elected a hub")
	}
}

func TestCloudAnchor(t *testing.T) {
	if c, ok := cloudAnchor(hubState(nil, []string{"st-a"}, "zeta", "alpha")); !ok || c != "alpha" {
		t.Fatalf("cloud anchor = %q ok=%v, want alpha", c, ok)
	}
	if _, ok := cloudAnchor(hubState(nil, []string{"st-a"})); ok {
		t.Fatal("anchored on a fleet with no cloud")
	}
}

func TestPathRTT(t *testing.T) {
	g := topology.NewGraph()
	g.SetLink(topology.Link{A: "st-a", B: "st-b", Delay: 4 * time.Millisecond})
	g.SetLink(topology.Link{A: "st-b", B: "st-c", Delay: 4 * time.Millisecond})

	// Head co-located with the client, anchor two hops away: one 16ms
	// multi-leg round trip (2 x 2 x 4ms), not the head leg alone.
	rtt, ok := pathRTT(g, "st-a", []string{"st-a", "st-c"})
	if !ok || rtt != 16*time.Millisecond {
		t.Fatalf("rtt = %v ok=%v, want 16ms", rtt, ok)
	}

	// Same-station legs cost nothing.
	if rtt, ok = pathRTT(g, "st-a", []string{"st-a", "st-a"}); !ok || rtt != 0 {
		t.Fatalf("co-located rtt = %v ok=%v, want 0", rtt, ok)
	}

	// Head lagging one hop behind the client adds the access leg.
	if rtt, _ = pathRTT(g, "st-a", []string{"st-b", "st-c"}); rtt != 16*time.Millisecond {
		t.Fatalf("lagging-head rtt = %v, want 16ms", rtt)
	}

	// Unreachable leg: not feasible, never silently zero.
	if _, ok = pathRTT(g, "st-a", []string{"st-a", "st-z"}); ok {
		t.Fatal("path through unknown station reported feasible")
	}
	if _, ok = pathRTT(nil, "st-a", []string{"st-a"}); ok {
		t.Fatal("nil graph reported feasible")
	}
}
