// The handoff worker pool: bounded admission control for the roaming
// pipeline. applyClientEvent used to spawn one goroutine per handoff —
// fine for a demo, fatal in a handoff storm, where 10k concurrent
// reconciles all convoy on the manager's lock and all hammer the same
// target agent with concurrent Deploys. The pool replaces that with:
//
//   - a fixed worker set (WithHandoffWorkers) draining a FIFO queue;
//   - a per-target-station concurrency limit (WithStationConcurrency), so
//     a storm landing on one station queues instead of flooding its agent
//     — skipped claims are counted as that station's saturation signal;
//   - coalescing: a handoff for a client whose previous handoff is still
//     queued (unclaimed) supersedes it in place. The stale reconcile never
//     runs — its span ends, a storm-coalesced event is journaled, and the
//     queue keeps one task per client at its original FIFO position.
//
// The pool is also the manager's drain barrier: enqueue happens
// synchronously inside applyClientEvent (before the agent's event call
// returns), so WaitIdle's "queue empty and nothing running" condition can
// never miss a handoff — the undefined Add-racing-Wait pattern of the old
// WaitGroup is gone by construction.
package manager

import (
	"sync"

	"gnf/internal/trace"
)

// Pool defaults: workers bounds global reconcile concurrency, stationLimit
// bounds concurrent migrations targeting one station.
const (
	defaultHandoffWorkers     = 16
	defaultStationConcurrency = 16
)

// handoffLatencyBucketsMs buckets the enqueue-to-completion latency of one
// handoff (milliseconds on the manager clock — virtual in sims).
var handoffLatencyBucketsMs = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// handoffTask is one queued client handoff.
type handoffTask struct {
	client    string
	rec       *clientRec
	station   string // target station, the concurrency-limit key
	offloaded bool
	sp        *trace.Span
	tctx      trace.Context
	enqueued  int64 // manager-clock nanos at enqueue, for the latency histogram
}

// handoffPool runs queued handoffs on a bounded worker set.
type handoffPool struct {
	m       *Manager
	workers int
	limit   int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*handoffTask
	queued   map[string]*handoffTask // client -> its unclaimed task
	inflight map[string]int          // target station -> running count
	running  int
	tracked  int // non-handoff async work (goTracked)
	closed   bool
	wg       sync.WaitGroup
}

func newHandoffPool(m *Manager, workers, limit int) *handoffPool {
	if workers < 1 {
		workers = defaultHandoffWorkers
	}
	if limit < 1 {
		limit = defaultStationConcurrency
	}
	p := &handoffPool{
		m:        m,
		workers:  workers,
		limit:    limit,
		queued:   make(map[string]*handoffTask),
		inflight: make(map[string]int),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// enqueue admits one handoff, coalescing it onto the client's still-queued
// predecessor when one exists. Called synchronously from applyClientEvent.
func (p *handoffPool) enqueue(t *handoffTask) {
	t.enqueued = p.m.clk.Now().UnixNano()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		t.sp.End(nil)
		return
	}
	if old, ok := p.queued[t.client]; ok {
		// Supersede in place: the old task's reconcile never runs. Keeping
		// the FIFO slot (rather than re-appending) preserves fairness — a
		// client flapping between stations cannot starve behind the storm.
		oldSp, oldStation := old.sp, old.station
		old.station, old.offloaded = t.station, t.offloaded
		old.sp, old.tctx = t.sp, t.tctx
		p.mu.Unlock()
		oldSp.End(nil)
		p.m.metrics.Counter("handoff.coalesced").Inc()
		p.m.journal.Append(trace.Event{
			Type: trace.EventStormCoalesced, Subject: t.client, Station: t.station,
			Detail: "superseded handoff to " + oldStation,
		})
		return
	}
	p.queue = append(p.queue, t)
	p.queued[t.client] = t
	p.m.metrics.Gauge("handoff.queue_depth").Set(int64(len(p.queue)))
	p.cond.Broadcast()
	p.mu.Unlock()
}

// claim pops the first queued task whose target station is under its
// concurrency limit, blocking until one exists. It returns nil when the
// pool is closed and the queue drained.
func (p *handoffPool) claim() *handoffTask {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for i, t := range p.queue {
			if p.inflight[t.station] >= p.limit {
				p.m.metrics.Counter("handoff.station_saturated." + t.station).Inc()
				continue
			}
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			delete(p.queued, t.client)
			p.running++
			p.inflight[t.station]++
			p.m.metrics.Gauge("handoff.queue_depth").Set(int64(len(p.queue)))
			p.m.metrics.Gauge("handoff.inflight").Set(int64(p.running))
			return t
		}
		if p.closed && len(p.queue) == 0 {
			return nil
		}
		p.cond.Wait()
	}
}

// worker drains the queue until close. RPC failures inside a reconcile are
// that migration's problem (reported per chain); the worker always
// completes the task.
func (p *handoffPool) worker() {
	defer p.wg.Done()
	for {
		t := p.claim()
		if t == nil {
			return
		}
		if t.offloaded {
			p.m.reconcileOffloaded(t.client, t.rec)
		} else {
			p.m.reconcileClient(t.client, t.rec, t.tctx)
		}
		t.sp.End(nil)
		p.m.metrics.Histogram("handoff.latency_ms", handoffLatencyBucketsMs...).
			Observe(float64(p.m.clk.Now().UnixNano()-t.enqueued) / 1e6)
		p.mu.Lock()
		p.running--
		if p.inflight[t.station]--; p.inflight[t.station] <= 0 {
			delete(p.inflight, t.station)
		}
		p.m.metrics.Gauge("handoff.inflight").Set(int64(p.running))
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// goTracked runs fn asynchronously under the pool's drain barrier — the
// non-handoff background work (rejoin GC, connection-loss failover) that
// WaitIdle and Close must also observe. After close it runs fn inline:
// the caller (a peer teardown hook) must still converge, and the barrier
// is already draining.
func (p *handoffPool) goTracked(fn func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		fn()
		return
	}
	p.tracked++
	p.mu.Unlock()
	go func() {
		defer func() {
			p.mu.Lock()
			p.tracked--
			p.cond.Broadcast()
			p.mu.Unlock()
		}()
		fn()
	}()
}

// waitIdle blocks until no handoff is queued or running and no tracked
// background work is in flight.
func (p *handoffPool) waitIdle() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) > 0 || p.running > 0 || p.tracked > 0 {
		p.cond.Wait()
	}
}

// close drains the queue (workers finish every admitted task — their RPCs
// fail fast once the server is down) and waits for workers and tracked
// goroutines to exit.
func (p *handoffPool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	for p.tracked > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}
