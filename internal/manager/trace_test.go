package manager_test

import (
	"encoding/json"
	"sync"
	"testing"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/manager"
	"gnf/internal/trace"
	"gnf/internal/wire"
)

// headerAgent is a wire-level fake station that records the trace header
// riding every agent.* request — the instrument for proving trace-context
// propagation through the migration pipeline without a dataplane.
type headerAgent struct {
	peer *wire.Peer

	mu      sync.Mutex
	headers map[string][]string // method -> headers in arrival order
}

func newHeaderAgent(t *testing.T, mgr *manager.Manager, station string) *headerAgent {
	t.Helper()
	peer, err := wire.Dial(mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ha := &headerAgent{peer: peer, headers: map[string][]string{}}
	rec := func(method string, result any) {
		peer.HandleTraced(method, func(hdr string, _ json.RawMessage) (any, error) {
			ha.mu.Lock()
			ha.headers[method] = append(ha.headers[method], hdr)
			ha.mu.Unlock()
			return result, nil
		})
	}
	for _, m := range []string{agent.MethodDeploy, agent.MethodRemove, agent.MethodEnable,
		agent.MethodDisable, agent.MethodRestore, agent.MethodPrefetch, agent.MethodSyncDelta} {
		rec(m, nil)
	}
	rec(agent.MethodCheckpoint, agent.CheckpointResult{State: []byte("blob")})
	rec(agent.MethodPreCopy, agent.PreCopyResult{State: []byte("delta"), Round: 1})
	rec(agent.MethodActivate, agent.ActivateResult{})
	go peer.Run()
	if err := peer.Call(agent.MethodRegister, agent.RegisterSpec{Station: station}, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	return ha
}

func (ha *headerAgent) headersFor(method string) []string {
	ha.mu.Lock()
	defer ha.mu.Unlock()
	return append([]string(nil), ha.headers[method]...)
}

// TestTraceContextPropagatesAndNests drives one live migration through
// scripted stations and checks the tracing contract end to end: every RPC
// of the pipeline carries a parseable header of the same trace, each RPC
// rides its own span, and the manager's stored spans form one connected
// tree rooted at the migrate request.
func TestTraceContextPropagatesAndNests(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithStrategy(manager.StrategyLive))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	src := newHeaderAgent(t, mgr, "st-src")
	dst := newHeaderAgent(t, mgr, "st-dst")
	if err := src.peer.Call(agent.MethodClientEvent,
		agent.ClientEvent{Station: "st-src", Client: "phone", Connected: true}, nil); err != nil {
		t.Fatal(err)
	}
	mgr.WaitIdle()
	spec := manager.ChainSpec{Name: "chain", Functions: []agent.NFSpec{{Kind: "counter", Name: "c0"}}}
	if err := mgr.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}

	rep, err := mgr.MigrateChain("phone", "chain", "st-dst")
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceID == "" {
		t.Fatal("migration report carries no trace id")
	}

	// Round-trip: every pipeline RPC carried a valid header of this trace.
	probes := []struct {
		ag     *headerAgent
		method string
	}{
		{dst, agent.MethodDeploy},
		{src, agent.MethodPreCopy},
		{dst, agent.MethodSyncDelta},
		{src, agent.MethodDisable},
		{dst, agent.MethodActivate},
	}
	for _, p := range probes {
		hs := p.ag.headersFor(p.method)
		if len(hs) == 0 {
			t.Fatalf("no %s call recorded", p.method)
		}
		ctx, ok := trace.ParseHeader(hs[0])
		if !ok {
			t.Fatalf("%s header %q does not parse", p.method, hs[0])
		}
		if ctx.TraceID != rep.TraceID {
			t.Errorf("%s rode trace %s, want %s", p.method, ctx.TraceID, rep.TraceID)
		}
	}

	// Per-RPC spans: PreCopy and Activate must not share a parent span ID.
	pc, _ := trace.ParseHeader(src.headersFor(agent.MethodPreCopy)[0])
	act, _ := trace.ParseHeader(dst.headersFor(agent.MethodActivate)[0])
	if pc.SpanID == act.SpanID {
		t.Error("PreCopy and Activate rode the same span — expected one span per RPC")
	}

	// Nesting: the stored spans form one connected tree, request → migrate
	// → per-RPC children.
	spans := mgr.Tracer().Trace(rep.TraceID)
	if n := trace.ConnectedSize(spans); n != len(spans) || n < 5 {
		t.Fatalf("span tree: %d of %d spans connected, want all of >= 5", n, len(spans))
	}
	byName := map[string]trace.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["manager.migrate_request"]
	if !ok || root.Parent != "" {
		t.Fatalf("missing or non-root request span: %+v", root)
	}
	mig, ok := byName["manager.migrate"]
	if !ok || mig.Parent != root.SpanID {
		t.Fatalf("migrate span not nested under the request: %+v", mig)
	}
	if rpc, ok := byName["rpc:"+agent.MethodActivate]; !ok || rpc.Parent != mig.SpanID {
		t.Fatalf("activate RPC span not nested under migrate: %+v", rpc)
	}
}

// TestUntracedMigrationStaysUntraced pins the zero-overhead path: with
// sampling off, RPCs carry no header and the report links no trace.
func TestUntracedMigrationStaysUntraced(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0",
		manager.WithStrategy(manager.StrategyStateful), manager.WithTraceSampleRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	src := newHeaderAgent(t, mgr, "st-src")
	dst := newHeaderAgent(t, mgr, "st-dst")
	if err := src.peer.Call(agent.MethodClientEvent,
		agent.ClientEvent{Station: "st-src", Client: "phone", Connected: true}, nil); err != nil {
		t.Fatal(err)
	}
	mgr.WaitIdle()
	spec := manager.ChainSpec{Name: "chain", Functions: []agent.NFSpec{{Kind: "counter", Name: "c0"}}}
	if err := mgr.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}
	rep, err := mgr.MigrateChain("phone", "chain", "st-dst")
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != "" {
		t.Fatalf("unsampled migration carries trace id %q", rep.TraceID)
	}
	for _, m := range []string{agent.MethodDeploy, agent.MethodEnable} {
		for _, h := range dst.headersFor(m) {
			if h != "" {
				t.Errorf("unsampled %s carried header %q, want none", m, h)
			}
		}
	}
}
