package manager_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/manager"
	"gnf/internal/trace"
)

// TestStatefulDisableFailureRemovesOrphanTarget is the regression test for
// the orphaned-target hole in the stop-and-copy branch: when the source's
// MethodDisable failed, the migration returned with the already-deployed
// target copy left in place — a disabled deployment no client record
// points at, flagged forever by the invariant audit.
func TestStatefulDisableFailureRemovesOrphanTarget(t *testing.T) {
	mgr, src, dst := migrationFixture(t, manager.StrategyStateful)
	src.failOn(agent.MethodDisable)

	rep, err := mgr.MigrateChain("phone", "chain", "st-dst")
	if err == nil || rep.Err == "" {
		t.Fatalf("migration unexpectedly succeeded: %+v", rep)
	}
	if !dst.sawAfter(agent.MethodDeploy, "") {
		t.Fatalf("target never deployed; calls: %v", dst.callLog())
	}
	if !dst.sawAfter(agent.MethodRemove, agent.MethodDeploy) {
		t.Fatalf("orphaned target never removed after source Disable failure; calls: %v", dst.callLog())
	}
	// The source was never frozen, so it must not have been re-enabled (a
	// spurious Enable on a serving chain is harmless but noisy) — and the
	// placement record must still point at the source.
	for _, pl := range mgr.Placements() {
		if pl.Chain == "chain" && pl.Station != "st-src" {
			t.Fatalf("placement moved despite failed migration: %+v", pl)
		}
	}
}

// TestStatefulCheckpointFailureStillRollsBack pins the overlap join's other
// failure leg: a failed Checkpoint re-enables the frozen source and removes
// the concurrently-deployed target.
func TestStatefulCheckpointFailureStillRollsBack(t *testing.T) {
	mgr, src, dst := migrationFixture(t, manager.StrategyStateful)
	src.failOn(agent.MethodCheckpoint)

	rep, err := mgr.MigrateChain("phone", "chain", "st-dst")
	if err == nil || rep.Err == "" {
		t.Fatalf("migration unexpectedly succeeded: %+v", rep)
	}
	if !src.sawAfter(agent.MethodEnable, agent.MethodDisable) {
		t.Fatalf("source never re-enabled after freeze; calls: %v", src.callLog())
	}
	if !dst.sawAfter(agent.MethodRemove, agent.MethodDeploy) {
		t.Fatalf("target never removed after checkpoint failure; calls: %v", dst.callLog())
	}
}

// TestHandoffCoalescing drives the storm-control path directly: with one
// worker pinned mid-migration, two further handoffs for a second client
// arrive while its first is still queued — the later one must supersede
// the earlier in place (one reconcile, not two), emit a storm-coalesced
// journal event, and bump the coalesced counter.
func TestHandoffCoalescing(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0",
		manager.WithStrategy(manager.StrategyStateful),
		manager.WithHandoffWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	src := newScriptedAgent(t, mgr, "st-src")
	dst := newScriptedAgent(t, mgr, "st-dst")

	for _, c := range []string{"phone", "tab"} {
		if err := src.peer.Call(agent.MethodClientEvent,
			agent.ClientEvent{Station: "st-src", Client: c, Connected: true}, nil); err != nil {
			t.Fatal(err)
		}
	}
	mgr.WaitIdle()
	for _, c := range []string{"phone", "tab"} {
		spec := manager.ChainSpec{Name: "chain-" + c, Functions: []agent.NFSpec{{Kind: "counter", Name: "c0"}}}
		if err := mgr.AttachChain(c, spec); err != nil {
			t.Fatal(err)
		}
	}

	// Pin the single worker inside phone's migration (the source-side
	// freeze blocks), so everything that arrives next stays queued.
	gate := src.holdOn(agent.MethodDisable)
	if err := dst.peer.Call(agent.MethodClientEvent,
		agent.ClientEvent{Station: "st-dst", Client: "phone", Connected: true}, nil); err != nil {
		t.Fatal(err)
	}
	<-gate.entered

	// tab hands off to st-dst, then back to st-src before a worker could
	// claim it: the second event must supersede the first in the queue.
	if err := dst.peer.Call(agent.MethodClientEvent,
		agent.ClientEvent{Station: "st-dst", Client: "tab", Connected: true}, nil); err != nil {
		t.Fatal(err)
	}
	if err := src.peer.Call(agent.MethodClientEvent,
		agent.ClientEvent{Station: "st-src", Client: "tab", Connected: true}, nil); err != nil {
		t.Fatal(err)
	}

	close(gate.release)
	mgr.WaitIdle()

	evs := mgr.Journal().Events(0, trace.EventStormCoalesced)
	if len(evs) != 1 || evs[0].Subject != "tab" {
		t.Fatalf("storm-coalesced events = %+v, want exactly one for tab", evs)
	}
	if got := mgr.MetricsSnapshot().Counters["handoff.coalesced"]; got != 1 {
		t.Fatalf("handoff.coalesced = %d, want 1", got)
	}
	// The superseded handoff never ran: tab's chain must still sit on
	// st-src with zero migrations recorded for it.
	for _, rep := range mgr.Migrations() {
		if rep.Client == "tab" {
			t.Fatalf("superseded handoff still migrated: %+v", rep)
		}
	}
	if st, _ := mgr.ClientStation("tab"); st != "st-src" {
		t.Fatalf("tab at %q, want st-src", st)
	}
}

// TestStationConcurrencyLimit pins one station's admission limit: with
// WithStationConcurrency(1), two clients handing off to the same target
// must migrate one at a time, and the skipped claim shows up in the
// saturation counter.
func TestStationConcurrencyLimit(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0",
		manager.WithStrategy(manager.StrategyStateful),
		manager.WithHandoffWorkers(4),
		manager.WithStationConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	src := newScriptedAgent(t, mgr, "st-src")
	dst := newScriptedAgent(t, mgr, "st-dst")

	for _, c := range []string{"phone", "tab"} {
		if err := src.peer.Call(agent.MethodClientEvent,
			agent.ClientEvent{Station: "st-src", Client: c, Connected: true}, nil); err != nil {
			t.Fatal(err)
		}
	}
	mgr.WaitIdle()
	for _, c := range []string{"phone", "tab"} {
		spec := manager.ChainSpec{Name: "chain-" + c, Functions: []agent.NFSpec{{Kind: "counter", Name: "c0"}}}
		if err := mgr.AttachChain(c, spec); err != nil {
			t.Fatal(err)
		}
	}

	// Hold the first migration's freeze; the second handoff targets the
	// same station and must queue behind the limit instead of running on a
	// free worker.
	gate := src.holdOn(agent.MethodDisable)
	for _, c := range []string{"phone", "tab"} {
		if err := dst.peer.Call(agent.MethodClientEvent,
			agent.ClientEvent{Station: "st-dst", Client: c, Connected: true}, nil); err != nil {
			t.Fatal(err)
		}
	}
	<-gate.entered
	// Give the free workers a moment to (wrongly) start the second
	// migration if the limit were broken, then check: exactly one Disable
	// has reached the source.
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	disables := 0
	for _, c := range src.callLog() {
		if c == agent.MethodDisable {
			disables++
		}
	}
	if disables != 1 {
		t.Fatalf("station limit 1 admitted %d concurrent migrations", disables)
	}
	close(gate.release)
	mgr.WaitIdle()

	snap := mgr.MetricsSnapshot()
	if snap.Counters["handoff.station_saturated.st-dst"] == 0 {
		t.Fatalf("saturation counter never incremented: %v", snap.Counters)
	}
	// Both migrations eventually completed.
	done := 0
	for _, rep := range mgr.Migrations() {
		if rep.Err == "" && rep.To == "st-dst" {
			done++
		}
	}
	if done != 2 {
		t.Fatalf("completed migrations to st-dst = %d, want 2", done)
	}
}

// TestManagerHandoffStormRace floods the manager with concurrent handoffs
// for many clients across two stations while chains attach and detach —
// meant to run under -race; correctness asserts only convergence (every
// surviving chain lands where its client is).
func TestManagerHandoffStormRace(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0",
		manager.WithStrategy(manager.StrategyCold))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	src := newScriptedAgent(t, mgr, "st-src")
	dst := newScriptedAgent(t, mgr, "st-dst")
	stations := map[string]*scriptedAgent{"st-src": src, "st-dst": dst}

	const clients = 40
	names := make([]string, clients)
	for i := range names {
		names[i] = fmt.Sprintf("c%02d", i)
		if err := src.peer.Call(agent.MethodClientEvent,
			agent.ClientEvent{Station: "st-src", Client: names[i], Connected: true}, nil); err != nil {
			t.Fatal(err)
		}
	}
	mgr.WaitIdle()
	for _, c := range names {
		spec := manager.ChainSpec{Name: "chain-" + c, Functions: []agent.NFSpec{{Kind: "counter", Name: "n0"}}}
		if err := mgr.AttachChain(c, spec); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i, c := range names {
		wg.Add(1)
		go func(i int, c string) {
			defer wg.Done()
			seq := []string{"st-dst", "st-src", "st-dst"}
			if i%2 == 1 {
				seq = []string{"st-dst", "st-src"}
			}
			for _, st := range seq {
				stations[st].peer.Call(agent.MethodClientEvent,
					agent.ClientEvent{Station: st, Client: c, Connected: true}, nil)
			}
			if i%5 == 0 {
				// Interleave attach/detach churn with the handoffs.
				extra := manager.ChainSpec{Name: "extra-" + c, Functions: []agent.NFSpec{{Kind: "counter", Name: "n1"}}}
				if err := mgr.AttachChain(c, extra); err == nil {
					mgr.DetachChain(c, extra.Name)
				}
			}
		}(i, c)
	}
	wg.Wait()
	mgr.WaitIdle()

	for _, pl := range mgr.Placements() {
		if st, ok := mgr.ClientStation(pl.Client); ok && st != pl.Station {
			t.Fatalf("chain %s/%s at %s but client at %s", pl.Client, pl.Chain, pl.Station, st)
		}
	}
}
