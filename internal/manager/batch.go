// Per-agent steering group commit. When a storm of offloaded clients lands
// on one station, every handoff wants to install a detour rule on the same
// agent; issuing them as individual MethodSteer calls serialises N wire
// round-trips behind the peer's write lock. Instead, concurrent steer
// requests for one agent coalesce: the first caller becomes the flusher
// and drains whatever accumulated while the previous batch was on the
// wire — one MethodSteerBatch call installs all of it.
package manager

import (
	"gnf/internal/agent"
)

// steerReq is one caller's pending steering update; done (buffered 1)
// receives the batch's outcome.
type steerReq struct {
	spec agent.SteerSpec
	done chan error
}

// steer installs a steering detour on this agent, group-committing with
// concurrent callers. A batch of one degrades to a plain MethodSteer call,
// so single-handoff behaviour (and older agents) are unaffected.
func (h *AgentHandle) steer(spec agent.SteerSpec) error {
	req := steerReq{spec: spec, done: make(chan error, 1)}
	h.steerMu.Lock()
	h.steerPending = append(h.steerPending, req)
	if h.steerFlushing {
		// A flusher is already draining; it will pick this request up in
		// its next batch.
		h.steerMu.Unlock()
		return <-req.done
	}
	h.steerFlushing = true
	for len(h.steerPending) > 0 {
		batch := h.steerPending
		h.steerPending = nil
		h.steerMu.Unlock()
		var err error
		if len(batch) == 1 {
			err = h.call(agent.MethodSteer, batch[0].spec, nil)
		} else {
			rules := make([]agent.SteerSpec, len(batch))
			for i, r := range batch {
				rules[i] = r.spec
			}
			err = h.call(agent.MethodSteerBatch, agent.SteerBatchSpec{Rules: rules}, nil)
		}
		for _, r := range batch {
			r.done <- err
		}
		h.steerMu.Lock()
	}
	h.steerFlushing = false
	h.steerMu.Unlock()
	return <-req.done
}
