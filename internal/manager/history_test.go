package manager

import (
	"fmt"
	"testing"

	"gnf/internal/agent"
	"gnf/internal/metrics"
)

// The manager's event histories are append-only on a long-lived control
// plane; each must trim to historyCap instead of growing without bound.

func TestMigrationHistoryCapped(t *testing.T) {
	m := &Manager{metrics: metrics.NewRegistry()}
	const extra = 100
	for i := 0; i < historyCap+extra; i++ {
		m.recordMigration(MigrationReport{Client: "phone", Chain: fmt.Sprintf("ch-%d", i)})
	}
	got := m.Migrations()
	if len(got) != historyCap {
		t.Fatalf("len(Migrations()) = %d, want %d", len(got), historyCap)
	}
	// The oldest entries are the ones dropped.
	if want := fmt.Sprintf("ch-%d", extra); got[0].Chain != want {
		t.Fatalf("oldest kept = %s, want %s", got[0].Chain, want)
	}
	if want := fmt.Sprintf("ch-%d", historyCap+extra-1); got[len(got)-1].Chain != want {
		t.Fatalf("newest kept = %s, want %s", got[len(got)-1].Chain, want)
	}
}

func TestScaleEventHistoryCapped(t *testing.T) {
	m := &Manager{}
	const extra = 50
	m.auto.mu.Lock()
	for i := 0; i < historyCap+extra; i++ {
		m.recordScaleEventsLocked(ScaleEvent{Kinds: fmt.Sprintf("k-%d", i)})
	}
	m.auto.mu.Unlock()
	got := m.ScaleEvents()
	if len(got) != historyCap {
		t.Fatalf("len(ScaleEvents()) = %d, want %d", len(got), historyCap)
	}
	if want := fmt.Sprintf("k-%d", extra); got[0].Kinds != want {
		t.Fatalf("oldest kept = %s, want %s", got[0].Kinds, want)
	}
}

func TestNotificationHistoryCapped(t *testing.T) {
	m := &Manager{}
	const extra = 25
	for i := 0; i < historyCap+extra; i++ {
		m.recordNotification(agent.Alert{Station: fmt.Sprintf("st-%d", i)})
	}
	got := m.Notifications()
	if len(got) != historyCap {
		t.Fatalf("len(Notifications()) = %d, want %d", len(got), historyCap)
	}
	if want := fmt.Sprintf("st-%d", extra); got[0].Station != want {
		t.Fatalf("oldest kept = %s, want %s", got[0].Station, want)
	}
}
