package manager_test

import (
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/manager"
	"gnf/internal/metrics"
	"gnf/internal/wire"
)

// report pushes one health report on the scripted agent's wire, so
// staleness-sensitive policies see the station as known-load.
func (sa *scriptedAgent) report(cpu float64) {
	sa.peer.Notify(agent.MethodReport, agent.Report{
		Station: sa.station,
		Usage:   metrics.ResourceUsage{CPUPercent: cpu},
	})
}

// closedWindow is an activation window entirely in the past: evaluation
// always wants the chain disabled.
func closedWindow() manager.Window {
	past := time.Now().Add(-time.Hour)
	return manager.Window{EnableAt: past, DisableAt: past.Add(time.Minute)}
}

// countCalls tallies occurrences of method in the agent's call log.
func countCalls(sa *scriptedAgent, method string) int {
	n := 0
	for _, c := range sa.callLog() {
		if c == method {
			n++
		}
	}
	return n
}

// TestReattachedChainDoesNotInheritWindow is the regression test for the
// stale-schedule leak: DetachChain never removed the (client, chain)
// window, so a chain re-attached under the same name silently inherited
// it and the next evaluation disabled the fresh chain.
func TestReattachedChainDoesNotInheritWindow(t *testing.T) {
	mgr, src, _ := migrationFixture(t, manager.StrategyStateful)
	if err := mgr.Schedule("phone", "chain", closedWindow()); err != nil {
		t.Fatal(err)
	}
	if n := mgr.EvaluateSchedules(); n != 1 {
		t.Fatalf("closed window made %d transitions, want 1 (disable)", n)
	}
	if err := mgr.DetachChain("phone", "chain"); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Schedules(); len(got) != 0 {
		t.Fatalf("window survived the detach: %+v", got)
	}
	spec := manager.ChainSpec{Name: "chain", Functions: []agent.NFSpec{{Kind: "counter", Name: "c0"}}}
	if err := mgr.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}
	if n := mgr.EvaluateSchedules(); n != 0 {
		t.Fatalf("re-attached chain inherited the detached chain's window (%d transitions)", n)
	}
	// Exactly one disable ever reached the agent — the legitimate one.
	if got := countCalls(src, agent.MethodDisable); got != 1 {
		t.Fatalf("source saw %d disables, want 1; calls: %v", got, src.callLog())
	}
}

// TestScheduleReplacesAndUnschedule pins the rest of the window
// lifecycle: re-registration replaces instead of stacking a competing
// window, and Unschedule removes it outright.
func TestScheduleReplacesAndUnschedule(t *testing.T) {
	mgr, _, _ := migrationFixture(t, manager.StrategyStateful)
	if err := mgr.Schedule("phone", "chain", closedWindow()); err != nil {
		t.Fatal(err)
	}
	open := manager.Window{EnableAt: time.Now().Add(-time.Minute)}
	if err := mgr.Schedule("phone", "chain", open); err != nil {
		t.Fatal(err)
	}
	got := mgr.Schedules()
	if len(got) != 1 {
		t.Fatalf("duplicate registration stacked windows: %+v", got)
	}
	if !got[0].Window.DisableAt.IsZero() {
		t.Fatalf("replacement kept the old window: %+v", got[0].Window)
	}
	// The open window wants the chain enabled; it already is, but the
	// first evaluation records the state (one transition at most).
	mgr.EvaluateSchedules()
	if n := mgr.EvaluateSchedules(); n != 0 {
		t.Fatalf("replaced window still flapping: %d transitions", n)
	}
	if !mgr.Unschedule("phone", "chain") {
		t.Fatal("Unschedule found no window")
	}
	if mgr.Unschedule("phone", "chain") {
		t.Fatal("second Unschedule found a window")
	}
	if got := mgr.Schedules(); len(got) != 0 {
		t.Fatalf("schedules after Unschedule: %+v", got)
	}
}

// TestEvaluateSchedulesRevalidatesPlacement is the regression test for
// the snapshot race: EvaluateSchedules used to snapshot deployedOn under
// the lock but apply the Enable/Disable outside it, so a concurrent
// migration landed the call on the station the chain had just left —
// leaving the chain's real state diverged from the recorded one. The
// evaluation must now serialise against the migration and deliver the
// disable to the chain's actual station.
func TestEvaluateSchedulesRevalidatesPlacement(t *testing.T) {
	mgr, _, dst := migrationFixture(t, manager.StrategyStateful)
	if err := mgr.Schedule("phone", "chain", closedWindow()); err != nil {
		t.Fatal(err)
	}

	// Pin the migration mid-flight on the target's deploy, with the
	// chain's placement about to move st-src -> st-dst.
	g := dst.holdOn(agent.MethodDeploy)
	migDone := make(chan error, 1)
	go func() {
		_, err := mgr.MigrateChain("phone", "chain", "st-dst")
		migDone <- err
	}()
	<-g.entered

	evalDone := make(chan int, 1)
	go func() { evalDone <- mgr.EvaluateSchedules() }()

	close(g.release)
	if err := <-migDone; err != nil {
		t.Fatal(err)
	}
	if n := <-evalDone; n != 1 {
		t.Fatalf("evaluation applied %d transitions, want 1", n)
	}
	// The disable must land where the chain actually lives — on st-dst,
	// after the migration enabled it there — never on the source it left.
	if !dst.sawAfter(agent.MethodDisable, agent.MethodEnable) {
		t.Fatalf("schedule disable missed the migrated chain; dst calls: %v", dst.callLog())
	}
}

// TestLeastLoadedStationSkipsStale is the regression test for the stale
// report hole: a station that never reported used to win with a phantom
// CPU of 0.0, so evacuations dumped every chain onto an unknown-load box.
func TestLeastLoadedStationSkipsStale(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	dial := func(station string, report bool, cpu float64) {
		peer, err := wire.Dial(mgr.Addr())
		if err != nil {
			t.Fatal(err)
		}
		go peer.Run()
		t.Cleanup(func() { peer.Close() })
		if err := peer.Call(agent.MethodRegister, agent.RegisterSpec{Station: station}, nil); err != nil {
			t.Fatal(err)
		}
		if report {
			peer.Notify(agent.MethodReport, agent.Report{
				Station: station,
				Usage:   metrics.ResourceUsage{CPUPercent: cpu},
			})
		}
	}
	// The ghost sorts first by name, so the pre-fix ordering picked it.
	dial("st-aa-ghost", false, 0)
	dial("st-zz-busy", true, 90)
	waitFor(t, 2*time.Second, func() bool {
		for _, si := range mgr.StationInfos() {
			if si.Station == "st-zz-busy" && !si.Stale {
				return true
			}
		}
		return false
	}, "busy station to report")

	if st, ok := mgr.LeastLoadedStation(""); !ok || st != "st-zz-busy" {
		t.Fatalf("least loaded = %q, %v — a never-reported station won over a reporting one", st, ok)
	}
	// The excluded-station path must hold the same ordering.
	if st, _ := mgr.LeastLoadedStation("st-zz-busy"); st != "st-aa-ghost" {
		t.Fatalf("with the fresh station excluded, pick = %q", st)
	}
}

// TestEvacuationAvoidsNeverReportedStation drives the acceptance
// property end to end: evacuating the client's own station must send its
// chain to the station with known load, not the silent one.
func TestEvacuationAvoidsNeverReportedStation(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithStrategy(manager.StrategyStateful))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	src := newScriptedAgent(t, mgr, "st-src")
	newScriptedAgent(t, mgr, "st-aa-ghost") // registers, never reports
	busy := newScriptedAgent(t, mgr, "st-zz-busy")
	busy.report(90)
	waitFor(t, 2*time.Second, func() bool {
		for _, si := range mgr.StationInfos() {
			if si.Station == "st-zz-busy" && !si.Stale {
				return true
			}
		}
		return false
	}, "busy station to report")

	if err := src.peer.Call(agent.MethodClientEvent,
		agent.ClientEvent{Station: "st-src", Client: "phone", Connected: true}, nil); err != nil {
		t.Fatal(err)
	}
	mgr.WaitIdle()
	spec := manager.ChainSpec{Name: "chain", Functions: []agent.NFSpec{{Kind: "counter", Name: "c0"}}}
	if err := mgr.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}

	reports, err := mgr.EvacuateStation("st-src")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Err != "" {
		t.Fatalf("reports = %+v", reports)
	}
	if reports[0].To != "st-zz-busy" {
		t.Fatalf("evacuation targeted %q, want the reporting station st-zz-busy", reports[0].To)
	}
}
