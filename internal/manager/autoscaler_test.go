package manager_test

import (
	"fmt"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/manager"
	"gnf/internal/netem"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

// scalerStation is a fakeStation with a real client host wired in, so the
// shared instance sees genuine dataplane load.
type scalerStation struct {
	ag     *agent.Agent
	client *netem.Host
	clk    *clock.Virtual
}

func newScalerStation(t *testing.T, mgr *manager.Manager, name string) *scalerStation {
	t.Helper()
	clk := clock.NewAutoVirtual()
	repo := container.NewRepository(clk, 0, 0)
	for _, kind := range []string{"firewall", "counter"} {
		repo.Push(container.Image{Name: agent.ImageForKind(kind), SizeBytes: 1 << 20, MemoryBytes: 1 << 20})
	}
	rt := container.NewRuntime(name, clk, repo)
	sw := netem.NewSwitch(name)
	up, _ := netem.NewVethPair(name+"-up", name+"-core")
	sw.Attach(0, up)
	cl, clSw := netem.NewVethPair(name+"-cl", name+"-ap")
	sw.Attach(1, clSw)
	client := netem.NewHost(packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}, cl)

	ag := agent.New(topology.StationID(name), clk, rt, sw, 0)
	link, err := agent.Connect(ag, mgr.Addr(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { link.Close(); up.Close(); cl.Close() })
	mgr.RegisterClient("phone")
	ag.AttachClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}, 1)
	return &scalerStation{ag: ag, client: client, clk: clk}
}

// pump sends frames frames spread over 32 flows and waits until the shared
// instance has processed them all.
func (st *scalerStation) pump(t *testing.T, frames int) {
	t.Helper()
	pools := st.ag.PoolStats()
	if len(pools) != 1 {
		t.Fatalf("pools = %+v", pools)
	}
	base := pools[0].Processed
	for i := 0; i < frames; i++ {
		st.client.SendUDP(packet.Endpoint{Addr: packet.IP{10, 99, 0, 1}, Port: 7}, uint16(25000+i%32), []byte("x"))
		if i%64 == 63 { // stay far from the veth queue depth
			st.waitProcessed(t, base+uint64(i+1))
		}
	}
	st.waitProcessed(t, base+uint64(frames))
}

func (st *scalerStation) waitProcessed(t *testing.T, want uint64) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if ps := st.ag.PoolStats(); len(ps) == 1 && ps[0].Processed >= want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("pool never processed %d frames: %+v", want, st.ag.PoolStats())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestAutoscalerScalesOutAndBackIn(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	mgr.SetAutoscalerPolicy(manager.AutoscalerPolicy{
		ScaleOutLoad: 400,
		ScaleInLoad:  50,
		MaxReplicas:  3,
	})
	st := newScalerStation(t, mgr, "st-a")

	// Wait for the client event to register placement, then attach the
	// shared chain through the manager.
	deadline := time.After(2 * time.Second)
	for {
		if s, ok := mgr.ClientStation("phone"); ok && s == "st-a" {
			break
		}
		select {
		case <-deadline:
			t.Fatal("client never placed")
		case <-time.After(2 * time.Millisecond):
		}
	}
	spec := manager.ChainSpec{Name: "fw-phone", Functions: []agent.NFSpec{
		{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
		{Kind: "counter", Name: "acct"},
	}}
	if err := mgr.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}

	// Pass 1 establishes the load baseline; no decision may fire blind.
	if evs := mgr.EvaluateAutoscaler(); len(evs) != 0 {
		t.Fatalf("baseline pass scaled: %+v", evs)
	}

	// A load spike beyond ScaleOutLoad forces a replica out.
	st.pump(t, 600)
	evs := mgr.EvaluateAutoscaler()
	if len(evs) != 1 || evs[0].From != 1 || evs[0].To != 2 || evs[0].Err != "" {
		t.Fatalf("scale-out pass = %+v", evs)
	}
	if ps := st.ag.PoolStats(); ps[0].Replicas != 2 {
		t.Fatalf("replicas = %d after scale-out", ps[0].Replicas)
	}

	// Continued load across 2 replicas (300 each) sits inside the band.
	st.pump(t, 600)
	if evs := mgr.EvaluateAutoscaler(); len(evs) != 0 {
		t.Fatalf("in-band pass scaled: %+v", evs)
	}

	// Quiet interval: per-replica delta 0 <= ScaleInLoad drains one.
	evs = mgr.EvaluateAutoscaler()
	if len(evs) != 1 || evs[0].From != 2 || evs[0].To != 1 || evs[0].Err != "" {
		t.Fatalf("scale-in pass = %+v", evs)
	}
	if ps := st.ag.PoolStats(); ps[0].Replicas != 1 {
		t.Fatalf("replicas = %d after scale-in", ps[0].Replicas)
	}
	// Never below one replica.
	if evs := mgr.EvaluateAutoscaler(); len(evs) != 0 {
		t.Fatalf("scaled below floor: %+v", evs)
	}

	all := mgr.ScaleEvents()
	if len(all) != 2 {
		t.Fatalf("scale events = %+v", all)
	}
	for _, ev := range all {
		if ev.Station != "st-a" || ev.Kinds != "firewall+counter" || ev.Reason == "" {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
}

func TestAutoscalerRespectsMaxReplicas(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	mgr.SetAutoscalerPolicy(manager.AutoscalerPolicy{ScaleOutLoad: 100, ScaleInLoad: 0, MaxReplicas: 2})
	st := newScalerStation(t, mgr, "st-b")
	if _, err := st.ag.Deploy(agent.DeploySpec{
		Chain: "fw-phone", Client: "phone", Enabled: true,
		Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}}},
	}); err != nil {
		t.Fatal(err)
	}
	mgr.EvaluateAutoscaler() // baseline
	for round := 0; round < 3; round++ {
		st.pump(t, 300)
		mgr.EvaluateAutoscaler()
	}
	if ps := st.ag.PoolStats(); ps[0].Replicas != 2 {
		t.Fatalf("replicas = %d, want capped at 2", ps[0].Replicas)
	}
}

func TestPoolTables(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	st := newScalerStation(t, mgr, "st-c")
	for i := 0; i < 3; i++ {
		if _, err := st.ag.Deploy(agent.DeploySpec{
			Chain: fmt.Sprintf("fw-%d", i), Client: "phone", Enabled: true,
			Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	tables := mgr.PoolTables()
	pools, ok := tables["st-c"]
	if !ok || len(pools) != 1 {
		t.Fatalf("tables = %+v", tables)
	}
	if pools[0].Refs != 3 || pools[0].Replicas != 1 || pools[0].Kinds != "firewall" {
		t.Fatalf("pool = %+v", pools[0])
	}
}
